//! Trace-driven analysis: record a "measured" trace, ship it through the
//! text codec, and run the full traffic-engineering pipeline on the replay —
//! the workflow a user with real video traces would follow.
//!
//! Run with: `cargo run --release --example trace_analysis`

use lrd_video::prelude::*;
use lrd_video::sim::TraceProcess;
use vbr_stats::rng::Xoshiro256PlusPlus;

fn main() {
    // 1. "Capture" a trace (stand-in for a real capture file).
    let mut source = paper::build_z(0.9);
    let mut rng = Xoshiro256PlusPlus::from_seed_u64(90210);
    source.reset(&mut rng);
    let frames: Vec<f64> = (0..120_000).map(|_| source.next_frame(&mut rng)).collect();
    println!("captured {} frames from {}", frames.len(), source.label());

    // 2. Round-trip the interchange format (one frame size per line).
    let trace = TraceProcess::new(frames, "captured-Z0.9", 8_192);
    let text = trace.serialize();
    let trace = TraceProcess::parse(&text, "captured-Z0.9", 8_192).expect("parse");
    println!(
        "codec round-trip ok: {} frames, {} bytes of text",
        trace.len(),
        text.len()
    );

    // 3. Profile the replayed trace exactly like an analytic model.
    let config = ReportConfig {
        acf_horizon: 8_192,
        diagnostic_frames: 32_768,
        ..ReportConfig::default()
    };
    let report = TrafficReport::build(&trace, &config);
    println!("\n{}", report.render());

    // 4. Compare trace-driven CTS against the generating model's.
    let c = 538.0;
    let s_trace = SourceStats::from_process(&trace, 8_192);
    let s_model = SourceStats::from_process(&source, 8_192);
    println!("CTS, trace replay vs generating model:");
    for ms in [1.0, 5.0, 15.0] {
        let b = buffer_from_delay_ms(ms, c, paper::TS);
        let t = critical_time_scale(&s_trace, c, b);
        let m = critical_time_scale(&s_model, c, b);
        println!("  {ms:>5} ms:  trace m* = {:>3}   model m* = {:>3}", t.m_star, m.m_star);
    }
    println!("\nThe trace's *estimated* statistics drive the CTS/BOP machinery");
    println!("directly — no model fitting required. Expect the trace numbers to");
    println!("sit near (not on) the model's: a finite capture of an LRD source");
    println!("is itself a wandering object (its sample mean/variance drift for");
    println!("any feasible length), which is faithful to what measuring real");
    println!("video gives you. The LRD tail estimation error is harmless: the");
    println!("CTS never reads that far into the ACF.");
}

//! One-page traffic-engineering profiles for the paper's model zoo — the
//! "what would an operator print out" view of each source.
//!
//! Run with: `cargo run --release --example traffic_report`

use lrd_video::prelude::*;

fn main() {
    let config = ReportConfig {
        acf_horizon: 16_384,
        diagnostic_frames: 32_768,
        ..ReportConfig::default()
    };
    let models: Vec<Box<dyn FrameProcess>> = vec![
        Box::new(paper::build_z(0.975)),
        Box::new(paper::build_s(0.975, 1)),
        Box::new(paper::build_l()),
    ];
    for model in &models {
        let report = TrafficReport::build(model.as_ref(), &config);
        println!("{}", report.render());
    }
    println!("Same marginal, same link — but compare the CTS columns: the");
    println!("profile that drives provisioning is the short-lag ACF, and the");
    println!("Hurst row (the 'LRD detector') barely predicts any of it.");
}

//! Observability walkthrough: a Fig. 8-style CLR run with live progress,
//! a JSONL event stream, a Prometheus exposition and a human-readable
//! per-stage run summary — the README's "Observability" section, runnable.
//!
//! Run with: `cargo run --release --example telemetry_run -- [options]`
//!
//! Options:
//! * `--telemetry <dir>` — telemetry output directory (default
//!   `paper_output/telemetry`); receives `events.jsonl`, `metrics.prom`
//!   and `summary.txt`.
//! * `--validate` — after the run, re-read `events.jsonl` and check every
//!   line is valid JSON (the CI smoke job runs with this flag).
//!
//! Scale overrides for quick smoke runs: `VBR_REPS=n` (default 8) and
//! `VBR_FRAMES=n` (default 50 000 frames per replication).

use lrd_video::obs;
use lrd_video::prelude::*;
use std::sync::Arc;

/// Live progress sink: turns the event stream into console lines as the run
/// executes — the same stream the JSONL file receives.
struct ConsoleProgress;

impl Recorder for ConsoleProgress {
    fn record(&self, event: &Event) {
        match event {
            Event::RunStart {
                replications,
                n_sources,
                frames_per_replication,
                ..
            } => println!(
                "  run started: {replications} replications x {frames_per_replication} frames, N = {n_sources}"
            ),
            Event::Progress {
                completed,
                requested,
            } => println!("  [{completed}/{requested}] replications complete"),
            Event::ReplicationEnd {
                replication,
                duration_ns,
                clr_b0,
                ..
            } => println!(
                "    replication {replication}: {:.2} s, clr[B=0] = {clr_b0:.3e}",
                *duration_ns as f64 / 1e9
            ),
            Event::CheckpointSaved { replications, .. } => {
                println!("    checkpoint saved ({replications} replications on disk)")
            }
            Event::WatchdogTimeout { replication, .. } => {
                println!("    watchdog abandoned replication {replication}")
            }
            _ => {}
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut telemetry_dir = String::from("paper_output/telemetry");
    let mut validate = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--telemetry" => {
                telemetry_dir = it
                    .next()
                    .ok_or("--telemetry requires a directory argument")?
                    .clone();
            }
            "--validate" => validate = true,
            other => return Err(format!("unknown option {other}").into()),
        }
    }
    let reps: usize = std::env::var("VBR_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);
    let frames: usize = std::env::var("VBR_FRAMES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(50_000);

    // Fig. 8 operating point at reduced scale: model Z (FBNDP + DAR
    // composite, a = 0.9), N = 30 sources, CLR over a buffer-delay sweep.
    let z = paper::build_z(0.9);
    let mut cfg = SimConfig::paper_defaults(
        vec![0.0, 807.0, 1614.0, 3228.0, 6456.0, 12912.0],
        frames,
        reps,
    );
    cfg.track_bop = false;

    // Sink stack: the standard telemetry directory (JSONL + Prometheus +
    // summary) fanned out with a console progress printer.
    let sinks = obs::FanoutRecorder::new(vec![
        Telemetry::to_dir(&telemetry_dir)?,
        Arc::new(ConsoleProgress),
    ]);
    let opts = RunOptions {
        recorder: Some(Arc::new(sinks)),
        ..RunOptions::default()
    };

    println!("telemetry -> {telemetry_dir}/{{events.jsonl, metrics.prom, summary.txt}}");
    let out = run(&z, &cfg, &opts)?;

    println!("\nCLR over the buffer grid ({} replications):", out.provenance.completed);
    for est in &out.per_buffer {
        println!(
            "  B = {:>7.0} cells ({:>5.1} ms)  CLR = {:.3e} +- {:.1e}",
            est.buffer_total,
            est.buffer_ms,
            est.pooled.clr(),
            est.clr.half_width
        );
    }

    let summary_path = std::path::Path::new(&telemetry_dir).join("summary.txt");
    println!("\n--- {} ---", summary_path.display());
    print!("{}", std::fs::read_to_string(&summary_path)?);

    if validate {
        let events_path = std::path::Path::new(&telemetry_dir).join("events.jsonl");
        let body = std::fs::read_to_string(&events_path)?;
        match obs::jsonl::validate_stream(&body) {
            Ok(n) => println!("\nvalidated {n} JSONL event lines in {}", events_path.display()),
            Err((line, msg)) => {
                return Err(format!("events.jsonl line {line} invalid: {msg}").into())
            }
        }
    }
    Ok(())
}

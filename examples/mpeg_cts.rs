//! Critical Time Scale of an MPEG GOP-structured source — the paper's §6.2
//! "further work" ("finding CTS of various types of traffic sources
//! including MPEG-coded video"), executed.
//!
//! The MPEG model layers a deterministic 12-frame GOP pattern (I/P/B frame
//! sizes) under a slow DAR(1) scene-activity process. Its ACF oscillates
//! with the GOP period; the CTS machinery handles it unchanged.
//!
//! Run with: `cargo run --release --example mpeg_cts`

use lrd_video::models::{GopPattern, MpegGopModel};
use lrd_video::prelude::*;

fn main() {
    // A transport-shaped MPEG source: sender-side smoothing has softened the
    // raw I/P/B size ratios to about 2 : 1.5 : 1 (raw MPEG-1 ratios of
    // ~5 : 2.5 : 1 give a frame-size variance ~29x the paper's models and
    // would be carried GOP-smoothed on any real link).
    let unit = 500.0 * 12.0 / 14.5;
    let pattern = GopPattern::from_str("IBBPBBPBBPBB", 2.0 * unit, 1.5 * unit, unit);
    let mpeg = MpegGopModel::new(pattern, 0.98, 0.25, 40.0);
    println!("model: {} (transport-shaped sizes)", mpeg.label());
    println!("  mean {:.0} cells/frame, variance {:.0}", mpeg.mean(), mpeg.variance());
    let acf = mpeg.autocorrelations(36);
    println!("  ACF shows the GOP period: r(6) = {:.3} vs r(12) = {:.3} vs r(24) = {:.3}",
        acf[6], acf[12], acf[24]);

    // Operating point: a large link carrying N = 100 such streams at
    // ~9% headroom over the mean. Compare against a smooth DAR(1) source
    // with the same mean/variance/lag-1 correlation.
    let c = mpeg.mean() + 0.25 * mpeg.variance().sqrt();
    let stats_mpeg = SourceStats::from_process(&mpeg, 16_384);
    let dar = DarProcess::new(DarParams::dar1(
        acf[1].max(0.0),
        Marginal::Gaussian {
            mean: mpeg.mean(),
            sd: mpeg.variance().sqrt(),
        },
    ));
    let stats_dar = SourceStats::from_process(&dar, 16_384);

    let n = 100;
    println!("\nCTS and B-R BOP (N = {n}, c = {c:.0} cells/frame):");
    println!(
        "{:>8} {:>12} {:>12} {:>14} {:>14}",
        "ms", "m* MPEG", "m* DAR(1)", "BOP MPEG", "BOP DAR(1)"
    );
    for delay_ms in [0.5, 2.0, 5.0, 10.0, 20.0, 30.0] {
        let b = buffer_from_delay_ms(delay_ms, c, paper::TS);
        let cts_m = critical_time_scale(&stats_mpeg, c, b);
        let cts_d = critical_time_scale(&stats_dar, c, b);
        println!(
            "{delay_ms:>8} {:>12} {:>12} {:>14.3e} {:>14.3e}",
            cts_m.m_star,
            cts_d.m_star,
            bahadur_rao_bop(&stats_mpeg, c, b, n),
            bahadur_rao_bop(&stats_dar, c, b, n),
        );
    }

    println!("\nReading the table: the MPEG CTS stays at 1 until the buffer");
    println!("covers a couple of GOP cycles, then jumps — averaging over whole");
    println!("I/P/B cycles is what pays off, plus a few scene-length lags.");
    println!("Nothing at long range enters the loss estimate, which is the");
    println!("paper's conjecture for MPEG made concrete.");
}

//! Campaign observatory walkthrough: replays a recorded multi-shard event
//! stream through the cross-shard aggregator and prints every view the live
//! observatory offers — the post-mortem timeline, the terminal dashboard,
//! and the Prometheus text exposition `--serve` exposes.
//!
//! Run with: `cargo run --example campaign_observatory`
//!
//! The input is the committed fixture `tests/fixtures/observatory.events.jsonl`
//! (a 2-shard campaign in which shard 1 stalls once and is restarted), so the
//! output is deterministic — no simulation runs, no RNG is touched. The same
//! aggregation drives `campaign_run --watch`, `--serve` and `--report` on
//! live streams; see the README's "Live campaign dashboard" section.

use lrd_video::obs::{render_campaign_prometheus, render_dashboard, CampaignAggregator};

/// Recorded 2-shard campaign: shard 0 clean, shard 1 stalled + restarted.
const FIXTURE: &str = include_str!("../tests/fixtures/observatory.events.jsonl");

fn main() {
    let mut agg = CampaignAggregator::new(30_000).with_timeline();
    let ingested = agg.ingest_stream(FIXTURE);
    let (events, skipped) = agg.counts();
    println!(
        "replayed {ingested} lines ({events} aggregated, {skipped} skipped)\n"
    );

    // The recorded stream carries its own clock (`ts_ms` stamps), so the
    // "now" for a post-mortem is the stream's latest stamp — every render
    // below is a pure function of the fixture bytes.
    let now = agg.latest_ts_ms().unwrap_or(0);

    print!("{}", agg.render_timeline());

    println!("\ndashboard (what `campaign_run --watch` redraws live):");
    print!("{}", render_dashboard(&agg.snapshot(now), 30, false));

    println!("\nprometheus exposition (what `campaign_run --serve` scrapes):");
    print!("{}", render_campaign_prometheus(&agg.snapshot(now)));
}

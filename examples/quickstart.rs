//! Quickstart: build the paper's LRD video source, find out how many frame
//! correlations actually matter, predict the loss rate, and check the
//! prediction against a simulation.
//!
//! Run with: `cargo run --release --example quickstart`

use lrd_video::prelude::*;
use vbr_core::experiments::SimScale;

fn main() {
    // ------------------------------------------------------------------
    // 1. Build Z^0.975 — the paper's stand-in for a real VBR video trace:
    //    long-range dependent (H = 0.9) with strong short-term correlation.
    // ------------------------------------------------------------------
    let z = paper::build_z(0.975);
    println!("model: {}", z.label());
    println!("  mean     {:.0} cells/frame", z.mean());
    println!("  variance {:.0} cells^2", z.variance());
    let acf = z.autocorrelations(1000);
    println!("  r(1) = {:.3}, r(10) = {:.3}, r(1000) = {:.4}  <- the LRD tail", acf[1], acf[10], acf[1000]);

    // ------------------------------------------------------------------
    // 2. The Critical Time Scale: at the paper's operating point (N = 30
    //    sources, c = 538 cells/frame each), how many of those correlations
    //    influence the loss rate at a realistic buffer?
    // ------------------------------------------------------------------
    let n = 30;
    let c = 538.0;
    let stats = SourceStats::from_process(&z, 8_192);
    println!("\nCritical Time Scale at c = {c} cells/frame:");
    for delay_ms in [0.5, 2.0, 8.0, 20.0] {
        let b = buffer_from_delay_ms(delay_ms, c, paper::TS);
        let cts = critical_time_scale(&stats, c, b);
        println!(
            "  buffer {delay_ms:>5} ms  ->  m* = {:>4} frames (I = {:.4})",
            cts.m_star, cts.rate
        );
    }
    println!("  -> even at 20 ms only a handful of lags matter; the LRD tail");
    println!("     (lags 100..infinity) never enters the loss estimate.");

    // ------------------------------------------------------------------
    // 3. Predict the buffer overflow probability (Bahadur-Rao) and compare
    //    with a finite-buffer simulation at a 2 ms buffer.
    // ------------------------------------------------------------------
    let delay_ms = 2.0;
    let b = buffer_from_delay_ms(delay_ms, c, paper::TS);
    let predicted = bahadur_rao_bop(&stats, c, b, n);
    println!("\nBahadur-Rao BOP at {delay_ms} ms, N = {n}: {predicted:.3e}");

    let scale = SimScale::quick(); // 4 x 10k frames: sized for one core
    let mut cfg = SimConfig::paper_defaults(
        vec![b * n as f64],
        scale.frames,
        scale.replications,
    );
    cfg.seed = 42;
    let out = simulate_clr(&z, &cfg).expect("valid sim config");
    let est = &out.per_buffer[0];
    println!(
        "simulated CLR over {} frames: {:.3e} (95% CI half-width {:.1e})",
        out.frames_total,
        est.pooled.clr(),
        est.clr.half_width
    );
    println!("(the paper's Fig. 10 point: large-buffer asymptotics upper-bound");
    println!(" the finite-buffer CLR by ~2 orders of magnitude — same here.)");
}

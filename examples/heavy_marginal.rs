//! Paper §6.1 ("Effect of other marginal distributions"), executed: swap
//! the Gaussian frame-size marginal for the heavier-tailed negative
//! binomial at the same mean/variance and watch what the simulated CLR
//! does — Heyman & Lakshman's variant of the argument.
//!
//! Run with: `cargo run --release --example heavy_marginal`

use lrd_video::prelude::*;
use vbr_core::experiments::SimScale;

fn main() {
    let gaussian = DarProcess::new(DarParams::dar1(0.9, Marginal::paper_gaussian()));
    let negbin = DarProcess::new(DarParams::dar1(
        0.9,
        Marginal::NegativeBinomial {
            mean: 500.0,
            variance: 5000.0,
        },
    ));

    println!("DAR(1) rho = 0.9 under two marginals with identical mean/variance:");
    println!("  Gaussian N(500, 5000)  vs  NegBin(mean 500, var 5000)\n");

    let scale = SimScale {
        frames: 60_000,
        replications: 6,
    };
    let buffers_ms = [0.001, 0.5, 1.0, 2.0, 3.0];
    let buffers: Vec<f64> = buffers_ms
        .iter()
        .map(|&ms| buffer_from_delay_ms(ms, 538.0, paper::TS) * 30.0)
        .collect();
    let mut cfg = SimConfig::paper_defaults(buffers, scale.frames, scale.replications);
    cfg.seed = 61;

    let g = simulate_clr(&gaussian, &cfg).expect("valid sim config");
    let nb = simulate_clr(&negbin, &cfg).expect("valid sim config");

    println!(
        "{:>8} {:>14} {:>14} {:>8}",
        "ms", "Gaussian CLR", "NegBin CLR", "ratio"
    );
    for (i, &ms) in buffers_ms.iter().enumerate() {
        let gc = g.per_buffer[i].pooled.clr();
        let nc = nb.per_buffer[i].pooled.clr();
        let ratio = if gc > 0.0 { nc / gc } else { f64::NAN };
        println!("{ms:>8} {gc:>14.3e} {nc:>14.3e} {ratio:>8.2}");
    }

    println!("\nPaper §6.1's expectation: the heavier tail costs a roughly");
    println!("constant bandwidth premium, and once that is provisioned the");
    println!("buffer behaviour is again governed by the autocorrelations —");
    println!("the correlation conclusions are marginal-robust. The modest,");
    println!("roughly buffer-independent ratio above is that premium at work.");
}

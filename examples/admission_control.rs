//! Connection admission control on an OC-3 ATM link — the paper's
//! motivating application (via Elwalid et al.).
//!
//! An OC-3 carries ~353,207 cells/sec of ATM payload. How many VBR video
//! sources (mean 500 cells/frame at 25 frames/sec = 12,500 cells/sec) can
//! be admitted at CLR <= 1e-6 with a 2 ms switch buffer — and does it
//! matter whether the admission controller models the source as LRD or as
//! a simple Markov (DAR) fit?
//!
//! Run with: `cargo run --release --example admission_control`

use lrd_video::prelude::*;

fn main() {
    // OC-3: 155.52 Mbit/s; ATM payload rate ~353,207 cells/s.
    let link_cells_per_sec = 353_207.0;
    let capacity = link_cells_per_sec * paper::TS; // cells per frame time
    let target_clr = 1e-6;

    println!("OC-3 link: {capacity:.0} cells/frame-time capacity");
    println!("source: VBR video, mean 500 cells/frame (12.5k cells/s), var 5000");
    println!("target CLR: {target_clr:e}\n");

    let peak_admissible = (capacity / (paper::MEAN + 3.0 * paper::VARIANCE.sqrt())) as usize;
    let mean_admissible = (capacity / paper::MEAN) as usize;
    println!("peak-rate allocation (mean+3sd):   {peak_admissible} sources");
    println!("mean-rate allocation (no QoS):     {mean_admissible} sources (unstable target)\n");

    println!(
        "{:<28} {:>12} {:>12} {:>12}",
        "traffic model", "B = 0.5 ms", "B = 2 ms", "B = 8 ms"
    );
    let z = paper::build_z(0.975);
    let models: Vec<(String, SourceStats)> = vec![
        (
            "Z^0.975 (true LRD source)".into(),
            SourceStats::from_process(&z, 16_384),
        ),
        (
            "DAR(1) fit".into(),
            SourceStats::from_process(&paper::build_s(0.975, 1), 16_384),
        ),
        (
            "DAR(3) fit".into(),
            SourceStats::from_process(&paper::build_s(0.975, 3), 16_384),
        ),
        (
            "L (LRD tail only)".into(),
            SourceStats::from_process(&paper::build_l(), 16_384),
        ),
        (
            "IID (no correlation)".into(),
            SourceStats::from_process(
                &IidProcess::new(Marginal::paper_gaussian()),
                16_384,
            ),
        ),
    ];

    for (label, stats) in &models {
        print!("{label:<28}");
        for delay_ms in [0.5, 2.0, 8.0] {
            let buffer = delay_ms / 1e3 * link_cells_per_sec; // cells
            let n = max_admissible_sources(
                stats,
                capacity,
                buffer,
                target_clr,
                Asymptotic::BahadurRao,
            );
            print!(" {n:>12}");
        }
        println!();
    }

    println!();
    println!("Reading the table:");
    println!(" * Every statistical model lands within 1-2 connections of the true");
    println!("   LRD source. This is the paper's §5.4 observation verbatim: CLR");
    println!("   gaps of an order of magnitude \"become negligible when the loss");
    println!("   rate is translated to the number of admissible VBR video");
    println!("   connections\" — which is why DAR(1)-based CAC worked on real");
    println!("   LRD traces (Elwalid et al.).");
    println!(" * All of them beat peak-rate allocation by ~30% more connections.");
}

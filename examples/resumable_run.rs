//! Fault tolerance walkthrough: checkpoint/resume, watchdog degradation,
//! and typed failure — the README's "Fault tolerance & resumable runs"
//! section, runnable.
//!
//! Run with: `cargo run --release --example resumable_run`
//!
//! The checkpoint path can be overridden with `VBR_CKPT=/path/to/file`, and
//! the replication count with `VBR_REPS=n` — re-running with a larger count
//! against the same file resumes from what is already on disk (try killing
//! the process mid-run: the atomic checkpoint write means the next
//! invocation picks up from the last completed replication).
//!
//! Pass `--telemetry <dir>` to also record the checkpointed run's event
//! stream, metrics and summary (see `examples/telemetry_run.rs`).

use lrd_video::prelude::*;
use rand::RngCore;
use std::time::Duration;

/// A model that emits NaN after a while — the "silent corruption" case the
/// numeric guardrails exist for.
#[derive(Debug, Clone)]
struct GoesBad(u64);

impl FrameProcess for GoesBad {
    fn next_frame(&mut self, _rng: &mut dyn RngCore) -> f64 {
        self.0 += 1;
        if self.0 > 1_000 {
            f64::NAN
        } else {
            500.0
        }
    }
    fn mean(&self) -> f64 {
        500.0
    }
    fn variance(&self) -> f64 {
        1.0
    }
    fn autocorrelations(&self, max_lag: usize) -> Vec<f64> {
        let mut r = vec![0.0; max_lag + 1];
        r[0] = 1.0;
        r
    }
    fn reset(&mut self, _rng: &mut dyn RngCore) {
        self.0 = 0;
    }
    fn boxed_clone(&self) -> Box<dyn FrameProcess> {
        Box::new(self.clone())
    }
    fn label(&self) -> String {
        "goes-bad".into()
    }
}

fn main() -> Result<(), SimError> {
    let ckpt = std::env::var("VBR_CKPT")
        .unwrap_or_else(|_| "paper_output/resumable_demo.ckpt".into());
    let reps: usize = std::env::var("VBR_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(6);
    let args: Vec<String> = std::env::args().skip(1).collect();
    let recorder = match args.iter().position(|a| a == "--telemetry") {
        Some(i) => {
            let dir = args.get(i + 1).map(String::as_str).unwrap_or("paper_output/telemetry");
            match Telemetry::to_dir(dir) {
                Ok(rec) => {
                    println!("telemetry -> {dir}/");
                    Some(rec)
                }
                Err(e) => {
                    eprintln!("telemetry dir {dir} unavailable ({e}); continuing without");
                    None
                }
            }
        }
        None => None,
    };

    // The paper's multiplexer at reduced scale: 30 sources, two buffers.
    let z = paper::build_z(0.975);
    let mut cfg = SimConfig::paper_defaults(vec![807.0, 3228.0], 50_000, reps);
    cfg.track_bop = false;

    // ---------------------------------------------------------------
    // 1. Checkpointed run: completed replications persist as they land.
    // ---------------------------------------------------------------
    let opts = RunOptions {
        checkpoint: Some(CheckpointPolicy::new(&ckpt)),
        watchdog: Watchdog {
            replication_deadline: Some(Duration::from_secs(600)),
            run_budget: None,
        },
        threads: None,
        recorder,
        ..RunOptions::default()
    };
    println!("running {reps} replications with checkpoint at {ckpt} ...");
    let out = run(&z, &cfg, &opts)?;
    let p = &out.provenance;
    println!(
        "  completed {}/{} (resumed {} from checkpoint, {} timed out)",
        p.completed, p.requested, p.resumed, p.timed_out
    );
    for est in &out.per_buffer {
        println!(
            "  B = {:>6.0} cells ({:>4.1} ms)  CLR = {:.3e} +- {:.1e}",
            est.buffer_total,
            est.buffer_ms,
            est.pooled.clr(),
            est.clr.half_width
        );
    }

    // ---------------------------------------------------------------
    // 2. Re-run: everything loads from disk, nothing is recomputed,
    //    and the estimates are bit-identical.
    // ---------------------------------------------------------------
    let again = run(&z, &cfg, &opts)?;
    println!(
        "re-run: resumed {} of {} from checkpoint (bit-identical: {})",
        again.provenance.resumed,
        again.provenance.completed,
        again.per_buffer[0].pooled == out.per_buffer[0].pooled
            && again.per_buffer[0].clr.mean.to_bits() == out.per_buffer[0].clr.mean.to_bits()
    );

    // ---------------------------------------------------------------
    // 3. Watchdog degradation: a zero run-budget still yields the first
    //    replication, honestly labeled partial.
    // ---------------------------------------------------------------
    let strangled = RunOptions {
        checkpoint: None,
        watchdog: Watchdog {
            replication_deadline: None,
            run_budget: Some(Duration::ZERO),
        },
        threads: Some(1),
        recorder: None,
        ..RunOptions::default()
    };
    let partial = run(&z, &cfg, &strangled)?;
    println!(
        "zero-budget run: completed {}/{} (partial = {}, budget_exhausted = {})",
        partial.provenance.completed,
        partial.provenance.requested,
        partial.provenance.is_partial(),
        partial.provenance.budget_exhausted
    );

    // ---------------------------------------------------------------
    // 4. Typed failure: a NaN-emitting model is pinned to its source,
    //    frame and seed — not a panic, not silent garbage.
    // ---------------------------------------------------------------
    match run(&GoesBad(0), &cfg, &RunOptions::default()) {
        Err(e) => println!("faulty model rejected: {e}"),
        Ok(_) => println!("ERROR: faulty model was not caught!"),
    }

    Ok(())
}

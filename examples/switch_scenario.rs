//! A small ATM switch scenario: three output ports with different traffic
//! mixes, per-port loss and delay-percentile measurement — composing the
//! multiplexer substrate the way a deployment would.
//!
//! Run with: `cargo run --release --example switch_scenario`

use lrd_video::prelude::*;
use lrd_video::sim::{OutputQueuedSwitch, PortConfig};
use vbr_stats::rng::Xoshiro256PlusPlus;
use vbr_stats::P2Quantile;

fn main() {
    // Port 0: an LRD movie trunk — 10 x Z^0.975 at c = 538 each.
    // Port 1: videoconference — 10 x DAR(1) (rho 0.9), provisioned tighter.
    // Port 2: the same videoconference load with half the buffer.
    let ports = [
        PortConfig {
            capacity: 10.0 * 538.0,
            buffer: 300.0,
        },
        PortConfig {
            capacity: 10.0 * 530.0,
            buffer: 300.0,
        },
        PortConfig {
            capacity: 10.0 * 530.0,
            buffer: 150.0,
        },
    ];

    let mut routed: Vec<(Box<dyn FrameProcess>, usize)> = Vec::new();
    for _ in 0..10 {
        routed.push((Box::new(paper::build_z(0.975)), 0));
    }
    for port in [1usize, 2] {
        for _ in 0..10 {
            routed.push((
                Box::new(DarProcess::new(DarParams::dar1(
                    0.9,
                    Marginal::paper_gaussian(),
                ))),
                port,
            ));
        }
    }

    let mut switch = OutputQueuedSwitch::new(&ports, routed);
    let mut rng = Xoshiro256PlusPlus::from_seed_u64(2026);
    switch.reset(&mut rng);

    // Track p99.9 of each port's workload (the delay percentile a real QoS
    // report would carry) with O(1)-memory P2 estimators.
    let mut p999: Vec<P2Quantile> = (0..3).map(|_| P2Quantile::new(0.999)).collect();
    let frames = 8_000;
    for _ in 0..frames {
        switch.step(&mut rng);
        for (port, est) in p999.iter_mut().enumerate() {
            est.observe(switch.port_workload(port));
        }
    }

    println!("{frames} frames through a 3-port output-queued switch\n");
    println!(
        "{:<6} {:>12} {:>12} {:>14} {:>16}",
        "port", "offered", "lost", "CLR", "p99.9 delay"
    );
    for port in 0..3 {
        let acct = switch.port_account(port);
        let cap = ports[port].capacity;
        let delay_ms = p999[port].estimate() / cap * paper::TS * 1e3;
        println!(
            "{:<6} {:>12.0} {:>12.1} {:>14.3e} {:>13.3} ms",
            port,
            acct.offered,
            acct.lost,
            acct.clr(),
            delay_ms
        );
    }
    println!("\nPorts 1 and 2 carry identical traffic; halving the buffer");
    println!("(port 2) moves the loss/delay trade-off exactly as the CTS");
    println!("analysis predicts — and the LRD trunk on port 0 needs no");
    println!("special treatment beyond its short-term-correlation headroom.");
}

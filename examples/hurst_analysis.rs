//! Hurst-parameter analysis of the model zoo — reproducing the measurement
//! step that started the whole LRD debate (Beran et al. found H > 0.5 in
//! VBR video; the paper asks whether that matters).
//!
//! Generates paths from each model and estimates H three ways (R/S,
//! aggregated variance, log-periodogram), comparing against the design
//! value.
//!
//! Run with: `cargo run --release --example hurst_analysis`

use lrd_video::prelude::*;
use vbr_stats::rng::Xoshiro256PlusPlus;
use vbr_stats::{aggregated_variance_hurst, periodogram_hurst, rs_hurst};

fn main() {
    let n = 1 << 17; // 131,072 frames (~87 minutes of video)
    let mut rng = Xoshiro256PlusPlus::from_seed_u64(7777);

    let models: Vec<(Box<dyn FrameProcess>, &str)> = vec![
        (
            Box::new(IidProcess::new(Marginal::paper_gaussian())),
            "0.50 (SRD)",
        ),
        (Box::new(paper::build_s(0.975, 1)), "0.50 (SRD)"),
        (Box::new(paper::build_z(0.975)), "0.90"),
        (Box::new(paper::build_z(0.7)), "0.90"),
        (Box::new(paper::build_v(1.0)), "0.95"),
        (Box::new(paper::build_l()), "0.86"),
    ];

    println!("{n} frames per model; three estimators per path\n");
    println!(
        "{:<16} {:>10} {:>8} {:>8} {:>8}",
        "model", "design H", "R/S", "aggvar", "GPH"
    );
    for (mut model, design) in models {
        model.reset(&mut rng);
        let path: Vec<f64> = (0..n).map(|_| model.next_frame(&mut rng)).collect();
        let rs = rs_hurst(&path);
        let av = aggregated_variance_hurst(&path);
        let pg = periodogram_hurst(&path);
        println!(
            "{:<16} {:>10} {:>8.3} {:>8.3} {:>8.3}",
            model.label(),
            design,
            rs.h,
            av.h,
            pg.h
        );
    }

    println!();
    println!("Notes:");
    println!(" * Z^a and V^v estimate H > 0.5 however weak or strong their");
    println!("   short-term correlation knob — LRD is a tail property.");
    println!(" * The DAR(1) fit of Z^0.975 estimates H ~ 0.5-0.6: it looks just");
    println!("   like the source at short lags but has no long memory at all.");
    println!(" * That pair — same CLR behaviour (paper Figs 6/9), different H —");
    println!("   is the whole \"myth vs reality\" of the paper.");
}

//! Carrying a simulated VBR video source over a faithful ATM UNI:
//! cells with real headers and HEC, a dual-GCRA traffic contract, and a
//! spacer — the cell layer underneath everything the paper measures.
//!
//! Run with: `cargo run --release --example atm_link`

use lrd_video::atm::{Cell, CellHeader, Gcra, GcraOutcome, PayloadType, Spacer, PAYLOAD_SIZE};
use lrd_video::prelude::*;
use vbr_stats::rng::Xoshiro256PlusPlus;

fn main() {
    // A VBR video connection on VPI 3 / VCI 100.
    let header = CellHeader {
        gfc: 0,
        vpi: 3,
        vci: 100,
        pt: PayloadType::User0,
        clp: false,
    };

    // Traffic contract: PCR = 2x mean rate with tight CDVT; SCR = 1.2x mean
    // with a 2-frame burst allowance.
    let mean_rate = paper::MEAN / paper::TS; // 12,500 cells/s
    let pcr = 2.0 * mean_rate;
    let scr = 1.2 * mean_rate;
    let mbs = (2.0 * paper::MEAN) as u32;
    let mut policer = Gcra::dual(
        Gcra::peak_rate(pcr, 1e-5),
        Gcra::sustainable_rate(scr, pcr, mbs),
    );
    let mut spacer = Spacer::for_rate(pcr);

    println!("contract: PCR {pcr:.0} cells/s, SCR {scr:.0} cells/s, MBS {mbs} cells");

    // Generate 2,000 frames of Z^0.975 and emit smoothed cells.
    let mut source = paper::build_z(0.975);
    let mut rng = Xoshiro256PlusPlus::from_seed_u64(33);
    let frames = 2_000usize;
    let mut offered = 0u64;
    let mut tagged = 0u64;
    let mut shaped_delay_max: f64 = 0.0;
    let mut hec_roundtrips = 0u64;

    for f in 0..frames {
        let cells = source.next_frame(&mut rng).round().max(0.0) as usize;
        let frame_start = f as f64 * paper::TS;
        for j in 0..cells {
            let arrival = frame_start + j as f64 * paper::TS / cells as f64;
            offered += 1;

            // Shape to the peak rate first (what a NIC spacer would do)...
            let departure = spacer.depart(arrival);
            shaped_delay_max = shaped_delay_max.max(departure - arrival);

            // ...then the network polices the shaped stream.
            if policer.police(departure) == GcraOutcome::NonConforming {
                tagged += 1; // would be CLP-tagged or dropped by UPC
            }

            // Encode/decode one in every 1000 cells end to end (HEC check).
            if offered.is_multiple_of(1000) {
                let cell = Cell::new(header, [0xAB; PAYLOAD_SIZE]);
                let bytes = cell.to_bytes();
                let parsed = Cell::from_bytes(&bytes).expect("HEC must verify");
                assert_eq!(parsed.header, header);
                hec_roundtrips += 1;
            }
        }
    }

    println!("\nover {frames} frames ({offered} cells):");
    println!(
        "  spacer: max added delay {:.3} ms (peak-rate shaping)",
        shaped_delay_max * 1e3
    );
    println!(
        "  UPC: {tagged} cells non-conforming ({:.3}% of offered)",
        100.0 * tagged as f64 / offered as f64
    );
    println!("  HEC: {hec_roundtrips} cells encoded+decoded, all headers verified");
    println!("\nThe SCR bucket is what 'sees' the source's burstiness: an LRD");
    println!("source at the same mean rate produces sustained excursions that");
    println!("a short-memory source would not — try swapping in the DAR(1) fit");
    println!("(paper::build_s(0.975, 1)) and watch the tagged fraction drop.");
}

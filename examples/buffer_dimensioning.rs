//! Buffer and bandwidth dimensioning: the provisioning questions an ATM
//! operator actually asks, answered for LRD and Markov views of the same
//! video source.
//!
//! The "myth" the paper demolishes says LRD makes buffer requirements
//! explode (the Weibull BOP decays so slowly that no finite buffer looks
//! sufficient). The reality: within real-time delay budgets the requirement
//! is set by short-term correlations, and the LRD tail only inflates the
//! numbers at loss targets / buffer sizes nobody can use.
//!
//! Run with: `cargo run --release --example buffer_dimensioning`

use lrd_video::prelude::*;

fn main() {
    let n = 30;
    let c = 538.0;
    let horizon = 65_536;

    let sources: Vec<(&str, SourceStats)> = vec![
        (
            "Z^0.975 (LRD, strong short)",
            SourceStats::from_process(&paper::build_z(0.975), horizon),
        ),
        (
            "Z^0.7   (LRD, weak short)",
            SourceStats::from_process(&paper::build_z(0.7), horizon),
        ),
        (
            "DAR(1) fit of Z^0.975",
            SourceStats::from_process(&paper::build_s(0.975, 1), horizon),
        ),
        (
            "L       (LRD tail only)",
            SourceStats::from_process(&paper::build_l(), horizon),
        ),
    ];

    println!("Buffer required (as max delay, msec) at c = {c} cells/frame, N = {n}:");
    println!(
        "{:<30} {:>10} {:>10} {:>10}",
        "source model", "CLR 1e-4", "CLR 1e-6", "CLR 1e-8"
    );
    for (label, stats) in &sources {
        print!("{label:<30}");
        for target in [1e-4, 1e-6, 1e-8] {
            match required_buffer(stats, c, n, target) {
                Some(b) => {
                    let ms = b / c * paper::TS * 1e3;
                    print!(" {ms:>9.2}m");
                }
                None => print!(" {:>10}", "infeasible"),
            }
        }
        println!();
    }

    println!("\nEffective bandwidth (cells/frame per source) at a 2 ms buffer:");
    println!(
        "{:<30} {:>10} {:>10} {:>10}",
        "source model", "CLR 1e-4", "CLR 1e-6", "CLR 1e-8"
    );
    let b2 = buffer_from_delay_ms(2.0, c, paper::TS);
    for (label, stats) in &sources {
        print!("{label:<30}");
        for target in [1e-4, 1e-6, 1e-8] {
            match required_bandwidth(stats, b2, n, target) {
                Some(cc) => print!(" {cc:>10.1}"),
                None => print!(" {:>10}", "infeasible"),
            }
        }
        println!();
    }

    println!("\nHow to read this:");
    println!(" * Every requirement is finite and inside the 20-30 ms budget at");
    println!("   CLR 1e-6 — LRD does not blow up the buffer demand where it counts.");
    println!(" * The gap between Z^0.975 and Z^0.7 (same H!) dwarfs the gap");
    println!("   between Z^0.975 and its memoryless-tail DAR(1) fit: short-term");
    println!("   correlation is the provisioning variable that matters.");
    println!(" * Effective bandwidth barely moves with the loss target across");
    println!("   4 orders of magnitude — the mean-plus-margin structure the");
    println!("   effective-bandwidth literature promises, intact under LRD.");
}

//! Fitting a parsimonious Markov model to an LRD "trace" and checking what
//! the fit is worth — the paper's §3/§5 workflow end to end.
//!
//! We treat a generated `Z^0.975` path as if it were a measured VBR video
//! trace: estimate its sample ACF, fit DAR(p) models by Yule-Walker on the
//! *estimated* correlations, then compare the fitted models' loss
//! predictions (and a simulation) against the source itself.
//!
//! Run with: `cargo run --release --example model_fitting`

use lrd_video::prelude::*;
use vbr_core::matching::fit_dar;
use vbr_stats::rng::Xoshiro256PlusPlus;
use vbr_stats::{aggregated_variance_hurst, sample_acf_fft, Moments};

fn main() {
    // --- "Measure" a trace ------------------------------------------------
    let mut source = paper::build_z(0.975);
    let mut rng = Xoshiro256PlusPlus::from_seed_u64(2024);
    let n_frames = 400_000;
    let trace: Vec<f64> = (0..n_frames).map(|_| source.next_frame(&mut rng)).collect();

    let mut m = Moments::new();
    m.extend(&trace);
    let acf = sample_acf_fft(&trace, 64);
    let hurst = aggregated_variance_hurst(&trace);
    println!("trace: {n_frames} frames");
    println!("  sample mean {:.1}, variance {:.0}", m.mean(), m.variance());
    println!(
        "  sample r(1) = {:.3} (model: {:.3}); estimated H = {:.2} (designed 0.9)",
        acf[1],
        source.autocorrelations(1)[1],
        hurst.h
    );

    // --- Fit DAR(p) from the *sample* ACF ---------------------------------
    println!("\nYule-Walker DAR(p) fits from the estimated ACF:");
    let marginal = Marginal::Gaussian {
        mean: m.mean(),
        sd: m.variance().sqrt(),
    };
    let mut fits = Vec::new();
    for p in 1..=3 {
        match fit_dar(&acf, p, marginal.clone()) {
            Ok(params) => {
                println!(
                    "  DAR({p}): rho = {:.4}, lag probs = {:?}",
                    params.rho,
                    params
                        .lag_probs
                        .iter()
                        .map(|x| (x * 1000.0).round() / 1000.0)
                        .collect::<Vec<_>>()
                );
                fits.push((p, DarProcess::new(params)));
            }
            Err(e) => println!("  DAR({p}): fit failed ({e})"),
        }
    }

    // --- Compare loss predictions ------------------------------------------
    let c = 538.0;
    let n = 30;
    println!("\nBahadur-Rao BOP at N = {n}, c = {c} (buffer in ms):");
    println!(
        "{:>8} {:>14} {}",
        "ms",
        "source Z^0.975",
        fits.iter()
            .map(|(p, _)| format!("{:>14}", format!("DAR({p}) fit")))
            .collect::<String>()
    );
    let src_stats = SourceStats::from_process(&source, 16_384);
    let fit_stats: Vec<SourceStats> = fits
        .iter()
        .map(|(_, f)| SourceStats::from_process(f, 16_384))
        .collect();
    for delay_ms in [0.5, 2.0, 5.0, 10.0, 20.0] {
        let b = buffer_from_delay_ms(delay_ms, c, paper::TS);
        print!("{delay_ms:>8} {:>14.3e}", bahadur_rao_bop(&src_stats, c, b, n));
        for fs in &fit_stats {
            print!(" {:>14.3e}", bahadur_rao_bop(fs, c, b, n));
        }
        println!();
    }

    // --- And a small head-to-head simulation -------------------------------
    println!("\nsimulated CLR at a 2 ms buffer (quick scale):");
    let b_total = buffer_from_delay_ms(2.0, c, paper::TS) * n as f64;
    let cfg = SimConfig::paper_defaults(vec![b_total], 30_000, 6);
    let z_sim = simulate_clr(&source, &cfg).expect("valid sim config").per_buffer[0].pooled.clr();
    println!("  {:<14} {z_sim:.3e}", source.label());
    for (p, fit) in &fits {
        let s = simulate_clr(fit, &cfg).expect("valid sim config").per_buffer[0].pooled.clr();
        println!("  DAR({p}) fit     {s:.3e}");
    }
    println!("\nTakeaway: the DAR fits, which ignore the LRD tail entirely,");
    println!("track the source's loss within the gap the paper reports; more");
    println!("matched lags (p) close the gap further.");
}

//! Statistical acceptance tests for every frame-level generator in the
//! workspace: does each model actually exhibit the statistics it claims?
//!
//! Three layers of checks, all on fixed seeds so CI is deterministic:
//!
//! 1. **Hurst recovery** — models parameterized by a target H (FGN, F-ARIMA,
//!    the Clegg chain, the MWM cascade) must yield path estimates near that
//!    H under both a time-domain estimator (R/S) and a frequency-domain one
//!    (local Whittle); short-range models must *not* masquerade as LRD.
//! 2. **Marginal law** — exactly-Gaussian models pass a KS test against
//!    their configured normal; moment-matched models (FBNDP families, Clegg,
//!    MWM) hit their analytic mean/variance within LRD-aware tolerances.
//! 3. **ACF sanity** — every analytic ACF is a correlation sequence, LRD
//!    tails stay positive and heavy, SRD tails actually vanish.
//!
//! Tolerances are deliberately loose enough to be seed-robust (they were
//! tuned with 5-sigma-ish headroom) but tight enough that a broken draw
//! order, a wrong exponent, or a mis-scaled marginal fails loudly.

use lrd_video::prelude::*;
use vbr_models::{FarimaProcess, FgnProcess, IidProcess, Marginal};
use vbr_stats::rng::Xoshiro256PlusPlus;
use vbr_stats::{ks_test, local_whittle_hurst, normal_cdf, rs_hurst, Moments};

/// One sample path from a fresh stationary start of `proto`.
fn sample_path(proto: &dyn FrameProcess, seed: u64, n: usize) -> Vec<f64> {
    let mut p = proto.boxed_clone();
    let mut rng = Xoshiro256PlusPlus::from_seed_u64(seed);
    p.reset(&mut rng);
    let mut out = vec![0.0_f64; n];
    p.fill_frames(&mut out, &mut rng);
    out
}

const N: usize = 1 << 15;

#[test]
fn lrd_models_recover_their_configured_hurst() {
    // (prototype, target H, seed). Models whose H is a direct constructor
    // parameter — the estimate must come back near the dial setting.
    let cases: Vec<(Box<dyn FrameProcess>, f64, u64)> = vec![
        (Box::new(FgnProcess::new(500.0, 70.0, 0.8, 1.0, 1024)), 0.8, 11),
        (
            Box::new(FarimaProcess::from_hurst(500.0, 70.0, 0.85, 1024)),
            0.85,
            12,
        ),
        (Box::new(paper::build_clegg(0.8)), 0.8, 13),
        (Box::new(paper::build_mwm(0.8)), 0.8, 14),
    ];
    for (proto, h, seed) in &cases {
        let path = sample_path(proto.as_ref(), *seed, N);
        let lw = local_whittle_hurst(&path, 0);
        assert!(
            (lw - h).abs() < 0.1,
            "{}: local Whittle H = {lw:.3}, target {h}",
            proto.label()
        );
        let rs = rs_hurst(&path);
        assert!(
            (rs.h - h).abs() < 0.15,
            "{}: R/S H = {:.3} (se {:.3}), target {h}",
            proto.label(),
            rs.h,
            rs.se
        );
    }
}

#[test]
fn srd_models_do_not_masquerade_as_lrd() {
    let cases: Vec<(Box<dyn FrameProcess>, u64)> = vec![
        (Box::new(GaussianAr1::new(500.0, 70.0, 0.8)), 21),
        (Box::new(paper::build_s(0.975, 2)), 22),
        (
            Box::new(IidProcess::new(Marginal::Gaussian {
                mean: 500.0,
                sd: 70.0,
            })),
            23,
        ),
    ];
    for (proto, seed) in &cases {
        let path = sample_path(proto.as_ref(), *seed, N);
        let lw = local_whittle_hurst(&path, 0);
        assert!(
            lw < 0.68,
            "{}: local Whittle H = {lw:.3} — an SRD model must estimate ~0.5",
            proto.label()
        );
    }
    // IID specifically must sit right at H = 1/2.
    let iid = IidProcess::new(Marginal::Gaussian {
        mean: 500.0,
        sd: 70.0,
    });
    let path = sample_path(&iid, 24, N);
    let lw = local_whittle_hurst(&path, 0);
    assert!((lw - 0.5).abs() < 0.08, "IID local Whittle H = {lw:.3}");
    let rs = rs_hurst(&path);
    assert!((rs.h - 0.5).abs() < 0.12, "IID R/S H = {:.3}", rs.h);
}

#[test]
fn gaussian_marginal_models_pass_a_ks_test() {
    // (prototype, thinning stride, seed). Thinning breaks the serial
    // dependence the KS null assumes: stride is chosen so the residual
    // autocorrelation at one stride is negligible for each model.
    let cases: Vec<(Box<dyn FrameProcess>, usize, u64)> = vec![
        (
            Box::new(IidProcess::new(Marginal::Gaussian {
                mean: 500.0,
                sd: 70.0,
            })),
            1,
            31,
        ),
        (Box::new(GaussianAr1::new(500.0, 70.0, 0.8)), 32, 32),
        // Moderate H for the LRD entries: at H = 0.7 the lag-256 correlation
        // is ~0.01, so the thinned points are effectively independent and
        // the KS null actually applies. (At H = 0.85 the residual lag-128
        // correlation is ~0.14 and the test rejects a correct marginal.)
        (Box::new(FgnProcess::new(500.0, 70.0, 0.7, 1.0, 1024)), 256, 33),
        (
            Box::new(FarimaProcess::from_hurst(500.0, 70.0, 0.7, 1024)),
            256,
            34,
        ),
    ];
    for (proto, stride, seed) in &cases {
        let path = sample_path(proto.as_ref(), *seed, N);
        let (mean, sd) = (proto.mean(), proto.variance().sqrt());
        let thinned: Vec<f64> = path
            .iter()
            .step_by(*stride)
            .map(|x| (x - mean) / sd)
            .collect();
        let ks = ks_test(&thinned, normal_cdf);
        assert!(
            ks.p_value > 0.01,
            "{}: KS p = {:.4} (D = {:.4}, n = {}) against the configured normal",
            proto.label(),
            ks.p_value,
            ks.statistic,
            ks.n
        );
    }
}

#[test]
fn moment_matched_models_hit_their_analytic_moments() {
    // (prototype, effective H for the mean-wander tolerance, variance
    // relative tolerance, seed). Under LRD the sample mean converges at rate
    // n^(H-1), not n^(-1/2), so the tolerance has to widen with the model's
    // Hurst parameter; the sample variance wanders at ~n^(2H-2) and needs
    // the same treatment. V^1.5 stands in for the V family here — V^9's
    // near-unit-Hurst sojourns make path simulation pathologically slow and
    // its sample moments meaningless at any feasible n.
    let cases: Vec<(Box<dyn FrameProcess>, f64, f64, u64)> = vec![
        (Box::new(paper::build_l()), 0.9, 0.5, 41),
        (Box::new(paper::build_z(0.975)), 0.9, 0.5, 42),
        (Box::new(paper::build_v(1.5)), 0.95, 0.7, 43),
        (Box::new(paper::build_clegg(0.8)), 0.8, 0.35, 44),
        (Box::new(paper::build_mwm(0.8)), 0.8, 0.35, 45),
    ];
    for (proto, h, var_tol, seed) in &cases {
        let path = sample_path(proto.as_ref(), *seed, N);
        let mut m = Moments::new();
        for &x in &path {
            m.push(x);
        }
        let (mean, var) = (proto.mean(), proto.variance());
        let mean_tol = 5.0 * var.sqrt() * (N as f64).powf(h - 1.0);
        assert!(
            (m.mean() - mean).abs() < mean_tol,
            "{}: sample mean {:.2} vs analytic {mean:.2} (tol {mean_tol:.2})",
            proto.label(),
            m.mean()
        );
        assert!(
            (m.variance() - var).abs() < var_tol * var,
            "{}: sample variance {:.1} vs analytic {var:.1} (rel tol {var_tol})",
            proto.label(),
            m.variance()
        );
    }
}

#[test]
fn mwm_output_is_non_negative_everywhere() {
    let proto = paper::build_mwm(0.9);
    let path = sample_path(&proto, 51, N);
    assert!(
        path.iter().all(|&x| x >= 0.0),
        "the Haar cascade must synthesize non-negative rates"
    );
}

#[test]
fn analytic_acfs_are_valid_and_decay_by_class() {
    let lags = 512;
    let all: Vec<Box<dyn FrameProcess>> = vec![
        Box::new(FgnProcess::new(500.0, 70.0, 0.8, 1.0, 1024)),
        Box::new(FarimaProcess::from_hurst(500.0, 70.0, 0.85, 1024)),
        Box::new(paper::build_l()),
        Box::new(paper::build_z(0.975)),
        Box::new(paper::build_v(9.0)),
        Box::new(paper::build_s(0.975, 2)),
        Box::new(paper::build_clegg(0.8)),
        Box::new(paper::build_mwm(0.8)),
        Box::new(GaussianAr1::new(500.0, 70.0, 0.8)),
        Box::new(IidProcess::new(Marginal::Gaussian {
            mean: 500.0,
            sd: 70.0,
        })),
    ];
    for proto in &all {
        let r = proto.autocorrelations(lags);
        assert!((r[0] - 1.0).abs() < 1e-12, "{}: r(0)", proto.label());
        for (k, &v) in r.iter().enumerate() {
            assert!(
                (-1.0 - 1e-9..=1.0 + 1e-9).contains(&v),
                "{}: r({k}) = {v} outside [-1,1]",
                proto.label()
            );
        }
    }

    // LRD tails: positive and still alive at lag 256.
    for (proto, floor) in [
        (
            Box::new(FgnProcess::new(500.0, 70.0, 0.8, 1.0, 1024)) as Box<dyn FrameProcess>,
            0.02,
        ),
        (Box::new(paper::build_clegg(0.8)), 0.02),
        (Box::new(paper::build_l()), 0.01),
    ] {
        let r = proto.autocorrelations(lags);
        for (k, &v) in r.iter().enumerate().take(257).skip(1) {
            assert!(v > 0.0, "{}: r({k}) <= 0", proto.label());
        }
        assert!(
            r[256] > floor,
            "{}: r(256) = {} — LRD tail died too fast",
            proto.label(),
            r[256]
        );
    }

    // SRD tails must actually vanish.
    for proto in [
        Box::new(GaussianAr1::new(500.0, 70.0, 0.8)) as Box<dyn FrameProcess>,
        Box::new(paper::build_s(0.975, 2)),
    ] {
        let r = proto.autocorrelations(lags);
        assert!(
            r[256].abs() < 1e-3,
            "{}: r(256) = {} — SRD tail must be dead by lag 256",
            proto.label(),
            r[256]
        );
    }
    let iid = IidProcess::new(Marginal::Gaussian {
        mean: 500.0,
        sd: 70.0,
    });
    let r = iid.autocorrelations(8);
    assert!(r[1..].iter().all(|&v| v.abs() < 1e-12), "IID ACF not flat");
}

//! Fault-injection suite: every failure mode the runner can hit must come
//! back as a typed [`SimError`] or a degraded-but-honest partial result —
//! never a panic, never silently poisoned estimates.

use lrd_video::prelude::*;
use std::sync::Arc;
use std::time::Duration;
use vbr_sim::error::{CheckpointErrorKind, FaultSite};
use vbr_sim::{verify_checkpoint, Event, MemoryRecorder};

/// A model that emits a configurable bad value after `after` clean frames.
#[derive(Debug, Clone)]
struct FaultyModel {
    after: u64,
    emitted: u64,
    bad: f64,
}

impl FaultyModel {
    fn new(after: u64, bad: f64) -> Self {
        Self {
            after,
            emitted: 0,
            bad,
        }
    }
}

impl FrameProcess for FaultyModel {
    fn next_frame(&mut self, _rng: &mut dyn rand::RngCore) -> f64 {
        self.emitted += 1;
        if self.emitted > self.after {
            self.bad
        } else {
            100.0
        }
    }
    fn mean(&self) -> f64 {
        100.0
    }
    fn variance(&self) -> f64 {
        1.0
    }
    fn autocorrelations(&self, max_lag: usize) -> Vec<f64> {
        let mut r = vec![0.0; max_lag + 1];
        r[0] = 1.0;
        r
    }
    fn reset(&mut self, _rng: &mut dyn rand::RngCore) {
        self.emitted = 0;
    }
    fn boxed_clone(&self) -> Box<dyn FrameProcess> {
        Box::new(self.clone())
    }
    fn label(&self) -> String {
        "faulty".into()
    }
}

fn small_config() -> SimConfig {
    SimConfig {
        n_sources: 3,
        capacity_per_source: 120.0,
        buffers_total: vec![0.0, 50.0],
        frames_per_replication: 2_000,
        warmup_frames: 100,
        replications: 3,
        seed: 41,
        ts: 0.04,
        track_bop: false,
    }
}

#[test]
fn invalid_configs_come_back_typed() {
    let proto = GaussianAr1::new(100.0, 10.0, 0.5);
    let cases: Vec<(&str, SimConfig)> = vec![
        ("n_sources", {
            let mut c = small_config();
            c.n_sources = 0;
            c
        }),
        ("capacity_per_source", {
            let mut c = small_config();
            c.capacity_per_source = f64::NAN;
            c
        }),
        ("buffers_total", {
            let mut c = small_config();
            c.buffers_total = vec![];
            c
        }),
        ("buffers_total", {
            let mut c = small_config();
            c.buffers_total = vec![10.0, 10.0];
            c
        }),
        ("buffers_total", {
            let mut c = small_config();
            c.buffers_total = vec![-5.0, 10.0];
            c
        }),
        ("frames_per_replication", {
            let mut c = small_config();
            c.frames_per_replication = 0;
            c
        }),
        ("warmup_frames", {
            let mut c = small_config();
            c.warmup_frames = c.frames_per_replication;
            c
        }),
        ("replications", {
            let mut c = small_config();
            c.replications = 0;
            c
        }),
        ("ts", {
            let mut c = small_config();
            c.ts = 0.0;
            c
        }),
    ];
    for (expect_field, cfg) in cases {
        match simulate_clr(&proto, &cfg) {
            Err(SimError::InvalidConfig { field, .. }) => {
                assert_eq!(field, expect_field, "wrong field blamed");
            }
            Err(other) => panic!("expected InvalidConfig({expect_field}), got {other}"),
            Ok(_) => panic!("config with bad {expect_field} must not run"),
        }
    }
}

#[test]
fn nan_emitting_model_is_pinned_to_source_frame_and_seed() {
    let cfg = small_config();
    let proto = FaultyModel::new(500, f64::NAN);
    match simulate_clr(&proto, &cfg) {
        Err(SimError::NumericFault(f)) => {
            assert!(f.value.is_nan());
            assert!(matches!(f.site, FaultSite::Source(_)));
            assert!(f.replication < cfg.replications);
            assert!(f.frame >= 500 / cfg.n_sources as u64, "frame {}", f.frame);
            assert_eq!(f.seed, cfg.seed, "fault must carry the root seed");
        }
        other => panic!("expected NumericFault, got {other:?}"),
    }
}

#[test]
fn negative_rate_model_is_a_numeric_fault_not_a_panic() {
    let cfg = small_config();
    let proto = FaultyModel::new(10, -42.0);
    match simulate_clr(&proto, &cfg) {
        Err(SimError::NumericFault(f)) => {
            assert_eq!(f.value, -42.0);
            assert!(matches!(f.site, FaultSite::Source(_)));
        }
        other => panic!("expected NumericFault, got {other:?}"),
    }
}

#[test]
fn infinite_rate_model_is_a_numeric_fault() {
    let cfg = small_config();
    let proto = FaultyModel::new(0, f64::INFINITY);
    assert!(matches!(
        simulate_clr(&proto, &cfg),
        Err(SimError::NumericFault(_))
    ));
}

#[test]
fn truncated_checkpoint_is_detected_and_falls_back_to_previous_version() {
    let dir = std::env::temp_dir().join("vbr_fault_injection");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("truncated.ckpt");
    let prev = dir.join("truncated.ckpt.prev");
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&prev);

    let proto = GaussianAr1::new(100.0, 10.0, 0.5);
    let cfg = small_config();
    let opts = RunOptions {
        checkpoint: Some(CheckpointPolicy::new(&path)),
        ..RunOptions::default()
    };
    let clean = run(&proto, &cfg, &opts).expect("clean run");

    // The v2 format ends with the trailer and its content checksum, and
    // saves rotate the prior version to a `.prev` sibling.
    let body = std::fs::read_to_string(&path).expect("read checkpoint");
    let lines: Vec<&str> = body.lines().collect();
    assert!(lines.last().expect("nonempty").starts_with("checksum "));
    assert!(lines[lines.len() - 2].starts_with("end "));
    assert!(prev.exists(), "saves rotate the previous checkpoint");

    // Simulate a writer that died mid-write: drop the last record, the
    // trailer and the checksum. The damage is detectable as a typed error…
    let cut = lines[..lines.len() - 3].join("\n");
    std::fs::write(&path, cut).expect("write truncated");
    match verify_checkpoint(&path, &cfg) {
        Err(SimError::Checkpoint { kind, path: p }) => {
            assert_eq!(kind, CheckpointErrorKind::Truncated);
            assert_eq!(p, path);
        }
        other => panic!("expected Checkpoint(Truncated), got {other:?}"),
    }

    // …and instead of failing, a run degrades to the rotated previous
    // version, records the fallback, and finishes bit-identically.
    let rec = Arc::new(MemoryRecorder::new());
    let opts = RunOptions {
        checkpoint: Some(CheckpointPolicy::new(&path)),
        recorder: Some(rec.clone()),
        ..RunOptions::default()
    };
    let out = run(&proto, &cfg, &opts).expect("fallback run");
    assert_eq!(rec.count("checkpoint_fallback"), 1);
    assert!(
        rec.events()
            .iter()
            .any(|e| matches!(e, Event::CheckpointFallback { recovered: true, .. })),
        "previous version must have been recovered"
    );
    assert_eq!(out.provenance.completed, cfg.replications);
    for (a, b) in clean.per_buffer.iter().zip(&out.per_buffer) {
        assert_eq!(a.pooled.offered.to_bits(), b.pooled.offered.to_bits());
        assert_eq!(a.pooled.lost.to_bits(), b.pooled.lost.to_bits());
    }
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&prev);
}

#[test]
fn checkpoint_from_different_config_is_rejected() {
    let dir = std::env::temp_dir().join("vbr_fault_injection");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("mismatch.ckpt");
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(dir.join("mismatch.ckpt.prev"));

    let proto = GaussianAr1::new(100.0, 10.0, 0.5);
    let cfg = small_config();
    let opts = RunOptions {
        checkpoint: Some(CheckpointPolicy::new(&path)),
        ..RunOptions::default()
    };
    run(&proto, &cfg, &opts).expect("clean run");

    // Same file, different seed: the fingerprint must not match. Silently
    // merging replications from another seed would corrupt the estimates.
    let mut other_cfg = cfg.clone();
    other_cfg.seed ^= 0xFF;
    match run(&proto, &other_cfg, &opts) {
        Err(SimError::Checkpoint {
            kind: CheckpointErrorKind::ConfigMismatch { .. },
            ..
        }) => {}
        other => panic!("expected ConfigMismatch, got {other:?}"),
    }
    // But a change in `replications` alone is NOT a mismatch — a checkpoint
    // is a valid prefix of a longer run.
    let mut more_reps = cfg.clone();
    more_reps.replications = 5;
    let out = run(&proto, &more_reps, &opts).expect("prefix resume");
    assert_eq!(out.provenance.resumed, 3);
    assert_eq!(out.provenance.completed, 5);
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(dir.join("mismatch.ckpt.prev"));
}

#[test]
fn garbage_checkpoint_is_typed_and_degrades_to_fresh_start() {
    let dir = std::env::temp_dir().join("vbr_fault_injection");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("garbage.ckpt");
    let prev = dir.join("garbage.ckpt.prev");
    let _ = std::fs::remove_file(&prev);
    std::fs::write(&path, "this is not a checkpoint\n").expect("write");

    let proto = GaussianAr1::new(100.0, 10.0, 0.5);
    let cfg = small_config();

    // Typed error on direct inspection…
    match verify_checkpoint(&path, &cfg) {
        Err(SimError::Checkpoint {
            kind: CheckpointErrorKind::BadHeader(_),
            ..
        }) => {}
        other => panic!("expected BadHeader, got {other:?}"),
    }

    // …and with no previous version to fall back to, a run starts fresh
    // (recovered = false) rather than dying on the wreckage.
    let rec = Arc::new(MemoryRecorder::new());
    let opts = RunOptions {
        checkpoint: Some(CheckpointPolicy::new(&path)),
        recorder: Some(rec.clone()),
        ..RunOptions::default()
    };
    let out = run(&proto, &cfg, &opts).expect("fresh-start run");
    assert!(
        rec.events()
            .iter()
            .any(|e| matches!(e, Event::CheckpointFallback { recovered: false, .. })),
        "fallback without a .prev must report recovered = false"
    );
    assert_eq!(out.provenance.resumed, 0);
    assert_eq!(out.provenance.completed, cfg.replications);
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&prev);
}

#[test]
fn corrupt_bop_histogram_in_checkpoint_is_a_parse_error_not_a_panic() {
    let dir = std::env::temp_dir().join("vbr_fault_injection");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("bad_bop.ckpt");
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(dir.join("bad_bop.ckpt.prev"));

    let proto = GaussianAr1::new(100.0, 10.0, 0.5);
    let mut cfg = small_config();
    cfg.track_bop = true;
    let opts = RunOptions {
        checkpoint: Some(CheckpointPolicy::new(&path)),
        ..RunOptions::default()
    };
    run(&proto, &cfg, &opts).expect("clean run");

    // Flip one bucket count so the histogram no longer sums to its total.
    let body = std::fs::read_to_string(&path).expect("read checkpoint");
    let corrupted: Vec<String> = body
        .lines()
        .map(|l| {
            if let Some(rest) = l.strip_prefix("bop ") {
                let mut tok: Vec<String> = rest.split_whitespace().map(String::from).collect();
                let last = tok.last_mut().expect("bop line has buckets");
                *last = (last.parse::<u64>().expect("bucket") + 1).to_string();
                format!("bop {}", tok.join(" "))
            } else {
                l.to_string()
            }
        })
        .collect();
    std::fs::write(&path, corrupted.join("\n") + "\n").expect("write corrupted");

    // In a v2 file the content checksum catches the flip before any record
    // is even parsed.
    match verify_checkpoint(&path, &cfg) {
        Err(SimError::Checkpoint {
            kind: CheckpointErrorKind::ChecksumMismatch { .. },
            ..
        }) => {}
        other => panic!("expected ChecksumMismatch, got {other:?}"),
    }

    // Downgrade the damaged file to v1 (no checksum line) to reach the
    // record parser itself: the inconsistent histogram must be a typed
    // parse error naming the bop line, not a panic.
    let v1: Vec<String> = corrupted
        .iter()
        .filter(|l| !l.starts_with("checksum "))
        .map(|l| {
            if l.starts_with("vbr-sim-checkpoint") {
                "vbr-sim-checkpoint v1".to_string()
            } else {
                l.clone()
            }
        })
        .collect();
    std::fs::write(&path, v1.join("\n") + "\n").expect("write v1");
    match verify_checkpoint(&path, &cfg) {
        Err(SimError::Checkpoint {
            kind: CheckpointErrorKind::Parse { message, .. },
            ..
        }) => assert!(message.contains("bop"), "{message}"),
        other => panic!("expected Checkpoint(Parse), got {other:?}"),
    }

    // Either way, a run on the damaged file recovers via fallback instead
    // of erroring out.
    let rec = Arc::new(MemoryRecorder::new());
    let opts = RunOptions {
        checkpoint: Some(CheckpointPolicy::new(&path)),
        recorder: Some(rec.clone()),
        ..RunOptions::default()
    };
    let out = run(&proto, &cfg, &opts).expect("fallback run");
    assert_eq!(rec.count("checkpoint_fallback"), 1);
    assert_eq!(out.provenance.completed, cfg.replications);
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(dir.join("bad_bop.ckpt.prev"));
}

#[test]
fn watchdog_budget_yields_partial_result_with_honest_provenance() {
    let proto = GaussianAr1::new(100.0, 10.0, 0.5);
    let mut cfg = small_config();
    cfg.replications = 8;
    let opts = RunOptions {
        threads: Some(1),
        watchdog: Watchdog {
            run_budget: Some(Duration::ZERO),
            ..Watchdog::default()
        },
        ..RunOptions::default()
    };
    let out = run(&proto, &cfg, &opts).expect("degrades, does not error");
    assert_eq!(out.provenance.requested, 8);
    assert_eq!(
        out.provenance.completed, 1,
        "zero budget still completes the first replication"
    );
    assert!(out.provenance.is_partial());
    assert!(out.provenance.budget_exhausted);
    assert_eq!(
        out.frames_total,
        cfg.frames_per_replication as u64,
        "frames_total must reflect completed work only"
    );
    // Estimates exist but are explicitly single-replication.
    assert!(out.per_buffer[0].pooled.offered > 0.0);
}

/// A model whose every frame takes real wall time — lets the
/// per-replication deadline fire deterministically.
#[derive(Debug, Clone)]
struct SlowModel;

impl FrameProcess for SlowModel {
    fn next_frame(&mut self, _rng: &mut dyn rand::RngCore) -> f64 {
        std::thread::sleep(Duration::from_millis(1));
        100.0
    }
    fn mean(&self) -> f64 {
        100.0
    }
    fn variance(&self) -> f64 {
        1.0
    }
    fn autocorrelations(&self, max_lag: usize) -> Vec<f64> {
        let mut r = vec![0.0; max_lag + 1];
        r[0] = 1.0;
        r
    }
    fn reset(&mut self, _rng: &mut dyn rand::RngCore) {}
    fn boxed_clone(&self) -> Box<dyn FrameProcess> {
        Box::new(SlowModel)
    }
    fn label(&self) -> String {
        "slow".into()
    }
}

#[test]
fn all_replications_timing_out_is_a_typed_error_not_a_hang() {
    let mut cfg = small_config();
    cfg.n_sources = 1;
    cfg.warmup_frames = 0;
    cfg.frames_per_replication = 100_000; // ~100 s of sleeps if not cut off
    cfg.replications = 2;
    let opts = RunOptions {
        threads: Some(1),
        watchdog: Watchdog {
            replication_deadline: Some(Duration::from_millis(1)),
            ..Watchdog::default()
        },
        ..RunOptions::default()
    };
    match run(&SlowModel, &cfg, &opts) {
        Err(SimError::NoCompletedReplications {
            requested,
            timed_out,
            ..
        }) => {
            assert_eq!(requested, 2);
            assert_eq!(timed_out, 2);
        }
        other => panic!("expected NoCompletedReplications, got {other:?}"),
    }
}

#[test]
fn empty_source_mix_is_rejected() {
    assert!(matches!(
        SourceMix::new(vec![]),
        Err(SimError::InvalidConfig { field: "mix", .. })
    ));
}

#[test]
fn mix_runner_propagates_numeric_faults() {
    let clean = GaussianAr1::new(100.0, 10.0, 0.5);
    let faulty = FaultyModel::new(200, f64::NAN);
    let mix = SourceMix::new(vec![
        (&clean as &dyn FrameProcess, 2),
        (&faulty as &dyn FrameProcess, 1),
    ])
    .expect("non-empty mix");
    let cfg = small_config();
    match run_mix(&mix, &cfg, &RunOptions::default()) {
        Err(SimError::NumericFault(f)) => {
            assert_eq!(f.site, FaultSite::Source(2), "faulty copy is third");
        }
        other => panic!("expected NumericFault, got {other:?}"),
    }
}

#[test]
fn model_constructors_reject_bad_parameters_without_panicking() {
    assert!(GaussianAr1::try_new(f64::NAN, 10.0, 0.5).is_err());
    assert!(GaussianAr1::try_new(100.0, -1.0, 0.5).is_err());
    assert!(GaussianAr1::try_new(100.0, 10.0, 1.5).is_err());
    assert!(IidProcess::try_new(Marginal::Gaussian {
        mean: f64::INFINITY,
        sd: 1.0
    })
    .is_err());
    assert!(DarProcess::try_new(DarParams::dar1(1.5, Marginal::paper_gaussian())).is_err());
    let e = DarProcess::try_new(DarParams::dar1(-0.1, Marginal::paper_gaussian())).unwrap_err();
    assert!(e.to_string().contains("rho"), "{e}");
}

//! Reproducibility guarantees: every experiment in the workspace is a pure
//! function of its seed, independent of thread scheduling.

use lrd_video::prelude::*;

#[test]
fn simulation_bitwise_reproducible() {
    let z = paper::build_z(0.9);
    let cfg = SimConfig {
        n_sources: 10,
        capacity_per_source: 538.0,
        buffers_total: vec![0.0, 500.0, 2000.0],
        frames_per_replication: 8_000,
        warmup_frames: 200,
        replications: 5,
        seed: 0xABCD,
        ts: 0.04,
        track_bop: true,
    };
    let a = simulate_clr(&z, &cfg).expect("valid sim config");
    let b = simulate_clr(&z, &cfg).expect("valid sim config");
    for (x, y) in a.per_buffer.iter().zip(&b.per_buffer) {
        assert_eq!(x.pooled, y.pooled, "pooled accounts must match bitwise");
        assert_eq!(x.clr.mean, y.clr.mean);
    }
    assert_eq!(a.bop, b.bop);
}

#[test]
fn different_seeds_differ() {
    let z = paper::build_z(0.9);
    let mut cfg = SimConfig::paper_defaults(vec![100.0], 4_000, 3);
    cfg.n_sources = 5;
    cfg.capacity_per_source = 520.0;
    let a = simulate_clr(&z, &cfg).expect("valid sim config");
    cfg.seed ^= 1;
    let b = simulate_clr(&z, &cfg).expect("valid sim config");
    assert_ne!(
        a.per_buffer[0].pooled.offered,
        b.per_buffer[0].pooled.offered,
        "different seeds must explore different paths"
    );
}

#[test]
fn model_generation_reproducible_through_trait_objects() {
    // boxed_clone + reset with the same stream reproduces paths exactly.
    let models: Vec<Box<dyn FrameProcess>> = vec![
        Box::new(paper::build_z(0.975)),
        Box::new(paper::build_s(0.975, 2)),
        Box::new(paper::build_l()),
        Box::new(paper::build_v(1.5)),
    ];
    for proto in &models {
        let mut a = proto.boxed_clone();
        let mut b = proto.boxed_clone();
        let mut ra = vbr_stats::rng::Xoshiro256PlusPlus::from_seed_u64(5);
        let mut rb = vbr_stats::rng::Xoshiro256PlusPlus::from_seed_u64(5);
        a.reset(&mut ra);
        b.reset(&mut rb);
        for i in 0..200 {
            let xa = a.next_frame(&mut ra);
            let xb = b.next_frame(&mut rb);
            assert_eq!(xa, xb, "{} frame {i}", proto.label());
        }
    }
}

/// The checkpoint/resume contract: a run killed after k replications and
/// resumed from its checkpoint is **bit-identical** to an uninterrupted run —
/// pooled accounts, CI endpoints and BOP curve all match to the last bit.
///
/// The "kill" is simulated faithfully: run the first k replications only
/// (a config with `replications = k` — valid because replication r depends
/// only on `(config, r)` via `root.split(r)`, and the checkpoint fingerprint
/// deliberately excludes the replication count), keep the checkpoint it
/// wrote, then resume with the full config against that file.
#[test]
fn checkpoint_resume_is_bit_identical() {
    let dir = std::env::temp_dir().join("vbr_determinism_ckpt");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("resume.ckpt");
    let _ = std::fs::remove_file(&path);

    let z = paper::build_z(0.9);
    let mut cfg = SimConfig {
        n_sources: 8,
        capacity_per_source: 538.0,
        buffers_total: vec![0.0, 400.0, 1500.0],
        frames_per_replication: 6_000,
        warmup_frames: 150,
        replications: 6,
        seed: 0xD00D,
        ts: 0.04,
        track_bop: true,
    };

    // Reference: uninterrupted run, no checkpointing at all.
    let uninterrupted = simulate_clr(&z, &cfg).expect("valid sim config");

    // Phase 1: "killed" after 3 of 6 replications.
    let opts = RunOptions {
        checkpoint: Some(CheckpointPolicy::new(&path)),
        ..RunOptions::default()
    };
    cfg.replications = 3;
    run(&z, &cfg, &opts).expect("first half");
    assert!(path.exists(), "checkpoint must have been written");

    // Phase 2: resume with the full request; only reps 3..6 are computed.
    cfg.replications = 6;
    let resumed = run(&z, &cfg, &opts).expect("resumed run");
    assert_eq!(resumed.provenance.resumed, 3, "3 reps loaded from disk");
    assert_eq!(resumed.provenance.completed, 6);
    assert!(!resumed.provenance.is_partial());

    for (a, b) in uninterrupted.per_buffer.iter().zip(&resumed.per_buffer) {
        assert_eq!(
            a.pooled, b.pooled,
            "resumed pooled accounts must match uninterrupted bitwise"
        );
        assert_eq!(a.clr.mean.to_bits(), b.clr.mean.to_bits());
        assert_eq!(a.clr.half_width.to_bits(), b.clr.half_width.to_bits());
    }
    assert_eq!(uninterrupted.bop, resumed.bop, "BOP curves must match");
    assert_eq!(uninterrupted.frames_total, resumed.frames_total);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn analysis_is_deterministic() {
    let z = paper::build_z(0.975);
    let stats = SourceStats::from_process(&z, 4_096);
    let a = critical_time_scale(&stats, 538.0, 250.0);
    let b = critical_time_scale(&stats, 538.0, 250.0);
    assert_eq!(a, b);
    assert_eq!(
        bahadur_rao_bop(&stats, 538.0, 250.0, 30).to_bits(),
        bahadur_rao_bop(&stats, 538.0, 250.0, 30).to_bits()
    );
}

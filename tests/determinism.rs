//! Reproducibility guarantees: every experiment in the workspace is a pure
//! function of its seed, independent of thread scheduling.

use lrd_video::prelude::*;

#[test]
fn simulation_bitwise_reproducible() {
    let z = paper::build_z(0.9);
    let cfg = SimConfig {
        n_sources: 10,
        capacity_per_source: 538.0,
        buffers_total: vec![0.0, 500.0, 2000.0],
        frames_per_replication: 8_000,
        warmup_frames: 200,
        replications: 5,
        seed: 0xABCD,
        ts: 0.04,
        track_bop: true,
    };
    let a = simulate_clr(&z, &cfg).expect("valid sim config");
    let b = simulate_clr(&z, &cfg).expect("valid sim config");
    for (x, y) in a.per_buffer.iter().zip(&b.per_buffer) {
        assert_eq!(x.pooled, y.pooled, "pooled accounts must match bitwise");
        assert_eq!(x.clr.mean, y.clr.mean);
    }
    assert_eq!(a.bop, b.bop);
}

#[test]
fn different_seeds_differ() {
    let z = paper::build_z(0.9);
    let mut cfg = SimConfig::paper_defaults(vec![100.0], 4_000, 3);
    cfg.n_sources = 5;
    cfg.capacity_per_source = 520.0;
    let a = simulate_clr(&z, &cfg).expect("valid sim config");
    cfg.seed ^= 1;
    let b = simulate_clr(&z, &cfg).expect("valid sim config");
    assert_ne!(
        a.per_buffer[0].pooled.offered,
        b.per_buffer[0].pooled.offered,
        "different seeds must explore different paths"
    );
}

#[test]
fn model_generation_reproducible_through_trait_objects() {
    // boxed_clone + reset with the same stream reproduces paths exactly.
    let models: Vec<Box<dyn FrameProcess>> = vec![
        Box::new(paper::build_z(0.975)),
        Box::new(paper::build_s(0.975, 2)),
        Box::new(paper::build_l()),
        Box::new(paper::build_v(1.5)),
    ];
    for proto in &models {
        let mut a = proto.boxed_clone();
        let mut b = proto.boxed_clone();
        let mut ra = vbr_stats::rng::Xoshiro256PlusPlus::from_seed_u64(5);
        let mut rb = vbr_stats::rng::Xoshiro256PlusPlus::from_seed_u64(5);
        a.reset(&mut ra);
        b.reset(&mut rb);
        for i in 0..200 {
            let xa = a.next_frame(&mut ra);
            let xb = b.next_frame(&mut rb);
            assert_eq!(xa, xb, "{} frame {i}", proto.label());
        }
    }
}

/// The checkpoint/resume contract: a run killed after k replications and
/// resumed from its checkpoint is **bit-identical** to an uninterrupted run —
/// pooled accounts, CI endpoints and BOP curve all match to the last bit.
///
/// The "kill" is simulated faithfully: run the first k replications only
/// (a config with `replications = k` — valid because replication r depends
/// only on `(config, r)` via `root.split(r)`, and the checkpoint fingerprint
/// deliberately excludes the replication count), keep the checkpoint it
/// wrote, then resume with the full config against that file.
#[test]
fn checkpoint_resume_is_bit_identical() {
    let dir = std::env::temp_dir().join("vbr_determinism_ckpt");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("resume.ckpt");
    // Remove the rotated `.prev` too: the loader falls back to it, so a
    // leftover from a previous run would satisfy the whole request from disk
    // and phase 1 below would never write a fresh checkpoint.
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(path.with_extension("ckpt.prev"));

    let z = paper::build_z(0.9);
    let mut cfg = SimConfig {
        n_sources: 8,
        capacity_per_source: 538.0,
        buffers_total: vec![0.0, 400.0, 1500.0],
        frames_per_replication: 6_000,
        warmup_frames: 150,
        replications: 6,
        seed: 0xD00D,
        ts: 0.04,
        track_bop: true,
    };

    // Reference: uninterrupted run, no checkpointing at all.
    let uninterrupted = simulate_clr(&z, &cfg).expect("valid sim config");

    // Phase 1: "killed" after 3 of 6 replications.
    let opts = RunOptions {
        checkpoint: Some(CheckpointPolicy::new(&path)),
        ..RunOptions::default()
    };
    cfg.replications = 3;
    run(&z, &cfg, &opts).expect("first half");
    assert!(path.exists(), "checkpoint must have been written");

    // Phase 2: resume with the full request; only reps 3..6 are computed.
    cfg.replications = 6;
    let resumed = run(&z, &cfg, &opts).expect("resumed run");
    assert_eq!(resumed.provenance.resumed, 3, "3 reps loaded from disk");
    assert_eq!(resumed.provenance.completed, 6);
    assert!(!resumed.provenance.is_partial());

    for (a, b) in uninterrupted.per_buffer.iter().zip(&resumed.per_buffer) {
        assert_eq!(
            a.pooled, b.pooled,
            "resumed pooled accounts must match uninterrupted bitwise"
        );
        assert_eq!(a.clr.mean.to_bits(), b.clr.mean.to_bits());
        assert_eq!(a.clr.half_width.to_bits(), b.clr.half_width.to_bits());
    }
    assert_eq!(uninterrupted.bop, resumed.bop, "BOP curves must match");
    assert_eq!(uninterrupted.frames_total, resumed.frames_total);
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(path.with_extension("ckpt.prev"));
}

/// The batched-generation contract from the pipeline PR: `fill_frames` must
/// be **bit-identical** to repeated `next_frame` for every model in the
/// workspace — same values, same RNG draw order. Chunk sizes are chosen to
/// straddle circulant block boundaries (the FGN/F-ARIMA refill path), hit
/// the single-frame degenerate case, and exercise large batches.
#[test]
fn fill_frames_bit_identical_to_next_frame_for_every_model() {
    use rand::RngCore;
    use vbr_models::{
        CleggParams, CleggProcess, FarimaProcess, FgnProcess, GaussianAr1, GopPattern, IidProcess,
        Marginal, MarkovOnOff, MarkovOnOffParams, MpegGopModel, MwmParams, MwmProcess,
    };

    let markov = MarkovOnOff::new(MarkovOnOffParams::from_frame_targets(
        500.0, 5_000.0, 30, 0.04,
    ));
    let trace = vbr_sim::TraceProcess::new(
        (0..37).map(|i| 400.0 + 10.0 * i as f64).collect(),
        "synthetic-trace",
        8,
    );
    // block_len 64 so chunk sizes below cross several refill boundaries.
    let models: Vec<Box<dyn FrameProcess>> = vec![
        Box::new(FgnProcess::new(500.0, 70.0, 0.9, 1.0, 64)),
        Box::new(FgnProcess::new(500.0, 70.0, 0.75, 0.6, 64)),
        Box::new(FarimaProcess::from_hurst(500.0, 70.0, 0.85, 64)),
        Box::new(paper::build_z(0.975)),
        Box::new(paper::build_v(9.0)),
        Box::new(paper::build_s(0.975, 2)),
        Box::new(paper::build_l()),
        Box::new(GaussianAr1::new(500.0, 70.0, 0.8)),
        Box::new(IidProcess::new(Marginal::Gaussian {
            mean: 500.0,
            sd: 70.0,
        })),
        Box::new(markov),
        Box::new(MpegGopModel::new(
            GopPattern::canonical(500.0),
            0.9,
            0.3,
            10.0,
        )),
        Box::new(trace),
        Box::new(CleggProcess::new(CleggParams {
            h: 0.8,
            chains: 7,
            mean: 500.0,
            sd: 70.0,
        })),
        // levels 6 → 64-frame synthesis blocks, so the chunk sequence below
        // crosses several cascade refills and ends mid-block.
        Box::new(MwmProcess::new(MwmParams {
            mean: 500.0,
            sd: 70.0,
            h: 0.8,
            levels: 6,
        })),
    ];
    // Uneven chunks: straddle the 64-frame circulant blocks, include 1-frame
    // and empty batches, and end mid-block.
    let chunks = [1usize, 7, 64, 0, 129, 5, 300, 1];
    let total: usize = chunks.iter().sum();
    for proto in &models {
        let mut scalar = proto.boxed_clone();
        let mut batched = proto.boxed_clone();
        let mut rs = vbr_stats::rng::Xoshiro256PlusPlus::from_seed_u64(0x5EED);
        let mut rb = vbr_stats::rng::Xoshiro256PlusPlus::from_seed_u64(0x5EED);
        scalar.reset(&mut rs);
        batched.reset(&mut rb);

        let reference: Vec<f64> = (0..total).map(|_| scalar.next_frame(&mut rs)).collect();
        let mut got = vec![0.0_f64; total];
        let mut off = 0;
        for &c in &chunks {
            batched.fill_frames(&mut got[off..off + c], &mut rb);
            off += c;
        }
        for (i, (a, b)) in reference.iter().zip(&got).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{}: frame {i} differs (scalar {a}, batched {b})",
                proto.label()
            );
        }
        // The RNG stream position must match too: a model that produced the
        // right values while consuming a different number of draws would
        // silently break multi-source interleaving.
        assert_eq!(
            rs.next_u64(),
            rb.next_u64(),
            "{}: RNG stream diverged after fill_frames",
            proto.label()
        );
    }
}

/// The batched runner sweep must be invisible to results: the fig. 8
/// composite models through the full pipeline (multi-source superposition,
/// warmup boundary inside a batch, finite + infinite queues, BOP tracking)
/// give bit-identical output for 1 and 4 worker threads.
#[test]
fn batched_runner_thread_count_invariant_on_fig8_models() {
    for proto in [paper::build_z(0.9), paper::build_v(9.0)] {
        let cfg = SimConfig {
            n_sources: 4,
            capacity_per_source: 538.0,
            buffers_total: vec![0.0, 300.0],
            frames_per_replication: 2_000,
            warmup_frames: 300,
            replications: 2,
            seed: 0xF1C8,
            ts: 0.04,
            track_bop: true,
        };
        let one = run(
            &proto,
            &cfg,
            &RunOptions {
                threads: Some(1),
                ..RunOptions::default()
            },
        )
        .expect("threads=1");
        let four = run(
            &proto,
            &cfg,
            &RunOptions {
                threads: Some(4),
                ..RunOptions::default()
            },
        )
        .expect("threads=4");
        for (a, b) in one.per_buffer.iter().zip(&four.per_buffer) {
            assert_eq!(a.pooled, b.pooled, "{}: pooled accounts", proto.label());
            assert_eq!(a.clr.mean.to_bits(), b.clr.mean.to_bits());
            assert_eq!(a.clr.half_width.to_bits(), b.clr.half_width.to_bits());
        }
        assert_eq!(one.bop, four.bop, "{}: BOP curves", proto.label());
    }
}

/// The two new LRD families ride the same checkpoint/resume contract as the
/// paper models: kill after 2 of 4 replications, resume, and every account is
/// bit-identical to an uninterrupted run. Exercises the Clegg equilibrium
/// re-draw and the MWM cascade refill across the resume boundary.
#[test]
fn checkpoint_resume_is_bit_identical_for_new_lrd_families() {
    let dir = std::env::temp_dir().join("vbr_determinism_ckpt_lrd");
    std::fs::create_dir_all(&dir).expect("temp dir");

    let models: Vec<(&str, Box<dyn FrameProcess>)> = vec![
        ("clegg", Box::new(paper::build_clegg(0.8))),
        ("mwm", Box::new(paper::build_mwm(0.8))),
    ];
    for (tag, proto) in &models {
        let path = dir.join(format!("resume_{tag}.ckpt"));
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(path.with_extension("ckpt.prev"));
        let mut cfg = SimConfig {
            n_sources: 4,
            capacity_per_source: 538.0,
            buffers_total: vec![0.0, 300.0],
            frames_per_replication: 3_000,
            warmup_frames: 150,
            replications: 4,
            seed: 0xC1E6,
            ts: 0.04,
            track_bop: true,
        };
        let uninterrupted = run(proto.as_ref(), &cfg, &RunOptions::default()).expect("reference");

        let opts = RunOptions {
            checkpoint: Some(CheckpointPolicy::new(&path)),
            ..RunOptions::default()
        };
        cfg.replications = 2;
        run(proto.as_ref(), &cfg, &opts).expect("first half");
        cfg.replications = 4;
        let resumed = run(proto.as_ref(), &cfg, &opts).expect("resumed run");
        assert_eq!(resumed.provenance.resumed, 2, "{tag}: reps from disk");
        assert_eq!(resumed.provenance.completed, 4);

        for (a, b) in uninterrupted.per_buffer.iter().zip(&resumed.per_buffer) {
            assert_eq!(a.pooled, b.pooled, "{tag}: pooled accounts");
            assert_eq!(a.clr.mean.to_bits(), b.clr.mean.to_bits());
            assert_eq!(a.clr.half_width.to_bits(), b.clr.half_width.to_bits());
        }
        assert_eq!(uninterrupted.bop, resumed.bop, "{tag}: BOP curves");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(path.with_extension("ckpt.prev"));
    }
}

/// Thread-count invariance for the new families: the Clegg chain state and
/// the MWM block buffer live per-source inside each replication, so the
/// worker-pool schedule must not leak into results.
#[test]
fn batched_runner_thread_count_invariant_on_new_lrd_families() {
    let models: Vec<Box<dyn FrameProcess>> = vec![
        Box::new(paper::build_clegg(0.9)),
        Box::new(paper::build_mwm(0.9)),
    ];
    for proto in &models {
        let cfg = SimConfig {
            n_sources: 4,
            capacity_per_source: 538.0,
            buffers_total: vec![0.0, 300.0],
            frames_per_replication: 2_000,
            warmup_frames: 300,
            replications: 2,
            seed: 0xF1C9,
            ts: 0.04,
            track_bop: true,
        };
        let one = run(
            proto.as_ref(),
            &cfg,
            &RunOptions {
                threads: Some(1),
                ..RunOptions::default()
            },
        )
        .expect("threads=1");
        let four = run(
            proto.as_ref(),
            &cfg,
            &RunOptions {
                threads: Some(4),
                ..RunOptions::default()
            },
        )
        .expect("threads=4");
        for (a, b) in one.per_buffer.iter().zip(&four.per_buffer) {
            assert_eq!(a.pooled, b.pooled, "{}: pooled accounts", proto.label());
            assert_eq!(a.clr.mean.to_bits(), b.clr.mean.to_bits());
            assert_eq!(a.clr.half_width.to_bits(), b.clr.half_width.to_bits());
        }
        assert_eq!(one.bop, four.bop, "{}: BOP curves", proto.label());
    }
}

/// The observability contract: attaching a recorder — even the full
/// `Telemetry::to_dir` sink stack doing live file I/O — must leave every
/// simulation result **bit-identical** to a recorder-less run. The obs layer
/// never touches an RNG; only wall-clock reads and metric writes differ.
/// Exercised across thread counts so span collection on worker threads is
/// covered too.
#[test]
fn recorder_on_or_off_is_bit_identical() {
    use std::sync::Arc;

    let dir = std::env::temp_dir().join("vbr_determinism_telemetry");
    let _ = std::fs::remove_dir_all(&dir);

    let proto = paper::build_z(0.9);
    let cfg = SimConfig {
        n_sources: 6,
        capacity_per_source: 538.0,
        buffers_total: vec![0.0, 400.0, 1500.0],
        frames_per_replication: 4_000,
        warmup_frames: 200,
        replications: 3,
        seed: 0x0B5E,
        ts: 0.04,
        track_bop: true,
    };

    let bare = run(&proto, &cfg, &RunOptions::default()).expect("recorder off");

    for threads in [1, 4] {
        let memory = Arc::new(MemoryRecorder::new());
        let telemetry = Telemetry::to_dir(&dir).expect("telemetry dir");
        let fan = Arc::new(lrd_video::obs::FanoutRecorder::new(vec![
            memory.clone(),
            telemetry,
        ]));
        let observed = run(
            &proto,
            &cfg,
            &RunOptions {
                threads: Some(threads),
                recorder: Some(fan),
                ..RunOptions::default()
            },
        )
        .expect("recorder on");

        for (a, b) in bare.per_buffer.iter().zip(&observed.per_buffer) {
            assert_eq!(
                a.pooled, b.pooled,
                "threads={threads}: pooled accounts must match bitwise"
            );
            assert_eq!(a.clr.mean.to_bits(), b.clr.mean.to_bits());
            assert_eq!(a.clr.half_width.to_bits(), b.clr.half_width.to_bits());
        }
        assert_eq!(bare.bop, observed.bop, "threads={threads}: BOP curves");
        assert_eq!(bare.frames_total, observed.frames_total);

        // The telemetry itself must be coherent: a complete event stream of
        // valid JSON lines and a summary that agrees with the outcome.
        assert_eq!(memory.count("run_start"), 1);
        assert_eq!(memory.count("replication_end"), 3);
        assert_eq!(memory.count("run_end"), 1);
        let summary = memory.summary().expect("summary delivered");
        assert_eq!(summary.completed, 3);
        assert_eq!(summary.metrics.replications_completed, 3);
        let events =
            std::fs::read_to_string(dir.join("events.jsonl")).expect("events.jsonl written");
        let lines = lrd_video::obs::jsonl::validate_stream(&events)
            .expect("every JSONL line must be valid JSON");
        assert_eq!(lines, memory.events().len());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn analysis_is_deterministic() {
    let z = paper::build_z(0.975);
    let stats = SourceStats::from_process(&z, 4_096);
    let a = critical_time_scale(&stats, 538.0, 250.0);
    let b = critical_time_scale(&stats, 538.0, 250.0);
    assert_eq!(a, b);
    assert_eq!(
        bahadur_rao_bop(&stats, 538.0, 250.0, 30).to_bits(),
        bahadur_rao_bop(&stats, 538.0, 250.0, 30).to_bits()
    );
}

//! Reproducibility guarantees: every experiment in the workspace is a pure
//! function of its seed, independent of thread scheduling.

use lrd_video::prelude::*;

#[test]
fn simulation_bitwise_reproducible() {
    let z = paper::build_z(0.9);
    let cfg = SimConfig {
        n_sources: 10,
        capacity_per_source: 538.0,
        buffers_total: vec![0.0, 500.0, 2000.0],
        frames_per_replication: 8_000,
        warmup_frames: 200,
        replications: 5,
        seed: 0xABCD,
        ts: 0.04,
        track_bop: true,
    };
    let a = simulate_clr(&z, &cfg);
    let b = simulate_clr(&z, &cfg);
    for (x, y) in a.per_buffer.iter().zip(&b.per_buffer) {
        assert_eq!(x.pooled, y.pooled, "pooled accounts must match bitwise");
        assert_eq!(x.clr.mean, y.clr.mean);
    }
    assert_eq!(a.bop, b.bop);
}

#[test]
fn different_seeds_differ() {
    let z = paper::build_z(0.9);
    let mut cfg = SimConfig::paper_defaults(vec![100.0], 4_000, 3);
    cfg.n_sources = 5;
    cfg.capacity_per_source = 520.0;
    let a = simulate_clr(&z, &cfg);
    cfg.seed ^= 1;
    let b = simulate_clr(&z, &cfg);
    assert_ne!(
        a.per_buffer[0].pooled.offered,
        b.per_buffer[0].pooled.offered,
        "different seeds must explore different paths"
    );
}

#[test]
fn model_generation_reproducible_through_trait_objects() {
    // boxed_clone + reset with the same stream reproduces paths exactly.
    let models: Vec<Box<dyn FrameProcess>> = vec![
        Box::new(paper::build_z(0.975)),
        Box::new(paper::build_s(0.975, 2)),
        Box::new(paper::build_l()),
        Box::new(paper::build_v(1.5)),
    ];
    for proto in &models {
        let mut a = proto.boxed_clone();
        let mut b = proto.boxed_clone();
        let mut ra = vbr_stats::rng::Xoshiro256PlusPlus::from_seed_u64(5);
        let mut rb = vbr_stats::rng::Xoshiro256PlusPlus::from_seed_u64(5);
        a.reset(&mut ra);
        b.reset(&mut rb);
        for i in 0..200 {
            let xa = a.next_frame(&mut ra);
            let xb = b.next_frame(&mut rb);
            assert_eq!(xa, xb, "{} frame {i}", proto.label());
        }
    }
}

#[test]
fn analysis_is_deterministic() {
    let z = paper::build_z(0.975);
    let stats = SourceStats::from_process(&z, 4_096);
    let a = critical_time_scale(&stats, 538.0, 250.0);
    let b = critical_time_scale(&stats, 538.0, 250.0);
    assert_eq!(a, b);
    assert_eq!(
        bahadur_rao_bop(&stats, 538.0, 250.0, 30).to_bits(),
        bahadur_rao_bop(&stats, 538.0, 250.0, 30).to_bits()
    );
}

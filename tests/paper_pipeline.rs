//! End-to-end integration tests: the paper's headline claims exercised
//! through the full stack (model construction -> analysis -> simulation).

use lrd_video::prelude::*;
use vbr_core::experiments::{self, SimScale};

/// The paper's §5.5 anchor: "all the CLR curves begin around the same value
/// at zero buffer (slightly larger than 1e-5)", because every model shares
/// the Gaussian(500, 5000) marginal. Checked for an LRD model and its SRD
/// fit through the actual simulator.
#[test]
fn zero_buffer_clr_anchor_across_model_families() {
    let expected = {
        // Fluid zero-buffer CLR = E[(X - C)+]/E[X] for the aggregate.
        let mean = 30.0 * 500.0;
        let sd = (30.0 * 5000.0_f64).sqrt();
        vbr_stats::dist::gaussian_overshoot_mean(mean, sd, 30.0 * 538.0) / mean
    };
    assert!(expected > 1e-5 && expected < 1.3e-5, "anchor {expected:e}");

    let models: Vec<Box<dyn FrameProcess>> = vec![
        Box::new(paper::build_s(0.975, 1)),
        Box::new(paper::build_z(0.975)),
    ];
    for m in models {
        let cfg = SimConfig::paper_defaults(vec![0.0], 40_000, 4);
        let clr = simulate_clr(m.as_ref(), &cfg).expect("valid sim config").per_buffer[0].pooled.clr();
        assert!(
            clr > expected / 3.0 && clr < expected * 3.0,
            "{}: zero-buffer CLR {clr:e} vs analytic {expected:e}",
            m.label()
        );
    }
}

/// Claim 1 destroyed (paper §5.3/5.4): models differing only in long-term
/// correlations (V^v) have nearly identical simulated CLR; models differing
/// only in short-term correlations (Z^a) differ widely.
#[test]
fn short_term_correlations_dominate_simulated_clr() {
    let grid = [1.0];
    let scale = SimScale {
        frames: 15_000,
        replications: 4,
    };
    let v_clrs: Vec<f64> = [0.67, 1.0, 1.5]
        .iter()
        .map(|&v| {
            let m = paper::build_v(v);
            experiments::sim_clr_series(&m, &grid, scale).expect("valid sim config").points[0].1
        })
        .collect();
    let z_clrs: Vec<f64> = [0.7, 0.99]
        .iter()
        .map(|&a| {
            let m = paper::build_z(a);
            experiments::sim_clr_series(&m, &grid, scale).expect("valid sim config").points[0].1
        })
        .collect();

    let v_ratio = v_clrs.iter().cloned().fold(f64::MIN, f64::max)
        / v_clrs.iter().cloned().fold(f64::MAX, f64::min).max(1e-12);
    let z_ratio = z_clrs[1] / z_clrs[0].max(1e-12);
    assert!(
        v_ratio < 5.0,
        "V^v CLRs should cluster: {v_clrs:?} (ratio {v_ratio})"
    );
    assert!(
        z_ratio > 10.0,
        "Z^a CLRs should fan out: {z_clrs:?} (ratio {z_ratio})"
    );
    assert!(
        z_ratio > 3.0 * v_ratio,
        "short-term knob must dwarf long-term knob: {z_ratio} vs {v_ratio}"
    );
}

/// Claim 2 destroyed (paper §5.4/5.5): the DAR(p) fit — which has no long
/// memory at all — predicts the LRD source's simulated CLR within the gaps
/// the paper reports, and improves with p.
#[test]
fn dar_fits_track_lrd_source_clr() {
    let grid = [1.0];
    let scale = SimScale {
        frames: 20_000,
        replications: 4,
    };
    let z = paper::build_z(0.7);
    let z_clr = experiments::sim_clr_series(&z, &grid, scale).expect("valid sim config").points[0].1;
    assert!(z_clr > 0.0, "need measurable loss at 2 ms");

    let mut errors = Vec::new();
    for p in [1usize, 3] {
        let s = paper::build_s(0.7, p);
        let s_clr = experiments::sim_clr_series(&s, &grid, scale).expect("valid sim config").points[0].1;
        assert!(s_clr > 0.0, "DAR({p}) must lose too");
        errors.push((z_clr.ln() - s_clr.ln()).abs());
    }
    // Fig 9(b): for Z^0.7 the curves sit within about one order of magnitude.
    assert!(
        errors[0] < std::f64::consts::LN_10 * 1.5,
        "DAR(1) log-error {} should be within ~1 order",
        errors[0]
    );
    assert!(
        errors[1] <= errors[0] + 0.3,
        "DAR(3) {} should not be worse than DAR(1) {}",
        errors[1],
        errors[0]
    );
}

/// CTS headline numbers quoted in the paper's §5.3: at B = 2 msec the Z^a
/// family's CTS values differ by "as many as 15" while the V^v family's
/// nearly coincide (c = 526, N = 100 setting of Fig 4).
#[test]
fn fig4_quoted_cts_spread() {
    let series = vbr_core::experiments::fig4(&[2.0]);
    let v_cts: Vec<f64> = series[..3].iter().map(|s| s.points[0].1).collect();
    let z_cts: Vec<f64> = series[3..].iter().map(|s| s.points[0].1).collect();
    let spread = |v: &[f64]| {
        v.iter().cloned().fold(f64::MIN, f64::max) - v.iter().cloned().fold(f64::MAX, f64::min)
    };
    assert!(spread(&v_cts) <= 2.0, "V spread {v_cts:?}");
    // The paper quotes "as many as 15" at B = 2 msec; the exact integer
    // depends on rounding conventions — we measure 12-13 (see
    // EXPERIMENTS.md), which preserves the order-of-magnitude contrast
    // against the V-family spread of <= 2.
    assert!(
        spread(&z_cts) >= 11.0,
        "Z^a CTS spread at 2 ms should be >= ~12, got {z_cts:?}"
    );
}

/// Fig 10 shape: B-R and large-N asymptotics both upper-bound the simulated
/// finite-buffer CLR, B-R tighter, all three decaying in buffer.
#[test]
fn asymptotics_bound_simulation_fig10_shape() {
    let grid = [1.0, 3.0, 6.0];
    let series = vbr_core::experiments::fig10(
        &grid,
        SimScale {
            frames: 20_000,
            replications: 4,
        },
    )
    .expect("valid sim config");
    let br = &series[0];
    let large_n = &series[1];
    let sim = &series[2];
    for (i, &ms) in grid.iter().enumerate() {
        let (b, l, s) = (br.points[i].1, large_n.points[i].1, sim.points[i].1);
        assert!(b < l, "B-R {b:e} must be tighter than large-N {l:e}");
        if s > 0.0 {
            assert!(
                b > s / 3.0,
                "asymptotic {b:e} should not undershoot simulation {s:e} at {ms} ms"
            );
        }
    }
    for w in sim.points.windows(2) {
        assert!(w[1].1 <= w[0].1 * 1.5, "simulated CLR should fall with buffer");
    }
}

/// The full model zoo builds, shares the marginal, and every member's
/// analytic ACF is a valid correlation sequence deep into the tail.
#[test]
fn model_zoo_acf_validity() {
    let set = ModelSet::build();
    let mut all: Vec<&dyn FrameProcess> = Vec::new();
    for m in &set.v_models {
        all.push(m);
    }
    for m in &set.z_models {
        all.push(m);
    }
    for m in set.s_for_z07.iter().chain(&set.s_for_z0975) {
        all.push(m);
    }
    all.push(&set.l_model);
    for m in all {
        let acf = m.autocorrelations(10_000);
        assert!((acf[0] - 1.0).abs() < 1e-12);
        for (k, &r) in acf.iter().enumerate() {
            assert!(
                (-1.0..=1.0 + 1e-12).contains(&r),
                "{} r({k}) = {r}",
                m.label()
            );
        }
        // All paper models are positively correlated and decaying overall.
        assert!(acf[1] > acf[100] && acf[100] >= 0.0, "{}", m.label());
    }
}

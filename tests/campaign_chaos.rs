//! Chaos tests for the supervised campaign runner: kill, hang and corrupt
//! workers mid-shard and prove the supervisor recovers to the *bit-identical*
//! merged result — or, when a shard is unrecoverable, degrades to an honestly
//! labeled partial result.
//!
//! These drive the real `campaign_run` binary (coordinator + worker
//! processes), not an in-process simulation of failure, so the whole stack is
//! exercised: process spawn, JSONL heartbeats, stall detection, checkpoint
//! rotation/fallback, retry/backoff, quarantine, and the merge.

use std::path::{Path, PathBuf};
use std::process::Command;
use vbr_models::GaussianAr1;
use vbr_sim::{run, RunOptions, SimConfig};

const REPLICATIONS: usize = 6;
const FRAMES: usize = 4_000;

/// The exact config the binary's defaults build for `--replications 6
/// --frames 4000` (everything else default) — the in-process reference must
/// match it field for field or the fingerprints (and results) diverge.
fn reference_config() -> SimConfig {
    SimConfig {
        n_sources: 4,
        capacity_per_source: 538.0,
        buffers_total: vec![0.0, 50.0, 200.0],
        frames_per_replication: FRAMES,
        warmup_frames: FRAMES / 20,
        replications: REPLICATIONS,
        seed: 7,
        ts: 0.04,
        track_bop: false,
    }
}

fn campaign_cmd(dir: &Path) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_campaign_run"));
    cmd.args([
        "--replications",
        "6",
        "--frames",
        "4000",
        "--shards",
        "3",
        "--threads",
        "1",
        "--worker-heartbeat-ms",
        "100",
        "--heartbeat-timeout-ms",
        "1500",
        "--poll-ms",
        "25",
        "--backoff-base-ms",
        "50",
        "--dir",
    ])
    .arg(dir)
    .env_remove("VBR_FAULT");
    cmd
}

/// Runs the coordinator and returns its one-line JSON summary (stdout).
fn run_campaign(mut cmd: Command) -> String {
    let out = cmd.output().expect("spawn campaign_run");
    let stdout = String::from_utf8(out.stdout).expect("utf8 stdout");
    assert!(
        out.status.success(),
        "campaign failed: status {:?}\nstdout: {stdout}\nstderr: {}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    stdout
        .lines()
        .rev()
        .find(|l| l.starts_with('{'))
        .expect("summary JSON line")
        .to_string()
}

/// Extracts `"key":[..]` array contents from the flat summary line.
fn json_array<'a>(summary: &'a str, key: &str) -> Vec<&'a str> {
    let tag = format!("\"{key}\":[");
    let start = summary.find(&tag).expect("key present") + tag.len();
    let end = summary[start..].find(']').expect("terminated array") + start;
    summary[start..end]
        .split(',')
        .map(|s| s.trim().trim_matches('"'))
        .filter(|s| !s.is_empty())
        .collect()
}

/// Extracts a scalar `"key":value` from the flat summary line.
fn json_scalar<'a>(summary: &'a str, key: &str) -> &'a str {
    let tag = format!("\"{key}\":");
    let start = summary.find(&tag).expect("key present") + tag.len();
    let rest = &summary[start..];
    let end = rest.find([',', '}']).expect("terminated value");
    rest[..end].trim()
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vbr_campaign_chaos_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn event_count(events: &str, kind: &str) -> usize {
    events
        .lines()
        .filter(|l| l.contains(&format!("\"type\":\"{kind}\"")))
        .count()
}

#[test]
fn fault_free_campaign_is_bit_identical_to_in_process_run() {
    let dir = temp_dir("clean");
    let summary = run_campaign(campaign_cmd(&dir));
    assert_eq!(json_scalar(&summary, "completed"), "6");
    assert_eq!(json_scalar(&summary, "partial"), "false");
    assert_eq!(json_scalar(&summary, "restarts"), "0");

    // Reference: the same experiment in one process, no supervisor at all.
    let config = reference_config();
    let outcome = run(
        &GaussianAr1::new(500.0, 70.0, 0.8),
        &config,
        &RunOptions {
            threads: Some(1),
            ..RunOptions::default()
        },
    )
    .expect("reference run");
    let expected: Vec<String> = outcome
        .per_buffer
        .iter()
        .map(|e| format!("{:016x}", e.pooled.clr().to_bits()))
        .collect();
    assert_eq!(
        json_array(&summary, "clr_bits"),
        expected,
        "multi-process campaign must be bit-identical to the direct run"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn chaos_campaign_recovers_to_bit_identical_result() {
    // Clean baseline.
    let clean_dir = temp_dir("baseline");
    let clean = run_campaign(campaign_cmd(&clean_dir));
    let clean_bits = json_array(&clean, "clr_bits")
        .into_iter()
        .map(str::to_string)
        .collect::<Vec<_>>();

    // One campaign takes all three fault kinds in different shards:
    // shard 0 owns reps 0..2 (crash at 1), shard 1 owns 2..4 (hang at 3),
    // shard 2 owns 4..6 (corrupt checkpoint + crash at 5). Each fires on
    // attempt 1 only, so every shard recovers on retry.
    let chaos_dir = temp_dir("chaos");
    let mut cmd = campaign_cmd(&chaos_dir);
    cmd.env("VBR_FAULT", "crash@1,hang@3,corrupt-checkpoint@5");
    let chaos = run_campaign(cmd);

    assert_eq!(json_scalar(&chaos, "completed"), "6", "{chaos}");
    assert_eq!(json_scalar(&chaos, "partial"), "false", "{chaos}");
    assert_eq!(json_scalar(&chaos, "quarantined"), "0", "{chaos}");
    let restarts: usize = json_scalar(&chaos, "restarts").parse().expect("restarts");
    assert!(restarts >= 3, "three faults need three restarts: {chaos}");
    assert_eq!(
        json_array(&chaos, "clr_bits"),
        clean_bits,
        "recovered campaign must be bit-identical to the fault-free one"
    );

    // The supervisor's own event stream tells the recovery story.
    let events = std::fs::read_to_string(chaos_dir.join("campaign.events.jsonl"))
        .expect("campaign events");
    assert!(event_count(&events, "campaign_start") == 1, "{events}");
    assert!(event_count(&events, "worker_restarted") >= 3, "{events}");
    assert!(
        event_count(&events, "worker_stalled") >= 1,
        "the hang must be detected: {events}"
    );
    assert_eq!(event_count(&events, "shard_completed"), 3, "{events}");
    assert_eq!(event_count(&events, "shard_quarantined"), 0, "{events}");
    assert!(event_count(&events, "campaign_end") == 1, "{events}");

    // The corrupted shard recovered through the checkpoint fallback chain.
    let fallbacks: usize = json_scalar(&chaos, "fallbacks").parse().expect("fallbacks");
    assert!(fallbacks >= 1, "corrupt checkpoint must trigger fallback: {chaos}");

    let _ = std::fs::remove_dir_all(&clean_dir);
    let _ = std::fs::remove_dir_all(&chaos_dir);
}

#[test]
fn permanent_failure_quarantines_with_honest_provenance() {
    // Replication 1 (shard 0) crashes on *every* attempt: the shard can
    // never finish. The supervisor must quarantine it after the retry
    // budget, keep its completed replication 0, and label the merged result
    // partial — 5 of 6 — rather than fail or lie.
    let dir = temp_dir("quarantine");
    let mut cmd = campaign_cmd(&dir);
    cmd.env("VBR_FAULT", "crash@1:*");
    let summary = run_campaign(cmd);

    assert_eq!(json_scalar(&summary, "requested"), "6", "{summary}");
    assert_eq!(json_scalar(&summary, "completed"), "5", "{summary}");
    assert_eq!(json_scalar(&summary, "partial"), "true", "{summary}");
    assert_eq!(json_scalar(&summary, "quarantined"), "1", "{summary}");

    let events =
        std::fs::read_to_string(dir.join("campaign.events.jsonl")).expect("campaign events");
    assert_eq!(event_count(&events, "shard_quarantined"), 1, "{events}");
    assert_eq!(event_count(&events, "shard_completed"), 2, "{events}");

    // The unquarantined shards' replications are still bit-identical to the
    // same replications of a direct run — a partial result is a *subset*,
    // not a different experiment.
    let config = reference_config();
    let outcome = run(
        &GaussianAr1::new(500.0, 70.0, 0.8),
        &config,
        &RunOptions {
            threads: Some(1),
            replication_range: Some(2..6),
            ..RunOptions::default()
        },
    )
    .expect("reference shard runs");
    assert_eq!(outcome.provenance.completed, 4);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn supervisor_survives_a_sigkilled_worker() {
    // Not an injected fault: an actual SIGKILL from outside, aimed at a
    // worker process mid-shard. Slow the workers down with more frames so
    // there is a window to hit.
    let dir = temp_dir("sigkill");
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_campaign_run"));
    cmd.args([
        "--replications",
        "2",
        "--frames",
        "600000",
        "--shards",
        "1",
        "--threads",
        "1",
        "--worker-heartbeat-ms",
        "50",
        "--heartbeat-timeout-ms",
        "4000",
        "--poll-ms",
        "25",
        "--backoff-base-ms",
        "50",
        "--dir",
    ])
    .arg(&dir)
    .env_remove("VBR_FAULT");
    let mut coordinator = cmd
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn coordinator");

    // Find the worker (child of the coordinator running with --worker) and
    // SIGKILL it once it has had time to start computing.
    let coord_pid = coordinator.id();
    let mut killed = false;
    for _ in 0..200 {
        std::thread::sleep(std::time::Duration::from_millis(50));
        let pgrep = Command::new("pkill")
            .args(["-9", "-P", &coord_pid.to_string(), "-f", "campaign_run.*--worker"])
            .status();
        if matches!(pgrep, Ok(s) if s.success()) {
            killed = true;
            break;
        }
        if coordinator.try_wait().expect("try_wait").is_some() {
            break; // finished before we could kill — config too fast
        }
    }
    let out = coordinator.wait_with_output().expect("coordinator output");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "coordinator must survive: {stdout}"
    );
    let summary = stdout
        .lines()
        .rev()
        .find(|l| l.starts_with('{'))
        .expect("summary line")
        .to_string();
    assert_eq!(json_scalar(&summary, "completed"), "2", "{summary}");
    assert_eq!(json_scalar(&summary, "partial"), "false", "{summary}");
    if killed {
        let restarts: usize = json_scalar(&summary, "restarts").parse().expect("restarts");
        assert!(restarts >= 1, "killed worker must be restarted: {summary}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Compile-time guard: the reference config in this file and the binary's
/// defaults must both fingerprint the same way as a worker sees them. If the
/// binary's defaults drift, the bit-identity tests above fail loudly — this
/// test just localizes the cause.
#[test]
fn reference_config_matches_binary_defaults() {
    let dir = temp_dir("fingerprint");
    std::fs::create_dir_all(&dir).expect("dir");
    let summary = run_campaign(campaign_cmd(&dir));
    assert_eq!(json_scalar(&summary, "requested"), "6");
    let config = reference_config();
    // The shard checkpoints the binary wrote must load under our reference
    // config — fingerprint match is exactly config-field match.
    let verified = vbr_sim::verify_checkpoint(&dir.join("shard-0.ckpt"), &config)
        .expect("binary checkpoint must verify against the reference config");
    assert_eq!(verified, 2, "shard 0 owns replications 0..2");
    let _ = std::fs::remove_dir_all(&dir);
}

//! Property-based tests (proptest) on the core invariants across crates.

use proptest::prelude::*;
use vbr_asymptotics::{critical_time_scale, SourceStats, VarianceFunction};
use vbr_atm::cell::{hec, verify_and_correct, Cell, CellHeader, HecStatus, PayloadType, PAYLOAD_SIZE};
use vbr_atm::{Gcra, GcraOutcome, Spacer};
use vbr_models::{DarParams, DarProcess, FrameProcess, Marginal};
use vbr_sim::FluidQueue;
use vbr_stats::linalg::{levinson_durbin, solve_dense, solve_toeplitz};
use vbr_stats::rng::Xoshiro256PlusPlus;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Fluid queue invariants under arbitrary arrival sequences:
    /// workload stays in [0, B], loss only when work would exceed B, and
    /// mass balance (offered = served + lost + queued) holds exactly.
    #[test]
    fn fluid_queue_invariants(
        capacity in 1.0f64..1000.0,
        buffer in 0.0f64..5000.0,
        arrivals in proptest::collection::vec(0.0f64..3000.0, 1..200),
    ) {
        let mut q = FluidQueue::finite(capacity, buffer);
        let mut served = 0.0;
        let mut w_prev = 0.0;
        for &x in &arrivals {
            let lost = q.offer(x);
            let w = q.workload();
            prop_assert!((0.0..=buffer + 1e-9).contains(&w), "workload {} out of [0,{}]", w, buffer);
            prop_assert!(lost >= 0.0);
            if lost > 0.0 {
                prop_assert!((w - buffer).abs() < 1e-9, "loss only at full buffer");
            }
            served += x - (w - w_prev) - lost;
            w_prev = w;
        }
        let total: f64 = arrivals.iter().sum();
        let acct = q.account();
        prop_assert!((acct.offered - total).abs() < 1e-6 * total.max(1.0));
        prop_assert!((served + acct.lost + q.workload() - total).abs() < 1e-6 * total.max(1.0));
        prop_assert!(served <= capacity * arrivals.len() as f64 + 1e-9);
    }

    /// Monotonicity: a bigger buffer never loses more on the same arrivals.
    #[test]
    fn fluid_queue_loss_monotone_in_buffer(
        capacity in 10.0f64..500.0,
        b1 in 0.0f64..1000.0,
        extra in 0.0f64..1000.0,
        arrivals in proptest::collection::vec(0.0f64..2000.0, 1..150),
    ) {
        let mut small = FluidQueue::finite(capacity, b1);
        let mut large = FluidQueue::finite(capacity, b1 + extra);
        for &x in &arrivals {
            small.offer(x);
            large.offer(x);
        }
        prop_assert!(large.account().lost <= small.account().lost + 1e-9);
    }

    /// DAR(p) ACFs are valid correlation sequences: r(0)=1, |r(k)|<=1, and
    /// the implied Toeplitz matrix is positive semi-definite (checked via
    /// Levinson-Durbin not rejecting).
    #[test]
    fn dar_acf_is_valid_correlation(
        rho in 0.0f64..0.995,
        w1 in 0.01f64..1.0,
        w2 in 0.0f64..1.0,
        w3 in 0.0f64..1.0,
    ) {
        let total = w1 + w2 + w3;
        let probs = vec![w1 / total, w2 / total, w3 / total];
        let acf = DarProcess::acf_from_params(rho, &probs, 64);
        prop_assert!((acf[0] - 1.0).abs() < 1e-12);
        for &r in &acf {
            prop_assert!((-1.0..=1.0 + 1e-12).contains(&r));
        }
        prop_assert!(levinson_durbin(&acf[..16]).is_some(), "ACF must be PSD");
    }

    /// Yule-Walker roundtrip: fit_dar recovers DAR parameters from their own
    /// ACF whenever all weights are bounded away from 0.
    #[test]
    fn dar_fit_roundtrip(
        rho in 0.05f64..0.95,
        w1 in 0.1f64..1.0,
        w2 in 0.1f64..1.0,
    ) {
        let total = w1 + w2;
        let probs = vec![w1 / total, w2 / total];
        let acf = DarProcess::acf_from_params(rho, &probs, 8);
        let fit = vbr_core::matching::fit_dar(&acf, 2, Marginal::paper_gaussian()).unwrap();
        prop_assert!((fit.rho - rho).abs() < 1e-7, "{} vs {rho}", fit.rho);
        prop_assert!((fit.lag_probs[0] - probs[0]).abs() < 1e-7);
    }

    /// Toeplitz solver agrees with dense Gaussian elimination on random
    /// diagonally-dominant symmetric Toeplitz systems.
    #[test]
    fn toeplitz_matches_dense(
        coeffs in proptest::collection::vec(-0.2f64..0.2, 2..7),
        rhs_seed in proptest::collection::vec(-10.0f64..10.0, 7),
    ) {
        let n = coeffs.len() + 1;
        let mut col = vec![1.0];
        col.extend(&coeffs);
        let rhs = rhs_seed[..n].to_vec();
        let mut dense = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                dense[i * n + j] = col[(i as isize - j as isize).unsigned_abs()];
            }
        }
        let xt = solve_toeplitz(&col, &rhs);
        let xd = solve_dense(&dense, &rhs, n);
        prop_assert!(xt.is_some() && xd.is_some());
        for (a, b) in xt.unwrap().iter().zip(xd.unwrap()) {
            prop_assert!((a - b).abs() < 1e-6, "{} vs {}", a, b);
        }
    }

    /// V(m) is positive, increasing, and sub-quadratic for any valid DAR ACF.
    #[test]
    fn variance_function_shape(rho in 0.0f64..0.99) {
        let acf: Vec<f64> = (0..256).map(|k| rho.powi(k)).collect();
        let stats = SourceStats::new(500.0, 5000.0, acf);
        let v = VarianceFunction::new(&stats);
        let mut prev = 0.0;
        for m in 1..=256usize {
            let val = v.v(m);
            prop_assert!(val > prev, "V must increase");
            prop_assert!(val <= 5000.0 * (m * m) as f64 + 1e-6, "V <= sigma^2 m^2");
            prev = val;
        }
    }

    /// CTS is non-decreasing in buffer for arbitrary DAR-style ACFs, and the
    /// rate function is non-decreasing too.
    #[test]
    fn cts_monotone_random_acf(
        rho in 0.0f64..0.99,
        c_gap in 5.0f64..100.0,
        steps in 2usize..8,
    ) {
        let acf: Vec<f64> = (0..2048).map(|k| rho.powi(k)).collect();
        let stats = SourceStats::new(500.0, 5000.0, acf);
        let c = 500.0 + c_gap;
        let mut prev_m = 0usize;
        let mut prev_rate = 0.0;
        for i in 0..steps {
            let b = i as f64 * 40.0;
            let r = critical_time_scale(&stats, c, b);
            prop_assert!(r.m_star >= prev_m, "CTS must not decrease");
            prop_assert!(r.rate >= prev_rate - 1e-12, "I(c,b) must not decrease");
            prev_m = r.m_star;
            prev_rate = r.rate;
        }
    }

    /// HEC: encode -> corrupt one random header bit -> decode must correct it
    /// back to the original header for every field combination.
    #[test]
    fn hec_corrects_any_single_bit(
        gfc in 0u8..16,
        vpi in 0u16..256,
        vci: u16,
        pt_bits in 0u8..8,
        clp: bool,
        byte in 0usize..5,
        bit in 0u8..8,
    ) {
        let header = CellHeader {
            gfc,
            vpi,
            vci,
            pt: PayloadType::from_bits(pt_bits),
            clp,
        };
        let four = header.encode_uni();
        let mut five = [four[0], four[1], four[2], four[3], hec(&four)];
        let original = five;
        five[byte] ^= 1 << bit;
        let status = verify_and_correct(&mut five);
        prop_assert_eq!(status, HecStatus::Corrected { byte, mask: 1 << bit });
        prop_assert_eq!(five, original);
    }

    /// Cell serialization roundtrip for arbitrary payloads.
    #[test]
    fn cell_roundtrip(payload in proptest::collection::vec(any::<u8>(), PAYLOAD_SIZE)) {
        let header = CellHeader {
            gfc: 1,
            vpi: 7,
            vci: 77,
            pt: PayloadType::User0,
            clp: false,
        };
        let mut buf = [0u8; PAYLOAD_SIZE];
        buf.copy_from_slice(&payload);
        let cell = Cell::new(header, buf);
        let parsed = Cell::from_bytes(&cell.to_bytes()).unwrap();
        prop_assert_eq!(parsed, cell);
    }

    /// Spacer/GCRA duality: any arrival sequence shaped at gap T conforms to
    /// GCRA(T, ~0) — and the spacer preserves order and causality.
    #[test]
    fn shaped_stream_conforms(
        gaps in proptest::collection::vec(0.0f64..0.5, 1..100),
        t in 0.01f64..0.3,
    ) {
        let mut arrivals = Vec::with_capacity(gaps.len());
        let mut now = 0.0;
        for g in gaps {
            now += g;
            arrivals.push(now);
        }
        let mut spacer = Spacer::new(t);
        let mut police = Gcra::new(t, 1e-9);
        let mut last = f64::NEG_INFINITY;
        for &a in &arrivals {
            let d = spacer.depart(a);
            prop_assert!(d >= a, "causality");
            prop_assert!(d >= last, "order");
            prop_assert_eq!(police.police(d), GcraOutcome::Conforming);
            last = d;
        }
    }

    /// DAR marginal invariance: the sample mean of any DAR(1) stays near the
    /// marginal mean regardless of rho (rho only slows mixing).
    #[test]
    fn dar_marginal_invariant_under_rho(rho in 0.0f64..0.95, seed: u64) {
        let mut p = DarProcess::new(DarParams::dar1(
            rho,
            Marginal::Gaussian { mean: 100.0, sd: 10.0 },
        ));
        let mut rng = Xoshiro256PlusPlus::from_seed_u64(seed);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| p.next_frame(&mut rng)).sum::<f64>() / n as f64;
        // Effective sample size shrinks by (1+rho)/(1-rho); bound at 5 sigma.
        let ess = n as f64 * (1.0 - rho) / (1.0 + rho);
        let tol = 5.0 * 10.0 / ess.sqrt();
        prop_assert!((mean - 100.0).abs() < tol, "mean {} (tol {})", mean, tol);
    }
}

// --- extension-module properties -----------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// AAL5 roundtrip for arbitrary payload lengths (covers every padding
    /// residue class around the 48-byte boundary).
    #[test]
    fn aal5_roundtrip_any_length(len in 0usize..4096, seed: u64) {
        use vbr_atm::aal5::{reassemble, segment, cells_for_payload};
        use vbr_atm::cell::{CellHeader, PayloadType};
        let mut rng = Xoshiro256PlusPlus::from_seed_u64(seed);
        use rand::RngCore as _;
        let mut payload = vec![0u8; len];
        rng.fill_bytes(&mut payload);
        let header = CellHeader {
            gfc: 0,
            vpi: 5,
            vci: 55,
            pt: PayloadType::User0,
            clp: false,
        };
        let cells = segment(&payload, header);
        prop_assert_eq!(cells.len(), cells_for_payload(len));
        let back = reassemble(&cells).map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(back, payload);
    }

    /// Priority queue conservation and priority-ordering invariants under
    /// arbitrary two-class arrivals.
    #[test]
    fn priority_queue_invariants(
        capacity in 10.0f64..500.0,
        buffer in 0.0f64..800.0,
        thresh_frac in 0.0f64..1.0,
        arrivals in proptest::collection::vec((0.0f64..900.0, 0.0f64..900.0), 1..120),
    ) {
        use vbr_sim::PriorityQueue;
        let threshold = buffer * thresh_frac;
        let mut q = PriorityQueue::new(capacity, buffer, threshold);
        for &(h, l) in &arrivals {
            let (hl, ll) = q.offer(h, l);
            prop_assert!(hl >= 0.0 && ll >= 0.0);
            prop_assert!(hl <= h + 1e-9 && ll <= l + 1e-9);
            prop_assert!((0.0..=buffer + 1e-9).contains(&q.workload()));
        }
        let high = q.high_account();
        let low = q.low_account();
        let offered: f64 = arrivals.iter().map(|&(h, l)| h + l).sum();
        prop_assert!((high.offered + low.offered - offered).abs() < 1e-6 * offered.max(1.0));
        // Mass balance: everything offered is lost, queued, or served; and
        // served work cannot exceed capacity x frames.
        let served = offered - high.lost - low.lost - q.workload();
        prop_assert!(served >= -1e-9);
        prop_assert!(served <= capacity * arrivals.len() as f64 + 1e-9);
    }

    /// The high-priority class never does worse under partial buffer
    /// sharing than the same class in a FIFO sharing the buffer with the
    /// low class.
    #[test]
    fn priority_protects_high_class_vs_fifo(
        arrivals in proptest::collection::vec((0.0f64..400.0, 0.0f64..400.0), 5..80),
    ) {
        use vbr_sim::{FluidQueue, PriorityQueue};
        let capacity = 200.0;
        let buffer = 150.0;
        let mut pq = PriorityQueue::new(capacity, buffer, 30.0);
        let mut fifo = FluidQueue::finite(capacity, buffer);
        let mut fifo_high_lost = 0.0;
        for &(h, l) in &arrivals {
            pq.offer(h, l);
            // In FIFO, high and low share fate proportionally.
            let lost = fifo.offer(h + l);
            if h + l > 0.0 {
                fifo_high_lost += lost * h / (h + l);
            }
        }
        prop_assert!(
            pq.high_account().lost <= fifo_high_lost + 1e-6,
            "priority high loss {} vs FIFO-share {}",
            pq.high_account().lost,
            fifo_high_lost
        );
    }

    /// F-ARIMA ACF is a valid, positive, decreasing correlation sequence
    /// for every d, and Levinson accepts it (PSD check).
    #[test]
    fn farima_acf_validity(d in 0.01f64..0.49) {
        let acf = vbr_models::farima_acf(d, 128);
        prop_assert!((acf[0] - 1.0).abs() < 1e-12);
        for w in acf.windows(2) {
            prop_assert!(w[1] > 0.0 && w[1] < w[0]);
        }
        prop_assert!(levinson_durbin(&acf[..32]).is_some());
    }

    /// MarkovOnOff target solver: mean/variance round-trip over a wide
    /// parameter box, and the ACF is geometric.
    #[test]
    fn markov_onoff_solver_roundtrip(
        mean in 50.0f64..1000.0,
        over in 1.2f64..12.0,
        m in 2usize..40,
    ) {
        use vbr_models::{MarkovOnOff, MarkovOnOffParams};
        let variance = mean * over;
        // Feasibility envelope: Var <= mean + mean^2/M (the frozen-state
        // nu -> 0 limit); stay safely inside it.
        prop_assume!(variance < mean + mean * mean / m as f64 * 0.9);
        let params = MarkovOnOffParams::from_frame_targets(mean, variance, m, 0.04);
        prop_assert!((params.frame_mean() - mean).abs() < 1e-6 * mean);
        prop_assert!((params.frame_variance() - variance).abs() < 1e-3 * variance);
        let model = MarkovOnOff::new(params);
        let r = model.autocorrelations(10);
        let q1 = r[2] / r[1];
        for k in 2..10 {
            // Fast switching can underflow the tail to 0; ratios are only
            // meaningful while the ACF is numerically alive.
            if r[k - 1] < 1e-100 {
                break;
            }
            let q = r[k] / r[k - 1];
            prop_assert!((q - q1).abs() < 1e-6 * q1.max(1e-6), "geometric ratio breaks at {}", k);
        }
    }

    /// Clegg parameter validation: `try_new` accepts exactly the box
    /// H in (0.5, 1), chains >= 1, mean > 0, sd > 0 — and rejects every
    /// perturbation out of it.
    #[test]
    fn clegg_try_new_validation(
        h in 0.501f64..0.999,
        chains in 1usize..64,
        mean in 1.0f64..2000.0,
        sd in 0.5f64..500.0,
    ) {
        use vbr_models::{CleggParams, CleggProcess};
        let good = CleggParams { h, chains, mean, sd };
        prop_assert!(CleggProcess::try_new(good).is_ok());
        for bad in [
            CleggParams { h: 0.5, ..good },
            CleggParams { h: 1.0, ..good },
            CleggParams { h: h - 0.6, ..good },
            CleggParams { chains: 0, ..good },
            CleggParams { mean: 0.0, ..good },
            CleggParams { mean: -mean, ..good },
            CleggParams { sd: 0.0, ..good },
            CleggParams { sd: f64::NAN, ..good },
        ] {
            prop_assert!(CleggProcess::try_new(bad).is_err());
        }
    }

    /// Clegg structural invariants over the whole parameter box: the chain
    /// exponent gamma = 3 - 2H lies in (1, 2); moments are matched exactly;
    /// the ACF is a correlation sequence; and every emitted frame lives on
    /// the binomial-affine lattice inside [mean ± sd·sqrt(M)].
    #[test]
    fn clegg_invariants(
        h in 0.55f64..0.95,
        chains in 1usize..24,
        seed: u64,
    ) {
        use vbr_models::{CleggParams, CleggProcess};
        let (mean, sd) = (500.0, 70.0);
        let mut p = CleggProcess::new(CleggParams { h, chains, mean, sd });
        prop_assert!(p.gamma() > 1.0 && p.gamma() < 2.0);
        prop_assert!((p.mean() - mean).abs() < 1e-9);
        prop_assert!((p.variance() - sd * sd).abs() < 1e-9 * sd * sd);
        let acf = p.autocorrelations(32);
        prop_assert!((acf[0] - 1.0).abs() < 1e-12);
        for &r in &acf {
            prop_assert!((-1.0..=1.0 + 1e-12).contains(&r));
        }
        let mut rng = Xoshiro256PlusPlus::from_seed_u64(seed);
        let half_range = sd * (chains as f64).sqrt();
        for _ in 0..256 {
            let x = p.next_frame(&mut rng);
            prop_assert!(x >= mean - half_range - 1e-9 && x <= mean + half_range + 1e-9);
        }
    }

    /// MWM parameter validation: rejects H out of (0.5, 1), non-positive
    /// moments, and an empty cascade.
    #[test]
    fn mwm_try_new_validation(
        h in 0.501f64..0.999,
        levels in 1usize..14,
        mean in 10.0f64..2000.0,
        cv in 0.05f64..0.5,
    ) {
        use vbr_models::{MwmParams, MwmProcess};
        let sd = cv * mean;
        let good = MwmParams { mean, sd, h, levels };
        prop_assert!(MwmProcess::try_new(good).is_ok());
        for bad in [
            MwmParams { h: 0.5, ..good },
            MwmParams { h: 1.0, ..good },
            MwmParams { levels: 0, ..good },
            MwmParams { mean: 0.0, ..good },
            MwmParams { mean: -mean, ..good },
            MwmParams { sd: 0.0, ..good },
            MwmParams { sd: f64::NAN, ..good },
        ] {
            prop_assert!(MwmProcess::try_new(bad).is_err());
        }
    }

    /// MWM cascade invariants: the solved multiplier-variance schedule lies
    /// in (0, 1) at every level, obeys the octave-pinning recursion
    /// eta_{j+1} = eta_j 2^{2-2H} / (1 + eta_j), reproduces the target
    /// variance exactly, and the synthesized output is non-negative with
    /// exact per-block mass mean·2^J.
    #[test]
    fn mwm_cascade_invariants(
        h in 0.55f64..0.95,
        levels in 1usize..10,
        cv in 0.05f64..0.4,
        seed: u64,
    ) {
        use vbr_models::{MwmParams, MwmProcess};
        let (mean, sd) = (500.0, 500.0 * cv);
        let mut p = MwmProcess::new(MwmParams { mean, sd, h, levels });
        let etas = p.etas().to_vec();
        prop_assert_eq!(etas.len(), levels);
        let ratio = 2.0_f64.powf(2.0 - 2.0 * h);
        for w in etas.windows(2) {
            prop_assert!((w[1] - w[0] * ratio / (1.0 + w[0])).abs() < 1e-9);
        }
        let prod: f64 = etas.iter().map(|e| 1.0 + e).product();
        prop_assert!(etas.iter().all(|&e| e > 0.0 && e < 1.0));
        prop_assert!((mean * mean * (prod - 1.0) - sd * sd).abs() < 1e-6 * sd * sd);
        let mut rng = Xoshiro256PlusPlus::from_seed_u64(seed);
        let block = p.block_len();
        let mut frames = vec![0.0_f64; block];
        p.fill_frames(&mut frames, &mut rng);
        prop_assert!(frames.iter().all(|&x| x >= 0.0));
        let mass: f64 = frames.iter().sum();
        let want = mean * block as f64;
        prop_assert!((mass - want).abs() < 1e-6 * want, "block mass {} vs {}", mass, want);
    }

    /// Trace replay preserves the recorded multiset of frames over one full
    /// cycle, and its reported mean matches the sample mean.
    #[test]
    fn trace_replay_preserves_frames(
        frames in proptest::collection::vec(0.0f64..2000.0, 8..64),
        seed: u64,
    ) {
        use vbr_sim::TraceProcess;
        prop_assume!(frames.iter().any(|&x| (x - frames[0]).abs() > 1e-9));
        let n = frames.len();
        let trace = TraceProcess::new(frames.clone(), "t", 2);
        let mut replay = trace.boxed_clone();
        let mut rng = Xoshiro256PlusPlus::from_seed_u64(seed);
        let mut got: Vec<f64> = (0..n).map(|_| replay.next_frame(&mut rng)).collect();
        let mut want = frames.clone();
        got.sort_by(|a, b| a.total_cmp(b));
        want.sort_by(|a, b| a.total_cmp(b));
        prop_assert_eq!(got, want);
        let sample_mean: f64 = frames.iter().sum::<f64>() / n as f64;
        prop_assert!((trace.mean() - sample_mean).abs() < 1e-9);
    }
}

//! Validation of the fluid abstraction: the frame-level fluid queue and the
//! slotted cell-level multiplexer must agree on CLR at the paper's operating
//! points (DESIGN.md ablation "fluid frame-level vs cell-slot-level queue").

use lrd_video::prelude::*;
use vbr_sim::{CellMultiplexer, FluidQueue};
use vbr_stats::rng::Xoshiro256PlusPlus;

/// Runs the same arrivals through both queue models, pooling several
/// independent replications (LRD losses cluster in rare excursions, so a
/// single path is an unusable estimator — the same reason the paper runs 60
/// replications).
fn run_both(a: f64, buffer_cells: f64, frames: usize, reps: u64, seed: u64) -> (f64, f64) {
    let n = 30usize;
    let capacity = n as f64 * 538.0;
    let proto = paper::build_z(a);
    let root = Xoshiro256PlusPlus::from_seed_u64(seed);

    let mut fluid_acct = vbr_sim::LossAccount::default();
    let mut cell_lost = 0u64;
    let mut cell_offered = 0u64;
    for rep in 0..reps {
        let mut rng = root.split(rep);
        let mut sources: Vec<Box<dyn FrameProcess>> =
            (0..n).map(|_| proto.boxed_clone()).collect();
        for s in sources.iter_mut() {
            s.reset(&mut rng);
        }
        let mut fluid = FluidQueue::finite(capacity, buffer_cells);
        let mut cell = CellMultiplexer::new(capacity as usize, buffer_cells as usize);
        let mut row = vec![0.0; n];
        for _ in 0..frames {
            for (i, s) in sources.iter_mut().enumerate() {
                row[i] = s.next_frame(&mut rng);
            }
            let agg: f64 = row.iter().sum();
            fluid.offer(agg);
            cell.offer_frame(&row);
        }
        fluid_acct.merge(&fluid.account());
        cell_lost += cell.lost();
        cell_offered += cell.offered();
    }
    (
        fluid_acct.clr(),
        cell_lost as f64 / cell_offered.max(1) as f64,
    )
}

#[test]
fn clr_agreement_at_moderate_buffer() {
    // Buffer = 2 ms at the paper's link: 807 cells.
    let (fluid, cell) = run_both(0.99, 807.0, 25_000, 6, 11);
    assert!(fluid > 0.0 && cell > 0.0, "need loss: fluid {fluid:e} cell {cell:e}");
    let ratio = fluid / cell;
    assert!(
        (0.5..=2.0).contains(&ratio),
        "fluid {fluid:e} vs cell-level {cell:e} CLR (ratio {ratio})"
    );
}

#[test]
fn clr_agreement_at_small_buffer() {
    // 0.5 ms buffer: cell-scale effects are strongest here; deterministic
    // smoothing keeps the two models within a factor ~2.
    let (fluid, cell) = run_both(0.99, 202.0, 15_000, 6, 12);
    assert!(fluid > 0.0 && cell > 0.0);
    let ratio = fluid / cell;
    assert!(
        (0.3..=2.5).contains(&ratio),
        "fluid {fluid:e} vs cell-level {cell:e} (ratio {ratio})"
    );
}

#[test]
fn cell_level_never_loses_when_fluid_headroom_is_large() {
    // Far under capacity, neither model loses a single cell.
    let n = 30usize;
    let capacity = n as f64 * 700.0; // huge headroom
    let proto = paper::build_z(0.9);
    let mut rng = Xoshiro256PlusPlus::from_seed_u64(13);
    let mut sources: Vec<Box<dyn FrameProcess>> =
        (0..n).map(|_| proto.boxed_clone()).collect();
    let mut cell = CellMultiplexer::new(capacity as usize, 2_000);
    let mut row = vec![0.0; n];
    for _ in 0..8_000 {
        for (i, s) in sources.iter_mut().enumerate() {
            row[i] = s.next_frame(&mut rng);
        }
        cell.offer_frame(&row);
    }
    assert_eq!(cell.lost(), 0, "no loss expected under 72% utilization");
}

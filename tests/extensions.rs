//! Integration tests for the extension surfaces: heterogeneous mixes,
//! non-Gaussian marginals (paper §6.1), the CLP priority queue, AAL5
//! framing, and the provisioning inverses.

use lrd_video::atm::{self, CellHeader, PayloadType};
use lrd_video::prelude::*;
use vbr_core::experiments::SimScale;
use vbr_stats::ks_test;
use vbr_stats::rng::Xoshiro256PlusPlus;

/// Heterogeneous multiplexer: a 50/50 mix of an LRD source and its DAR(1)
/// fit should lose at a rate between the two homogeneous systems.
#[test]
fn mixed_multiplexer_interpolates() {
    let z = paper::build_z(0.99);
    let d = paper::build_s(0.99, 1);
    let scale = SimScale {
        frames: 10_000,
        replications: 4,
    };
    let b_total = buffer_from_delay_ms(1.0, 538.0, paper::TS) * 30.0;
    let mut cfg = SimConfig::paper_defaults(vec![b_total], scale.frames, scale.replications);
    cfg.seed = 1717;

    let hom_z = simulate_clr(&z, &cfg).expect("valid sim config").per_buffer[0].pooled.clr();
    let hom_d = simulate_clr(&d, &cfg).expect("valid sim config").per_buffer[0].pooled.clr();
    let mix = SourceMix::new(vec![(&z as &dyn FrameProcess, 15), (&d as &dyn FrameProcess, 15)])
        .expect("non-empty mix");
    assert_eq!(mix.total(), 30);
    assert!((mix.mean() - 15_000.0).abs() < 1e-6);
    let mixed = simulate_clr_mix(&mix, &cfg).expect("valid sim config").per_buffer[0].pooled.clr();

    let lo = hom_d.min(hom_z);
    let hi = hom_d.max(hom_z);
    assert!(
        mixed >= lo * 0.2 && mixed <= hi * 2.0,
        "mixed CLR {mixed:e} should sit between {lo:e} and {hi:e} (with noise slack)"
    );
}

/// Paper §6.1: a negative-binomial marginal with the same mean/variance
/// behaves like the Gaussian at the same operating point once bandwidth is
/// provisioned — here we check the zero-buffer CLR moves only modestly.
#[test]
fn negative_binomial_marginal_zero_buffer() {
    let gauss = IidProcess::new(Marginal::paper_gaussian());
    let negbin = IidProcess::new(Marginal::NegativeBinomial {
        mean: 500.0,
        variance: 5000.0,
    });
    let cfg = SimConfig::paper_defaults(vec![0.0], 30_000, 4);
    let g = simulate_clr(&gauss, &cfg).expect("valid sim config").per_buffer[0].pooled.clr();
    let nb = simulate_clr(&negbin, &cfg).expect("valid sim config").per_buffer[0].pooled.clr();
    assert!(g > 0.0 && nb > 0.0);
    // NB has a heavier right tail: its loss should be >= Gaussian's, but at
    // N = 30 aggregated sources the CLT keeps them within a small factor.
    assert!(
        nb >= g * 0.5 && nb <= g * 6.0,
        "negbin CLR {nb:e} vs gaussian {g:e}"
    );
}

/// The models' Gaussian-marginal claim, tested formally with KS.
///
/// Sampling discipline matters here: for an H = 0.95 process a single path's
/// empirical distribution wanders for any feasible length (the sample mean's
/// own sd is still ~45 cells at n = 6000 — LRD again), so the marginal is
/// tested on the **ensemble**: one frame from each of many independent
/// stationary restarts, which is i.i.d. from the true marginal.
#[test]
fn marginals_pass_ks_against_gaussian() {
    let mut rng = Xoshiro256PlusPlus::from_seed_u64(4040);
    for (mut model, label) in [
        (
            Box::new(paper::build_s(0.9, 2)) as Box<dyn FrameProcess>,
            "DAR(2)",
        ),
        (Box::new(paper::build_v(1.0)), "V^1"),
    ] {
        let sample: Vec<f64> = (0..4_000)
            .map(|_| {
                model.reset(&mut rng);
                model.next_frame(&mut rng)
            })
            .collect();
        let r = ks_test(&sample, |x| {
            vbr_stats::normal_cdf((x - 500.0) / 5000.0_f64.sqrt())
        });
        // The composite models are *approximately* Gaussian (M = 15 CLT);
        // demand no gross violation rather than exact normality.
        assert!(
            r.statistic < 0.05,
            "{label}: KS statistic {} too large",
            r.statistic
        );
    }
}

/// End-to-end ATM path: a video frame -> AAL5 PDU -> cells -> corrupt one
/// header bit -> HEC-correct -> reassemble; then police the cell stream.
#[test]
fn video_frame_over_aal5_with_hec_and_gcra() {
    let header = CellHeader {
        gfc: 0,
        vpi: 9,
        vci: 900,
        pt: PayloadType::User0,
        clp: false,
    };
    // A "video frame" of 23,992 bytes -> exactly 500 cells.
    let frame_bytes: Vec<u8> = (0..23_992).map(|i| (i % 256) as u8).collect();
    let cells = atm::segment(&frame_bytes, header);
    assert_eq!(cells.len(), 500);

    // Serialize, corrupt one header bit in one cell, parse back.
    let mut recovered = Vec::with_capacity(cells.len());
    for (i, cell) in cells.iter().enumerate() {
        let mut bytes = cell.to_bytes();
        if i == 250 {
            bytes[1] ^= 0x04;
        }
        recovered.push(atm::Cell::from_bytes(&bytes).expect("HEC corrects single-bit"));
    }
    let pdu = atm::reassemble(&recovered).expect("reassembly");
    assert_eq!(pdu, frame_bytes);

    // The smoothed 500-cell frame conforms to a PCR policer at the frame
    // rate with one-cell CDVT.
    let mut gcra = atm::Gcra::peak_rate(500.0 / paper::TS, 1e-6);
    for j in 0..500 {
        let t = j as f64 * paper::TS / 500.0;
        assert_eq!(gcra.police(t), atm::GcraOutcome::Conforming, "cell {j}");
    }
}

/// CLP priority: tag an LRD source's excess as CLP=1 via an SCR policer,
/// feed both classes to the threshold queue — high-priority loss must be far
/// below the aggregate FIFO loss.
#[test]
fn clp_threshold_protects_conforming_traffic() {
    let z = paper::build_z(0.99);
    let mut rng = Xoshiro256PlusPlus::from_seed_u64(555);
    let capacity = 30.0 * 538.0;
    let buffer = 600.0;
    let mut pq = PriorityQueue::new(capacity, buffer, 120.0);
    let mut fifo = vbr_sim::FluidQueue::finite(capacity, buffer);

    // 30 aggregated sources; per frame, the first `mean` cells are "in
    // contract" (CLP 0), the excess is tagged CLP 1 — a crude but standard
    // UPC model at frame granularity.
    let contract = 30.0 * 510.0;
    let mut sources: Vec<Box<dyn FrameProcess>> =
        (0..30).map(|_| z.boxed_clone()).collect();
    for s in sources.iter_mut() {
        s.reset(&mut rng);
    }
    for _ in 0..30_000 {
        let agg: f64 = sources.iter_mut().map(|s| s.next_frame(&mut rng)).sum();
        let high = agg.min(contract);
        let low = agg - high;
        pq.offer(high, low);
        fifo.offer(agg);
    }

    let high_clr = pq.high_account().clr();
    let fifo_clr = fifo.account().clr();
    if fifo_clr > 0.0 {
        assert!(
            high_clr < fifo_clr,
            "CLP-0 CLR {high_clr:e} must beat FIFO aggregate {fifo_clr:e}"
        );
    }
    // Tagged traffic bears the brunt.
    assert!(pq.low_account().clr() >= high_clr);
}

/// Dimensioning inverses compose with the model zoo: the buffer the inverse
/// reports for Z^0.975 meets the target according to the forward model.
#[test]
fn dimensioning_consistency_on_paper_models() {
    let z = paper::build_z(0.975);
    let stats = SourceStats::from_process(&z, 32_768);
    let target = 1e-6;
    let b = required_buffer(&stats, 538.0, 30, target).expect("feasible");
    assert!(bahadur_rao_bop(&stats, 538.0, b, 30) <= target * 1.001);
    let delay = buffer_delay_ms_local(b, 538.0);
    assert!(
        delay < 200.0,
        "Z^0.975 buffer requirement {delay} ms should be finite and sane"
    );

    let c = required_bandwidth(&stats, 50.0, 30, target).expect("feasible");
    assert!(c > 500.0 && c < 800.0, "effective bandwidth {c}");
}

fn buffer_delay_ms_local(b: f64, c: f64) -> f64 {
    b / c * paper::TS * 1e3
}

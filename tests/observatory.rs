//! Integration tests for the live campaign observatory: golden-snapshot
//! rendering from a recorded fixture, order-independence of cross-shard
//! aggregation, stamped event streams from real worker processes, the
//! `--report` post-mortem mode, and a live `--serve` Prometheus scrape.
//!
//! The fixture (`tests/fixtures/observatory.events.jsonl`) is a recorded
//! 2-shard campaign in which shard 1 stalls once and is restarted; its
//! renders are committed as `observatory_dashboard.golden`, so any change
//! to the dashboard or timeline format is a reviewed diff, not drift.

use lrd_video::obs::jsonl::parse_flat_object;
use lrd_video::obs::{render_campaign_prometheus, render_dashboard, CampaignAggregator};
use std::io::{Read, Write};
use std::path::Path;
use std::process::Command;

const FIXTURE: &str = include_str!("fixtures/observatory.events.jsonl");
const GOLDEN: &str = include_str!("fixtures/observatory_dashboard.golden");

fn replay_fixture() -> CampaignAggregator {
    let mut agg = CampaignAggregator::new(30_000).with_timeline();
    assert_eq!(agg.ingest_stream(FIXTURE), 37);
    let (events, skipped) = agg.counts();
    assert_eq!((events, skipped), (37, 0), "fixture must aggregate cleanly");
    agg
}

#[test]
fn golden_dashboard_matches_recorded_fixture() {
    let agg = replay_fixture();
    let now = agg.latest_ts_ms().expect("fixture carries ts_ms stamps");
    let rendered = format!(
        "{}{}",
        agg.render_timeline(),
        render_dashboard(&agg.snapshot(now), 30, false)
    );
    assert_eq!(
        rendered, GOLDEN,
        "dashboard/timeline drifted from the committed golden snapshot; \
         if intentional, regenerate via `cargo run --example campaign_observatory`"
    );
}

#[test]
fn aggregation_is_order_independent() {
    let forward = replay_fixture();
    let now = forward.latest_ts_ms().expect("stamps");
    let fwd = forward.snapshot(now);

    // Re-ingest the same stream fully reversed: heartbeats arrive before
    // their replication_start, shard completions before spawns, the
    // campaign_end first. Max-merge aggregation must converge to the same
    // snapshot — this is what makes multi-file tailing safe, since the
    // coordinator and shard streams interleave arbitrarily.
    let mut reversed = CampaignAggregator::new(30_000);
    let lines: Vec<&str> = FIXTURE.lines().rev().collect();
    for line in lines {
        assert!(reversed.ingest_line(line));
    }
    let rev = reversed.snapshot(now);

    assert_eq!(fwd.completed, rev.completed);
    assert_eq!(fwd.requested, rev.requested);
    assert_eq!(fwd.restarts, rev.restarts);
    assert_eq!(fwd.stalls, rev.stalls);
    assert_eq!(fwd.done, rev.done);
    assert_eq!(fwd.clr_b0_count, rev.clr_b0_count);
    for (f, r) in fwd.shards.iter().zip(&rev.shards) {
        assert_eq!(f.phase, r.phase, "shard {} phase", f.index);
        assert_eq!(f.completed, r.completed, "shard {} completed", f.index);
        assert_eq!(f.attempts, r.attempts, "shard {} attempts", f.index);
    }
    assert_eq!(
        render_dashboard(&fwd, 30, false),
        render_dashboard(&rev, 30, false)
    );
}

#[test]
fn fixture_prometheus_exposition_has_campaign_families() {
    let agg = replay_fixture();
    let now = agg.latest_ts_ms().expect("stamps");
    let text = render_campaign_prometheus(&agg.snapshot(now));
    for needle in [
        "vbr_campaign_shards 2e0",
        "vbr_campaign_replications_completed 6e0",
        "vbr_campaign_restarts_total 1",
        "vbr_campaign_stalls_total 1",
        "vbr_campaign_done 1e0",
        "vbr_campaign_shard_attempts{shard=\"1\"} 2",
        "vbr_campaign_shard_phase{shard=\"0\",phase=\"done\"} 1",
        "vbr_campaign_replication_duration_seconds_count 6",
    ] {
        assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
    }
}

// --- end-to-end tests driving the real campaign_run binary ---------------

fn campaign_cmd(dir: &Path, frames: &str, heartbeat_ms: &str) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_campaign_run"));
    cmd.args([
        "--replications",
        "4",
        "--frames",
        frames,
        "--shards",
        "2",
        "--threads",
        "1",
        "--worker-heartbeat-ms",
        heartbeat_ms,
        "--heartbeat-timeout-ms",
        "30000",
        "--poll-ms",
        "25",
        "--dir",
    ])
    .arg(dir)
    .env_remove("VBR_FAULT");
    cmd
}

fn temp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("vbr_observatory_{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn worker_streams_are_stamped_with_ts_and_shard() {
    let dir = temp_dir("stamps");
    // Fast heartbeats so even a debug-profile run emits several per shard.
    let out = campaign_cmd(&dir, "20000", "10").output().expect("run campaign");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    for shard in 0..2usize {
        let path = dir.join(format!("shard-{shard}.events.jsonl"));
        let body = std::fs::read_to_string(&path).expect("shard stream");
        let mut last_ts = 0u64;
        let mut heartbeats = 0usize;
        for line in body.lines() {
            let fields = parse_flat_object(line).expect("stamped line stays valid JSON");
            let get = |k: &str| fields.iter().find(|(n, _)| n == k).map(|(_, v)| v);
            let ts = get("ts_ms")
                .and_then(|v| v.as_u64())
                .unwrap_or_else(|| panic!("missing ts_ms in {line}"));
            assert!(ts >= last_ts, "ts_ms went backwards within one stream");
            last_ts = ts;
            let s = get("shard")
                .and_then(|v| v.as_u64())
                .unwrap_or_else(|| panic!("missing shard in {line}"));
            assert_eq!(s as usize, shard, "stream carries its own shard id");
            if get("type").and_then(|v| v.as_str()) == Some("heartbeat") {
                heartbeats += 1;
            }
        }
        assert!(heartbeats > 0, "shard {shard} recorded no heartbeats");
    }
    // The coordinator stream is stamped too (no shard injection needed —
    // its lifecycle events carry their own `shard` fields).
    let coord = std::fs::read_to_string(dir.join("campaign.events.jsonl")).expect("coord");
    assert!(coord.lines().all(|l| l.contains("\"ts_ms\":")));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn report_mode_replays_a_finished_campaign() {
    let dir = temp_dir("report");
    let out = campaign_cmd(&dir, "2000", "100").output().expect("run campaign");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let report = Command::new(env!("CARGO_BIN_EXE_campaign_run"))
        .arg("--report")
        .arg(&dir)
        .output()
        .expect("run report");
    assert!(
        report.status.success(),
        "{}",
        String::from_utf8_lossy(&report.stderr)
    );
    let stderr = String::from_utf8_lossy(&report.stderr);
    assert!(stderr.contains("timeline:"), "no timeline in:\n{stderr}");
    assert!(stderr.contains("campaign_start"), "no lifecycle in:\n{stderr}");
    assert!(
        stderr.contains("campaign 4/4 replications"),
        "dashboard header missing in:\n{stderr}"
    );

    // stdout is one machine-readable JSON object.
    let stdout = String::from_utf8_lossy(&report.stdout);
    let json = stdout.trim();
    assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
    for key in [
        "\"requested\":4",
        "\"completed\":4",
        "\"partial\":false",
        "\"done\":true",
        "\"shard_reports\"",
        "\"rep_duration_p50_s\"",
    ] {
        assert!(json.contains(key), "missing `{key}` in:\n{json}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serve_answers_a_live_scrape() {
    let dir = temp_dir("serve");
    // Port chosen from the test process id to avoid clashing with parallel
    // test runs on shared CI hosts.
    let port = 21000 + (std::process::id() % 20000) as u16;
    let addr = format!("127.0.0.1:{port}");
    // Enough frames that the campaign is still running when the scrape
    // lands (the endpoint stays up for the whole run either way).
    let mut child = campaign_cmd(&dir, "200000", "100")
        .arg("--serve")
        .arg(&addr)
        .spawn()
        .expect("spawn campaign with --serve");

    let mut scrape = String::new();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
    while std::time::Instant::now() < deadline {
        if let Ok(mut stream) = std::net::TcpStream::connect(&addr) {
            let _ = stream.write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
            let mut buf = String::new();
            // Retry until the tailer has ingested campaign_start (right
            // after startup the aggregate is still empty — shards reads 0).
            if stream.read_to_string(&mut buf).is_ok()
                && buf.contains("vbr_campaign_shards 2e0")
            {
                scrape = buf;
                break;
            }
        }
        if child.try_wait().expect("poll child").is_some() {
            panic!("campaign exited before a scrape succeeded");
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    let status = child.wait().expect("wait campaign");
    assert!(status.success(), "campaign failed under --serve");

    assert!(scrape.starts_with("HTTP/1.1 200 OK"), "{scrape}");
    assert!(
        scrape.contains("Content-Type: text/plain; version=0.0.4"),
        "{scrape}"
    );
    for family in [
        "vbr_campaign_shards 2e0",
        "vbr_campaign_replications_requested 4e0",
        "vbr_campaign_shard_phase",
    ] {
        assert!(scrape.contains(family), "missing `{family}` in:\n{scrape}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

//! Streaming metrics primitives: counters, gauges, log-bucketed histograms,
//! and P²-quantile summaries.
//!
//! Everything here is either lock-free (atomics, shareable by `&self` across
//! the harness's worker threads) or explicitly thread-local with a merge
//! operation. The recording granularity in the pipeline is **per batch**
//! (4096 frames) or **per replication**, never per frame, so even the CAS
//! loops are contention-noise.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use vbr_stats::p2::P2Quantile;

/// Monotone event counter (thread-safe).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Monotone `f64` accumulator (thread-safe via CAS on the bit pattern) —
/// for quantities that are naturally fractional, like fluid cells.
#[derive(Debug, Default)]
pub struct FloatCounter(AtomicU64);

impl FloatCounter {
    /// Adds `x` to the accumulator.
    pub fn add(&self, x: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + x).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Last-write-wins `f64` gauge (thread-safe).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, x: f64) {
        self.0.store(x.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Number of histogram buckets: one zero/negative bucket, 63 power-of-two
/// buckets with upper bounds `2^0 .. 2^62`, one overflow bucket.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Log-bucketed streaming histogram for non-negative values spanning many
/// orders of magnitude (queue occupancy in cells, batch latency in ns).
///
/// Bucket `0` holds values `<= 0`; bucket `1` holds `(0, 1]`; bucket `i`
/// (2 ≤ i ≤ 63) holds `(2^(i-2), 2^(i-1)]` (upper bound `2^(i-1)`); the
/// last bucket is overflow. Recording is one `log2`, one clamp and one
/// atomic increment — no allocation, shareable across threads by `&self`.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: FloatCounter,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: FloatCounter::default(),
        }
    }

    /// Bucket index for a value (see the type docs for the binning).
    pub fn bucket_index(value: f64) -> usize {
        // NaN intentionally lands here too (`partial_cmp` is None).
        if value.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return 0;
        }
        // Smallest i >= 0 with 2^i >= value, shifted past the zero bucket.
        let exp = value.log2().ceil().max(0.0);
        if exp >= 63.0 {
            HISTOGRAM_BUCKETS - 1
        } else {
            exp as usize + 1
        }
    }

    /// Upper bound of bucket `i` (`0` for the zero bucket, `+inf` for
    /// overflow).
    pub fn bucket_upper(i: usize) -> f64 {
        match i {
            0 => 0.0,
            _ if i >= HISTOGRAM_BUCKETS - 1 => f64::INFINITY,
            _ => ((i - 1) as f64).exp2(),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, value: f64) {
        self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.add(value);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum.get()
    }

    /// Immutable snapshot of the bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count(),
            sum: self.sum(),
        }
    }

    /// Merges another histogram's counts into this one.
    pub fn merge(&self, other: &Histogram) {
        for (a, b) in self.buckets.iter().zip(&other.buckets) {
            a.fetch_add(b.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum.add(other.sum.get());
    }
}

/// Plain-data snapshot of a [`Histogram`].
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Per-bucket counts (see [`Histogram`] for the binning convention).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
}

impl HistogramSnapshot {
    /// Adds another snapshot's counts into this one (same binning for every
    /// histogram, so bucketwise addition is exact).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// `(upper_bound, cumulative_count)` pairs over the non-trivial prefix
    /// of the bucket range, ending with `(+inf, count)` — the shape the
    /// Prometheus text exposition needs.
    pub fn cumulative(&self) -> Vec<(f64, u64)> {
        let last_used = self
            .buckets
            .iter()
            .rposition(|&c| c > 0)
            .unwrap_or(0)
            .min(HISTOGRAM_BUCKETS - 2);
        let mut acc = 0;
        let mut out = Vec::with_capacity(last_used + 2);
        for i in 0..=last_used {
            acc += self.buckets[i];
            out.push((Histogram::bucket_upper(i), acc));
        }
        out.push((f64::INFINITY, self.count));
        out
    }
}

/// Default quantile levels for [`P2Summary`]: median, p90, p99.
pub const DEFAULT_QUANTILES: [f64; 3] = [0.5, 0.9, 0.99];

/// Multi-quantile streaming summary built on the P² estimators of
/// `vbr_stats::p2`, with exact count/sum/min/max.
///
/// Not internally synchronized (P² adjusts markers in place); share behind a
/// `Mutex` or keep one per thread and [`merge`](P2Snapshot::merge) the
/// snapshots.
#[derive(Debug, Clone)]
pub struct P2Summary {
    quantiles: Vec<P2Quantile>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for P2Summary {
    fn default() -> Self {
        Self::new(&DEFAULT_QUANTILES)
    }
}

impl P2Summary {
    /// Creates a summary tracking the given quantile levels.
    ///
    /// # Panics
    /// Panics if any level is outside `(0, 1)` (from [`P2Quantile::new`]).
    pub fn new(levels: &[f64]) -> Self {
        Self {
            quantiles: levels.iter().map(|&q| P2Quantile::new(q)).collect(),
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Feeds one observation.
    pub fn observe(&mut self, x: f64) {
        for q in &mut self.quantiles {
            q.observe(x);
        }
        self.count += 1;
        self.sum += x;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Observations seen.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Plain-data snapshot (levels, estimates, count/sum/min/max).
    pub fn snapshot(&self) -> P2Snapshot {
        P2Snapshot {
            levels: self.quantiles.iter().map(|q| q.q()).collect(),
            estimates: self
                .quantiles
                .iter()
                .map(|q| if self.count > 0 { q.estimate() } else { f64::NAN })
                .collect(),
            count: self.count,
            sum: self.sum,
            min: self.min,
            max: self.max,
        }
    }
}

/// Plain-data snapshot of a [`P2Summary`], mergeable across threads.
#[derive(Debug, Clone, PartialEq)]
pub struct P2Snapshot {
    /// Quantile levels tracked.
    pub levels: Vec<f64>,
    /// Estimate per level (NaN if no observations).
    pub estimates: Vec<f64>,
    /// Observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Minimum observation (`+inf` if none).
    pub min: f64,
    /// Maximum observation (`-inf` if none).
    pub max: f64,
}

impl P2Snapshot {
    /// Merges another snapshot over the same levels: count/sum/min/max are
    /// exact; quantile estimates combine by count-weighted averaging — the
    /// standard approximation for post-hoc P² combination (each thread's
    /// marker state summarizes its own substream; the weighted average is
    /// within the estimators' own error for substreams of the same
    /// distribution, which is exactly the harness's case — every thread runs
    /// interchangeable replications).
    ///
    /// # Panics
    /// Panics if the level sets differ.
    pub fn merge(&mut self, other: &P2Snapshot) {
        assert_eq!(self.levels, other.levels, "quantile levels must match");
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let (wa, wb) = (self.count as f64, other.count as f64);
        for (a, &b) in self.estimates.iter_mut().zip(&other.estimates) {
            *a = (*a * wa + b * wb) / (wa + wb);
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Estimate for one level, if tracked and fed.
    pub fn estimate(&self, level: f64) -> Option<f64> {
        self.levels
            .iter()
            .position(|&l| l == level)
            .map(|i| self.estimates[i])
            .filter(|e| !e.is_nan())
    }

    /// Mean of the observations.
    pub fn mean(&self) -> f64 {
        if self.count > 0 {
            self.sum / self.count as f64
        } else {
            f64::NAN
        }
    }
}

/// Guard-trip counters by fault kind — shared with the simulator's numeric
/// guard so every constructed fault is counted at its pipeline site.
#[derive(Debug, Default)]
pub struct GuardTripCounters {
    /// Faults in a single source's output.
    pub source: Counter,
    /// Faults in the aggregate arrival stream.
    pub aggregate: Counter,
    /// Faults in queue state.
    pub queue: Counter,
}

impl GuardTripCounters {
    /// Total trips across all kinds.
    pub fn total(&self) -> u64 {
        self.source.get() + self.aggregate.get() + self.queue.get()
    }
}

/// The replication pipeline's instrument set: everything the runner samples,
/// ready for a Prometheus export or a run summary.
#[derive(Debug, Default)]
pub struct PipelineMetrics {
    /// Frames simulated (warmup included), across all replications.
    pub frames: Counter,
    /// Batches swept through the queue grid.
    pub batches: Counter,
    /// Cells offered to the queues (buffer-grid index 0; all queues in a
    /// sweep see the same arrivals).
    pub cells_offered: FloatCounter,
    /// Cells lost at the *smallest* configured buffer (grid index 0) — the
    /// most loss-sensitive point of the sweep.
    pub cells_lost_b0: FloatCounter,
    /// Replications whose results entered the estimates.
    pub replications_completed: Counter,
    /// Replications abandoned by the per-replication deadline.
    pub replications_timed_out: Counter,
    /// Checkpoint files written.
    pub checkpoint_saves: Counter,
    /// Queue occupancy (cells), sampled once per queue per batch.
    pub queue_depth: Histogram,
    /// Wall time per batch (generate + sweep), ns.
    pub batch_ns: Histogram,
    /// Per-replication wall time (seconds): P² p50/p90/p99.
    pub rep_duration_s: Mutex<P2Summary>,
    /// End-of-run throughput, cells/second of wall time.
    pub cells_per_sec: Gauge,
    /// Numeric guard trips by pipeline site.
    pub guard_trips: std::sync::Arc<GuardTripCounters>,
}

impl PipelineMetrics {
    /// Records one completed replication's duration.
    pub fn observe_replication_seconds(&self, secs: f64) {
        self.rep_duration_s
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .observe(secs);
    }

    /// Plain-data snapshot of every instrument.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            frames: self.frames.get(),
            batches: self.batches.get(),
            cells_offered: self.cells_offered.get(),
            cells_lost_b0: self.cells_lost_b0.get(),
            replications_completed: self.replications_completed.get(),
            replications_timed_out: self.replications_timed_out.get(),
            checkpoint_saves: self.checkpoint_saves.get(),
            queue_depth: self.queue_depth.snapshot(),
            batch_ns: self.batch_ns.snapshot(),
            rep_duration_s: self
                .rep_duration_s
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .snapshot(),
            cells_per_sec: self.cells_per_sec.get(),
            guard_trips_source: self.guard_trips.source.get(),
            guard_trips_aggregate: self.guard_trips.aggregate.get(),
            guard_trips_queue: self.guard_trips.queue.get(),
        }
    }
}

/// Plain-data snapshot of [`PipelineMetrics`].
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Frames simulated.
    pub frames: u64,
    /// Batches swept.
    pub batches: u64,
    /// Cells offered.
    pub cells_offered: f64,
    /// Cells lost at the smallest buffer.
    pub cells_lost_b0: f64,
    /// Replications completed.
    pub replications_completed: u64,
    /// Replications timed out.
    pub replications_timed_out: u64,
    /// Checkpoint saves.
    pub checkpoint_saves: u64,
    /// Queue occupancy histogram.
    pub queue_depth: HistogramSnapshot,
    /// Batch latency histogram (ns).
    pub batch_ns: HistogramSnapshot,
    /// Replication duration summary (seconds).
    pub rep_duration_s: P2Snapshot,
    /// Cells per wall-clock second.
    pub cells_per_sec: f64,
    /// Guard trips at source outputs.
    pub guard_trips_source: u64,
    /// Guard trips at the aggregate stream.
    pub guard_trips_aggregate: u64,
    /// Guard trips in queue state.
    pub guard_trips_queue: u64,
}

impl MetricsSnapshot {
    /// Merges another run's snapshot into this one (campaign aggregation
    /// across worker processes): counters and histograms add exactly, the
    /// replication-duration P² summary merges count-weighted
    /// ([`P2Snapshot::merge`]), and throughput gauges add (workers run
    /// concurrently, so aggregate cells/sec is the sum).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        self.frames += other.frames;
        self.batches += other.batches;
        self.cells_offered += other.cells_offered;
        self.cells_lost_b0 += other.cells_lost_b0;
        self.replications_completed += other.replications_completed;
        self.replications_timed_out += other.replications_timed_out;
        self.checkpoint_saves += other.checkpoint_saves;
        self.queue_depth.merge(&other.queue_depth);
        self.batch_ns.merge(&other.batch_ns);
        self.rep_duration_s.merge(&other.rep_duration_s);
        self.cells_per_sec += other.cells_per_sec;
        self.guard_trips_source += other.guard_trips_source;
        self.guard_trips_aggregate += other.guard_trips_aggregate;
        self.guard_trips_queue += other.guard_trips_queue;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vbr_stats::rng::Xoshiro256PlusPlus;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let c = Counter::default();
        c.add(3);
        c.add(4);
        assert_eq!(c.get(), 7);
        let f = FloatCounter::default();
        f.add(1.5);
        f.add(2.25);
        assert!((f.get() - 3.75).abs() < 1e-12);
        let g = Gauge::default();
        g.set(42.5);
        assert_eq!(g.get(), 42.5);
    }

    #[test]
    fn histogram_bucket_edges() {
        // Zero/negative/NaN land in the zero bucket.
        assert_eq!(Histogram::bucket_index(0.0), 0);
        assert_eq!(Histogram::bucket_index(-3.0), 0);
        assert_eq!(Histogram::bucket_index(f64::NAN), 0);
        // Powers of two land in their own bucket (upper bound inclusive).
        assert_eq!(Histogram::bucket_index(1.0), 1);
        assert_eq!(Histogram::bucket_index(2.0), 2);
        assert_eq!(Histogram::bucket_index(1024.0), 11);
        // Just above a power of two spills into the next bucket.
        assert_eq!(Histogram::bucket_index(2.0001), 3);
        // Values below 1 all share the (0, 1] bucket.
        assert_eq!(Histogram::bucket_index(0.3), 1);
        // Enormous values hit the overflow bucket.
        assert_eq!(Histogram::bucket_index(1e300), HISTOGRAM_BUCKETS - 1);
        assert_eq!(Histogram::bucket_index(f64::INFINITY), HISTOGRAM_BUCKETS - 1);
        // Upper bounds are consistent with the index map.
        assert_eq!(Histogram::bucket_upper(0), 0.0);
        assert_eq!(Histogram::bucket_upper(1), 1.0);
        assert_eq!(Histogram::bucket_upper(11), 1024.0);
        assert!(Histogram::bucket_upper(HISTOGRAM_BUCKETS - 1).is_infinite());
        // Every finite positive value is <= its bucket's upper bound and
        // > the previous bucket's.
        for v in [0.01, 0.99, 1.0, 1.5, 3.0, 700.0, 1e6, 1e15] {
            let i = Histogram::bucket_index(v);
            assert!(v <= Histogram::bucket_upper(i), "{v} in bucket {i}");
            assert!(v > Histogram::bucket_upper(i - 1), "{v} in bucket {i}");
        }
    }

    #[test]
    fn histogram_cumulative_is_monotone_and_complete() {
        let h = Histogram::new();
        for v in [0.0, 0.5, 3.0, 3.0, 900.0, 1e7] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 6);
        assert!((snap.sum - (0.5 + 6.0 + 900.0 + 1e7)).abs() < 1e-6);
        let cum = snap.cumulative();
        assert!(cum.windows(2).all(|w| w[0].1 <= w[1].1), "monotone: {cum:?}");
        assert!(cum.windows(2).all(|w| w[0].0 < w[1].0), "bounds sorted");
        let (last_bound, last_count) = *cum.last().unwrap();
        assert!(last_bound.is_infinite());
        assert_eq!(last_count, 6);
    }

    #[test]
    fn histogram_merge_adds_counts() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(1.0);
        b.record(1.0);
        b.record(100.0);
        a.merge(&b);
        let snap = a.snapshot();
        assert_eq!(snap.count, 3);
        assert_eq!(snap.buckets[Histogram::bucket_index(1.0)], 2);
        assert_eq!(snap.buckets[Histogram::bucket_index(100.0)], 1);
    }

    #[test]
    fn p2_summary_tracks_quantiles() {
        let mut s = P2Summary::default();
        let mut rng = Xoshiro256PlusPlus::from_seed_u64(77);
        for _ in 0..100_000 {
            s.observe(rng.next_f64());
        }
        let snap = s.snapshot();
        assert_eq!(snap.count, 100_000);
        assert!((snap.estimate(0.5).unwrap() - 0.5).abs() < 0.02);
        assert!((snap.estimate(0.9).unwrap() - 0.9).abs() < 0.02);
        assert!((snap.mean() - 0.5).abs() < 0.01);
        assert!(snap.min >= 0.0 && snap.max <= 1.0);
    }

    /// The satellite contract: P² summaries built independently on worker
    /// threads merge into a snapshot close to the single-stream estimate.
    #[test]
    fn p2_snapshot_merges_across_threads() {
        let per_thread = 50_000;
        let handles: Vec<_> = (0..4)
            .map(|t| {
                std::thread::spawn(move || {
                    let mut s = P2Summary::default();
                    let mut rng = Xoshiro256PlusPlus::from_seed_u64(1000 + t);
                    for _ in 0..per_thread {
                        s.observe(rng.next_f64());
                    }
                    s.snapshot()
                })
            })
            .collect();
        let mut merged: Option<P2Snapshot> = None;
        for h in handles {
            let snap = h.join().expect("worker");
            match merged.as_mut() {
                Some(m) => m.merge(&snap),
                None => merged = Some(snap),
            }
        }
        let merged = merged.unwrap();
        assert_eq!(merged.count, 4 * per_thread);
        assert!((merged.estimate(0.5).unwrap() - 0.5).abs() < 0.02);
        assert!((merged.estimate(0.9).unwrap() - 0.9).abs() < 0.02);
        assert!((merged.estimate(0.99).unwrap() - 0.99).abs() < 0.02);
        assert!((merged.mean() - 0.5).abs() < 0.01);
    }

    #[test]
    fn p2_snapshot_merge_handles_empty_sides() {
        let empty = P2Summary::default().snapshot();
        let mut fed = P2Summary::default();
        for i in 0..100 {
            fed.observe(i as f64);
        }
        let fed = fed.snapshot();

        let mut a = fed.clone();
        a.merge(&empty);
        assert_eq!(a.count, 100);
        assert_eq!(a.estimates, fed.estimates);

        let mut b = empty.clone();
        b.merge(&fed);
        assert_eq!(b.count, 100);
        assert_eq!(b.estimates, fed.estimates);
    }

    #[test]
    fn guard_trip_counters_total() {
        let g = GuardTripCounters::default();
        g.source.add(2);
        g.queue.add(1);
        assert_eq!(g.total(), 3);
    }

    #[test]
    fn pipeline_metrics_snapshot_roundtrip() {
        let m = PipelineMetrics::default();
        m.frames.add(4096);
        m.batches.add(1);
        m.cells_offered.add(1e6);
        m.queue_depth.record(300.0);
        m.observe_replication_seconds(1.5);
        m.guard_trips.aggregate.add(1);
        let s = m.snapshot();
        assert_eq!(s.frames, 4096);
        assert_eq!(s.batches, 1);
        assert_eq!(s.queue_depth.count, 1);
        assert_eq!(s.rep_duration_s.count, 1);
        assert_eq!(s.guard_trips_aggregate, 1);
    }
}

//! Run events and the pluggable [`Recorder`] trait.
//!
//! The simulation harness emits one [`Event`] per run-level happening —
//! replication start/end, checkpoint save/resume, guard trip, watchdog
//! action — each carrying the same seed/replication provenance the typed
//! errors carry, so an event stream is enough to replay any incident
//! deterministically. A [`Recorder`] consumes the stream; at run end it
//! additionally receives a [`RunSummary`] with the final metrics snapshot
//! and the per-stage timing table.
//!
//! Events are emitted at replication/checkpoint granularity (tens per run),
//! never per frame or per batch, so a sink may do I/O per event without
//! perturbing the pipeline.

use crate::metrics::MetricsSnapshot;
use crate::span::StageTable;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// One run-level happening, with provenance.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Event {
    /// A run began.
    RunStart {
        /// Root RNG seed.
        seed: u64,
        /// Replications requested.
        replications: usize,
        /// Multiplexed sources per replication.
        n_sources: usize,
        /// Measured frames per replication.
        frames_per_replication: usize,
        /// Buffer-grid size (CLR points measured per replication).
        buffers: usize,
    },
    /// A replication started computing (not emitted for resumed ones).
    ReplicationStart {
        /// Replication index.
        replication: usize,
        /// Root seed (`root.split(replication)` reproduces the stream).
        seed: u64,
    },
    /// A replication finished and entered the estimates.
    ReplicationEnd {
        /// Replication index.
        replication: usize,
        /// Root seed.
        seed: u64,
        /// Frames simulated (warmup included).
        frames: u64,
        /// Wall time, ns.
        duration_ns: u64,
        /// CLR at the smallest configured buffer.
        clr_b0: f64,
    },
    /// Progress heartbeat after each absorbed replication.
    Progress {
        /// Replications completed so far (resumed included).
        completed: usize,
        /// Replications requested.
        requested: usize,
    },
    /// A checkpoint file was written.
    CheckpointSaved {
        /// Checkpoint path.
        path: String,
        /// Completed replications persisted.
        replications: usize,
        /// Config fingerprint stamped into the file.
        fingerprint: u64,
    },
    /// Completed replications were loaded from a checkpoint at run start.
    CheckpointResumed {
        /// Checkpoint path.
        path: String,
        /// Replications loaded.
        replications: usize,
        /// Config fingerprint the file matched.
        fingerprint: u64,
    },
    /// The numeric guard rejected a value (the run stops with the matching
    /// `SimError::NumericFault`).
    GuardTrip {
        /// Replication in which the fault occurred.
        replication: usize,
        /// Frame index within the replication.
        frame: u64,
        /// Root seed.
        seed: u64,
        /// Pipeline site, rendered (`source 3`, `aggregate arrivals`, ...).
        site: String,
        /// The offending value.
        value: f64,
    },
    /// The watchdog abandoned a replication at its deadline.
    WatchdogTimeout {
        /// Replication abandoned.
        replication: usize,
        /// Root seed.
        seed: u64,
    },
    /// The run-level budget expired; no new replications start.
    BudgetExhausted {
        /// Replications completed when the budget hit.
        completed: usize,
        /// Replications requested.
        requested: usize,
    },
    /// Liveness beat emitted mid-replication (at most once per configured
    /// interval per worker thread) so a supervising process can tell a slow
    /// replication from a hung one.
    Heartbeat {
        /// Replication currently executing.
        replication: usize,
        /// Frames completed within that replication (warmup included).
        frame: u64,
    },
    /// A primary checkpoint file was unusable (truncated / corrupt / failed
    /// its checksum) and the run fell back — to the previous atomic version
    /// if one loaded, otherwise to a fresh start.
    CheckpointFallback {
        /// Path of the unusable primary checkpoint.
        path: String,
        /// Why the primary could not be used.
        error: String,
        /// True if the previous atomic version was loaded; false if the run
        /// had to start from scratch.
        recovered: bool,
    },
    /// A supervised campaign began.
    CampaignStart {
        /// Worker shards planned.
        shards: usize,
        /// Total replications across all shards.
        replications: usize,
    },
    /// The supervisor spawned a worker process for a shard.
    WorkerSpawned {
        /// Shard index.
        shard: usize,
        /// Attempt number (1-based).
        attempt: u32,
        /// OS process id of the worker.
        pid: u32,
    },
    /// A worker process exited (or failed to spawn).
    WorkerExited {
        /// Shard index.
        shard: usize,
        /// Attempt number (1-based).
        attempt: u32,
        /// Exit code; `-1` = killed by a signal, `-2` = spawn failed.
        code: i64,
    },
    /// A worker went silent past the heartbeat deadline; the supervisor is
    /// killing it.
    WorkerStalled {
        /// Shard index.
        shard: usize,
        /// Attempt number (1-based).
        attempt: u32,
        /// How long the worker had been silent, ms.
        silent_ms: u64,
    },
    /// The supervisor is restarting a failed worker after backoff; the new
    /// attempt resumes from the shard's checkpoint.
    WorkerRestarted {
        /// Shard index.
        shard: usize,
        /// Attempt number the restart begins (1-based).
        attempt: u32,
        /// Backoff slept before the restart, ms.
        backoff_ms: u64,
    },
    /// A shard finished all of its replications.
    ShardCompleted {
        /// Shard index.
        shard: usize,
        /// Replications the shard completed.
        replications: usize,
        /// Attempts it took.
        attempts: u32,
    },
    /// A shard exhausted its retry budget; whatever its checkpoint holds is
    /// merged as an honestly-labeled partial result.
    ShardQuarantined {
        /// Shard index.
        shard: usize,
        /// Attempts consumed.
        attempts: u32,
        /// Replications recovered from the shard's checkpoint.
        completed: usize,
    },
    /// Terminal campaign provenance. Always the last event of a campaign.
    CampaignEnd {
        /// Shards planned.
        shards: usize,
        /// Shards quarantined.
        quarantined: usize,
        /// Replications requested across all shards.
        requested: usize,
        /// Replications in the merged estimates.
        completed: usize,
        /// Worker restarts across the campaign.
        restarts: usize,
        /// Campaign wall time, ns.
        duration_ns: u64,
    },
    /// Terminal provenance record: how the run's results relate to what was
    /// asked for. Always the last event of a completed run.
    RunEnd {
        /// Replications requested.
        requested: usize,
        /// Replications completed.
        completed: usize,
        /// Replications timed out.
        timed_out: usize,
        /// Replications resumed from checkpoint.
        resumed: usize,
        /// True if the run budget expired early.
        budget_exhausted: bool,
        /// Run wall time, ns.
        duration_ns: u64,
    },
}

impl Event {
    /// Stable snake_case tag for the event kind (the JSONL `type` field).
    pub fn kind(&self) -> &'static str {
        match self {
            Event::RunStart { .. } => "run_start",
            Event::ReplicationStart { .. } => "replication_start",
            Event::ReplicationEnd { .. } => "replication_end",
            Event::Progress { .. } => "progress",
            Event::CheckpointSaved { .. } => "checkpoint_saved",
            Event::CheckpointResumed { .. } => "checkpoint_resumed",
            Event::GuardTrip { .. } => "guard_trip",
            Event::WatchdogTimeout { .. } => "watchdog_timeout",
            Event::BudgetExhausted { .. } => "budget_exhausted",
            Event::Heartbeat { .. } => "heartbeat",
            Event::CheckpointFallback { .. } => "checkpoint_fallback",
            Event::CampaignStart { .. } => "campaign_start",
            Event::WorkerSpawned { .. } => "worker_spawned",
            Event::WorkerExited { .. } => "worker_exited",
            Event::WorkerStalled { .. } => "worker_stalled",
            Event::WorkerRestarted { .. } => "worker_restarted",
            Event::ShardCompleted { .. } => "shard_completed",
            Event::ShardQuarantined { .. } => "shard_quarantined",
            Event::CampaignEnd { .. } => "campaign_end",
            Event::RunEnd { .. } => "run_end",
        }
    }
}

/// Everything a sink needs at run end: final provenance, wall time, the
/// metrics snapshot and the per-stage timing table.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Replications requested.
    pub requested: usize,
    /// Replications completed.
    pub completed: usize,
    /// Replications timed out (watchdog deadline).
    pub timed_out: usize,
    /// Replications resumed from checkpoint.
    pub resumed: usize,
    /// True if the run budget expired early.
    pub budget_exhausted: bool,
    /// Run wall time.
    pub wall: Duration,
    /// Final metrics snapshot.
    pub metrics: MetricsSnapshot,
    /// Merged per-stage timing table from all worker threads.
    pub stages: StageTable,
}

impl RunSummary {
    /// Merges another run's summary into this one (for campaign-level
    /// aggregation across worker processes): provenance counters add,
    /// metrics merge count-weighted ([`MetricsSnapshot::merge`]), stage
    /// tables add, wall time takes the max (workers run concurrently), and
    /// `budget_exhausted` ORs.
    pub fn merge(&mut self, other: &RunSummary) {
        self.requested += other.requested;
        self.completed += other.completed;
        self.timed_out += other.timed_out;
        self.resumed += other.resumed;
        self.budget_exhausted |= other.budget_exhausted;
        self.wall = self.wall.max(other.wall);
        self.metrics.merge(&other.metrics);
        self.stages.merge(&other.stages);
    }

    /// Renders the human-readable run summary: provenance (including
    /// `timed_out` and `budget_exhausted`), throughput, and the per-stage
    /// table (stage, calls, total ms, % of run).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("run summary\n");
        out.push_str(&format!(
            "  replications: {}/{} completed ({} resumed, {} timed_out, budget_exhausted = {})\n",
            self.completed, self.requested, self.resumed, self.timed_out, self.budget_exhausted,
        ));
        out.push_str(&format!(
            "  wall time: {:.3} s   frames: {}   cells/sec: {:.3e}\n",
            self.wall.as_secs_f64(),
            self.metrics.frames,
            self.metrics.cells_per_sec,
        ));
        let d = &self.metrics.rep_duration_s;
        if d.count > 0 {
            out.push_str(&format!(
                "  replication seconds: mean {:.3}  p50 {:.3}  p90 {:.3}  p99 {:.3}  max {:.3}\n",
                d.mean(),
                d.estimate(0.5).unwrap_or(f64::NAN),
                d.estimate(0.9).unwrap_or(f64::NAN),
                d.estimate(0.99).unwrap_or(f64::NAN),
                d.max,
            ));
        }
        let trips = self.metrics.guard_trips_source
            + self.metrics.guard_trips_aggregate
            + self.metrics.guard_trips_queue;
        if trips > 0 {
            out.push_str(&format!(
                "  guard trips: {} (source {}, aggregate {}, queue {})\n",
                trips,
                self.metrics.guard_trips_source,
                self.metrics.guard_trips_aggregate,
                self.metrics.guard_trips_queue,
            ));
        }
        if !self.stages.is_empty() {
            out.push('\n');
            out.push_str(&self.stages.render(self.wall));
        }
        out
    }
}

/// A consumer of the run's event stream and final summary.
///
/// Implementations must be `Send + Sync`: the harness's worker threads emit
/// events concurrently. [`finish`](Recorder::finish) is called exactly once,
/// after the last event, on successful runs (a run that dies with a fatal
/// error has flushed every event up to and including the fault).
pub trait Recorder: Send + Sync {
    /// Consumes one event.
    fn record(&self, event: &Event);

    /// Consumes the end-of-run summary (metrics + stage timings). Default:
    /// ignore.
    fn finish(&self, _summary: &RunSummary) {}
}

/// In-memory sink: stores every event and the final summary. The
/// aggregation-friendly sink for tests and programmatic inspection.
#[derive(Debug, Default)]
pub struct MemoryRecorder {
    events: Mutex<Vec<Event>>,
    summary: Mutex<Option<RunSummary>>,
}

impl MemoryRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies out the recorded events.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Number of recorded events of the given kind.
    pub fn count(&self, kind: &str) -> usize {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .filter(|e| e.kind() == kind)
            .count()
    }

    /// The final summary, if the run finished.
    pub fn summary(&self) -> Option<RunSummary> {
        self.summary.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }
}

impl Recorder for MemoryRecorder {
    fn record(&self, event: &Event) {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(event.clone());
    }

    fn finish(&self, summary: &RunSummary) {
        *self.summary.lock().unwrap_or_else(|e| e.into_inner()) = Some(summary.clone());
    }
}

/// Fans events out to several sinks in order.
pub struct FanoutRecorder(Vec<Arc<dyn Recorder>>);

impl FanoutRecorder {
    /// Builds a fanout over the given sinks.
    pub fn new(sinks: Vec<Arc<dyn Recorder>>) -> Self {
        Self(sinks)
    }
}

impl Recorder for FanoutRecorder {
    fn record(&self, event: &Event) {
        for s in &self.0 {
            s.record(event);
        }
    }

    fn finish(&self, summary: &RunSummary) {
        for s in &self.0 {
            s.finish(summary);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::PipelineMetrics;

    fn dummy_summary() -> RunSummary {
        let metrics = PipelineMetrics::default();
        metrics.frames.add(1000);
        metrics.observe_replication_seconds(0.5);
        let mut stages = StageTable::default();
        stages.add("replication", 400_000_000);
        stages.add("replication/generate", 300_000_000);
        RunSummary {
            requested: 4,
            completed: 3,
            timed_out: 1,
            resumed: 0,
            budget_exhausted: true,
            wall: Duration::from_millis(800),
            metrics: metrics.snapshot(),
            stages,
        }
    }

    #[test]
    fn memory_recorder_stores_events_and_summary() {
        let rec = MemoryRecorder::new();
        rec.record(&Event::ReplicationStart {
            replication: 0,
            seed: 7,
        });
        rec.record(&Event::Progress {
            completed: 1,
            requested: 4,
        });
        rec.finish(&dummy_summary());
        assert_eq!(rec.events().len(), 2);
        assert_eq!(rec.count("replication_start"), 1);
        assert_eq!(rec.count("progress"), 1);
        assert_eq!(rec.count("run_end"), 0);
        assert_eq!(rec.summary().unwrap().completed, 3);
    }

    #[test]
    fn fanout_reaches_every_sink() {
        let a = Arc::new(MemoryRecorder::new());
        let b = Arc::new(MemoryRecorder::new());
        let fan = FanoutRecorder::new(vec![a.clone(), b.clone()]);
        fan.record(&Event::Progress {
            completed: 1,
            requested: 2,
        });
        fan.finish(&dummy_summary());
        assert_eq!(a.events().len(), 1);
        assert_eq!(b.events().len(), 1);
        assert!(a.summary().is_some() && b.summary().is_some());
    }

    #[test]
    fn summary_render_includes_provenance_and_stages() {
        let s = dummy_summary().render();
        assert!(s.contains("3/4 completed"), "{s}");
        assert!(s.contains("timed_out"), "{s}");
        assert!(s.contains("budget_exhausted = true"), "{s}");
        assert!(s.contains("generate"), "{s}");
        assert!(s.contains("% run"), "{s}");
        assert!(s.contains("p99"), "{s}");
    }

    #[test]
    fn event_kinds_are_stable() {
        let kinds = [
            Event::RunStart {
                seed: 0,
                replications: 1,
                n_sources: 1,
                frames_per_replication: 1,
                buffers: 1,
            }
            .kind(),
            Event::RunEnd {
                requested: 1,
                completed: 1,
                timed_out: 0,
                resumed: 0,
                budget_exhausted: false,
                duration_ns: 1,
            }
            .kind(),
            Event::GuardTrip {
                replication: 0,
                frame: 0,
                seed: 0,
                site: "aggregate arrivals".into(),
                value: f64::NAN,
            }
            .kind(),
        ];
        assert_eq!(kinds, ["run_start", "run_end", "guard_trip"]);
    }
}

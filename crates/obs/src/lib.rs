//! # vbr-obs
//!
//! Zero-cost-when-disabled observability for the replication pipeline.
//!
//! Long paper-scale runs (60 replications × 5·10⁵ frames per model) were a
//! black box between launch and final report: where wall time went, what the
//! queues did, whether the watchdog degraded anything — invisible. Worse,
//! LRD conclusions are notoriously sensitive to measurement procedure
//! (Clegg's criticisms of LRD packet-traffic modelling), so run internals
//! are a *correctness* tool, not ops polish. This crate makes every run
//! inspectable without perturbing it:
//!
//! * [`span`] — scoped wall-clock timers (`span!("fgn.synthesize")`) with
//!   nesting, aggregated per stage into call-count / total-time tables.
//!   Thread-local, lock-free on the recording path, and literally one
//!   thread-local read + branch when disabled.
//! * [`metrics`] — streaming instruments: atomic counters and gauges,
//!   log-bucketed [`Histogram`]s for values spanning decades (queue
//!   occupancy, batch latency), and [`P2Summary`] quantile sketches built
//!   on `vbr_stats::p2` with cross-thread snapshot merging.
//! * [`recorder`] — the pluggable [`Recorder`] trait over a typed [`Event`]
//!   stream (replication start/end, checkpoint save/resume, guard trip,
//!   watchdog action — each with seed/replication provenance matching the
//!   simulator's typed errors), plus a [`RunSummary`] delivered at run end.
//! * Sinks: [`MemoryRecorder`] (tests, programmatic use),
//!   [`JsonlRecorder`] (one JSON object per event, one write syscall per
//!   line so concurrent tailers see events promptly, with a built-in strict
//!   validator in [`jsonl`] and optional `ts_ms`/`shard` stamps), and
//!   [`PrometheusExporter`] (text exposition written at run end).
//! * The **live observatory** read side: [`tail`] follows `*.events.jsonl`
//!   files incrementally (partial trailing lines, truncation and rotation
//!   all survivable), and [`aggregate`] folds any interleaving of
//!   coordinator + shard streams into a cross-shard campaign model —
//!   per-shard state machines, merged progress, CLR-so-far, P²-quantile
//!   ETAs — with deterministic dashboard / Prometheus / timeline renderers.
//!
//! Nothing here touches an RNG: enabling any recorder leaves simulation
//! results **bit-identical** (the integration tests assert it), and the
//! disabled path is benchmarked to cost < 1% end-to-end.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod aggregate;
pub mod jsonl;
pub mod metrics;
pub mod prometheus;
pub mod recorder;
pub mod span;
pub mod tail;

pub use aggregate::{
    render_campaign_prometheus, render_dashboard, CampaignAggregator, CampaignSnapshot,
    ShardPhase, ShardStatus, TimelineEntry,
};
pub use jsonl::{JsonScalar, JsonlRecorder};
pub use tail::{TailPoll, Tailer};
pub use metrics::{
    Counter, FloatCounter, Gauge, GuardTripCounters, Histogram, HistogramSnapshot,
    MetricsSnapshot, P2Snapshot, P2Summary, PipelineMetrics,
};
pub use prometheus::PrometheusExporter;
pub use recorder::{Event, FanoutRecorder, MemoryRecorder, Recorder, RunSummary};
pub use span::{SpanGuard, StageStats, StageTable};

use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Sink that writes the rendered human-readable [`RunSummary`] table to a
/// file at run end.
pub struct SummaryWriter {
    path: PathBuf,
}

impl SummaryWriter {
    /// Write `summary.txt`-style output to `path` when the run finishes.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        Self { path: path.into() }
    }
}

impl Recorder for SummaryWriter {
    fn record(&self, _event: &Event) {}

    fn finish(&self, summary: &RunSummary) {
        if let Err(e) = std::fs::write(&self.path, summary.render()) {
            eprintln!(
                "[vbr-obs] run summary write to {} failed: {e}",
                self.path.display()
            );
        }
    }
}

/// Convenience constructors for common sink stacks.
pub struct Telemetry;

impl Telemetry {
    /// The standard run-telemetry directory layout, as used by the
    /// `--telemetry <dir>` example flag:
    ///
    /// * `events.jsonl` — the JSONL event stream (written live),
    /// * `metrics.prom` — Prometheus text exposition (written at run end),
    /// * `summary.txt` — human-readable per-stage timing table and
    ///   provenance (written at run end).
    ///
    /// Creates the directory if needed.
    pub fn to_dir(dir: impl AsRef<Path>) -> std::io::Result<Arc<dyn Recorder>> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let jsonl = JsonlRecorder::create(dir.join("events.jsonl"))?;
        Ok(Arc::new(FanoutRecorder::new(vec![
            Arc::new(jsonl),
            Arc::new(PrometheusExporter::new(dir.join("metrics.prom"))),
            Arc::new(SummaryWriter::new(dir.join("summary.txt"))),
        ])))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn telemetry_dir_produces_all_three_artifacts() {
        let dir = std::env::temp_dir().join("vbr_obs_telemetry_dir_test");
        let _ = std::fs::remove_dir_all(&dir);
        let rec = Telemetry::to_dir(&dir).expect("create dir sinks");
        rec.record(&Event::Progress {
            completed: 1,
            requested: 2,
        });
        let metrics = PipelineMetrics::default();
        metrics.frames.add(42);
        rec.finish(&RunSummary {
            requested: 2,
            completed: 2,
            timed_out: 0,
            resumed: 0,
            budget_exhausted: false,
            wall: Duration::from_millis(10),
            metrics: metrics.snapshot(),
            stages: StageTable::default(),
        });
        let events = std::fs::read_to_string(dir.join("events.jsonl")).expect("events");
        assert_eq!(jsonl::validate_stream(&events).expect("valid"), 1);
        let prom = std::fs::read_to_string(dir.join("metrics.prom")).expect("prom");
        assert!(prom.contains("vbr_frames_total 42"));
        let summary = std::fs::read_to_string(dir.join("summary.txt")).expect("summary");
        assert!(summary.contains("2/2 completed"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

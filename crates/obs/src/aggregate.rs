//! Cross-shard campaign aggregation: a live model of a supervised campaign
//! built purely from its JSONL event streams.
//!
//! A campaign writes one coordinator stream (`campaign.events.jsonl` —
//! worker lifecycle, quarantine, terminal accounting) and one stream per
//! shard (`shard-N.events.jsonl` — replication lifecycle, progress,
//! heartbeats). [`CampaignAggregator`] ingests lines from any mix of those
//! streams, in any interleaving, and maintains:
//!
//! * a per-shard state machine — planned → running → stalled → restarting →
//!   quarantined / done — driven by lifecycle events *and* heartbeat gaps
//!   (a shard silent past the stall threshold reads as stalled even if no
//!   supervisor verdict arrived yet);
//! * campaign-level accounting: merged completion counts, restart/stall/
//!   checkpoint-fallback totals, mean CLR-so-far over finished
//!   replications, and a P² sketch of replication wall times that yields
//!   an honest ETA;
//! * optionally a [`TimelineEntry`] log for post-mortem reports.
//!
//! Ingestion is **idempotent in effect** for the state it models: counts
//! use max-merge where the stream carries absolute values (progress,
//! completion) so out-of-order or replayed lines cannot run totals
//! backwards. The renderers ([`render_dashboard`],
//! [`render_campaign_prometheus`], [`CampaignAggregator::render_timeline`])
//! are pure functions of ingested state plus an explicit `now_ms`, which is
//! what makes dashboard output reproducible from a recorded fixture stream
//! (the golden-snapshot test relies on it).

use crate::jsonl::parse_flat_object;
use crate::metrics::{P2Snapshot, P2Summary};
use crate::prometheus::{counter, fmt_f64, gauge};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Where a shard is in its lifecycle, as far as the event streams show.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardPhase {
    /// Announced by `campaign_start` but no worker activity seen yet.
    Planned,
    /// A worker is making progress (events within the stall threshold).
    Running,
    /// Running, but silent past the stall threshold, or the supervisor
    /// declared the worker hung.
    Stalled,
    /// The supervisor scheduled a retry; the next attempt has not started.
    Restarting,
    /// Retry budget exhausted; checkpointed work still merges.
    Quarantined,
    /// Every assigned replication is checkpointed.
    Done,
}

impl ShardPhase {
    /// Lowercase label used by the dashboard and Prometheus exposition.
    pub fn label(self) -> &'static str {
        match self {
            ShardPhase::Planned => "planned",
            ShardPhase::Running => "running",
            ShardPhase::Stalled => "stalled",
            ShardPhase::Restarting => "restarting",
            ShardPhase::Quarantined => "quarantined",
            ShardPhase::Done => "done",
        }
    }

    /// True for the two terminal phases, which later events never leave.
    pub fn is_terminal(self) -> bool {
        matches!(self, ShardPhase::Quarantined | ShardPhase::Done)
    }
}

/// Aggregated view of one shard.
#[derive(Debug, Clone)]
pub struct ShardStatus {
    /// Shard index.
    pub index: usize,
    /// Lifecycle phase (heartbeat-gap adjusted in [`CampaignAggregator::snapshot`]).
    pub phase: ShardPhase,
    /// Replications assigned to this shard (0 until a `run_start` or
    /// `progress` event reveals it).
    pub requested: usize,
    /// Replications completed so far (max-merged from progress events).
    pub completed: usize,
    /// Replication the worker is currently inside, if known.
    pub current_replication: Option<usize>,
    /// Latest frame reached inside the current replication.
    pub current_frame: u64,
    /// Worker attempts observed (max of `worker_spawned` attempt numbers).
    pub attempts: u32,
    /// Worker restarts the supervisor performed for this shard.
    pub restarts: usize,
    /// Hang detections for this shard.
    pub stalls: usize,
    /// Checkpoint fallbacks this shard's workers reported.
    pub fallbacks: usize,
    /// Timestamp of the first event attributed to this shard.
    pub first_ms: Option<u64>,
    /// Timestamp of the latest event attributed to this shard — the
    /// liveness signal the gap-based stall detection runs on.
    pub last_ms: Option<u64>,
    /// Timestamp of the terminal event (`shard_completed` / `shard_quarantined`).
    pub done_ms: Option<u64>,
}

impl ShardStatus {
    fn new(index: usize) -> Self {
        Self {
            index,
            phase: ShardPhase::Planned,
            requested: 0,
            completed: 0,
            current_replication: None,
            current_frame: 0,
            attempts: 0,
            restarts: 0,
            stalls: 0,
            fallbacks: 0,
            first_ms: None,
            last_ms: None,
            done_ms: None,
        }
    }

    fn advance(&mut self, to: ShardPhase) {
        if !self.phase.is_terminal() {
            self.phase = to;
        }
    }

    fn touch(&mut self, ts: Option<u64>) {
        if let Some(t) = ts {
            self.first_ms = Some(self.first_ms.map_or(t, |f| f.min(t)));
            self.last_ms = Some(self.last_ms.map_or(t, |l| l.max(t)));
        }
    }
}

/// One lifecycle event kept for the post-mortem timeline.
#[derive(Debug, Clone)]
pub struct TimelineEntry {
    /// Stamped wall-clock milliseconds, if the stream carried one.
    pub ts_ms: Option<u64>,
    /// Shard the event concerns, if any.
    pub shard: Option<usize>,
    /// Event kind tag (`worker_stalled`, `shard_completed`, …).
    pub kind: String,
    /// Human-readable detail composed from the event's fields.
    pub detail: String,
}

/// Point-in-time merged view of the whole campaign, produced by
/// [`CampaignAggregator::snapshot`]. Plain data: every renderer is a pure
/// function of one of these.
#[derive(Debug, Clone)]
pub struct CampaignSnapshot {
    /// Per-shard status, ordered by shard index, with gap-based stall
    /// adjustment applied.
    pub shards: Vec<ShardStatus>,
    /// Total replications the campaign was asked for.
    pub requested: usize,
    /// Replications completed across all shards (the coordinator's terminal
    /// count once `campaign_end` arrives, a max-merged sum before that).
    pub completed: usize,
    /// Worker restarts across the campaign.
    pub restarts: usize,
    /// Hang detections across the campaign.
    pub stalls: usize,
    /// Checkpoint fallbacks across the campaign.
    pub fallbacks: usize,
    /// Shards currently quarantined.
    pub quarantined: usize,
    /// Replication wall-time quantile sketch (seconds).
    pub rep_duration_s: P2Snapshot,
    /// Mean buffer-0 CLR over replications finished so far (NaN if none).
    pub clr_b0_mean: f64,
    /// Replications contributing to [`Self::clr_b0_mean`].
    pub clr_b0_count: u64,
    /// Wall seconds from `campaign_start` to `campaign_end` (or to `now_ms`
    /// while live); 0 when the stream carries no timestamps.
    pub elapsed_s: f64,
    /// Estimated seconds to completion: `Some(0)` when done, `None` when no
    /// replication has finished yet (no duration sample to extrapolate).
    pub eta_s: Option<f64>,
    /// True once `campaign_end` has been ingested.
    pub done: bool,
    /// Event lines successfully ingested.
    pub events: u64,
}

/// Incremental cross-shard aggregator over campaign JSONL event lines.
///
/// See the [module docs](self) for the model. Feed it lines from
/// [`Tailer`](crate::tail::Tailer)s (live) or recorded files (post-mortem);
/// shard attribution comes from each line's `shard` field (either native to
/// the event or stamped by
/// [`JsonlRecorder::with_shard`](crate::jsonl::JsonlRecorder::with_shard)) —
/// never from file paths. Un-attributed worker events still feed the
/// campaign-level accumulators.
#[derive(Debug)]
pub struct CampaignAggregator {
    stall_after_ms: u64,
    shards: BTreeMap<usize, ShardStatus>,
    requested: usize,
    rep_durations: P2Summary,
    clr_sum: f64,
    clr_count: u64,
    restarts: usize,
    stalls: usize,
    fallbacks: usize,
    start_ms: Option<u64>,
    end_ms: Option<u64>,
    final_completed: Option<usize>,
    max_ts_ms: Option<u64>,
    events: u64,
    skipped: u64,
    keep_timeline: bool,
    timeline: Vec<TimelineEntry>,
}

impl CampaignAggregator {
    /// New aggregator declaring a running shard stalled after
    /// `stall_after_ms` of event silence (use the supervisor's heartbeat
    /// timeout for consistent verdicts).
    pub fn new(stall_after_ms: u64) -> Self {
        Self {
            stall_after_ms: stall_after_ms.max(1),
            shards: BTreeMap::new(),
            requested: 0,
            rep_durations: P2Summary::default(),
            clr_sum: 0.0,
            clr_count: 0,
            restarts: 0,
            stalls: 0,
            fallbacks: 0,
            start_ms: None,
            end_ms: None,
            final_completed: None,
            max_ts_ms: None,
            events: 0,
            skipped: 0,
            keep_timeline: false,
            timeline: Vec::new(),
        }
    }

    /// Keep a [`TimelineEntry`] log of lifecycle events for post-mortem
    /// rendering (off by default — a live dashboard doesn't need the
    /// unbounded log).
    pub fn with_timeline(mut self) -> Self {
        self.keep_timeline = true;
        self
    }

    /// Lines ingested / lines skipped (unparseable or missing `type`).
    pub fn counts(&self) -> (u64, u64) {
        (self.events, self.skipped)
    }

    /// Latest `ts_ms` stamp seen on any line — the natural `now` for
    /// deterministic post-mortem snapshots.
    pub fn latest_ts_ms(&self) -> Option<u64> {
        self.max_ts_ms
    }

    /// The recorded lifecycle timeline (empty unless
    /// [`with_timeline`](Self::with_timeline) was set).
    pub fn timeline(&self) -> &[TimelineEntry] {
        &self.timeline
    }

    /// Ingests every line of a recorded stream body (skipping blanks and a
    /// partial trailing line, which parses as invalid and is skipped).
    /// Returns the number of lines ingested.
    pub fn ingest_stream(&mut self, body: &str) -> u64 {
        let before = self.events;
        for line in body.lines() {
            if !line.trim().is_empty() {
                self.ingest_line(line);
            }
        }
        self.events - before
    }

    /// Ingests one event line. Returns false (and counts the line as
    /// skipped) if it is not a flat JSON object with a `type` tag.
    pub fn ingest_line(&mut self, line: &str) -> bool {
        let Ok(fields) = parse_flat_object(line) else {
            self.skipped += 1;
            return false;
        };
        let get = |k: &str| fields.iter().find(|(key, _)| key == k).map(|(_, v)| v);
        let get_u64 = |k: &str| get(k).and_then(|v| v.as_u64());
        let get_usize = |k: &str| get_u64(k).map(|v| v as usize);
        let Some(kind) = get("type").and_then(|v| v.as_str()) else {
            self.skipped += 1;
            return false;
        };
        let ts = get_u64("ts_ms");
        if let Some(t) = ts {
            self.max_ts_ms = Some(self.max_ts_ms.map_or(t, |m| m.max(t)));
        }
        let shard_id = get_usize("shard");

        // Campaign-level accumulators first — they apply whether or not the
        // line is shard-attributed.
        match kind {
            "campaign_start" => {
                self.start_ms = self.start_ms.or(ts);
                if let Some(r) = get_usize("replications") {
                    self.requested = self.requested.max(r);
                }
                if let Some(n) = get_usize("shards") {
                    for i in 0..n {
                        self.shards.entry(i).or_insert_with(|| ShardStatus::new(i));
                    }
                }
            }
            "campaign_end" => {
                self.end_ms = self.end_ms.or(ts).or(self.max_ts_ms);
                if let Some(r) = get_usize("requested") {
                    self.requested = self.requested.max(r);
                }
                self.final_completed = get_usize("completed").or(self.final_completed);
            }
            "replication_end" => {
                if let Some(ns) = get_u64("duration_ns") {
                    self.rep_durations.observe(ns as f64 / 1e9);
                }
                if let Some(clr) = get("clr_b0").and_then(|v| v.as_f64()) {
                    if clr.is_finite() {
                        self.clr_sum += clr;
                        self.clr_count += 1;
                    }
                }
            }
            "worker_restarted" => self.restarts += 1,
            "worker_stalled" => self.stalls += 1,
            "checkpoint_fallback" => self.fallbacks += 1,
            _ => {}
        }

        // Per-shard state machine.
        if let Some(idx) = shard_id {
            let st = self
                .shards
                .entry(idx)
                .or_insert_with(|| ShardStatus::new(idx));
            st.touch(ts);
            match kind {
                "run_start" => {
                    if let Some(r) = get_usize("replications") {
                        st.requested = st.requested.max(r);
                    }
                    st.advance(ShardPhase::Running);
                }
                "replication_start" => {
                    st.current_replication = get_usize("replication").or(st.current_replication);
                    st.current_frame = 0;
                    st.advance(ShardPhase::Running);
                }
                "heartbeat" => {
                    st.current_replication = get_usize("replication").or(st.current_replication);
                    if let Some(f) = get_u64("frame") {
                        st.current_frame = st.current_frame.max(f);
                    }
                    st.advance(ShardPhase::Running);
                }
                "replication_end" => {
                    st.advance(ShardPhase::Running);
                }
                "progress" => {
                    if let Some(c) = get_usize("completed") {
                        st.completed = st.completed.max(c);
                    }
                    if let Some(r) = get_usize("requested") {
                        st.requested = st.requested.max(r);
                    }
                }
                "checkpoint_fallback" => st.fallbacks += 1,
                "worker_spawned" => {
                    if let Some(a) = get_u64("attempt") {
                        st.attempts = st.attempts.max(a as u32);
                    }
                    st.advance(ShardPhase::Running);
                }
                "worker_stalled" => {
                    st.stalls += 1;
                    st.advance(ShardPhase::Stalled);
                }
                "worker_restarted" => {
                    st.restarts += 1;
                    if let Some(a) = get_u64("attempt") {
                        st.attempts = st.attempts.max(a as u32);
                    }
                    st.advance(ShardPhase::Restarting);
                }
                "shard_completed" => {
                    if let Some(r) = get_usize("replications") {
                        st.completed = st.completed.max(r);
                        st.requested = st.requested.max(r);
                    }
                    if let Some(a) = get_u64("attempts") {
                        st.attempts = st.attempts.max(a as u32);
                    }
                    st.done_ms = st.done_ms.or(ts);
                    st.phase = ShardPhase::Done;
                }
                "shard_quarantined" => {
                    if let Some(c) = get_usize("completed") {
                        st.completed = st.completed.max(c);
                    }
                    if let Some(a) = get_u64("attempts") {
                        st.attempts = st.attempts.max(a as u32);
                    }
                    st.done_ms = st.done_ms.or(ts);
                    st.phase = ShardPhase::Quarantined;
                }
                "run_end" => {
                    // A worker-stream-only replay still learns completion.
                    if let Some(c) = get_usize("completed") {
                        st.completed = st.completed.max(c);
                    }
                    if let Some(r) = get_usize("requested") {
                        st.requested = st.requested.max(r);
                        if st.completed >= r && r > 0 {
                            st.phase = ShardPhase::Done;
                            st.done_ms = st.done_ms.or(ts);
                        }
                    }
                }
                _ => {}
            }
        }

        if self.keep_timeline {
            if let Some(detail) = timeline_detail(kind, &fields) {
                self.timeline.push(TimelineEntry {
                    ts_ms: ts,
                    shard: shard_id,
                    kind: kind.to_string(),
                    detail,
                });
            }
        }
        self.events += 1;
        true
    }

    /// Merged point-in-time view. `now_ms` drives heartbeat-gap stall
    /// detection and live elapsed/ETA; pass
    /// [`latest_ts_ms`](Self::latest_ts_ms) for deterministic post-mortem
    /// snapshots.
    pub fn snapshot(&self, now_ms: u64) -> CampaignSnapshot {
        let mut shards: Vec<ShardStatus> = self.shards.values().cloned().collect();
        for st in &mut shards {
            if st.phase == ShardPhase::Running {
                if let Some(last) = st.last_ms {
                    if now_ms.saturating_sub(last) > self.stall_after_ms {
                        st.phase = ShardPhase::Stalled;
                    }
                }
            }
        }
        let summed: usize = shards.iter().map(|s| s.completed).sum();
        let completed = self.final_completed.unwrap_or(summed);
        let requested = if self.requested > 0 {
            self.requested
        } else {
            shards.iter().map(|s| s.requested).sum()
        };
        let quarantined = shards
            .iter()
            .filter(|s| s.phase == ShardPhase::Quarantined)
            .count();
        let done = self.end_ms.is_some();
        let rep_duration_s = self.rep_durations.snapshot();
        let clr_b0_mean = if self.clr_count > 0 {
            self.clr_sum / self.clr_count as f64
        } else {
            f64::NAN
        };
        let elapsed_s = match (self.start_ms, self.end_ms) {
            (Some(s), Some(e)) => e.saturating_sub(s) as f64 / 1e3,
            (Some(s), None) => now_ms.saturating_sub(s) as f64 / 1e3,
            _ => 0.0,
        };
        let remaining = requested.saturating_sub(completed);
        let eta_s = if done || remaining == 0 {
            Some(0.0)
        } else if rep_duration_s.count == 0 {
            None
        } else {
            let per = rep_duration_s
                .estimate(0.5)
                .filter(|d| d.is_finite() && *d > 0.0)
                .unwrap_or_else(|| rep_duration_s.mean());
            let active = shards
                .iter()
                .filter(|s| !s.phase.is_terminal())
                .count()
                .max(1);
            Some(remaining as f64 * per / active as f64)
        };
        CampaignSnapshot {
            shards,
            requested,
            completed,
            restarts: self.restarts,
            stalls: self.stalls,
            fallbacks: self.fallbacks,
            quarantined,
            rep_duration_s,
            clr_b0_mean,
            clr_b0_count: self.clr_count,
            elapsed_s,
            eta_s,
            done,
            events: self.events,
        }
    }

    /// Renders the recorded lifecycle timeline, one event per line, with
    /// times relative to `campaign_start`. Stable-sorted by timestamp so
    /// interleaved coordinator and shard streams read chronologically.
    pub fn render_timeline(&self) -> String {
        let t0 = self
            .start_ms
            .or_else(|| self.timeline.iter().find_map(|e| e.ts_ms));
        let mut entries: Vec<&TimelineEntry> = self.timeline.iter().collect();
        entries.sort_by_key(|e| e.ts_ms.unwrap_or(0));
        let mut out = String::with_capacity(entries.len() * 64 + 32);
        out.push_str("timeline:\n");
        for e in entries {
            let when = match (e.ts_ms, t0) {
                (Some(t), Some(z)) => format!("t+{:>9.3}s", t.saturating_sub(z) as f64 / 1e3),
                _ => format!("{:>12}", "t+?"),
            };
            let shard = match e.shard {
                Some(s) => format!("shard {s}"),
                None => "campaign".to_string(),
            };
            let _ = writeln!(out, "  {when}  {shard:<10} {:<18} {}", e.kind, e.detail);
        }
        out
    }

    /// Machine-readable post-mortem summary: overall accounting, per-shard
    /// records, and derived statistics, as one JSON object (nested — use a
    /// full JSON parser, not the flat event reader).
    pub fn report_json(&self, now_ms: u64) -> String {
        let snap = self.snapshot(now_ms);
        let mut out = String::with_capacity(1024);
        out.push('{');
        let _ = write!(
            out,
            "\"requested\":{},\"completed\":{},\"partial\":{},\"shards\":{},\"quarantined\":{},\
             \"restarts\":{},\"stalls\":{},\"fallbacks\":{},\"events\":{},\"done\":{},\
             \"wall_s\":{:.3}",
            snap.requested,
            snap.completed,
            snap.completed < snap.requested,
            snap.shards.len(),
            snap.quarantined,
            snap.restarts,
            snap.stalls,
            snap.fallbacks,
            snap.events,
            snap.done,
            snap.elapsed_s,
        );
        let _ = write!(out, ",\"clr_b0_mean\":{}", json_f64(snap.clr_b0_mean));
        let p50 = snap.rep_duration_s.estimate(0.5).unwrap_or(f64::NAN);
        let _ = write!(out, ",\"rep_duration_p50_s\":{}", json_f64(p50));
        let _ = write!(
            out,
            ",\"rep_duration_count\":{}",
            snap.rep_duration_s.count
        );
        out.push_str(",\"shard_reports\":[");
        for (i, s) in snap.shards.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let duration = match (s.first_ms, s.done_ms.or(s.last_ms)) {
                (Some(a), Some(b)) => json_f64(b.saturating_sub(a) as f64 / 1e3),
                _ => "null".to_string(),
            };
            let _ = write!(
                out,
                "{{\"shard\":{},\"phase\":\"{}\",\"requested\":{},\"completed\":{},\
                 \"attempts\":{},\"restarts\":{},\"stalls\":{},\"fallbacks\":{},\
                 \"duration_s\":{duration}}}",
                s.index,
                s.phase.label(),
                s.requested,
                s.completed,
                s.attempts,
                s.restarts,
                s.stalls,
                s.fallbacks,
            );
        }
        out.push_str("],\"timeline_events\":");
        let _ = write!(out, "{}", self.timeline.len());
        out.push('}');
        out
    }
}

/// JSON-safe f64: finite values in scientific notation, non-finite as null.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:e}")
    } else {
        "null".to_string()
    }
}

/// Composes the human-readable timeline detail for lifecycle events;
/// returns `None` for high-frequency events not kept in the timeline.
fn timeline_detail(kind: &str, fields: &[(String, crate::jsonl::JsonScalar)]) -> Option<String> {
    let get = |k: &str| fields.iter().find(|(key, _)| key == k).map(|(_, v)| v);
    let u = |k: &str| get(k).and_then(|v| v.as_u64()).unwrap_or(0);
    let s = |k: &str| get(k).and_then(|v| v.as_str()).unwrap_or("").to_string();
    match kind {
        "campaign_start" => Some(format!(
            "{} shards, {} replications",
            u("shards"),
            u("replications")
        )),
        "worker_spawned" => Some(format!("attempt {}, pid {}", u("attempt"), u("pid"))),
        "worker_exited" => Some(format!(
            "attempt {}, code {}",
            u("attempt"),
            get("code").and_then(|v| v.as_f64()).unwrap_or(f64::NAN)
        )),
        "worker_stalled" => Some(format!("silent {} ms", u("silent_ms"))),
        "worker_restarted" => Some(format!(
            "attempt {} after {} ms backoff",
            u("attempt"),
            u("backoff_ms")
        )),
        "shard_completed" => Some(format!(
            "{} replications in {} attempt(s)",
            u("replications"),
            u("attempts")
        )),
        "shard_quarantined" => Some(format!(
            "{} checkpointed after {} attempt(s)",
            u("completed"),
            u("attempts")
        )),
        "checkpoint_fallback" => Some(format!(
            "recovered={} {}",
            get("recovered")
                .map(|v| matches!(v, crate::jsonl::JsonScalar::Bool(true)))
                .unwrap_or(false),
            s("error")
        )),
        "campaign_end" => Some(format!(
            "{}/{} merged, {} restarts",
            u("completed"),
            u("requested"),
            u("restarts")
        )),
        _ => None,
    }
}

fn format_eta(snap: &CampaignSnapshot) -> String {
    if snap.done {
        return "done".to_string();
    }
    match snap.eta_s {
        Some(s) if s <= 0.0 => "merging".to_string(),
        Some(s) => format_secs(s),
        None => "?".to_string(),
    }
}

fn format_secs(s: f64) -> String {
    if s < 60.0 {
        format!("{s:.0}s")
    } else if s < 3600.0 {
        format!("{}m{:02}s", (s / 60.0) as u64, (s % 60.0) as u64)
    } else {
        format!("{}h{:02}m", (s / 3600.0) as u64, ((s % 3600.0) / 60.0) as u64)
    }
}

fn phase_color(phase: ShardPhase) -> &'static str {
    match phase {
        ShardPhase::Planned => "\x1b[2m",
        ShardPhase::Running => "\x1b[32m",
        ShardPhase::Stalled => "\x1b[33m",
        ShardPhase::Restarting => "\x1b[35m",
        ShardPhase::Quarantined => "\x1b[31m",
        ShardPhase::Done => "\x1b[36m",
    }
}

/// Renders the terminal dashboard: a campaign header line plus one
/// progress-bar line per shard. `bar_width` is the bar's interior width in
/// characters; `color` adds ANSI phase coloring (off ⇒ pure ASCII, which is
/// what the golden-snapshot test pins). Pure function of the snapshot.
pub fn render_dashboard(snap: &CampaignSnapshot, bar_width: usize, color: bool) -> String {
    let bar_width = bar_width.max(4);
    let mut out = String::with_capacity(256 + snap.shards.len() * 96);
    let clr = if snap.clr_b0_mean.is_finite() {
        format!("{:.3e}", snap.clr_b0_mean)
    } else {
        "n/a".to_string()
    };
    let _ = writeln!(
        out,
        "campaign {}/{} replications | {} shards ({} quarantined) | {} restarts | {} stalls | CLR[b0] {} | ETA {}",
        snap.completed,
        snap.requested,
        snap.shards.len(),
        snap.quarantined,
        snap.restarts,
        snap.stalls,
        clr,
        format_eta(snap),
    );
    for s in &snap.shards {
        let requested = s.requested.max(s.completed);
        let filled = (s.completed * bar_width).checked_div(requested).unwrap_or(0);
        let mut bar = String::with_capacity(bar_width);
        for i in 0..bar_width {
            bar.push(if i < filled { '#' } else { '-' });
        }
        let extra = match s.phase {
            ShardPhase::Running => match s.current_replication {
                Some(r) => format!(" rep {r} @ frame {}", s.current_frame),
                None => String::new(),
            },
            ShardPhase::Stalled => format!(" ({} stall(s))", s.stalls.max(1)),
            ShardPhase::Restarting => format!(" (attempt {}, {} restart(s))", s.attempts, s.restarts),
            ShardPhase::Quarantined => format!(" ({} kept after {} attempt(s))", s.completed, s.attempts),
            ShardPhase::Done => format!(" ({} attempt(s))", s.attempts.max(1)),
            ShardPhase::Planned => String::new(),
        };
        let (c0, c1) = if color {
            (phase_color(s.phase), "\x1b[0m")
        } else {
            ("", "")
        };
        let _ = writeln!(
            out,
            "  shard {:>2} [{bar}] {:>4}/{:<4} {c0}{:<11}{c1}{extra}",
            s.index,
            s.completed,
            requested,
            s.phase.label(),
        );
    }
    out
}

/// Renders the live campaign state as Prometheus text exposition
/// (`vbr_campaign_*` families) — what `campaign_run --serve` returns per
/// scrape. Pure function of the snapshot.
pub fn render_campaign_prometheus(snap: &CampaignSnapshot) -> String {
    let mut out = String::with_capacity(2048);
    gauge(
        &mut out,
        "vbr_campaign_shards",
        "Shards in the campaign plan.",
        snap.shards.len() as f64,
    );
    gauge(
        &mut out,
        "vbr_campaign_replications_requested",
        "Total replications the campaign was asked for.",
        snap.requested as f64,
    );
    gauge(
        &mut out,
        "vbr_campaign_replications_completed",
        "Replications completed across all shards so far.",
        snap.completed as f64,
    );
    counter(
        &mut out,
        "vbr_campaign_restarts_total",
        "Worker restarts performed by the supervisor.",
        snap.restarts,
    );
    counter(
        &mut out,
        "vbr_campaign_stalls_total",
        "Workers killed for heartbeat silence.",
        snap.stalls,
    );
    counter(
        &mut out,
        "vbr_campaign_checkpoint_fallbacks_total",
        "Checkpoint fallbacks workers reported.",
        snap.fallbacks,
    );
    gauge(
        &mut out,
        "vbr_campaign_shards_quarantined",
        "Shards currently quarantined.",
        snap.quarantined as f64,
    );
    gauge(
        &mut out,
        "vbr_campaign_done",
        "1 once the campaign has ended.",
        if snap.done { 1.0 } else { 0.0 },
    );
    gauge(
        &mut out,
        "vbr_campaign_elapsed_seconds",
        "Wall seconds since campaign start.",
        snap.elapsed_s,
    );
    if let Some(eta) = snap.eta_s {
        gauge(
            &mut out,
            "vbr_campaign_eta_seconds",
            "Estimated seconds to completion (P50 replication time extrapolated).",
            eta,
        );
    }
    if snap.clr_b0_mean.is_finite() {
        gauge(
            &mut out,
            "vbr_campaign_clr_b0_mean",
            "Mean buffer-0 CLR over replications finished so far.",
            snap.clr_b0_mean,
        );
    }

    let _ = writeln!(
        out,
        "# HELP vbr_campaign_shard_completed Replications completed per shard.\n\
         # TYPE vbr_campaign_shard_completed gauge"
    );
    for s in &snap.shards {
        let _ = writeln!(
            out,
            "vbr_campaign_shard_completed{{shard=\"{}\"}} {}",
            s.index, s.completed
        );
    }
    let _ = writeln!(
        out,
        "# HELP vbr_campaign_shard_attempts Worker attempts consumed per shard.\n\
         # TYPE vbr_campaign_shard_attempts gauge"
    );
    for s in &snap.shards {
        let _ = writeln!(
            out,
            "vbr_campaign_shard_attempts{{shard=\"{}\"}} {}",
            s.index, s.attempts
        );
    }
    let _ = writeln!(
        out,
        "# HELP vbr_campaign_shard_phase Shard lifecycle phase (1 for the current phase).\n\
         # TYPE vbr_campaign_shard_phase gauge"
    );
    for s in &snap.shards {
        let _ = writeln!(
            out,
            "vbr_campaign_shard_phase{{shard=\"{}\",phase=\"{}\"}} 1",
            s.index,
            s.phase.label()
        );
    }

    let d = &snap.rep_duration_s;
    let _ = writeln!(
        out,
        "# HELP vbr_campaign_replication_duration_seconds Per-replication wall time across shards (P2 estimates).\n\
         # TYPE vbr_campaign_replication_duration_seconds summary"
    );
    if d.count > 0 {
        for (level, est) in d.levels.iter().zip(&d.estimates) {
            let _ = writeln!(
                out,
                "vbr_campaign_replication_duration_seconds{{quantile=\"{level}\"}} {}",
                fmt_f64(*est)
            );
        }
    }
    let _ = writeln!(
        out,
        "vbr_campaign_replication_duration_seconds_sum {}",
        fmt_f64(d.sum)
    );
    let _ = writeln!(
        out,
        "vbr_campaign_replication_duration_seconds_count {}",
        d.count
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jsonl::{event_to_json_stamped, validate_line};
    use crate::recorder::Event;

    fn line(ev: &Event, ts: u64, shard: Option<usize>) -> String {
        event_to_json_stamped(ev, Some(ts), shard)
    }

    #[test]
    fn lifecycle_events_drive_the_state_machine() {
        let mut agg = CampaignAggregator::new(5_000);
        agg.ingest_line(&line(
            &Event::CampaignStart {
                shards: 2,
                replications: 8,
            },
            1_000,
            None,
        ));
        let snap = agg.snapshot(1_000);
        assert_eq!(snap.shards.len(), 2);
        assert!(snap.shards.iter().all(|s| s.phase == ShardPhase::Planned));
        assert_eq!(snap.requested, 8);

        agg.ingest_line(&line(
            &Event::WorkerSpawned {
                shard: 0,
                attempt: 1,
                pid: 100,
            },
            1_100,
            None,
        ));
        agg.ingest_line(&line(
            &Event::Heartbeat {
                replication: 0,
                frame: 4096,
            },
            1_200,
            Some(1),
        ));
        let snap = agg.snapshot(1_300);
        assert_eq!(snap.shards[0].phase, ShardPhase::Running);
        assert_eq!(snap.shards[1].phase, ShardPhase::Running);
        assert_eq!(snap.shards[1].current_frame, 4096);

        agg.ingest_line(&line(
            &Event::WorkerStalled {
                shard: 0,
                attempt: 1,
                silent_ms: 6_000,
            },
            8_000,
            None,
        ));
        agg.ingest_line(&line(
            &Event::WorkerRestarted {
                shard: 0,
                attempt: 2,
                backoff_ms: 200,
            },
            8_100,
            None,
        ));
        let snap = agg.snapshot(8_200);
        assert_eq!(snap.shards[0].phase, ShardPhase::Restarting);
        assert_eq!(snap.restarts, 1);
        assert_eq!(snap.stalls, 1);

        agg.ingest_line(&line(
            &Event::ShardCompleted {
                shard: 0,
                replications: 4,
                attempts: 2,
            },
            9_000,
            None,
        ));
        agg.ingest_line(&line(
            &Event::ShardQuarantined {
                shard: 1,
                attempts: 3,
                completed: 2,
            },
            9_500,
            None,
        ));
        let snap = agg.snapshot(9_600);
        assert_eq!(snap.shards[0].phase, ShardPhase::Done);
        assert_eq!(snap.shards[1].phase, ShardPhase::Quarantined);
        assert_eq!(snap.quarantined, 1);
        assert_eq!(snap.completed, 6);

        // Terminal phases are sticky: a late heartbeat cannot resurrect.
        agg.ingest_line(&line(
            &Event::Heartbeat {
                replication: 3,
                frame: 1,
            },
            9_700,
            Some(1),
        ));
        assert_eq!(agg.snapshot(9_800).shards[1].phase, ShardPhase::Quarantined);
    }

    #[test]
    fn heartbeat_gap_reads_as_stalled_without_a_supervisor_verdict() {
        let mut agg = CampaignAggregator::new(2_000);
        agg.ingest_line(&line(
            &Event::Heartbeat {
                replication: 0,
                frame: 100,
            },
            10_000,
            Some(0),
        ));
        assert_eq!(agg.snapshot(11_000).shards[0].phase, ShardPhase::Running);
        assert_eq!(agg.snapshot(13_000).shards[0].phase, ShardPhase::Stalled);
        // Fresh beat recovers it (snapshot is non-destructive).
        agg.ingest_line(&line(
            &Event::Heartbeat {
                replication: 0,
                frame: 200,
            },
            13_500,
            Some(0),
        ));
        assert_eq!(agg.snapshot(13_600).shards[0].phase, ShardPhase::Running);
    }

    #[test]
    fn out_of_order_heartbeats_across_shards_never_run_backwards() {
        let mut agg = CampaignAggregator::new(60_000);
        // Shard 1's events arrive before shard 0's earlier ones; progress
        // within shard 0 arrives newest-first.
        agg.ingest_line(&line(
            &Event::Progress {
                completed: 3,
                requested: 4,
            },
            5_000,
            Some(1),
        ));
        agg.ingest_line(&line(
            &Event::Heartbeat {
                replication: 2,
                frame: 9_000,
            },
            4_000,
            Some(0),
        ));
        agg.ingest_line(&line(
            &Event::Progress {
                completed: 2,
                requested: 4,
            },
            3_000,
            Some(0),
        ));
        agg.ingest_line(&line(
            &Event::Progress {
                completed: 1,
                requested: 4,
            },
            2_000,
            Some(0),
        ));
        let snap = agg.snapshot(5_500);
        assert_eq!(snap.shards[0].completed, 2, "max-merge, not last-write");
        assert_eq!(snap.shards[1].completed, 3);
        assert_eq!(snap.completed, 5);
        assert_eq!(snap.requested, 8);
        // last_ms is the max stamp even though lines arrived out of order.
        assert_eq!(snap.shards[0].last_ms, Some(4_000));
        assert_eq!(agg.latest_ts_ms(), Some(5_000));
    }

    #[test]
    fn eta_extrapolates_from_replication_durations() {
        let mut agg = CampaignAggregator::new(60_000);
        agg.ingest_line(&line(
            &Event::CampaignStart {
                shards: 2,
                replications: 10,
            },
            0,
            None,
        ));
        // No finished replication yet: no ETA.
        assert_eq!(agg.snapshot(100).eta_s, None);
        for r in 0..4usize {
            agg.ingest_line(&line(
                &Event::ReplicationEnd {
                    replication: r,
                    seed: 1,
                    frames: 1_000,
                    duration_ns: 2_000_000_000,
                    clr_b0: 1e-4,
                },
                1_000 * (r as u64 + 1),
                Some(r % 2),
            ));
            agg.ingest_line(&line(
                &Event::Progress {
                    completed: r / 2 + 1,
                    requested: 5,
                },
                1_000 * (r as u64 + 1),
                Some(r % 2),
            ));
        }
        let snap = agg.snapshot(5_000);
        assert_eq!(snap.completed, 4);
        // 6 remaining × 2 s / 2 active shards = 6 s.
        let eta = snap.eta_s.expect("have samples");
        assert!((eta - 6.0).abs() < 1e-9, "eta {eta}");
        assert!((snap.clr_b0_mean - 1e-4).abs() < 1e-12);
        assert_eq!(snap.clr_b0_count, 4);
    }

    #[test]
    fn unattributed_worker_events_still_feed_campaign_accumulators() {
        let mut agg = CampaignAggregator::new(60_000);
        // Pre-stamping recordings: no shard field on worker events.
        agg.ingest_line(
            "{\"type\":\"replication_end\",\"replication\":0,\"seed\":1,\"frames\":10,\
             \"duration_ns\":1000000000,\"clr_b0\":2e-5}",
        );
        let snap = agg.snapshot(0);
        assert_eq!(snap.rep_duration_s.count, 1);
        assert_eq!(snap.clr_b0_count, 1);
        assert!(snap.shards.is_empty(), "no shard invented from thin air");
    }

    #[test]
    fn garbage_lines_are_counted_not_fatal() {
        let mut agg = CampaignAggregator::new(1_000);
        assert!(!agg.ingest_line("{\"par"));
        assert!(!agg.ingest_line("[1,2,3]"));
        assert!(!agg.ingest_line("{\"no_type\":1}"));
        assert!(agg.ingest_line("{\"type\":\"heartbeat\",\"replication\":0,\"frame\":1}"));
        assert_eq!(agg.counts(), (1, 3));
    }

    #[test]
    fn ingest_stream_skips_blank_and_partial_tail() {
        let mut agg = CampaignAggregator::new(1_000);
        let body = "{\"type\":\"campaign_start\",\"shards\":1,\"replications\":2}\n\n\
                    {\"type\":\"heartbeat\",\"replication\":0,\"frame\":5,\"shard\":0}\n\
                    {\"type\":\"hea";
        assert_eq!(agg.ingest_stream(body), 2);
        assert_eq!(agg.counts(), (2, 1));
    }

    #[test]
    fn report_json_is_valid_and_complete() {
        let mut agg = CampaignAggregator::new(5_000).with_timeline();
        agg.ingest_line(&line(
            &Event::CampaignStart {
                shards: 1,
                replications: 2,
            },
            1_000,
            None,
        ));
        agg.ingest_line(&line(
            &Event::WorkerSpawned {
                shard: 0,
                attempt: 1,
                pid: 77,
            },
            1_050,
            None,
        ));
        agg.ingest_line(&line(
            &Event::ShardCompleted {
                shard: 0,
                replications: 2,
                attempts: 1,
            },
            3_000,
            None,
        ));
        agg.ingest_line(&line(
            &Event::CampaignEnd {
                shards: 1,
                quarantined: 0,
                requested: 2,
                completed: 2,
                restarts: 0,
                duration_ns: 2_000_000_000,
            },
            3_100,
            None,
        ));
        let json = agg.report_json(agg.latest_ts_ms().unwrap_or(0));
        validate_line(&json).expect("report is valid JSON");
        for needle in [
            "\"requested\":2",
            "\"completed\":2",
            "\"partial\":false",
            "\"done\":true",
            "\"shard_reports\":[{\"shard\":0,\"phase\":\"done\"",
            "\"timeline_events\":4",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        let tl = agg.render_timeline();
        assert!(tl.contains("campaign_start"), "{tl}");
        assert!(tl.contains("shard_completed"), "{tl}");
        assert!(tl.contains("t+    0.000s"), "{tl}");
    }

    #[test]
    fn prometheus_exposition_has_campaign_families() {
        let mut agg = CampaignAggregator::new(5_000);
        agg.ingest_line(&line(
            &Event::CampaignStart {
                shards: 2,
                replications: 4,
            },
            0,
            None,
        ));
        agg.ingest_line(&line(
            &Event::ReplicationEnd {
                replication: 0,
                seed: 1,
                frames: 10,
                duration_ns: 500_000_000,
                clr_b0: 3e-6,
            },
            800,
            Some(0),
        ));
        agg.ingest_line(&line(
            &Event::Progress {
                completed: 1,
                requested: 2,
            },
            900,
            Some(0),
        ));
        let text = render_campaign_prometheus(&agg.snapshot(1_000));
        for family in [
            "vbr_campaign_shards 2e0",
            "vbr_campaign_replications_requested 4e0",
            "vbr_campaign_replications_completed 1e0",
            "vbr_campaign_restarts_total 0",
            "vbr_campaign_shard_completed{shard=\"0\"} 1",
            "vbr_campaign_shard_phase{shard=\"0\",phase=\"running\"} 1",
            "vbr_campaign_shard_phase{shard=\"1\",phase=\"planned\"} 1",
            "vbr_campaign_replication_duration_seconds_count 1",
            "vbr_campaign_eta_seconds",
            "vbr_campaign_clr_b0_mean",
        ] {
            assert!(text.contains(family), "missing {family} in:\n{text}");
        }
    }

    #[test]
    fn dashboard_renders_bars_and_phases() {
        let mut agg = CampaignAggregator::new(60_000);
        agg.ingest_line(&line(
            &Event::CampaignStart {
                shards: 2,
                replications: 8,
            },
            0,
            None,
        ));
        agg.ingest_line(&line(
            &Event::Progress {
                completed: 2,
                requested: 4,
            },
            1_000,
            Some(0),
        ));
        agg.ingest_line(&line(
            &Event::ShardCompleted {
                shard: 1,
                replications: 4,
                attempts: 1,
            },
            2_000,
            None,
        ));
        let text = render_dashboard(&agg.snapshot(2_500), 8, false);
        assert!(text.contains("campaign 6/8 replications"), "{text}");
        assert!(text.contains("[####----]"), "{text}");
        assert!(text.contains("[########]"), "{text}");
        assert!(text.contains("done"), "{text}");
        assert!(!text.contains('\x1b'), "no ANSI without color: {text:?}");
        let colored = render_dashboard(&agg.snapshot(2_500), 8, true);
        assert!(colored.contains('\x1b'), "color requested");
    }
}

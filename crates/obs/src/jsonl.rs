//! JSONL event-stream sink: one JSON object per line, one line per
//! [`Event`], flushed as written so a killed run leaves a readable prefix.
//!
//! The workspace is offline and dependency-free by policy, so serialization
//! is hand-rolled (every event is a flat object of scalars) and the module
//! carries its own small strict JSON validator — used by the tests, the
//! telemetry example's self-check and the CI smoke job to prove each
//! emitted line parses.

use crate::recorder::{Event, Recorder, RunSummary};
use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Incremental builder for one flat JSON object line.
struct JsonLine(String);

impl JsonLine {
    fn new(kind: &str) -> Self {
        let mut s = String::with_capacity(128);
        s.push_str("{\"type\":\"");
        s.push_str(kind);
        s.push('"');
        Self(s)
    }

    fn key(&mut self, name: &str) {
        self.0.push(',');
        self.0.push('"');
        self.0.push_str(name);
        self.0.push_str("\":");
    }

    fn u64(mut self, name: &str, v: u64) -> Self {
        self.key(name);
        let _ = write!(self.0, "{v}");
        self
    }

    fn usize(self, name: &str, v: usize) -> Self {
        self.u64(name, v as u64)
    }

    fn f64(mut self, name: &str, v: f64) -> Self {
        self.key(name);
        // NaN/inf are not JSON numbers; encode them as strings so the line
        // stays parseable while preserving the information.
        if v.is_finite() {
            let _ = write!(self.0, "{v:e}");
        } else {
            let _ = write!(self.0, "\"{v}\"");
        }
        self
    }

    fn bool(mut self, name: &str, v: bool) -> Self {
        self.key(name);
        self.0.push_str(if v { "true" } else { "false" });
        self
    }

    fn str(mut self, name: &str, v: &str) -> Self {
        self.key(name);
        self.0.push('"');
        for c in v.chars() {
            match c {
                '"' => self.0.push_str("\\\""),
                '\\' => self.0.push_str("\\\\"),
                '\n' => self.0.push_str("\\n"),
                '\r' => self.0.push_str("\\r"),
                '\t' => self.0.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(self.0, "\\u{:04x}", c as u32);
                }
                c => self.0.push(c),
            }
        }
        self.0.push('"');
        self
    }

    fn finish(mut self) -> String {
        self.0.push('}');
        self.0
    }
}

/// Renders one event as a single-line JSON object (no trailing newline).
pub fn event_to_json(event: &Event) -> String {
    match event {
        Event::RunStart {
            seed,
            replications,
            n_sources,
            frames_per_replication,
            buffers,
        } => JsonLine::new(event.kind())
            .u64("seed", *seed)
            .usize("replications", *replications)
            .usize("n_sources", *n_sources)
            .usize("frames_per_replication", *frames_per_replication)
            .usize("buffers", *buffers)
            .finish(),
        Event::ReplicationStart { replication, seed } => JsonLine::new(event.kind())
            .usize("replication", *replication)
            .u64("seed", *seed)
            .finish(),
        Event::ReplicationEnd {
            replication,
            seed,
            frames,
            duration_ns,
            clr_b0,
        } => JsonLine::new(event.kind())
            .usize("replication", *replication)
            .u64("seed", *seed)
            .u64("frames", *frames)
            .u64("duration_ns", *duration_ns)
            .f64("clr_b0", *clr_b0)
            .finish(),
        Event::Progress {
            completed,
            requested,
        } => JsonLine::new(event.kind())
            .usize("completed", *completed)
            .usize("requested", *requested)
            .finish(),
        Event::CheckpointSaved {
            path,
            replications,
            fingerprint,
        } => JsonLine::new(event.kind())
            .str("path", path)
            .usize("replications", *replications)
            .str("fingerprint", &format!("{fingerprint:016x}"))
            .finish(),
        Event::CheckpointResumed {
            path,
            replications,
            fingerprint,
        } => JsonLine::new(event.kind())
            .str("path", path)
            .usize("replications", *replications)
            .str("fingerprint", &format!("{fingerprint:016x}"))
            .finish(),
        Event::GuardTrip {
            replication,
            frame,
            seed,
            site,
            value,
        } => JsonLine::new(event.kind())
            .usize("replication", *replication)
            .u64("frame", *frame)
            .u64("seed", *seed)
            .str("site", site)
            .f64("value", *value)
            .finish(),
        Event::WatchdogTimeout { replication, seed } => JsonLine::new(event.kind())
            .usize("replication", *replication)
            .u64("seed", *seed)
            .finish(),
        Event::BudgetExhausted {
            completed,
            requested,
        } => JsonLine::new(event.kind())
            .usize("completed", *completed)
            .usize("requested", *requested)
            .finish(),
        Event::RunEnd {
            requested,
            completed,
            timed_out,
            resumed,
            budget_exhausted,
            duration_ns,
        } => JsonLine::new(event.kind())
            .usize("requested", *requested)
            .usize("completed", *completed)
            .usize("timed_out", *timed_out)
            .usize("resumed", *resumed)
            .bool("budget_exhausted", *budget_exhausted)
            .u64("duration_ns", *duration_ns)
            .finish(),
    }
}

/// JSONL sink: writes one line per event to a file, flushing per line. An
/// I/O failure is reported once on stderr and the sink goes quiet — losing
/// telemetry must never lose a multi-hour simulation.
pub struct JsonlRecorder {
    path: PathBuf,
    writer: Mutex<BufWriter<File>>,
    failed: AtomicBool,
}

impl JsonlRecorder {
    /// Creates (truncates) the event file.
    pub fn create(path: impl Into<PathBuf>) -> std::io::Result<Self> {
        let path = path.into();
        let file = File::create(&path)?;
        Ok(Self {
            path,
            writer: Mutex::new(BufWriter::new(file)),
            failed: AtomicBool::new(false),
        })
    }

    /// Where the events are being written.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn write_line(&self, line: &str) {
        if self.failed.load(Ordering::Relaxed) {
            return;
        }
        let mut w = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        let result = writeln!(w, "{line}").and_then(|()| w.flush());
        if let Err(e) = result {
            self.failed.store(true, Ordering::Relaxed);
            eprintln!(
                "[vbr-obs] event stream {} failed, telemetry disabled: {e}",
                self.path.display()
            );
        }
    }
}

impl Recorder for JsonlRecorder {
    fn record(&self, event: &Event) {
        self.write_line(&event_to_json(event));
    }

    fn finish(&self, _summary: &RunSummary) {
        if let Ok(mut w) = self.writer.lock() {
            let _ = w.flush();
        }
    }
}

/// Strict validation that `line` is exactly one JSON value (for event lines,
/// an object). Returns the byte offset and message of the first violation.
pub fn validate_line(line: &str) -> Result<(), String> {
    let bytes = line.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\r' | b'\n') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => parse_string(b, pos),
        Some(b't') => parse_lit(b, pos, "true"),
        Some(b'f') => parse_lit(b, pos, "false"),
        Some(b'n') => parse_lit(b, pos, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(c) => Err(format!("unexpected byte {:?} at offset {pos}", *c as char)),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at offset {pos} (expected {lit})"))
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // {
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at offset {pos}"));
        }
        parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at offset {pos}"));
        }
        *pos += 1;
        skip_ws(b, pos);
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // [
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at offset {pos}")),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // opening quote
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        if b.len() < *pos + 5
                            || !b[*pos + 1..*pos + 5].iter().all(u8::is_ascii_hexdigit)
                        {
                            return Err(format!("bad \\u escape at offset {pos}"));
                        }
                        *pos += 5;
                    }
                    _ => return Err(format!("bad escape at offset {pos}")),
                }
            }
            0x00..=0x1f => return Err(format!("raw control byte in string at offset {pos}")),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".into())
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let int_digits = eat_digits(b, pos);
    if int_digits == 0 {
        return Err(format!("number missing integer digits at offset {start}"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if eat_digits(b, pos) == 0 {
            return Err(format!("number missing fraction digits at offset {pos}"));
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if eat_digits(b, pos) == 0 {
            return Err(format!("number missing exponent digits at offset {pos}"));
        }
    }
    Ok(())
}

fn eat_digits(b: &[u8], pos: &mut usize) -> usize {
    let start = *pos;
    while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
        *pos += 1;
    }
    *pos - start
}

/// Validates a whole JSONL body line by line; returns the 1-based line
/// number and message of the first invalid line.
pub fn validate_stream(body: &str) -> Result<usize, (usize, String)> {
    let mut n = 0;
    for (i, line) in body.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        validate_line(line).map_err(|e| (i + 1, e))?;
        n += 1;
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_event_serializes_to_valid_json() {
        let events = [
            Event::RunStart {
                seed: 0x5EED_CAFE,
                replications: 60,
                n_sources: 30,
                frames_per_replication: 500_000,
                buffers: 8,
            },
            Event::ReplicationStart {
                replication: 3,
                seed: 1,
            },
            Event::ReplicationEnd {
                replication: 3,
                seed: 1,
                frames: 525_000,
                duration_ns: 830_000_000,
                clr_b0: 3.89e-6,
            },
            Event::Progress {
                completed: 4,
                requested: 60,
            },
            Event::CheckpointSaved {
                path: "paper_output/run.ckpt".into(),
                replications: 4,
                fingerprint: 0xDEAD_BEEF_0123_4567,
            },
            Event::CheckpointResumed {
                path: "a \"quoted\"\npath\\x".into(),
                replications: 2,
                fingerprint: 1,
            },
            Event::GuardTrip {
                replication: 9,
                frame: 1234,
                seed: 7,
                site: "source 3".into(),
                value: f64::NAN,
            },
            Event::WatchdogTimeout {
                replication: 5,
                seed: 7,
            },
            Event::BudgetExhausted {
                completed: 10,
                requested: 60,
            },
            Event::RunEnd {
                requested: 60,
                completed: 58,
                timed_out: 2,
                resumed: 10,
                budget_exhausted: false,
                duration_ns: 3_600_000_000_000,
            },
        ];
        for ev in &events {
            let line = event_to_json(ev);
            validate_line(&line).unwrap_or_else(|e| panic!("{}: {e}\n{line}", ev.kind()));
            assert!(
                line.contains(&format!("\"type\":\"{}\"", ev.kind())),
                "{line}"
            );
            assert!(!line.contains('\n'), "single line: {line}");
        }
    }

    #[test]
    fn non_finite_floats_encode_as_strings() {
        let line = event_to_json(&Event::GuardTrip {
            replication: 0,
            frame: 0,
            seed: 0,
            site: "aggregate arrivals".into(),
            value: f64::INFINITY,
        });
        validate_line(&line).expect("valid");
        assert!(line.contains("\"inf\""), "{line}");
    }

    #[test]
    fn validator_accepts_json_shapes() {
        for good in [
            "{}",
            "[]",
            "{\"a\":1,\"b\":[1,2.5,-3e-7],\"c\":{\"d\":null},\"e\":\"x\\u0041\"}",
            "  {\"k\":true}  ",
            "-0.5e+10",
            "\"just a string\"",
        ] {
            validate_line(good).unwrap_or_else(|e| panic!("{good}: {e}"));
        }
    }

    #[test]
    fn validator_rejects_malformed_lines() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "{\"a\":1,}",
            "{'a':1}",
            "{\"a\":01e}",
            "{\"a\":1} trailing",
            "{\"a\":\"unterminated}",
            "{\"a\":nul}",
            "{\"a\":1 \"b\":2}",
        ] {
            assert!(validate_line(bad).is_err(), "should reject: {bad:?}");
        }
    }

    #[test]
    fn jsonl_recorder_writes_parseable_stream() {
        let dir = std::env::temp_dir().join("vbr_obs_jsonl_test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("events.jsonl");
        let rec = JsonlRecorder::create(&path).expect("create");
        rec.record(&Event::ReplicationStart {
            replication: 0,
            seed: 9,
        });
        rec.record(&Event::Progress {
            completed: 1,
            requested: 2,
        });
        let body = std::fs::read_to_string(&path).expect("read back");
        let n = validate_stream(&body).expect("all lines valid");
        assert_eq!(n, 2);
        assert_eq!(body.lines().count(), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn validate_stream_pinpoints_bad_line() {
        let body = "{\"ok\":1}\nnot json\n";
        let (line, _) = validate_stream(body).unwrap_err();
        assert_eq!(line, 2);
    }
}

//! JSONL event-stream sink: one JSON object per line, one line per
//! [`Event`], flushed as written so a killed run leaves a readable prefix.
//!
//! The workspace is offline and dependency-free by policy, so serialization
//! is hand-rolled (every event is a flat object of scalars) and the module
//! carries its own small strict JSON validator — used by the tests, the
//! telemetry example's self-check and the CI smoke job to prove each
//! emitted line parses.

use crate::recorder::{Event, Recorder, RunSummary};
use std::fmt::Write as _;
use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// Incremental builder for one flat JSON object line.
struct JsonLine(String);

impl JsonLine {
    fn new(kind: &str) -> Self {
        let mut s = String::with_capacity(128);
        s.push_str("{\"type\":\"");
        s.push_str(kind);
        s.push('"');
        Self(s)
    }

    fn key(&mut self, name: &str) {
        self.0.push(',');
        self.0.push('"');
        self.0.push_str(name);
        self.0.push_str("\":");
    }

    fn u64(mut self, name: &str, v: u64) -> Self {
        self.key(name);
        let _ = write!(self.0, "{v}");
        self
    }

    fn usize(self, name: &str, v: usize) -> Self {
        self.u64(name, v as u64)
    }

    fn i64(mut self, name: &str, v: i64) -> Self {
        self.key(name);
        let _ = write!(self.0, "{v}");
        self
    }

    fn f64(mut self, name: &str, v: f64) -> Self {
        self.key(name);
        // NaN/inf are not JSON numbers; encode them as strings so the line
        // stays parseable while preserving the information.
        if v.is_finite() {
            let _ = write!(self.0, "{v:e}");
        } else {
            let _ = write!(self.0, "\"{v}\"");
        }
        self
    }

    fn bool(mut self, name: &str, v: bool) -> Self {
        self.key(name);
        self.0.push_str(if v { "true" } else { "false" });
        self
    }

    fn str(mut self, name: &str, v: &str) -> Self {
        self.key(name);
        self.0.push('"');
        for c in v.chars() {
            match c {
                '"' => self.0.push_str("\\\""),
                '\\' => self.0.push_str("\\\\"),
                '\n' => self.0.push_str("\\n"),
                '\r' => self.0.push_str("\\r"),
                '\t' => self.0.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(self.0, "\\u{:04x}", c as u32);
                }
                c => self.0.push(c),
            }
        }
        self.0.push('"');
        self
    }

    fn finish(mut self) -> String {
        self.0.push('}');
        self.0
    }
}

/// Renders one event as a single-line JSON object (no trailing newline).
pub fn event_to_json(event: &Event) -> String {
    match event {
        Event::RunStart {
            seed,
            replications,
            n_sources,
            frames_per_replication,
            buffers,
        } => JsonLine::new(event.kind())
            .u64("seed", *seed)
            .usize("replications", *replications)
            .usize("n_sources", *n_sources)
            .usize("frames_per_replication", *frames_per_replication)
            .usize("buffers", *buffers)
            .finish(),
        Event::ReplicationStart { replication, seed } => JsonLine::new(event.kind())
            .usize("replication", *replication)
            .u64("seed", *seed)
            .finish(),
        Event::ReplicationEnd {
            replication,
            seed,
            frames,
            duration_ns,
            clr_b0,
        } => JsonLine::new(event.kind())
            .usize("replication", *replication)
            .u64("seed", *seed)
            .u64("frames", *frames)
            .u64("duration_ns", *duration_ns)
            .f64("clr_b0", *clr_b0)
            .finish(),
        Event::Progress {
            completed,
            requested,
        } => JsonLine::new(event.kind())
            .usize("completed", *completed)
            .usize("requested", *requested)
            .finish(),
        Event::CheckpointSaved {
            path,
            replications,
            fingerprint,
        } => JsonLine::new(event.kind())
            .str("path", path)
            .usize("replications", *replications)
            .str("fingerprint", &format!("{fingerprint:016x}"))
            .finish(),
        Event::CheckpointResumed {
            path,
            replications,
            fingerprint,
        } => JsonLine::new(event.kind())
            .str("path", path)
            .usize("replications", *replications)
            .str("fingerprint", &format!("{fingerprint:016x}"))
            .finish(),
        Event::GuardTrip {
            replication,
            frame,
            seed,
            site,
            value,
        } => JsonLine::new(event.kind())
            .usize("replication", *replication)
            .u64("frame", *frame)
            .u64("seed", *seed)
            .str("site", site)
            .f64("value", *value)
            .finish(),
        Event::WatchdogTimeout { replication, seed } => JsonLine::new(event.kind())
            .usize("replication", *replication)
            .u64("seed", *seed)
            .finish(),
        Event::BudgetExhausted {
            completed,
            requested,
        } => JsonLine::new(event.kind())
            .usize("completed", *completed)
            .usize("requested", *requested)
            .finish(),
        Event::Heartbeat { replication, frame } => JsonLine::new(event.kind())
            .usize("replication", *replication)
            .u64("frame", *frame)
            .finish(),
        Event::CheckpointFallback {
            path,
            error,
            recovered,
        } => JsonLine::new(event.kind())
            .str("path", path)
            .str("error", error)
            .bool("recovered", *recovered)
            .finish(),
        Event::CampaignStart {
            shards,
            replications,
        } => JsonLine::new(event.kind())
            .usize("shards", *shards)
            .usize("replications", *replications)
            .finish(),
        Event::WorkerSpawned {
            shard,
            attempt,
            pid,
        } => JsonLine::new(event.kind())
            .usize("shard", *shard)
            .u64("attempt", u64::from(*attempt))
            .u64("pid", u64::from(*pid))
            .finish(),
        Event::WorkerExited {
            shard,
            attempt,
            code,
        } => JsonLine::new(event.kind())
            .usize("shard", *shard)
            .u64("attempt", u64::from(*attempt))
            .i64("code", *code)
            .finish(),
        Event::WorkerStalled {
            shard,
            attempt,
            silent_ms,
        } => JsonLine::new(event.kind())
            .usize("shard", *shard)
            .u64("attempt", u64::from(*attempt))
            .u64("silent_ms", *silent_ms)
            .finish(),
        Event::WorkerRestarted {
            shard,
            attempt,
            backoff_ms,
        } => JsonLine::new(event.kind())
            .usize("shard", *shard)
            .u64("attempt", u64::from(*attempt))
            .u64("backoff_ms", *backoff_ms)
            .finish(),
        Event::ShardCompleted {
            shard,
            replications,
            attempts,
        } => JsonLine::new(event.kind())
            .usize("shard", *shard)
            .usize("replications", *replications)
            .u64("attempts", u64::from(*attempts))
            .finish(),
        Event::ShardQuarantined {
            shard,
            attempts,
            completed,
        } => JsonLine::new(event.kind())
            .usize("shard", *shard)
            .u64("attempts", u64::from(*attempts))
            .usize("completed", *completed)
            .finish(),
        Event::CampaignEnd {
            shards,
            quarantined,
            requested,
            completed,
            restarts,
            duration_ns,
        } => JsonLine::new(event.kind())
            .usize("shards", *shards)
            .usize("quarantined", *quarantined)
            .usize("requested", *requested)
            .usize("completed", *completed)
            .usize("restarts", *restarts)
            .u64("duration_ns", *duration_ns)
            .finish(),
        Event::RunEnd {
            requested,
            completed,
            timed_out,
            resumed,
            budget_exhausted,
            duration_ns,
        } => JsonLine::new(event.kind())
            .usize("requested", *requested)
            .usize("completed", *completed)
            .usize("timed_out", *timed_out)
            .usize("resumed", *resumed)
            .bool("budget_exhausted", *budget_exhausted)
            .u64("duration_ns", *duration_ns)
            .finish(),
    }
}

/// Appends optional aggregation stamps to an already-rendered event line:
/// `ts_ms` (wall-clock milliseconds) and `shard` (the writer's shard index,
/// skipped when the event already carries a `shard` field of its own, as the
/// coordinator's worker-lifecycle events do). Tailing aggregators use these
/// so shard identity and event ordering never have to be inferred from file
/// paths or arrival order.
pub fn event_to_json_stamped(event: &Event, ts_ms: Option<u64>, shard: Option<usize>) -> String {
    let mut line = event_to_json(event);
    if ts_ms.is_none() && shard.is_none() {
        return line;
    }
    line.pop(); // the closing '}' — every event line is a flat object
    if let Some(t) = ts_ms {
        let _ = write!(line, ",\"ts_ms\":{t}");
    }
    if let Some(s) = shard {
        if !line.contains("\"shard\":") {
            let _ = write!(line, ",\"shard\":{s}");
        }
    }
    line.push('}');
    line
}

/// JSONL sink: writes one line per event to a file. Each event is written as
/// **one `write` syscall of one whole line** — no userspace buffering — so a
/// concurrent tailer observes heartbeats the moment they are recorded and
/// (on POSIX appends of this size) never sees a torn line. An I/O failure is
/// reported once on stderr and the sink goes quiet — losing telemetry must
/// never lose a multi-hour simulation.
///
/// [`with_timestamps`](Self::with_timestamps) and
/// [`with_shard`](Self::with_shard) opt into the aggregation stamps
/// described at [`event_to_json_stamped`].
pub struct JsonlRecorder {
    path: PathBuf,
    file: Mutex<File>,
    failed: AtomicBool,
    shard: Option<usize>,
    timestamps: bool,
    /// Last stamp handed out, for monotone clamping across clock steps.
    last_ts: AtomicU64,
}

impl JsonlRecorder {
    fn from_file(path: PathBuf, file: File) -> Self {
        Self {
            path,
            file: Mutex::new(file),
            failed: AtomicBool::new(false),
            shard: None,
            timestamps: false,
            last_ts: AtomicU64::new(0),
        }
    }

    /// Creates (truncates) the event file.
    pub fn create(path: impl Into<PathBuf>) -> std::io::Result<Self> {
        let path = path.into();
        let file = File::create(&path)?;
        Ok(Self::from_file(path, file))
    }

    /// Opens the event file for appending (creating it if absent) — the mode
    /// a restarted worker uses so the supervisor's already-consumed prefix of
    /// the stream survives the restart.
    pub fn append(path: impl Into<PathBuf>) -> std::io::Result<Self> {
        let path = path.into();
        let file = std::fs::OpenOptions::new()
            .append(true)
            .create(true)
            .open(&path)?;
        Ok(Self::from_file(path, file))
    }

    /// Stamps every line with this writer's shard index (unless the event
    /// already carries one), so cross-shard aggregation never infers shard
    /// identity from file paths.
    pub fn with_shard(mut self, shard: usize) -> Self {
        self.shard = Some(shard);
        self
    }

    /// Stamps every line with a monotonic-ish wall-clock `ts_ms`: real time
    /// from the system clock, clamped to never decrease within this writer
    /// even if the clock steps backwards.
    pub fn with_timestamps(mut self) -> Self {
        self.timestamps = true;
        self
    }

    /// Where the events are being written.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn stamp_now_ms(&self) -> u64 {
        let now = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        // fetch_max returns the previous watermark; the stamp is whichever
        // of (now, watermark) is later, so stamps never run backwards.
        let prev = self.last_ts.fetch_max(now, Ordering::Relaxed);
        now.max(prev)
    }

    fn write_line(&self, line: &str) {
        if self.failed.load(Ordering::Relaxed) {
            return;
        }
        let mut buf = String::with_capacity(line.len() + 1);
        buf.push_str(line);
        buf.push('\n');
        let mut f = self.file.lock().unwrap_or_else(|e| e.into_inner());
        if let Err(e) = f.write_all(buf.as_bytes()) {
            self.failed.store(true, Ordering::Relaxed);
            eprintln!(
                "[vbr-obs] event stream {} failed, telemetry disabled: {e}",
                self.path.display()
            );
        }
    }
}

impl Recorder for JsonlRecorder {
    fn record(&self, event: &Event) {
        let ts = self.timestamps.then(|| self.stamp_now_ms());
        self.write_line(&event_to_json_stamped(event, ts, self.shard));
    }

    fn finish(&self, _summary: &RunSummary) {
        // Every line is already durable in the file — nothing buffered.
    }
}

/// Strict validation that `line` is exactly one JSON value (for event lines,
/// an object). Returns the byte offset and message of the first violation.
pub fn validate_line(line: &str) -> Result<(), String> {
    let bytes = line.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\r' | b'\n') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => parse_string(b, pos),
        Some(b't') => parse_lit(b, pos, "true"),
        Some(b'f') => parse_lit(b, pos, "false"),
        Some(b'n') => parse_lit(b, pos, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(c) => Err(format!("unexpected byte {:?} at offset {pos}", *c as char)),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at offset {pos} (expected {lit})"))
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // {
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at offset {pos}"));
        }
        parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at offset {pos}"));
        }
        *pos += 1;
        skip_ws(b, pos);
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // [
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at offset {pos}")),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // opening quote
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        if b.len() < *pos + 5
                            || !b[*pos + 1..*pos + 5].iter().all(u8::is_ascii_hexdigit)
                        {
                            return Err(format!("bad \\u escape at offset {pos}"));
                        }
                        *pos += 5;
                    }
                    _ => return Err(format!("bad escape at offset {pos}")),
                }
            }
            0x00..=0x1f => return Err(format!("raw control byte in string at offset {pos}")),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".into())
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let int_digits = eat_digits(b, pos);
    if int_digits == 0 {
        return Err(format!("number missing integer digits at offset {start}"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if eat_digits(b, pos) == 0 {
            return Err(format!("number missing fraction digits at offset {pos}"));
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if eat_digits(b, pos) == 0 {
            return Err(format!("number missing exponent digits at offset {pos}"));
        }
    }
    Ok(())
}

fn eat_digits(b: &[u8], pos: &mut usize) -> usize {
    let start = *pos;
    while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
        *pos += 1;
    }
    *pos - start
}

/// Validates a whole JSONL body line by line; returns the 1-based line
/// number and message of the first invalid line.
pub fn validate_stream(body: &str) -> Result<usize, (usize, String)> {
    let mut n = 0;
    for (i, line) in body.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        validate_line(line).map_err(|e| (i + 1, e))?;
        n += 1;
    }
    Ok(n)
}

/// Validates a JSONL body that may end in a **partial trailing line** — the
/// normal wreckage of a worker killed mid-write. A final line that fails
/// validation *and* is not newline-terminated is treated as end-of-stream,
/// not an error. Returns `(valid_lines, partial_tail)`; an invalid line
/// anywhere else is still an error.
pub fn validate_stream_tolerant(body: &str) -> Result<(usize, bool), (usize, String)> {
    let lines: Vec<&str> = body.lines().collect();
    let terminated = body.ends_with('\n');
    let mut n = 0;
    for (i, line) in lines.iter().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match validate_line(line) {
            Ok(()) => n += 1,
            Err(_) if i + 1 == lines.len() && !terminated => return Ok((n, true)),
            Err(e) => return Err((i + 1, e)),
        }
    }
    Ok((n, false))
}

/// One scalar field value of a flat JSONL event object.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonScalar {
    /// A JSON number (all event numbers fit f64 exactly at the magnitudes
    /// emitted).
    Number(f64),
    /// A string, unescaped.
    String(String),
    /// A boolean.
    Bool(bool),
    /// `null`.
    Null,
}

impl JsonScalar {
    /// The value as an f64, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonScalar::Number(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a u64, if a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonScalar::Number(x) if *x >= 0.0 && x.fract() == 0.0 => Some(*x as u64),
            _ => None,
        }
    }

    /// The value as a string slice, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonScalar::String(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses one **flat** JSON object line (every emitted event is one) into
/// `(key, scalar)` pairs in source order. Nested objects/arrays are rejected
/// — the event schema has none, so hitting one means the line is not an
/// event. This is the supervisor's read side of the event stream.
pub fn parse_flat_object(line: &str) -> Result<Vec<(String, JsonScalar)>, String> {
    validate_line(line)?;
    let b = line.as_bytes();
    let mut pos = 0usize;
    skip_ws(b, &mut pos);
    if b.get(pos) != Some(&b'{') {
        return Err("not an object".into());
    }
    pos += 1;
    let mut out = Vec::new();
    skip_ws(b, &mut pos);
    if b.get(pos) == Some(&b'}') {
        return Ok(out);
    }
    loop {
        skip_ws(b, &mut pos);
        let key = read_string(b, &mut pos)?;
        skip_ws(b, &mut pos);
        pos += 1; // ':' — guaranteed by validate_line
        skip_ws(b, &mut pos);
        let value = match b.get(pos) {
            Some(b'"') => JsonScalar::String(read_string(b, &mut pos)?),
            Some(b't') => {
                pos += 4;
                JsonScalar::Bool(true)
            }
            Some(b'f') => {
                pos += 5;
                JsonScalar::Bool(false)
            }
            Some(b'n') => {
                pos += 4;
                JsonScalar::Null
            }
            Some(b'{' | b'[') => return Err(format!("nested value at offset {pos} (not flat)")),
            _ => {
                let start = pos;
                parse_number(b, &mut pos)?;
                let text = std::str::from_utf8(&b[start..pos]).map_err(|e| e.to_string())?;
                JsonScalar::Number(text.parse::<f64>().map_err(|e| e.to_string())?)
            }
        };
        out.push((key, value));
        skip_ws(b, &mut pos);
        match b.get(pos) {
            Some(b',') => pos += 1,
            _ => return Ok(out), // '}' — guaranteed by validate_line
        }
    }
}

/// Reads and unescapes a JSON string already proven well-formed by
/// [`validate_line`].
fn read_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    *pos += 1; // opening quote
    let mut out = String::new();
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = std::str::from_utf8(&b[*pos + 1..*pos + 5])
                            .map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at offset {pos}")),
                }
                *pos += 1;
            }
            _ => {
                // Multi-byte UTF-8 sequences pass through intact: collect the
                // full code point.
                let s = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let ch = s.chars().next().ok_or("empty string tail")?;
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
    Err("unterminated string".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_event_serializes_to_valid_json() {
        let events = [
            Event::RunStart {
                seed: 0x5EED_CAFE,
                replications: 60,
                n_sources: 30,
                frames_per_replication: 500_000,
                buffers: 8,
            },
            Event::ReplicationStart {
                replication: 3,
                seed: 1,
            },
            Event::ReplicationEnd {
                replication: 3,
                seed: 1,
                frames: 525_000,
                duration_ns: 830_000_000,
                clr_b0: 3.89e-6,
            },
            Event::Progress {
                completed: 4,
                requested: 60,
            },
            Event::CheckpointSaved {
                path: "paper_output/run.ckpt".into(),
                replications: 4,
                fingerprint: 0xDEAD_BEEF_0123_4567,
            },
            Event::CheckpointResumed {
                path: "a \"quoted\"\npath\\x".into(),
                replications: 2,
                fingerprint: 1,
            },
            Event::GuardTrip {
                replication: 9,
                frame: 1234,
                seed: 7,
                site: "source 3".into(),
                value: f64::NAN,
            },
            Event::WatchdogTimeout {
                replication: 5,
                seed: 7,
            },
            Event::BudgetExhausted {
                completed: 10,
                requested: 60,
            },
            Event::RunEnd {
                requested: 60,
                completed: 58,
                timed_out: 2,
                resumed: 10,
                budget_exhausted: false,
                duration_ns: 3_600_000_000_000,
            },
        ];
        for ev in &events {
            let line = event_to_json(ev);
            validate_line(&line).unwrap_or_else(|e| panic!("{}: {e}\n{line}", ev.kind()));
            assert!(
                line.contains(&format!("\"type\":\"{}\"", ev.kind())),
                "{line}"
            );
            assert!(!line.contains('\n'), "single line: {line}");
        }
    }

    #[test]
    fn non_finite_floats_encode_as_strings() {
        let line = event_to_json(&Event::GuardTrip {
            replication: 0,
            frame: 0,
            seed: 0,
            site: "aggregate arrivals".into(),
            value: f64::INFINITY,
        });
        validate_line(&line).expect("valid");
        assert!(line.contains("\"inf\""), "{line}");
    }

    #[test]
    fn validator_accepts_json_shapes() {
        for good in [
            "{}",
            "[]",
            "{\"a\":1,\"b\":[1,2.5,-3e-7],\"c\":{\"d\":null},\"e\":\"x\\u0041\"}",
            "  {\"k\":true}  ",
            "-0.5e+10",
            "\"just a string\"",
        ] {
            validate_line(good).unwrap_or_else(|e| panic!("{good}: {e}"));
        }
    }

    #[test]
    fn validator_rejects_malformed_lines() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "{\"a\":1,}",
            "{'a':1}",
            "{\"a\":01e}",
            "{\"a\":1} trailing",
            "{\"a\":\"unterminated}",
            "{\"a\":nul}",
            "{\"a\":1 \"b\":2}",
        ] {
            assert!(validate_line(bad).is_err(), "should reject: {bad:?}");
        }
    }

    #[test]
    fn jsonl_recorder_writes_parseable_stream() {
        let dir = std::env::temp_dir().join("vbr_obs_jsonl_test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("events.jsonl");
        let rec = JsonlRecorder::create(&path).expect("create");
        rec.record(&Event::ReplicationStart {
            replication: 0,
            seed: 9,
        });
        rec.record(&Event::Progress {
            completed: 1,
            requested: 2,
        });
        let body = std::fs::read_to_string(&path).expect("read back");
        let n = validate_stream(&body).expect("all lines valid");
        assert_eq!(n, 2);
        assert_eq!(body.lines().count(), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn validate_stream_pinpoints_bad_line() {
        let body = "{\"ok\":1}\nnot json\n";
        let (line, _) = validate_stream(body).unwrap_err();
        assert_eq!(line, 2);
    }

    /// The satellite contract: a partial trailing line — what a SIGKILLed
    /// worker leaves mid-write — is end-of-stream, not a validation error.
    #[test]
    fn tolerant_validator_accepts_partial_trailing_line() {
        let body = "{\"type\":\"progress\",\"completed\":1,\"requested\":4}\n{\"type\":\"replica";
        let (n, partial) = validate_stream_tolerant(body).expect("tolerated");
        assert_eq!(n, 1);
        assert!(partial);

        // A newline-terminated garbage line is NOT a partial tail.
        let body = "{\"ok\":1}\n{garbage}\n";
        assert!(validate_stream_tolerant(body).is_err());

        // Garbage mid-stream is still an error even without a final newline.
        let body = "{garbage}\n{\"par";
        let (line, _) = validate_stream_tolerant(body).unwrap_err();
        assert_eq!(line, 1);

        // A clean stream reports no partial tail.
        let body = "{\"ok\":1}\n{\"ok\":2}\n";
        assert_eq!(validate_stream_tolerant(body), Ok((2, false)));
    }

    #[test]
    fn campaign_events_serialize_to_valid_json() {
        let events = [
            Event::Heartbeat {
                replication: 7,
                frame: 40_960,
            },
            Event::CheckpointFallback {
                path: "shard-0/ckpt".into(),
                error: "checksum mismatch".into(),
                recovered: true,
            },
            Event::CampaignStart {
                shards: 4,
                replications: 60,
            },
            Event::WorkerSpawned {
                shard: 2,
                attempt: 1,
                pid: 4321,
            },
            Event::WorkerExited {
                shard: 2,
                attempt: 1,
                code: -1,
            },
            Event::WorkerStalled {
                shard: 1,
                attempt: 2,
                silent_ms: 1500,
            },
            Event::WorkerRestarted {
                shard: 2,
                attempt: 2,
                backoff_ms: 250,
            },
            Event::ShardCompleted {
                shard: 2,
                replications: 15,
                attempts: 2,
            },
            Event::ShardQuarantined {
                shard: 3,
                attempts: 3,
                completed: 4,
            },
            Event::CampaignEnd {
                shards: 4,
                quarantined: 1,
                requested: 60,
                completed: 49,
                restarts: 3,
                duration_ns: 9_000_000_000,
            },
        ];
        for ev in &events {
            let line = event_to_json(ev);
            validate_line(&line).unwrap_or_else(|e| panic!("{}: {e}\n{line}", ev.kind()));
            assert!(
                line.contains(&format!("\"type\":\"{}\"", ev.kind())),
                "{line}"
            );
        }
        // Negative exit codes survive the round trip as JSON numbers.
        let line = event_to_json(&events[4]);
        assert!(line.contains("\"code\":-1"), "{line}");
    }

    #[test]
    fn flat_object_parser_reads_scalars() {
        let line = "{\"type\":\"worker_exited\",\"shard\":2,\"attempt\":1,\"code\":-1,\
                    \"note\":\"a \\\"q\\\"\",\"flag\":true,\"none\":null,\"x\":2.5e-3}";
        let fields = parse_flat_object(line).expect("parses");
        let get = |k: &str| {
            fields
                .iter()
                .find(|(key, _)| key == k)
                .map(|(_, v)| v.clone())
        };
        assert_eq!(get("type"), Some(JsonScalar::String("worker_exited".into())));
        assert_eq!(get("shard").and_then(|v| v.as_u64()), Some(2));
        assert_eq!(get("code").and_then(|v| v.as_f64()), Some(-1.0));
        assert_eq!(get("note"), Some(JsonScalar::String("a \"q\"".into())));
        assert_eq!(get("flag"), Some(JsonScalar::Bool(true)));
        assert_eq!(get("none"), Some(JsonScalar::Null));
        assert!((get("x").and_then(|v| v.as_f64()).unwrap() - 2.5e-3).abs() < 1e-15);
        // as_u64 rejects negatives and fractions.
        assert_eq!(get("code").and_then(|v| v.as_u64()), None);
        assert_eq!(get("x").and_then(|v| v.as_u64()), None);

        assert!(parse_flat_object("{\"a\":[1]}").is_err(), "nested rejected");
        assert!(parse_flat_object("not json").is_err());
        assert_eq!(parse_flat_object("{}").expect("empty ok"), vec![]);
    }

    #[test]
    fn every_emitted_event_round_trips_through_flat_parser() {
        let ev = Event::ReplicationEnd {
            replication: 3,
            seed: 0xFFFF_FFFF_FFFF_FFFF,
            frames: 525_000,
            duration_ns: 830_000_000,
            clr_b0: 3.89e-6,
        };
        let fields = parse_flat_object(&event_to_json(&ev)).expect("flat");
        let get = |k: &str| fields.iter().find(|(key, _)| key == k).map(|(_, v)| v.clone());
        assert_eq!(
            get("type"),
            Some(JsonScalar::String("replication_end".into()))
        );
        assert_eq!(get("replication").and_then(|v| v.as_u64()), Some(3));
        assert_eq!(get("frames").and_then(|v| v.as_u64()), Some(525_000));
    }

    #[test]
    fn stamped_lines_carry_ts_and_shard() {
        let dir = std::env::temp_dir().join("vbr_obs_jsonl_stamp_test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("events.jsonl");
        let rec = JsonlRecorder::create(&path)
            .expect("create")
            .with_shard(3)
            .with_timestamps();
        rec.record(&Event::Heartbeat {
            replication: 1,
            frame: 4096,
        });
        // An event that already names a shard keeps its own field.
        rec.record(&Event::WorkerSpawned {
            shard: 9,
            attempt: 1,
            pid: 1234,
        });
        let body = std::fs::read_to_string(&path).expect("read back");
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines.len(), 2);

        let fields = parse_flat_object(lines[0]).expect("stamped line parses");
        let get = |k: &str| fields.iter().find(|(key, _)| key == k).map(|(_, v)| v.clone());
        assert_eq!(get("shard").and_then(|v| v.as_u64()), Some(3));
        assert!(get("ts_ms").and_then(|v| v.as_u64()).is_some(), "{body}");

        let fields = parse_flat_object(lines[1]).expect("parses");
        let shards: Vec<_> = fields.iter().filter(|(k, _)| k == "shard").collect();
        assert_eq!(shards.len(), 1, "no duplicate shard key: {}", lines[1]);
        assert_eq!(shards[0].1.as_u64(), Some(9), "event's own shard wins");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn timestamps_never_decrease_within_a_recorder() {
        let dir = std::env::temp_dir().join("vbr_obs_jsonl_mono_test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("events.jsonl");
        let rec = JsonlRecorder::create(&path).expect("create").with_timestamps();
        for i in 0..50 {
            rec.record(&Event::Progress {
                completed: i,
                requested: 50,
            });
        }
        let body = std::fs::read_to_string(&path).expect("read back");
        let mut last = 0u64;
        for line in body.lines() {
            let fields = parse_flat_object(line).expect("parses");
            let ts = fields
                .iter()
                .find(|(k, _)| k == "ts_ms")
                .and_then(|(_, v)| v.as_u64())
                .expect("stamped");
            assert!(ts >= last, "ts_ms went backwards: {ts} < {last}");
            last = ts;
        }
        let _ = std::fs::remove_file(&path);
    }

    /// The satellite contract: events are visible on disk the moment
    /// `record` returns — a concurrent tailer sees each heartbeat promptly,
    /// not on a buffer boundary.
    #[test]
    fn events_are_durable_immediately_after_record() {
        let dir = std::env::temp_dir().join("vbr_obs_jsonl_flush_test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("events.jsonl");
        let rec = JsonlRecorder::append(&path).expect("append");
        for i in 1..=3usize {
            rec.record(&Event::Heartbeat {
                replication: i,
                frame: 0,
            });
            // Read back through the filesystem *while the recorder is live*.
            let body = std::fs::read_to_string(&path).expect("read back");
            assert_eq!(body.lines().count(), i, "line {i} not flushed");
            assert!(body.ends_with('\n'), "line {i} incomplete on disk");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn event_to_json_stamped_without_stamps_is_identity() {
        let ev = Event::Progress {
            completed: 1,
            requested: 2,
        };
        assert_eq!(event_to_json_stamped(&ev, None, None), event_to_json(&ev));
        let stamped = event_to_json_stamped(&ev, Some(1700000000123), Some(2));
        validate_line(&stamped).expect("valid");
        assert!(stamped.ends_with(",\"ts_ms\":1700000000123,\"shard\":2}"), "{stamped}");
    }

    #[test]
    fn append_mode_preserves_existing_lines() {
        let dir = std::env::temp_dir().join("vbr_obs_jsonl_append_test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("events.jsonl");
        {
            let rec = JsonlRecorder::create(&path).expect("create");
            rec.record(&Event::Progress {
                completed: 1,
                requested: 2,
            });
        }
        {
            let rec = JsonlRecorder::append(&path).expect("append");
            rec.record(&Event::Progress {
                completed: 2,
                requested: 2,
            });
        }
        let body = std::fs::read_to_string(&path).expect("read back");
        assert_eq!(body.lines().count(), 2, "append kept the first line");
        let _ = std::fs::remove_file(&path);
    }
}

//! Prometheus text-format export of the run's final metrics.
//!
//! A batch simulator has no scrape endpoint; instead the exporter writes
//! one text-format file at run end (the Pushgateway / textfile-collector
//! convention), so run metrics land in the same dashboards as service
//! metrics. Histograms use the standard cumulative `_bucket{le=...}` form,
//! the P² replication-duration summary the `{quantile=...}` form, and the
//! span table is exported as `vbr_stage_seconds_total` / `vbr_stage_calls_total`
//! labeled by stage path.

use crate::recorder::{Event, Recorder, RunSummary};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

pub(crate) fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".into()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf".into() } else { "-Inf".into() }
    } else {
        format!("{v:e}")
    }
}

pub(crate) fn counter(out: &mut String, name: &str, help: &str, value: impl std::fmt::Display) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} counter");
    let _ = writeln!(out, "{name} {value}");
}

pub(crate) fn gauge(out: &mut String, name: &str, help: &str, value: f64) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} gauge");
    let _ = writeln!(out, "{name} {}", fmt_f64(value));
}

fn histogram(
    out: &mut String,
    name: &str,
    help: &str,
    snap: &crate::metrics::HistogramSnapshot,
) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} histogram");
    for (le, cum) in snap.cumulative() {
        let le = if le.is_infinite() {
            "+Inf".to_string()
        } else {
            format!("{le:e}")
        };
        let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cum}");
    }
    let _ = writeln!(out, "{name}_sum {}", fmt_f64(snap.sum));
    let _ = writeln!(out, "{name}_count {}", snap.count);
}

/// Renders the full Prometheus text exposition for a finished run.
pub fn render(summary: &RunSummary) -> String {
    let m = &summary.metrics;
    let mut out = String::with_capacity(4096);

    counter(
        &mut out,
        "vbr_frames_total",
        "Frames simulated (warmup included), all replications.",
        m.frames,
    );
    counter(
        &mut out,
        "vbr_batches_total",
        "Batches swept through the queue grid.",
        m.batches,
    );
    counter(
        &mut out,
        "vbr_cells_offered_total",
        "Cells offered to the multiplexer (buffer-grid index 0).",
        fmt_f64(m.cells_offered),
    );
    counter(
        &mut out,
        "vbr_cells_lost_total",
        "Cells lost at the smallest configured buffer.",
        fmt_f64(m.cells_lost_b0),
    );
    counter(
        &mut out,
        "vbr_replications_completed_total",
        "Replications whose results entered the estimates.",
        m.replications_completed,
    );
    counter(
        &mut out,
        "vbr_replications_timed_out_total",
        "Replications abandoned by the per-replication deadline.",
        m.replications_timed_out,
    );
    counter(
        &mut out,
        "vbr_checkpoint_saves_total",
        "Checkpoint files written.",
        m.checkpoint_saves,
    );
    let _ = writeln!(
        out,
        "# HELP vbr_guard_trips_total Numeric guard trips by pipeline site.\n\
         # TYPE vbr_guard_trips_total counter"
    );
    for (kind, v) in [
        ("source", m.guard_trips_source),
        ("aggregate", m.guard_trips_aggregate),
        ("queue", m.guard_trips_queue),
    ] {
        let _ = writeln!(out, "vbr_guard_trips_total{{site=\"{kind}\"}} {v}");
    }

    gauge(
        &mut out,
        "vbr_cells_per_second",
        "End-of-run throughput in cells per wall-clock second.",
        m.cells_per_sec,
    );
    gauge(
        &mut out,
        "vbr_run_wall_seconds",
        "Run wall time in seconds.",
        summary.wall.as_secs_f64(),
    );
    gauge(
        &mut out,
        "vbr_run_budget_exhausted",
        "1 if the run-level watchdog budget expired early.",
        if summary.budget_exhausted { 1.0 } else { 0.0 },
    );

    histogram(
        &mut out,
        "vbr_queue_depth_cells",
        "Queue occupancy in cells, sampled once per queue per batch.",
        &m.queue_depth,
    );
    histogram(
        &mut out,
        "vbr_batch_duration_ns",
        "Wall time per batch (generate + queue sweep) in nanoseconds.",
        &m.batch_ns,
    );

    let d = &m.rep_duration_s;
    let _ = writeln!(
        out,
        "# HELP vbr_replication_duration_seconds Per-replication wall time (P2 estimates).\n\
         # TYPE vbr_replication_duration_seconds summary"
    );
    if d.count > 0 {
        for (level, est) in d.levels.iter().zip(&d.estimates) {
            let _ = writeln!(
                out,
                "vbr_replication_duration_seconds{{quantile=\"{level}\"}} {}",
                fmt_f64(*est)
            );
        }
    }
    let _ = writeln!(
        out,
        "vbr_replication_duration_seconds_sum {}",
        fmt_f64(d.sum)
    );
    let _ = writeln!(out, "vbr_replication_duration_seconds_count {}", d.count);

    if !summary.stages.is_empty() {
        let _ = writeln!(
            out,
            "# HELP vbr_stage_seconds_total Wall time inside each instrumented stage.\n\
             # TYPE vbr_stage_seconds_total counter"
        );
        for (path, stats) in summary.stages.iter() {
            let _ = writeln!(
                out,
                "vbr_stage_seconds_total{{stage=\"{}\"}} {}",
                path.replace('"', "'"),
                fmt_f64(stats.total_ns as f64 / 1e9)
            );
        }
        let _ = writeln!(
            out,
            "# HELP vbr_stage_calls_total Times each instrumented stage ran.\n\
             # TYPE vbr_stage_calls_total counter"
        );
        for (path, stats) in summary.stages.iter() {
            let _ = writeln!(
                out,
                "vbr_stage_calls_total{{stage=\"{}\"}} {}",
                path.replace('"', "'"),
                stats.calls
            );
        }
    }
    out
}

/// Sink that writes the Prometheus exposition file at run end.
pub struct PrometheusExporter {
    path: PathBuf,
}

impl PrometheusExporter {
    /// Export to `path` when the run finishes.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        Self { path: path.into() }
    }

    /// Export destination.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Recorder for PrometheusExporter {
    fn record(&self, _event: &Event) {}

    fn finish(&self, summary: &RunSummary) {
        if let Err(e) = std::fs::write(&self.path, render(summary)) {
            eprintln!(
                "[vbr-obs] prometheus export to {} failed: {e}",
                self.path.display()
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::PipelineMetrics;
    use crate::span::StageTable;
    use std::time::Duration;

    fn summary() -> RunSummary {
        let m = PipelineMetrics::default();
        m.frames.add(10_000);
        m.batches.add(3);
        m.cells_offered.add(5e6);
        m.cells_lost_b0.add(12.5);
        m.replications_completed.add(2);
        m.queue_depth.record(0.0);
        m.queue_depth.record(300.0);
        m.queue_depth.record(5000.0);
        m.batch_ns.record(1.2e6);
        m.observe_replication_seconds(0.8);
        m.observe_replication_seconds(0.9);
        m.cells_per_sec.set(6.2e6);
        let mut stages = StageTable::default();
        stages.add("replication", 1_700_000_000);
        stages.add("replication/generate", 1_100_000_000);
        RunSummary {
            requested: 2,
            completed: 2,
            timed_out: 0,
            resumed: 0,
            budget_exhausted: false,
            wall: Duration::from_secs(2),
            metrics: m.snapshot(),
            stages,
        }
    }

    #[test]
    fn render_has_all_metric_families() {
        let text = render(&summary());
        for family in [
            "vbr_frames_total",
            "vbr_cells_offered_total",
            "vbr_replications_completed_total",
            "vbr_guard_trips_total{site=\"source\"}",
            "vbr_queue_depth_cells_bucket{le=\"+Inf\"}",
            "vbr_queue_depth_cells_count 3",
            "vbr_batch_duration_ns_sum",
            "vbr_replication_duration_seconds{quantile=\"0.5\"}",
            "vbr_replication_duration_seconds_count 2",
            "vbr_stage_seconds_total{stage=\"replication/generate\"}",
            "vbr_stage_calls_total{stage=\"replication\"}",
            "vbr_run_wall_seconds",
        ] {
            assert!(text.contains(family), "missing {family} in:\n{text}");
        }
    }

    #[test]
    fn histogram_buckets_are_cumulative_in_text() {
        let text = render(&summary());
        // Occupancy observations: 0.0, 300.0, 5000.0 -> the +Inf bucket
        // must read the full count.
        let inf_line = text
            .lines()
            .find(|l| l.starts_with("vbr_queue_depth_cells_bucket{le=\"+Inf\"}"))
            .expect("inf bucket");
        assert!(inf_line.ends_with(" 3"), "{inf_line}");
    }

    #[test]
    fn exporter_writes_file_on_finish() {
        let dir = std::env::temp_dir().join("vbr_obs_prom_test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("metrics.prom");
        let exp = PrometheusExporter::new(&path);
        exp.finish(&summary());
        let body = std::fs::read_to_string(&path).expect("written");
        assert!(body.contains("vbr_frames_total 10000"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn type_lines_precede_samples() {
        let text = render(&summary());
        let type_idx = text.find("# TYPE vbr_frames_total").unwrap();
        let sample_idx = text.find("\nvbr_frames_total ").unwrap();
        assert!(type_idx < sample_idx);
    }
}

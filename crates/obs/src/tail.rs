//! Incremental JSONL tailing: the read side of a live event stream.
//!
//! A campaign writes per-shard `*.events.jsonl` files while supervisors,
//! dashboards and scrape endpoints read them concurrently. [`Tailer`]
//! follows one such file by byte offset and only ever hands back
//! **complete, newline-terminated lines** — a partial trailing line (a
//! worker killed mid-write, or a write racing the read) is left in place
//! until more bytes arrive, mirroring the tolerant-validator semantics in
//! [`crate::jsonl::validate_stream_tolerant`].
//!
//! The tailer also survives the two ways a followed file can go backwards:
//!
//! * **truncation** — a supervisor discarding a dead worker's partial tail
//!   shrinks the file below a consumed prefix boundary;
//! * **rotation** — the file is replaced wholesale (e.g. `create` after a
//!   coordinator restart).
//!
//! Both appear as `size < offset`; the tailer resets to the start of the
//! file and reports the reset so an aggregator can decide whether replayed
//! lines matter (for the idempotent campaign aggregation they do not).

use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};

/// Result of one [`Tailer::poll`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TailPoll {
    /// Newly consumed complete lines, trimmed, blank lines dropped.
    pub lines: Vec<String>,
    /// Current file size in bytes — any change is a liveness signal even
    /// when no complete line was consumed.
    pub size: u64,
    /// True if the file shrank below the consumed offset (truncation or
    /// rotation); consumption restarted from byte 0 this poll.
    pub reset: bool,
}

/// Follows one JSONL file incrementally, consuming only complete lines.
///
/// The file may not exist yet (a worker that has not started writing): polls
/// return empty until it does. See the [module docs](self) for the
/// truncation/rotation contract.
#[derive(Debug)]
pub struct Tailer {
    path: PathBuf,
    /// Byte offset of the first unconsumed byte (always a line start).
    offset: u64,
}

impl Tailer {
    /// Tails `path` from the beginning.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        Self {
            path: path.into(),
            offset: 0,
        }
    }

    /// The file being followed.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Byte offset of the first unconsumed byte.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Reads newly appended complete lines, detecting truncation/rotation.
    pub fn poll(&mut self) -> TailPoll {
        let Ok(mut f) = File::open(&self.path) else {
            return TailPoll {
                lines: Vec::new(),
                size: self.offset,
                reset: false,
            };
        };
        let size = f.metadata().map(|m| m.len()).unwrap_or(self.offset);
        let reset = size < self.offset;
        if reset {
            // The file went backwards under us: re-read from the start.
            self.offset = 0;
        }
        if size <= self.offset {
            return TailPoll {
                lines: Vec::new(),
                size,
                reset,
            };
        }
        if f.seek(SeekFrom::Start(self.offset)).is_err() {
            return TailPoll {
                lines: Vec::new(),
                size,
                reset,
            };
        }
        let mut buf = String::new();
        if f.read_to_string(&mut buf).is_err() {
            return TailPoll {
                lines: Vec::new(),
                size,
                reset,
            };
        }
        let mut lines = Vec::new();
        let mut consumed = 0usize;
        for line in buf.split_inclusive('\n') {
            if line.ends_with('\n') {
                let trimmed = line.trim();
                if !trimmed.is_empty() {
                    lines.push(trimmed.to_string());
                }
                consumed += line.len();
            }
        }
        self.offset += consumed as u64;
        TailPoll { lines, size, reset }
    }

    /// Truncates the file to the consumed offset, discarding a partial
    /// trailing line so subsequent appends start at a line boundary. This is
    /// the supervisor-side cleanup between worker attempts.
    pub fn truncate_partial_tail(&self) {
        if let Ok(f) = std::fs::OpenOptions::new().write(true).open(&self.path) {
            let len = f.metadata().map(|m| m.len()).unwrap_or(0);
            if len > self.offset {
                let _ = f.set_len(self.offset);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("vbr_obs_tail_tests");
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(name)
    }

    #[test]
    fn missing_file_polls_empty() {
        let mut tail = Tailer::new(temp_path("never-created.jsonl"));
        let polled = tail.poll();
        assert!(polled.lines.is_empty());
        assert!(!polled.reset);
        assert_eq!(tail.offset(), 0);
    }

    #[test]
    fn consumes_only_complete_lines() {
        let path = temp_path("partial.jsonl");
        std::fs::write(&path, "{\"a\":1}\n{\"b\":2}\n{\"par").expect("write");
        let mut tail = Tailer::new(path.clone());
        let polled = tail.poll();
        assert_eq!(polled.lines, vec!["{\"a\":1}", "{\"b\":2}"]);
        assert_eq!(polled.size, 21);
        assert_eq!(tail.offset(), 16, "partial tail left unconsumed");

        // The partial line completes: consumed on the next poll.
        std::fs::write(&path, "{\"a\":1}\n{\"b\":2}\n{\"part\":3}\n").expect("write");
        assert_eq!(tail.poll().lines, vec!["{\"part\":3}"]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncate_discards_partial_tail_at_line_boundary() {
        let path = temp_path("truncate.jsonl");
        std::fs::write(&path, "{\"a\":1}\n{\"ha").expect("write");
        let mut tail = Tailer::new(path.clone());
        assert_eq!(tail.poll().lines, vec!["{\"a\":1}"]);
        tail.truncate_partial_tail();
        let body = std::fs::read_to_string(&path).expect("read");
        assert_eq!(body, "{\"a\":1}\n");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn survives_truncation_to_empty() {
        let path = temp_path("shrink.jsonl");
        std::fs::write(&path, "{\"a\":1}\n{\"b\":2}\n").expect("write");
        let mut tail = Tailer::new(path.clone());
        assert_eq!(tail.poll().lines.len(), 2);

        // File truncated below the consumed offset: next poll resets.
        std::fs::write(&path, "").expect("truncate");
        let polled = tail.poll();
        assert!(polled.reset);
        assert!(polled.lines.is_empty());
        assert_eq!(tail.offset(), 0);

        // New content after the truncation is read from the start.
        std::fs::write(&path, "{\"c\":3}\n").expect("write");
        let polled = tail.poll();
        assert!(!polled.reset);
        assert_eq!(polled.lines, vec!["{\"c\":3}"]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn survives_rotation_to_shorter_file() {
        let path = temp_path("rotate.jsonl");
        std::fs::write(&path, "{\"old\":1}\n{\"old\":2}\n{\"old\":3}\n").expect("write");
        let mut tail = Tailer::new(path.clone());
        assert_eq!(tail.poll().lines.len(), 3);

        // Replaced wholesale with a shorter stream (coordinator restart):
        // the reset poll re-reads the whole new file.
        std::fs::write(&path, "{\"new\":1}\n").expect("rotate");
        let polled = tail.poll();
        assert!(polled.reset);
        assert_eq!(polled.lines, vec!["{\"new\":1}"]);
        assert_eq!(tail.offset(), 10);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn same_size_rotation_is_transparent_growth() {
        // A same-or-larger replacement cannot be told apart from an append
        // without content hashing; the contract is only that consumption
        // keeps moving forward and stays on line boundaries.
        let path = temp_path("grow.jsonl");
        std::fs::write(&path, "{\"a\":1}\n").expect("write");
        let mut tail = Tailer::new(path.clone());
        assert_eq!(tail.poll().lines.len(), 1);
        std::fs::write(&path, "{\"a\":1}\n{\"b\":2}\n").expect("append");
        let polled = tail.poll();
        assert!(!polled.reset);
        assert_eq!(polled.lines, vec!["{\"b\":2}"]);
        let _ = std::fs::remove_file(&path);
    }
}

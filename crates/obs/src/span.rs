//! Scoped span timers with nesting, aggregated per stage.
//!
//! A span is a scoped wall-clock timer identified by a static name. Spans
//! nest: entering `"generate"` inside `"replication"` accumulates under the
//! path `replication/generate`, so the final table shows where time went
//! *within* each stage, not just totals.
//!
//! Spans record into a **thread-local collector**. When no collector is
//! installed — the default, and the state of every run without a recorder —
//! [`enter`] is a single thread-local read and a branch: no clock is read,
//! nothing allocates, nothing is written. That is what makes it safe to
//! leave `span!` calls in hot paths (the replication batch loop, the FGN
//! synthesis refill) permanently.
//!
//! The collector is per-thread by design: the replication harness fans out
//! over worker threads, each installs a collector with [`install`], and the
//! harness merges the drained [`StageTable`]s at run end. No lock is touched
//! on the recording path.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Aggregated cost of one stage (one span path).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageStats {
    /// Times the span was entered.
    pub calls: u64,
    /// Total wall time inside the span (inclusive of nested spans), ns.
    pub total_ns: u64,
}

/// Per-stage wall-time and call-count table, keyed by span path
/// (`parent/child` for nested spans).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StageTable {
    map: BTreeMap<String, StageStats>,
}

impl StageTable {
    /// Iterates `(path, stats)` in path order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &StageStats)> {
        self.map.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Stats for one exact span path, if recorded.
    pub fn get(&self, path: &str) -> Option<&StageStats> {
        self.map.get(path)
    }

    /// Number of distinct span paths recorded.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Adds one observation to a path — the collector's recording primitive,
    /// public so tests and custom integrations can build tables directly.
    pub fn add(&mut self, path: &str, elapsed_ns: u64) {
        let e = self.map.entry(path.to_string()).or_default();
        e.calls += 1;
        e.total_ns += elapsed_ns;
    }

    /// Merges another table into this one (summing calls and time per path)
    /// — how the harness combines per-worker-thread collectors.
    pub fn merge(&mut self, other: &StageTable) {
        for (path, stats) in &other.map {
            let e = self.map.entry(path.clone()).or_default();
            e.calls += stats.calls;
            e.total_ns += stats.total_ns;
        }
    }

    /// Renders the human-readable per-stage summary: stage, calls, total ms,
    /// and % of `wall` (the run's wall time; pass the run duration so the
    /// percentages mean "share of the run", not "share of instrumented
    /// time"). Nested paths are indented under their parents.
    pub fn render(&self, wall: Duration) -> String {
        let wall_ns = wall.as_nanos().max(1) as f64;
        let mut out = String::new();
        out.push_str(&format!(
            "{:<40} {:>12} {:>12} {:>8}\n",
            "stage", "calls", "total ms", "% run"
        ));
        for (path, stats) in &self.map {
            let depth = path.matches('/').count();
            let name = path.rsplit('/').next().unwrap_or(path);
            let label = format!("{}{}", "  ".repeat(depth), name);
            out.push_str(&format!(
                "{:<40} {:>12} {:>12.3} {:>7.2}%\n",
                label,
                stats.calls,
                stats.total_ns as f64 / 1e6,
                stats.total_ns as f64 / wall_ns * 100.0,
            ));
        }
        out
    }
}

struct Collector {
    path: Vec<&'static str>,
    key: String,
    table: StageTable,
}

impl Collector {
    fn new() -> Self {
        Self {
            path: Vec::with_capacity(8),
            key: String::with_capacity(64),
            table: StageTable::default(),
        }
    }

    fn current_key(&mut self) -> &str {
        self.key.clear();
        for (i, p) in self.path.iter().enumerate() {
            if i > 0 {
                self.key.push('/');
            }
            self.key.push_str(p);
        }
        &self.key
    }
}

thread_local! {
    static COLLECTOR: RefCell<Option<Collector>> = const { RefCell::new(None) };
}

/// Installs a fresh span collector on the current thread. Spans entered
/// afterwards are timed and aggregated until [`drain`] removes it.
pub fn install() {
    COLLECTOR.with(|c| *c.borrow_mut() = Some(Collector::new()));
}

/// Removes the current thread's collector and returns what it aggregated
/// (an empty table if none was installed).
pub fn drain() -> StageTable {
    COLLECTOR
        .with(|c| c.borrow_mut().take())
        .map(|c| c.table)
        .unwrap_or_default()
}

/// True if a collector is installed on this thread (spans are being timed).
pub fn enabled() -> bool {
    COLLECTOR.with(|c| c.borrow().is_some())
}

/// Enters a span. Returns a guard that records the elapsed time on drop.
/// When no collector is installed this is a thread-local read and a branch —
/// the guard holds no clock and the drop is a no-op.
#[must_use = "the span ends when the guard drops; binding to _ drops immediately"]
pub fn enter(name: &'static str) -> SpanGuard {
    let active = COLLECTOR.with(|c| match c.borrow_mut().as_mut() {
        Some(col) => {
            col.path.push(name);
            true
        }
        None => false,
    });
    SpanGuard {
        start: active.then(Instant::now),
    }
}

/// RAII guard returned by [`enter`]; records the span on drop.
#[derive(Debug)]
pub struct SpanGuard {
    start: Option<Instant>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(t0) = self.start else { return };
        let elapsed = t0.elapsed().as_nanos() as u64;
        COLLECTOR.with(|c| {
            if let Some(col) = c.borrow_mut().as_mut() {
                let key = col.current_key().to_string();
                col.table.add(&key, elapsed);
                col.path.pop();
            }
        });
    }
}

/// Enters a scoped span timer: `let _s = span!("fgn.synthesize");`.
///
/// Free when no collector is installed on the thread (see [`enter`]).
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::enter($name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_spans_record_nothing() {
        // No collector installed: guard is inert, drain yields empty.
        {
            let _s = enter("outer");
            let _t = enter("inner");
        }
        assert!(!enabled());
        assert!(drain().is_empty());
    }

    #[test]
    fn nested_spans_aggregate_by_path() {
        install();
        for _ in 0..3 {
            let _a = enter("outer");
            {
                let _b = enter("inner");
            }
            {
                let _b = enter("inner");
            }
        }
        let table = drain();
        assert_eq!(table.get("outer").unwrap().calls, 3);
        assert_eq!(table.get("outer/inner").unwrap().calls, 6);
        assert!(table.get("inner").is_none(), "inner only exists nested");
        assert!(!enabled(), "drain uninstalls");
    }

    #[test]
    fn merge_sums_stats() {
        let mut a = StageTable::default();
        a.add("x", 100);
        a.add("x", 50);
        let mut b = StageTable::default();
        b.add("x", 25);
        b.add("y", 10);
        a.merge(&b);
        assert_eq!(a.get("x").unwrap().calls, 3);
        assert_eq!(a.get("x").unwrap().total_ns, 175);
        assert_eq!(a.get("y").unwrap().calls, 1);
    }

    #[test]
    fn render_contains_stage_rows() {
        let mut t = StageTable::default();
        t.add("replication", 2_000_000);
        t.add("replication/generate", 1_000_000);
        let s = t.render(Duration::from_millis(4));
        assert!(s.contains("replication"), "{s}");
        assert!(s.contains("generate"), "{s}");
        assert!(s.contains("50.00%"), "{s}");
        assert!(s.contains("% run"), "{s}");
    }

    #[test]
    fn collectors_are_per_thread() {
        install();
        let handle = std::thread::spawn(|| {
            // The spawning thread's collector is not visible here.
            assert!(!enabled());
            install();
            {
                let _s = enter("worker");
            }
            drain()
        });
        {
            let _s = enter("main");
        }
        let worker = handle.join().expect("worker thread");
        let main = drain();
        assert!(worker.get("worker").is_some());
        assert!(worker.get("main").is_none());
        assert!(main.get("main").is_some());
        assert!(main.get("worker").is_none());
    }
}

//! Random-variate samplers.
//!
//! Implemented from scratch (the workspace's allowed dependency set has no
//! `rand_distr`): normal via the Marsaglia polar method, Poisson via Knuth's
//! product method for small means and Hörmann's PTRD transformed-rejection
//! method for large means, exponential by inversion, and a Walker–Vose alias
//! table for categorical draws (the `A_n` lag selector of a DAR(p) process).
//!
//! All samplers are generic over [`rand::Rng`], so they work with the
//! workspace's deterministic [`crate::rng::Xoshiro256PlusPlus`] as well as
//! any other `rand`-compatible generator.

use crate::special::{ln_factorial, normal_pdf, normal_sf};
use rand::Rng;

/// Sampler for the normal distribution `N(mean, sd²)`.
///
/// Uses the Marsaglia polar method with a cached spare deviate, so it costs
/// on average ~1.27 uniform pairs per two normal variates.
#[derive(Debug, Clone)]
pub struct Normal {
    mean: f64,
    sd: f64,
    spare: Option<f64>,
}

impl Normal {
    /// Creates a normal sampler with the given mean and standard deviation.
    ///
    /// # Panics
    /// Panics if `sd` is negative or not finite.
    pub fn new(mean: f64, sd: f64) -> Self {
        assert!(sd >= 0.0 && sd.is_finite(), "invalid sd {sd}");
        assert!(mean.is_finite(), "invalid mean {mean}");
        Self {
            mean,
            sd,
            spare: None,
        }
    }

    /// The configured mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The configured standard deviation.
    pub fn sd(&self) -> f64 {
        self.sd
    }

    /// Draws one variate.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        self.mean + self.sd * self.standard(rng)
    }

    /// True if a spare deviate from the polar method is cached — i.e. an
    /// odd number of standard draws has been served since construction.
    /// Lets callers that rely on draw alignment assert the invariant.
    pub fn has_spare(&self) -> bool {
        self.spare.is_some()
    }

    /// Draws one standard-normal variate.
    pub fn standard<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        loop {
            let u = 2.0 * rng.gen::<f64>() - 1.0;
            let v = 2.0 * rng.gen::<f64>() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let mul = (-2.0 * s.ln() / s).sqrt();
                self.spare = Some(v * mul);
                return u * mul;
            }
        }
    }

    /// Fills `out` with standard-normal variates, identical in values and
    /// RNG consumption to calling [`standard`](Self::standard) `out.len()`
    /// times. Each accepted polar pair is written straight into the output,
    /// so bulk generation skips the per-call spare store/take round-trip;
    /// only a leading cached spare or a trailing odd element goes through
    /// the scalar path.
    pub fn fill_standard<R: Rng + ?Sized>(&mut self, out: &mut [f64], rng: &mut R) {
        let mut rest: &mut [f64] = out;
        if let Some(z) = self.spare.take() {
            match rest.split_first_mut() {
                Some((first, tail)) => {
                    *first = z;
                    rest = tail;
                }
                None => {
                    self.spare = Some(z);
                    return;
                }
            }
        }
        let mut pairs = rest.chunks_exact_mut(2);
        for pair in &mut pairs {
            loop {
                let u = 2.0 * rng.gen::<f64>() - 1.0;
                let v = 2.0 * rng.gen::<f64>() - 1.0;
                let s = u * u + v * v;
                if s > 0.0 && s < 1.0 {
                    let mul = (-2.0 * s.ln() / s).sqrt();
                    pair[0] = u * mul;
                    pair[1] = v * mul;
                    break;
                }
            }
        }
        if let [last] = pairs.into_remainder() {
            *last = self.standard(rng);
        }
    }
}

/// One-shot standard normal draw without carrying sampler state.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    Normal::new(0.0, 1.0).standard(rng)
}

/// Sampler for the Poisson distribution.
///
/// Strategy switch at mean 10: below, Knuth's product-of-uniforms method
/// (exact, O(mean) uniforms); at or above, Hörmann's PTRD transformed
/// rejection (PTRD, 1993), which needs ~1.1 uniform pairs per variate
/// regardless of the mean. The FBNDP traffic model draws a Poisson variate
/// with mean ≈ 250 for every source and frame — about 10⁹ draws at the
/// paper's full simulation scale — so constant cost matters.
#[derive(Debug, Clone)]
pub struct Poisson {
    mean: f64,
    method: PoissonMethod,
}

#[derive(Debug, Clone)]
enum PoissonMethod {
    /// Knuth: count multiplications of uniforms until the product < e^-mean.
    Knuth { exp_neg_mean: f64 },
    /// Hörmann PTRD constants precomputed from the mean.
    Ptrd {
        b: f64,
        a: f64,
        inv_alpha: f64,
        v_r: f64,
        ln_mean: f64,
    },
}

impl Poisson {
    /// Creates a Poisson sampler with the given mean.
    ///
    /// # Panics
    /// Panics if `mean` is negative, NaN, or so large that the PTRD integer
    /// arithmetic would overflow (`mean > 1e9`).
    pub fn new(mean: f64) -> Self {
        assert!(
            mean >= 0.0 && mean.is_finite() && mean <= 1e9,
            "invalid Poisson mean {mean}"
        );
        let method = if mean < 10.0 {
            PoissonMethod::Knuth {
                exp_neg_mean: (-mean).exp(),
            }
        } else {
            let smu = mean.sqrt();
            let b = 0.931 + 2.53 * smu;
            let a = -0.059 + 0.024_83 * b;
            let inv_alpha = 1.123_9 + 1.132_8 / (b - 3.4);
            let v_r = 0.927_7 - 3.622_4 / (b - 2.0);
            PoissonMethod::Ptrd {
                b,
                a,
                inv_alpha,
                v_r,
                ln_mean: mean.ln(),
            }
        };
        Self { mean, method }
    }

    /// The configured mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Draws one variate.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        match &self.method {
            PoissonMethod::Knuth { exp_neg_mean } => {
                if self.mean == 0.0 {
                    return 0;
                }
                let mut k = 0u64;
                let mut p = 1.0;
                loop {
                    p *= rng.gen::<f64>();
                    if p <= *exp_neg_mean {
                        return k;
                    }
                    k += 1;
                }
            }
            PoissonMethod::Ptrd {
                b,
                a,
                inv_alpha,
                v_r,
                ln_mean,
            } => loop {
                let v: f64 = rng.gen();
                // Step 1: the cheap "immediate acceptance" region.
                if v <= 0.86 * v_r {
                    let u = v / v_r - 0.43;
                    let us = 0.5 - u.abs();
                    let k = ((2.0 * a / us + b) * u + self.mean + 0.445).floor();
                    return k as u64;
                }
                // Step 2: draw the second uniform depending on where v fell.
                let (u, v) = if v >= *v_r {
                    (rng.gen::<f64>() - 0.5, v)
                } else {
                    let u = v / v_r - 0.93;
                    (0.5_f64.copysign(u) - u, v_r * rng.gen::<f64>())
                };
                let us = 0.5 - u.abs();
                if us < 0.013 && v > us {
                    continue;
                }
                let kf = ((2.0 * a / us + b) * u + self.mean + 0.445).floor();
                if kf < 0.0 {
                    continue;
                }
                let k = kf as u64;
                // Step 3: exact acceptance test in log space.
                let v_scaled = v * *inv_alpha / (a / (us * us) + b);
                if v_scaled.ln() <= kf * ln_mean - self.mean - ln_factorial(k) {
                    return k;
                }
            },
        }
    }
}

/// Exponential distribution sampler by inversion.
#[derive(Debug, Clone, Copy)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates a sampler for `Exp(rate)` (mean `1/rate`).
    ///
    /// # Panics
    /// Panics if `rate` is not strictly positive and finite.
    pub fn new(rate: f64) -> Self {
        assert!(rate > 0.0 && rate.is_finite(), "invalid rate {rate}");
        Self { rate }
    }

    /// Draws one variate.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // 1 - U in (0, 1]: ln never sees zero.
        -(1.0 - rng.gen::<f64>()).ln() / self.rate
    }
}

/// Gamma distribution sampler, shape–scale parameterization.
///
/// Marsaglia–Tsang squeeze method for shape ≥ 1; the shape < 1 case uses the
/// standard boost `Gamma(a) = Gamma(a+1) · U^{1/a}`. Needed for the
/// negative-binomial (gamma-mixed Poisson) frame-size marginal that the
/// paper's §6.1 discussion references.
#[derive(Debug, Clone)]
pub struct Gamma {
    shape: f64,
    scale: f64,
    d: f64,
    c: f64,
}

impl Gamma {
    /// Creates a sampler for `Gamma(shape, scale)` (mean `shape·scale`).
    ///
    /// # Panics
    /// Panics if either parameter is not strictly positive and finite.
    pub fn new(shape: f64, scale: f64) -> Self {
        assert!(shape > 0.0 && shape.is_finite(), "invalid shape {shape}");
        assert!(scale > 0.0 && scale.is_finite(), "invalid scale {scale}");
        let d = if shape >= 1.0 { shape } else { shape + 1.0 } - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        Self { shape, scale, d, c }
    }

    /// The configured shape.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// The configured scale.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Draws one variate.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let mut normal = Normal::new(0.0, 1.0);
        let base = loop {
            // Marsaglia-Tsang: v = (1 + c z)^3, accept with squeeze then log test.
            let (x, v) = loop {
                let x = normal.standard(rng);
                let t = 1.0 + self.c * x;
                if t > 0.0 {
                    break (x, t * t * t);
                }
            };
            let u: f64 = rng.gen();
            if u < 1.0 - 0.0331 * x.powi(4) {
                break self.d * v;
            }
            if u.ln() < 0.5 * x * x + self.d * (1.0 - v + v.ln()) {
                break self.d * v;
            }
        };
        let boosted = if self.shape >= 1.0 {
            base
        } else {
            // Gamma(a) = Gamma(a+1) * U^{1/a}
            let u: f64 = loop {
                let u = rng.gen::<f64>();
                if u > 0.0 {
                    break u;
                }
            };
            base * u.powf(1.0 / self.shape)
        };
        boosted * self.scale
    }
}

/// Negative-binomial sampler via the gamma–Poisson mixture:
/// `NB(r, p) = Poisson(Gamma(r, (1−p)/p))`, counting failures before the
/// r-th success. Mean `r(1−p)/p`, variance `r(1−p)/p²`.
#[derive(Debug, Clone)]
pub struct NegativeBinomial {
    r: f64,
    p: f64,
    gamma: Gamma,
}

impl NegativeBinomial {
    /// Creates a sampler for `NB(r, p)` with `r > 0` successes parameter and
    /// success probability `p ∈ (0, 1)`.
    ///
    /// # Panics
    /// Panics on out-of-range parameters.
    pub fn new(r: f64, p: f64) -> Self {
        assert!(r > 0.0 && r.is_finite(), "invalid r {r}");
        assert!(p > 0.0 && p < 1.0, "invalid p {p}");
        Self {
            r,
            p,
            gamma: Gamma::new(r, (1.0 - p) / p),
        }
    }

    /// Creates the NB(r, p) matching a target mean and variance
    /// (requires `variance > mean`).
    ///
    /// # Panics
    /// Panics if `variance <= mean` (NB is over-dispersed by construction).
    pub fn from_mean_variance(mean: f64, variance: f64) -> Self {
        assert!(
            variance > mean && mean > 0.0,
            "negative binomial needs variance {variance} > mean {mean} > 0"
        );
        let p = mean / variance;
        let r = mean * p / (1.0 - p);
        Self::new(r, p)
    }

    /// Distribution mean `r(1−p)/p`.
    pub fn mean(&self) -> f64 {
        self.r * (1.0 - self.p) / self.p
    }

    /// Distribution variance `r(1−p)/p²`.
    pub fn variance(&self) -> f64 {
        self.r * (1.0 - self.p) / (self.p * self.p)
    }

    /// Draws one variate.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let lambda = self.gamma.sample(rng);
        Poisson::new(lambda.min(1e9)).sample(rng)
    }
}

/// Walker–Vose alias table: O(1) sampling from an arbitrary finite discrete
/// distribution after O(n) setup.
///
/// Used for the lag selector `A_n ∈ {1..p}` of a DAR(p) process, and generally
/// wherever a categorical draw sits in a hot loop.
#[derive(Debug, Clone)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<usize>,
}

impl AliasTable {
    /// Builds the table from (unnormalized, non-negative) weights.
    ///
    /// # Panics
    /// Panics if `weights` is empty, contains a negative or non-finite
    /// weight, or sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "alias table needs at least one weight");
        let total: f64 = weights
            .iter()
            .map(|&w| {
                assert!(w >= 0.0 && w.is_finite(), "invalid weight {w}");
                w
            })
            .sum();
        assert!(total > 0.0, "weights must not all be zero");

        let n = weights.len();
        let mut prob: Vec<f64> = weights.iter().map(|&w| w * n as f64 / total).collect();
        let mut alias = vec![0usize; n];
        let mut small: Vec<usize> = Vec::with_capacity(n);
        let mut large: Vec<usize> = Vec::with_capacity(n);
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            alias[s] = l;
            prob[l] = (prob[l] + prob[s]) - 1.0;
            if prob[l] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Remaining entries are 1 up to floating-point residue.
        for &i in small.iter().chain(large.iter()) {
            prob[i] = 1.0;
        }
        Self { prob, alias }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True if the table has no categories (never: construction forbids it).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one category index.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let i = rng.gen_range(0..self.prob.len());
        if rng.gen::<f64>() < self.prob[i] {
            i
        } else {
            self.alias[i]
        }
    }
}

/// Mean of the truncated-above-capacity overshoot `E[(X − c)⁺]` for
/// `X ~ N(mean, sd²)` — the fluid zero-buffer loss numerator. Exposed here
/// because both the analysis and the simulation tests anchor against it.
pub fn gaussian_overshoot_mean(mean: f64, sd: f64, c: f64) -> f64 {
    if sd == 0.0 {
        return (mean - c).max(0.0);
    }
    let z = (c - mean) / sd;
    sd * normal_pdf(z) - (c - mean) * normal_sf(z)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256PlusPlus;

    fn rng(seed: u64) -> Xoshiro256PlusPlus {
        Xoshiro256PlusPlus::from_seed_u64(seed)
    }

    fn moments(samples: &[f64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        (mean, var)
    }

    #[test]
    fn normal_moments() {
        let mut d = Normal::new(500.0, 70.710_678);
        let mut r = rng(1);
        let xs: Vec<f64> = (0..200_000).map(|_| d.sample(&mut r)).collect();
        let (m, v) = moments(&xs);
        assert!((m - 500.0).abs() < 0.7, "mean {m}");
        assert!((v - 5000.0).abs() < 100.0, "var {v}");
    }

    #[test]
    fn normal_tail_fraction() {
        let mut d = Normal::new(0.0, 1.0);
        let mut r = rng(2);
        let n = 400_000;
        let beyond = (0..n).filter(|_| d.sample(&mut r) > 1.96).count();
        let frac = beyond as f64 / n as f64;
        assert!((frac - 0.025).abs() < 0.002, "P(Z>1.96) estimate {frac}");
    }

    #[test]
    fn fill_standard_matches_scalar_draws() {
        // Every fill length (even, odd, zero) and alignment state must
        // reproduce the scalar draw sequence bit-for-bit and leave the RNG
        // at the same position — the batched generators rely on this.
        let lens = [0usize, 1, 2, 3, 8, 31, 64, 2, 0, 5];
        let mut scalar = Normal::new(0.0, 1.0);
        let mut batched = Normal::new(0.0, 1.0);
        let mut rs = rng(42);
        let mut rb = rng(42);
        for &len in &lens {
            let want: Vec<f64> = (0..len).map(|_| scalar.standard(&mut rs)).collect();
            let mut got = vec![0.0; len];
            batched.fill_standard(&mut got, &mut rb);
            for (i, (w, g)) in want.iter().zip(&got).enumerate() {
                assert_eq!(w.to_bits(), g.to_bits(), "len {len}, draw {i}");
            }
            assert_eq!(scalar.has_spare(), batched.has_spare(), "len {len}");
        }
        use rand::RngCore;
        assert_eq!(rs.next_u64(), rb.next_u64(), "RNG positions diverged");
    }

    #[test]
    fn fill_standard_moments_and_lag1() {
        // Statistical acceptance for the bulk path itself: the pair-fill
        // loop writes both polar deviates of each accepted pair directly,
        // so a sign or ordering bug there would show up as a non-zero
        // lag-1 correlation between consecutive outputs even while the
        // marginal moments stay correct.
        let mut d = Normal::new(0.0, 1.0);
        let mut r = rng(0x51A7);
        let n = 400_001; // odd on purpose: exercises the trailing element
        let mut out = vec![0.0; n];
        d.fill_standard(&mut out, &mut r);
        let (mean, var) = moments(&out);
        assert!(mean.abs() < 0.006, "fill_standard mean {mean}");
        assert!((var - 1.0).abs() < 0.01, "fill_standard var {var}");
        let lag1: f64 = out.windows(2).map(|w| w[0] * w[1]).sum::<f64>() / (n - 1) as f64;
        assert!(lag1.abs() < 0.006, "fill_standard lag-1 correlation {lag1}");
        // Skewness and excess kurtosis of the standard normal are 0.
        let skew: f64 = out.iter().map(|&z| z.powi(3)).sum::<f64>() / n as f64;
        let kurt: f64 = out.iter().map(|&z| z.powi(4)).sum::<f64>() / n as f64 - 3.0;
        assert!(skew.abs() < 0.02, "fill_standard skewness {skew}");
        assert!(kurt.abs() < 0.05, "fill_standard excess kurtosis {kurt}");
    }

    #[test]
    fn fill_standard_chunked_moments_with_spare_carry() {
        // Odd-sized chunks force the spare cache across every call
        // boundary; the concatenated stream must still be iid N(0,1).
        let mut d = Normal::new(0.0, 1.0);
        let mut r = rng(0x51A8);
        let mut out = Vec::with_capacity(300_000);
        let mut buf = vec![0.0; 37];
        while out.len() < 300_000 {
            d.fill_standard(&mut buf, &mut r);
            out.extend_from_slice(&buf);
        }
        let (mean, var) = moments(&out);
        assert!(mean.abs() < 0.008, "chunked mean {mean}");
        assert!((var - 1.0).abs() < 0.012, "chunked var {var}");
        let lag1: f64 =
            out.windows(2).map(|w| w[0] * w[1]).sum::<f64>() / (out.len() - 1) as f64;
        assert!(lag1.abs() < 0.008, "chunked lag-1 correlation {lag1}");
    }

    #[test]
    #[should_panic]
    fn normal_rejects_negative_sd() {
        Normal::new(0.0, -1.0);
    }

    #[test]
    fn poisson_small_mean_matches_pmf() {
        let d = Poisson::new(3.0);
        let mut r = rng(3);
        let n = 200_000;
        let mut counts = [0usize; 12];
        for _ in 0..n {
            let k = d.sample(&mut r) as usize;
            if k < counts.len() {
                counts[k] += 1;
            }
        }
        // P(X=3) for mean 3 = 0.2240
        let p3 = counts[3] as f64 / n as f64;
        assert!((p3 - 0.224_0).abs() < 0.005, "P(X=3) {p3}");
        let p0 = counts[0] as f64 / n as f64;
        assert!((p0 - (-3.0_f64).exp()).abs() < 0.003, "P(X=0) {p0}");
    }

    #[test]
    fn poisson_zero_mean() {
        let d = Poisson::new(0.0);
        let mut r = rng(4);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut r), 0);
        }
    }

    #[test]
    fn poisson_large_mean_moments() {
        // PTRD branch: mean and variance must both equal the Poisson mean.
        for &mean in &[15.0, 250.0, 5_000.0] {
            let d = Poisson::new(mean);
            let mut r = rng(5);
            let xs: Vec<f64> = (0..120_000).map(|_| d.sample(&mut r) as f64).collect();
            let (m, v) = moments(&xs);
            let tol = 5.0 * (mean / 120_000.0_f64).sqrt().max(0.02 * mean / 100.0);
            assert!((m - mean).abs() < tol.max(0.5), "mean {m} vs {mean}");
            assert!(
                (v - mean).abs() < 0.05 * mean,
                "var {v} vs {mean} (PTRD branch)"
            );
        }
    }

    #[test]
    fn poisson_large_mean_skewness() {
        // Poisson skewness is 1/sqrt(mean); PTRD must reproduce the asymmetry.
        let mean = 100.0;
        let d = Poisson::new(mean);
        let mut r = rng(6);
        let n = 300_000;
        let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut r) as f64).collect();
        let (m, v) = moments(&xs);
        let sd = v.sqrt();
        let skew = xs.iter().map(|x| ((x - m) / sd).powi(3)).sum::<f64>() / n as f64;
        assert!((skew - 0.1).abs() < 0.02, "skewness {skew} vs 0.1");
    }

    #[test]
    fn poisson_boundary_mean_10() {
        // Methods must agree across the switch point.
        for &mean in &[9.99, 10.0, 10.01] {
            let d = Poisson::new(mean);
            let mut r = rng(7);
            let m: f64 =
                (0..100_000).map(|_| d.sample(&mut r) as f64).sum::<f64>() / 100_000.0;
            assert!((m - mean).abs() < 0.1, "mean {m} at switch {mean}");
        }
    }

    #[test]
    fn exponential_mean() {
        let d = Exponential::new(0.25);
        let mut r = rng(8);
        let m: f64 = (0..200_000).map(|_| d.sample(&mut r)).sum::<f64>() / 200_000.0;
        assert!((m - 4.0).abs() < 0.05, "mean {m}");
    }

    #[test]
    fn alias_table_frequencies() {
        let weights = [0.1, 0.2, 0.3, 0.4];
        let t = AliasTable::new(&weights);
        let mut r = rng(9);
        let n = 400_000;
        let mut counts = [0usize; 4];
        for _ in 0..n {
            counts[t.sample(&mut r)] += 1;
        }
        for (i, &w) in weights.iter().enumerate() {
            let f = counts[i] as f64 / n as f64;
            assert!((f - w).abs() < 0.005, "cat {i}: {f} vs {w}");
        }
    }

    #[test]
    fn alias_table_single_category() {
        let t = AliasTable::new(&[5.0]);
        let mut r = rng(10);
        for _ in 0..100 {
            assert_eq!(t.sample(&mut r), 0);
        }
    }

    #[test]
    fn alias_table_with_zero_weight() {
        let t = AliasTable::new(&[0.0, 1.0, 0.0]);
        let mut r = rng(11);
        for _ in 0..1000 {
            assert_eq!(t.sample(&mut r), 1);
        }
    }

    #[test]
    #[should_panic]
    fn alias_table_rejects_all_zero() {
        AliasTable::new(&[0.0, 0.0]);
    }

    #[test]
    fn gamma_moments() {
        for &(shape, scale) in &[(0.5, 2.0), (2.5, 1.5), (20.0, 0.3)] {
            let d = Gamma::new(shape, scale);
            let mut r = rng(12);
            let xs: Vec<f64> = (0..150_000).map(|_| d.sample(&mut r)).collect();
            let (m, v) = moments(&xs);
            let em = shape * scale;
            let ev = shape * scale * scale;
            assert!((m - em).abs() < 0.03 * em.max(1.0), "mean {m} vs {em}");
            assert!((v - ev).abs() < 0.08 * ev.max(1.0), "var {v} vs {ev}");
        }
    }

    #[test]
    fn gamma_always_positive() {
        let d = Gamma::new(0.3, 1.0);
        let mut r = rng(13);
        for _ in 0..10_000 {
            assert!(d.sample(&mut r) >= 0.0);
        }
    }

    #[test]
    fn negative_binomial_moments() {
        let d = NegativeBinomial::from_mean_variance(500.0, 5000.0);
        assert!((d.mean() - 500.0).abs() < 1e-9);
        assert!((d.variance() - 5000.0).abs() < 1e-9);
        let mut r = rng(14);
        let xs: Vec<f64> = (0..150_000).map(|_| d.sample(&mut r) as f64).collect();
        let (m, v) = moments(&xs);
        assert!((m - 500.0).abs() < 2.0, "mean {m}");
        assert!((v - 5000.0).abs() < 200.0, "var {v}");
    }

    #[test]
    #[should_panic]
    fn negative_binomial_rejects_underdispersion() {
        NegativeBinomial::from_mean_variance(500.0, 400.0);
    }

    #[test]
    fn overshoot_mean_matches_paper_anchor() {
        // N = 30 aggregated sources: N(15000, 30*5000), capacity 30*538.
        // The paper reports the zero-buffer CLR "slightly larger than 1e-5".
        let mean = 30.0 * 500.0;
        let sd = (30.0 * 5000.0_f64).sqrt();
        let c = 30.0 * 538.0;
        let clr0 = gaussian_overshoot_mean(mean, sd, c) / mean;
        assert!(
            clr0 > 1.0e-5 && clr0 < 1.5e-5,
            "zero-buffer CLR anchor {clr0:e}"
        );
    }

    #[test]
    fn overshoot_degenerate_sd() {
        assert_eq!(gaussian_overshoot_mean(5.0, 0.0, 3.0), 2.0);
        assert_eq!(gaussian_overshoot_mean(2.0, 0.0, 3.0), 0.0);
    }
}

//! Whittle maximum-likelihood estimation of the Hurst parameter.
//!
//! The estimator Beran et al. used in the study that sparked the LRD-video
//! debate ("Long-range dependence in VBR video traffic"): fit the fractional
//! Gaussian noise spectral density to the periodogram by minimizing the
//! Whittle objective
//!
//! ```text
//! Q(H) = log( (1/m) Σⱼ I(ωⱼ)/f_H(ωⱼ) ) + (1/m) Σⱼ log f_H(ωⱼ)
//! ```
//!
//! (the scale-free form — the variance is profiled out). The FGN spectral
//! density is the aliased power law
//!
//! ```text
//! f_H(ω) ∝ (1 − cos ω) Σ_{j∈Z} |ω + 2πj|^{−(2H+1)}
//! ```
//!
//! evaluated with a truncated sum plus an integral tail correction. Whittle
//! is the most statistically efficient of the classical estimators (R/S,
//! aggregated variance, GPH) and serves as the reference in tests.

use crate::fft::periodogram;

/// FGN spectral density shape at angular frequency `w ∈ (0, π]`, up to a
/// constant factor (the Whittle objective is scale-invariant).
pub fn fgn_spectral_shape(w: f64, h: f64) -> f64 {
    assert!(w > 0.0 && w <= std::f64::consts::PI + 1e-12, "bad freq {w}");
    let exponent = 2.0 * h + 1.0;
    let mut sum = w.powf(-exponent);
    // Aliases j = ±1..=J, then integral tail: ∫_J^∞ (2πx)^{-e} dx pairs.
    const J: i32 = 64;
    for j in 1..=J {
        let a = (w + 2.0 * std::f64::consts::PI * j as f64).powf(-exponent);
        let b = (2.0 * std::f64::consts::PI * j as f64 - w).powf(-exponent);
        sum += a + b;
    }
    // Tail correction: Σ_{j>J} [(2πj+w)^-e + (2πj-w)^-e] ≈ 2 ∫_{J+1/2}^∞
    // (2πx)^-e dx = 2 (2π)^-e (J+1/2)^{1-e}/(e-1).
    let tail = 2.0 * (2.0 * std::f64::consts::PI).powf(-exponent)
        * (J as f64 + 0.5).powf(1.0 - exponent)
        / (exponent - 1.0);
    sum += tail;
    2.0 * (1.0 - w.cos()) * sum
}

/// Whittle estimate of H for a (zero-mean-adjusted internally) series.
///
/// Returns the minimizing H in `(0.51, 0.995)` together with the attained
/// objective. Use at least a few thousand points for a stable estimate.
///
/// # Panics
/// Panics if the series is shorter than 256 points.
pub fn whittle_hurst(series: &[f64]) -> (f64, f64) {
    assert!(
        series.len() >= 256,
        "Whittle needs >= 256 points, got {}",
        series.len()
    );
    let pg = periodogram(series);

    let objective = |h: f64| -> f64 {
        let mut ratio_sum = 0.0;
        let mut log_sum = 0.0;
        for &(w, i) in &pg {
            let f = fgn_spectral_shape(w, h);
            ratio_sum += i / f;
            log_sum += f.ln();
        }
        let m = pg.len() as f64;
        (ratio_sum / m).ln() + log_sum / m
    };

    // Golden-section search.
    let (mut lo, mut hi) = (0.51_f64, 0.995_f64);
    let phi = (5.0_f64.sqrt() - 1.0) / 2.0;
    let mut x1 = hi - phi * (hi - lo);
    let mut x2 = lo + phi * (hi - lo);
    let mut f1 = objective(x1);
    let mut f2 = objective(x2);
    while hi - lo > 1e-5 {
        if f1 < f2 {
            hi = x2;
            x2 = x1;
            f2 = f1;
            x1 = hi - phi * (hi - lo);
            f1 = objective(x1);
        } else {
            lo = x1;
            x1 = x2;
            f1 = f2;
            x2 = lo + phi * (hi - lo);
            f2 = objective(x2);
        }
    }
    let h = (lo + hi) / 2.0;
    (h, objective(h))
}

/// Robinson's **local Whittle** estimator: fits the pure power law
/// `f(ω) ∝ ω^{1−2H}` over only the lowest `m` Fourier frequencies,
/// minimizing `R(H) = log((1/m) Σ I_j ω_j^{2H−1}) − (2H−1)(1/m) Σ log ω_j`.
///
/// Unlike the full-band FGN Whittle fit, local Whittle is robust to
/// arbitrary short-range dynamics (an AR(1) component biases the full-band
/// fit all the way to the H boundary; it barely moves this one) — which is
/// the right tool for the paper's `Z^a` models, whose short lags are
/// dominated by the DAR(1) component.
///
/// `m = 0` selects the default bandwidth `⌊n^0.65⌋`.
///
/// # Panics
/// Panics if the series is shorter than 256 points or `m` exceeds the
/// available frequencies.
pub fn local_whittle_hurst(series: &[f64], m: usize) -> f64 {
    assert!(
        series.len() >= 256,
        "local Whittle needs >= 256 points, got {}",
        series.len()
    );
    let pg = periodogram(series);
    let m = if m == 0 {
        ((series.len() as f64).powf(0.65) as usize).clamp(8, pg.len())
    } else {
        assert!(m >= 4 && m <= pg.len(), "invalid bandwidth {m}");
        m
    };
    let band = &pg[..m];
    let mean_log_w: f64 = band.iter().map(|&(w, _)| w.ln()).sum::<f64>() / m as f64;

    let objective = |h: f64| -> f64 {
        let g: f64 = band
            .iter()
            .map(|&(w, i)| i * w.powf(2.0 * h - 1.0))
            .sum::<f64>()
            / m as f64;
        g.ln() - (2.0 * h - 1.0) * mean_log_w
    };

    let (mut lo, mut hi) = (0.01_f64, 0.999_f64);
    let phi = (5.0_f64.sqrt() - 1.0) / 2.0;
    let mut x1 = hi - phi * (hi - lo);
    let mut x2 = lo + phi * (hi - lo);
    let mut f1 = objective(x1);
    let mut f2 = objective(x2);
    while hi - lo > 1e-5 {
        if f1 < f2 {
            hi = x2;
            x2 = x1;
            f2 = f1;
            x1 = hi - phi * (hi - lo);
            f1 = objective(x1);
        } else {
            lo = x1;
            x1 = x2;
            f1 = f2;
            x2 = lo + phi * (hi - lo);
            f2 = objective(x2);
        }
    }
    (lo + hi) / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Normal;
    use crate::rng::Xoshiro256PlusPlus;

    #[test]
    fn spectral_shape_is_positive_and_decreasing() {
        let h = 0.8;
        let mut prev = f64::INFINITY;
        for i in 1..=100 {
            let w = std::f64::consts::PI * i as f64 / 100.0;
            let f = fgn_spectral_shape(w, h);
            assert!(f > 0.0);
            assert!(f < prev, "FGN spectrum must decrease on (0, pi]");
            prev = f;
        }
    }

    #[test]
    fn spectral_shape_low_freq_power_law() {
        // f(w) ~ w^{1-2H} as w -> 0.
        let h = 0.9;
        let f1 = fgn_spectral_shape(1e-3, h);
        let f2 = fgn_spectral_shape(2e-3, h);
        let slope = (f2 / f1).ln() / 2.0_f64.ln();
        assert!(
            (slope - (1.0 - 2.0 * h)).abs() < 0.01,
            "low-frequency slope {slope} vs {}",
            1.0 - 2.0 * h
        );
    }

    #[test]
    fn whittle_on_white_noise_pins_low_boundary() {
        let mut rng = Xoshiro256PlusPlus::from_seed_u64(171);
        let mut d = Normal::new(0.0, 1.0);
        let series: Vec<f64> = (0..16_384).map(|_| d.sample(&mut rng)).collect();
        let (h, _) = whittle_hurst(&series);
        assert!(h < 0.56, "white noise H estimate {h} should pin near 0.51");
    }

    #[test]
    fn local_whittle_robust_to_ar1_dynamics() {
        // AR(1) is SRD: its spectrum is flat at low frequencies. The
        // full-band FGN-Whittle fit is *misspecified* here and pins to the
        // boundary (a known pathology); the local Whittle estimator reads
        // only the low-frequency band and stays near 0.5.
        let mut rng = Xoshiro256PlusPlus::from_seed_u64(172);
        let mut d = Normal::new(0.0, 1.0);
        let mut x = 0.0;
        let series: Vec<f64> = (0..32_768)
            .map(|_| {
                x = 0.7 * x + d.sample(&mut rng);
                x
            })
            .collect();
        let h = local_whittle_hurst(&series, 0);
        assert!(h < 0.72, "AR(1) local-Whittle H {h} must stay below LRD range");
    }

    #[test]
    fn local_whittle_white_noise_near_half() {
        let mut rng = Xoshiro256PlusPlus::from_seed_u64(173);
        let mut d = Normal::new(0.0, 1.0);
        let series: Vec<f64> = (0..16_384).map(|_| d.sample(&mut rng)).collect();
        let h = local_whittle_hurst(&series, 0);
        assert!((h - 0.5).abs() < 0.12, "white noise local-Whittle H {h}");
    }
}

//! Confidence intervals for replication estimates.
//!
//! The simulation harness runs independent replications and reports the mean
//! CLR with a Student-t interval across replications — the same procedure the
//! paper's "60 replications, half a million frames each" protocol implies.

use crate::special::normal_quantile;

/// Two-sided confidence interval for a mean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Point estimate (sample mean across replications).
    pub mean: f64,
    /// Half-width of the interval.
    pub half_width: f64,
    /// Confidence level used, e.g. 0.95.
    pub level: f64,
    /// Number of replications.
    pub n: usize,
}

impl ConfidenceInterval {
    /// Builds a Student-t interval from replication values.
    ///
    /// With a single replication the half-width is reported as infinite —
    /// the honest answer, not zero.
    ///
    /// # Panics
    /// Panics if `values` is empty or `level` is not in (0, 1).
    pub fn from_samples(values: &[f64], level: f64) -> Self {
        assert!(!values.is_empty(), "no replications");
        assert!(level > 0.0 && level < 1.0, "invalid level {level}");
        let n = values.len();
        let mean = values.iter().sum::<f64>() / n as f64;
        if n == 1 {
            return Self {
                mean,
                half_width: f64::INFINITY,
                level,
                n,
            };
        }
        let var = values.iter().map(|&x| (x - mean).powi(2)).sum::<f64>() / (n as f64 - 1.0);
        let t = t_quantile(1.0 - (1.0 - level) / 2.0, (n - 1) as f64);
        Self {
            mean,
            half_width: t * (var / n as f64).sqrt(),
            level,
            n,
        }
    }

    /// Lower endpoint.
    pub fn lo(&self) -> f64 {
        self.mean - self.half_width
    }

    /// Upper endpoint.
    pub fn hi(&self) -> f64 {
        self.mean + self.half_width
    }

    /// True if `value` lies inside the interval.
    pub fn contains(&self, value: f64) -> bool {
        value >= self.lo() && value <= self.hi()
    }

    /// Relative half-width `half_width / |mean|` (∞ when the mean is 0).
    pub fn relative_half_width(&self) -> f64 {
        if self.mean == 0.0 {
            f64::INFINITY
        } else {
            self.half_width / self.mean.abs()
        }
    }
}

/// Quantile of the Student-t distribution with `df` degrees of freedom.
///
/// Uses the Cornish–Fisher-type expansion of the t quantile around the
/// normal quantile (Hill, 1970) — accurate to ~1e-4 for df ≥ 3 and converges
/// to the normal quantile as df → ∞, which is plenty for reporting
/// simulation error bars.
pub fn t_quantile(p: f64, df: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "invalid p {p}");
    assert!(df >= 1.0, "invalid df {df}");
    let z = normal_quantile(p);
    if df > 300.0 {
        return z;
    }
    // Cornish–Fisher expansion in 1/df.
    let z2 = z * z;
    let g1 = (z2 + 1.0) * z / 4.0;
    let g2 = ((5.0 * z2 + 16.0) * z2 + 3.0) * z / 96.0;
    let g3 = (((3.0 * z2 + 19.0) * z2 + 17.0) * z2 - 15.0) * z / 384.0;
    let g4 = ((((79.0 * z2 + 776.0) * z2 + 1482.0) * z2 - 1920.0) * z2 - 945.0) * z / 92_160.0;
    z + g1 / df + g2 / df.powi(2) + g3 / df.powi(3) + g4 / df.powi(4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t_quantile_reference_values() {
        // t_{0.975, df}: df=5 -> 2.5706, df=10 -> 2.2281, df=30 -> 2.0423,
        // df=59 -> 2.0010 (the paper's 60-replication setting).
        let cases = [(5.0, 2.5706), (10.0, 2.2281), (30.0, 2.0423), (59.0, 2.0010)];
        for (df, expect) in cases {
            let t = t_quantile(0.975, df);
            assert!((t - expect).abs() < 0.02, "df={df}: {t} vs {expect}");
        }
    }

    #[test]
    fn t_quantile_converges_to_normal() {
        let z = normal_quantile(0.975);
        assert!((t_quantile(0.975, 1e6) - z).abs() < 1e-6);
    }

    #[test]
    fn interval_contains_truth_for_iid_normals() {
        use crate::dist::Normal;
        use crate::rng::Xoshiro256PlusPlus;
        let mut rng = Xoshiro256PlusPlus::from_seed_u64(51);
        let mut d = Normal::new(10.0, 3.0);
        let mut covered = 0;
        let trials = 400;
        for _ in 0..trials {
            let xs: Vec<f64> = (0..20).map(|_| d.sample(&mut rng)).collect();
            if ConfidenceInterval::from_samples(&xs, 0.95).contains(10.0) {
                covered += 1;
            }
        }
        let rate = covered as f64 / trials as f64;
        assert!(
            rate > 0.91 && rate < 0.99,
            "95% CI empirical coverage {rate}"
        );
    }

    #[test]
    fn single_replication_is_honest() {
        let ci = ConfidenceInterval::from_samples(&[5.0], 0.95);
        assert_eq!(ci.mean, 5.0);
        assert!(ci.half_width.is_infinite());
    }

    #[test]
    fn interval_endpoints_and_relative_width() {
        let ci = ConfidenceInterval::from_samples(&[1.0, 2.0, 3.0], 0.95);
        assert!((ci.mean - 2.0).abs() < 1e-12);
        assert!(ci.lo() < 2.0 && ci.hi() > 2.0);
        assert!(ci.relative_half_width() > 0.0);
        assert!(ci.contains(2.0));
        assert!(!ci.contains(100.0));
    }

    #[test]
    #[should_panic]
    fn rejects_empty() {
        ConfidenceInterval::from_samples(&[], 0.95);
    }
}

//! Special functions: error function, log-gamma, and the standard normal
//! distribution functions.
//!
//! Loss-rate work lives deep in distribution tails (the paper studies cell
//! loss rates down to 10⁻⁶ and the Bahadur–Rao prefactor needs tail values
//! with good *relative* accuracy), so the error-function implementation here
//! is chosen for small relative — not absolute — error: a Chebyshev-style
//! rational approximation for `erfc` with fractional error below 1.2 × 10⁻⁷
//! everywhere, refined where needed by the quantile routine's Halley step.

/// Complementary error function `erfc(x) = 1 − erf(x)`.
///
/// Uses the Chebyshev fitting formula (Numerical Recipes §6.2); fractional
/// error everywhere less than 1.2 × 10⁻⁷, which keeps tail survival
/// probabilities accurate to ~7 significant digits even at `x ≈ 10`.
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t * (-z * z - 1.265_512_23
        + t * (1.000_023_68
            + t * (0.374_091_96
                + t * (0.096_784_18
                    + t * (-0.186_288_06
                        + t * (0.278_868_07
                            + t * (-1.135_203_98
                                + t * (1.488_515_87
                                    + t * (-0.822_152_23 + t * 0.170_872_77)))))))))
    .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Error function `erf(x)`.
pub fn erf(x: f64) -> f64 {
    1.0 - erfc(x)
}

/// Standard normal probability density function φ(x).
pub fn normal_pdf(x: f64) -> f64 {
    const INV_SQRT_2PI: f64 = 0.398_942_280_401_432_7;
    INV_SQRT_2PI * (-0.5 * x * x).exp()
}

/// Standard normal cumulative distribution function Φ(x).
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x * std::f64::consts::FRAC_1_SQRT_2)
}

/// Standard normal survival (upper-tail) function Q(x) = 1 − Φ(x).
///
/// Computed directly from `erfc` so that deep-tail values (e.g. Q(6) ≈ 10⁻⁹)
/// keep their relative accuracy instead of cancelling against 1.
pub fn normal_sf(x: f64) -> f64 {
    0.5 * erfc(x * std::f64::consts::FRAC_1_SQRT_2)
}

/// Inverse of the standard normal CDF (the probit function).
///
/// Acklam's rational approximation (relative error < 1.15 × 10⁻⁹) followed
/// by one Halley refinement step against [`normal_cdf`]/[`normal_sf`], giving
/// near machine precision over `(0, 1)`.
///
/// # Panics
/// Panics if `p` is not in the open interval `(0, 1)`.
pub fn normal_quantile(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "normal_quantile requires p in (0,1), got {p}"
    );

    // Acklam's coefficients.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;
    const P_HIGH: f64 = 1.0 - P_LOW;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= P_HIGH {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley step: e = Φ(x) − p, update x ← x − e/(φ(x) (1 + x e / 2φ)).
    let e = normal_cdf(x) - p;
    let u = e / normal_pdf(x);
    x - u / (1.0 + x * u / 2.0)
}

/// Natural log of the gamma function, `ln Γ(x)` for `x > 0`.
///
/// Lanczos approximation (g = 7, 9 coefficients), accurate to ~15 significant
/// digits; used by the PTRD Poisson sampler's acceptance test.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula keeps accuracy for small x.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// `ln(k!)` for non-negative integer `k`, exact for small `k` via a table.
pub fn ln_factorial(k: u64) -> f64 {
    // Exact doubles for 0! .. 20!.
    const TABLE: [f64; 21] = [
        1.0,
        1.0,
        2.0,
        6.0,
        24.0,
        120.0,
        720.0,
        5_040.0,
        40_320.0,
        362_880.0,
        3_628_800.0,
        39_916_800.0,
        479_001_600.0,
        6_227_020_800.0,
        87_178_291_200.0,
        1_307_674_368_000.0,
        20_922_789_888_000.0,
        355_687_428_096_000.0,
        6_402_373_705_728_000.0,
        121_645_100_408_832_000.0,
        2_432_902_008_176_640_000.0,
    ];
    if k <= 20 {
        TABLE[k as usize].ln()
    } else {
        ln_gamma(k as f64 + 1.0)
    }
}

/// Hurwitz zeta function `ζ(s, a) = Σ_{k≥0} (a + k)^{-s}` for `s > 1`, `a > 0`.
///
/// Euler–Maclaurin summation: direct terms until `a + k ≥ 32`, then the
/// integral tail with three Bernoulli corrections. For `s ∈ (1, 4)` — the
/// range the heavy-tailed sojourn models use — the result is accurate to
/// ~1e-14 relative.
pub fn hurwitz_zeta(s: f64, a: f64) -> f64 {
    assert!(s > 1.0, "hurwitz_zeta requires s > 1, got {s}");
    assert!(a > 0.0, "hurwitz_zeta requires a > 0, got {a}");
    // Direct sum of the first terms.
    let n = if a >= 32.0 {
        0
    } else {
        (32.0 - a).ceil() as usize
    };
    let mut sum = 0.0;
    for k in 0..n {
        sum += (a + k as f64).powf(-s);
    }
    // Euler–Maclaurin tail starting at x = a + n ≥ 32.
    let x = a + n as f64;
    sum += x.powf(1.0 - s) / (s - 1.0);
    sum += 0.5 * x.powf(-s);
    // Bernoulli corrections: B2/2! s x^{-s-1}, B4/4! s(s+1)(s+2) x^{-s-3}, ...
    let x2 = x * x;
    let mut term = s * x.powf(-s - 1.0);
    sum += term / 12.0; // B2 = 1/6, 2! = 2
    term *= (s + 1.0) * (s + 2.0) / x2;
    sum -= term / 720.0; // B4 = -1/30, 4! = 24
    term *= (s + 3.0) * (s + 4.0) / x2;
    sum += term / 30_240.0; // B6 = 1/42, 6! = 720
    sum
}

/// Riemann zeta function `ζ(s)` for `s > 1`.
///
/// The mean sojourn time of the discrete-Pareto (Zipf-tail) distribution
/// `P(K ≥ k) = k^{-γ}` is `ζ(γ)`, which the Clegg–Dodson Markov-chain model
/// needs for its equilibrium (residual-life) start.
pub fn riemann_zeta(s: f64) -> f64 {
    hurwitz_zeta(s, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64, what: &str) {
        assert!(
            (a - b).abs() <= tol * b.abs().max(1.0),
            "{what}: {a} vs {b}"
        );
    }

    #[test]
    fn erf_reference_values() {
        // Values from Abramowitz & Stegun tables. The Chebyshev fit has
        // absolute error ~1.2e-7, so anchors use that scale.
        assert!((erf(0.0)).abs() < 1e-6);
        assert_close(erf(0.5), 0.520_499_877_8, 1e-6, "erf(0.5)");
        assert_close(erf(1.0), 0.842_700_792_9, 1e-6, "erf(1)");
        assert_close(erf(2.0), 0.995_322_265_0, 1e-6, "erf(2)");
        assert_close(erf(-1.0), -0.842_700_792_9, 1e-6, "erf(-1)");
    }

    #[test]
    fn erfc_deep_tail_relative_accuracy() {
        // erfc(3) = 2.209049699858544e-5, erfc(5) = 1.5374597944280351e-12
        assert_close(erfc(3.0), 2.209_049_699_858_544e-5, 1e-6, "erfc(3)");
        assert_close(erfc(5.0), 1.537_459_794_428_035e-12, 1e-6, "erfc(5)");
    }

    #[test]
    fn normal_cdf_symmetry_and_anchors() {
        assert_close(normal_cdf(0.0), 0.5, 1e-7, "Phi(0)");
        assert_close(normal_cdf(1.96), 0.975_002_104_85, 1e-6, "Phi(1.96)");
        for &x in &[0.3, 1.1, 2.5, 4.0] {
            assert_close(
                normal_cdf(x) + normal_cdf(-x),
                1.0,
                1e-6,
                "Phi symmetry",
            );
        }
    }

    #[test]
    fn normal_sf_tail_values() {
        // Q(3) = 1.349898e-3, Q(6) = 9.865876e-10
        assert_close(normal_sf(3.0), 1.349_898_031_630_095e-3, 1e-6, "Q(3)");
        assert_close(normal_sf(6.0), 9.865_876_450_376_98e-10, 1e-5, "Q(6)");
    }

    #[test]
    fn quantile_inverts_cdf() {
        for &p in &[1e-9, 1e-6, 1e-3, 0.1, 0.25, 0.5, 0.75, 0.9, 0.999, 1.0 - 1e-7] {
            let x = normal_quantile(p);
            assert_close(normal_cdf(x), p, 1e-6, "Phi(Phi^-1(p))");
        }
        assert!((normal_quantile(0.5)).abs() < 1e-6);
        assert_close(normal_quantile(0.975), 1.959_963_984_540_054, 1e-6, "z_.975");
    }

    #[test]
    #[should_panic]
    fn quantile_rejects_zero() {
        normal_quantile(0.0);
    }

    #[test]
    fn ln_gamma_reference_values() {
        assert!((ln_gamma(1.0)).abs() < 1e-12);
        assert!((ln_gamma(2.0)).abs() < 1e-12);
        assert_close(ln_gamma(0.5), 0.5 * std::f64::consts::PI.ln(), 1e-12, "lnG(0.5)");
        assert_close(ln_gamma(10.0), 362_880.0_f64.ln(), 1e-12, "lnG(10)=ln 9!");
        assert_close(ln_gamma(100.5), 361.435_540_467_78, 1e-10, "lnG(100.5)");
    }

    #[test]
    fn ln_gamma_recurrence() {
        // Γ(x+1) = x Γ(x) across several magnitudes.
        for &x in &[0.7, 1.3, 3.9, 12.4, 250.0] {
            let lhs = ln_gamma(x + 1.0);
            let rhs = x.ln() + ln_gamma(x);
            assert_close(lhs, rhs, 1e-12, "Gamma recurrence");
        }
    }

    #[test]
    fn ln_factorial_matches_gamma() {
        for k in 0..30u64 {
            assert_close(
                ln_factorial(k),
                ln_gamma(k as f64 + 1.0),
                1e-10,
                "ln k! vs lnGamma",
            );
        }
    }

    #[test]
    fn riemann_zeta_reference_values() {
        let pi = std::f64::consts::PI;
        assert_close(riemann_zeta(2.0), pi * pi / 6.0, 1e-13, "zeta(2)");
        assert_close(riemann_zeta(4.0), pi.powi(4) / 90.0, 1e-13, "zeta(4)");
        // Reference values for the exponents the sojourn models use,
        // cross-checked against a 10⁷-term direct sum with integral tail.
        assert_close(riemann_zeta(1.2), 5.591_582_441_177_75, 1e-12, "zeta(1.2)");
        assert_close(riemann_zeta(1.5), 2.612_375_348_685_49, 1e-12, "zeta(1.5)");
        assert_close(riemann_zeta(1.8), 1.882_229_618_102_75, 1e-12, "zeta(1.8)");
    }

    #[test]
    fn hurwitz_zeta_recurrence_and_tail() {
        // ζ(s, a) = a^{-s} + ζ(s, a+1) across the direct-sum / tail boundary.
        for &s in &[1.1, 1.5, 1.9, 3.0] {
            for &a in &[0.5, 1.0, 7.0, 31.5, 100.0] {
                let lhs = hurwitz_zeta(s, a);
                let rhs = a.powf(-s) + hurwitz_zeta(s, a + 1.0);
                assert_close(lhs, rhs, 1e-13, "hurwitz recurrence");
            }
        }
        // Brute-force cross-check at a point with a slowly convergent tail.
        let s = 1.7;
        let a = 3.0;
        let mut brute = 0.0;
        for k in 0..2_000_000u64 {
            brute += (a + k as f64).powf(-s);
        }
        // Integral remainder of the truncated brute-force sum.
        brute += (a + 2e6).powf(1.0 - s) / (s - 1.0);
        assert_close(hurwitz_zeta(s, a), brute, 1e-7, "hurwitz vs brute force");
    }
}

//! Iterative radix-2 complex FFT.
//!
//! Two consumers in the workspace: the FFT-based sample-autocorrelation
//! estimator (O(n log n) instead of O(n·K) for K lags) and the Davies–Harte
//! circulant-embedding generator for exact fractional Gaussian noise. Both
//! control their own input lengths, so a power-of-two-only transform with an
//! explicit [`next_pow2`] helper keeps the implementation simple and robust —
//! the smoltcp school of "simplicity over cleverness".

/// A complex number. Minimal on purpose: only the operations the FFT and its
/// consumers need.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Creates a complex number.
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// The additive identity.
    pub const ZERO: Self = Self::new(0.0, 0.0);

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }

    /// Squared modulus `|z|²`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }
}

impl std::ops::Add for Complex {
    type Output = Self;

    #[inline]
    fn add(self, other: Self) -> Self {
        Self::new(self.re + other.re, self.im + other.im)
    }
}

impl std::ops::Sub for Complex {
    type Output = Self;

    #[inline]
    fn sub(self, other: Self) -> Self {
        Self::new(self.re - other.re, self.im - other.im)
    }
}

impl std::ops::Mul for Complex {
    type Output = Self;

    #[inline]
    fn mul(self, other: Self) -> Self {
        Self::new(
            self.re * other.re - self.im * other.im,
            self.re * other.im + self.im * other.re,
        )
    }
}

/// Smallest power of two that is `>= n` (and at least 1).
pub fn next_pow2(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

/// In-place forward FFT: `X[k] = Σ_j x[j] e^{-2πi jk/n}`.
///
/// # Panics
/// Panics if the length is not a power of two.
pub fn fft(data: &mut [Complex]) {
    transform(data, -1.0);
}

/// In-place inverse FFT, normalized by `1/n` so that `ifft(fft(x)) == x`.
///
/// # Panics
/// Panics if the length is not a power of two.
pub fn ifft(data: &mut [Complex]) {
    transform(data, 1.0);
    let n = data.len() as f64;
    for z in data.iter_mut() {
        z.re /= n;
        z.im /= n;
    }
}

fn transform(data: &mut [Complex], sign: f64) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT length {n} must be a power of two");
    if n <= 1 {
        return;
    }

    // Bit-reversal permutation.
    let shift = n.leading_zeros() + 1;
    for i in 0..n {
        let j = i.reverse_bits() >> shift;
        if j > i {
            data.swap(i, j);
        }
    }

    // Danielson–Lanczos butterflies.
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::new(ang.cos(), ang.sin());
        for start in (0..n).step_by(len) {
            let mut w = Complex::new(1.0, 0.0);
            for k in 0..len / 2 {
                let a = data[start + k];
                let b = data[start + k + len / 2] * w;
                data[start + k] = a + b;
                data[start + k + len / 2] = a - b;
                w = w * wlen;
            }
        }
        len <<= 1;
    }
}

/// Periodogram of a real series at the Fourier frequencies
/// `ω_j = 2πj/n`, `j = 1 .. ⌊n/2⌋`:
/// `I(ω_j) = |Σ_t x_t e^{-i ω_j t}|² / (2πn)`.
///
/// The series is **not** padded: the periodogram is only meaningful at the
/// exact Fourier frequencies of the observed length, so the input is
/// truncated to the largest power of two to keep the radix-2 transform
/// applicable (the GPH estimator only uses the lowest ~√n frequencies, which
/// truncation barely perturbs).
pub fn periodogram(series: &[f64]) -> Vec<(f64, f64)> {
    let n = prev_pow2(series.len());
    assert!(n >= 4, "periodogram needs at least 4 observations");
    let mut buf: Vec<Complex> = series[..n]
        .iter()
        .map(|&x| Complex::new(x, 0.0))
        .collect();
    fft(&mut buf);
    let norm = 2.0 * std::f64::consts::PI * n as f64;
    (1..=n / 2)
        .map(|j| {
            let freq = 2.0 * std::f64::consts::PI * j as f64 / n as f64;
            (freq, buf[j].norm_sqr() / norm)
        })
        .collect()
}

/// Largest power of two that is `<= n` (0 maps to 0).
pub fn prev_pow2(n: usize) -> usize {
    if n == 0 {
        0
    } else {
        1 << (usize::BITS - 1 - n.leading_zeros())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut data = vec![Complex::ZERO; 8];
        data[0] = Complex::new(1.0, 0.0);
        fft(&mut data);
        for z in &data {
            assert_close(z.re, 1.0, 1e-12);
            assert_close(z.im, 0.0, 1e-12);
        }
    }

    #[test]
    fn fft_of_constant_is_impulse() {
        let mut data = vec![Complex::new(1.0, 0.0); 16];
        fft(&mut data);
        assert_close(data[0].re, 16.0, 1e-12);
        for z in &data[1..] {
            assert_close(z.abs(), 0.0, 1e-10);
        }
    }

    #[test]
    fn fft_single_tone() {
        // x[t] = cos(2π·3t/32) has spectral mass at bins 3 and 29 only.
        let n = 32;
        let mut data: Vec<Complex> = (0..n)
            .map(|t| {
                Complex::new(
                    (2.0 * std::f64::consts::PI * 3.0 * t as f64 / n as f64).cos(),
                    0.0,
                )
            })
            .collect();
        fft(&mut data);
        for (k, z) in data.iter().enumerate() {
            let expect = if k == 3 || k == n - 3 { n as f64 / 2.0 } else { 0.0 };
            assert_close(z.abs(), expect, 1e-9);
        }
    }

    #[test]
    fn ifft_roundtrip() {
        let orig: Vec<Complex> = (0..64)
            .map(|i| Complex::new((i as f64).sin(), (i as f64 * 0.7).cos()))
            .collect();
        let mut data = orig.clone();
        fft(&mut data);
        ifft(&mut data);
        for (a, b) in data.iter().zip(&orig) {
            assert_close(a.re, b.re, 1e-10);
            assert_close(a.im, b.im, 1e-10);
        }
    }

    #[test]
    fn fft_matches_naive_dft() {
        let x: Vec<Complex> = (0..16)
            .map(|i| Complex::new((i as f64 * 1.3).sin(), (i as f64 * 0.4).cos()))
            .collect();
        let mut fast = x.clone();
        fft(&mut fast);
        let n = x.len();
        for (k, f) in fast.iter().enumerate() {
            let mut acc = Complex::ZERO;
            for (j, &xj) in x.iter().enumerate() {
                let ang = -2.0 * std::f64::consts::PI * (j * k) as f64 / n as f64;
                acc = acc + xj * Complex::new(ang.cos(), ang.sin());
            }
            assert_close(f.re, acc.re, 1e-9);
            assert_close(f.im, acc.im, 1e-9);
        }
    }

    #[test]
    fn parseval_identity() {
        let x: Vec<Complex> = (0..128)
            .map(|i| Complex::new((i as f64 * 0.11).sin(), 0.0))
            .collect();
        let time_energy: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let mut f = x.clone();
        fft(&mut f);
        let freq_energy: f64 = f.iter().map(|z| z.norm_sqr()).sum::<f64>() / x.len() as f64;
        assert_close(time_energy, freq_energy, 1e-9);
    }

    #[test]
    #[should_panic]
    fn fft_rejects_non_pow2() {
        let mut data = vec![Complex::ZERO; 12];
        fft(&mut data);
    }

    #[test]
    fn pow2_helpers() {
        assert_eq!(next_pow2(0), 1);
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(5), 8);
        assert_eq!(next_pow2(64), 64);
        assert_eq!(prev_pow2(0), 0);
        assert_eq!(prev_pow2(1), 1);
        assert_eq!(prev_pow2(63), 32);
        assert_eq!(prev_pow2(64), 64);
    }

    #[test]
    fn periodogram_white_noise_is_flat_on_average() {
        use crate::rng::Xoshiro256PlusPlus;
        use rand::Rng;
        let mut rng = Xoshiro256PlusPlus::from_seed_u64(12);
        let series: Vec<f64> = (0..4096).map(|_| rng.gen::<f64>() - 0.5).collect();
        let pg = periodogram(&series);
        // For white noise with variance 1/12, E[I(ω)] = σ²/(2π).
        let mean_i: f64 = pg.iter().map(|&(_, i)| i).sum::<f64>() / pg.len() as f64;
        let expect = (1.0 / 12.0) / (2.0 * std::f64::consts::PI);
        assert!(
            (mean_i - expect).abs() < 0.2 * expect,
            "mean periodogram {mean_i} vs {expect}"
        );
    }
}

//! Iterative radix-2 complex FFT with reusable plans.
//!
//! Two consumers in the workspace: the FFT-based sample-autocorrelation
//! estimator (O(n log n) instead of O(n·K) for K lags) and the Davies–Harte
//! circulant-embedding generator for exact fractional Gaussian noise. Both
//! control their own input lengths, so a power-of-two-only transform with an
//! explicit [`next_pow2`] helper keeps the implementation simple and robust —
//! the smoltcp school of "simplicity over cleverness".
//!
//! Transforms execute through an [`FftPlan`]: the bit-reversal permutation
//! and the twiddle factors `e^{-2πik/n}` are computed once per length and
//! reused for every block. Beyond the obvious speedup (the hot butterfly
//! loop loses its serial complex-multiply dependency chain), the table also
//! fixes an accuracy problem of the previous incremental `w = w·w_len`
//! recurrence, which accumulated rounding error across each stage's run of
//! butterflies — every twiddle is now an exact `cos`/`sin` evaluation, so
//! the transform error stays at a few ulps regardless of length (see the
//! `planned_fft_matches_naive_dft_at_65536` test).

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// A complex number. Minimal on purpose: only the operations the FFT and its
/// consumers need.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Creates a complex number.
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// The additive identity.
    pub const ZERO: Self = Self::new(0.0, 0.0);

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }

    /// Squared modulus `|z|²`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }
}

impl std::ops::Add for Complex {
    type Output = Self;

    #[inline]
    fn add(self, other: Self) -> Self {
        Self::new(self.re + other.re, self.im + other.im)
    }
}

impl std::ops::Sub for Complex {
    type Output = Self;

    #[inline]
    fn sub(self, other: Self) -> Self {
        Self::new(self.re - other.re, self.im - other.im)
    }
}

impl std::ops::Mul for Complex {
    type Output = Self;

    #[inline]
    fn mul(self, other: Self) -> Self {
        Self::new(
            self.re * other.re - self.im * other.im,
            self.re * other.im + self.im * other.re,
        )
    }
}

/// Smallest power of two that is `>= n` (and at least 1).
pub fn next_pow2(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

/// A reusable FFT plan for one power-of-two length: precomputed bit-reversal
/// indices and twiddle-factor table.
///
/// Building a plan costs one pass of `cos`/`sin` over `n/2` angles; every
/// [`forward`](FftPlan::forward) / [`inverse`](FftPlan::inverse) after that
/// runs the butterflies with pure table lookups. Block generators that
/// transform the same length millions of times (Davies–Harte) hold their
/// plan in an `Arc`; one-shot callers go through the process-wide cache via
/// [`fft`] / [`ifft`] / [`plan`].
#[derive(Debug)]
pub struct FftPlan {
    n: usize,
    /// `rev[i]` = bit-reversal of `i` within `log2(n)` bits.
    rev: Vec<u32>,
    /// `twiddles[k] = e^{-2πik/n}` for `k in 0..n/2`.
    twiddles: Vec<Complex>,
}

impl FftPlan {
    /// Builds a plan for transforms of length `n`.
    ///
    /// # Panics
    /// Panics if `n` is not a power of two or exceeds `u32` indexing range.
    pub fn new(n: usize) -> Self {
        assert!(n.is_power_of_two(), "FFT length {n} must be a power of two");
        assert!(n <= (1 << 31), "FFT length {n} too large");
        let shift = if n <= 1 {
            0
        } else {
            usize::BITS - n.trailing_zeros()
        };
        let rev = (0..n)
            .map(|i| {
                if n <= 1 {
                    0
                } else {
                    (i.reverse_bits() >> shift) as u32
                }
            })
            .collect();
        let twiddles = (0..n / 2)
            .map(|k| {
                let ang = -2.0 * std::f64::consts::PI * k as f64 / n as f64;
                Complex::new(ang.cos(), ang.sin())
            })
            .collect();
        Self { n, rev, twiddles }
    }

    /// Transform length the plan was built for.
    pub fn len(&self) -> usize {
        self.n
    }

    /// The twiddle table: `twiddles()[k] = e^{-2πik/n}` for `k in 0..n/2`.
    /// Exposed for half-size real/Hermitian packing: the Davies–Harte
    /// synthesis consumes `conj` of these as `e^{+2πik/n}` rotation factors
    /// without materialising a second table.
    pub fn twiddles(&self) -> &[Complex] {
        &self.twiddles
    }

    /// [`inverse`](Self::inverse) without the `1/n` normalization — for
    /// callers that fold the scale into their own spectrum instead of
    /// paying a separate O(n) pass.
    pub fn inverse_unscaled(&self, data: &mut [Complex]) {
        self.transform::<true>(data);
    }

    /// True for the degenerate length-0 plan.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// In-place forward FFT: `X[k] = Σ_j x[j] e^{-2πi jk/n}`.
    ///
    /// # Panics
    /// Panics if `data.len()` differs from the planned length.
    pub fn forward(&self, data: &mut [Complex]) {
        self.transform::<false>(data);
    }

    /// In-place inverse FFT, normalized by `1/n` so that
    /// `inverse(forward(x)) == x`.
    ///
    /// # Panics
    /// Panics if `data.len()` differs from the planned length.
    pub fn inverse(&self, data: &mut [Complex]) {
        self.transform::<true>(data);
        let scale = 1.0 / self.n as f64;
        for z in data.iter_mut() {
            z.re *= scale;
            z.im *= scale;
        }
    }

    fn transform<const INVERSE: bool>(&self, data: &mut [Complex]) {
        let n = self.n;
        assert_eq!(data.len(), n, "data length != planned FFT length {n}");
        if n <= 1 {
            return;
        }

        // Bit-reversal permutation from the precomputed index table.
        for i in 0..n {
            let j = self.rev[i] as usize;
            if j > i {
                data.swap(i, j);
            }
        }

        // Danielson–Lanczos butterflies, scheduled for cache residence.
        //
        // Stages with `len <= SPAN` only couple elements within aligned
        // SPAN-sized blocks, so all of them run on one block while it is
        // hot (depth-first) instead of streaming the whole array once per
        // stage — for an 8 MiB transform this removes ~100 MiB of DRAM
        // traffic. Stages above SPAN couple across blocks and must sweep
        // the full array; fusing adjacent pairs into radix-4 passes halves
        // the number of those sweeps.
        const SPAN: usize = 1 << 13; // 8192 Complex = 128 KiB, L2-resident
        let span = SPAN.min(n);
        for chunk in data.chunks_exact_mut(span) {
            let mut len = 2;
            while len << 1 <= span {
                self.stage_pair::<INVERSE>(chunk, len);
                len <<= 2;
            }
            if len <= span {
                self.stage::<INVERSE>(chunk, len);
            }
        }
        let mut len = span << 1;
        while len << 1 <= n {
            self.stage_pair::<INVERSE>(data, len);
            len <<= 2;
        }
        if len <= n {
            self.stage::<INVERSE>(data, len);
        }
    }

    /// One radix-2 stage over `data` (the full array or one cache-resident
    /// block); stage `len` uses every `n/len`-th twiddle-table entry, which
    /// is independent of the block's offset. `INVERSE` is a const generic,
    /// so the conjugation branch is folded at compile time.
    #[inline]
    fn stage<const INVERSE: bool>(&self, data: &mut [Complex], len: usize) {
        let half = len / 2;
        let stride = self.n / len;
        for group in data.chunks_exact_mut(len) {
            let (lo, hi) = group.split_at_mut(half);
            let tws = self.twiddles.iter().step_by(stride);
            for ((pa, pb), &tw) in lo.iter_mut().zip(hi.iter_mut()).zip(tws) {
                let mut w = tw;
                if INVERSE {
                    w.im = -w.im;
                }
                let a = *pa;
                let b = *pb * w;
                *pa = a + b;
                *pb = a - b;
            }
        }
    }

    /// Stages `len` and `2·len` fused into one radix-4 sweep: each group of
    /// four elements `{k, k+len/2, k+len, k+3·len/2}` closes under both
    /// stages' butterflies, and the second stage-`2len` twiddle is the first
    /// rotated by a quarter turn (`tw[m + n/4] = ∓i·tw[m]`), so the fused
    /// form reads and writes the array once where two separate stages would
    /// sweep it twice.
    #[inline]
    fn stage_pair<const INVERSE: bool>(&self, data: &mut [Complex], len: usize) {
        let h = len / 2;
        let stride1 = self.n / len;
        let stride2 = stride1 / 2;
        for group in data.chunks_exact_mut(len * 2) {
            let (q01, q23) = group.split_at_mut(len);
            let (q0, q1) = q01.split_at_mut(h);
            let (q2, q3) = q23.split_at_mut(h);
            let tws = self
                .twiddles
                .iter()
                .step_by(stride1)
                .zip(self.twiddles.iter().step_by(stride2));
            let quads = q0
                .iter_mut()
                .zip(q1.iter_mut())
                .zip(q2.iter_mut())
                .zip(q3.iter_mut());
            for ((((x0, x1), x2), x3), (&tw1, &tw2)) in quads.zip(tws) {
                let mut w1 = tw1;
                let mut w2 = tw2;
                if INVERSE {
                    w1.im = -w1.im;
                    w2.im = -w2.im;
                }
                let t1 = *x1 * w1;
                let t3 = *x3 * w1;
                let a = *x0 + t1;
                let b = *x0 - t1;
                let c = *x2 + t3;
                let d = *x2 - t3;
                let t2 = c * w2;
                let t4 = d * w2;
                // Stage-2len twiddle for the odd pair: ∓i·w2.
                let t4 = if INVERSE {
                    Complex::new(-t4.im, t4.re)
                } else {
                    Complex::new(t4.im, -t4.re)
                };
                *x0 = a + t2;
                *x2 = a - t2;
                *x1 = b + t4;
                *x3 = b - t4;
            }
        }
    }
}

/// Process-wide plan cache keyed by length. Lengths are powers of two, so
/// the cache holds at most ~30 plans and its total twiddle storage is
/// bounded by twice the largest length ever requested.
fn plan_cache() -> &'static Mutex<HashMap<usize, Arc<FftPlan>>> {
    static CACHE: OnceLock<Mutex<HashMap<usize, Arc<FftPlan>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Returns the shared plan for length `n`, building it on first use.
///
/// # Panics
/// Panics if `n` is not a power of two.
pub fn plan(n: usize) -> Arc<FftPlan> {
    let mut cache = plan_cache().lock().unwrap_or_else(|e| e.into_inner());
    Arc::clone(
        cache
            .entry(n)
            .or_insert_with(|| Arc::new(FftPlan::new(n))),
    )
}

/// In-place forward FFT: `X[k] = Σ_j x[j] e^{-2πi jk/n}`.
///
/// Convenience wrapper over the cached [`plan`] for the input's length.
///
/// # Panics
/// Panics if the length is not a power of two.
pub fn fft(data: &mut [Complex]) {
    plan(data.len()).forward(data);
}

/// In-place inverse FFT, normalized by `1/n` so that `ifft(fft(x)) == x`.
///
/// # Panics
/// Panics if the length is not a power of two.
pub fn ifft(data: &mut [Complex]) {
    plan(data.len()).inverse(data);
}

/// Periodogram of a real series at the Fourier frequencies
/// `ω_j = 2πj/n`, `j = 1 .. ⌊n/2⌋`:
/// `I(ω_j) = |Σ_t x_t e^{-i ω_j t}|² / (2πn)`.
///
/// The series is **not** padded: the periodogram is only meaningful at the
/// exact Fourier frequencies of the observed length, so the input is
/// truncated to the largest power of two to keep the radix-2 transform
/// applicable (the GPH estimator only uses the lowest ~√n frequencies, which
/// truncation barely perturbs).
pub fn periodogram(series: &[f64]) -> Vec<(f64, f64)> {
    let n = prev_pow2(series.len());
    assert!(n >= 4, "periodogram needs at least 4 observations");
    let mut buf: Vec<Complex> = series[..n]
        .iter()
        .map(|&x| Complex::new(x, 0.0))
        .collect();
    fft(&mut buf);
    let norm = 2.0 * std::f64::consts::PI * n as f64;
    (1..=n / 2)
        .map(|j| {
            let freq = 2.0 * std::f64::consts::PI * j as f64 / n as f64;
            (freq, buf[j].norm_sqr() / norm)
        })
        .collect()
}

/// Largest power of two that is `<= n` (0 maps to 0).
pub fn prev_pow2(n: usize) -> usize {
    if n == 0 {
        0
    } else {
        1 << (usize::BITS - 1 - n.leading_zeros())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut data = vec![Complex::ZERO; 8];
        data[0] = Complex::new(1.0, 0.0);
        fft(&mut data);
        for z in &data {
            assert_close(z.re, 1.0, 1e-12);
            assert_close(z.im, 0.0, 1e-12);
        }
    }

    #[test]
    fn fft_of_constant_is_impulse() {
        let mut data = vec![Complex::new(1.0, 0.0); 16];
        fft(&mut data);
        assert_close(data[0].re, 16.0, 1e-12);
        for z in &data[1..] {
            assert_close(z.abs(), 0.0, 1e-10);
        }
    }

    #[test]
    fn fft_single_tone() {
        // x[t] = cos(2π·3t/32) has spectral mass at bins 3 and 29 only.
        let n = 32;
        let mut data: Vec<Complex> = (0..n)
            .map(|t| {
                Complex::new(
                    (2.0 * std::f64::consts::PI * 3.0 * t as f64 / n as f64).cos(),
                    0.0,
                )
            })
            .collect();
        fft(&mut data);
        for (k, z) in data.iter().enumerate() {
            let expect = if k == 3 || k == n - 3 { n as f64 / 2.0 } else { 0.0 };
            assert_close(z.abs(), expect, 1e-9);
        }
    }

    #[test]
    fn ifft_roundtrip() {
        let orig: Vec<Complex> = (0..64)
            .map(|i| Complex::new((i as f64).sin(), (i as f64 * 0.7).cos()))
            .collect();
        let mut data = orig.clone();
        fft(&mut data);
        ifft(&mut data);
        for (a, b) in data.iter().zip(&orig) {
            assert_close(a.re, b.re, 1e-10);
            assert_close(a.im, b.im, 1e-10);
        }
    }

    #[test]
    fn fft_matches_naive_dft() {
        let x: Vec<Complex> = (0..16)
            .map(|i| Complex::new((i as f64 * 1.3).sin(), (i as f64 * 0.4).cos()))
            .collect();
        let mut fast = x.clone();
        fft(&mut fast);
        let n = x.len();
        for (k, f) in fast.iter().enumerate() {
            let mut acc = Complex::ZERO;
            for (j, &xj) in x.iter().enumerate() {
                let ang = -2.0 * std::f64::consts::PI * (j * k) as f64 / n as f64;
                acc = acc + xj * Complex::new(ang.cos(), ang.sin());
            }
            assert_close(f.re, acc.re, 1e-9);
            assert_close(f.im, acc.im, 1e-9);
        }
    }

    /// Naive DFT bin `X[k]` with Kahan-compensated summation — the ~1e-13
    /// reference the planned transform is held to at long lengths.
    fn naive_dft_bin(x: &[Complex], k: usize) -> Complex {
        let n = x.len();
        let (mut re, mut im) = (0.0f64, 0.0f64);
        let (mut cre, mut cim) = (0.0f64, 0.0f64);
        for (j, &xj) in x.iter().enumerate() {
            // j*k mod n keeps the angle argument small and exact.
            let ang = -2.0 * std::f64::consts::PI * ((j * k) % n) as f64 / n as f64;
            let w = Complex::new(ang.cos(), ang.sin());
            let term = xj * w;
            let y = term.re - cre;
            let t = re + y;
            cre = (t - re) - y;
            re = t;
            let y = term.im - cim;
            let t = im + y;
            cim = (t - im) - y;
            im = t;
        }
        Complex::new(re, im)
    }

    /// The accuracy fix the twiddle table buys: a 2¹⁶-point transform must
    /// agree with the naive DFT to ~1e-10 absolute on O(100)-magnitude
    /// bins. The previous per-stage `w = w·w_len` recurrence drifted by
    /// roughly `len·ε` across each stage's butterfly run and missed this
    /// tolerance by orders of magnitude at this length.
    #[test]
    fn planned_fft_matches_naive_dft_at_65536() {
        use crate::rng::Xoshiro256PlusPlus;
        use rand::Rng;
        let n = 1 << 16;
        let mut rng = Xoshiro256PlusPlus::from_seed_u64(0xF17);
        let x: Vec<Complex> = (0..n)
            .map(|_| Complex::new(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5))
            .collect();
        let mut fast = x.clone();
        fft(&mut fast);
        // Spot-check a spread of bins (full naive DFT is O(n²)); include
        // DC, Nyquist, low bins (GPH territory) and high bins (late
        // butterfly stages, where the recurrence error was worst).
        for &k in &[0usize, 1, 2, 3, 64, 1021, 4096, 30_000, 32_768, 65_535] {
            let reference = naive_dft_bin(&x, k);
            let err = (fast[k] - reference).abs();
            assert!(
                err < 2e-10,
                "bin {k}: planned FFT off by {err:e} (got {:?}, want {:?})",
                fast[k],
                reference
            );
        }
    }

    #[test]
    fn plan_reuse_is_identical_to_one_shot() {
        let orig: Vec<Complex> = (0..256)
            .map(|i| Complex::new((i as f64 * 0.3).cos(), (i as f64 * 1.7).sin()))
            .collect();
        let p = FftPlan::new(256);
        let mut a = orig.clone();
        let mut b = orig.clone();
        p.forward(&mut a);
        fft(&mut b);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.re.to_bits(), y.re.to_bits());
            assert_eq!(x.im.to_bits(), y.im.to_bits());
        }
        assert_eq!(p.len(), 256);
        assert!(!p.is_empty());
    }

    #[test]
    fn parseval_identity() {
        let x: Vec<Complex> = (0..128)
            .map(|i| Complex::new((i as f64 * 0.11).sin(), 0.0))
            .collect();
        let time_energy: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let mut f = x.clone();
        fft(&mut f);
        let freq_energy: f64 = f.iter().map(|z| z.norm_sqr()).sum::<f64>() / x.len() as f64;
        assert_close(time_energy, freq_energy, 1e-9);
    }

    #[test]
    #[should_panic]
    fn fft_rejects_non_pow2() {
        let mut data = vec![Complex::ZERO; 12];
        fft(&mut data);
    }

    #[test]
    #[should_panic]
    fn plan_rejects_wrong_length() {
        let p = FftPlan::new(8);
        let mut data = vec![Complex::ZERO; 16];
        p.forward(&mut data);
    }

    #[test]
    fn pow2_helpers() {
        assert_eq!(next_pow2(0), 1);
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(5), 8);
        assert_eq!(next_pow2(64), 64);
        assert_eq!(prev_pow2(0), 0);
        assert_eq!(prev_pow2(1), 1);
        assert_eq!(prev_pow2(63), 32);
        assert_eq!(prev_pow2(64), 64);
    }

    #[test]
    fn periodogram_white_noise_is_flat_on_average() {
        use crate::rng::Xoshiro256PlusPlus;
        use rand::Rng;
        let mut rng = Xoshiro256PlusPlus::from_seed_u64(12);
        let series: Vec<f64> = (0..4096).map(|_| rng.gen::<f64>() - 0.5).collect();
        let pg = periodogram(&series);
        // For white noise with variance 1/12, E[I(ω)] = σ²/(2π).
        let mean_i: f64 = pg.iter().map(|&(_, i)| i).sum::<f64>() / pg.len() as f64;
        let expect = (1.0 / 12.0) / (2.0 * std::f64::consts::PI);
        assert!(
            (mean_i - expect).abs() < 0.2 * expect,
            "mean periodogram {mean_i} vs {expect}"
        );
    }
}

//! Descriptive statistics: streaming moments, quantiles, histograms.

/// Streaming mean/variance/skewness/kurtosis accumulator (Welford / Pébay
/// update formulas). Numerically stable for the long series the simulator
/// produces (hundreds of millions of frames at paper scale).
#[derive(Debug, Clone, Default)]
pub struct Moments {
    n: u64,
    mean: f64,
    m2: f64,
    m3: f64,
    m4: f64,
    min: f64,
    max: f64,
}

impl Moments {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            m3: 0.0,
            m4: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        let n1 = self.n as f64;
        self.n += 1;
        let n = self.n as f64;
        let delta = x - self.mean;
        let delta_n = delta / n;
        let delta_n2 = delta_n * delta_n;
        let term1 = delta * delta_n * n1;
        self.mean += delta_n;
        self.m4 += term1 * delta_n2 * (n * n - 3.0 * n + 3.0)
            + 6.0 * delta_n2 * self.m2
            - 4.0 * delta_n * self.m3;
        self.m3 += term1 * delta_n * (n - 2.0) - 3.0 * delta_n * self.m2;
        self.m2 += term1;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Adds every observation in a slice.
    pub fn extend(&mut self, xs: &[f64]) {
        for &x in xs {
            self.push(x);
        }
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &Moments) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let na = self.n as f64;
        let nb = other.n as f64;
        let n = na + nb;
        let delta = other.mean - self.mean;
        let d2 = delta * delta;
        let d3 = d2 * delta;
        let d4 = d2 * d2;

        let m2 = self.m2 + other.m2 + d2 * na * nb / n;
        let m3 = self.m3
            + other.m3
            + d3 * na * nb * (na - nb) / (n * n)
            + 3.0 * delta * (na * other.m2 - nb * self.m2) / n;
        let m4 = self.m4
            + other.m4
            + d4 * na * nb * (na * na - na * nb + nb * nb) / (n * n * n)
            + 6.0 * d2 * (na * na * other.m2 + nb * nb * self.m2) / (n * n)
            + 4.0 * delta * (na * other.m3 - nb * self.m3) / n;

        self.mean += delta * nb / n;
        self.m2 = m2;
        self.m3 = m3;
        self.m4 = m4;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (n−1 denominator); 0 for n < 2.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n as f64 - 1.0)
        }
    }

    /// Sample standard deviation.
    pub fn sd(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Sample skewness `m3 / m2^{3/2}` (biased, population form).
    pub fn skewness(&self) -> f64 {
        if self.n < 3 || self.m2 == 0.0 {
            return 0.0;
        }
        let n = self.n as f64;
        (n.sqrt() * self.m3) / self.m2.powf(1.5)
    }

    /// Excess kurtosis `m4 / m2² − 3` (population form).
    pub fn excess_kurtosis(&self) -> f64 {
        if self.n < 4 || self.m2 == 0.0 {
            return 0.0;
        }
        let n = self.n as f64;
        n * self.m4 / (self.m2 * self.m2) - 3.0
    }

    /// Smallest observation (∞ if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (−∞ if empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// Type-7 (linear interpolation) sample quantile of `sorted` data.
///
/// # Panics
/// Panics if the slice is empty or `q` is outside `[0, 1]`.
pub fn quantile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile level {q} out of [0,1]");
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let h = q * (n - 1) as f64;
    let lo = h.floor() as usize;
    let hi = (lo + 1).min(n - 1);
    let frac = h - lo as f64;
    sorted[lo] + frac * (sorted[hi] - sorted[lo])
}

/// Fixed-width histogram over `[lo, hi)` with out-of-range counters.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    below: u64,
    above: u64,
}

impl Histogram {
    /// Creates a histogram of `bins` equal-width cells over `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `hi <= lo` or `bins == 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(hi > lo, "empty range [{lo}, {hi})");
        assert!(bins > 0, "need at least one bin");
        Self {
            lo,
            hi,
            bins: vec![0; bins],
            below: 0,
            above: 0,
        }
    }

    /// Records one observation.
    pub fn push(&mut self, x: f64) {
        if x < self.lo {
            self.below += 1;
        } else if x >= self.hi {
            self.above += 1;
        } else {
            let idx = ((x - self.lo) / (self.hi - self.lo) * self.bins.len() as f64) as usize;
            // Guard the upper edge against floating-point round-up.
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Raw bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.bins
    }

    /// Observations below `lo`.
    pub fn below(&self) -> u64 {
        self.below
    }

    /// Observations at or above `hi`.
    pub fn above(&self) -> u64 {
        self.above
    }

    /// Total observations recorded, including out-of-range ones.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.below + self.above
    }

    /// Midpoint of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        self.lo + (i as f64 + 0.5) * w
    }

    /// Normalized density estimate per bin (integrates to the in-range mass).
    pub fn density(&self) -> Vec<f64> {
        let total = self.total().max(1) as f64;
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        self.bins.iter().map(|&c| c as f64 / (total * w)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moments_of_known_sequence() {
        let mut m = Moments::new();
        m.extend(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(m.count(), 8);
        assert!((m.mean() - 5.0).abs() < 1e-12);
        // Population variance is 4; sample variance is 32/7.
        assert!((m.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(m.min(), 2.0);
        assert_eq!(m.max(), 9.0);
    }

    #[test]
    fn moments_merge_equals_sequential() {
        let xs: Vec<f64> = (0..1000).map(|i| ((i * 37) % 101) as f64).collect();
        let mut all = Moments::new();
        all.extend(&xs);
        let mut a = Moments::new();
        let mut b = Moments::new();
        a.extend(&xs[..400]);
        b.extend(&xs[400..]);
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
        assert!((a.skewness() - all.skewness()).abs() < 1e-9);
        assert!((a.excess_kurtosis() - all.excess_kurtosis()).abs() < 1e-8);
    }

    #[test]
    fn moments_merge_with_empty() {
        let mut a = Moments::new();
        a.extend(&[1.0, 2.0, 3.0]);
        let before = a.clone();
        a.merge(&Moments::new());
        assert_eq!(a.count(), before.count());
        assert_eq!(a.mean(), before.mean());

        let mut e = Moments::new();
        e.merge(&before);
        assert_eq!(e.count(), 3);
        assert!((e.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn moments_gaussian_shape() {
        use crate::dist::Normal;
        use crate::rng::Xoshiro256PlusPlus;
        let mut rng = Xoshiro256PlusPlus::from_seed_u64(21);
        let mut d = Normal::new(0.0, 2.0);
        let mut m = Moments::new();
        for _ in 0..300_000 {
            m.push(d.sample(&mut rng));
        }
        assert!(m.skewness().abs() < 0.02, "skew {}", m.skewness());
        assert!(m.excess_kurtosis().abs() < 0.05, "kurt {}", m.excess_kurtosis());
    }

    #[test]
    fn quantile_interpolation() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert!((quantile(&xs, 0.5) - 2.5).abs() < 1e-12);
        assert!((quantile(&xs, 0.25) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn quantile_singleton() {
        assert_eq!(quantile(&[7.0], 0.3), 7.0);
    }

    #[test]
    fn histogram_binning_and_edges() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..10 {
            h.push(i as f64 + 0.5);
        }
        h.push(-1.0);
        h.push(10.0); // hi edge counts as above
        h.push(9.999_999);
        assert_eq!(h.below(), 1);
        assert_eq!(h.above(), 1);
        assert_eq!(h.total(), 13);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[9], 2);
        assert!((h.bin_center(0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_density_integrates_to_in_range_mass() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        for i in 0..100 {
            h.push(i as f64 / 100.0);
        }
        let w = 0.25;
        let mass: f64 = h.density().iter().map(|d| d * w).sum();
        assert!((mass - 1.0).abs() < 1e-12);
    }
}

//! Batch-means analysis for correlated simulation output.
//!
//! A single long run of the multiplexer produces a *correlated* CLR/workload
//! series, so the naive standard error is badly optimistic — catastrophically
//! so for LRD input, where the correlation never sums to a constant. The
//! batch-means method cuts the run into `B ≈ √n` contiguous batches, treats
//! batch averages as approximately independent, and builds the interval from
//! them. This is the standard alternative to the paper's
//! independent-replications protocol, and the two are compared in the
//! ablation tests.

use crate::ci::ConfidenceInterval;

/// Batch-means estimate of the mean of a correlated series.
#[derive(Debug, Clone)]
pub struct BatchMeans {
    /// Batch averages.
    pub batch_means: Vec<f64>,
    /// Batch size used.
    pub batch_size: usize,
    /// Grand mean.
    pub mean: f64,
}

impl BatchMeans {
    /// Splits `series` into `batches` equal contiguous batches (the tail
    /// remainder is dropped) and computes batch averages.
    ///
    /// # Panics
    /// Panics if fewer than 2 batches or the series is too short to give
    /// each batch at least one point.
    pub fn new(series: &[f64], batches: usize) -> Self {
        assert!(batches >= 2, "need at least two batches");
        let batch_size = series.len() / batches;
        assert!(
            batch_size >= 1,
            "series of {} too short for {batches} batches",
            series.len()
        );
        let batch_means: Vec<f64> = (0..batches)
            .map(|b| {
                let seg = &series[b * batch_size..(b + 1) * batch_size];
                seg.iter().sum::<f64>() / batch_size as f64
            })
            .collect();
        let mean = batch_means.iter().sum::<f64>() / batches as f64;
        Self {
            batch_means,
            batch_size,
            mean,
        }
    }

    /// Default batching: `⌊√n⌋` batches (a classical rule of thumb).
    pub fn sqrt_rule(series: &[f64]) -> Self {
        let batches = ((series.len() as f64).sqrt() as usize).max(2);
        Self::new(series, batches)
    }

    /// Student-t confidence interval over the batch means.
    pub fn interval(&self, level: f64) -> ConfidenceInterval {
        ConfidenceInterval::from_samples(&self.batch_means, level)
    }

    /// The lag-1 autocorrelation *between batch means* — a diagnostic: if it
    /// is far from zero the batches are too short to be treated as
    /// independent (for LRD input it stays high at any batch size, which is
    /// exactly the pathology the paper's replication protocol avoids).
    pub fn batch_lag1(&self) -> f64 {
        let b = &self.batch_means;
        let n = b.len();
        let mean = self.mean;
        let var: f64 = b.iter().map(|x| (x - mean).powi(2)).sum();
        if var == 0.0 {
            return 0.0;
        }
        let cov: f64 = (0..n - 1).map(|i| (b[i] - mean) * (b[i + 1] - mean)).sum();
        cov / var
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Normal;
    use crate::rng::Xoshiro256PlusPlus;

    #[test]
    fn iid_batches_recover_mean_and_coverage() {
        let mut rng = Xoshiro256PlusPlus::from_seed_u64(191);
        let mut d = Normal::new(3.0, 1.0);
        let series: Vec<f64> = (0..10_000).map(|_| d.sample(&mut rng)).collect();
        let bm = BatchMeans::sqrt_rule(&series);
        assert!((bm.mean - 3.0).abs() < 0.05);
        let ci = bm.interval(0.95);
        assert!(ci.contains(3.0), "CI {ci:?}");
        assert!(bm.batch_lag1().abs() < 0.2, "iid batches decorrelate");
    }

    #[test]
    fn correlated_series_widen_interval() {
        // AR(1) with phi=0.95: the naive (per-point) SE underestimates by
        // a factor of ~sqrt((1+phi)/(1-phi)) ~ 6.2; batch means must widen.
        let mut rng = Xoshiro256PlusPlus::from_seed_u64(192);
        let mut d = Normal::new(0.0, 1.0);
        let mut x = 0.0;
        let series: Vec<f64> = (0..40_000)
            .map(|_| {
                x = 0.95 * x + 0.05_f64.sqrt() * 2.179 * d.sample(&mut rng);
                x
            })
            .collect();
        let bm = BatchMeans::new(&series, 100);
        let batch_hw = bm.interval(0.95).half_width;
        let naive_hw = ConfidenceInterval::from_samples(&series, 0.95).half_width;
        assert!(
            batch_hw > 2.0 * naive_hw,
            "batch {batch_hw} vs naive {naive_hw}"
        );
    }

    #[test]
    fn remainder_dropped() {
        let series = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0];
        let bm = BatchMeans::new(&series, 3);
        assert_eq!(bm.batch_size, 2);
        assert_eq!(bm.batch_means, vec![1.5, 3.5, 5.5]);
    }

    #[test]
    #[should_panic]
    fn rejects_single_batch() {
        BatchMeans::new(&[1.0, 2.0], 1);
    }
}

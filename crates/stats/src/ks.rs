//! One-sample Kolmogorov–Smirnov test.
//!
//! The models crate claims its frame-size marginals (the paper's key design
//! constraint is that all four model families share the *same* Gaussian
//! marginal); the KS test is how the integration suite verifies that claim
//! on generated paths.

/// Result of a one-sample KS test.
#[derive(Debug, Clone, Copy)]
pub struct KsResult {
    /// The KS statistic `D = sup |F_n(x) − F(x)|`.
    pub statistic: f64,
    /// Asymptotic p-value (Kolmogorov distribution with the
    /// Stephens small-sample correction).
    pub p_value: f64,
    /// Sample size.
    pub n: usize,
}

/// Runs the one-sample KS test of `sample` against the CDF `cdf`.
///
/// # Panics
/// Panics on an empty sample.
pub fn ks_test(sample: &[f64], cdf: impl Fn(f64) -> f64) -> KsResult {
    assert!(!sample.is_empty(), "empty sample");
    let mut xs = sample.to_vec();
    xs.sort_by(|a, b| a.total_cmp(b));
    let n = xs.len();
    let nf = n as f64;
    let mut d: f64 = 0.0;
    for (i, &x) in xs.iter().enumerate() {
        let f = cdf(x);
        let lo = i as f64 / nf;
        let hi = (i + 1) as f64 / nf;
        d = d.max((f - lo).abs()).max((hi - f).abs());
    }
    let lambda = (nf.sqrt() + 0.12 + 0.11 / nf.sqrt()) * d;
    KsResult {
        statistic: d,
        p_value: kolmogorov_sf(lambda),
        n,
    }
}

/// Survival function of the Kolmogorov distribution:
/// `Q(λ) = 2 Σ_{k≥1} (−1)^{k−1} exp(−2k²λ²)`.
pub fn kolmogorov_sf(lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    for k in 1..=100 {
        let term = (-2.0 * (k as f64).powi(2) * lambda * lambda).exp();
        sum += sign * term;
        sign = -sign;
        if term < 1e-12 {
            break;
        }
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Normal;
    use crate::rng::Xoshiro256PlusPlus;
    use crate::special::normal_cdf;

    #[test]
    fn kolmogorov_sf_anchors() {
        // Known quantiles: Q(1.2238) ~ 0.10, Q(1.3581) ~ 0.05.
        assert!((kolmogorov_sf(1.2238) - 0.10).abs() < 0.005);
        assert!((kolmogorov_sf(1.3581) - 0.05).abs() < 0.005);
        assert_eq!(kolmogorov_sf(0.0), 1.0);
        assert!(kolmogorov_sf(3.0) < 1e-6);
    }

    #[test]
    fn gaussian_sample_passes_against_own_cdf() {
        let mut rng = Xoshiro256PlusPlus::from_seed_u64(181);
        let mut d = Normal::new(5.0, 2.0);
        let sample: Vec<f64> = (0..5_000).map(|_| d.sample(&mut rng)).collect();
        let r = ks_test(&sample, |x| normal_cdf((x - 5.0) / 2.0));
        assert!(r.p_value > 0.01, "p = {} (D = {})", r.p_value, r.statistic);
    }

    #[test]
    fn shifted_sample_fails() {
        let mut rng = Xoshiro256PlusPlus::from_seed_u64(182);
        let mut d = Normal::new(5.5, 2.0); // half-sigma shift
        let sample: Vec<f64> = (0..5_000).map(|_| d.sample(&mut rng)).collect();
        let r = ks_test(&sample, |x| normal_cdf((x - 5.0) / 2.0));
        assert!(r.p_value < 1e-6, "shift must be detected, p = {}", r.p_value);
    }

    #[test]
    fn uniform_sample_against_uniform_cdf() {
        let mut rng = Xoshiro256PlusPlus::from_seed_u64(183);
        let sample: Vec<f64> = (0..2_000).map(|_| rng.next_f64()).collect();
        let r = ks_test(&sample, |x| x.clamp(0.0, 1.0));
        assert!(r.p_value > 0.01, "p = {}", r.p_value);
        assert_eq!(r.n, 2_000);
    }
}

//! Hurst-parameter estimation.
//!
//! The paper's premise is that VBR video traces have H > 0.5 (Beran et al.);
//! our synthetic FBNDP/superposition models are *designed* to have a known H,
//! and these estimators verify that the generators actually produce it. Three
//! classical methods are implemented — they have different biases, and
//! agreement across all three is the usual sanity standard:
//!
//! * **Rescaled range (R/S)**: `E[R/S(m)] ~ c·m^H`.
//! * **Aggregated variance**: `Var[X^{(m)}] ~ c·m^{2H−2}` for the
//!   block-mean-aggregated series.
//! * **Log-periodogram (GPH)**: `ln I(ω) ≈ c − (2H−1) ln ω` near ω → 0.

use crate::fft::periodogram;
use crate::regression::{loglog_fit, LinearFit};

/// A Hurst estimate with its regression diagnostics.
#[derive(Debug, Clone, Copy)]
pub struct HurstEstimate {
    /// Estimated Hurst parameter.
    pub h: f64,
    /// Standard error propagated from the regression slope.
    pub se: f64,
    /// R² of the underlying log-log regression.
    pub r_squared: f64,
    /// Number of regression points.
    pub points: usize,
}

impl HurstEstimate {
    fn from_fit(fit: &LinearFit, h: f64, dh_dslope: f64) -> Self {
        Self {
            h,
            se: fit.slope_se * dh_dslope.abs(),
            r_squared: fit.r_squared,
            points: fit.n,
        }
    }
}

/// Geometrically spaced block sizes in `[min_m, max_m]`.
fn block_sizes(min_m: usize, max_m: usize, count: usize) -> Vec<usize> {
    let mut sizes = Vec::with_capacity(count);
    let lo = (min_m as f64).ln();
    let hi = (max_m as f64).ln();
    for i in 0..count {
        let m = (lo + (hi - lo) * i as f64 / (count - 1).max(1) as f64).exp() as usize;
        let m = m.max(min_m);
        if sizes.last() != Some(&m) {
            sizes.push(m);
        }
    }
    sizes
}

/// Rescaled-range (R/S) Hurst estimator.
///
/// For each block size `m`, the series is cut into non-overlapping blocks;
/// within each block the range of the cumulative mean-adjusted sums is
/// divided by the block standard deviation, and the block average `R/S(m)`
/// is regressed on `m` in log-log coordinates. The slope is `H`.
///
/// # Panics
/// Panics if the series is shorter than 64 points.
pub fn rs_hurst(series: &[f64]) -> HurstEstimate {
    let n = series.len();
    assert!(n >= 64, "R/S needs at least 64 observations, got {n}");

    let max_m = n / 4;
    let sizes = block_sizes(8, max_m, 20);
    let mut ms = Vec::new();
    let mut rs = Vec::new();

    for &m in &sizes {
        let blocks = n / m;
        if blocks < 2 {
            continue;
        }
        let mut acc = 0.0;
        let mut used = 0usize;
        for b in 0..blocks {
            let seg = &series[b * m..(b + 1) * m];
            let mean = seg.iter().sum::<f64>() / m as f64;
            let sd = (seg.iter().map(|&x| (x - mean).powi(2)).sum::<f64>() / m as f64).sqrt();
            if sd == 0.0 {
                continue;
            }
            let mut cum = 0.0;
            let mut lo = 0.0_f64;
            let mut hi = 0.0_f64;
            for &x in seg {
                cum += x - mean;
                lo = lo.min(cum);
                hi = hi.max(cum);
            }
            acc += (hi - lo) / sd;
            used += 1;
        }
        if used > 0 {
            ms.push(m as f64);
            rs.push(acc / used as f64);
        }
    }

    let fit = loglog_fit(&ms, &rs).expect("R/S regression points");
    HurstEstimate::from_fit(&fit, fit.slope, 1.0)
}

/// Aggregated-variance Hurst estimator.
///
/// The `m`-aggregated series `X^{(m)}_k = (1/m) Σ X_{(k−1)m+1..km}` of an
/// LRD process satisfies `Var[X^{(m)}] ~ σ² m^{2H−2}`; the log-log slope β
/// gives `H = 1 + β/2`.
///
/// # Panics
/// Panics if the series is shorter than 64 points.
pub fn aggregated_variance_hurst(series: &[f64]) -> HurstEstimate {
    let n = series.len();
    assert!(n >= 64, "aggregated variance needs at least 64 points, got {n}");

    let sizes = block_sizes(2, n / 8, 20);
    let mut ms = Vec::new();
    let mut vars = Vec::new();
    for &m in &sizes {
        let blocks = n / m;
        if blocks < 4 {
            continue;
        }
        let means: Vec<f64> = (0..blocks)
            .map(|b| series[b * m..(b + 1) * m].iter().sum::<f64>() / m as f64)
            .collect();
        let grand = means.iter().sum::<f64>() / blocks as f64;
        let var = means.iter().map(|&x| (x - grand).powi(2)).sum::<f64>() / (blocks - 1) as f64;
        if var > 0.0 {
            ms.push(m as f64);
            vars.push(var);
        }
    }

    let fit = loglog_fit(&ms, &vars).expect("aggregated-variance regression points");
    HurstEstimate::from_fit(&fit, 1.0 + fit.slope / 2.0, 0.5)
}

/// Geweke–Porter-Hudak (GPH) log-periodogram Hurst estimator.
///
/// Regresses `ln I(ω_j)` on `ln(4 sin²(ω_j/2)) ≈ 2 ln ω_j` over the lowest
/// `⌊n^0.5⌋` Fourier frequencies; the slope is `−d` with `H = d + 1/2`.
///
/// # Panics
/// Panics if the series is shorter than 128 points.
pub fn periodogram_hurst(series: &[f64]) -> HurstEstimate {
    let n = series.len();
    assert!(n >= 128, "GPH needs at least 128 observations, got {n}");

    let pg = periodogram(series);
    let m = (pg.len() as f64).sqrt().floor() as usize * 2; // lowest ~2√(n/2) freqs
    let m = m.clamp(8, pg.len());
    let x: Vec<f64> = pg[..m]
        .iter()
        .map(|&(w, _)| (4.0 * (w / 2.0).sin().powi(2)).ln())
        .collect();
    let y: Vec<f64> = pg[..m]
        .iter()
        .map(|&(_, i)| if i > 0.0 { i.ln() } else { f64::NEG_INFINITY })
        .collect();
    // Drop any zero-power frequencies.
    let (xs, ys): (Vec<f64>, Vec<f64>) = x
        .into_iter()
        .zip(y)
        .filter(|&(_, v)| v.is_finite())
        .unzip();
    let fit = LinearFit::fit(&xs, &ys);
    // slope = −d, H = d + 0.5
    HurstEstimate::from_fit(&fit, 0.5 - fit.slope, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Normal;
    use crate::rng::Xoshiro256PlusPlus;

    fn white_noise(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = Xoshiro256PlusPlus::from_seed_u64(seed);
        let mut d = Normal::new(0.0, 1.0);
        (0..n).map(|_| d.sample(&mut rng)).collect()
    }

    #[test]
    fn rs_white_noise_near_half() {
        let h = rs_hurst(&white_noise(65_536, 41));
        // R/S has a well-known small-sample upward bias for iid data.
        assert!(
            h.h > 0.45 && h.h < 0.65,
            "R/S H for white noise: {}",
            h.h
        );
    }

    #[test]
    fn aggvar_white_noise_near_half() {
        let h = aggregated_variance_hurst(&white_noise(65_536, 42));
        assert!(
            (h.h - 0.5).abs() < 0.06,
            "aggregated-variance H for white noise: {}",
            h.h
        );
    }

    #[test]
    fn gph_white_noise_near_half() {
        let h = periodogram_hurst(&white_noise(65_536, 43));
        assert!((h.h - 0.5).abs() < 0.12, "GPH H for white noise: {}", h.h);
    }

    #[test]
    fn ar1_is_srd_despite_strong_lag1() {
        // AR(1) with phi=0.9 has strong short-term correlation but H=1/2;
        // the aggregated-variance estimator must not be fooled at large m.
        let mut rng = Xoshiro256PlusPlus::from_seed_u64(44);
        let mut d = Normal::new(0.0, 1.0);
        let mut x = 0.0;
        let series: Vec<f64> = (0..262_144)
            .map(|_| {
                x = 0.9 * x + d.sample(&mut rng);
                x
            })
            .collect();
        let h = aggregated_variance_hurst(&series);
        assert!(h.h < 0.72, "AR(1) should estimate near 0.5, got {}", h.h);
    }

    #[test]
    fn estimators_report_diagnostics() {
        let h = aggregated_variance_hurst(&white_noise(8_192, 45));
        assert!(h.points >= 5);
        assert!(h.se >= 0.0);
        assert!(h.r_squared <= 1.0);
    }

    #[test]
    #[should_panic]
    fn rs_rejects_short_series() {
        rs_hurst(&[1.0; 32]);
    }
}

//! Ordinary least squares for simple (one-regressor) linear models.
//!
//! The three Hurst estimators are all log-log regressions; this module gives
//! them slope, intercept, standard errors and R².

/// Result of a simple linear regression `y = intercept + slope·x + ε`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Standard error of the slope estimate.
    pub slope_se: f64,
    /// Coefficient of determination.
    pub r_squared: f64,
    /// Number of points used.
    pub n: usize,
}

impl LinearFit {
    /// Fits `y = a + b·x` by ordinary least squares.
    ///
    /// # Panics
    /// Panics if fewer than 2 points, mismatched lengths, or all `x` equal.
    pub fn fit(x: &[f64], y: &[f64]) -> Self {
        assert_eq!(x.len(), y.len(), "x/y length mismatch");
        let n = x.len();
        assert!(n >= 2, "need at least two points");
        let nf = n as f64;
        let mx = x.iter().sum::<f64>() / nf;
        let my = y.iter().sum::<f64>() / nf;
        let sxx: f64 = x.iter().map(|&v| (v - mx).powi(2)).sum();
        assert!(sxx > 0.0, "regressor is constant");
        let sxy: f64 = x.iter().zip(y).map(|(&u, &v)| (u - mx) * (v - my)).sum();
        let syy: f64 = y.iter().map(|&v| (v - my).powi(2)).sum();

        let slope = sxy / sxx;
        let intercept = my - slope * mx;
        let ss_res: f64 = x
            .iter()
            .zip(y)
            .map(|(&u, &v)| (v - intercept - slope * u).powi(2))
            .sum();
        let r_squared = if syy > 0.0 { 1.0 - ss_res / syy } else { 1.0 };
        let slope_se = if n > 2 {
            (ss_res / ((nf - 2.0) * sxx)).sqrt()
        } else {
            0.0
        };
        Self {
            slope,
            intercept,
            slope_se,
            r_squared,
            n,
        }
    }

    /// Predicted value at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }
}

/// Convenience: fit on `(ln x, ln y)` pairs, skipping non-positive entries.
///
/// Returns `None` if fewer than 2 usable points remain.
pub fn loglog_fit(x: &[f64], y: &[f64]) -> Option<LinearFit> {
    let pts: (Vec<f64>, Vec<f64>) = x
        .iter()
        .zip(y)
        .filter(|&(&u, &v)| u > 0.0 && v > 0.0)
        .map(|(&u, &v)| (u.ln(), v.ln()))
        .unzip();
    if pts.0.len() < 2 {
        return None;
    }
    Some(LinearFit::fit(&pts.0, &pts.1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line() {
        let x = [0.0, 1.0, 2.0, 3.0];
        let y = [1.0, 3.0, 5.0, 7.0];
        let f = LinearFit::fit(&x, &y);
        assert!((f.slope - 2.0).abs() < 1e-12);
        assert!((f.intercept - 1.0).abs() < 1e-12);
        assert!((f.r_squared - 1.0).abs() < 1e-12);
        assert!(f.slope_se < 1e-10);
        assert!((f.predict(10.0) - 21.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_line_r2_below_one() {
        let x = [0.0, 1.0, 2.0, 3.0, 4.0];
        let y = [0.1, 0.9, 2.2, 2.8, 4.1];
        let f = LinearFit::fit(&x, &y);
        assert!((f.slope - 1.0).abs() < 0.1);
        assert!(f.r_squared > 0.98 && f.r_squared < 1.0);
        assert!(f.slope_se > 0.0);
    }

    #[test]
    fn loglog_power_law() {
        // y = 3 x^{-0.4}
        let x: Vec<f64> = (1..50).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|&v| 3.0 * v.powf(-0.4)).collect();
        let f = loglog_fit(&x, &y).unwrap();
        assert!((f.slope + 0.4).abs() < 1e-10);
        assert!((f.intercept.exp() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn loglog_skips_nonpositive() {
        let x = [1.0, 2.0, 0.0, 4.0];
        let y = [2.0, 4.0, 9.0, 8.0];
        let f = loglog_fit(&x, &y).unwrap();
        assert_eq!(f.n, 3);
        assert!((f.slope - 1.0).abs() < 1e-10);
    }

    #[test]
    fn loglog_too_few_points() {
        assert!(loglog_fit(&[1.0], &[1.0]).is_none());
        assert!(loglog_fit(&[-1.0, -2.0], &[1.0, 2.0]).is_none());
    }

    #[test]
    #[should_panic]
    fn rejects_constant_regressor() {
        LinearFit::fit(&[2.0, 2.0, 2.0], &[1.0, 2.0, 3.0]);
    }
}

//! # vbr-stats
//!
//! Numerics substrate for the `lrd-video` workspace: everything the traffic
//! models, large-deviations analysis and multiplexer simulation need that a
//! general-purpose statistics library would normally provide.
//!
//! The allowed dependency set for this project contains no statistics or
//! fitting crates, so this crate implements the required numerics from
//! scratch:
//!
//! * [`rng`] — a deterministic, seedable [`Xoshiro256PlusPlus`](rng::Xoshiro256PlusPlus)
//!   generator plus [`SplitMix64`](rng::SplitMix64) stream-splitting, so every
//!   experiment in the workspace is exactly reproducible independent of the
//!   `rand` crate's unstable `StdRng` algorithm.
//! * [`special`] — error function, log-gamma, and the standard normal
//!   pdf/cdf/quantile used by the Gaussian marginal models and the
//!   Bahadur–Rao asymptotics.
//! * [`dist`] — samplers for the normal (Marsaglia polar), Poisson
//!   (Knuth for small means, Hörmann's PTRD transformed rejection for large
//!   means — the FBNDP model draws ~10⁹ Poisson variates per paper-scale
//!   replication set), exponential, and Pareto-tail distributions, plus a
//!   Walker–Vose alias table for categorical draws.
//! * [`fft`] — an iterative radix-2 complex FFT with real-signal helpers,
//!   used by the periodogram Hurst estimator and the Davies–Harte exact
//!   fractional-Gaussian-noise generator.
//! * [`linalg`] — Levinson–Durbin recursion for symmetric Toeplitz systems
//!   (the Yule–Walker fit behind DAR(p) matching) and a pivoted Gaussian
//!   elimination fallback.
//! * [`acf`] — sample autocorrelation estimation (direct and FFT-based).
//! * [`hurst`] — three classical Hurst-parameter estimators: rescaled range
//!   (R/S), aggregated variance, and the GPH log-periodogram regression.
//! * [`descriptive`] — streaming moments (Welford), quantiles, histograms.
//! * [`regression`] — ordinary least squares for the log-log fits used by
//!   the Hurst estimators.
//! * [`ci`] — normal and Student-t confidence intervals for the simulation
//!   replication harness.
//! * [`whittle`] — the Whittle MLE Hurst estimator (the one Beran et al.
//!   used on the original video traces).
//! * [`ks`] — one-sample Kolmogorov–Smirnov test, used to verify that all
//!   model families really share the paper's Gaussian marginal.
//! * [`batch`] — batch-means output analysis for correlated simulation
//!   series, contrasted with independent replications in the ablations.
//! * [`wavelet`] — orthonormal Haar DWT (analysis/synthesis, single-level
//!   and full-depth) plus the logscale-diagram Hurst estimator; the
//!   substrate of the multifractal wavelet traffic model.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod acf;
pub mod batch;
pub mod ci;
pub mod descriptive;
pub mod dist;
pub mod fft;
pub mod hurst;
pub mod ks;
pub mod linalg;
pub mod p2;
pub mod regression;
pub mod rng;
pub mod special;
pub mod wavelet;
pub mod whittle;

pub use acf::{sample_acf, sample_acf_fft};
pub use batch::BatchMeans;
pub use ci::ConfidenceInterval;
pub use descriptive::{Histogram, Moments, quantile};
pub use dist::{AliasTable, Gamma, NegativeBinomial, Normal, Poisson};
pub use fft::{Complex, fft, ifft};
pub use hurst::{HurstEstimate, aggregated_variance_hurst, periodogram_hurst, rs_hurst};
pub use ks::{ks_test, KsResult};
pub use p2::P2Quantile;
pub use linalg::{levinson_durbin, solve_toeplitz};
pub use regression::LinearFit;
pub use rng::{SplitMix64, Xoshiro256PlusPlus};
pub use special::{
    erf, erfc, hurwitz_zeta, ln_gamma, normal_cdf, normal_pdf, normal_quantile, normal_sf,
    riemann_zeta,
};
pub use wavelet::{
    haar_decompose, haar_detail_energies, haar_reconstruct, wavelet_hurst, HaarDecomposition,
};
pub use whittle::{local_whittle_hurst, whittle_hurst};

//! Small dense linear algebra: the Levinson–Durbin recursion for symmetric
//! Toeplitz systems and a pivoted Gaussian-elimination fallback.
//!
//! The DAR(p) matching step of the paper is a Yule–Walker fit: solve
//! `R b = r` where `R` is the Toeplitz autocorrelation matrix
//! `R[i][j] = r(|i−j|)` and `r = (r(1), …, r(p))`. Levinson–Durbin solves it
//! in O(p²); the general solver exists to cross-validate it in tests and to
//! handle non-Toeplitz systems if a caller ever needs one.

/// Solves the symmetric Toeplitz system `T x = y` where
/// `T[i][j] = t[|i − j|]`, via the generalized Levinson recursion.
///
/// `t` has length `n` (the first column of `T`), `y` has length `n`.
/// Returns `None` if the recursion hits a singular leading minor (for a
/// valid autocorrelation sequence of a non-deterministic process this cannot
/// happen: the Toeplitz matrix is positive definite).
pub fn solve_toeplitz(t: &[f64], y: &[f64]) -> Option<Vec<f64>> {
    let n = t.len();
    assert_eq!(n, y.len(), "dimension mismatch");
    assert!(n > 0, "empty system");
    if t[0] == 0.0 {
        return None;
    }

    // Forward vector f solves T_k f = e_1 (first unit vector) at each order,
    // maintained via the symmetric Levinson recursion; x is the solution of
    // the leading k×k subsystem.
    let mut f = vec![0.0; n];
    let mut x = vec![0.0; n];
    f[0] = 1.0 / t[0];
    x[0] = y[0] / t[0];

    for k in 1..n {
        // epsilon_f = sum over the new row acting on f.
        let mut ef = 0.0;
        for (j, &fj) in f.iter().enumerate().take(k) {
            ef += t[k - j] * fj;
        }
        let denom = 1.0 - ef * ef;
        if denom.abs() < 1e-300 {
            return None;
        }
        // New forward vector of order k+1 (symmetric case: backward vector is
        // the reverse of the forward vector).
        let mut fnew = vec![0.0; k + 1];
        for j in 0..k {
            fnew[j] += f[j] / denom;
            fnew[k - j] -= ef * f[j] / denom;
        }
        f[..=k].copy_from_slice(&fnew);

        // Extend the solution.
        let mut ex = 0.0;
        for (j, &xj) in x.iter().enumerate().take(k) {
            ex += t[k - j] * xj;
        }
        let coef = y[k] - ex;
        for j in 0..=k {
            x[j] += coef * f[k - j];
        }
    }
    Some(x)
}

/// Levinson–Durbin recursion for the Yule–Walker equations.
///
/// Given autocorrelations `r(0), r(1), …, r(p)` (with `r(0) = 1` after
/// normalization — the routine normalizes internally), returns the AR(p)
/// coefficients `φ_1 … φ_p` such that `r(k) = Σ_i φ_i r(k−i)` for
/// `k = 1 … p`, plus the final prediction-error variance ratio
/// `σ²_p / r(0)`.
///
/// Returns `None` if the sequence is not a valid positive-definite
/// autocorrelation (a partial correlation leaves `[-1, 1]`).
pub fn levinson_durbin(r: &[f64]) -> Option<(Vec<f64>, f64)> {
    assert!(r.len() >= 2, "need r(0) and at least r(1)");
    let r0 = r[0];
    assert!(r0 > 0.0, "r(0) must be positive");
    let p = r.len() - 1;

    let mut phi = vec![0.0; p];
    let mut prev = vec![0.0; p];
    let mut err = r0;

    for k in 0..p {
        let mut acc = r[k + 1];
        for j in 0..k {
            acc -= prev[j] * r[k - j];
        }
        let reflection = acc / err;
        if !(-1.0..=1.0).contains(&reflection) || !reflection.is_finite() {
            return None;
        }
        phi[k] = reflection;
        for j in 0..k {
            phi[j] = prev[j] - reflection * prev[k - 1 - j];
        }
        err *= 1.0 - reflection * reflection;
        if err <= 0.0 {
            // Deterministic process: r is on the boundary of validity.
            if k + 1 < p {
                return None;
            }
        }
        prev[..=k].copy_from_slice(&phi[..=k]);
    }
    Some((phi, err / r0))
}

/// Solves a general dense system `A x = y` by Gaussian elimination with
/// partial pivoting. `a` is row-major `n×n`. Returns `None` if singular.
pub fn solve_dense(a: &[f64], y: &[f64], n: usize) -> Option<Vec<f64>> {
    assert_eq!(a.len(), n * n, "matrix shape");
    assert_eq!(y.len(), n, "rhs length");
    let mut m = a.to_vec();
    let mut b = y.to_vec();

    for col in 0..n {
        // Pivot.
        let (pivot_row, pivot_val) = (col..n)
            .map(|r| (r, m[r * n + col].abs()))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("non-empty range");
        if pivot_val < 1e-300 {
            return None;
        }
        if pivot_row != col {
            for j in 0..n {
                m.swap(col * n + j, pivot_row * n + j);
            }
            b.swap(col, pivot_row);
        }
        // Eliminate below.
        for r in col + 1..n {
            let factor = m[r * n + col] / m[col * n + col];
            if factor != 0.0 {
                for j in col..n {
                    m[r * n + j] -= factor * m[col * n + j];
                }
                b[r] -= factor * b[col];
            }
        }
    }
    // Back-substitute.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for j in row + 1..n {
            acc -= m[row * n + j] * x[j];
        }
        x[row] = acc / m[row * n + row];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_vec_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < tol, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn dense_solver_identity() {
        let a = [1.0, 0.0, 0.0, 1.0];
        let x = solve_dense(&a, &[3.0, 4.0], 2).unwrap();
        assert_vec_close(&x, &[3.0, 4.0], 1e-12);
    }

    #[test]
    fn dense_solver_needs_pivoting() {
        // Leading zero forces a row swap.
        let a = [0.0, 1.0, 1.0, 0.0];
        let x = solve_dense(&a, &[2.0, 5.0], 2).unwrap();
        assert_vec_close(&x, &[5.0, 2.0], 1e-12);
    }

    #[test]
    fn dense_solver_detects_singular() {
        let a = [1.0, 2.0, 2.0, 4.0];
        assert!(solve_dense(&a, &[1.0, 2.0], 2).is_none());
    }

    #[test]
    fn toeplitz_matches_dense() {
        // AR(1)-like autocorrelation column.
        let t = [1.0, 0.6, 0.36, 0.216];
        let y = [1.0, 2.0, 3.0, 4.0];
        let n = t.len();
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                a[i * n + j] = t[(i as isize - j as isize).unsigned_abs()];
            }
        }
        let xt = solve_toeplitz(&t, &y).unwrap();
        let xd = solve_dense(&a, &y, n).unwrap();
        assert_vec_close(&xt, &xd, 1e-9);
    }

    #[test]
    fn toeplitz_order_one() {
        let x = solve_toeplitz(&[2.0], &[6.0]).unwrap();
        assert_vec_close(&x, &[3.0], 1e-12);
    }

    #[test]
    fn levinson_recovers_ar1() {
        // For AR(1) with coefficient 0.7: r(k) = 0.7^k.
        let r: Vec<f64> = (0..=3).map(|k| 0.7_f64.powi(k)).collect();
        let (phi, err) = levinson_durbin(&r).unwrap();
        assert_vec_close(&phi, &[0.7, 0.0, 0.0], 1e-10);
        assert!((err - (1.0 - 0.49)).abs() < 1e-10, "err {err}");
    }

    #[test]
    fn levinson_recovers_ar2() {
        // AR(2): x_n = 0.5 x_{n-1} + 0.3 x_{n-2} + e. Yule-Walker forward:
        // r(1) = 0.5/(1-0.3), r(k) = 0.5 r(k-1) + 0.3 r(k-2).
        let r1: f64 = 0.5 / 0.7;
        let r2 = 0.5 * r1 + 0.3;
        let r3 = 0.5 * r2 + 0.3 * r1;
        let (phi, _) = levinson_durbin(&[1.0, r1, r2, r3]).unwrap();
        assert_vec_close(&phi, &[0.5, 0.3, 0.0], 1e-10);
    }

    #[test]
    fn levinson_matches_toeplitz_solver() {
        // Yule-Walker via Levinson must equal the Toeplitz solve of R b = r.
        let r = [1.0, 0.684, 0.528, 0.44];
        let (phi, _) = levinson_durbin(&r).unwrap();
        let x = solve_toeplitz(&r[..3], &r[1..]).unwrap();
        assert_vec_close(&phi, &x, 1e-9);
    }

    #[test]
    fn levinson_rejects_invalid_acf() {
        // r(1) = 1.2 is not a correlation.
        assert!(levinson_durbin(&[1.0, 1.2]).is_none());
        // Violates positive definiteness: r(1)=0.9, r(2)=-0.9.
        assert!(levinson_durbin(&[1.0, 0.9, -0.9]).is_none());
    }

    #[test]
    fn levinson_unnormalized_input() {
        // Same answer whether r is normalized or scaled by a variance.
        let r: Vec<f64> = (0..=3).map(|k| 0.6_f64.powi(k)).collect();
        let scaled: Vec<f64> = r.iter().map(|v| v * 123.0).collect();
        let (a, ea) = levinson_durbin(&r).unwrap();
        let (b, eb) = levinson_durbin(&scaled).unwrap();
        assert_vec_close(&a, &b, 1e-12);
        assert!((ea - eb).abs() < 1e-12);
    }
}

//! Sample autocorrelation estimation.
//!
//! Two implementations with identical estimands: a direct O(n·K) sum and an
//! FFT-based O(n log n) version for long series / many lags. Both use the
//! standard biased (1/n) normalization, which guarantees the estimated
//! sequence is positive semi-definite — a property the Levinson–Durbin
//! fitting step depends on.

use crate::fft::{fft, ifft, next_pow2, Complex};

/// Direct sample autocorrelation at lags `0..=max_lag`.
///
/// `r̂(k) = Σ_{t} (x_t − x̄)(x_{t+k} − x̄) / Σ_t (x_t − x̄)²`.
///
/// # Panics
/// Panics if the series is shorter than 2 points, has zero variance, or
/// `max_lag >= n`.
pub fn sample_acf(series: &[f64], max_lag: usize) -> Vec<f64> {
    let n = series.len();
    assert!(n >= 2, "ACF needs at least 2 observations");
    assert!(max_lag < n, "max_lag {max_lag} must be < n {n}");
    let mean = series.iter().sum::<f64>() / n as f64;
    let c0: f64 = series.iter().map(|&x| (x - mean).powi(2)).sum();
    assert!(c0 > 0.0, "ACF of a constant series is undefined");

    let mut out = Vec::with_capacity(max_lag + 1);
    for k in 0..=max_lag {
        let ck: f64 = (0..n - k)
            .map(|t| (series[t] - mean) * (series[t + k] - mean))
            .sum();
        out.push(ck / c0);
    }
    out
}

/// FFT-based sample autocorrelation at lags `0..=max_lag`.
///
/// Computes the full autocovariance via the Wiener–Khinchin route
/// (zero-padded FFT → |·|² → inverse FFT), then normalizes. Numerically
/// agrees with [`sample_acf`] to ~1e-10 but runs in O(n log n).
pub fn sample_acf_fft(series: &[f64], max_lag: usize) -> Vec<f64> {
    let n = series.len();
    assert!(n >= 2, "ACF needs at least 2 observations");
    assert!(max_lag < n, "max_lag {max_lag} must be < n {n}");
    let mean = series.iter().sum::<f64>() / n as f64;

    // Zero-pad to at least 2n to avoid circular wrap-around.
    let m = next_pow2(2 * n);
    let mut buf = vec![Complex::ZERO; m];
    for (i, &x) in series.iter().enumerate() {
        buf[i] = Complex::new(x - mean, 0.0);
    }
    fft(&mut buf);
    for z in buf.iter_mut() {
        *z = Complex::new(z.norm_sqr(), 0.0);
    }
    ifft(&mut buf);

    let c0 = buf[0].re;
    assert!(c0 > 0.0, "ACF of a constant series is undefined");
    (0..=max_lag).map(|k| buf[k].re / c0).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Normal;
    use crate::rng::Xoshiro256PlusPlus;

    #[test]
    fn acf_lag_zero_is_one() {
        let xs = [1.0, 3.0, 2.0, 5.0, 4.0];
        let r = sample_acf(&xs, 2);
        assert!((r[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn acf_direct_matches_fft() {
        let mut rng = Xoshiro256PlusPlus::from_seed_u64(31);
        let mut nrm = Normal::new(0.0, 1.0);
        // AR(1) with phi = 0.8
        let mut x = 0.0;
        let series: Vec<f64> = (0..3000)
            .map(|_| {
                x = 0.8 * x + nrm.sample(&mut rng);
                x
            })
            .collect();
        let a = sample_acf(&series, 50);
        let b = sample_acf_fft(&series, 50);
        for (u, v) in a.iter().zip(&b) {
            assert!((u - v).abs() < 1e-9, "{u} vs {v}");
        }
    }

    #[test]
    fn acf_recovers_ar1_decay() {
        let mut rng = Xoshiro256PlusPlus::from_seed_u64(32);
        let mut nrm = Normal::new(0.0, 1.0);
        let phi = 0.7;
        let mut x = 0.0;
        let series: Vec<f64> = (0..200_000)
            .map(|_| {
                x = phi * x + nrm.sample(&mut rng);
                x
            })
            .collect();
        let r = sample_acf_fft(&series, 5);
        for (k, &rk) in r.iter().enumerate().take(6).skip(1) {
            let expect = phi.powi(k as i32);
            assert!((rk - expect).abs() < 0.02, "lag {k}: {rk} vs {expect}");
        }
    }

    #[test]
    fn acf_white_noise_near_zero() {
        let mut rng = Xoshiro256PlusPlus::from_seed_u64(33);
        let mut nrm = Normal::new(5.0, 2.0);
        let series: Vec<f64> = (0..100_000).map(|_| nrm.sample(&mut rng)).collect();
        let r = sample_acf_fft(&series, 10);
        for (k, &rk) in r.iter().enumerate().take(11).skip(1) {
            assert!(rk.abs() < 0.02, "lag {k}: {rk}");
        }
    }

    #[test]
    fn acf_alternating_series() {
        let series: Vec<f64> = (0..100).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        let r = sample_acf(&series, 2);
        assert!(r[1] < -0.9, "lag-1 of alternating series {}", r[1]);
        assert!(r[2] > 0.9, "lag-2 of alternating series {}", r[2]);
    }

    #[test]
    #[should_panic]
    fn acf_rejects_constant() {
        sample_acf(&[2.0, 2.0, 2.0], 1);
    }

    #[test]
    #[should_panic]
    fn acf_rejects_excessive_lag() {
        sample_acf(&[1.0, 2.0, 3.0], 3);
    }
}

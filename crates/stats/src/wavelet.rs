//! Orthonormal Haar discrete wavelet transform.
//!
//! The multifractal wavelet model (Riedi, Crouse, Ribeiro & Baraniuk) builds
//! a traffic trace as a multiplicative cascade in the Haar domain, and the
//! wavelet *logscale diagram* — log₂ of the mean squared detail coefficient
//! per octave — is a standard Hurst estimator in its own right: for an LRD
//! process with Hurst `H` the detail energy grows by `2^{2H−1}` per octave of
//! aggregation. This module provides the transform pair (single-level and
//! full-depth), the per-level energies, and the logscale-diagram estimator.
//!
//! Conventions: level `j` holds `2^j` coefficients, so level 0 is the
//! *coarsest* scale (one coefficient spanning the whole block) and each
//! detail coefficient at level `j` spans `2^{J−j}` samples of a length-`2^J`
//! signal. All transforms use the orthonormal normalisation
//! `(a ± d)/√2`, which preserves energy exactly.

use crate::hurst::HurstEstimate;
use crate::regression::LinearFit;

const FRAC_1_SQRT_2: f64 = std::f64::consts::FRAC_1_SQRT_2;

/// A full-depth Haar decomposition of a length-`2^J` signal.
#[derive(Debug, Clone, PartialEq)]
pub struct HaarDecomposition {
    /// The single coarsest scaling coefficient `c_{0,0} = Σ x_k / 2^{J/2}`.
    pub approx: f64,
    /// Detail coefficients per level: `details[j]` has `2^j` entries and
    /// `details` has `J` levels, index 0 = coarsest.
    pub details: Vec<Vec<f64>>,
}

impl HaarDecomposition {
    /// Number of levels `J` (the reconstructed signal has `2^J` samples).
    pub fn levels(&self) -> usize {
        self.details.len()
    }
}

fn assert_power_of_two(n: usize, what: &str) {
    assert!(
        n.is_power_of_two(),
        "{what} length must be a power of two, got {n}"
    );
}

/// One analysis step: splits a fine signal of even length `2m` into `m`
/// scaling and `m` detail coefficients.
///
/// `approx[k] = (fine[2k] + fine[2k+1])/√2`,
/// `detail[k] = (fine[2k] − fine[2k+1])/√2`.
///
/// # Panics
/// Panics if `fine` is empty or of odd length.
pub fn haar_analyze_level(fine: &[f64]) -> (Vec<f64>, Vec<f64>) {
    assert!(
        !fine.is_empty() && fine.len().is_multiple_of(2),
        "haar_analyze_level needs a non-empty even-length input, got {}",
        fine.len()
    );
    let m = fine.len() / 2;
    let mut approx = Vec::with_capacity(m);
    let mut detail = Vec::with_capacity(m);
    for k in 0..m {
        let a = fine[2 * k];
        let b = fine[2 * k + 1];
        approx.push((a + b) * FRAC_1_SQRT_2);
        detail.push((a - b) * FRAC_1_SQRT_2);
    }
    (approx, detail)
}

/// One synthesis step, the exact inverse of [`haar_analyze_level`]:
/// `fine[2k] = (approx[k] + detail[k])/√2`,
/// `fine[2k+1] = (approx[k] − detail[k])/√2`.
///
/// # Panics
/// Panics if the slices are empty or of different lengths.
pub fn haar_synthesize_level(approx: &[f64], detail: &[f64]) -> Vec<f64> {
    assert_eq!(
        approx.len(),
        detail.len(),
        "approx/detail length mismatch in haar_synthesize_level"
    );
    assert!(!approx.is_empty(), "haar_synthesize_level needs input");
    let mut fine = Vec::with_capacity(2 * approx.len());
    for (&a, &d) in approx.iter().zip(detail) {
        fine.push((a + d) * FRAC_1_SQRT_2);
        fine.push((a - d) * FRAC_1_SQRT_2);
    }
    fine
}

/// Full-depth Haar analysis of a length-`2^J` signal.
///
/// # Panics
/// Panics if the length is not a power of two (length 1 is allowed and
/// yields zero levels).
pub fn haar_decompose(series: &[f64]) -> HaarDecomposition {
    assert_power_of_two(series.len(), "haar_decompose input");
    let mut details = Vec::new();
    let mut current = series.to_vec();
    while current.len() > 1 {
        let (approx, detail) = haar_analyze_level(&current);
        details.push(detail);
        current = approx;
    }
    details.reverse(); // index 0 = coarsest
    HaarDecomposition {
        approx: current[0],
        details,
    }
}

/// Full-depth Haar synthesis, the exact inverse of [`haar_decompose`].
pub fn haar_reconstruct(decomp: &HaarDecomposition) -> Vec<f64> {
    let mut current = vec![decomp.approx];
    for detail in &decomp.details {
        assert_eq!(
            detail.len(),
            current.len(),
            "detail level size inconsistent with cascade depth"
        );
        current = haar_synthesize_level(&current, detail);
    }
    current
}

/// Mean squared Haar detail coefficient per level, index 0 = coarsest.
///
/// This is the raw material of the wavelet logscale diagram: for an LRD
/// process with Hurst `H`, `E[d_j²] ∝ 2^{(2H−1)(J−j)}`.
///
/// # Panics
/// Panics if the length is not a power of two or is < 2.
pub fn haar_detail_energies(series: &[f64]) -> Vec<f64> {
    assert!(series.len() >= 2, "need at least 2 samples for one level");
    let decomp = haar_decompose(series);
    decomp
        .details
        .iter()
        .map(|d| d.iter().map(|&x| x * x).sum::<f64>() / d.len() as f64)
        .collect()
}

/// Wavelet (logscale-diagram) Hurst estimator.
///
/// Regresses `log₂ E[d_j²]` on the octave index `J − j` (samples spanned per
/// coefficient, in octaves); the slope is `2H − 1`. Only levels with at
/// least 8 detail coefficients enter the fit, so the energy estimates are
/// stable; the series is truncated to the largest power-of-two prefix.
///
/// # Panics
/// Panics if fewer than 256 points are supplied (at least 3 usable octaves).
pub fn wavelet_hurst(series: &[f64]) -> HurstEstimate {
    let n = series.len();
    assert!(n >= 256, "wavelet_hurst needs at least 256 points, got {n}");
    let pow2 = 1usize << (usize::BITS - 1 - n.leading_zeros());
    let energies = haar_detail_energies(&series[..pow2]);
    let levels = energies.len(); // = J
    let mut x = Vec::new();
    let mut y = Vec::new();
    // Degenerate levels carry no scaling information but their log2 would
    // dominate the fit: block-cascade models (MWM) conserve mass exactly per
    // block, so every level coarser than one block has energy ~1e-30.
    let floor = energies.iter().cloned().fold(0.0_f64, f64::max) * 1e-9;
    for (j, &e) in energies.iter().enumerate() {
        // Level j has 2^j coefficients; require ≥ 8 for a stable estimate.
        if (1usize << j) >= 8 && e > floor {
            x.push((levels - j) as f64); // octaves spanned
            y.push(e.log2());
        }
    }
    let fit = LinearFit::fit(&x, &y);
    // slope = 2H − 1  ⟹  H = (slope + 1)/2, dH/dslope = 1/2.
    HurstEstimate {
        h: (fit.slope + 1.0) / 2.0,
        se: fit.slope_se / 2.0,
        r_squared: fit.r_squared,
        points: fit.n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256PlusPlus;
    use rand::Rng;

    #[test]
    fn analyze_synthesize_roundtrip_one_level() {
        let fine = [3.0, 1.0, -2.0, 5.0, 0.5, 0.5, 7.0, -7.0];
        let (approx, detail) = haar_analyze_level(&fine);
        let back = haar_synthesize_level(&approx, &detail);
        for (a, b) in fine.iter().zip(&back) {
            assert!((a - b).abs() < 1e-12, "roundtrip mismatch {a} vs {b}");
        }
    }

    #[test]
    fn known_small_transform() {
        // x = [1, 1, 1, 1]: all detail coefficients vanish and the root
        // carries the whole (orthonormalised) mass: c_{0,0} = 4/2 = 2.
        let d = haar_decompose(&[1.0, 1.0, 1.0, 1.0]);
        assert!((d.approx - 2.0).abs() < 1e-12);
        for level in &d.details {
            for &c in level {
                assert!(c.abs() < 1e-12);
            }
        }
        // x = [1, 0]: c = 1/√2, d = 1/√2.
        let d = haar_decompose(&[1.0, 0.0]);
        assert!((d.approx - FRAC_1_SQRT_2).abs() < 1e-12);
        assert!((d.details[0][0] - FRAC_1_SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn full_depth_roundtrip_and_energy_preservation() {
        let mut rng = Xoshiro256PlusPlus::from_seed_u64(42);
        let series: Vec<f64> = (0..256).map(|_| rng.gen::<f64>() - 0.5).collect();
        let decomp = haar_decompose(&series);
        assert_eq!(decomp.levels(), 8);
        for (j, level) in decomp.details.iter().enumerate() {
            assert_eq!(level.len(), 1 << j);
        }
        // Orthonormality: total energy is preserved coefficient-for-sample.
        let signal_energy: f64 = series.iter().map(|&v| v * v).sum();
        let coeff_energy: f64 = decomp.approx * decomp.approx
            + decomp
                .details
                .iter()
                .flat_map(|l| l.iter())
                .map(|&v| v * v)
                .sum::<f64>();
        assert!(
            (signal_energy - coeff_energy).abs() < 1e-9 * signal_energy,
            "Parseval violated: {signal_energy} vs {coeff_energy}"
        );
        let back = haar_reconstruct(&decomp);
        for (a, b) in series.iter().zip(&back) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn white_noise_energies_are_flat_and_hurst_is_half() {
        let mut rng = Xoshiro256PlusPlus::from_seed_u64(7);
        let series: Vec<f64> = (0..(1 << 15))
            .map(|_| rng.gen::<f64>() - 0.5)
            .collect();
        let energies = haar_detail_energies(&series);
        // For iid noise every octave has the same expected energy (= Var).
        // Restrict the per-level check to levels with ≥ 512 coefficients so
        // the χ² fluctuation of the energy estimate stays below ~7%.
        let var = 1.0 / 12.0;
        for &e in energies.iter().skip(9) {
            assert!((e - var).abs() < 0.2 * var, "octave energy {e} vs {var}");
        }
        let est = wavelet_hurst(&series);
        assert!(
            (est.h - 0.5).abs() < 0.06,
            "wavelet H on white noise: {}",
            est.h
        );
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn decompose_rejects_non_power_of_two() {
        haar_decompose(&[1.0, 2.0, 3.0]);
    }
}

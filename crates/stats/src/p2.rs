//! Streaming quantile estimation (the P² algorithm of Jain & Chlamtac).
//!
//! The replication harness can produce hundreds of millions of workload
//! observations per run; storing them to compute delay percentiles (the
//! "maximum delay" QoS metric is really a high quantile in practice) is not
//! an option. P² maintains five markers and adjusts them with parabolic
//! interpolation — O(1) memory and time per observation, typically within
//! a fraction of a percent of the exact quantile for smooth distributions.

/// P² estimator for a single quantile `q ∈ (0, 1)`.
#[derive(Debug, Clone)]
pub struct P2Quantile {
    q: f64,
    /// Marker heights.
    heights: [f64; 5],
    /// Marker positions (1-based observation ranks).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Desired position increments per observation.
    increments: [f64; 5],
    /// Observations seen so far.
    count: usize,
    /// Initial observations buffer (first five).
    warmup: Vec<f64>,
}

impl P2Quantile {
    /// Creates an estimator for quantile `q`.
    ///
    /// # Panics
    /// Panics unless `q ∈ (0, 1)`.
    pub fn new(q: f64) -> Self {
        assert!(q > 0.0 && q < 1.0, "quantile must be in (0,1), got {q}");
        Self {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
            warmup: Vec::with_capacity(5),
        }
    }

    /// The target quantile level.
    pub fn q(&self) -> f64 {
        self.q
    }

    /// Observations processed.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Feeds one observation.
    pub fn observe(&mut self, x: f64) {
        self.count += 1;
        if self.warmup.len() < 5 {
            self.warmup.push(x);
            if self.warmup.len() == 5 {
                self.warmup.sort_by(|a, b| a.total_cmp(b));
                for (h, &w) in self.heights.iter_mut().zip(self.warmup.iter()) {
                    *h = w;
                }
            }
            return;
        }

        // Locate the cell containing x and bump marker positions.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            // heights[k] <= x < heights[k+1]
            (0..4)
                .find(|&i| x < self.heights[i + 1])
                .expect("bracketed above")
        };
        for p in self.positions.iter_mut().skip(k + 1) {
            *p += 1.0;
        }
        for (d, inc) in self.desired.iter_mut().zip(self.increments.iter()) {
            *d += inc;
        }

        // Adjust interior markers toward their desired positions.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let right = self.positions[i + 1] - self.positions[i];
            let left = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && right > 1.0) || (d <= -1.0 && left < -1.0) {
                let d = d.signum();
                let candidate = self.parabolic(i, d);
                let new_h = if self.heights[i - 1] < candidate && candidate < self.heights[i + 1]
                {
                    candidate
                } else {
                    self.linear(i, d)
                };
                self.heights[i] = new_h;
                self.positions[i] += d;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let (hm, h, hp) = (self.heights[i - 1], self.heights[i], self.heights[i + 1]);
        let (nm, n, np) = (self.positions[i - 1], self.positions[i], self.positions[i + 1]);
        h + d / (np - nm)
            * ((n - nm + d) * (hp - h) / (np - n) + (np - n - d) * (h - hm) / (n - nm))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.heights[i]
            + d * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }

    /// Current quantile estimate.
    ///
    /// Before five observations have arrived this falls back to the exact
    /// small-sample quantile of what has been seen.
    ///
    /// # Panics
    /// Panics if no observations have been fed.
    pub fn estimate(&self) -> f64 {
        assert!(self.count > 0, "no observations");
        if self.warmup.len() < 5 {
            let mut xs = self.warmup.clone();
            xs.sort_by(|a, b| a.total_cmp(b));
            return crate::descriptive::quantile(&xs, self.q);
        }
        self.heights[2]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Normal;
    use crate::rng::Xoshiro256PlusPlus;
    use crate::special::normal_quantile;

    #[test]
    fn median_of_uniform_stream() {
        let mut p2 = P2Quantile::new(0.5);
        let mut rng = Xoshiro256PlusPlus::from_seed_u64(401);
        for _ in 0..200_000 {
            p2.observe(rng.next_f64());
        }
        let est = p2.estimate();
        assert!((est - 0.5).abs() < 0.01, "median {est}");
    }

    #[test]
    fn high_quantile_of_gaussian() {
        // The regime the simulator cares about: a p99.9 delay percentile.
        let mut p2 = P2Quantile::new(0.999);
        let mut d = Normal::new(100.0, 15.0);
        let mut rng = Xoshiro256PlusPlus::from_seed_u64(402);
        for _ in 0..400_000 {
            p2.observe(d.sample(&mut rng));
        }
        let exact = 100.0 + 15.0 * normal_quantile(0.999);
        let est = p2.estimate();
        assert!(
            (est - exact).abs() < 0.02 * exact,
            "p99.9: {est} vs exact {exact}"
        );
    }

    #[test]
    fn small_samples_fall_back_to_exact() {
        let mut p2 = P2Quantile::new(0.5);
        p2.observe(3.0);
        p2.observe(1.0);
        p2.observe(2.0);
        assert!((p2.estimate() - 2.0).abs() < 1e-12);
        assert_eq!(p2.count(), 3);
    }

    #[test]
    fn monotone_in_quantile_level() {
        let mut lo = P2Quantile::new(0.25);
        let mut hi = P2Quantile::new(0.75);
        let mut rng = Xoshiro256PlusPlus::from_seed_u64(403);
        for _ in 0..50_000 {
            let x = rng.next_f64();
            lo.observe(x);
            hi.observe(x);
        }
        assert!(lo.estimate() < hi.estimate());
        assert!((lo.estimate() - 0.25).abs() < 0.02);
        assert!((hi.estimate() - 0.75).abs() < 0.02);
    }

    #[test]
    #[should_panic]
    fn rejects_degenerate_level() {
        P2Quantile::new(1.0);
    }

    #[test]
    #[should_panic]
    fn estimate_requires_data() {
        P2Quantile::new(0.5).estimate();
    }
}

//! Space-priority queueing with a CLP discard threshold.
//!
//! Real ATM switches implement the CLP bit with *partial buffer sharing*:
//! low-priority (CLP = 1) traffic is accepted only while the buffer content
//! is below a threshold `T < B`; high-priority (CLP = 0) traffic may use the
//! whole buffer. The paper's loss targets refer to CLP = 0 cells; this
//! module lets the examples and ablations measure the two classes
//! separately — e.g. what happens to tagged (UPC-marked) video cells versus
//! contract-conforming ones.
//!
//! Fluid semantics per frame (consistent with [`crate::queue::FluidQueue`]):
//! high-priority arrivals `xh` and low-priority arrivals `xl` drain against
//! capacity `C`; low-priority fluid is admitted only up to threshold `T`,
//! high-priority up to `B`. Within a frame, admission is evaluated at the
//! frame boundary workload (a standard discrete-time approximation of
//! partial buffer sharing).

use crate::queue::LossAccount;

/// Two-class fluid queue with partial buffer sharing.
#[derive(Debug, Clone)]
pub struct PriorityQueue {
    capacity: f64,
    buffer: f64,
    threshold: f64,
    workload: f64,
    high: LossAccount,
    low: LossAccount,
}

impl PriorityQueue {
    /// Creates the queue: total buffer `buffer`, CLP-1 admission threshold
    /// `threshold <= buffer`, service `capacity` per frame.
    ///
    /// # Panics
    /// Panics on invalid sizes.
    pub fn new(capacity: f64, buffer: f64, threshold: f64) -> Self {
        assert!(capacity > 0.0 && capacity.is_finite(), "invalid capacity");
        assert!(buffer >= 0.0 && buffer.is_finite(), "invalid buffer");
        assert!(
            (0.0..=buffer).contains(&threshold),
            "threshold {threshold} must lie in [0, {buffer}]"
        );
        Self {
            capacity,
            buffer,
            threshold,
            workload: 0.0,
            high: LossAccount::default(),
            low: LossAccount::default(),
        }
    }

    /// Offers one frame of high- (CLP=0) and low-priority (CLP=1) fluid;
    /// returns (high cells lost, low cells lost).
    pub fn offer(&mut self, high: f64, low: f64) -> (f64, f64) {
        debug_assert!(high >= 0.0 && low >= 0.0);
        self.high.offered += high;
        self.low.offered += low;

        // Low-priority admission: only the room below the threshold, after
        // accounting for this frame's service capacity.
        let low_room = (self.threshold + self.capacity - self.workload - high).max(0.0);
        let low_admitted = low.min(low_room);
        let low_lost = low - low_admitted;

        // High-priority uses the full buffer.
        let unconstrained = (self.workload + high + low_admitted - self.capacity).max(0.0);
        let high_lost = (unconstrained - self.buffer).max(0.0);
        self.workload = unconstrained.min(self.buffer);

        self.high.lost += high_lost;
        self.low.lost += low_lost;
        (high_lost, low_lost)
    }

    /// Current workload (cells).
    pub fn workload(&self) -> f64 {
        self.workload
    }

    /// High-priority (CLP=0) loss account.
    pub fn high_account(&self) -> LossAccount {
        self.high
    }

    /// Low-priority (CLP=1) loss account.
    pub fn low_account(&self) -> LossAccount {
        self.low
    }

    /// Clears all state.
    pub fn reset(&mut self) {
        self.workload = 0.0;
        self.high = LossAccount::default();
        self.low = LossAccount::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_loss_under_threshold() {
        let mut q = PriorityQueue::new(100.0, 50.0, 30.0);
        for _ in 0..20 {
            let (h, l) = q.offer(60.0, 30.0);
            assert_eq!((h, l), (0.0, 0.0));
        }
    }

    #[test]
    fn low_priority_dropped_first() {
        let mut q = PriorityQueue::new(100.0, 50.0, 10.0);
        // Fill with high priority to workload 40 (> threshold).
        q.offer(140.0, 0.0);
        assert_eq!(q.workload(), 40.0);
        // Now low priority arrivals find the threshold exceeded...
        let (h, l) = q.offer(50.0, 80.0);
        assert_eq!(h, 0.0, "high priority must survive");
        // low_room = (10 + 100 - 40 - 50)+ = 20 -> 60 lost
        assert_eq!(l, 60.0);
        // ...while high priority still fits the full buffer.
        assert!(q.workload() <= 50.0);
    }

    #[test]
    fn high_priority_protected_by_threshold() {
        // With and without low-priority load, high-priority loss stays
        // similar because low traffic cannot push the queue past T by much.
        let run = |low_per_frame: f64| -> f64 {
            let mut q = PriorityQueue::new(100.0, 50.0, 5.0);
            for i in 0..1000 {
                let high = if i % 10 == 0 { 180.0 } else { 60.0 };
                q.offer(high, low_per_frame);
            }
            q.high_account().clr()
        };
        let clean = run(0.0);
        let loaded = run(35.0);
        assert!(
            (loaded - clean).abs() <= 0.35 * clean.max(1e-6) + 1e-6,
            "high-priority CLR moved too much: {clean} -> {loaded}"
        );
    }

    #[test]
    fn threshold_equal_buffer_degenerates_to_fifo() {
        use crate::queue::FluidQueue;
        let mut pq = PriorityQueue::new(100.0, 40.0, 40.0);
        let mut fq = FluidQueue::finite(100.0, 40.0);
        let pattern = [150.0, 20.0, 300.0, 0.0, 90.0, 250.0];
        for &x in &pattern {
            pq.offer(x, 0.0);
            fq.offer(x);
            assert!((pq.workload() - fq.workload()).abs() < 1e-9);
        }
        assert!((pq.high_account().lost - fq.account().lost).abs() < 1e-9);
    }

    #[test]
    fn zero_threshold_starves_low_priority_under_backlog() {
        let mut q = PriorityQueue::new(100.0, 50.0, 0.0);
        q.offer(130.0, 0.0); // workload 30
        let (_, l) = q.offer(0.0, 100.0);
        // low_room = (0 + 100 - 30)+ = 70 -> 30 lost
        assert_eq!(l, 30.0);
    }

    #[test]
    fn accounts_track_offered_and_lost() {
        let mut q = PriorityQueue::new(10.0, 5.0, 2.0);
        q.offer(20.0, 10.0);
        let h = q.high_account();
        let l = q.low_account();
        assert_eq!(h.offered, 20.0);
        assert_eq!(l.offered, 10.0);
        assert!(h.lost > 0.0 || l.lost > 0.0);
        q.reset();
        assert_eq!(q.high_account().offered, 0.0);
    }

    #[test]
    #[should_panic]
    fn rejects_threshold_above_buffer() {
        PriorityQueue::new(10.0, 5.0, 6.0);
    }
}

//! Fault-tolerant parallel replication harness.
//!
//! Reproduces the paper's measurement protocol: independent replications of
//! a multiplexer of N homogeneous sources, CLR estimated per buffer size,
//! replication-level Student-t confidence intervals. Engineering choices
//! worth noting:
//!
//! * **Common random numbers across buffer sizes** — every finite-buffer
//!   queue in the sweep consumes the *same* arrival stream within a
//!   replication, so CLR curves over buffer size are smooth and the
//!   between-buffer comparisons have far lower variance than independent
//!   runs (and one model advance feeds the entire sweep).
//! * **Deterministic seeding** — replication r uses the stream
//!   `root.split(r)`; results are bit-reproducible for a given `seed`
//!   regardless of thread count.
//! * **Typed failure** — nothing in this module panics on bad input or bad
//!   model output. Configuration problems, NaN/Inf/negative rates (with the
//!   offending replication, frame and seed), unusable checkpoint files and
//!   exhausted watchdog budgets all surface as [`SimError`].
//! * **Checkpoint/resume** — with a [`CheckpointPolicy`], completed
//!   replications are persisted and a killed run resumes bit-identically
//!   (see the [`checkpoint`](crate::checkpoint) module).
//! * **Watchdog degradation** — with a [`Watchdog`], a run that overruns its
//!   budget returns the replications it finished, with the shortfall
//!   recorded in [`Provenance`] instead of being silently absorbed.

use crate::checkpoint::{self, CheckpointPolicy};
use crate::error::SimError;
use crate::fault;
use crate::guard::Guard;
use crate::queue::{BopEstimator, FluidQueue, LossAccount};
use std::collections::BTreeMap;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use vbr_models::FrameProcess;
use vbr_obs::{span, Event, PipelineMetrics, Recorder, RunSummary, StageTable};
use vbr_stats::rng::Xoshiro256PlusPlus;
use vbr_stats::ConfidenceInterval;

/// Frames between watchdog deadline checks inside a replication. Checking
/// wall time every frame would cost a syscall per 40 ms of simulated video;
/// every 1024 frames it is noise while still bounding overrun detection to
/// well under a second of wall time.
const WATCHDOG_CHECK_FRAMES: usize = 1024;

/// Frames advanced per batch through the aggregate-arrivals buffer. Big
/// enough to amortize per-batch work (virtual dispatch, guard scans, queue
/// state loads) to noise, small enough that the buffer stays cache-resident
/// (4096 × 8 B = 32 KiB). Runs with a replication deadline clamp the batch
/// to [`WATCHDOG_CHECK_FRAMES`] to keep the scalar loop's timeout
/// granularity.
const BATCH_FRAMES: usize = 4096;

/// Configuration of one CLR experiment.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Number of multiplexed homogeneous sources (the paper uses N = 30).
    pub n_sources: usize,
    /// Per-source bandwidth c (cells/frame); total capacity is `N·c`.
    pub capacity_per_source: f64,
    /// Total buffer sizes B (cells), strictly increasing; CLR is measured
    /// for all of them simultaneously.
    pub buffers_total: Vec<f64>,
    /// Measured frames per replication (post-warmup).
    pub frames_per_replication: usize,
    /// Warm-up frames discarded from the loss accounts (queues keep their
    /// workload so the measured window starts near steady state).
    pub warmup_frames: usize,
    /// Number of independent replications (the paper uses 60).
    pub replications: usize,
    /// Root RNG seed.
    pub seed: u64,
    /// Frame duration in seconds (0.04 in the paper).
    pub ts: f64,
    /// Also track the infinite-buffer workload survival curve over the
    /// `buffers_total` grid (for BOP-vs-asymptotics comparisons, Fig. 10).
    pub track_bop: bool,
}

impl SimConfig {
    /// The paper's canonical setting: N = 30, c = 538 cells/frame,
    /// T_s = 40 ms. Buffer grid, length and replications are caller-chosen.
    pub fn paper_defaults(buffers_total: Vec<f64>, frames: usize, replications: usize) -> Self {
        Self {
            n_sources: 30,
            capacity_per_source: 538.0,
            buffers_total,
            frames_per_replication: frames,
            warmup_frames: frames / 20,
            replications,
            seed: 0x5EED_CAFE,
            ts: 0.04,
            track_bop: false,
        }
    }

    /// Checks every field, reporting the first violation as
    /// [`SimError::InvalidConfig`] instead of panicking — a malformed config
    /// must not take down a fleet runner that manages many experiments.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.n_sources < 1 {
            return Err(SimError::invalid_config("n_sources", "need at least one source"));
        }
        if !(self.capacity_per_source > 0.0 && self.capacity_per_source.is_finite()) {
            return Err(SimError::invalid_config(
                "capacity_per_source",
                format!("invalid capacity {}", self.capacity_per_source),
            ));
        }
        if self.buffers_total.is_empty() {
            return Err(SimError::invalid_config("buffers_total", "no buffer sizes"));
        }
        if let Some(&bad) = self
            .buffers_total
            .iter()
            .find(|b| !(b.is_finite() && **b >= 0.0))
        {
            return Err(SimError::invalid_config(
                "buffers_total",
                format!("invalid buffer size {bad}"),
            ));
        }
        if !self.buffers_total.windows(2).all(|w| w[0] < w[1]) {
            return Err(SimError::invalid_config(
                "buffers_total",
                "buffer grid must be strictly increasing",
            ));
        }
        if self.frames_per_replication == 0 {
            return Err(SimError::invalid_config(
                "frames_per_replication",
                "zero-length replication",
            ));
        }
        if self.warmup_frames >= self.frames_per_replication {
            return Err(SimError::invalid_config(
                "warmup_frames",
                format!(
                    "warmup ({}) must be shorter than the measured window ({})",
                    self.warmup_frames, self.frames_per_replication
                ),
            ));
        }
        if self.replications < 1 {
            return Err(SimError::invalid_config(
                "replications",
                "need at least one replication",
            ));
        }
        if !(self.ts > 0.0 && self.ts.is_finite()) {
            return Err(SimError::invalid_config(
                "ts",
                format!("invalid frame duration {}", self.ts),
            ));
        }
        Ok(())
    }

    /// Total capacity `N·c` (cells/frame).
    pub fn total_capacity(&self) -> f64 {
        self.n_sources as f64 * self.capacity_per_source
    }

    /// Buffer size expressed as maximum queueing delay (msec).
    pub fn buffer_ms(&self, buffer_total: f64) -> f64 {
        buffer_total / self.total_capacity() * self.ts * 1e3
    }
}

/// Wall-clock guardrails for a run. `Default` disables both (no overhead).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Watchdog {
    /// Per-replication frame-progress deadline: a replication still running
    /// after this much wall time is abandoned (counted in
    /// [`Provenance::timed_out`]) and the harness moves on.
    pub replication_deadline: Option<Duration>,
    /// Run-level budget: once exceeded, no *new* replication starts — except
    /// that the run always finishes at least one replication if it can, so
    /// there is a result to degrade to.
    pub run_budget: Option<Duration>,
}

/// Execution options for [`run`] / [`run_mix`].
#[derive(Clone, Default)]
pub struct RunOptions {
    /// Persist completed replications and resume from them.
    pub checkpoint: Option<CheckpointPolicy>,
    /// Wall-clock guardrails.
    pub watchdog: Watchdog,
    /// Worker-thread cap (None = available parallelism). Results are
    /// identical for any thread count; this only bounds resource use — and,
    /// together with `watchdog.run_budget`, controls how many replications a
    /// degraded run completes.
    pub threads: Option<usize>,
    /// Telemetry sink. When set, the run emits [`Event`]s (replication
    /// start/end, checkpoints, guard trips, watchdog actions), streams
    /// pipeline metrics at batch granularity, times the instrumented stages,
    /// and delivers a [`RunSummary`] at run end. Never touches an RNG:
    /// results are bit-identical with or without a recorder.
    pub recorder: Option<Arc<dyn Recorder>>,
    /// Restrict the run to this half-open range of replication indices — a
    /// campaign **shard**. Replication `r` is always seeded `root.split(r)`,
    /// so shards computed in separate processes union bit-identically into
    /// the full run. `None` = all of `0..config.replications`. Provenance
    /// (`requested`) counts the range, not the config total.
    pub replication_range: Option<std::ops::Range<usize>>,
    /// Emit [`Event::Heartbeat`] at most once per this interval per worker
    /// thread while a replication computes, so an external supervisor can
    /// tell a slow replication from a hung one. `None` (default) = no
    /// heartbeats. Requires a recorder to have any effect.
    pub heartbeat: Option<Duration>,
}

impl std::fmt::Debug for RunOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunOptions")
            .field("checkpoint", &self.checkpoint)
            .field("watchdog", &self.watchdog)
            .field("threads", &self.threads)
            .field("recorder", &self.recorder.as_ref().map(|_| "Recorder"))
            .field("replication_range", &self.replication_range)
            .field("heartbeat", &self.heartbeat)
            .finish()
    }
}

impl RunOptions {
    /// The replication indices this run computes: the configured shard
    /// range, or all of `0..config.replications`.
    pub(crate) fn range(&self, config: &SimConfig) -> std::ops::Range<usize> {
        self.replication_range
            .clone()
            .unwrap_or(0..config.replications)
    }

    /// Validates the shard range against the config.
    fn validate_range(&self, config: &SimConfig) -> Result<(), SimError> {
        if let Some(r) = &self.replication_range {
            if r.start >= r.end {
                return Err(SimError::invalid_config(
                    "replication_range",
                    format!("empty range {}..{}", r.start, r.end),
                ));
            }
            if r.end > config.replications {
                return Err(SimError::invalid_config(
                    "replication_range",
                    format!(
                        "range {}..{} exceeds config.replications = {}",
                        r.start, r.end, config.replications
                    ),
                ));
            }
        }
        Ok(())
    }
}

/// Per-run observability context: the recorder plus the live metrics and
/// stage-timing accumulators. Built once per run iff a recorder is
/// configured — every instrumentation point in the harness is gated on
/// `Option<&ObsCtx>` being `Some`, so a recorder-less run pays one branch.
struct ObsCtx {
    recorder: Arc<dyn Recorder>,
    metrics: PipelineMetrics,
    stages: Mutex<StageTable>,
    t0: Instant,
}

impl ObsCtx {
    fn new(recorder: Arc<dyn Recorder>) -> Self {
        Self {
            recorder,
            metrics: PipelineMetrics::default(),
            stages: Mutex::new(StageTable::default()),
            t0: Instant::now(),
        }
    }

    fn emit(&self, event: Event) {
        self.recorder.record(&event);
    }

    /// Merges the current thread's drained span table into the run's table.
    fn merge_spans(&self) {
        let table = span::drain();
        if !table.is_empty() {
            self.stages
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .merge(&table);
        }
    }
}

/// How a run's results relate to what was asked for — the `completed /
/// requested` record that keeps a degraded run honest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Provenance {
    /// Replications the configuration asked for.
    pub requested: usize,
    /// Replications whose results are included in the estimates.
    pub completed: usize,
    /// Replications abandoned by the per-replication deadline.
    pub timed_out: usize,
    /// Of the completed, how many were loaded from a checkpoint.
    pub resumed: usize,
    /// True if the run-level budget expired before all replications ran.
    pub budget_exhausted: bool,
}

impl Provenance {
    /// True if the estimates cover fewer replications than requested.
    pub fn is_partial(&self) -> bool {
        self.completed < self.requested
    }
}

/// CLR estimate at one buffer size.
#[derive(Debug, Clone)]
pub struct ClrEstimate {
    /// Total buffer B (cells).
    pub buffer_total: f64,
    /// B as maximum delay (msec).
    pub buffer_ms: f64,
    /// Student-t interval of the per-replication CLRs.
    pub clr: ConfidenceInterval,
    /// Pooled loss account across all replications (the pooled-ratio CLR
    /// `lost/offered` is the preferred point estimate at very low loss).
    pub pooled: LossAccount,
}

/// Full outcome of a CLR experiment.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// One estimate per configured buffer size, in grid order.
    pub per_buffer: Vec<ClrEstimate>,
    /// Infinite-buffer survival curve `P(W > B)` over the buffer grid, if
    /// requested.
    pub bop: Option<Vec<(f64, f64)>>,
    /// Total measured frames across the *completed* replications.
    pub frames_total: u64,
    /// Completed/requested accounting; check [`Provenance::is_partial`]
    /// before treating the estimates as the full protocol.
    pub provenance: Provenance,
}

/// One completed replication. `pub(crate)` so the checkpoint codec can
/// persist and restore it.
#[derive(Debug, Clone)]
pub(crate) struct RepResult {
    pub(crate) accounts: Vec<LossAccount>,
    pub(crate) clrs: Vec<f64>,
    pub(crate) bop: Option<BopEstimator>,
}

impl RepResult {
    /// Rebuilds a result from its persisted accounts (CLRs are re-derived —
    /// `lost/offered` is the same computation the live path ran, so the
    /// round-trip is bit-exact).
    pub(crate) fn from_accounts(accounts: Vec<LossAccount>, bop: Option<BopEstimator>) -> Self {
        let clrs = accounts.iter().map(|a| a.clr()).collect();
        Self {
            accounts,
            clrs,
            bop,
        }
    }
}

/// Why a single replication did not produce a result.
enum RepFailure {
    /// Numeric fault or other fatal error: the whole run must stop.
    Fatal(SimError),
    /// The per-replication deadline expired; degradable.
    TimedOut,
}

/// A heterogeneous source mix: `count` copies of each prototype. The
/// `n_sources` field of the config is ignored in favour of the mix total
/// (but `capacity_per_source` still scales by the config's `n_sources` so
/// the operating point stays explicit).
pub struct SourceMix<'a> {
    /// (prototype, how many copies) pairs.
    pub groups: Vec<(&'a dyn FrameProcess, usize)>,
}

impl<'a> SourceMix<'a> {
    /// Builds a mix; rejects an empty mix (zero total sources).
    pub fn new(groups: Vec<(&'a dyn FrameProcess, usize)>) -> Result<Self, SimError> {
        if groups.iter().map(|&(_, n)| n).sum::<usize>() == 0 {
            return Err(SimError::invalid_config(
                "mix",
                "mix needs at least one source",
            ));
        }
        Ok(Self { groups })
    }

    /// Total number of sources.
    pub fn total(&self) -> usize {
        self.groups.iter().map(|&(_, n)| n).sum()
    }

    /// Aggregate mean rate (cells/frame).
    pub fn mean(&self) -> f64 {
        self.groups
            .iter()
            .map(|&(p, n)| p.mean() * n as f64)
            .sum()
    }

    fn instantiate(&self) -> Vec<Box<dyn FrameProcess>> {
        let mut out = Vec::with_capacity(self.total());
        for &(proto, n) in &self.groups {
            for _ in 0..n {
                out.push(proto.boxed_clone());
            }
        }
        out
    }
}

fn run_replication(
    prototype: &dyn FrameProcess,
    config: &SimConfig,
    rep: usize,
    root: &Xoshiro256PlusPlus,
    watchdog: &Watchdog,
    heartbeat: Option<Duration>,
    obs: Option<&ObsCtx>,
) -> Result<RepResult, RepFailure> {
    let sources: Vec<Box<dyn FrameProcess>> = (0..config.n_sources)
        .map(|_| prototype.boxed_clone())
        .collect();
    run_replication_sources(sources, config, rep, root, watchdog, heartbeat, obs)
}

#[allow(clippy::too_many_arguments)]
fn run_replication_sources(
    mut sources: Vec<Box<dyn FrameProcess>>,
    config: &SimConfig,
    rep: usize,
    root: &Xoshiro256PlusPlus,
    watchdog: &Watchdog,
    heartbeat: Option<Duration>,
    obs: Option<&ObsCtx>,
) -> Result<RepResult, RepFailure> {
    let _rep_span = span!("replication");
    let mut rng = root.split(rep as u64);
    for s in sources.iter_mut() {
        s.reset(&mut rng);
    }

    let total_capacity = config.total_capacity();
    let mut queues: Vec<FluidQueue> = config
        .buffers_total
        .iter()
        .map(|&b| FluidQueue::finite(total_capacity, b))
        .collect();
    let mut infinite = config.track_bop.then(|| {
        (
            FluidQueue::infinite(total_capacity),
            BopEstimator::new(config.buffers_total.clone()),
        )
    });

    let mut guard = Guard::new(rep, config.seed);
    if let Some(o) = obs {
        guard = guard.with_trip_counters(o.metrics.guard_trips.clone());
    }
    let started = watchdog.replication_deadline.map(|d| (Instant::now(), d));
    let total_frames = config.warmup_frames + config.frames_per_replication;

    // Block-oriented hot loop: advance the sources a whole batch of frames
    // into one aggregate-arrivals buffer, then sweep each queue (and the
    // BOP estimator) over the batch. Results are bit-identical to the
    // per-frame loop — sources draw from the shared stream in the same
    // order, queue recursions accumulate in the same order — the batch form
    // only hoists dispatch, guard checks and queue state off the per-frame
    // path.
    // Heartbeats, like the watchdog, need the loop to come up for air often
    // enough to notice the clock.
    let max_batch = if started.is_some() || (heartbeat.is_some() && obs.is_some()) {
        WATCHDOG_CHECK_FRAMES
    } else {
        BATCH_FRAMES
    };
    let mut last_beat = Instant::now();
    let mut aggregate = vec![0.0; max_batch.min(total_frames.max(1))];
    let mut frame = 0usize;
    while frame < total_frames {
        if frame == config.warmup_frames {
            for q in queues.iter_mut() {
                q.clear_accounts();
            }
        }
        if let Some((t0, deadline)) = started {
            if t0.elapsed() > deadline {
                return Err(RepFailure::TimedOut);
            }
        }
        // A batch never crosses the warmup/measurement boundary, so the
        // account clearing and the BOP warmup gate stay batch-level
        // decisions.
        let end = if frame < config.warmup_frames {
            (frame + max_batch).min(config.warmup_frames)
        } else {
            (frame + max_batch).min(total_frames)
        };
        let batch = &mut aggregate[..end - frame];
        // Batch wall time is only clocked when a recorder is attached — the
        // Instant reads stay off the recorder-less path entirely.
        let batch_t0 = obs.map(|_| Instant::now());
        {
            let _s = span!("generate");
            fill_aggregate_batch(&mut sources, &mut rng, &guard, batch)
                .map_err(RepFailure::Fatal)?;
        }
        {
            let _s = span!("queue.sweep");
            for (i, q) in queues.iter_mut().enumerate() {
                q.offer_batch(batch);
                guard.check_queue(i, q).map_err(RepFailure::Fatal)?;
            }
            if let Some((q, est)) = infinite.as_mut() {
                if frame >= config.warmup_frames {
                    q.offer_batch_observing(batch, est);
                } else {
                    q.offer_batch(batch);
                }
            }
        }
        if let Some(o) = obs {
            o.metrics.frames.add(batch.len() as u64);
            o.metrics.batches.add(1);
            for q in queues.iter() {
                o.metrics.queue_depth.record(q.workload());
            }
            if let Some(t0) = batch_t0 {
                o.metrics.batch_ns.record(t0.elapsed().as_nanos() as f64);
            }
        }
        guard.advance_by(batch.len() as u64);
        frame = end;
        if let (Some(interval), Some(o)) = (heartbeat, obs) {
            if last_beat.elapsed() >= interval {
                o.emit(Event::Heartbeat {
                    replication: rep,
                    frame: frame as u64,
                });
                last_beat = Instant::now();
            }
        }
    }

    let accounts: Vec<LossAccount> = queues.iter().map(|q| q.account()).collect();
    Ok(RepResult::from_accounts(
        accounts,
        infinite.map(|(_, est)| est),
    ))
}

/// Advances every source through one batch, validating outputs and writing
/// the per-frame aggregates into `batch`.
///
/// Sources draw from the shared replication stream in the scalar path's
/// exact order — frame-major, then source — because the runner's common
/// random numbers are interleaved across sources; handing each source a
/// whole sub-batch would reorder the draws. Only the single-source case can
/// therefore use [`FrameProcess::fill_frames`] directly (the dominant win:
/// homogeneous-model runs are the paper's configuration, and `run`
/// replications always see one prototype). The multi-source path keeps the
/// per-source validity check inline so a bad value is still attributed to
/// its exact source and frame before any later draw is examined.
fn fill_aggregate_batch(
    sources: &mut [Box<dyn FrameProcess>],
    rng: &mut Xoshiro256PlusPlus,
    guard: &Guard,
    batch: &mut [f64],
) -> Result<(), SimError> {
    use crate::error::FaultSite;

    if let [source] = sources {
        source.fill_frames(batch, rng);
        return guard.check_batch(batch, FaultSite::Source(0));
    }
    for (offset, slot) in batch.iter_mut().enumerate() {
        let mut aggregate = 0.0;
        for (i, s) in sources.iter_mut().enumerate() {
            aggregate += guard.check_source_at(offset as u64, i, s.next_frame(rng))?;
        }
        *slot = aggregate;
    }
    // Summing finite non-negatives can only overflow to +inf; one scan per
    // batch replaces the scalar loop's per-frame aggregate check and
    // reports the same site and frame.
    guard.check_batch(batch, FaultSite::Aggregate)
}

/// Shared mutable state of a run: completed results plus checkpoint
/// bookkeeping (new completions since the last persisted write).
struct RunState {
    completed: BTreeMap<usize, RepResult>,
    unsaved: usize,
}

/// Handles one replication outcome against the shared state; returns an
/// error only for fatal conditions (numeric fault, checkpoint write
/// failure). With a recorder attached, this is where the per-replication
/// events and metrics land: completion (duration, CLR, cell accounting),
/// progress heartbeats, checkpoint saves, watchdog timeouts and guard trips.
#[allow(clippy::too_many_arguments)]
fn absorb(
    state: &Mutex<RunState>,
    options: &RunOptions,
    config: &SimConfig,
    rep: usize,
    outcome: Result<RepResult, RepFailure>,
    timed_out: &AtomicUsize,
    obs: Option<&ObsCtx>,
    rep_elapsed: Duration,
) -> Result<(), SimError> {
    match outcome {
        Ok(result) => {
            if let Some(o) = obs {
                o.metrics.replications_completed.add(1);
                o.metrics
                    .observe_replication_seconds(rep_elapsed.as_secs_f64());
                let a0 = &result.accounts[0];
                o.metrics.cells_offered.add(a0.offered);
                o.metrics.cells_lost_b0.add(a0.lost);
                o.emit(Event::ReplicationEnd {
                    replication: rep,
                    seed: config.seed,
                    frames: (config.warmup_frames + config.frames_per_replication) as u64,
                    duration_ns: rep_elapsed.as_nanos() as u64,
                    clr_b0: a0.clr(),
                });
            }
            let mut state = state.lock().unwrap_or_else(|e| e.into_inner());
            state.completed.insert(rep, result);
            state.unsaved += 1;
            if let Some(o) = obs {
                o.emit(Event::Progress {
                    completed: state.completed.len(),
                    requested: options.range(config).len(),
                });
            }
            if let Some(policy) = &options.checkpoint {
                if state.unsaved >= policy.every.max(1) {
                    let fingerprint = checkpoint::save(policy, config, &state.completed)?;
                    state.unsaved = 0;
                    if let Some(o) = obs {
                        o.metrics.checkpoint_saves.add(1);
                        o.emit(Event::CheckpointSaved {
                            path: policy.path.display().to_string(),
                            replications: state.completed.len(),
                            fingerprint,
                        });
                    }
                }
            }
            Ok(())
        }
        Err(RepFailure::TimedOut) => {
            timed_out.fetch_add(1, Ordering::Relaxed);
            if let Some(o) = obs {
                o.metrics.replications_timed_out.add(1);
                o.emit(Event::WatchdogTimeout {
                    replication: rep,
                    seed: config.seed,
                });
            }
            Ok(())
        }
        Err(RepFailure::Fatal(e)) => {
            if let Some(o) = obs {
                if let SimError::NumericFault(f) = &e {
                    o.emit(Event::GuardTrip {
                        replication: f.replication,
                        frame: f.frame,
                        seed: f.seed,
                        site: f.site.to_string(),
                        value: f.value,
                    });
                }
            }
            Err(e)
        }
    }
}

/// Runs the experiment with full fault tolerance: validation, numeric
/// guardrails, optional checkpoint/resume and watchdog degradation, fanning
/// replications across threads.
///
/// Deterministic for a fixed `config.seed` independent of thread count; a
/// resumed run is bit-identical to an uninterrupted one.
pub fn run(
    prototype: &dyn FrameProcess,
    config: &SimConfig,
    options: &RunOptions,
) -> Result<SimOutcome, SimError> {
    config.validate()?;
    options.validate_range(config)?;
    let range = options.range(config);
    let fault_plan = fault::FaultPlan::from_env();
    let root = Xoshiro256PlusPlus::from_seed_u64(config.seed);
    let obs = options.recorder.clone().map(ObsCtx::new);
    if let Some(o) = &obs {
        o.emit(run_start_event(config, options));
    }

    // Resume: load completed replications, degrading through the fallback
    // chain (primary → rotated `.prev` → fresh) if the primary is corrupt.
    let resumed: BTreeMap<usize, RepResult> = match &options.checkpoint {
        Some(policy) => {
            let (results, fallback) = checkpoint::load_with_fallback(&policy.path, config)?;
            if let (Some(o), Some(fb)) = (&obs, &fallback) {
                o.emit(Event::CheckpointFallback {
                    path: policy.path.display().to_string(),
                    error: fb.error.clone(),
                    recovered: fb.recovered,
                });
            }
            results
                .into_iter()
                .filter(|(rep, _)| range.contains(rep))
                .collect()
        }
        _ => BTreeMap::new(),
    };
    let n_resumed = resumed.len();
    if n_resumed > 0 {
        if let (Some(o), Some(policy)) = (&obs, &options.checkpoint) {
            o.emit(Event::CheckpointResumed {
                path: policy.path.display().to_string(),
                replications: n_resumed,
                fingerprint: checkpoint::config_fingerprint(config),
            });
        }
    }
    let remaining: Vec<usize> = range.clone().filter(|r| !resumed.contains_key(r)).collect();

    let state = Mutex::new(RunState {
        completed: resumed,
        unsaved: 0,
    });
    let timed_out = AtomicUsize::new(0);
    let budget_hit = AtomicBool::new(false);
    let fatal: Mutex<Option<SimError>> = Mutex::new(None);
    let stop = AtomicBool::new(false);
    let next = AtomicUsize::new(0);
    let run_start = Instant::now();

    let threads = options
        .threads
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        })
        .clamp(1, remaining.len().max(1));

    let worker = |proto: Box<dyn FrameProcess>| {
        // Each worker thread collects its own span timings; the tables merge
        // into the run's table when the worker drains out.
        if obs.is_some() {
            span::install();
        }
        loop {
            if stop.load(Ordering::Relaxed) {
                break;
            }
            // Budget check: never starve the run of its first result — a
            // degraded run must still have something to report.
            if let Some(budget) = options.watchdog.run_budget {
                if run_start.elapsed() > budget {
                    let have_one = {
                        let state = state.lock().unwrap_or_else(|e| e.into_inner());
                        !state.completed.is_empty()
                    };
                    if have_one {
                        budget_hit.store(true, Ordering::Relaxed);
                        break;
                    }
                }
            }
            let i = next.fetch_add(1, Ordering::Relaxed);
            let Some(&rep) = remaining.get(i) else { break };
            if let Some(o) = &obs {
                o.emit(Event::ReplicationStart {
                    replication: rep,
                    seed: config.seed,
                });
            }
            // Chaos hook: a configured fault (VBR_FAULT) fires here, after
            // the start event is flushed — the supervisor sees exactly which
            // replication the worker died on.
            fault_plan.maybe_trigger(rep, options.checkpoint.as_ref().map(|p| p.path.as_path()));
            let rep_t0 = Instant::now();
            let outcome = run_replication(
                proto.as_ref(),
                config,
                rep,
                &root,
                &options.watchdog,
                options.heartbeat,
                obs.as_ref(),
            );
            if let Err(e) = absorb(
                &state,
                options,
                config,
                rep,
                outcome,
                &timed_out,
                obs.as_ref(),
                rep_t0.elapsed(),
            ) {
                let mut slot = fatal.lock().unwrap_or_else(|p| p.into_inner());
                slot.get_or_insert(e);
                stop.store(true, Ordering::Relaxed);
                break;
            }
        }
        if let Some(o) = &obs {
            o.merge_spans();
        }
    };

    if threads <= 1 || remaining.len() <= 1 {
        worker(prototype.boxed_clone());
    } else {
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let proto = prototype.boxed_clone();
                scope.spawn(|| worker(proto));
            }
        });
    }

    if let Some(e) = fatal.lock().unwrap_or_else(|p| p.into_inner()).take() {
        return Err(e);
    }

    let state = state.into_inner().unwrap_or_else(|p| p.into_inner());
    finish(config, options, state, &timed_out, &budget_hit, n_resumed, obs)
}

/// The `run_start` event for a validated config: `replications` counts what
/// *this* process will run (the shard range, if one is set).
fn run_start_event(config: &SimConfig, options: &RunOptions) -> Event {
    Event::RunStart {
        seed: config.seed,
        replications: options.range(config).len(),
        n_sources: config.n_sources,
        frames_per_replication: config.frames_per_replication,
        buffers: config.buffers_total.len(),
    }
}

/// Runs a CLR experiment for a **heterogeneous** mix of sources — e.g. the
/// real CAC situation where DAR-modelled videoconference sources share a
/// link with LRD movie sources. `config.n_sources` is overridden by the mix
/// total (the per-source capacity is re-interpreted against that total).
///
/// Runs replications sequentially (the mix API is used for modest scenario
/// studies; the homogeneous path has the threaded harness) but supports the
/// same checkpoint/watchdog options.
pub fn run_mix(
    mix: &SourceMix<'_>,
    config: &SimConfig,
    options: &RunOptions,
) -> Result<SimOutcome, SimError> {
    let mut config = config.clone();
    config.n_sources = mix.total();
    config.validate()?;
    options.validate_range(&config)?;
    let range = options.range(&config);
    let root = Xoshiro256PlusPlus::from_seed_u64(config.seed);
    let obs = options.recorder.clone().map(ObsCtx::new);
    if let Some(o) = &obs {
        o.emit(run_start_event(&config, options));
        span::install();
    }

    let resumed: BTreeMap<usize, RepResult> = match &options.checkpoint {
        Some(policy) => {
            let (results, fallback) = checkpoint::load_with_fallback(&policy.path, &config)?;
            if let (Some(o), Some(fb)) = (&obs, &fallback) {
                o.emit(Event::CheckpointFallback {
                    path: policy.path.display().to_string(),
                    error: fb.error.clone(),
                    recovered: fb.recovered,
                });
            }
            results
                .into_iter()
                .filter(|(rep, _)| range.contains(rep))
                .collect()
        }
        _ => BTreeMap::new(),
    };
    let n_resumed = resumed.len();
    if n_resumed > 0 {
        if let (Some(o), Some(policy)) = (&obs, &options.checkpoint) {
            o.emit(Event::CheckpointResumed {
                path: policy.path.display().to_string(),
                replications: n_resumed,
                fingerprint: checkpoint::config_fingerprint(&config),
            });
        }
    }
    let state = Mutex::new(RunState {
        completed: resumed,
        unsaved: 0,
    });
    let timed_out = AtomicUsize::new(0);
    let budget_hit = AtomicBool::new(false);
    let run_start = Instant::now();

    for rep in range {
        {
            let has_rep = state
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .completed
                .contains_key(&rep);
            if has_rep {
                continue;
            }
        }
        if let Some(budget) = options.watchdog.run_budget {
            let have_one = !state
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .completed
                .is_empty();
            if run_start.elapsed() > budget && have_one {
                budget_hit.store(true, Ordering::Relaxed);
                break;
            }
        }
        if let Some(o) = &obs {
            o.emit(Event::ReplicationStart {
                replication: rep,
                seed: config.seed,
            });
        }
        let rep_t0 = Instant::now();
        let outcome = run_replication_sources(
            mix.instantiate(),
            &config,
            rep,
            &root,
            &options.watchdog,
            options.heartbeat,
            obs.as_ref(),
        );
        let absorbed = absorb(
            &state,
            options,
            &config,
            rep,
            outcome,
            &timed_out,
            obs.as_ref(),
            rep_t0.elapsed(),
        );
        if absorbed.is_err() {
            // The sequential path times its spans on the caller's thread;
            // uninstall the collector even when the run dies fatally so it
            // cannot leak into a later run on the same thread.
            if let Some(o) = &obs {
                o.merge_spans();
            }
        }
        absorbed?;
    }
    if let Some(o) = &obs {
        o.merge_spans();
    }

    let state = state.into_inner().unwrap_or_else(|p| p.into_inner());
    finish(&config, options, state, &timed_out, &budget_hit, n_resumed, obs)
}

/// Final checkpoint write, degradation accounting and outcome assembly.
/// With a recorder attached, also where the terminal events
/// (`budget_exhausted`, `run_end`) fire and the [`RunSummary`] — metrics
/// snapshot plus merged stage table — is delivered to the sinks.
#[allow(clippy::too_many_arguments)]
fn finish(
    config: &SimConfig,
    options: &RunOptions,
    state: RunState,
    timed_out: &AtomicUsize,
    budget_hit: &AtomicBool,
    resumed: usize,
    obs: Option<ObsCtx>,
) -> Result<SimOutcome, SimError> {
    let timed_out = timed_out.load(Ordering::Relaxed);
    let requested = options.range(config).len();
    if state.completed.is_empty() {
        return Err(SimError::NoCompletedReplications {
            requested,
            timed_out,
            budget: options.watchdog.run_budget,
        });
    }
    if state.unsaved > 0 {
        if let Some(policy) = &options.checkpoint {
            let fingerprint = checkpoint::save(policy, config, &state.completed)?;
            if let Some(o) = &obs {
                o.metrics.checkpoint_saves.add(1);
                o.emit(Event::CheckpointSaved {
                    path: policy.path.display().to_string(),
                    replications: state.completed.len(),
                    fingerprint,
                });
            }
        }
    }
    let provenance = Provenance {
        requested,
        completed: state.completed.len(),
        timed_out,
        resumed,
        budget_exhausted: budget_hit.load(Ordering::Relaxed),
    };
    if let Some(o) = obs {
        let wall = o.t0.elapsed();
        if provenance.budget_exhausted {
            o.emit(Event::BudgetExhausted {
                completed: provenance.completed,
                requested: provenance.requested,
            });
        }
        o.emit(Event::RunEnd {
            requested: provenance.requested,
            completed: provenance.completed,
            timed_out: provenance.timed_out,
            resumed: provenance.resumed,
            budget_exhausted: provenance.budget_exhausted,
            duration_ns: wall.as_nanos() as u64,
        });
        o.metrics
            .cells_per_sec
            .set(o.metrics.cells_offered.get() / wall.as_secs_f64().max(1e-9));
        let stages = o
            .stages
            .into_inner()
            .unwrap_or_else(|e| e.into_inner());
        let summary = RunSummary {
            requested: provenance.requested,
            completed: provenance.completed,
            timed_out: provenance.timed_out,
            resumed: provenance.resumed,
            budget_exhausted: provenance.budget_exhausted,
            wall,
            metrics: o.metrics.snapshot(),
            stages,
        };
        o.recorder.finish(&summary);
    }
    Ok(collect_outcome(config, &state.completed, provenance))
}

/// Runs the experiment, fanning replications across threads.
///
/// Deterministic for a fixed `config.seed` independent of thread count.
/// Equivalent to [`run`] with default [`RunOptions`] (no checkpointing, no
/// watchdog).
pub fn simulate_clr(
    prototype: &dyn FrameProcess,
    config: &SimConfig,
) -> Result<SimOutcome, SimError> {
    run(prototype, config, &RunOptions::default())
}

/// Heterogeneous-mix counterpart of [`simulate_clr`]; see [`run_mix`].
pub fn simulate_clr_mix(mix: &SourceMix<'_>, config: &SimConfig) -> Result<SimOutcome, SimError> {
    run_mix(mix, config, &RunOptions::default())
}

/// Assembles the outcome from a completed replication set. `pub(crate)` so
/// the campaign merge can pool per-shard checkpoint results through the
/// *same* computation a single-process run uses — pooling is a union of
/// per-replication accounts, never an average of per-shard averages, which
/// is what makes the merged CLR bit-identical.
pub(crate) fn collect_outcome(
    config: &SimConfig,
    results: &BTreeMap<usize, RepResult>,
    provenance: Provenance,
) -> SimOutcome {
    debug_assert_eq!(results.len(), provenance.completed);
    let per_buffer = (0..config.buffers_total.len())
        .map(|i| {
            let clr_samples: Vec<f64> = results.values().map(|r| r.clrs[i]).collect();
            let mut pooled = LossAccount::default();
            for r in results.values() {
                pooled.merge(&r.accounts[i]);
            }
            ClrEstimate {
                buffer_total: config.buffers_total[i],
                buffer_ms: config.buffer_ms(config.buffers_total[i]),
                clr: ConfidenceInterval::from_samples(&clr_samples, 0.95),
                pooled,
            }
        })
        .collect();

    let bop = config.track_bop.then(|| {
        let mut merged: Option<BopEstimator> = None;
        for est in results.values().filter_map(|r| r.bop.as_ref()) {
            match merged.as_mut() {
                Some(m) => m.merge(est),
                None => merged = Some(est.clone()),
            }
        }
        match merged {
            Some(merged) => merged
                .thresholds()
                .iter()
                .copied()
                .zip(merged.survival())
                .collect(),
            None => Vec::new(),
        }
    });

    SimOutcome {
        per_buffer,
        bop,
        frames_total: (results.len() * config.frames_per_replication) as u64,
        provenance,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;
    use vbr_models::{GaussianAr1, IidProcess, Marginal};

    fn quick_config(buffers: Vec<f64>) -> SimConfig {
        SimConfig {
            n_sources: 30,
            capacity_per_source: 538.0,
            buffers_total: buffers,
            frames_per_replication: 20_000,
            warmup_frames: 500,
            replications: 4,
            seed: 7,
            ts: 0.04,
            track_bop: false,
        }
    }

    #[test]
    fn zero_buffer_clr_matches_gaussian_overshoot() {
        // The paper's anchor: all models share CLR ~ 1.1e-5 at zero buffer.
        let proto = IidProcess::new(Marginal::paper_gaussian());
        let mut cfg = quick_config(vec![0.0]);
        cfg.frames_per_replication = 300_000;
        cfg.replications = 8;
        let out = simulate_clr(&proto, &cfg).expect("valid run");
        let clr = out.per_buffer[0].pooled.clr();
        assert!(
            clr > 4e-6 && clr < 3e-5,
            "zero-buffer CLR {clr:e} should be near 1.1e-5"
        );
        assert!(!out.provenance.is_partial());
    }

    #[test]
    fn clr_decreases_with_buffer() {
        let proto = GaussianAr1::new(500.0, 5000.0_f64.sqrt(), 0.9);
        let out =
            simulate_clr(&proto, &quick_config(vec![0.0, 500.0, 2000.0])).expect("valid run");
        let clrs: Vec<f64> = out.per_buffer.iter().map(|e| e.pooled.clr()).collect();
        assert!(
            clrs[0] >= clrs[1] && clrs[1] >= clrs[2],
            "CLR must fall with buffer: {clrs:?}"
        );
        assert!(clrs[0] > 0.0, "zero buffer must lose something");
    }

    #[test]
    fn deterministic_given_seed() {
        let proto = GaussianAr1::new(500.0, 70.0, 0.8);
        let mut cfg = quick_config(vec![100.0]);
        cfg.frames_per_replication = 5_000;
        let a = simulate_clr(&proto, &cfg).expect("valid run");
        let b = simulate_clr(&proto, &cfg).expect("valid run");
        assert_eq!(
            a.per_buffer[0].pooled,
            b.per_buffer[0].pooled,
            "same seed must reproduce exactly"
        );
    }

    #[test]
    fn thread_cap_does_not_change_results() {
        let proto = GaussianAr1::new(500.0, 70.0, 0.8);
        let mut cfg = quick_config(vec![100.0]);
        cfg.frames_per_replication = 3_000;
        let seq = run(
            &proto,
            &cfg,
            &RunOptions {
                threads: Some(1),
                ..RunOptions::default()
            },
        )
        .expect("sequential");
        let par = run(
            &proto,
            &cfg,
            &RunOptions {
                threads: Some(4),
                ..RunOptions::default()
            },
        )
        .expect("parallel");
        assert_eq!(seq.per_buffer[0].pooled, par.per_buffer[0].pooled);
        assert_eq!(seq.per_buffer[0].clr.mean, par.per_buffer[0].clr.mean);
    }

    #[test]
    fn buffer_ms_conversion() {
        let cfg = quick_config(vec![807.0]);
        // B = 807 cells at 16140 cells/frame and 40 ms frames -> 2 ms.
        assert!((cfg.buffer_ms(807.0) - 2.0).abs() < 1e-9);
        let out = simulate_clr(&GaussianAr1::new(500.0, 70.0, 0.5), &cfg).expect("valid run");
        assert!((out.per_buffer[0].buffer_ms - 2.0).abs() < 1e-9);
    }

    #[test]
    fn bop_tracking_produces_monotone_survival() {
        let proto = GaussianAr1::new(500.0, 70.0, 0.9);
        let mut cfg = quick_config(vec![1.0, 200.0, 800.0, 2000.0]);
        cfg.track_bop = true;
        let out = simulate_clr(&proto, &cfg).expect("valid run");
        let bop = out.bop.expect("tracked");
        assert_eq!(bop.len(), 4);
        for w in bop.windows(2) {
            assert!(w[1].1 <= w[0].1, "survival must decrease: {bop:?}");
        }
        assert!(bop[0].1 > 0.0, "some mass above the smallest threshold");
    }

    #[test]
    fn confidence_interval_shrinks_with_replications() {
        let proto = GaussianAr1::new(500.0, 70.0, 0.9);
        let mut small = quick_config(vec![100.0]);
        small.replications = 3;
        small.frames_per_replication = 5_000;
        let mut large = small.clone();
        large.replications = 12;
        let hw_small = simulate_clr(&proto, &small).expect("valid run").per_buffer[0]
            .clr
            .half_width;
        let hw_large = simulate_clr(&proto, &large).expect("valid run").per_buffer[0]
            .clr
            .half_width;
        assert!(
            hw_large < hw_small,
            "CI should shrink: {hw_large} vs {hw_small}"
        );
    }

    #[test]
    fn rejects_unsorted_buffer_grid() {
        let proto = IidProcess::new(Marginal::paper_gaussian());
        let err = simulate_clr(&proto, &quick_config(vec![10.0, 5.0])).unwrap_err();
        assert!(
            matches!(
                err,
                SimError::InvalidConfig {
                    field: "buffers_total",
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn rejects_warmup_swallowing_measurement() {
        let proto = IidProcess::new(Marginal::paper_gaussian());
        let mut cfg = quick_config(vec![10.0]);
        cfg.warmup_frames = cfg.frames_per_replication;
        let err = simulate_clr(&proto, &cfg).unwrap_err();
        assert!(
            matches!(
                err,
                SimError::InvalidConfig {
                    field: "warmup_frames",
                    ..
                }
            ),
            "{err}"
        );
    }

    /// A model that stalls (sleeps) on every frame — drives watchdog tests.
    #[derive(Debug, Clone)]
    struct Molasses;

    impl FrameProcess for Molasses {
        fn next_frame(&mut self, _rng: &mut dyn RngCore) -> f64 {
            std::thread::sleep(Duration::from_millis(2));
            100.0
        }
        fn mean(&self) -> f64 {
            100.0
        }
        fn variance(&self) -> f64 {
            1.0
        }
        fn autocorrelations(&self, max_lag: usize) -> Vec<f64> {
            let mut v = vec![0.0; max_lag + 1];
            v[0] = 1.0;
            v
        }
        fn reset(&mut self, _rng: &mut dyn RngCore) {}
        fn boxed_clone(&self) -> Box<dyn FrameProcess> {
            Box::new(Molasses)
        }
        fn label(&self) -> String {
            "molasses".into()
        }
    }

    #[test]
    fn watchdog_budget_degrades_to_partial() {
        let proto = GaussianAr1::new(500.0, 70.0, 0.5);
        let mut cfg = quick_config(vec![100.0]);
        cfg.frames_per_replication = 2_000;
        cfg.replications = 6;
        let out = run(
            &proto,
            &cfg,
            &RunOptions {
                threads: Some(1),
                watchdog: Watchdog {
                    run_budget: Some(Duration::ZERO),
                    ..Watchdog::default()
                },
                ..RunOptions::default()
            },
        )
        .expect("degrades, not errors");
        assert_eq!(out.provenance.completed, 1, "budget 0 still yields one");
        assert_eq!(out.provenance.requested, 6);
        assert!(out.provenance.is_partial());
        assert!(out.provenance.budget_exhausted);
        assert_eq!(out.frames_total, 2_000);
        assert!(out.per_buffer[0].clr.half_width.is_infinite(), "n=1 CI");
    }

    #[test]
    fn watchdog_replication_deadline_abandons_stalled_reps() {
        let mut cfg = quick_config(vec![100.0]);
        cfg.n_sources = 2;
        cfg.frames_per_replication = 200_000;
        cfg.warmup_frames = 0;
        cfg.replications = 2;
        let err = run(
            &Molasses,
            &cfg,
            &RunOptions {
                threads: Some(1),
                watchdog: Watchdog {
                    replication_deadline: Some(Duration::from_millis(1)),
                    ..Watchdog::default()
                },
                ..RunOptions::default()
            },
        )
        .unwrap_err();
        match err {
            SimError::NoCompletedReplications {
                requested,
                timed_out,
                ..
            } => {
                assert_eq!(requested, 2);
                assert_eq!(timed_out, 2);
            }
            other => panic!("wrong error {other}"),
        }
    }

    #[test]
    fn recorder_sees_full_event_stream_and_summary() {
        use vbr_obs::MemoryRecorder;
        let rec = Arc::new(MemoryRecorder::new());
        let proto = GaussianAr1::new(500.0, 70.0, 0.8);
        let mut cfg = quick_config(vec![100.0]);
        cfg.frames_per_replication = 2_000;
        cfg.replications = 3;
        let out = run(
            &proto,
            &cfg,
            &RunOptions {
                recorder: Some(rec.clone()),
                threads: Some(2),
                ..RunOptions::default()
            },
        )
        .expect("valid run");
        assert_eq!(rec.count("run_start"), 1);
        assert_eq!(rec.count("replication_start"), 3);
        assert_eq!(rec.count("replication_end"), 3);
        assert_eq!(rec.count("progress"), 3);
        assert_eq!(rec.count("run_end"), 1);
        assert_eq!(rec.count("guard_trip"), 0);
        let summary = rec.summary().expect("finish delivered");
        assert_eq!(summary.completed, 3);
        assert_eq!(summary.metrics.replications_completed, 3);
        assert_eq!(
            summary.metrics.frames,
            3 * (cfg.warmup_frames + cfg.frames_per_replication) as u64
        );
        assert!(summary.metrics.cells_offered > 0.0);
        assert!(summary.metrics.queue_depth.count > 0);
        assert_eq!(summary.metrics.rep_duration_s.count, 3);
        assert!(summary.stages.get("replication").is_some());
        assert!(summary.stages.get("replication/generate").is_some());
        assert!(summary.stages.get("replication/queue.sweep").is_some());
        assert_eq!(out.provenance.completed, 3);
    }

    #[test]
    fn recorder_sees_watchdog_timeouts() {
        use vbr_obs::MemoryRecorder;
        let rec = Arc::new(MemoryRecorder::new());
        let mut cfg = quick_config(vec![100.0]);
        cfg.n_sources = 2;
        cfg.frames_per_replication = 200_000;
        cfg.warmup_frames = 0;
        cfg.replications = 2;
        let err = run(
            &Molasses,
            &cfg,
            &RunOptions {
                threads: Some(1),
                watchdog: Watchdog {
                    replication_deadline: Some(Duration::from_millis(1)),
                    ..Watchdog::default()
                },
                recorder: Some(rec.clone()),
                ..RunOptions::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, SimError::NoCompletedReplications { .. }));
        assert_eq!(rec.count("watchdog_timeout"), 2);
        assert_eq!(rec.count("replication_end"), 0);
        assert!(rec.summary().is_none(), "no summary on a failed run");
    }

    /// A model that turns NaN after a few frames — drives guard-trip events.
    #[derive(Debug, Clone)]
    struct GoesNan {
        emitted: u64,
    }

    impl FrameProcess for GoesNan {
        fn next_frame(&mut self, _rng: &mut dyn RngCore) -> f64 {
            self.emitted += 1;
            if self.emitted > 10 {
                f64::NAN
            } else {
                100.0
            }
        }
        fn mean(&self) -> f64 {
            100.0
        }
        fn variance(&self) -> f64 {
            1.0
        }
        fn autocorrelations(&self, max_lag: usize) -> Vec<f64> {
            let mut v = vec![0.0; max_lag + 1];
            v[0] = 1.0;
            v
        }
        fn reset(&mut self, _rng: &mut dyn RngCore) {
            self.emitted = 0;
        }
        fn boxed_clone(&self) -> Box<dyn FrameProcess> {
            Box::new(self.clone())
        }
        fn label(&self) -> String {
            "goes-nan".into()
        }
    }

    #[test]
    fn recorder_sees_guard_trip_with_fault_provenance() {
        use vbr_obs::{Event, MemoryRecorder};
        let rec = Arc::new(MemoryRecorder::new());
        let mut cfg = quick_config(vec![100.0]);
        cfg.n_sources = 1;
        cfg.frames_per_replication = 1_000;
        cfg.warmup_frames = 0;
        cfg.replications = 1;
        let err = run(
            &GoesNan { emitted: 0 },
            &cfg,
            &RunOptions {
                threads: Some(1),
                recorder: Some(rec.clone()),
                ..RunOptions::default()
            },
        )
        .unwrap_err();
        let fault = match err {
            SimError::NumericFault(f) => f,
            other => panic!("wrong error {other}"),
        };
        assert_eq!(rec.count("guard_trip"), 1);
        let trip = rec
            .events()
            .into_iter()
            .find(|e| e.kind() == "guard_trip")
            .expect("guard trip recorded");
        match trip {
            Event::GuardTrip {
                replication,
                frame,
                seed,
                site,
                value,
            } => {
                assert_eq!(replication, fault.replication);
                assert_eq!(frame, fault.frame);
                assert_eq!(seed, fault.seed);
                assert_eq!(site, fault.site.to_string());
                assert!(value.is_nan());
            }
            other => panic!("wrong event {other:?}"),
        }
        let summary = rec.summary();
        assert!(summary.is_none(), "fatal run delivers no summary");
    }

    #[test]
    fn recorder_sees_checkpoint_save_and_resume() {
        use vbr_obs::{Event, MemoryRecorder};
        let dir = std::env::temp_dir().join("vbr_runner_obs_ckpt_test");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("obs.ckpt");
        let _ = std::fs::remove_file(&path);

        let proto = GaussianAr1::new(500.0, 70.0, 0.8);
        let mut cfg = quick_config(vec![100.0]);
        cfg.frames_per_replication = 2_000;
        cfg.replications = 2;

        let first = Arc::new(MemoryRecorder::new());
        let opts = RunOptions {
            checkpoint: Some(CheckpointPolicy::new(&path)),
            threads: Some(1),
            recorder: Some(first.clone()),
            ..RunOptions::default()
        };
        run(&proto, &cfg, &opts).expect("first run");
        assert!(first.count("checkpoint_saved") >= 1);
        let expected_fp = checkpoint::config_fingerprint(&cfg);
        for e in first.events() {
            if let Event::CheckpointSaved { fingerprint, .. } = e {
                assert_eq!(fingerprint, expected_fp);
            }
        }

        let second = Arc::new(MemoryRecorder::new());
        let opts = RunOptions {
            recorder: Some(second.clone()),
            ..opts
        };
        run(&proto, &cfg, &opts).expect("resumed run");
        assert_eq!(second.count("checkpoint_resumed"), 1);
        assert_eq!(second.count("replication_start"), 0, "all resumed");
        let summary = second.summary().expect("summary");
        assert_eq!(summary.resumed, 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn recorder_sees_budget_exhaustion() {
        use vbr_obs::MemoryRecorder;
        let rec = Arc::new(MemoryRecorder::new());
        let proto = GaussianAr1::new(500.0, 70.0, 0.5);
        let mut cfg = quick_config(vec![100.0]);
        cfg.frames_per_replication = 2_000;
        cfg.replications = 6;
        let out = run(
            &proto,
            &cfg,
            &RunOptions {
                threads: Some(1),
                watchdog: Watchdog {
                    run_budget: Some(Duration::ZERO),
                    ..Watchdog::default()
                },
                recorder: Some(rec.clone()),
                ..RunOptions::default()
            },
        )
        .expect("degrades, not errors");
        assert!(out.provenance.budget_exhausted);
        assert_eq!(rec.count("budget_exhausted"), 1);
        let summary = rec.summary().expect("summary");
        assert!(summary.budget_exhausted);
        assert!(summary.render().contains("budget_exhausted = true"));
    }

    #[test]
    fn run_mix_records_events_too() {
        use vbr_obs::MemoryRecorder;
        let rec = Arc::new(MemoryRecorder::new());
        let a = GaussianAr1::new(500.0, 70.0, 0.8);
        let b = IidProcess::new(Marginal::paper_gaussian());
        let mix = SourceMix::new(vec![(&a as &dyn FrameProcess, 15), (&b, 15)]).expect("mix");
        let mut cfg = quick_config(vec![100.0]);
        cfg.frames_per_replication = 1_000;
        cfg.replications = 2;
        let out = run_mix(
            &mix,
            &cfg,
            &RunOptions {
                recorder: Some(rec.clone()),
                ..RunOptions::default()
            },
        )
        .expect("mix run");
        assert_eq!(out.provenance.completed, 2);
        assert_eq!(rec.count("replication_end"), 2);
        assert_eq!(rec.count("run_end"), 1);
        let summary = rec.summary().expect("summary");
        assert!(summary.stages.get("replication").is_some());
    }

    #[test]
    fn checkpoint_roundtrip_within_runner() {
        let dir = std::env::temp_dir().join("vbr_runner_ckpt_test");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("roundtrip.ckpt");
        let _ = std::fs::remove_file(&path);

        let proto = GaussianAr1::new(500.0, 70.0, 0.8);
        let mut cfg = quick_config(vec![100.0, 500.0]);
        cfg.frames_per_replication = 2_000;
        cfg.replications = 3;
        let opts = RunOptions {
            checkpoint: Some(CheckpointPolicy::new(&path)),
            ..RunOptions::default()
        };
        let a = run(&proto, &cfg, &opts).expect("first run");
        assert!(path.exists(), "checkpoint persisted");
        // Second run resumes everything from the checkpoint — no recompute.
        let b = run(&proto, &cfg, &opts).expect("resumed run");
        assert_eq!(b.provenance.resumed, 3);
        for (x, y) in a.per_buffer.iter().zip(&b.per_buffer) {
            assert_eq!(x.pooled, y.pooled);
            assert_eq!(x.clr.mean.to_bits(), y.clr.mean.to_bits());
        }
        let _ = std::fs::remove_file(&path);
    }
}

//! Parallel replication harness.
//!
//! Reproduces the paper's measurement protocol: independent replications of
//! a multiplexer of N homogeneous sources, CLR estimated per buffer size,
//! replication-level Student-t confidence intervals. Two engineering
//! choices worth noting:
//!
//! * **Common random numbers across buffer sizes** — every finite-buffer
//!   queue in the sweep consumes the *same* arrival stream within a
//!   replication, so CLR curves over buffer size are smooth and the
//!   between-buffer comparisons have far lower variance than independent
//!   runs (and one model advance feeds the entire sweep).
//! * **Deterministic seeding** — replication r uses the stream
//!   `root.split(r)`; results are bit-reproducible for a given `seed`
//!   regardless of thread count.

use crate::queue::{BopEstimator, FluidQueue, LossAccount};
use std::num::NonZeroUsize;
use vbr_models::FrameProcess;
use vbr_stats::rng::Xoshiro256PlusPlus;
use vbr_stats::ConfidenceInterval;

/// Configuration of one CLR experiment.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Number of multiplexed homogeneous sources (the paper uses N = 30).
    pub n_sources: usize,
    /// Per-source bandwidth c (cells/frame); total capacity is `N·c`.
    pub capacity_per_source: f64,
    /// Total buffer sizes B (cells), strictly increasing; CLR is measured
    /// for all of them simultaneously.
    pub buffers_total: Vec<f64>,
    /// Measured frames per replication (post-warmup).
    pub frames_per_replication: usize,
    /// Warm-up frames discarded from the loss accounts (queues keep their
    /// workload so the measured window starts near steady state).
    pub warmup_frames: usize,
    /// Number of independent replications (the paper uses 60).
    pub replications: usize,
    /// Root RNG seed.
    pub seed: u64,
    /// Frame duration in seconds (0.04 in the paper).
    pub ts: f64,
    /// Also track the infinite-buffer workload survival curve over the
    /// `buffers_total` grid (for BOP-vs-asymptotics comparisons, Fig. 10).
    pub track_bop: bool,
}

impl SimConfig {
    /// The paper's canonical setting: N = 30, c = 538 cells/frame,
    /// T_s = 40 ms. Buffer grid, length and replications are caller-chosen.
    pub fn paper_defaults(buffers_total: Vec<f64>, frames: usize, replications: usize) -> Self {
        Self {
            n_sources: 30,
            capacity_per_source: 538.0,
            buffers_total,
            frames_per_replication: frames,
            warmup_frames: frames / 20,
            replications,
            seed: 0x5EED_CAFE,
            ts: 0.04,
            track_bop: false,
        }
    }

    fn validate(&self) {
        assert!(self.n_sources >= 1, "need at least one source");
        assert!(
            self.capacity_per_source > 0.0,
            "invalid capacity {}",
            self.capacity_per_source
        );
        assert!(!self.buffers_total.is_empty(), "no buffer sizes");
        assert!(
            self.buffers_total.windows(2).all(|w| w[0] < w[1]),
            "buffer grid must be strictly increasing"
        );
        assert!(self.frames_per_replication > 0, "zero-length replication");
        assert!(self.replications >= 1, "need at least one replication");
        assert!(self.ts > 0.0, "invalid frame duration {}", self.ts);
    }

    /// Total capacity `N·c` (cells/frame).
    pub fn total_capacity(&self) -> f64 {
        self.n_sources as f64 * self.capacity_per_source
    }

    /// Buffer size expressed as maximum queueing delay (msec).
    pub fn buffer_ms(&self, buffer_total: f64) -> f64 {
        buffer_total / self.total_capacity() * self.ts * 1e3
    }
}

/// CLR estimate at one buffer size.
#[derive(Debug, Clone)]
pub struct ClrEstimate {
    /// Total buffer B (cells).
    pub buffer_total: f64,
    /// B as maximum delay (msec).
    pub buffer_ms: f64,
    /// Student-t interval of the per-replication CLRs.
    pub clr: ConfidenceInterval,
    /// Pooled loss account across all replications (the pooled-ratio CLR
    /// `lost/offered` is the preferred point estimate at very low loss).
    pub pooled: LossAccount,
}

/// Full outcome of a CLR experiment.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// One estimate per configured buffer size, in grid order.
    pub per_buffer: Vec<ClrEstimate>,
    /// Infinite-buffer survival curve `P(W > B)` over the buffer grid, if
    /// requested.
    pub bop: Option<Vec<(f64, f64)>>,
    /// Total measured frames across replications.
    pub frames_total: u64,
}

struct RepResult {
    accounts: Vec<LossAccount>,
    clrs: Vec<f64>,
    bop: Option<BopEstimator>,
}

/// A heterogeneous source mix: `count` copies of each prototype. The
/// `n_sources` field of the config is ignored in favour of the mix total
/// (but `capacity_per_source` still scales by the config's `n_sources` so
/// the operating point stays explicit).
pub struct SourceMix<'a> {
    /// (prototype, how many copies) pairs.
    pub groups: Vec<(&'a dyn FrameProcess, usize)>,
}

impl<'a> SourceMix<'a> {
    /// Builds a mix; panics if empty or zero total sources.
    pub fn new(groups: Vec<(&'a dyn FrameProcess, usize)>) -> Self {
        assert!(
            groups.iter().map(|&(_, n)| n).sum::<usize>() > 0,
            "mix needs at least one source"
        );
        Self { groups }
    }

    /// Total number of sources.
    pub fn total(&self) -> usize {
        self.groups.iter().map(|&(_, n)| n).sum()
    }

    /// Aggregate mean rate (cells/frame).
    pub fn mean(&self) -> f64 {
        self.groups
            .iter()
            .map(|&(p, n)| p.mean() * n as f64)
            .sum()
    }

    fn instantiate(&self) -> Vec<Box<dyn FrameProcess>> {
        let mut out = Vec::with_capacity(self.total());
        for &(proto, n) in &self.groups {
            for _ in 0..n {
                out.push(proto.boxed_clone());
            }
        }
        out
    }
}

fn run_replication(
    prototype: &dyn FrameProcess,
    config: &SimConfig,
    rep: usize,
    root: &Xoshiro256PlusPlus,
) -> RepResult {
    let sources: Vec<Box<dyn FrameProcess>> = (0..config.n_sources)
        .map(|_| prototype.boxed_clone())
        .collect();
    run_replication_sources(sources, config, rep, root)
}

fn run_replication_sources(
    mut sources: Vec<Box<dyn FrameProcess>>,
    config: &SimConfig,
    rep: usize,
    root: &Xoshiro256PlusPlus,
) -> RepResult {
    let mut rng = root.split(rep as u64);
    for s in sources.iter_mut() {
        s.reset(&mut rng);
    }

    let total_capacity = config.total_capacity();
    let mut queues: Vec<FluidQueue> = config
        .buffers_total
        .iter()
        .map(|&b| FluidQueue::finite(total_capacity, b))
        .collect();
    let mut infinite = config.track_bop.then(|| {
        (
            FluidQueue::infinite(total_capacity),
            BopEstimator::new(config.buffers_total.clone()),
        )
    });

    let total_frames = config.warmup_frames + config.frames_per_replication;
    for frame in 0..total_frames {
        if frame == config.warmup_frames {
            for q in queues.iter_mut() {
                q.clear_accounts();
            }
        }
        let aggregate: f64 = sources.iter_mut().map(|s| s.next_frame(&mut rng)).sum();
        for q in queues.iter_mut() {
            q.offer(aggregate);
        }
        if let Some((q, est)) = infinite.as_mut() {
            q.offer(aggregate);
            if frame >= config.warmup_frames {
                est.observe(q.workload());
            }
        }
    }

    let accounts: Vec<LossAccount> = queues.iter().map(|q| q.account()).collect();
    let clrs = accounts.iter().map(|a| a.clr()).collect();
    RepResult {
        accounts,
        clrs,
        bop: infinite.map(|(_, est)| est),
    }
}

/// Runs the experiment, fanning replications across threads.
///
/// Deterministic for a fixed `config.seed` independent of thread count.
pub fn simulate_clr(prototype: &dyn FrameProcess, config: &SimConfig) -> SimOutcome {
    config.validate();
    let root = Xoshiro256PlusPlus::from_seed_u64(config.seed);

    let threads = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
        .min(config.replications);

    let results: Vec<RepResult> = if threads <= 1 {
        (0..config.replications)
            .map(|rep| run_replication(prototype, config, rep, &root))
            .collect()
    } else {
        let mut slots: Vec<Option<RepResult>> = Vec::new();
        slots.resize_with(config.replications, || None);
        let counter = std::sync::atomic::AtomicUsize::new(0);
        let slots_mutex = std::sync::Mutex::new(&mut slots);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let counter = &counter;
                let slots_mutex = &slots_mutex;
                let root = &root;
                let proto = prototype.boxed_clone();
                scope.spawn(move || {
                    loop {
                        let rep =
                            counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if rep >= config.replications {
                            break;
                        }
                        let result = run_replication(proto.as_ref(), config, rep, root);
                        slots_mutex.lock().expect("slot lock")[rep] = Some(result);
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|r| r.expect("every replication filled"))
            .collect()
    };

    collect_outcome(config, results)
}

/// Runs a CLR experiment for a **heterogeneous** mix of sources — e.g. the
/// real CAC situation where DAR-modelled videoconference sources share a
/// link with LRD movie sources. `config.n_sources` is overridden by the mix
/// total (the per-source capacity is re-interpreted against that total).
///
/// Runs replications sequentially (the mix API is used for modest scenario
/// studies; the homogeneous path has the threaded harness).
pub fn simulate_clr_mix(mix: &SourceMix<'_>, config: &SimConfig) -> SimOutcome {
    let mut config = config.clone();
    config.n_sources = mix.total();
    config.validate();
    let root = Xoshiro256PlusPlus::from_seed_u64(config.seed);
    let results: Vec<RepResult> = (0..config.replications)
        .map(|rep| run_replication_sources(mix.instantiate(), &config, rep, &root))
        .collect();
    collect_outcome(&config, results)
}

fn collect_outcome(config: &SimConfig, results: Vec<RepResult>) -> SimOutcome {
    let per_buffer = (0..config.buffers_total.len())
        .map(|i| {
            let clr_samples: Vec<f64> = results.iter().map(|r| r.clrs[i]).collect();
            let mut pooled = LossAccount::default();
            for r in &results {
                pooled.merge(&r.accounts[i]);
            }
            ClrEstimate {
                buffer_total: config.buffers_total[i],
                buffer_ms: config.buffer_ms(config.buffers_total[i]),
                clr: ConfidenceInterval::from_samples(&clr_samples, 0.95),
                pooled,
            }
        })
        .collect();

    let bop = config.track_bop.then(|| {
        let mut merged: Option<BopEstimator> = None;
        for r in &results {
            let est = r.bop.as_ref().expect("bop tracked");
            match merged.as_mut() {
                Some(m) => m.merge(est),
                None => merged = Some(est.clone()),
            }
        }
        let merged = merged.expect("at least one replication");
        merged
            .thresholds()
            .iter()
            .copied()
            .zip(merged.survival())
            .collect()
    });

    SimOutcome {
        per_buffer,
        bop,
        frames_total: (config.replications * config.frames_per_replication) as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vbr_models::{GaussianAr1, IidProcess, Marginal};

    fn quick_config(buffers: Vec<f64>) -> SimConfig {
        SimConfig {
            n_sources: 30,
            capacity_per_source: 538.0,
            buffers_total: buffers,
            frames_per_replication: 20_000,
            warmup_frames: 500,
            replications: 4,
            seed: 7,
            ts: 0.04,
            track_bop: false,
        }
    }

    #[test]
    fn zero_buffer_clr_matches_gaussian_overshoot() {
        // The paper's anchor: all models share CLR ~ 1.1e-5 at zero buffer.
        let proto = IidProcess::new(Marginal::paper_gaussian());
        let mut cfg = quick_config(vec![0.0]);
        cfg.frames_per_replication = 300_000;
        cfg.replications = 8;
        let out = simulate_clr(&proto, &cfg);
        let clr = out.per_buffer[0].pooled.clr();
        assert!(
            clr > 4e-6 && clr < 3e-5,
            "zero-buffer CLR {clr:e} should be near 1.1e-5"
        );
    }

    #[test]
    fn clr_decreases_with_buffer() {
        let proto = GaussianAr1::new(500.0, 5000.0_f64.sqrt(), 0.9);
        let out = simulate_clr(&proto, &quick_config(vec![0.0, 500.0, 2000.0]));
        let clrs: Vec<f64> = out.per_buffer.iter().map(|e| e.pooled.clr()).collect();
        assert!(
            clrs[0] >= clrs[1] && clrs[1] >= clrs[2],
            "CLR must fall with buffer: {clrs:?}"
        );
        assert!(clrs[0] > 0.0, "zero buffer must lose something");
    }

    #[test]
    fn deterministic_given_seed() {
        let proto = GaussianAr1::new(500.0, 70.0, 0.8);
        let mut cfg = quick_config(vec![100.0]);
        cfg.frames_per_replication = 5_000;
        let a = simulate_clr(&proto, &cfg);
        let b = simulate_clr(&proto, &cfg);
        assert_eq!(
            a.per_buffer[0].pooled,
            b.per_buffer[0].pooled,
            "same seed must reproduce exactly"
        );
    }

    #[test]
    fn buffer_ms_conversion() {
        let cfg = quick_config(vec![807.0]);
        // B = 807 cells at 16140 cells/frame and 40 ms frames -> 2 ms.
        assert!((cfg.buffer_ms(807.0) - 2.0).abs() < 1e-9);
        let out = simulate_clr(&GaussianAr1::new(500.0, 70.0, 0.5), &cfg);
        assert!((out.per_buffer[0].buffer_ms - 2.0).abs() < 1e-9);
    }

    #[test]
    fn bop_tracking_produces_monotone_survival() {
        let proto = GaussianAr1::new(500.0, 70.0, 0.9);
        let mut cfg = quick_config(vec![1.0, 200.0, 800.0, 2000.0]);
        cfg.track_bop = true;
        let out = simulate_clr(&proto, &cfg);
        let bop = out.bop.expect("tracked");
        assert_eq!(bop.len(), 4);
        for w in bop.windows(2) {
            assert!(w[1].1 <= w[0].1, "survival must decrease: {bop:?}");
        }
        assert!(bop[0].1 > 0.0, "some mass above the smallest threshold");
    }

    #[test]
    fn confidence_interval_shrinks_with_replications() {
        let proto = GaussianAr1::new(500.0, 70.0, 0.9);
        let mut small = quick_config(vec![100.0]);
        small.replications = 3;
        small.frames_per_replication = 5_000;
        let mut large = small.clone();
        large.replications = 12;
        let hw_small = simulate_clr(&proto, &small).per_buffer[0].clr.half_width;
        let hw_large = simulate_clr(&proto, &large).per_buffer[0].clr.half_width;
        assert!(
            hw_large < hw_small,
            "CI should shrink: {hw_large} vs {hw_small}"
        );
    }

    #[test]
    #[should_panic]
    fn rejects_unsorted_buffer_grid() {
        let proto = IidProcess::new(Marginal::paper_gaussian());
        simulate_clr(&proto, &quick_config(vec![10.0, 5.0]));
    }
}

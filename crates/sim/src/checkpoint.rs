//! Deterministic checkpoint/resume for the replication harness.
//!
//! Because replication `r` is seeded from the independent stream
//! `root.split(r)`, a replication's result depends only on `(config, r)` —
//! never on which other replications ran, in what order, or on how many
//! threads. That makes resumption trivially bit-identical: a checkpoint is
//! just the set of completed replication results, and a resumed run computes
//! exactly the missing ones and merges. No RNG state needs saving.
//!
//! The on-disk format is versioned, line-oriented text. All `f64` payloads
//! are stored as their IEEE-754 bit patterns in hex (`to_bits`), so the
//! round-trip is exact — the resumed run's pooled CLR matches an
//! uninterrupted run to the last bit. A trailer line (`end <count>`) makes
//! truncation (the writing process died mid-write) detectable; writes go to
//! a temp file first and are atomically renamed into place so a crash never
//! corrupts an existing good checkpoint.

use crate::error::{CheckpointErrorKind, SimError};
use crate::queue::{BopEstimator, LossAccount};
use crate::runner::{RepResult, SimConfig};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Current checkpoint format version.
pub const CHECKPOINT_VERSION: u32 = 1;

const MAGIC: &str = "vbr-sim-checkpoint";

/// When and where the runner persists completed replications.
#[derive(Debug, Clone)]
pub struct CheckpointPolicy {
    /// Checkpoint file path. Written atomically (temp file + rename).
    pub path: PathBuf,
    /// Persist after every `every` newly completed replications (1 = after
    /// each). The final state is always written when the run ends.
    pub every: usize,
}

impl CheckpointPolicy {
    /// Checkpoint to `path` after every completed replication.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        Self {
            path: path.into(),
            every: 1,
        }
    }
}

/// FNV-1a hash of the canonical byte encoding of every config field that
/// affects simulation output. Two configs with equal fingerprints produce
/// interchangeable replication results.
pub fn config_fingerprint(config: &SimConfig) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    eat(&(config.n_sources as u64).to_le_bytes());
    eat(&config.capacity_per_source.to_bits().to_le_bytes());
    eat(&(config.buffers_total.len() as u64).to_le_bytes());
    for &b in &config.buffers_total {
        eat(&b.to_bits().to_le_bytes());
    }
    eat(&(config.frames_per_replication as u64).to_le_bytes());
    eat(&(config.warmup_frames as u64).to_le_bytes());
    eat(&config.seed.to_le_bytes());
    eat(&config.ts.to_bits().to_le_bytes());
    eat(&[u8::from(config.track_bop)]);
    // Note: `replications` is deliberately excluded — a checkpoint from a
    // 60-replication run is a valid prefix for an 80-replication run.
    h
}

fn ckpt_err(path: &Path, kind: CheckpointErrorKind) -> SimError {
    SimError::Checkpoint {
        path: path.to_path_buf(),
        kind,
    }
}

fn parse_err(path: &Path, line: usize, message: impl Into<String>) -> SimError {
    ckpt_err(
        path,
        CheckpointErrorKind::Parse {
            line,
            message: message.into(),
        },
    )
}

/// Serializes the completed replication set to the checkpoint text format.
pub(crate) fn render(config: &SimConfig, results: &BTreeMap<usize, RepResult>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{MAGIC} v{CHECKPOINT_VERSION}");
    let _ = writeln!(out, "fingerprint {:016x}", config_fingerprint(config));
    let _ = writeln!(out, "buffers {}", config.buffers_total.len());
    let _ = writeln!(out, "track_bop {}", u8::from(config.track_bop));
    for (&rep, result) in results {
        let _ = write!(out, "rep {rep} accounts");
        for a in &result.accounts {
            let _ = write!(out, " {:016x} {:016x}", a.offered.to_bits(), a.lost.to_bits());
        }
        let _ = writeln!(out);
        if let Some(bop) = &result.bop {
            let _ = write!(out, "bop {}", bop.observations());
            for &b in bop.buckets() {
                let _ = write!(out, " {b}");
            }
            let _ = writeln!(out);
        }
    }
    let _ = writeln!(out, "end {}", results.len());
    out
}

/// Atomically writes the checkpoint file for the given completed set.
/// Returns the config fingerprint the file was stamped with, so callers
/// (telemetry events) can report it without recomputing.
pub(crate) fn save(
    policy: &CheckpointPolicy,
    config: &SimConfig,
    results: &BTreeMap<usize, RepResult>,
) -> Result<u64, SimError> {
    let body = render(config, results);
    let tmp = policy.path.with_extension("ckpt.tmp");
    std::fs::write(&tmp, body)
        .map_err(|e| SimError::io(format!("writing checkpoint {}", tmp.display()), e))?;
    std::fs::rename(&tmp, &policy.path).map_err(|e| {
        SimError::io(
            format!("renaming checkpoint into place at {}", policy.path.display()),
            e,
        )
    })?;
    Ok(config_fingerprint(config))
}

/// Parses a checkpoint body; `path` is used only for error context.
pub(crate) fn parse(
    text: &str,
    path: &Path,
    config: &SimConfig,
) -> Result<BTreeMap<usize, RepResult>, SimError> {
    let mut lines = text.lines().enumerate();
    let n_buffers = config.buffers_total.len();

    // Header: magic + version.
    let (_, header) = lines
        .next()
        .ok_or_else(|| ckpt_err(path, CheckpointErrorKind::Truncated))?;
    let version = header
        .strip_prefix(MAGIC)
        .map(str::trim)
        .and_then(|v| v.strip_prefix('v'))
        .and_then(|v| v.parse::<u32>().ok())
        .ok_or_else(|| ckpt_err(path, CheckpointErrorKind::BadHeader(header.into())))?;
    if version != CHECKPOINT_VERSION {
        return Err(ckpt_err(
            path,
            CheckpointErrorKind::VersionMismatch {
                found: version,
                expected: CHECKPOINT_VERSION,
            },
        ));
    }

    // Fixed preamble: fingerprint, buffer count, bop flag.
    let mut expect_field = |name: &'static str| -> Result<(usize, String), SimError> {
        let (i, line) = lines
            .next()
            .ok_or_else(|| ckpt_err(path, CheckpointErrorKind::Truncated))?;
        line.strip_prefix(name)
            .map(|rest| (i + 1, rest.trim().to_string()))
            .ok_or_else(|| parse_err(path, i + 1, format!("expected `{name}`, got {line:?}")))
    };
    let (fp_line, fp) = expect_field("fingerprint")?;
    let found_fp = u64::from_str_radix(&fp, 16)
        .map_err(|e| parse_err(path, fp_line, format!("bad fingerprint: {e}")))?;
    let expected_fp = config_fingerprint(config);
    if found_fp != expected_fp {
        return Err(ckpt_err(
            path,
            CheckpointErrorKind::ConfigMismatch {
                found: found_fp,
                expected: expected_fp,
            },
        ));
    }
    let (bl, buffers) = expect_field("buffers")?;
    let file_buffers: usize = buffers
        .parse()
        .map_err(|e| parse_err(path, bl, format!("bad buffer count: {e}")))?;
    if file_buffers != n_buffers {
        return Err(parse_err(
            path,
            bl,
            format!("buffer count {file_buffers} vs config {n_buffers}"),
        ));
    }
    let (tl, track) = expect_field("track_bop")?;
    let file_bop = match track.as_str() {
        "0" => false,
        "1" => true,
        other => return Err(parse_err(path, tl, format!("bad track_bop {other:?}"))),
    };
    if file_bop != config.track_bop {
        return Err(parse_err(
            path,
            tl,
            format!("track_bop {file_bop} vs config {}", config.track_bop),
        ));
    }

    // Replication records until the trailer.
    let mut results: BTreeMap<usize, RepResult> = BTreeMap::new();
    let mut pending_bop_for: Option<usize> = None;
    let mut saw_end = false;
    for (i, line) in lines {
        let lineno = i + 1;
        if let Some(rest) = line.strip_prefix("end ") {
            let count: usize = rest
                .trim()
                .parse()
                .map_err(|e| parse_err(path, lineno, format!("bad trailer count: {e}")))?;
            if count != results.len() {
                return Err(parse_err(
                    path,
                    lineno,
                    format!("trailer says {count} records, found {}", results.len()),
                ));
            }
            if config.track_bop {
                if let Some(rep) = pending_bop_for {
                    return Err(parse_err(path, lineno, format!("rep {rep} missing bop line")));
                }
            }
            saw_end = true;
            break;
        } else if let Some(rest) = line.strip_prefix("rep ") {
            if let Some(rep) = pending_bop_for {
                return Err(parse_err(path, lineno, format!("rep {rep} missing bop line")));
            }
            let mut tokens = rest.split_whitespace();
            let rep: usize = tokens
                .next()
                .ok_or_else(|| parse_err(path, lineno, "missing rep index"))?
                .parse()
                .map_err(|e| parse_err(path, lineno, format!("bad rep index: {e}")))?;
            match tokens.next() {
                Some("accounts") => {}
                other => {
                    return Err(parse_err(path, lineno, format!("expected `accounts`, got {other:?}")))
                }
            }
            let mut accounts = Vec::with_capacity(n_buffers);
            for b in 0..n_buffers {
                let mut bits = |what: &str| -> Result<f64, SimError> {
                    let tok = tokens.next().ok_or_else(|| {
                        parse_err(path, lineno, format!("buffer {b}: missing {what}"))
                    })?;
                    let raw = u64::from_str_radix(tok, 16).map_err(|e| {
                        parse_err(path, lineno, format!("buffer {b}: bad {what}: {e}"))
                    })?;
                    Ok(f64::from_bits(raw))
                };
                let offered = bits("offered")?;
                let lost = bits("lost")?;
                accounts.push(LossAccount { offered, lost });
            }
            if tokens.next().is_some() {
                return Err(parse_err(path, lineno, "trailing tokens on rep line"));
            }
            if results
                .insert(rep, RepResult::from_accounts(accounts, None))
                .is_some()
            {
                return Err(parse_err(path, lineno, format!("duplicate rep {rep}")));
            }
            if config.track_bop {
                pending_bop_for = Some(rep);
            }
        } else if let Some(rest) = line.strip_prefix("bop ") {
            let rep = pending_bop_for
                .take()
                .ok_or_else(|| parse_err(path, lineno, "bop line without preceding rep"))?;
            let mut tokens = rest.split_whitespace();
            let total: u64 = tokens
                .next()
                .ok_or_else(|| parse_err(path, lineno, "missing bop total"))?
                .parse()
                .map_err(|e| parse_err(path, lineno, format!("bad bop total: {e}")))?;
            let buckets: Vec<u64> = tokens
                .map(|t| {
                    t.parse()
                        .map_err(|e| parse_err(path, lineno, format!("bad bop bucket: {e}")))
                })
                .collect::<Result<_, _>>()?;
            if buckets.len() != n_buffers + 1 {
                return Err(parse_err(
                    path,
                    lineno,
                    format!("bop bucket count {} vs expected {}", buckets.len(), n_buffers + 1),
                ));
            }
            // `from_raw` asserts this invariant; check it here first so a
            // corrupt line is a typed parse error, not a panic.
            let sum: u64 = buckets.iter().sum();
            if sum != total {
                return Err(parse_err(
                    path,
                    lineno,
                    format!("bop buckets sum to {sum}, trailer total says {total}"),
                ));
            }
            let est = BopEstimator::from_raw(config.buffers_total.clone(), buckets, total);
            if let Some(r) = results.get_mut(&rep) {
                r.bop = Some(est);
            }
        } else if line.trim().is_empty() {
            continue;
        } else {
            return Err(parse_err(path, lineno, format!("unrecognized line {line:?}")));
        }
    }
    if !saw_end {
        return Err(ckpt_err(path, CheckpointErrorKind::Truncated));
    }
    Ok(results)
}

/// Loads and validates a checkpoint against the current config. Returns the
/// completed replication results keyed by replication index.
pub(crate) fn load(
    path: &Path,
    config: &SimConfig,
) -> Result<BTreeMap<usize, RepResult>, SimError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| SimError::io(format!("reading checkpoint {}", path.display()), e))?;
    parse(&text, path, config)
}

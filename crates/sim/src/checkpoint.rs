//! Deterministic checkpoint/resume for the replication harness.
//!
//! Because replication `r` is seeded from the independent stream
//! `root.split(r)`, a replication's result depends only on `(config, r)` —
//! never on which other replications ran, in what order, or on how many
//! threads. That makes resumption trivially bit-identical: a checkpoint is
//! just the set of completed replication results, and a resumed run computes
//! exactly the missing ones and merges. No RNG state needs saving.
//!
//! The on-disk format is versioned, line-oriented text. All `f64` payloads
//! are stored as their IEEE-754 bit patterns in hex (`to_bits`), so the
//! round-trip is exact — the resumed run's pooled CLR matches an
//! uninterrupted run to the last bit. A trailer line (`end <count>`) makes
//! truncation (the writing process died mid-write) detectable, and a final
//! `checksum` line (FNV-1a over every preceding byte, v2+) catches silent
//! content corruption; writes go to a temp file first and are atomically
//! renamed into place so a crash never corrupts an existing good checkpoint.
//!
//! Saves additionally **rotate**: the previous good checkpoint survives as a
//! `.prev` sibling, and [`load_with_fallback`] degrades a corrupt primary to
//! that previous version (or a fresh start) with a recorded event instead of
//! failing the run — a supervisor restarting a crashed worker must never be
//! stopped by the wreckage the crash left behind.

use crate::error::{CheckpointErrorKind, SimError};
use crate::queue::{BopEstimator, LossAccount};
use crate::runner::{RepResult, SimConfig};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Current checkpoint format version. v2 adds the trailing `checksum` line;
/// v1 files (no checksum) still load.
pub const CHECKPOINT_VERSION: u32 = 2;

/// Oldest format version this build still reads.
pub const CHECKPOINT_MIN_VERSION: u32 = 1;

const MAGIC: &str = "vbr-sim-checkpoint";

/// FNV-1a over a byte slice — the same hash the config fingerprint uses,
/// reused for the whole-file content checksum.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Path of the rotated previous checkpoint (`<file>.prev` sibling).
pub(crate) fn prev_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".prev");
    path.with_file_name(name)
}

/// When and where the runner persists completed replications.
#[derive(Debug, Clone)]
pub struct CheckpointPolicy {
    /// Checkpoint file path. Written atomically (temp file + rename).
    pub path: PathBuf,
    /// Persist after every `every` newly completed replications (1 = after
    /// each). The final state is always written when the run ends.
    pub every: usize,
}

impl CheckpointPolicy {
    /// Checkpoint to `path` after every completed replication.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        Self {
            path: path.into(),
            every: 1,
        }
    }
}

/// FNV-1a hash of the canonical byte encoding of every config field that
/// affects simulation output. Two configs with equal fingerprints produce
/// interchangeable replication results.
pub fn config_fingerprint(config: &SimConfig) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    eat(&(config.n_sources as u64).to_le_bytes());
    eat(&config.capacity_per_source.to_bits().to_le_bytes());
    eat(&(config.buffers_total.len() as u64).to_le_bytes());
    for &b in &config.buffers_total {
        eat(&b.to_bits().to_le_bytes());
    }
    eat(&(config.frames_per_replication as u64).to_le_bytes());
    eat(&(config.warmup_frames as u64).to_le_bytes());
    eat(&config.seed.to_le_bytes());
    eat(&config.ts.to_bits().to_le_bytes());
    eat(&[u8::from(config.track_bop)]);
    // Note: `replications` is deliberately excluded — a checkpoint from a
    // 60-replication run is a valid prefix for an 80-replication run.
    h
}

fn ckpt_err(path: &Path, kind: CheckpointErrorKind) -> SimError {
    SimError::Checkpoint {
        path: path.to_path_buf(),
        kind,
    }
}

fn parse_err(path: &Path, line: usize, message: impl Into<String>) -> SimError {
    ckpt_err(
        path,
        CheckpointErrorKind::Parse {
            line,
            message: message.into(),
        },
    )
}

/// Serializes the completed replication set to the checkpoint text format.
pub(crate) fn render(config: &SimConfig, results: &BTreeMap<usize, RepResult>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{MAGIC} v{CHECKPOINT_VERSION}");
    let _ = writeln!(out, "fingerprint {:016x}", config_fingerprint(config));
    let _ = writeln!(out, "buffers {}", config.buffers_total.len());
    let _ = writeln!(out, "track_bop {}", u8::from(config.track_bop));
    for (&rep, result) in results {
        let _ = write!(out, "rep {rep} accounts");
        for a in &result.accounts {
            let _ = write!(out, " {:016x} {:016x}", a.offered.to_bits(), a.lost.to_bits());
        }
        let _ = writeln!(out);
        if let Some(bop) = &result.bop {
            let _ = write!(out, "bop {}", bop.observations());
            for &b in bop.buckets() {
                let _ = write!(out, " {b}");
            }
            let _ = writeln!(out);
        }
    }
    let _ = writeln!(out, "end {}", results.len());
    // Content checksum over every byte above, so corruption that happens to
    // keep lines parseable (bit flips inside a hex payload) is still caught.
    let sum = fnv1a(out.as_bytes());
    let _ = writeln!(out, "checksum {sum:016x}");
    out
}

/// Atomically writes the checkpoint file for the given completed set.
/// Returns the config fingerprint the file was stamped with, so callers
/// (telemetry events) can report it without recomputing.
pub(crate) fn save(
    policy: &CheckpointPolicy,
    config: &SimConfig,
    results: &BTreeMap<usize, RepResult>,
) -> Result<u64, SimError> {
    let body = render(config, results);
    let tmp = policy.path.with_extension("ckpt.tmp");
    std::fs::write(&tmp, body)
        .map_err(|e| SimError::io(format!("writing checkpoint {}", tmp.display()), e))?;
    // Rotate the current good checkpoint to its `.prev` sibling so a later
    // corrupt primary can fall back to it. Absence is fine (first save).
    if policy.path.exists() {
        let prev = prev_path(&policy.path);
        std::fs::rename(&policy.path, &prev).map_err(|e| {
            SimError::io(format!("rotating checkpoint to {}", prev.display()), e)
        })?;
    }
    std::fs::rename(&tmp, &policy.path).map_err(|e| {
        SimError::io(
            format!("renaming checkpoint into place at {}", policy.path.display()),
            e,
        )
    })?;
    Ok(config_fingerprint(config))
}

/// Parses a checkpoint body; `path` is used only for error context.
pub(crate) fn parse(
    text: &str,
    path: &Path,
    config: &SimConfig,
) -> Result<BTreeMap<usize, RepResult>, SimError> {
    let n_buffers = config.buffers_total.len();

    // Header: magic + version — peeked first, because the version decides
    // whether a content checksum must be verified before anything else.
    let header = text
        .lines()
        .next()
        .ok_or_else(|| ckpt_err(path, CheckpointErrorKind::Truncated))?;
    let version = header
        .strip_prefix(MAGIC)
        .map(str::trim)
        .and_then(|v| v.strip_prefix('v'))
        .and_then(|v| v.parse::<u32>().ok())
        .ok_or_else(|| ckpt_err(path, CheckpointErrorKind::BadHeader(header.into())))?;
    if !(CHECKPOINT_MIN_VERSION..=CHECKPOINT_VERSION).contains(&version) {
        return Err(ckpt_err(
            path,
            CheckpointErrorKind::VersionMismatch {
                found: version,
                expected: CHECKPOINT_VERSION,
            },
        ));
    }

    // v2+: the final line is `checksum <hex>` over every preceding byte.
    let body = if version >= 2 {
        let (body, found) = split_checksum(text)
            .ok_or_else(|| ckpt_err(path, CheckpointErrorKind::Truncated))?;
        let expected = fnv1a(body.as_bytes());
        if found != expected {
            return Err(ckpt_err(
                path,
                CheckpointErrorKind::ChecksumMismatch { found, expected },
            ));
        }
        body
    } else {
        text
    };

    let mut lines = body.lines().enumerate();
    let _ = lines.next(); // header, parsed above

    // Fixed preamble: fingerprint, buffer count, bop flag.
    let mut expect_field = |name: &'static str| -> Result<(usize, String), SimError> {
        let (i, line) = lines
            .next()
            .ok_or_else(|| ckpt_err(path, CheckpointErrorKind::Truncated))?;
        line.strip_prefix(name)
            .map(|rest| (i + 1, rest.trim().to_string()))
            .ok_or_else(|| parse_err(path, i + 1, format!("expected `{name}`, got {line:?}")))
    };
    let (fp_line, fp) = expect_field("fingerprint")?;
    let found_fp = u64::from_str_radix(&fp, 16)
        .map_err(|e| parse_err(path, fp_line, format!("bad fingerprint: {e}")))?;
    let expected_fp = config_fingerprint(config);
    if found_fp != expected_fp {
        return Err(ckpt_err(
            path,
            CheckpointErrorKind::ConfigMismatch {
                found: found_fp,
                expected: expected_fp,
            },
        ));
    }
    let (bl, buffers) = expect_field("buffers")?;
    let file_buffers: usize = buffers
        .parse()
        .map_err(|e| parse_err(path, bl, format!("bad buffer count: {e}")))?;
    if file_buffers != n_buffers {
        return Err(parse_err(
            path,
            bl,
            format!("buffer count {file_buffers} vs config {n_buffers}"),
        ));
    }
    let (tl, track) = expect_field("track_bop")?;
    let file_bop = match track.as_str() {
        "0" => false,
        "1" => true,
        other => return Err(parse_err(path, tl, format!("bad track_bop {other:?}"))),
    };
    if file_bop != config.track_bop {
        return Err(parse_err(
            path,
            tl,
            format!("track_bop {file_bop} vs config {}", config.track_bop),
        ));
    }

    // Replication records until the trailer.
    let mut results: BTreeMap<usize, RepResult> = BTreeMap::new();
    let mut pending_bop_for: Option<usize> = None;
    let mut saw_end = false;
    for (i, line) in lines {
        let lineno = i + 1;
        if let Some(rest) = line.strip_prefix("end ") {
            let count: usize = rest
                .trim()
                .parse()
                .map_err(|e| parse_err(path, lineno, format!("bad trailer count: {e}")))?;
            if count != results.len() {
                return Err(parse_err(
                    path,
                    lineno,
                    format!("trailer says {count} records, found {}", results.len()),
                ));
            }
            if config.track_bop {
                if let Some(rep) = pending_bop_for {
                    return Err(parse_err(path, lineno, format!("rep {rep} missing bop line")));
                }
            }
            saw_end = true;
            break;
        } else if let Some(rest) = line.strip_prefix("rep ") {
            if let Some(rep) = pending_bop_for {
                return Err(parse_err(path, lineno, format!("rep {rep} missing bop line")));
            }
            let mut tokens = rest.split_whitespace();
            let rep: usize = tokens
                .next()
                .ok_or_else(|| parse_err(path, lineno, "missing rep index"))?
                .parse()
                .map_err(|e| parse_err(path, lineno, format!("bad rep index: {e}")))?;
            match tokens.next() {
                Some("accounts") => {}
                other => {
                    return Err(parse_err(path, lineno, format!("expected `accounts`, got {other:?}")))
                }
            }
            let mut accounts = Vec::with_capacity(n_buffers);
            for b in 0..n_buffers {
                let mut bits = |what: &str| -> Result<f64, SimError> {
                    let tok = tokens.next().ok_or_else(|| {
                        parse_err(path, lineno, format!("buffer {b}: missing {what}"))
                    })?;
                    let raw = u64::from_str_radix(tok, 16).map_err(|e| {
                        parse_err(path, lineno, format!("buffer {b}: bad {what}: {e}"))
                    })?;
                    Ok(f64::from_bits(raw))
                };
                let offered = bits("offered")?;
                let lost = bits("lost")?;
                accounts.push(LossAccount { offered, lost });
            }
            if tokens.next().is_some() {
                return Err(parse_err(path, lineno, "trailing tokens on rep line"));
            }
            if results
                .insert(rep, RepResult::from_accounts(accounts, None))
                .is_some()
            {
                return Err(parse_err(path, lineno, format!("duplicate rep {rep}")));
            }
            if config.track_bop {
                pending_bop_for = Some(rep);
            }
        } else if let Some(rest) = line.strip_prefix("bop ") {
            let rep = pending_bop_for
                .take()
                .ok_or_else(|| parse_err(path, lineno, "bop line without preceding rep"))?;
            let mut tokens = rest.split_whitespace();
            let total: u64 = tokens
                .next()
                .ok_or_else(|| parse_err(path, lineno, "missing bop total"))?
                .parse()
                .map_err(|e| parse_err(path, lineno, format!("bad bop total: {e}")))?;
            let buckets: Vec<u64> = tokens
                .map(|t| {
                    t.parse()
                        .map_err(|e| parse_err(path, lineno, format!("bad bop bucket: {e}")))
                })
                .collect::<Result<_, _>>()?;
            if buckets.len() != n_buffers + 1 {
                return Err(parse_err(
                    path,
                    lineno,
                    format!("bop bucket count {} vs expected {}", buckets.len(), n_buffers + 1),
                ));
            }
            // `from_raw` asserts this invariant; check it here first so a
            // corrupt line is a typed parse error, not a panic.
            let sum: u64 = buckets.iter().sum();
            if sum != total {
                return Err(parse_err(
                    path,
                    lineno,
                    format!("bop buckets sum to {sum}, trailer total says {total}"),
                ));
            }
            let est = BopEstimator::from_raw(config.buffers_total.clone(), buckets, total);
            if let Some(r) = results.get_mut(&rep) {
                r.bop = Some(est);
            }
        } else if line.trim().is_empty() {
            continue;
        } else {
            return Err(parse_err(path, lineno, format!("unrecognized line {line:?}")));
        }
    }
    if !saw_end {
        return Err(ckpt_err(path, CheckpointErrorKind::Truncated));
    }
    Ok(results)
}

/// Splits off the trailing `checksum <hex>` line: returns the body it covers
/// (everything up to and including the newline before it) and the recorded
/// sum. `None` if the file does not end in a well-formed checksum line.
fn split_checksum(text: &str) -> Option<(&str, u64)> {
    let trimmed = text.trim_end();
    let idx = trimmed.rfind('\n')?;
    let hex = trimmed[idx + 1..].strip_prefix("checksum ")?;
    let found = u64::from_str_radix(hex.trim(), 16).ok()?;
    Some((&text[..idx + 1], found))
}

/// Loads and validates a checkpoint against the current config. Returns the
/// completed replication results keyed by replication index.
pub(crate) fn load(
    path: &Path,
    config: &SimConfig,
) -> Result<BTreeMap<usize, RepResult>, SimError> {
    let bytes = std::fs::read(path)
        .map_err(|e| SimError::io(format!("reading checkpoint {}", path.display()), e))?;
    // A flipped byte can take the file out of UTF-8 entirely; that is file
    // damage (fallback-eligible), not an I/O failure (hard error).
    let text = String::from_utf8(bytes).map_err(|e| SimError::Checkpoint {
        path: path.to_path_buf(),
        kind: CheckpointErrorKind::Parse {
            line: 0,
            message: format!("not valid UTF-8: {e}"),
        },
    })?;
    parse(&text, path, config)
}

/// Validates the checkpoint at `path` against `config` and returns how many
/// completed replications it holds. This is the supervisor's integrity probe
/// (is a shard's checkpoint complete?) and the direct way for tests to
/// assert the typed error a damaged file produces.
pub fn verify(path: &Path, config: &SimConfig) -> Result<usize, SimError> {
    load(path, config).map(|results| results.len())
}

/// How a resume degraded when the primary checkpoint was unusable.
#[derive(Debug, Clone)]
pub(crate) struct FallbackInfo {
    /// Rendered error the primary failed with.
    pub error: String,
    /// True if the rotated `.prev` version loaded; false if the run had to
    /// start fresh.
    pub recovered: bool,
}

/// True for damage a crashed writer can inflict (and a fallback can heal);
/// false for errors that mean the *request* is wrong (config/version
/// mismatch) or the filesystem is failing, which must stay fatal.
fn is_corruption(e: &SimError) -> bool {
    matches!(
        e,
        SimError::Checkpoint {
            kind: CheckpointErrorKind::BadHeader(_)
                | CheckpointErrorKind::Truncated
                | CheckpointErrorKind::Parse { .. }
                | CheckpointErrorKind::ChecksumMismatch { .. },
            ..
        }
    )
}

/// Loads the checkpoint at `path`, degrading through the fallback chain on
/// corruption: primary → rotated `.prev` → fresh start. Returns the results
/// plus `Some(FallbackInfo)` when the primary was unusable (so the caller
/// can emit a `CheckpointFallback` event). Config/version mismatches and
/// I/O failures other than absence stay hard errors.
pub(crate) fn load_with_fallback(
    path: &Path,
    config: &SimConfig,
) -> Result<(BTreeMap<usize, RepResult>, Option<FallbackInfo>), SimError> {
    let prev = prev_path(path);
    if !path.exists() {
        // A crash between the two rotation renames can leave only `.prev`;
        // treat it as the checkpoint rather than silently starting over.
        if prev.exists() {
            let results = load(&prev, config)?;
            return Ok((
                results,
                Some(FallbackInfo {
                    error: format!("{} missing (crash during rotation)", path.display()),
                    recovered: true,
                }),
            ));
        }
        return Ok((BTreeMap::new(), None));
    }
    match load(path, config) {
        Ok(results) => Ok((results, None)),
        Err(e) if is_corruption(&e) => {
            let error = e.to_string();
            if prev.exists() {
                if let Ok(results) = load(&prev, config) {
                    return Ok((
                        results,
                        Some(FallbackInfo {
                            error,
                            recovered: true,
                        }),
                    ));
                }
            }
            Ok((
                BTreeMap::new(),
                Some(FallbackInfo {
                    error,
                    recovered: false,
                }),
            ))
        }
        Err(e) => Err(e),
    }
}

//! Retry policy for supervised campaign workers: bounded attempts,
//! exponential backoff, deterministic seeded jitter.
//!
//! Jitter prevents restart stampedes (every shard of a killed machine
//! retrying in lock-step), but random jitter would make campaign telemetry
//! unreproducible. So the jitter factor is drawn from a stream seeded by
//! `(campaign seed, shard, attempt)` — two runs of the same campaign back
//! off identically, while different shards and attempts spread out.

use std::time::Duration;
use vbr_stats::rng::Xoshiro256PlusPlus;

/// Bounded-retry policy with exponential backoff and deterministic jitter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Maximum worker attempts per shard (1 = no retries). A shard failing
    /// this many times is quarantined: its checkpointed partial results are
    /// merged and honestly labeled, but it stops consuming the campaign.
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles each further attempt.
    pub base: Duration,
    /// Upper bound on any single backoff.
    pub cap: Duration,
    /// Jitter half-width as a fraction of the backoff: the slept duration is
    /// uniform in `backoff · [1 − jitter, 1 + jitter]`. `0.0` disables.
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            base: Duration::from_millis(200),
            cap: Duration::from_secs(10),
            jitter: 0.5,
        }
    }
}

impl RetryPolicy {
    /// True if a shard that just failed its `attempt`-th try (1-based) may
    /// be retried.
    pub fn may_retry(&self, attempt: u32) -> bool {
        attempt < self.max_attempts
    }

    /// Backoff to sleep before starting attempt `attempt + 1`, given the
    /// just-failed 1-based `attempt`. Deterministic in
    /// `(seed, shard, attempt)`.
    pub fn backoff(&self, seed: u64, shard: usize, attempt: u32) -> Duration {
        let exp = self
            .base
            .saturating_mul(1u32 << (attempt - 1).min(20))
            .min(self.cap);
        if self.jitter <= 0.0 {
            return exp;
        }
        // FNV-1a over (seed, shard, attempt) seeds the jitter stream.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for word in [seed, shard as u64, u64::from(attempt)] {
            for b in word.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        }
        let mut rng = Xoshiro256PlusPlus::from_seed_u64(h);
        let u = rng.next_f64(); // [0, 1)
        let factor = 1.0 + self.jitter * (2.0 * u - 1.0);
        Duration::from_secs_f64((exp.as_secs_f64() * factor).max(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let p = RetryPolicy {
            max_attempts: 10,
            base: Duration::from_millis(100),
            cap: Duration::from_secs(2),
            jitter: 0.0,
        };
        assert_eq!(p.backoff(1, 0, 1), Duration::from_millis(100));
        assert_eq!(p.backoff(1, 0, 2), Duration::from_millis(200));
        assert_eq!(p.backoff(1, 0, 3), Duration::from_millis(400));
        assert_eq!(p.backoff(1, 0, 6), Duration::from_secs(2), "capped");
        assert_eq!(p.backoff(1, 0, 30), Duration::from_secs(2), "shift-safe");
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let p = RetryPolicy {
            jitter: 0.5,
            ..RetryPolicy::default()
        };
        let a = p.backoff(42, 3, 2);
        let b = p.backoff(42, 3, 2);
        assert_eq!(a, b, "same (seed, shard, attempt) ⇒ same backoff");
        let c = p.backoff(42, 4, 2);
        assert_ne!(a, c, "different shard ⇒ different jitter");
        let exp = Duration::from_millis(400).as_secs_f64();
        for shard in 0..50 {
            let d = p.backoff(42, shard, 2).as_secs_f64();
            assert!((exp * 0.5..=exp * 1.5).contains(&d), "{d} out of band");
        }
    }

    #[test]
    fn retry_budget_is_bounded() {
        let p = RetryPolicy {
            max_attempts: 3,
            ..RetryPolicy::default()
        };
        assert!(p.may_retry(1));
        assert!(p.may_retry(2));
        assert!(!p.may_retry(3), "third failure quarantines");
    }
}

//! Frame-level fluid queue and the infinite-buffer survival estimator.

/// Running totals of offered and lost traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LossAccount {
    /// Total cells offered.
    pub offered: f64,
    /// Total cells lost to buffer overflow.
    pub lost: f64,
}

impl LossAccount {
    /// Cell loss rate `lost/offered` (0 when nothing was offered).
    pub fn clr(&self) -> f64 {
        if self.offered > 0.0 {
            self.lost / self.offered
        } else {
            0.0
        }
    }

    /// Merges another account into this one.
    pub fn merge(&mut self, other: &LossAccount) {
        self.offered += other.offered;
        self.lost += other.lost;
    }
}

/// Frame-level fluid queue with finite or infinite buffer.
///
/// Per frame: total arrivals `X` (cells) drain against capacity `C`
/// (cells/frame). Under deterministic smoothing the buffer content is
/// piecewise linear within the frame, so the loss of frame `n` is exactly
/// `(W_n + X_n − C − B)⁺` and the end-of-frame workload
/// `W_{n+1} = min{(W_n + X_n − C)⁺, B}` — the paper's recursion.
#[derive(Debug, Clone)]
pub struct FluidQueue {
    capacity: f64,
    /// `None` = infinite buffer (workload unbounded, no loss).
    buffer: Option<f64>,
    workload: f64,
    account: LossAccount,
}

impl FluidQueue {
    /// Creates a finite-buffer queue (`buffer` in cells).
    ///
    /// # Panics
    /// Panics on non-positive capacity or negative buffer.
    pub fn finite(capacity_per_frame: f64, buffer: f64) -> Self {
        assert!(
            capacity_per_frame > 0.0 && capacity_per_frame.is_finite(),
            "invalid capacity {capacity_per_frame}"
        );
        assert!(buffer >= 0.0 && buffer.is_finite(), "invalid buffer {buffer}");
        Self {
            capacity: capacity_per_frame,
            buffer: Some(buffer),
            workload: 0.0,
            account: LossAccount::default(),
        }
    }

    /// Creates an infinite-buffer queue (for BOP estimation).
    pub fn infinite(capacity_per_frame: f64) -> Self {
        assert!(
            capacity_per_frame > 0.0 && capacity_per_frame.is_finite(),
            "invalid capacity {capacity_per_frame}"
        );
        Self {
            capacity: capacity_per_frame,
            buffer: None,
            workload: 0.0,
            account: LossAccount::default(),
        }
    }

    /// Offers one frame's worth of aggregate arrivals; returns the cells
    /// lost in this frame (always 0 for an infinite buffer).
    #[inline]
    pub fn offer(&mut self, arrivals: f64) -> f64 {
        debug_assert!(arrivals >= 0.0, "negative arrivals {arrivals}");
        self.account.offered += arrivals;
        let unconstrained = (self.workload + arrivals - self.capacity).max(0.0);
        match self.buffer {
            Some(b) => {
                let lost = (unconstrained - b).max(0.0);
                self.workload = unconstrained.min(b);
                self.account.lost += lost;
                lost
            }
            None => {
                self.workload = unconstrained;
                0.0
            }
        }
    }

    /// Offers a whole batch of per-frame aggregate arrivals.
    ///
    /// Exactly equivalent to calling [`offer`](Self::offer) once per frame
    /// in order (same floating-point operations, same accumulation order,
    /// bit-identical workload and account) — the batch form keeps the
    /// queue's recursion state in registers across the batch instead of
    /// round-tripping through memory and the per-frame buffer `match`.
    pub fn offer_batch(&mut self, arrivals: &[f64]) {
        let cap = self.capacity;
        let mut offered = self.account.offered;
        let mut w = self.workload;
        match self.buffer {
            Some(b) => {
                let mut lost = self.account.lost;
                for &x in arrivals {
                    debug_assert!(x >= 0.0, "negative arrivals {x}");
                    offered += x;
                    let unconstrained = (w + x - cap).max(0.0);
                    lost += (unconstrained - b).max(0.0);
                    w = unconstrained.min(b);
                }
                self.account.lost = lost;
            }
            None => {
                for &x in arrivals {
                    debug_assert!(x >= 0.0, "negative arrivals {x}");
                    offered += x;
                    w = (w + x - cap).max(0.0);
                }
            }
        }
        self.workload = w;
        self.account.offered = offered;
    }

    /// Offers a batch and records every post-offer workload in `est` — the
    /// batched form of alternating `offer` / `BopEstimator::observe` per
    /// frame on an infinite-buffer queue (finite buffers work too; the
    /// clamped workload is observed, as the scalar interleave would).
    pub fn offer_batch_observing(&mut self, arrivals: &[f64], est: &mut BopEstimator) {
        let cap = self.capacity;
        let mut offered = self.account.offered;
        let mut w = self.workload;
        match self.buffer {
            Some(b) => {
                let mut lost = self.account.lost;
                for &x in arrivals {
                    debug_assert!(x >= 0.0, "negative arrivals {x}");
                    offered += x;
                    let unconstrained = (w + x - cap).max(0.0);
                    lost += (unconstrained - b).max(0.0);
                    w = unconstrained.min(b);
                    est.observe(w);
                }
                self.account.lost = lost;
            }
            None => {
                for &x in arrivals {
                    debug_assert!(x >= 0.0, "negative arrivals {x}");
                    offered += x;
                    w = (w + x - cap).max(0.0);
                    est.observe(w);
                }
            }
        }
        self.workload = w;
        self.account.offered = offered;
    }

    /// Current start-of-frame workload (cells).
    pub fn workload(&self) -> f64 {
        self.workload
    }

    /// Loss totals so far.
    pub fn account(&self) -> LossAccount {
        self.account
    }

    /// Service capacity (cells/frame).
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Configured buffer (None = infinite).
    pub fn buffer(&self) -> Option<f64> {
        self.buffer
    }

    /// Clears workload and counters (fresh replication).
    pub fn reset(&mut self) {
        self.workload = 0.0;
        self.account = LossAccount::default();
    }

    /// Zeroes the loss counters but keeps the current workload — used at the
    /// warmup/measurement boundary so measurement starts from a warmed-up
    /// queue without counting warmup traffic.
    pub fn clear_accounts(&mut self) {
        self.account = LossAccount::default();
    }
}

/// Estimates the workload survival curve `P(W > B)` of an infinite-buffer
/// queue over a fixed grid of thresholds.
///
/// Implementation detail: each observation does one binary search into the
/// sorted threshold grid and bumps a histogram bucket; the survival counts
/// are recovered as suffix sums at read time — O(log T) per frame however
/// many thresholds are tracked.
#[derive(Debug, Clone)]
pub struct BopEstimator {
    thresholds: Vec<f64>,
    /// `bucket[i]` = observations with `thresholds[i-1] < W <= thresholds[i]`
    /// (bucket[0]: W <= thresholds[0]; last bucket: W beyond the top).
    buckets: Vec<u64>,
    total: u64,
}

impl BopEstimator {
    /// Creates the estimator over a strictly increasing threshold grid.
    ///
    /// # Panics
    /// Panics if the grid is empty or not strictly increasing.
    pub fn new(thresholds: Vec<f64>) -> Self {
        assert!(!thresholds.is_empty(), "no thresholds");
        assert!(
            thresholds.windows(2).all(|w| w[0] < w[1]),
            "thresholds must be strictly increasing"
        );
        let n = thresholds.len();
        Self {
            thresholds,
            buckets: vec![0; n + 1],
            total: 0,
        }
    }

    /// Records one workload observation.
    #[inline]
    pub fn observe(&mut self, workload: f64) {
        // First index whose threshold is >= workload: workload exceeds all
        // thresholds before it.
        let idx = self.thresholds.partition_point(|&t| t < workload);
        self.buckets[idx] += 1;
        self.total += 1;
    }

    /// Reconstructs an estimator from its raw histogram — the checkpoint
    /// codec's inverse of [`buckets`](Self::buckets) /
    /// [`observations`](Self::observations).
    ///
    /// # Panics
    /// Panics if the grid is invalid, `buckets.len() != thresholds.len() + 1`,
    /// or the buckets do not sum to `total`.
    pub fn from_raw(thresholds: Vec<f64>, buckets: Vec<u64>, total: u64) -> Self {
        assert!(!thresholds.is_empty(), "no thresholds");
        assert!(
            thresholds.windows(2).all(|w| w[0] < w[1]),
            "thresholds must be strictly increasing"
        );
        assert_eq!(buckets.len(), thresholds.len() + 1, "bucket count mismatch");
        assert_eq!(buckets.iter().sum::<u64>(), total, "bucket total mismatch");
        Self {
            thresholds,
            buckets,
            total,
        }
    }

    /// The threshold grid.
    pub fn thresholds(&self) -> &[f64] {
        &self.thresholds
    }

    /// The raw histogram (`thresholds.len() + 1` buckets; see the field
    /// docs for the binning convention). Exposed for checkpoint
    /// serialization.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Total observations.
    pub fn observations(&self) -> u64 {
        self.total
    }

    /// Survival estimates `P(W > thresholds[i])` (same order as the grid).
    ///
    /// Note the strict inequality: an observation exactly equal to a
    /// threshold does not count as exceeding it.
    pub fn survival(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.thresholds.len()];
        if self.total == 0 {
            return out;
        }
        // Suffix sums of buckets beyond each threshold index.
        let mut acc = 0u64;
        for i in (0..self.thresholds.len()).rev() {
            acc += self.buckets[i + 1];
            out[i] = acc as f64 / self.total as f64;
        }
        out
    }

    /// Merges another estimator with the identical grid.
    ///
    /// # Panics
    /// Panics if the grids differ.
    pub fn merge(&mut self, other: &BopEstimator) {
        assert_eq!(
            self.thresholds, other.thresholds,
            "threshold grids must match"
        );
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.total += other.total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_loss_under_capacity() {
        let mut q = FluidQueue::finite(100.0, 50.0);
        for _ in 0..10 {
            assert_eq!(q.offer(90.0), 0.0);
        }
        assert_eq!(q.workload(), 0.0);
        assert_eq!(q.account().clr(), 0.0);
    }

    #[test]
    fn workload_accumulates_and_drains() {
        let mut q = FluidQueue::finite(100.0, 1000.0);
        q.offer(150.0); // W = 50
        assert_eq!(q.workload(), 50.0);
        q.offer(150.0); // W = 100
        assert_eq!(q.workload(), 100.0);
        q.offer(20.0); // W = 20
        assert_eq!(q.workload(), 20.0);
        q.offer(0.0); // W = 0 (clipped at zero)
        assert_eq!(q.workload(), 0.0);
    }

    #[test]
    fn loss_only_beyond_buffer() {
        let mut q = FluidQueue::finite(100.0, 30.0);
        // W + X - C = 60 > B=30: lose 30, W = 30.
        let lost = q.offer(160.0);
        assert_eq!(lost, 30.0);
        assert_eq!(q.workload(), 30.0);
        // Exactly filling the buffer loses nothing.
        let lost2 = q.offer(100.0);
        assert_eq!(lost2, 0.0);
        assert_eq!(q.workload(), 30.0);
        let acct = q.account();
        assert_eq!(acct.offered, 260.0);
        assert_eq!(acct.lost, 30.0);
        assert!((acct.clr() - 30.0 / 260.0).abs() < 1e-12);
    }

    #[test]
    fn zero_buffer_queue_is_bufferless() {
        let mut q = FluidQueue::finite(100.0, 0.0);
        assert_eq!(q.offer(130.0), 30.0);
        assert_eq!(q.workload(), 0.0);
        assert_eq!(q.offer(70.0), 0.0);
    }

    #[test]
    fn infinite_buffer_never_loses() {
        let mut q = FluidQueue::infinite(100.0);
        for _ in 0..100 {
            assert_eq!(q.offer(150.0), 0.0);
        }
        assert_eq!(q.workload(), 100.0 * 50.0);
        assert_eq!(q.account().lost, 0.0);
    }

    #[test]
    fn reset_clears_state() {
        let mut q = FluidQueue::finite(100.0, 10.0);
        q.offer(500.0);
        q.reset();
        assert_eq!(q.workload(), 0.0);
        assert_eq!(q.account(), LossAccount::default());
    }

    #[test]
    fn conservation_offered_equals_served_plus_lost_plus_queued() {
        // Mass balance over an arbitrary arrival pattern.
        let mut q = FluidQueue::finite(100.0, 37.0);
        let arrivals = [0.0, 250.0, 80.0, 130.0, 5.0, 400.0, 0.0, 90.0];
        let mut served = 0.0;
        let mut w_prev = 0.0;
        for &x in &arrivals {
            let lost = q.offer(x);
            // served this frame = inflow - d(workload) - lost
            served += x - (q.workload() - w_prev) - lost;
            w_prev = q.workload();
        }
        let acct = q.account();
        let total: f64 = arrivals.iter().sum();
        assert!((acct.offered - total).abs() < 1e-9);
        assert!(
            (served + acct.lost + q.workload() - total).abs() < 1e-9,
            "mass balance violated"
        );
        // Served can never exceed capacity per frame count.
        assert!(served <= 100.0 * arrivals.len() as f64 + 1e-9);
    }

    #[test]
    fn offer_batch_is_bit_identical_to_scalar_offers() {
        let arrivals = [0.0, 250.0, 80.0, 130.0, 5.0, 400.0, 0.0, 90.0, 99.9];
        for make in [
            || FluidQueue::finite(100.0, 37.0),
            || FluidQueue::finite(100.0, 0.0),
            || FluidQueue::infinite(100.0),
        ] {
            let mut scalar = make();
            let mut batched = make();
            for &x in &arrivals {
                scalar.offer(x);
            }
            // Split across two batches to exercise state carry-over.
            batched.offer_batch(&arrivals[..4]);
            batched.offer_batch(&arrivals[4..]);
            assert_eq!(scalar.workload().to_bits(), batched.workload().to_bits());
            assert_eq!(
                scalar.account().offered.to_bits(),
                batched.account().offered.to_bits()
            );
            assert_eq!(
                scalar.account().lost.to_bits(),
                batched.account().lost.to_bits()
            );
        }
    }

    #[test]
    fn offer_batch_observing_matches_scalar_interleave() {
        let arrivals = [120.0, 30.0, 300.0, 0.0, 150.0, 80.0];
        let grid = vec![10.0, 50.0, 100.0];
        let mut scalar_q = FluidQueue::infinite(100.0);
        let mut scalar_e = BopEstimator::new(grid.clone());
        for &x in &arrivals {
            scalar_q.offer(x);
            scalar_e.observe(scalar_q.workload());
        }
        let mut batch_q = FluidQueue::infinite(100.0);
        let mut batch_e = BopEstimator::new(grid);
        batch_q.offer_batch_observing(&arrivals, &mut batch_e);
        assert_eq!(scalar_q.workload().to_bits(), batch_q.workload().to_bits());
        assert_eq!(scalar_e.buckets(), batch_e.buckets());
        assert_eq!(scalar_e.observations(), batch_e.observations());
    }

    #[test]
    fn bop_estimator_counts_exceedances() {
        let mut e = BopEstimator::new(vec![10.0, 20.0, 30.0]);
        for w in [5.0, 15.0, 25.0, 35.0, 10.0] {
            e.observe(w);
        }
        // Strictly greater: 10.0 observation does not exceed threshold 10.
        let s = e.survival();
        assert!((s[0] - 3.0 / 5.0).abs() < 1e-12, "P(W>10) {s:?}");
        assert!((s[1] - 2.0 / 5.0).abs() < 1e-12);
        assert!((s[2] - 1.0 / 5.0).abs() < 1e-12);
        assert_eq!(e.observations(), 5);
    }

    #[test]
    fn bop_estimator_merge() {
        let mut a = BopEstimator::new(vec![1.0, 2.0]);
        let mut b = BopEstimator::new(vec![1.0, 2.0]);
        a.observe(1.5);
        b.observe(2.5);
        b.observe(0.5);
        a.merge(&b);
        let s = a.survival();
        assert_eq!(a.observations(), 3);
        assert!((s[0] - 2.0 / 3.0).abs() < 1e-12);
        assert!((s[1] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn bop_estimator_empty_is_zero() {
        let e = BopEstimator::new(vec![1.0]);
        assert_eq!(e.survival(), vec![0.0]);
    }

    #[test]
    #[should_panic]
    fn bop_estimator_rejects_unsorted() {
        BopEstimator::new(vec![2.0, 1.0]);
    }

    #[test]
    #[should_panic]
    fn queue_rejects_negative_buffer() {
        FluidQueue::finite(10.0, -1.0);
    }
}

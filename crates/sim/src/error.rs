//! Typed errors for the simulation stack.
//!
//! The replication harness runs for hours at paper scale (60 replications ×
//! 500k frames per model); a panic half-way through loses every completed
//! replication. Every failure the harness can encounter is therefore a
//! variant of [`SimError`], with enough context attached (replication index,
//! frame, seed, checkpoint line) to reproduce the fault deterministically.

use std::fmt;
use std::path::PathBuf;
use std::time::Duration;

/// Where in the pipeline a numeric fault was detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// Output of one source's `next_frame` (index into the source vector).
    Source(usize),
    /// The aggregate arrival stream after summing all sources.
    Aggregate,
    /// Queue state (workload or loss account) at one buffer-grid index.
    Queue(usize),
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultSite::Source(i) => write!(f, "source {i}"),
            FaultSite::Aggregate => write!(f, "aggregate arrivals"),
            FaultSite::Queue(i) => write!(f, "queue at buffer index {i}"),
        }
    }
}

/// A NaN / infinity / negative-rate value caught by the numeric guardrails,
/// pinned to the exact replication, frame and seed that produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct NumericFault {
    /// Replication in which the fault occurred.
    pub replication: usize,
    /// Frame index within the replication (warmup frames included).
    pub frame: u64,
    /// Root seed of the run — `root.split(replication)` replays the fault.
    pub seed: u64,
    /// The offending value.
    pub value: f64,
    /// Pipeline stage that produced the value.
    pub site: FaultSite,
}

impl fmt::Display for NumericFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid value {} from {} at replication {}, frame {} (root seed {:#x})",
            self.value, self.site, self.replication, self.frame, self.seed
        )
    }
}

/// Why a checkpoint file could not be used.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointErrorKind {
    /// File does not start with the expected magic header.
    BadHeader(String),
    /// Unsupported format version.
    VersionMismatch {
        /// Version found in the file.
        found: u32,
        /// Version this build writes and reads.
        expected: u32,
    },
    /// Checkpoint was written by a run with a different configuration.
    ConfigMismatch {
        /// Fingerprint recorded in the file.
        found: u64,
        /// Fingerprint of the current configuration.
        expected: u64,
    },
    /// File ends before its own trailer — the writing process died mid-write.
    Truncated,
    /// The content checksum recorded in the file does not match its bytes —
    /// silent corruption that kept every line individually parseable.
    ChecksumMismatch {
        /// Checksum recorded in the file.
        found: u64,
        /// Checksum of the file's actual content.
        expected: u64,
    },
    /// A line failed to parse.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for CheckpointErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointErrorKind::BadHeader(h) => write!(f, "bad header {h:?}"),
            CheckpointErrorKind::VersionMismatch { found, expected } => {
                write!(f, "format version {found}, this build reads {expected}")
            }
            CheckpointErrorKind::ConfigMismatch { found, expected } => write!(
                f,
                "config fingerprint {found:#x} does not match current config {expected:#x}"
            ),
            CheckpointErrorKind::Truncated => write!(f, "file truncated (missing trailer)"),
            CheckpointErrorKind::ChecksumMismatch { found, expected } => write!(
                f,
                "content checksum {found:#x} does not match file bytes {expected:#x}"
            ),
            CheckpointErrorKind::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
        }
    }
}

/// Everything that can go wrong in the simulation stack.
#[derive(Debug)]
#[non_exhaustive]
pub enum SimError {
    /// A configuration field failed validation.
    InvalidConfig {
        /// Name of the offending field.
        field: &'static str,
        /// Human-readable explanation.
        message: String,
    },
    /// A model or queue emitted NaN / infinity / a negative rate.
    NumericFault(NumericFault),
    /// A checkpoint file exists but cannot be used.
    Checkpoint {
        /// Path of the checkpoint file.
        path: PathBuf,
        /// What is wrong with it.
        kind: CheckpointErrorKind,
    },
    /// An I/O operation (checkpoint read/write, report emission) failed.
    Io {
        /// What the operation was trying to do.
        context: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The watchdog budget expired before a single replication completed,
    /// so there is nothing to degrade to.
    NoCompletedReplications {
        /// Replications the run was asked for.
        requested: usize,
        /// Replications abandoned by the per-replication deadline.
        timed_out: usize,
        /// The configured run budget, if one was set.
        budget: Option<Duration>,
    },
    /// A trace (recorded frame sequence) failed validation or parsing.
    InvalidTrace {
        /// Human-readable explanation.
        message: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig { field, message } => {
                write!(f, "invalid config: {field}: {message}")
            }
            SimError::NumericFault(fault) => write!(f, "numeric fault: {fault}"),
            SimError::Checkpoint { path, kind } => {
                write!(f, "checkpoint {}: {kind}", path.display())
            }
            SimError::Io { context, source } => write!(f, "{context}: {source}"),
            SimError::NoCompletedReplications {
                requested,
                timed_out,
                budget,
            } => {
                write!(
                    f,
                    "no replication completed (requested {requested}, timed out {timed_out}"
                )?;
                if let Some(b) = budget {
                    write!(f, ", run budget {b:?}")?;
                }
                write!(f, ")")
            }
            SimError::InvalidTrace { message } => write!(f, "invalid trace: {message}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl SimError {
    /// Shorthand for an [`SimError::InvalidConfig`].
    pub fn invalid_config(field: &'static str, message: impl Into<String>) -> Self {
        SimError::InvalidConfig {
            field,
            message: message.into(),
        }
    }

    /// Wraps an I/O error with context.
    pub fn io(context: impl Into<String>, source: std::io::Error) -> Self {
        SimError::Io {
            context: context.into(),
            source,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_context() {
        let e = SimError::NumericFault(NumericFault {
            replication: 7,
            frame: 123,
            seed: 0xBEEF,
            value: f64::NAN,
            site: FaultSite::Source(3),
        });
        let msg = e.to_string();
        assert!(msg.contains("replication 7"), "{msg}");
        assert!(msg.contains("frame 123"), "{msg}");
        assert!(msg.contains("0xbeef"), "{msg}");
        assert!(msg.contains("source 3"), "{msg}");
    }

    #[test]
    fn checkpoint_kinds_render() {
        for (kind, needle) in [
            (CheckpointErrorKind::Truncated, "truncated"),
            (
                CheckpointErrorKind::VersionMismatch {
                    found: 9,
                    expected: 1,
                },
                "version 9",
            ),
            (
                CheckpointErrorKind::Parse {
                    line: 4,
                    message: "nope".into(),
                },
                "line 4",
            ),
        ] {
            let e = SimError::Checkpoint {
                path: PathBuf::from("/tmp/x.ckpt"),
                kind,
            };
            assert!(e.to_string().contains(needle), "{e}");
        }
    }

    #[test]
    fn error_trait_is_implemented() {
        let e = SimError::io(
            "writing checkpoint",
            std::io::Error::other("disk full"),
        );
        let dyn_err: &dyn std::error::Error = &e;
        assert!(dyn_err.source().is_some());
        assert!(e.to_string().contains("disk full"));
    }
}

//! Supervised multi-process campaign runner.
//!
//! ROADMAP item 5: resolving the paper's CLR ≈ 10⁻⁹ "myths" takes
//! 10k-replication campaigns, and at that scale worker crashes, hangs and
//! corrupt checkpoints are the norm. This module is the coordinator side:
//!
//! * [`plan_shards`] partitions the replication indices into contiguous
//!   shards. Replication `r` is always seeded `root.split(r)`, so a shard is
//!   *defined by its index range alone* — any process computing range
//!   `lo..hi` produces bit-identical results, which is what makes restart,
//!   resume and merge exact.
//! * [`run_campaign`] spawns one worker **process** per shard and supervises
//!   them over their JSONL event streams: any append is a liveness beat
//!   (workers emit [`Event::Heartbeat`] mid-replication, so even a
//!   single-long-replication shard keeps beating); silence past the deadline
//!   means the worker is hung and gets killed; a dead worker whose shard
//!   checkpoint is incomplete is restarted with backoff
//!   ([`RetryPolicy`](crate::retry::RetryPolicy)) and resumes from that
//!   checkpoint; a shard that keeps failing is **quarantined** — its
//!   checkpointed replications still enter the merge, and the shortfall is
//!   recorded in [`Provenance`], never papered over.
//! * The merge unions every shard's per-replication results and runs the
//!   *same* outcome assembly a single-process run uses
//!   ([`collect_outcome`](crate::runner::collect_outcome)) — pooled CLR is a
//!   union of per-replication accounts, so the campaign result is
//!   bit-identical to one process running all replications.
//!
//! The supervisor never parses a worker's half-written final line as an
//! error ([`vbr_obs::jsonl::validate_stream_tolerant`] semantics) and
//! truncates that partial tail before a restarted worker appends, keeping
//! every shard stream valid JSONL end to end.

use crate::checkpoint::{self, CheckpointPolicy};
use crate::error::SimError;
use crate::retry::RetryPolicy;
use crate::runner::{collect_outcome, Provenance, RepResult, SimConfig, SimOutcome};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};
use vbr_obs::jsonl::parse_flat_object;
use vbr_obs::tail::Tailer;
use vbr_obs::{Event, P2Snapshot, P2Summary, Recorder};

/// One worker's slice of the campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    /// Shard index (0-based).
    pub index: usize,
    /// Replication indices this shard computes (`root.split(r)` seeding
    /// makes the range the complete job description).
    pub range: std::ops::Range<usize>,
    /// The shard's checkpoint file (resume + merge source).
    pub checkpoint: PathBuf,
    /// The shard's JSONL event stream (heartbeat channel).
    pub events: PathBuf,
}

/// Partitions `config.replications` into `shards` contiguous ranges with
/// per-shard checkpoint and event files under `dir`. The first
/// `replications % shards` shards get one extra replication.
pub fn plan_shards(config: &SimConfig, shards: usize, dir: &Path) -> Vec<ShardPlan> {
    let shards = shards.clamp(1, config.replications.max(1));
    let per = config.replications / shards;
    let extra = config.replications % shards;
    let mut plans = Vec::with_capacity(shards);
    let mut lo = 0usize;
    for index in 0..shards {
        let len = per + usize::from(index < extra);
        plans.push(ShardPlan {
            index,
            range: lo..lo + len,
            checkpoint: dir.join(format!("shard-{index}.ckpt")),
            events: dir.join(format!("shard-{index}.events.jsonl")),
        });
        lo += len;
    }
    plans
}

/// Supervision knobs for [`run_campaign`].
#[derive(Clone)]
pub struct CampaignOptions {
    /// Worker processes to shard across.
    pub shards: usize,
    /// Working directory for shard checkpoints and event streams (created
    /// if missing).
    pub dir: PathBuf,
    /// Retry/backoff/quarantine policy per shard.
    pub retry: RetryPolicy,
    /// A worker silent (no event-stream append) for longer than this is
    /// declared hung and killed. Workers should emit heartbeats at a small
    /// fraction of this interval.
    pub heartbeat_timeout: Duration,
    /// Supervisor poll cadence.
    pub poll_interval: Duration,
    /// Campaign-level telemetry sink (worker lifecycle + terminal events).
    pub recorder: Option<Arc<dyn Recorder>>,
}

impl CampaignOptions {
    /// Defaults tuned for real campaigns: 4 shards, 3 attempts,
    /// 30 s heartbeat deadline, 250 ms poll.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            shards: 4,
            dir: dir.into(),
            retry: RetryPolicy::default(),
            heartbeat_timeout: Duration::from_secs(30),
            poll_interval: Duration::from_millis(250),
            recorder: None,
        }
    }
}

impl std::fmt::Debug for CampaignOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CampaignOptions")
            .field("shards", &self.shards)
            .field("dir", &self.dir)
            .field("retry", &self.retry)
            .field("heartbeat_timeout", &self.heartbeat_timeout)
            .field("poll_interval", &self.poll_interval)
            .field("recorder", &self.recorder.as_ref().map(|_| "Recorder"))
            .finish()
    }
}

/// Per-shard outcome in the campaign report.
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// Shard index.
    pub index: usize,
    /// Replication range assigned.
    pub range: std::ops::Range<usize>,
    /// Worker attempts consumed.
    pub attempts: u32,
    /// Replications completed (merged from the shard checkpoint).
    pub completed: usize,
    /// True if the shard exhausted its retry budget.
    pub quarantined: bool,
}

/// Campaign-level accounting alongside the merged [`SimOutcome`].
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Per-shard attempts/completion/quarantine.
    pub shards: Vec<ShardReport>,
    /// Worker restarts across the campaign.
    pub restarts: usize,
    /// Hang detections (worker killed for silence).
    pub stalls: usize,
    /// Checkpoint fallbacks workers reported (corrupt primary recovered or
    /// reset).
    pub fallbacks: usize,
    /// Replication wall-time quantiles, count-weighted across all workers
    /// (from their `replication_end` events).
    pub rep_duration_s: P2Snapshot,
    /// Campaign wall time.
    pub wall: Duration,
}

impl CampaignReport {
    /// Shards that were quarantined.
    pub fn quarantined(&self) -> usize {
        self.shards.iter().filter(|s| s.quarantined).count()
    }
}

/// Merged result of a supervised campaign.
#[derive(Debug, Clone)]
pub struct CampaignOutcome {
    /// The merged experiment outcome — bit-identical to a single-process
    /// run over the union of completed replications, with honest
    /// [`Provenance`] when shards were quarantined.
    pub outcome: SimOutcome,
    /// Supervision accounting.
    pub report: CampaignReport,
}

/// Supervisor-side state machine for one shard.
enum ShardState {
    /// Worker running.
    Running { child: Child },
    /// Waiting out a backoff before the next attempt.
    Backoff { until: Instant },
    /// All replications checkpointed.
    Done,
    /// Retry budget exhausted.
    Quarantined,
}

struct ShardCtx {
    plan: ShardPlan,
    state: ShardState,
    attempt: u32,
    /// Incremental reader of the shard's event stream (the heartbeat
    /// channel) — shared with the live observatory tooling in
    /// [`vbr_obs::tail`].
    tail: Tailer,
    last_size: u64,
    last_progress: Instant,
    restarts: usize,
    stalls: usize,
    fallbacks: usize,
}

/// Runs a supervised multi-process campaign: shards `config.replications`
/// across worker processes, supervises them via heartbeats, restarts or
/// quarantines failures, and merges shard checkpoints into one outcome.
///
/// `spawn` builds the [`Command`] for a worker attempt on a shard — the
/// caller owns the executable contract (see the `campaign_run` binary). The
/// supervisor adds the attempt number in `VBR_WORKER_ATTEMPT` and inherits
/// the environment, so `VBR_FAULT` chaos specs reach the workers.
///
/// Errors only on coordinator-level failures (unusable campaign dir, every
/// shard quarantined with nothing checkpointed, hard-corrupt merge). Worker
/// failures are the *normal case* this function exists to absorb.
pub fn run_campaign(
    config: &SimConfig,
    options: &CampaignOptions,
    spawn: impl Fn(&ShardPlan, u32) -> Command,
) -> Result<CampaignOutcome, SimError> {
    config.validate()?;
    std::fs::create_dir_all(&options.dir).map_err(|e| {
        SimError::io(format!("creating campaign dir {}", options.dir.display()), e)
    })?;
    let plans = plan_shards(config, options.shards, &options.dir);
    let t0 = Instant::now();
    let emit = |event: Event| {
        if let Some(r) = &options.recorder {
            r.record(&event);
        }
    };
    emit(Event::CampaignStart {
        shards: plans.len(),
        replications: config.replications,
    });

    let mut shards: Vec<ShardCtx> = plans
        .into_iter()
        .map(|plan| {
            let tail = Tailer::new(plan.events.clone());
            ShardCtx {
                plan,
                state: ShardState::Backoff { until: t0 },
                attempt: 0,
                tail,
                last_size: 0,
                last_progress: Instant::now(),
                restarts: 0,
                stalls: 0,
                fallbacks: 0,
            }
        })
        .collect();

    // Campaign-wide accumulators fed from worker event streams.
    let mut rep_durations = P2Summary::default();

    loop {
        let mut all_settled = true;
        for shard in shards.iter_mut() {
            // Drain this shard's stream first: events inform both liveness
            // and the campaign accumulators regardless of state.
            let polled = shard.tail.poll();
            let (lines, size) = (polled.lines, polled.size);
            if size != shard.last_size {
                shard.last_size = size;
                shard.last_progress = Instant::now();
            }
            for line in &lines {
                let Ok(fields) = parse_flat_object(line) else {
                    continue;
                };
                let get = |k: &str| fields.iter().find(|(key, _)| key == k).map(|(_, v)| v);
                match get("type").and_then(|v| v.as_str()) {
                    Some("replication_end") => {
                        if let Some(ns) = get("duration_ns").and_then(|v| v.as_u64()) {
                            rep_durations.observe(ns as f64 / 1e9);
                        }
                    }
                    Some("checkpoint_fallback") => shard.fallbacks += 1,
                    _ => {}
                }
            }

            match &mut shard.state {
                ShardState::Done | ShardState::Quarantined => continue,
                ShardState::Backoff { until } => {
                    all_settled = false;
                    if Instant::now() < *until {
                        continue;
                    }
                    // (Re)start a worker attempt.
                    shard.attempt += 1;
                    // Never let a fresh worker append after a dead one's
                    // half-written line.
                    shard.tail.truncate_partial_tail();
                    shard.last_size = shard
                        .plan
                        .events
                        .metadata()
                        .map(|m| m.len())
                        .unwrap_or(0);
                    let mut cmd = spawn(&shard.plan, shard.attempt);
                    cmd.env(crate::fault::ATTEMPT_ENV, shard.attempt.to_string())
                        .stdout(Stdio::null())
                        .stderr(Stdio::null());
                    match cmd.spawn() {
                        Ok(child) => {
                            emit(Event::WorkerSpawned {
                                shard: shard.plan.index,
                                attempt: shard.attempt,
                                pid: child.id(),
                            });
                            shard.last_progress = Instant::now();
                            shard.state = ShardState::Running { child };
                        }
                        Err(_) => {
                            emit(Event::WorkerExited {
                                shard: shard.plan.index,
                                attempt: shard.attempt,
                                code: -2,
                            });
                            settle_failure(shard, config, options, &emit);
                        }
                    }
                }
                ShardState::Running { child, .. } => {
                    all_settled = false;
                    match child.try_wait() {
                        Ok(Some(status)) => {
                            let code = status.code().map(i64::from).unwrap_or(-1);
                            emit(Event::WorkerExited {
                                shard: shard.plan.index,
                                attempt: shard.attempt,
                                code,
                            });
                            settle_exit(shard, config, options, &emit);
                        }
                        Ok(None) => {
                            // Still running: hang detection on stream
                            // silence.
                            let silent = shard.last_progress.elapsed();
                            if silent > options.heartbeat_timeout {
                                shard.stalls += 1;
                                emit(Event::WorkerStalled {
                                    shard: shard.plan.index,
                                    attempt: shard.attempt,
                                    silent_ms: silent.as_millis() as u64,
                                });
                                let _ = child.kill();
                                let _ = child.wait();
                                emit(Event::WorkerExited {
                                    shard: shard.plan.index,
                                    attempt: shard.attempt,
                                    code: -1,
                                });
                                settle_exit(shard, config, options, &emit);
                            }
                        }
                        Err(_) => {
                            // Lost track of the child; treat as an exit.
                            let _ = child.kill();
                            let _ = child.wait();
                            emit(Event::WorkerExited {
                                shard: shard.plan.index,
                                attempt: shard.attempt,
                                code: -1,
                            });
                            settle_exit(shard, config, options, &emit);
                        }
                    }
                }
            }
        }
        if all_settled {
            break;
        }
        std::thread::sleep(options.poll_interval);
    }

    // Merge: union every shard's checkpointed replications, then assemble
    // the outcome through the same path a single-process run uses.
    let mut merged: BTreeMap<usize, RepResult> = BTreeMap::new();
    let mut reports = Vec::with_capacity(shards.len());
    let mut restarts = 0usize;
    let mut stalls = 0usize;
    let mut fallbacks = 0usize;
    for shard in &shards {
        let (results, _fallback) = checkpoint::load_with_fallback(&shard.plan.checkpoint, config)?;
        let completed = results
            .iter()
            .filter(|(rep, _)| shard.plan.range.contains(rep))
            .count();
        merged.extend(
            results
                .into_iter()
                .filter(|(rep, _)| shard.plan.range.contains(rep)),
        );
        restarts += shard.restarts;
        stalls += shard.stalls;
        fallbacks += shard.fallbacks;
        reports.push(ShardReport {
            index: shard.plan.index,
            range: shard.plan.range.clone(),
            attempts: shard.attempt,
            completed,
            quarantined: matches!(shard.state, ShardState::Quarantined),
        });
    }

    let provenance = Provenance {
        requested: config.replications,
        completed: merged.len(),
        timed_out: 0,
        resumed: 0,
        budget_exhausted: false,
    };
    let quarantined = reports.iter().filter(|r| r.quarantined).count();
    emit(Event::CampaignEnd {
        shards: reports.len(),
        quarantined,
        requested: provenance.requested,
        completed: provenance.completed,
        restarts,
        duration_ns: t0.elapsed().as_nanos() as u64,
    });
    if merged.is_empty() {
        return Err(SimError::NoCompletedReplications {
            requested: provenance.requested,
            timed_out: 0,
            budget: None,
        });
    }
    let outcome = collect_outcome(config, &merged, provenance);
    Ok(CampaignOutcome {
        outcome,
        report: CampaignReport {
            shards: reports,
            restarts,
            stalls,
            fallbacks,
            rep_duration_s: rep_durations.snapshot(),
            wall: t0.elapsed(),
        },
    })
}

/// Post-exit adjudication: complete checkpoint ⇒ done; otherwise a failure
/// headed for retry or quarantine.
fn settle_exit(
    shard: &mut ShardCtx,
    config: &SimConfig,
    options: &CampaignOptions,
    emit: &impl Fn(Event),
) {
    let completed = checkpointed_in_range(&shard.plan, config);
    if completed == shard.plan.range.len() {
        emit(Event::ShardCompleted {
            shard: shard.plan.index,
            replications: completed,
            attempts: shard.attempt,
        });
        shard.state = ShardState::Done;
    } else {
        settle_failure(shard, config, options, emit);
    }
}

/// A worker attempt failed (bad exit, kill, or spawn failure): retry with
/// backoff or quarantine.
fn settle_failure(
    shard: &mut ShardCtx,
    config: &SimConfig,
    options: &CampaignOptions,
    emit: &impl Fn(Event),
) {
    if options.retry.may_retry(shard.attempt) {
        let backoff = options
            .retry
            .backoff(config.seed, shard.plan.index, shard.attempt);
        shard.restarts += 1;
        emit(Event::WorkerRestarted {
            shard: shard.plan.index,
            attempt: shard.attempt + 1,
            backoff_ms: backoff.as_millis() as u64,
        });
        shard.state = ShardState::Backoff {
            until: Instant::now() + backoff,
        };
    } else {
        emit(Event::ShardQuarantined {
            shard: shard.plan.index,
            attempts: shard.attempt,
            completed: checkpointed_in_range(&shard.plan, config),
        });
        shard.state = ShardState::Quarantined;
    }
}

/// How many of the shard's assigned replications its checkpoint holds.
/// Damage degrades to the fallback chain; an unusable checkpoint counts 0.
fn checkpointed_in_range(plan: &ShardPlan, config: &SimConfig) -> usize {
    match checkpoint::load_with_fallback(&plan.checkpoint, config) {
        Ok((results, _)) => results
            .keys()
            .filter(|rep| plan.range.contains(rep))
            .count(),
        Err(_) => 0,
    }
}

/// The standard worker-side [`RunOptions`](crate::runner::RunOptions) for a
/// shard: checkpoint after every replication, heartbeat at `interval`.
/// The caller supplies the recorder (typically a
/// [`vbr_obs::JsonlRecorder::append`] on the shard's events file).
pub fn worker_options(
    plan_checkpoint: impl Into<PathBuf>,
    range: std::ops::Range<usize>,
    heartbeat: Duration,
    recorder: Option<Arc<dyn Recorder>>,
) -> crate::runner::RunOptions {
    crate::runner::RunOptions {
        checkpoint: Some(CheckpointPolicy::new(plan_checkpoint)),
        replication_range: Some(range),
        heartbeat: Some(heartbeat),
        recorder,
        ..crate::runner::RunOptions::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(replications: usize) -> SimConfig {
        SimConfig {
            n_sources: 2,
            capacity_per_source: 120.0,
            buffers_total: vec![0.0, 50.0],
            frames_per_replication: 1_000,
            warmup_frames: 100,
            replications,
            seed: 7,
            ts: 0.04,
            track_bop: false,
        }
    }

    #[test]
    fn shard_planner_partitions_exactly() {
        let dir = PathBuf::from("/tmp/c");
        let plans = plan_shards(&config(10), 4, &dir);
        assert_eq!(plans.len(), 4);
        let ranges: Vec<_> = plans.iter().map(|p| p.range.clone()).collect();
        assert_eq!(ranges, vec![0..3, 3..6, 6..8, 8..10]);
        // Contiguous, disjoint, complete.
        assert_eq!(ranges.iter().map(|r| r.len()).sum::<usize>(), 10);
        for w in plans.windows(2) {
            assert_eq!(w[0].range.end, w[1].range.start);
        }
        // Distinct artifact paths per shard.
        assert_eq!(plans[0].checkpoint, dir.join("shard-0.ckpt"));
        assert_eq!(plans[3].events, dir.join("shard-3.events.jsonl"));
    }

    #[test]
    fn shard_planner_clamps_to_replications() {
        let plans = plan_shards(&config(3), 8, &PathBuf::from("/tmp/c"));
        assert_eq!(plans.len(), 3, "never more shards than replications");
        assert!(plans.iter().all(|p| p.range.len() == 1));
        let plans = plan_shards(&config(3), 0, &PathBuf::from("/tmp/c"));
        assert_eq!(plans.len(), 1, "zero shards clamps to one");
        assert_eq!(plans[0].range, 0..3);
    }

    /// The supervisor's stream reader is now the shared [`Tailer`]; this
    /// pins the supervision-critical contract (complete lines only, partial
    /// tail truncation at a line boundary) at the call site.
    #[test]
    fn supervisor_tailer_consumes_only_complete_lines() {
        let dir = std::env::temp_dir().join("vbr_sim_event_tail_test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("t.jsonl");
        std::fs::write(&path, "{\"a\":1}\n{\"b\":2}\n{\"par").expect("write");
        let mut tail = Tailer::new(path.clone());
        let polled = tail.poll();
        assert_eq!(polled.lines, vec!["{\"a\":1}", "{\"b\":2}"]);
        assert_eq!(polled.size, 21);
        assert_eq!(tail.offset(), 16, "partial tail left unconsumed");

        // The partial line completes: consumed on the next poll.
        std::fs::write(&path, "{\"a\":1}\n{\"b\":2}\n{\"part\":3}\n").expect("write");
        assert_eq!(tail.poll().lines, vec!["{\"part\":3}"]);

        // Truncation discards a fresh partial tail at the line boundary.
        std::fs::write(&path, "{\"a\":1}\n{\"b\":2}\n{\"part\":3}\n{\"ha").expect("write");
        assert!(tail.poll().lines.is_empty());
        tail.truncate_partial_tail();
        let body = std::fs::read_to_string(&path).expect("read");
        assert!(body.ends_with("{\"part\":3}\n"), "{body:?}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn worker_options_wire_the_shard_contract() {
        let opts = worker_options(
            "/tmp/s.ckpt",
            3..7,
            Duration::from_millis(200),
            None,
        );
        assert_eq!(opts.replication_range, Some(3..7));
        assert_eq!(opts.heartbeat, Some(Duration::from_millis(200)));
        let policy = opts.checkpoint.expect("checkpoint set");
        assert_eq!(policy.path, PathBuf::from("/tmp/s.ckpt"));
        assert_eq!(policy.every, 1, "checkpoint after every replication");
    }
}

//! Fault-injection harness for the chaos tests and the CI chaos-smoke job.
//!
//! A worker process reads `VBR_FAULT` at run start and, when the configured
//! replication begins on the configured attempt, injects one of three
//! failures the supervisor must survive:
//!
//! * `crash@r[:k]` — exit immediately with [`FAULT_EXIT_CODE`], simulating a
//!   SIGKILLed / OOM-killed worker,
//! * `hang@r[:k]` — stop making progress forever (heartbeats cease), so the
//!   supervisor's stall detector has something to detect,
//! * `corrupt-checkpoint@r[:k]` — flip a byte in the middle of the shard's
//!   checkpoint file and then crash, so the restarted attempt exercises the
//!   checksum + fallback path.
//!
//! `r` is the replication index; `k` is the 1-based worker attempt the fault
//! fires on (default 1 — fault once, recover on retry; `*` fires on every
//! attempt, which is how the quarantine path is tested). The current attempt
//! number arrives in `VBR_WORKER_ATTEMPT`, set by the supervisor. Several
//! comma-separated specs compose: one campaign can take a crash, a hang and
//! a corrupt checkpoint in different shards.
//!
//! The hooks live in the production worker loop on purpose — fault paths
//! that only exist in test binaries drift from the code that actually runs —
//! but cost two env reads per run when `VBR_FAULT` is unset.

use std::path::Path;

/// Environment variable holding the fault spec(s).
pub const FAULT_ENV: &str = "VBR_FAULT";

/// Environment variable the supervisor sets to the worker's 1-based attempt.
pub const ATTEMPT_ENV: &str = "VBR_WORKER_ATTEMPT";

/// Exit code of an injected crash — distinguishable from a clean exit (0),
/// a typed-error exit (1) and a signal kill (no code) in the supervisor's
/// `worker_exited` events.
pub const FAULT_EXIT_CODE: i32 = 86;

/// What to inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Exit with [`FAULT_EXIT_CODE`] immediately.
    Crash,
    /// Stop making progress forever (the supervisor must kill us).
    Hang,
    /// Damage the checkpoint file, then crash.
    CorruptCheckpoint,
}

/// When to inject: on which attempt(s) of the worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AttemptMatch {
    /// A specific 1-based attempt.
    Only(u32),
    /// Every attempt — the permanent-failure / quarantine scenario.
    Every,
}

/// One parsed `kind@rep[:attempt]` spec.
#[derive(Debug, Clone, PartialEq, Eq)]
struct FaultSpec {
    kind: FaultKind,
    replication: usize,
    attempt: AttemptMatch,
}

/// The process's parsed fault configuration. Empty (the overwhelmingly
/// common case) when `VBR_FAULT` is unset.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    specs: Vec<FaultSpec>,
    attempt: u32,
}

impl FaultPlan {
    /// Parses `VBR_FAULT` / `VBR_WORKER_ATTEMPT` from the environment.
    /// Malformed specs are ignored with a note on stderr rather than
    /// failing the run — chaos tooling must never be able to break a
    /// production campaign harder than the fault it was trying to inject.
    pub fn from_env() -> Self {
        let Ok(raw) = std::env::var(FAULT_ENV) else {
            return Self::default();
        };
        let attempt = std::env::var(ATTEMPT_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<u32>().ok())
            .unwrap_or(1);
        Self::parse(&raw, attempt)
    }

    /// Parses a comma-separated spec list with the given current attempt.
    pub(crate) fn parse(raw: &str, attempt: u32) -> Self {
        let mut specs = Vec::new();
        for part in raw.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            match parse_spec(part) {
                Some(spec) => specs.push(spec),
                None => eprintln!("[vbr-sim] ignoring malformed {FAULT_ENV} spec {part:?}"),
            }
        }
        Self { specs, attempt }
    }

    /// True if no faults are configured (the fast path).
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// The fault to fire when `replication` starts on this attempt, if any.
    fn matching(&self, replication: usize) -> Option<FaultKind> {
        self.specs
            .iter()
            .find(|s| {
                s.replication == replication
                    && match s.attempt {
                        AttemptMatch::Only(k) => k == self.attempt,
                        AttemptMatch::Every => true,
                    }
            })
            .map(|s| s.kind)
    }

    /// Fires the configured fault for `replication`, if any. `checkpoint` is
    /// the shard's checkpoint path, needed by the corrupt-checkpoint fault.
    /// Does not return when a fault fires.
    pub fn maybe_trigger(&self, replication: usize, checkpoint: Option<&Path>) {
        let Some(kind) = self.matching(replication) else {
            return;
        };
        match kind {
            FaultKind::Crash => {
                eprintln!("[vbr-sim] injected crash at replication {replication}");
                std::process::exit(FAULT_EXIT_CODE);
            }
            FaultKind::Hang => {
                eprintln!("[vbr-sim] injected hang at replication {replication}");
                loop {
                    std::thread::sleep(std::time::Duration::from_secs(3600));
                }
            }
            FaultKind::CorruptCheckpoint => {
                if let Some(path) = checkpoint {
                    corrupt_file(path);
                }
                eprintln!(
                    "[vbr-sim] injected checkpoint corruption + crash at replication {replication}"
                );
                std::process::exit(FAULT_EXIT_CODE);
            }
        }
    }
}

fn parse_spec(part: &str) -> Option<FaultSpec> {
    let (kind_str, rest) = part.split_once('@')?;
    let kind = match kind_str {
        "crash" => FaultKind::Crash,
        "hang" => FaultKind::Hang,
        "corrupt-checkpoint" => FaultKind::CorruptCheckpoint,
        _ => return None,
    };
    let (rep_str, attempt) = match rest.split_once(':') {
        Some((r, "*")) => (r, AttemptMatch::Every),
        Some((r, k)) => (r, AttemptMatch::Only(k.trim().parse().ok()?)),
        None => (rest, AttemptMatch::Only(1)),
    };
    Some(FaultSpec {
        kind,
        replication: rep_str.trim().parse().ok()?,
        attempt,
    })
}

/// Flips one byte in the middle of the file — enough to fail the v2 content
/// checksum while keeping the file superficially well-formed. A short or
/// unreadable file is truncated instead (also detectable damage).
fn corrupt_file(path: &Path) {
    match std::fs::read(path) {
        Ok(mut bytes) if bytes.len() > 64 => {
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0xFF;
            let _ = std::fs::write(path, bytes);
        }
        _ => {
            let _ = std::fs::write(path, b"vbr-sim-checkpoint v2\n");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_single_and_compound_specs() {
        let plan = FaultPlan::parse("crash@3", 1);
        assert_eq!(plan.matching(3), Some(FaultKind::Crash));
        assert_eq!(plan.matching(2), None);

        let plan = FaultPlan::parse("crash@3:2, hang@5 ,corrupt-checkpoint@0:*", 2);
        assert_eq!(plan.matching(3), Some(FaultKind::Crash));
        assert_eq!(plan.matching(5), None, "hang@5 defaults to attempt 1");
        assert_eq!(plan.matching(0), Some(FaultKind::CorruptCheckpoint));
    }

    #[test]
    fn attempt_scoping_controls_refire() {
        // Default attempt 1: fires on the first attempt only.
        assert_eq!(
            FaultPlan::parse("crash@4", 1).matching(4),
            Some(FaultKind::Crash)
        );
        assert_eq!(FaultPlan::parse("crash@4", 2).matching(4), None);
        // `*`: fires on every attempt (the quarantine scenario).
        for attempt in 1..=5 {
            assert_eq!(
                FaultPlan::parse("crash@4:*", attempt).matching(4),
                Some(FaultKind::Crash)
            );
        }
    }

    #[test]
    fn malformed_specs_are_ignored_not_fatal() {
        for bad in ["crash", "crash@", "crash@x", "explode@3", "crash@3:y", ""] {
            let plan = FaultPlan::parse(bad, 1);
            assert!(plan.is_empty(), "{bad:?} should parse to nothing");
        }
        // A bad spec does not poison the good ones around it.
        let plan = FaultPlan::parse("nonsense,crash@1", 1);
        assert_eq!(plan.matching(1), Some(FaultKind::Crash));
    }

    #[test]
    fn corrupt_file_flips_content() {
        let dir = std::env::temp_dir().join("vbr_sim_fault_corrupt_test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("x.ckpt");
        let body: Vec<u8> = (0..200u8).collect();
        std::fs::write(&path, &body).expect("write");
        corrupt_file(&path);
        let after = std::fs::read(&path).expect("read");
        assert_eq!(after.len(), body.len());
        assert_ne!(after, body);
        let _ = std::fs::remove_file(&path);
    }
}

//! # vbr-sim
//!
//! ATM multiplexer simulation substrate — the machinery behind the paper's
//! §5.5 ("for each of the four models we run 60 replications, each of which
//! generates half a million frames").
//!
//! Three layers:
//!
//! * [`queue`] — the frame-level **fluid queue**. With all sources' frames
//!   aligned and cells deterministically smoothed over the frame duration
//!   (the paper's §5.5 assumptions), the buffer evolves by the Lindley-type
//!   recursion `W' = min{(W + X − C)⁺, B}` with per-frame fluid loss
//!   `(W + X − C − B)⁺`. This is exactly the workload recursion of the
//!   paper's §4.2, and it is what the headline experiments run.
//! * [`cell`] — a slotted **cell-level** simulator (one service slot per
//!   cell time on the aggregate link, arrivals placed in their smoothed
//!   positions) used to validate that the fluid abstraction does not distort
//!   the CLR at the paper's operating points.
//! * [`priority`] — a two-class (CLP 0/1) fluid queue with a partial
//!   buffer-sharing discard threshold, the space-priority scheme real ATM
//!   switches pair with UPC tagging.
//! * [`runner`] — the parallel replication harness: independent seeded
//!   replications fanned out over `std::thread::scope`, CLR measured for
//!   *many buffer sizes simultaneously* against a shared arrival stream
//!   (common random numbers), Student-t confidence intervals across
//!   replications, and an infinite-buffer survival-curve estimator for BOP
//!   comparisons.
//!
//! The harness is fault tolerant: all failures are typed ([`error`]),
//! model outputs are guarded against NaN/Inf/negative rates ([`guard`]),
//! long runs checkpoint and resume bit-identically ([`checkpoint`]), and a
//! watchdog degrades an over-budget run to a partial result with explicit
//! provenance instead of hanging or panicking.
//!
//! The harness is also observable: set [`RunOptions::recorder`] (re-exported
//! from [`vbr_obs`], aliased here as [`obs`]) and the run emits a typed
//! event stream, streams pipeline metrics at batch granularity, and delivers
//! an end-of-run summary with per-stage wall-time attribution — all without
//! touching an RNG, so results stay bit-identical recorder on or off.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod campaign;
pub mod cell;
pub mod checkpoint;
pub mod error;
pub mod fault;
pub mod guard;
pub mod priority;
pub mod queue;
pub mod retry;
pub mod runner;
pub mod switch;
pub mod trace;

pub use vbr_obs as obs;
pub use vbr_obs::{Event, MemoryRecorder, Recorder, RunSummary, Telemetry};

pub use campaign::{
    plan_shards, run_campaign, CampaignOptions, CampaignOutcome, CampaignReport, ShardPlan,
    ShardReport,
};
pub use cell::CellMultiplexer;
pub use checkpoint::{
    config_fingerprint, verify as verify_checkpoint, CheckpointPolicy, CHECKPOINT_MIN_VERSION,
    CHECKPOINT_VERSION,
};
pub use error::{CheckpointErrorKind, FaultSite, NumericFault, SimError};
pub use guard::Guard;
pub use priority::PriorityQueue;
pub use switch::{OutputQueuedSwitch, PortConfig};
pub use trace::TraceProcess;
pub use queue::{BopEstimator, FluidQueue, LossAccount};
pub use retry::RetryPolicy;
pub use runner::{
    run, run_mix, simulate_clr, simulate_clr_mix, ClrEstimate, Provenance, RunOptions, SimConfig,
    SimOutcome, SourceMix, Watchdog,
};

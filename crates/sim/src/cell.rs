//! Slotted cell-level multiplexer — the validation layer under the fluid
//! abstraction.
//!
//! The aggregate link serves exactly one cell per slot (slot = cell
//! transmission time, `T_s / C_total` seconds). Each source's frame of
//! `X_i` cells is deterministically smoothed: cell `j` of source `i` arrives
//! in slot `⌊j·S/X_i⌋` of the frame (S slots per frame). The buffer holds an
//! integer number of cells; arrivals that find it full are dropped.
//!
//! This reproduces the paper's §5.5 simulation discipline ("the beginning of
//! frame of each source is same and … cells are equispaced over the frame
//! duration") at the cell granularity, and exists to demonstrate that the
//! frame-level fluid recursion gives the same CLR at the paper's operating
//! points (see `tests/` and the ablation bench).

/// Cell-level multiplexer state for one replication.
#[derive(Debug, Clone)]
pub struct CellMultiplexer {
    /// Service slots per frame = total link capacity in cells/frame.
    slots_per_frame: usize,
    /// Buffer capacity (cells).
    buffer_cells: usize,
    /// Cells currently queued (excluding the one in service this slot).
    queue: usize,
    offered: u64,
    lost: u64,
    /// Scratch: arrivals per slot for the current frame.
    slot_arrivals: Vec<u32>,
}

impl CellMultiplexer {
    /// Creates a multiplexer serving `slots_per_frame` cells per frame with
    /// an integer cell buffer.
    ///
    /// # Panics
    /// Panics if `slots_per_frame` is 0.
    pub fn new(slots_per_frame: usize, buffer_cells: usize) -> Self {
        assert!(slots_per_frame > 0, "need at least one service slot");
        Self {
            slots_per_frame,
            buffer_cells,
            queue: 0,
            offered: 0,
            lost: 0,
            slot_arrivals: vec![0; slots_per_frame],
        }
    }

    /// Offers one frame: `frame_sizes[i]` cells from source `i`, smoothed
    /// over the frame. Returns cells lost during this frame.
    ///
    /// Fractional frame sizes are rounded to the nearest whole cell (the
    /// fluid models are real-valued; at cell level half a cell does not
    /// exist).
    pub fn offer_frame(&mut self, frame_sizes: &[f64]) -> u64 {
        let s = self.slots_per_frame;
        self.slot_arrivals.fill(0);
        for &x in frame_sizes {
            debug_assert!(x >= 0.0, "negative frame size {x}");
            let cells = x.round().max(0.0) as usize;
            for j in 0..cells {
                // Deterministic smoothing: cell j at phase j/cells of the
                // frame; cells beyond the service rate wrap into the last
                // slot index safely via min().
                let slot = (j * s / cells).min(s - 1);
                self.slot_arrivals[slot] += 1;
            }
            self.offered += cells as u64;
        }

        let mut lost_this_frame = 0u64;
        for slot in 0..s {
            // Arrivals join (or are dropped), then one cell is served.
            let arriving = self.slot_arrivals[slot] as usize;
            let room = self.buffer_cells + 1 - self.queue.min(self.buffer_cells + 1);
            // The system holds up to buffer + 1 cells (one in service).
            let accepted = arriving.min(room);
            lost_this_frame += (arriving - accepted) as u64;
            self.queue += accepted;
            if self.queue > 0 {
                self.queue -= 1; // one cell leaves per slot
            }
        }
        self.lost += lost_this_frame;
        lost_this_frame
    }

    /// Cells currently in the system.
    pub fn occupancy(&self) -> usize {
        self.queue
    }

    /// Total offered cells.
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Total lost cells.
    pub fn lost(&self) -> u64 {
        self.lost
    }

    /// Cell loss rate so far.
    pub fn clr(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.lost as f64 / self.offered as f64
        }
    }

    /// Clears state for a new replication.
    pub fn reset(&mut self) {
        self.queue = 0;
        self.offered = 0;
        self.lost = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn underload_never_loses() {
        let mut m = CellMultiplexer::new(100, 10);
        for _ in 0..50 {
            assert_eq!(m.offer_frame(&[40.0, 50.0]), 0);
        }
        assert_eq!(m.clr(), 0.0);
        assert_eq!(m.offered(), 50 * 90);
    }

    #[test]
    fn smoothed_overload_loses_excess() {
        // 2 sources x 100 cells into 100 slots with zero buffer: arrivals
        // come 2-per-slot against 1-per-slot service with 1 in-service place;
        // steady-state loses ~1 cell per slot.
        let mut m = CellMultiplexer::new(100, 0);
        let lost = m.offer_frame(&[100.0, 100.0]);
        assert!(
            (90..=100).contains(&(lost as i64)),
            "expected ~100 losses, got {lost}"
        );
    }

    #[test]
    fn buffer_absorbs_short_burst() {
        // One source bursting 120 cells in a 100-slot frame, buffer 30:
        // workload peaks at 20 -> no loss.
        let mut m = CellMultiplexer::new(100, 30);
        let lost = m.offer_frame(&[120.0]);
        assert_eq!(lost, 0);
        // Residual 20 cells drain next frame.
        let lost2 = m.offer_frame(&[0.0]);
        assert_eq!(lost2, 0);
        assert_eq!(m.occupancy(), 0);
    }

    #[test]
    fn matches_fluid_recursion_on_aggregate_steps() {
        // For arrivals spread over the frame the end-of-frame occupancy must
        // track the fluid workload within a few cells.
        use crate::queue::FluidQueue;
        let mut cellq = CellMultiplexer::new(1000, 500);
        let mut fluid = FluidQueue::finite(1000.0, 500.0);
        let pattern = [1200.0, 900.0, 1500.0, 200.0, 1100.0, 1050.0];
        for &x in &pattern {
            cellq.offer_frame(&[x]);
            fluid.offer(x);
            let diff = (cellq.occupancy() as f64 - fluid.workload()).abs();
            assert!(
                diff <= 3.0,
                "cell occupancy {} vs fluid workload {}",
                cellq.occupancy(),
                fluid.workload()
            );
        }
        let fluid_lost = fluid.account().lost;
        let cell_lost = cellq.lost() as f64;
        assert!(
            (fluid_lost - cell_lost).abs() <= 5.0,
            "losses: fluid {fluid_lost} vs cell {cell_lost}"
        );
    }

    #[test]
    fn fractional_sizes_round() {
        let mut m = CellMultiplexer::new(10, 100);
        m.offer_frame(&[2.4, 2.6]);
        assert_eq!(m.offered(), 5); // 2 + 3
    }

    #[test]
    fn reset_clears() {
        let mut m = CellMultiplexer::new(10, 0);
        m.offer_frame(&[100.0]);
        assert!(m.lost() > 0);
        m.reset();
        assert_eq!(m.lost(), 0);
        assert_eq!(m.occupancy(), 0);
    }
}

//! Frame-size trace recording and replay.
//!
//! The paper works with synthetic models on purpose, but any downstream user
//! of this library will eventually want to feed a *measured* trace (Star
//! Wars, videoconference captures, …) through the same CTS/BOP/simulation
//! pipeline. `TraceProcess` wraps a recorded frame-size sequence as a
//! [`FrameProcess`]:
//!
//! * analytic statistics are replaced by **sample** statistics (mean,
//!   variance, FFT-based ACF) — exactly what the empirical studies in the
//!   debate did;
//! * replay is cyclic with a random rotation per reset, the standard
//!   trace-driven-simulation device for generating "independent"
//!   replications from one trace (documented bias: replications share the
//!   trace's idiosyncrasies);
//! * a simple text codec (one frame size per line, `#` comments) for
//!   interchange with the classic public trace archives.

use crate::error::SimError;
use rand::{Rng, RngCore};
use vbr_models::FrameProcess;
use vbr_stats::sample_acf_fft;

/// A recorded frame-size trace, replayable as a frame process.
#[derive(Debug, Clone)]
pub struct TraceProcess {
    frames: std::sync::Arc<Vec<f64>>,
    label: String,
    mean: f64,
    variance: f64,
    /// Cached sample ACF prefix (computed lazily to `acf_horizon`).
    acf: std::sync::Arc<Vec<f64>>,
    position: usize,
    initialized: bool,
}

impl TraceProcess {
    /// Wraps a frame-size sequence. `acf_horizon` bounds the lags the trace
    /// can report (they are estimated once, up front, via FFT).
    ///
    /// # Panics
    /// Panics if the trace has fewer than 2 frames, non-finite or negative
    /// entries, zero variance, or `acf_horizon >= len`. Use
    /// [`try_new`](Self::try_new) for a non-panicking variant.
    pub fn new(frames: Vec<f64>, label: impl Into<String>, acf_horizon: usize) -> Self {
        match Self::try_new(frames, label, acf_horizon) {
            Ok(t) => t,
            Err(e) => panic!("{e}"),
        }
    }

    /// Validated constructor: rejects traces with fewer than 2 frames,
    /// non-finite or negative entries, zero variance, or an `acf_horizon`
    /// not shorter than the trace.
    pub fn try_new(
        frames: Vec<f64>,
        label: impl Into<String>,
        acf_horizon: usize,
    ) -> Result<Self, SimError> {
        let invalid = |message: String| SimError::InvalidTrace { message };
        if frames.len() < 2 {
            return Err(invalid("trace too short (need at least 2 frames)".into()));
        }
        if acf_horizon >= frames.len() {
            return Err(invalid(format!(
                "acf_horizon {acf_horizon} must be < trace length {}",
                frames.len()
            )));
        }
        if let Some((i, &x)) = frames
            .iter()
            .enumerate()
            .find(|(_, x)| !(x.is_finite() && **x >= 0.0))
        {
            return Err(invalid(format!("frame {i} has invalid size {x}")));
        }
        let n = frames.len() as f64;
        let mean = frames.iter().sum::<f64>() / n;
        let variance = frames.iter().map(|&x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        if variance <= 0.0 {
            return Err(invalid(
                "constant trace has no correlation structure".into(),
            ));
        }
        let acf = sample_acf_fft(&frames, acf_horizon);
        Ok(Self {
            frames: std::sync::Arc::new(frames),
            label: label.into(),
            mean,
            variance,
            acf: std::sync::Arc::new(acf),
            position: 0,
            initialized: false,
        })
    }

    /// Parses the one-number-per-line text format (blank lines and lines
    /// starting with `#` ignored).
    pub fn parse(
        text: &str,
        label: impl Into<String>,
        acf_horizon: usize,
    ) -> Result<Self, SimError> {
        let mut frames = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let value: f64 = line.parse().map_err(|e| SimError::InvalidTrace {
                message: format!("line {}: {e}", lineno + 1),
            })?;
            frames.push(value);
        }
        if frames.len() < 2 {
            return Err(SimError::InvalidTrace {
                message: "trace has fewer than 2 frames".into(),
            });
        }
        let horizon = acf_horizon.min(frames.len() - 1);
        Self::try_new(frames, label, horizon)
    }

    /// Serializes to the text format.
    pub fn serialize(&self) -> String {
        let mut out = String::with_capacity(self.frames.len() * 8);
        out.push_str(&format!("# trace: {} ({} frames)\n", self.label, self.frames.len()));
        for &x in self.frames.iter() {
            out.push_str(&format!("{x}\n"));
        }
        out
    }

    /// Number of recorded frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// True if the trace is empty (construction forbids it).
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// The raw frames.
    pub fn frames(&self) -> &[f64] {
        &self.frames
    }
}

impl FrameProcess for TraceProcess {
    fn next_frame(&mut self, rng: &mut dyn RngCore) -> f64 {
        if !self.initialized {
            self.position = rng.gen_range(0..self.frames.len());
            self.initialized = true;
        }
        let x = self.frames[self.position];
        self.position = (self.position + 1) % self.frames.len();
        x
    }

    fn fill_frames(&mut self, out: &mut [f64], rng: &mut dyn RngCore) {
        if out.is_empty() {
            return;
        }
        if !self.initialized {
            self.position = rng.gen_range(0..self.frames.len());
            self.initialized = true;
        }
        // Cyclic replay as wrapping slice copies instead of a per-frame
        // modulo; same frames, same single rotation draw.
        let n = self.frames.len();
        let mut filled = 0;
        while filled < out.len() {
            let take = (out.len() - filled).min(n - self.position);
            out[filled..filled + take]
                .copy_from_slice(&self.frames[self.position..self.position + take]);
            self.position = (self.position + take) % n;
            filled += take;
        }
    }

    fn mean(&self) -> f64 {
        self.mean
    }

    fn variance(&self) -> f64 {
        self.variance
    }

    fn autocorrelations(&self, max_lag: usize) -> Vec<f64> {
        assert!(
            max_lag < self.acf.len(),
            "trace ACF horizon is {} lags, asked for {max_lag}; rebuild the \
             TraceProcess with a larger acf_horizon",
            self.acf.len() - 1
        );
        self.acf[..=max_lag].to_vec()
    }

    fn reset(&mut self, rng: &mut dyn RngCore) {
        self.initialized = false;
        let _ = rng;
    }

    fn boxed_clone(&self) -> Box<dyn FrameProcess> {
        Box::new(self.clone())
    }

    fn label(&self) -> String {
        self.label.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vbr_stats::rng::Xoshiro256PlusPlus;

    fn synthetic_trace(n: usize) -> Vec<f64> {
        // Deterministic wavy trace with known mean.
        (0..n)
            .map(|i| 500.0 + 50.0 * ((i as f64) * 0.1).sin() + (i % 7) as f64)
            .collect()
    }

    #[test]
    fn stats_match_sample_statistics() {
        let frames = synthetic_trace(1_000);
        let n = frames.len() as f64;
        let mean = frames.iter().sum::<f64>() / n;
        let t = TraceProcess::new(frames, "wavy", 50);
        assert!((t.mean() - mean).abs() < 1e-9);
        assert!(t.variance() > 0.0);
        let acf = t.autocorrelations(10);
        assert!((acf[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn replay_is_cyclic_and_rotated() {
        let t = TraceProcess::new(synthetic_trace(100), "wavy", 10);
        let mut a = t.clone();
        let mut rng = Xoshiro256PlusPlus::from_seed_u64(301);
        let first: Vec<f64> = (0..200).map(|_| a.next_frame(&mut rng)).collect();
        // Cyclic: frame i and i+100 identical.
        for i in 0..100 {
            assert_eq!(first[i], first[i + 100]);
        }
        // Rotation: two resets give (almost surely) different phases.
        let mut b = t.clone();
        let mut c = t.clone();
        let mut r1 = Xoshiro256PlusPlus::from_seed_u64(302);
        let mut r2 = Xoshiro256PlusPlus::from_seed_u64(303);
        let s1: Vec<f64> = (0..5).map(|_| b.next_frame(&mut r1)).collect();
        let s2: Vec<f64> = (0..5).map(|_| c.next_frame(&mut r2)).collect();
        assert_ne!(s1, s2);
    }

    #[test]
    fn text_roundtrip() {
        let t = TraceProcess::new(vec![1.0, 2.5, 3.0, 4.25], "tiny", 2);
        let text = t.serialize();
        let back = TraceProcess::parse(&text, "tiny", 2).unwrap();
        assert_eq!(back.frames(), t.frames());
    }

    #[test]
    fn parse_skips_comments_and_blanks() {
        let text = "# header\n\n500\n 501 \n# trailing\n502\n";
        let t = TraceProcess::parse(text, "x", 1).unwrap();
        assert_eq!(t.frames(), &[500.0, 501.0, 502.0]);
    }

    #[test]
    fn parse_reports_bad_lines() {
        let err = TraceProcess::parse("500\nnot-a-number\n", "x", 1).unwrap_err();
        assert!(
            matches!(err, SimError::InvalidTrace { .. }),
            "wrong variant: {err}"
        );
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn trace_feeds_the_analysis_pipeline() {
        // A recorded DAR path, replayed, should give the same CTS ballpark
        // as the analytic model it came from.
        use vbr_asymptotics::{critical_time_scale, SourceStats};
        let model = vbr_models::DarProcess::new(vbr_models::DarParams::dar1(
            0.9,
            vbr_models::Marginal::paper_gaussian(),
        ));
        let mut m = model.clone();
        let mut rng = Xoshiro256PlusPlus::from_seed_u64(304);
        let frames: Vec<f64> = (0..200_000).map(|_| m.next_frame(&mut rng)).collect();
        let trace = TraceProcess::new(frames, "recorded DAR(1)", 4_096);

        let s_model = SourceStats::from_process(&model, 4_096);
        let s_trace = SourceStats::from_process(&trace, 4_096);
        let cts_model = critical_time_scale(&s_model, 538.0, 200.0);
        let cts_trace = critical_time_scale(&s_trace, 538.0, 200.0);
        let diff = cts_model.m_star.abs_diff(cts_trace.m_star);
        assert!(
            diff <= 3,
            "trace CTS {} vs model CTS {}",
            cts_trace.m_star,
            cts_model.m_star
        );
    }

    #[test]
    #[should_panic]
    fn rejects_negative_frames() {
        TraceProcess::new(vec![5.0, -1.0], "bad", 1);
    }
}

//! Output-queued ATM switch: several multiplexers under one roof.
//!
//! The paper studies a single multiplexer (one output port); a switch is a
//! bundle of them fed by a routed set of virtual connections. This module
//! composes the fluid queue into that shape so scenarios like "two video
//! trunks and a best-effort port sharing a switch" can be expressed — and
//! it demonstrates the (idealized) output-queueing property: with
//! per-output queues and no fabric contention, each port behaves exactly
//! like the paper's isolated multiplexer (verified in tests).

use crate::queue::{FluidQueue, LossAccount};
use rand::RngCore;
use vbr_models::FrameProcess;

/// Configuration of one output port.
#[derive(Debug, Clone, Copy)]
pub struct PortConfig {
    /// Service capacity (cells/frame).
    pub capacity: f64,
    /// Buffer (cells).
    pub buffer: f64,
}

/// An output-queued switch carrying a set of routed sources.
pub struct OutputQueuedSwitch {
    ports: Vec<FluidQueue>,
    /// Per-source output port index.
    routing: Vec<usize>,
    sources: Vec<Box<dyn FrameProcess>>,
    /// Scratch: per-port aggregate for the current frame.
    scratch: Vec<f64>,
}

impl OutputQueuedSwitch {
    /// Builds the switch from port configs and `(source, port)` pairs.
    ///
    /// # Panics
    /// Panics if there are no ports, no sources, or a route points past the
    /// last port.
    pub fn new(
        ports: &[PortConfig],
        routed_sources: Vec<(Box<dyn FrameProcess>, usize)>,
    ) -> Self {
        assert!(!ports.is_empty(), "switch needs at least one port");
        assert!(!routed_sources.is_empty(), "switch needs at least one source");
        let queues = ports
            .iter()
            .map(|p| FluidQueue::finite(p.capacity, p.buffer))
            .collect();
        let mut routing = Vec::with_capacity(routed_sources.len());
        let mut sources = Vec::with_capacity(routed_sources.len());
        for (src, port) in routed_sources {
            assert!(port < ports.len(), "route to nonexistent port {port}");
            routing.push(port);
            sources.push(src);
        }
        Self {
            scratch: vec![0.0; ports.len()],
            ports: queues,
            routing,
            sources,
        }
    }

    /// Number of ports.
    pub fn port_count(&self) -> usize {
        self.ports.len()
    }

    /// Number of routed sources.
    pub fn source_count(&self) -> usize {
        self.sources.len()
    }

    /// Resets every source (stationary restart) and every port queue.
    pub fn reset(&mut self, rng: &mut dyn RngCore) {
        for s in self.sources.iter_mut() {
            s.reset(rng);
        }
        for q in self.ports.iter_mut() {
            q.reset();
        }
    }

    /// Advances one frame: every source emits, arrivals are routed, each
    /// port serves. Returns total cells lost this frame across ports.
    pub fn step(&mut self, rng: &mut dyn RngCore) -> f64 {
        self.scratch.fill(0.0);
        for (src, &port) in self.sources.iter_mut().zip(&self.routing) {
            self.scratch[port] += src.next_frame(rng);
        }
        let mut lost = 0.0;
        for (q, &arrivals) in self.ports.iter_mut().zip(self.scratch.iter()) {
            lost += q.offer(arrivals);
        }
        lost
    }

    /// Runs `frames` frames.
    pub fn run(&mut self, frames: usize, rng: &mut dyn RngCore) {
        for _ in 0..frames {
            self.step(rng);
        }
    }

    /// Loss account of one port.
    ///
    /// # Panics
    /// Panics on an out-of-range port index.
    pub fn port_account(&self, port: usize) -> LossAccount {
        self.ports[port].account()
    }

    /// Current workload of one port (cells).
    pub fn port_workload(&self, port: usize) -> f64 {
        self.ports[port].workload()
    }

    /// Aggregate loss account across ports.
    pub fn total_account(&self) -> LossAccount {
        let mut acc = LossAccount::default();
        for q in &self.ports {
            acc.merge(&q.account());
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vbr_models::{DarParams, DarProcess, Marginal};
    use vbr_stats::rng::Xoshiro256PlusPlus;

    fn video_source(rho: f64) -> Box<dyn FrameProcess> {
        Box::new(DarProcess::new(DarParams::dar1(
            rho,
            Marginal::paper_gaussian(),
        )))
    }

    fn port(n_sources: usize) -> PortConfig {
        PortConfig {
            capacity: n_sources as f64 * 538.0,
            buffer: 400.0,
        }
    }

    #[test]
    fn output_queueing_is_port_isolation() {
        // A 2-port switch must behave exactly like two independent
        // multiplexers fed the same per-port arrivals — same seed, same
        // per-port losses (port order only affects which stream each source
        // consumes, so compare against a faithful re-simulation).
        let build = || {
            OutputQueuedSwitch::new(
                &[port(5), port(5)],
                (0..10).map(|i| (video_source(0.9), i % 2)).collect(),
            )
        };
        let mut a = build();
        let mut b = build();
        let mut rng_a = Xoshiro256PlusPlus::from_seed_u64(77);
        let mut rng_b = Xoshiro256PlusPlus::from_seed_u64(77);
        a.reset(&mut rng_a);
        b.reset(&mut rng_b);
        a.run(5_000, &mut rng_a);
        b.run(5_000, &mut rng_b);
        for p in 0..2 {
            assert_eq!(a.port_account(p), b.port_account(p), "port {p}");
        }
    }

    #[test]
    fn congested_port_does_not_contaminate_idle_port() {
        // Port 0 overloaded (capacity below aggregate mean), port 1
        // generously provisioned (mean + ~6 sigma for the 5-source
        // aggregate — at N = 5 there is no multiplexing economy, so the
        // paper's per-source c = 538 would NOT be lossless here):
        // all loss must be on port 0.
        let ports = [
            PortConfig {
                capacity: 4.0 * 490.0, // below 5 x 500 mean: overloaded
                buffer: 200.0,
            },
            PortConfig {
                capacity: 5.0 * 700.0,
                buffer: 400.0,
            },
        ];
        let routed = (0..10)
            .map(|i| (video_source(0.5), usize::from(i >= 5)))
            .collect();
        let mut sw = OutputQueuedSwitch::new(&ports, routed);
        let mut rng = Xoshiro256PlusPlus::from_seed_u64(78);
        sw.reset(&mut rng);
        sw.run(20_000, &mut rng);
        let hot = sw.port_account(0);
        let cool = sw.port_account(1);
        assert!(hot.clr() > 1e-3, "overloaded port must lose: {:e}", hot.clr());
        assert_eq!(cool.lost, 0.0, "idle port must not lose");
        assert!(
            (sw.total_account().lost - hot.lost).abs() < 1e-9,
            "all loss on the hot port"
        );
    }

    #[test]
    fn totals_are_port_sums() {
        let mut sw = OutputQueuedSwitch::new(
            &[port(3), port(3), port(3)],
            (0..9).map(|i| (video_source(0.7), i % 3)).collect(),
        );
        let mut rng = Xoshiro256PlusPlus::from_seed_u64(79);
        sw.reset(&mut rng);
        sw.run(3_000, &mut rng);
        let total = sw.total_account();
        let sum_offered: f64 = (0..3).map(|p| sw.port_account(p).offered).sum();
        assert!((total.offered - sum_offered).abs() < 1e-9);
        assert_eq!(sw.port_count(), 3);
        assert_eq!(sw.source_count(), 9);
    }

    #[test]
    #[should_panic]
    fn rejects_bad_route() {
        OutputQueuedSwitch::new(&[port(1)], vec![(video_source(0.5), 1)]);
    }
}

//! Numeric guardrails for the replication harness.
//!
//! A single NaN from a model propagates through the fluid-queue recursion
//! and silently poisons every CLR estimate downstream — the pooled account
//! merges it into all replications and the run's output is garbage with no
//! indication of where it came from. [`Guard`] checks every value crossing a
//! stage boundary (source → aggregate → queue) and converts the first bad
//! one into a [`SimError::NumericFault`] carrying the replication, frame,
//! seed and pipeline site, so the fault replays deterministically via
//! `root.split(replication)`.

use crate::error::{FaultSite, NumericFault, SimError};
use rand::RngCore;
use std::sync::Arc;
use vbr_models::FrameProcess;
use vbr_obs::GuardTripCounters;

/// Per-replication numeric guard: validates frame-rate and queue values,
/// tracking the frame index so faults are reported with full provenance.
#[derive(Debug, Clone)]
pub struct Guard {
    replication: usize,
    seed: u64,
    frame: u64,
    /// Optional trip counters (shared with the run's metrics): every fault
    /// this guard constructs is counted at its pipeline site.
    trips: Option<Arc<GuardTripCounters>>,
}

impl Guard {
    /// Creates a guard for one replication of a run rooted at `seed`.
    pub fn new(replication: usize, seed: u64) -> Self {
        Self {
            replication,
            seed,
            frame: 0,
            trips: None,
        }
    }

    /// Attaches shared trip counters: every fault the guard constructs from
    /// here on increments the counter matching its [`FaultSite`].
    pub fn with_trip_counters(mut self, trips: Arc<GuardTripCounters>) -> Self {
        self.trips = Some(trips);
        self
    }

    /// Current frame index (frames validated so far).
    pub fn frame(&self) -> u64 {
        self.frame
    }

    /// Advances the frame counter — call once per simulated frame.
    pub fn advance(&mut self) {
        self.frame += 1;
    }

    /// Advances the frame counter by a whole batch of frames.
    pub fn advance_by(&mut self, frames: u64) {
        self.frame += frames;
    }

    fn fault(&self, value: f64, site: FaultSite) -> SimError {
        self.fault_at(0, value, site)
    }

    /// Builds a fault `offset` frames past the guard's current frame — used
    /// by the batch checks, where the guard's counter points at the first
    /// frame of the batch.
    fn fault_at(&self, offset: u64, value: f64, site: FaultSite) -> SimError {
        if let Some(trips) = &self.trips {
            match site {
                FaultSite::Source(_) => trips.source.add(1),
                FaultSite::Aggregate => trips.aggregate.add(1),
                FaultSite::Queue(_) => trips.queue.add(1),
            }
        }
        SimError::NumericFault(NumericFault {
            replication: self.replication,
            frame: self.frame + offset,
            seed: self.seed,
            value,
            site,
        })
    }

    /// Validates a frame-size value at `site`: must be finite and
    /// non-negative (frame sizes are rates in cells/frame).
    #[inline]
    pub fn check(&self, value: f64, site: FaultSite) -> Result<f64, SimError> {
        if value.is_finite() && value >= 0.0 {
            Ok(value)
        } else {
            Err(self.fault(value, site))
        }
    }

    /// Validates one source's output for the current frame.
    #[inline]
    pub fn check_source(&self, source: usize, value: f64) -> Result<f64, SimError> {
        self.check(value, FaultSite::Source(source))
    }

    /// Validates one source's output `offset` frames into the current batch.
    #[inline]
    pub fn check_source_at(&self, offset: u64, source: usize, value: f64) -> Result<f64, SimError> {
        if value.is_finite() && value >= 0.0 {
            Ok(value)
        } else {
            Err(self.fault_at(offset, value, FaultSite::Source(source)))
        }
    }

    /// Validates a batch of per-frame values produced at `site`, attributing
    /// the first bad value to its exact frame (`self.frame() + index`).
    ///
    /// This is the per-batch form of calling [`check`](Self::check) once per
    /// frame: the fault carries the same site, value and frame index, only
    /// the scan happens after the whole batch is produced.
    pub fn check_batch(&self, values: &[f64], site: FaultSite) -> Result<(), SimError> {
        for (i, &v) in values.iter().enumerate() {
            if !(v.is_finite() && v >= 0.0) {
                return Err(self.fault_at(i as u64, v, site));
            }
        }
        Ok(())
    }

    /// Validates queue state (workload and loss account) after an offer.
    /// The fluid recursion preserves finiteness, so this only fires if the
    /// queue itself is buggy — cheap insurance on the accounting the whole
    /// paper reproduction rests on.
    #[inline]
    pub fn check_queue(&self, buffer_index: usize, queue: &crate::queue::FluidQueue) -> Result<(), SimError> {
        let valid = |v: f64| v.is_finite() && v >= 0.0;
        let w = queue.workload();
        if !valid(w) {
            return Err(self.fault(w, FaultSite::Queue(buffer_index)));
        }
        let acct = queue.account();
        if !valid(acct.offered) {
            return Err(self.fault(acct.offered, FaultSite::Queue(buffer_index)));
        }
        if !valid(acct.lost) {
            return Err(self.fault(acct.lost, FaultSite::Queue(buffer_index)));
        }
        Ok(())
    }

    /// Draws one frame from every source, validating each output, and
    /// returns the validated aggregate.
    #[inline]
    pub fn aggregate_frame(
        &self,
        sources: &mut [Box<dyn FrameProcess>],
        rng: &mut dyn RngCore,
    ) -> Result<f64, SimError> {
        let mut aggregate = 0.0;
        for (i, s) in sources.iter_mut().enumerate() {
            aggregate += self.check_source(i, s.next_frame(rng))?;
        }
        // Summing finite non-negatives can only overflow to +inf, catch it.
        self.check(aggregate, FaultSite::Aggregate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vbr_stats::rng::Xoshiro256PlusPlus;

    /// A process that misbehaves after a configurable number of frames.
    #[derive(Debug, Clone)]
    struct Poisoned {
        after: u64,
        emitted: u64,
        value: f64,
    }

    impl FrameProcess for Poisoned {
        fn next_frame(&mut self, _rng: &mut dyn RngCore) -> f64 {
            self.emitted += 1;
            if self.emitted > self.after {
                self.value
            } else {
                100.0
            }
        }
        fn mean(&self) -> f64 {
            100.0
        }
        fn variance(&self) -> f64 {
            1.0
        }
        fn autocorrelations(&self, max_lag: usize) -> Vec<f64> {
            let mut v = vec![0.0; max_lag + 1];
            v[0] = 1.0;
            v
        }
        fn reset(&mut self, _rng: &mut dyn RngCore) {
            self.emitted = 0;
        }
        fn boxed_clone(&self) -> Box<dyn FrameProcess> {
            Box::new(self.clone())
        }
        fn label(&self) -> String {
            "poisoned".into()
        }
    }

    #[test]
    fn clean_values_pass_through() {
        let g = Guard::new(0, 1);
        assert_eq!(g.check(5.0, FaultSite::Aggregate).unwrap(), 5.0);
        assert_eq!(g.check(0.0, FaultSite::Aggregate).unwrap(), 0.0);
    }

    #[test]
    fn nan_inf_negative_all_fault() {
        let g = Guard::new(3, 9);
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -1.0] {
            let err = g.check(bad, FaultSite::Source(2)).unwrap_err();
            match err {
                SimError::NumericFault(f) => {
                    assert_eq!(f.replication, 3);
                    assert_eq!(f.seed, 9);
                    assert_eq!(f.site, FaultSite::Source(2));
                }
                other => panic!("wrong error {other:?}"),
            }
        }
    }

    #[test]
    fn aggregate_pins_offending_source_and_frame() {
        let clean = Poisoned {
            after: u64::MAX,
            emitted: 0,
            value: 0.0,
        };
        let poisoned = Poisoned {
            after: 4,
            emitted: 0,
            value: f64::NAN,
        };
        let mut sources: Vec<Box<dyn FrameProcess>> =
            vec![Box::new(clean), Box::new(poisoned)];
        let mut rng = Xoshiro256PlusPlus::from_seed_u64(1);
        let mut g = Guard::new(0, 42);
        let mut failure = None;
        for _ in 0..10 {
            match g.aggregate_frame(&mut sources, &mut rng) {
                Ok(_) => g.advance(),
                Err(e) => {
                    failure = Some(e);
                    break;
                }
            }
        }
        match failure.expect("must fault") {
            SimError::NumericFault(f) => {
                assert_eq!(f.site, FaultSite::Source(1));
                assert_eq!(f.frame, 4, "fault on the fifth frame (index 4)");
                assert!(f.value.is_nan());
            }
            other => panic!("wrong error {other:?}"),
        }
    }

    #[test]
    fn check_batch_attributes_exact_frame() {
        let mut g = Guard::new(1, 7);
        g.advance_by(100);
        let values = [1.0, 2.0, f64::NAN, 3.0];
        match g.check_batch(&values, FaultSite::Aggregate).unwrap_err() {
            SimError::NumericFault(f) => {
                assert_eq!(f.frame, 102, "fault lands on batch base + offset");
                assert_eq!(f.site, FaultSite::Aggregate);
                assert!(f.value.is_nan());
            }
            other => panic!("wrong error {other:?}"),
        }
        assert!(g.check_batch(&[0.0, 1.0], FaultSite::Aggregate).is_ok());
    }

    #[test]
    fn check_source_at_matches_scalar_check() {
        let mut g = Guard::new(2, 11);
        g.advance_by(40);
        assert_eq!(g.check_source_at(3, 5, 9.0).unwrap(), 9.0);
        match g.check_source_at(3, 5, -1.0).unwrap_err() {
            SimError::NumericFault(f) => {
                assert_eq!(f.frame, 43);
                assert_eq!(f.site, FaultSite::Source(5));
                assert_eq!(f.value, -1.0);
            }
            other => panic!("wrong error {other:?}"),
        }
    }

    #[test]
    fn healthy_queue_passes_check() {
        let mut q = crate::queue::FluidQueue::finite(100.0, 10.0);
        q.offer(150.0);
        let g = Guard::new(0, 1);
        assert!(g.check_queue(0, &q).is_ok());
    }
}

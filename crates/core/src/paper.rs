//! Table 1 in executable form: every model parameter of the paper derived
//! from first principles, plus constructors for the four model families.
//!
//! The paper's §5.1 fixes the experimental frame: 25 frames/sec
//! (T_s = 40 ms), Gaussian frame-size marginal with mean 500 cells/frame and
//! variance 5000, and four model families sharing that marginal exactly:
//!
//! * `Z^a = FBNDP(α=0.8, M=15) + DAR(1)(a)` with equal mean/variance split —
//!   the stand-in for a real LRD trace, short-term correlation tuned by `a`;
//! * `V^v = FBNDP(α=0.9, M=15) + DAR(1)` with variance ratio `v` and the
//!   DAR coefficient [`solve_a_for_v`]-chosen so all `V^v` share the same
//!   lag-1 correlation — long-term correlation weight tuned by `v`;
//! * `S = DAR(p)` Yule–Walker-matched to the first p correlations of `Z^a`;
//! * `L = FBNDP(α≈0.72, M=30)` with α chosen by [`fit_l_alpha`] so its
//!   correlation *tail* tracks `Z^a`'s (matching only the long-term
//!   correlations).
//!
//! Every derived quantity in the paper's Table 1 (λ, T₀, the near-0.8 `a`
//! values, the DAR(p) fits, α_L) is recomputed here and verified against the
//! printed table in tests and in the `table1` bench target.

use crate::matching::fit_dar;
use vbr_models::{
    CleggParams, CleggProcess, DarParams, DarProcess, Fbndp, FbndpParams, FrameProcess, Marginal,
    MwmParams, MwmProcess, Superposition,
};

/// Mean frame size (cells/frame), paper §5.1.
pub const MEAN: f64 = 500.0;
/// Frame-size variance (cells²), paper §5.1.
pub const VARIANCE: f64 = 5000.0;
/// Frame duration (seconds): 25 frames/sec.
pub const TS: f64 = 0.04;
/// FBNDP fractal exponent for the `Z^a` component (H = 0.9).
pub const ALPHA_Z: f64 = 0.8;
/// FBNDP fractal exponent for the `V^v` component (H = 0.95).
pub const ALPHA_V: f64 = 0.9;
/// Number of ON/OFF processes in the `Z`/`V` FBNDP components.
pub const M_COMPONENT: usize = 15;
/// Number of ON/OFF processes in model `L`.
pub const M_L: usize = 30;
/// The paper's `a` grid for `Z^a`.
pub const A_GRID: [f64; 4] = [0.7, 0.9, 0.975, 0.99];
/// The paper's `v` grid for `V^v`.
pub const V_GRID: [f64; 3] = [0.67, 1.0, 1.5];
/// The reference DAR(1) coefficient of `V^1`.
pub const A_V1: f64 = 0.8;
/// Sources multiplexed in Figs. 5–10.
pub const N_SOURCES: usize = 30;
/// Per-source bandwidth (cells/frame) in Figs. 5–10.
pub const C_FIGS: f64 = 538.0;
/// Per-source bandwidth (cells/frame) in Fig. 4.
pub const C_FIG4: f64 = 526.0;
/// Sources multiplexed in Fig. 4.
pub const N_FIG4: usize = 100;

/// The global experimental frame (mean/variance/frame duration), should a
/// caller want the paper's machinery at different targets.
#[derive(Debug, Clone, Copy)]
pub struct PaperSpec {
    /// Mean frame size (cells/frame).
    pub mean: f64,
    /// Frame-size variance (cells²).
    pub variance: f64,
    /// Frame duration (sec).
    pub ts: f64,
}

impl Default for PaperSpec {
    fn default() -> Self {
        Self {
            mean: MEAN,
            variance: VARIANCE,
            ts: TS,
        }
    }
}

/// FBNDP component carrying the fraction `share ∈ (0, 1]` of the total mean
/// and variance (the paper splits both proportionally, which keeps the
/// variance-to-mean ratio — and hence T₀ — independent of the split).
fn fbndp_component(spec: PaperSpec, share: f64, alpha: f64, m: usize) -> FbndpParams {
    FbndpParams::from_frame_targets(
        spec.mean * share,
        spec.variance * share,
        alpha,
        m,
        spec.ts,
    )
}

/// Gaussian DAR(1) component carrying the complementary share.
fn dar_component(spec: PaperSpec, share: f64, a: f64) -> DarParams {
    DarParams::dar1(
        a,
        Marginal::Gaussian {
            mean: spec.mean * share,
            sd: (spec.variance * share).sqrt(),
        },
    )
}

/// Builds `Z^a` with the paper's defaults.
pub fn build_z(a: f64) -> Superposition {
    build_z_with(PaperSpec::default(), a)
}

/// Builds `Z^a` under a custom spec.
pub fn build_z_with(spec: PaperSpec, a: f64) -> Superposition {
    let x = Fbndp::new(fbndp_component(spec, 0.5, ALPHA_Z, M_COMPONENT));
    let y = DarProcess::new(dar_component(spec, 0.5, a));
    Superposition::new(Box::new(x), Box::new(y), format!("Z^{a}"))
}

/// Lag-1 autocorrelation of the `V^v` FBNDP component (independent of v —
/// the proportional split fixes the variance/mean ratio and hence T₀).
pub fn v_component_lag1() -> f64 {
    let params = fbndp_component(PaperSpec::default(), 0.5, ALPHA_V, M_COMPONENT);
    let w = params.correlation_weight();
    let two_h = ALPHA_V + 1.0;
    w * 0.5 * (2f64.powf(two_h) - 2.0)
}

/// The common lag-1 target shared by all `V^v`: the lag-1 correlation of
/// `V^1` built with `a = 0.8` (paper Table 1's reference row).
pub fn v_lag1_target() -> f64 {
    0.5 * v_component_lag1() + 0.5 * A_V1
}

/// Solves the DAR(1) coefficient for `V^v` such that the lag-1 correlation
/// equals [`v_lag1_target`]:
/// `r(1) = v/(v+1)·r_X(1) + 1/(v+1)·a  ⇒  a = (1+v)·target − v·r_X(1)`.
pub fn solve_a_for_v(v: f64) -> f64 {
    assert!(v > 0.0, "variance ratio must be positive, got {v}");
    let rx1 = v_component_lag1();
    let a = (1.0 + v) * v_lag1_target() - v * rx1;
    assert!(
        (0.0..1.0).contains(&a),
        "no valid DAR(1) coefficient for v={v} (got {a})"
    );
    a
}

/// Builds `V^v` with the paper's defaults.
pub fn build_v(v: f64) -> Superposition {
    let spec = PaperSpec::default();
    let share_x = v / (1.0 + v);
    let share_y = 1.0 / (1.0 + v);
    let a = solve_a_for_v(v);
    let x = Fbndp::new(fbndp_component(spec, share_x, ALPHA_V, M_COMPONENT));
    let y = DarProcess::new(dar_component(spec, share_y, a));
    Superposition::new(Box::new(x), Box::new(y), format!("V^{v}"))
}

/// Fits α for model `L`: minimize the squared log-distance between the
/// `L = FBNDP(α, M=30)` ACF and the `Z^a` ACF over the tail lags
/// `50..=1000` (where the geometric component of `Z` has died and only the
/// power law remains). Golden-section search over α ∈ (0.55, 0.95).
///
/// The paper reports α = 0.72 (H = 0.86) from the same criterion.
pub fn fit_l_alpha() -> f64 {
    let spec = PaperSpec::default();
    // Tail of Z: DAR component negligible beyond lag 50 for a <= 0.975.
    let z = build_z(0.9);
    let z_acf = z.autocorrelations(1000);
    let lags: Vec<usize> = (0..40).map(|i| 50 + i * 24).filter(|&k| k <= 1000).collect();

    let objective = |alpha: f64| -> f64 {
        let params =
            FbndpParams::from_frame_targets(spec.mean, spec.variance, alpha, M_L, spec.ts);
        let w = params.correlation_weight();
        let two_h = alpha + 1.0;
        lags.iter()
            .map(|&k| {
                let kf = k as f64;
                let rl = w * 0.5
                    * ((kf + 1.0).powf(two_h) - 2.0 * kf.powf(two_h) + (kf - 1.0).powf(two_h));
                (rl.ln() - z_acf[k].ln()).powi(2)
            })
            .sum()
    };

    // Golden-section minimization.
    let (mut lo, mut hi) = (0.55_f64, 0.95_f64);
    let phi = (5.0_f64.sqrt() - 1.0) / 2.0;
    let mut x1 = hi - phi * (hi - lo);
    let mut x2 = lo + phi * (hi - lo);
    let mut f1 = objective(x1);
    let mut f2 = objective(x2);
    while hi - lo > 1e-5 {
        if f1 < f2 {
            hi = x2;
            x2 = x1;
            f2 = f1;
            x1 = hi - phi * (hi - lo);
            f1 = objective(x1);
        } else {
            lo = x1;
            x1 = x2;
            f1 = f2;
            x2 = lo + phi * (hi - lo);
            f2 = objective(x2);
        }
    }
    (lo + hi) / 2.0
}

/// Builds model `L` (exact LRD, tail-fitted to `Z^a`).
pub fn build_l() -> Fbndp {
    build_l_with_alpha(fit_l_alpha())
}

/// Builds model `L` with an explicit α (e.g. the paper's printed 0.72).
pub fn build_l_with_alpha(alpha: f64) -> Fbndp {
    let spec = PaperSpec::default();
    Fbndp::new(FbndpParams::from_frame_targets(
        spec.mean,
        spec.variance,
        alpha,
        M_L,
        spec.ts,
    ))
}

/// Builds the Clegg–Dodson Markov-chain LRD source at the paper marginal
/// (mean 500, variance 5000), with the same component count `M_L = 30` as
/// model `L` so the two exact-LRD constructions are directly comparable.
///
/// # Panics
/// Panics if `h` lies outside `(0.5, 1)`.
pub fn build_clegg(h: f64) -> CleggProcess {
    CleggProcess::new(CleggParams {
        h,
        chains: M_L,
        mean: MEAN,
        sd: VARIANCE.sqrt(),
    })
}

/// Builds the multifractal wavelet model at the paper marginal. The
/// 14-level cascade synthesizes 16384-frame blocks, i.e. the correlation
/// horizon reaches ~11 minutes of video — past every buffer scale the
/// paper's figures explore.
///
/// # Panics
/// Panics if `h` lies outside `(0.5, 1)`.
pub fn build_mwm(h: f64) -> MwmProcess {
    MwmProcess::new(MwmParams {
        mean: MEAN,
        sd: VARIANCE.sqrt(),
        h,
        levels: 14,
    })
}

/// Builds `S = DAR(p)` matched to the first p correlations of `Z^a`
/// (paper Table 1 considers `Z^0.7` and `Z^0.975`).
///
/// # Panics
/// Panics if the fit fails — for the paper's `Z^a` family it never does for
/// p ≤ 3 (verified in tests). See [`try_build_s`] for a fallible variant.
pub fn build_s(a: f64, p: usize) -> DarProcess {
    match try_build_s(a, p) {
        Ok(s) => s,
        Err(e) => panic!("DAR({p}) fit to Z^{a} failed: {e}"),
    }
}

/// Fallible [`build_s`]: surfaces a failed Yule–Walker fit (singular head
/// system or out-of-range fitted parameters) as an error instead of
/// panicking, for callers fitting to arbitrary `a`/`p` combinations.
pub fn try_build_s(a: f64, p: usize) -> Result<DarProcess, String> {
    let z = build_z(a);
    let target = z.autocorrelations(p + 1);
    let params = fit_dar(&target, p, Marginal::paper_gaussian()).map_err(|e| e.to_string())?;
    DarProcess::try_new(params).map_err(|e| e.to_string())
}

/// The paper's full model zoo, ready for the figure drivers.
pub struct ModelSet {
    /// `V^v` for v ∈ {0.67, 1, 1.5}.
    pub v_models: Vec<Superposition>,
    /// `Z^a` for a ∈ {0.7, 0.9, 0.975, 0.99}.
    pub z_models: Vec<Superposition>,
    /// `DAR(p)` fits (p = 1, 2, 3) to `Z^0.7`.
    pub s_for_z07: Vec<DarProcess>,
    /// `DAR(p)` fits (p = 1, 2, 3) to `Z^0.975`.
    pub s_for_z0975: Vec<DarProcess>,
    /// Model `L`.
    pub l_model: Fbndp,
}

impl ModelSet {
    /// Builds everything from Table 1.
    pub fn build() -> Self {
        Self {
            v_models: V_GRID.iter().map(|&v| build_v(v)).collect(),
            z_models: A_GRID.iter().map(|&a| build_z(a)).collect(),
            s_for_z07: (1..=3).map(|p| build_s(0.7, p)).collect(),
            s_for_z0975: (1..=3).map(|p| build_s(0.975, p)).collect(),
            l_model: build_l(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_models_share_the_marginal() {
        // The crucial design property: identical first-order statistics.
        let set = ModelSet::build();
        let mut all: Vec<&dyn FrameProcess> = Vec::new();
        for m in &set.v_models {
            all.push(m);
        }
        for m in &set.z_models {
            all.push(m);
        }
        for m in set.s_for_z07.iter().chain(&set.s_for_z0975) {
            all.push(m);
        }
        all.push(&set.l_model);
        for m in &all {
            assert!((m.mean() - MEAN).abs() < 1e-6, "{} mean {}", m.label(), m.mean());
            assert!(
                (m.variance() - VARIANCE).abs() < 1e-3,
                "{} variance {}",
                m.label(),
                m.variance()
            );
        }
    }

    #[test]
    fn table1_lambda_values() {
        // lambda = mean_X / Ts: V^0.67 -> 5000, V^1 -> 6250, V^1.5 -> 7500,
        // Z -> 6250, L -> 12500 cells/sec (Table 1).
        let expect = [(0.67, 5_012.0), (1.0, 6_250.0), (1.5, 7_500.0)];
        for &(v, lam) in &expect {
            let share = v / (1.0 + v);
            let got = MEAN * share / TS;
            assert!(
                (got - lam).abs() < 15.0,
                "V^{v}: lambda {got} vs Table 1 {lam}"
            );
        }
        let z = FbndpParams::from_frame_targets(250.0, 2500.0, ALPHA_Z, M_COMPONENT, TS);
        assert!((z.lambda() - 6250.0).abs() < 1e-6);
    }

    #[test]
    fn v_models_share_lag1_correlation() {
        let target = v_lag1_target();
        for &v in &V_GRID {
            let m = build_v(v);
            let r1 = m.autocorrelations(1)[1];
            assert!(
                (r1 - target).abs() < 1e-9,
                "V^{v} lag-1 {r1} vs target {target}"
            );
        }
    }

    #[test]
    fn v_solved_coefficients_near_paper_values() {
        // Table 1 prints a ∈ {0.799761, 0.8, 0.800362}; our exact solve of
        // the stated lag-1-pinning criterion lands within ~0.01 (see
        // EXPERIMENTS.md for the comparison discussion).
        assert!((solve_a_for_v(1.0) - 0.8).abs() < 1e-12);
        for &v in &V_GRID {
            let a = solve_a_for_v(v);
            assert!((a - 0.8).abs() < 0.012, "a({v}) = {a} should be near 0.8");
        }
    }

    #[test]
    fn s_fits_reproduce_table1_parameters() {
        // Table 1's DAR(p) rows (columns disambiguated by re-derivation —
        // see DESIGN.md note on the OCR column swap).
        let cases: [(f64, usize, f64, &[f64]); 6] = [
            (0.7, 1, 0.68, &[1.0]),
            (0.7, 2, 0.72, &[0.84, 0.16]),
            (0.7, 3, 0.73, &[0.82, 0.10, 0.08]),
            (0.975, 1, 0.82, &[1.0]),
            (0.975, 2, 0.87, &[0.70, 0.30]),
            (0.975, 3, 0.89, &[0.63, 0.18, 0.19]),
        ];
        for (a, p, rho_expect, lag_expect) in cases {
            let s = build_s(a, p);
            let params = s.params();
            assert!(
                (params.rho - rho_expect).abs() < 0.012,
                "Z^{a} DAR({p}): rho {} vs Table 1 {rho_expect}",
                params.rho
            );
            for (i, (&got, &want)) in params
                .lag_probs
                .iter()
                .zip(lag_expect.iter())
                .enumerate()
            {
                assert!(
                    (got - want).abs() < 0.03,
                    "Z^{a} DAR({p}) a_{}: {got} vs {want}",
                    i + 1
                );
            }
        }
    }

    #[test]
    fn s_matches_z_correlations_exactly() {
        for &a in &[0.7, 0.975] {
            let z = build_z(a);
            let z_acf = z.autocorrelations(3);
            for p in 1..=3 {
                let s = build_s(a, p);
                let s_acf = s.autocorrelations(3);
                for k in 1..=p {
                    assert!(
                        (s_acf[k] - z_acf[k]).abs() < 1e-9,
                        "Z^{a} DAR({p}) lag {k}"
                    );
                }
            }
        }
    }

    #[test]
    fn l_alpha_fit_matches_paper() {
        let alpha = fit_l_alpha();
        assert!(
            (alpha - 0.72).abs() < 0.04,
            "fitted alpha {alpha} vs paper's 0.72"
        );
    }

    #[test]
    fn l_tail_tracks_z_tail() {
        // Fig 3(b): the long-term correlations of Z^a and L are "very close
        // up to at least 1,000 lags".
        let z = build_z(0.9);
        let l = build_l();
        let zr = z.autocorrelations(1000);
        let lr = l.autocorrelations(1000);
        for &k in &[100usize, 300, 1000] {
            let ratio = lr[k] / zr[k];
            assert!(
                (0.7..=1.4).contains(&ratio),
                "lag {k}: L {} vs Z {} (ratio {ratio})",
                lr[k],
                zr[k]
            );
        }
    }

    #[test]
    fn l_table1_parameters() {
        let l = build_l_with_alpha(0.72);
        assert!((l.params().lambda() - 12_500.0).abs() < 1e-6);
        let t0_ms = l.params().fractal_onset_time() * 1e3;
        assert!((t0_ms - 1.89).abs() < 0.1, "T0 {t0_ms} vs Table 1 ~1.83-1.9");
        assert_eq!(l.params().m, M_L);
    }

    #[test]
    fn z_lag1_values() {
        // Hand-checked: r_Z(1) = 0.684 for a=0.7, 0.821 for a=0.975.
        let z07 = build_z(0.7).autocorrelations(1)[1];
        let z0975 = build_z(0.975).autocorrelations(1)[1];
        assert!((z07 - 0.684).abs() < 0.002, "Z^0.7 r1 {z07}");
        assert!((z0975 - 0.821).abs() < 0.002, "Z^0.975 r1 {z0975}");
    }
}

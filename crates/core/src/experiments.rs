//! One driver per table/figure of the paper.
//!
//! Each function returns plain data series; the `vbr-bench` targets print
//! them in the paper's layout and `EXPERIMENTS.md` records the comparison.
//! Simulation-backed figures (8, 9, 10) take a [`SimScale`] so tests can run
//! them small while `VBR_FULL=1 cargo bench` reproduces the paper's 60 × 500k
//! protocol.

use crate::paper::{self, ModelSet};
use serde::Serialize;
use vbr_asymptotics::bop::{bop_curve, buffer_from_delay_ms, Flavor};
use vbr_asymptotics::cts::critical_time_scale_with;
use vbr_asymptotics::{SourceStats, VarianceFunction};
use vbr_models::FrameProcess;
use vbr_sim::{simulate_clr, SimConfig, SimError};

/// A labeled (x, y) series.
#[derive(Debug, Clone, Serialize)]
pub struct Series {
    /// Curve label as the paper names it (e.g. `"Z^0.975"`, `"DAR(2)"`).
    pub label: String,
    /// Points in plot order.
    pub points: Vec<(f64, f64)>,
}

/// Replication scale for the simulation figures.
#[derive(Debug, Clone, Copy)]
pub struct SimScale {
    /// Frames per replication.
    pub frames: usize,
    /// Number of replications.
    pub replications: usize,
}

impl SimScale {
    /// Fast scale for CI/tests: enough to resolve CLR ≥ ~1e-5.
    pub fn quick() -> Self {
        Self {
            frames: 10_000,
            replications: 4,
        }
    }

    /// The paper's protocol: 60 replications × 500k frames.
    pub fn paper() -> Self {
        Self {
            frames: 500_000,
            replications: 60,
        }
    }

    /// `paper()` when the environment variable `VBR_FULL=1` is set,
    /// otherwise a default bench scale sized for a single-core machine
    /// (resolves CLR to ~1e-6-ish; about a minute per heavy model).
    pub fn from_env() -> Self {
        if std::env::var("VBR_FULL").map(|v| v == "1").unwrap_or(false) {
            Self::paper()
        } else {
            Self {
                frames: 20_000,
                replications: 4,
            }
        }
    }
}

/// ACF horizon used for the analytic (B–R) figures: must exceed the largest
/// CTS in any sweep.
const ACF_HORIZON: usize = 32_768;

fn stats_of(process: &dyn FrameProcess, horizon: usize) -> SourceStats {
    SourceStats::from_process(process, horizon)
}

// ---------------------------------------------------------------------------
// Table 1
// ---------------------------------------------------------------------------

/// One row of the regenerated Table 1.
#[derive(Debug, Clone, Serialize)]
pub struct Table1Row {
    /// Model name.
    pub model: String,
    /// Variance ratio v (superposition models).
    pub v: Option<f64>,
    /// Fractal exponent α (FBNDP-backed models).
    pub alpha: Option<f64>,
    /// DAR(1) coefficient a (superposition models) or fit ρ (S models).
    pub a_or_rho: Option<f64>,
    /// Aggregate FBNDP rate λ (cells/sec).
    pub lambda: Option<f64>,
    /// Fractal onset time T₀ (msec).
    pub t0_ms: Option<f64>,
    /// Number of ON/OFF processes M.
    pub m: Option<usize>,
    /// DAR(p) lag probabilities (S models).
    pub lag_probs: Option<Vec<f64>>,
}

/// Regenerates Table 1 from the solvers.
pub fn table1() -> Vec<Table1Row> {
    let mut rows = Vec::new();
    for &v in &paper::V_GRID {
        let share = v / (1.0 + v);
        let params = vbr_models::FbndpParams::from_frame_targets(
            paper::MEAN * share,
            paper::VARIANCE * share,
            paper::ALPHA_V,
            paper::M_COMPONENT,
            paper::TS,
        );
        rows.push(Table1Row {
            model: format!("V^{v}"),
            v: Some(v),
            alpha: Some(paper::ALPHA_V),
            a_or_rho: Some(paper::solve_a_for_v(v)),
            lambda: Some(params.lambda()),
            t0_ms: Some(params.fractal_onset_time() * 1e3),
            m: Some(paper::M_COMPONENT),
            lag_probs: None,
        });
    }
    {
        let params = vbr_models::FbndpParams::from_frame_targets(
            paper::MEAN * 0.5,
            paper::VARIANCE * 0.5,
            paper::ALPHA_Z,
            paper::M_COMPONENT,
            paper::TS,
        );
        rows.push(Table1Row {
            model: "Z^a (a in {0.7,0.9,0.975,0.99})".into(),
            v: Some(1.0),
            alpha: Some(paper::ALPHA_Z),
            a_or_rho: None,
            lambda: Some(params.lambda()),
            t0_ms: Some(params.fractal_onset_time() * 1e3),
            m: Some(paper::M_COMPONENT),
            lag_probs: None,
        });
    }
    {
        let alpha = paper::fit_l_alpha();
        let l = paper::build_l_with_alpha(alpha);
        rows.push(Table1Row {
            model: "L".into(),
            v: None,
            alpha: Some(alpha),
            a_or_rho: None,
            lambda: Some(l.params().lambda()),
            t0_ms: Some(l.params().fractal_onset_time() * 1e3),
            m: Some(paper::M_L),
            lag_probs: None,
        });
    }
    for &a in &[0.7, 0.975] {
        for p in 1..=3 {
            let s = paper::build_s(a, p);
            rows.push(Table1Row {
                model: format!("S=DAR({p}) for Z^{a}"),
                v: None,
                alpha: None,
                a_or_rho: Some(s.params().rho),
                lambda: None,
                t0_ms: None,
                m: None,
                lag_probs: Some(s.params().lag_probs.clone()),
            });
        }
    }
    rows
}

// ---------------------------------------------------------------------------
// Figs 1-3: autocorrelation structure
// ---------------------------------------------------------------------------

/// Fig 1: the schematic effect of `a` (short-term knob) and `v` (long-term
/// knob) on the composite ACF. Returns the `Z^a` sweep then the `V^v` sweep.
pub fn fig1(max_lag: usize) -> Vec<Series> {
    let mut out = Vec::new();
    for &a in &paper::A_GRID {
        let z = paper::build_z(a);
        out.push(acf_series(&z, max_lag));
    }
    for &v in &paper::V_GRID {
        let m = paper::build_v(v);
        out.push(acf_series(&m, max_lag));
    }
    out
}

fn acf_series(p: &dyn FrameProcess, max_lag: usize) -> Series {
    let acf = p.autocorrelations(max_lag);
    Series {
        label: p.label(),
        points: (1..=max_lag).map(|k| (k as f64, acf[k])).collect(),
    }
}

/// Fig 2: aggregate sample paths of `Z^0.7` and its matched DAR(1), N = 10
/// sources. Returns (frame index, aggregate cells) series.
pub fn fig2(frames: usize, seed: u64) -> Vec<Series> {
    let n = 10;
    let mut out = Vec::new();
    let z = paper::build_z(0.7);
    let s = paper::build_s(0.7, 1);
    for proto in [&z as &dyn FrameProcess, &s as &dyn FrameProcess] {
        let mut rng = vbr_stats::rng::Xoshiro256PlusPlus::from_seed_u64(seed);
        let mut sources: Vec<Box<dyn FrameProcess>> =
            (0..n).map(|_| proto.boxed_clone()).collect();
        for src in sources.iter_mut() {
            src.reset(&mut rng);
        }
        let points = (0..frames)
            .map(|t| {
                let agg: f64 = sources.iter_mut().map(|s| s.next_frame(&mut rng)).sum();
                (t as f64, agg)
            })
            .collect();
        out.push(Series {
            label: format!("{} x{n}", proto.label()),
            points,
        });
    }
    out
}

/// Fig 3: analytic ACFs — (a) `V^v`, (b) `Z^a` and `L`, (c) `Z^0.7` vs its
/// DAR(p) fits, (d) `Z^0.975` vs its DAR(p) fits. Panels are flattened in
/// that order, labels carry the panel.
pub fn fig3(max_lag: usize) -> Vec<Series> {
    let set = ModelSet::build();
    let mut out = Vec::new();
    for m in &set.v_models {
        let mut s = acf_series(m, max_lag);
        s.label = format!("(a) {}", s.label);
        out.push(s);
    }
    for m in &set.z_models {
        let mut s = acf_series(m, max_lag);
        s.label = format!("(b) {}", s.label);
        out.push(s);
    }
    {
        let mut s = acf_series(&set.l_model, max_lag);
        s.label = "(b) L".into();
        out.push(s);
    }
    for (panel, a, fits) in [("(c)", 0.7, &set.s_for_z07), ("(d)", 0.975, &set.s_for_z0975)] {
        let z = paper::build_z(a);
        let mut s = acf_series(&z, max_lag.min(64));
        s.label = format!("{panel} Z^{a}");
        out.push(s);
        for fit in fits.iter() {
            let mut s = acf_series(fit, max_lag.min(64));
            s.label = format!("{panel} {}", fit.label());
            out.push(s);
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Fig 4: Critical Time Scale vs buffer size
// ---------------------------------------------------------------------------

/// Fig 4: `m*_b` against total buffer size (msec) for (a) the `V^v` family
/// and (b) the `Z^a` family, at c = 526 cells/frame, N = 100.
pub fn fig4(buffer_ms_grid: &[f64]) -> Vec<Series> {
    let set = ModelSet::build();
    let mut out = Vec::new();
    let models: Vec<&dyn FrameProcess> = set
        .v_models
        .iter()
        .map(|m| m as &dyn FrameProcess)
        .chain(set.z_models.iter().map(|m| m as &dyn FrameProcess))
        .collect();
    for m in models {
        let stats = stats_of(m, ACF_HORIZON);
        let v = VarianceFunction::new(&stats);
        let points = buffer_ms_grid
            .iter()
            .map(|&ms| {
                let b = buffer_from_delay_ms(ms, paper::C_FIG4, paper::TS);
                let cts = critical_time_scale_with(&v, stats.mean, paper::C_FIG4, b);
                (ms, cts.m_star as f64)
            })
            .collect();
        out.push(Series {
            label: m.label(),
            points,
        });
    }
    out
}

// ---------------------------------------------------------------------------
// Figs 5-7: Bahadur-Rao BOP curves
// ---------------------------------------------------------------------------

fn bop_series(
    m: &dyn FrameProcess,
    buffer_ms_grid: &[f64],
    horizon: usize,
    flavor: Flavor,
) -> Series {
    let stats = stats_of(m, horizon);
    let buffers: Vec<f64> = buffer_ms_grid
        .iter()
        .map(|&ms| buffer_from_delay_ms(ms, paper::C_FIGS, paper::TS))
        .collect();
    let curve = bop_curve(
        &stats,
        paper::C_FIGS,
        paper::N_SOURCES,
        &buffers,
        paper::TS,
        flavor,
    );
    Series {
        label: m.label(),
        points: curve.iter().map(|p| (p.buffer_ms, p.bop)).collect(),
    }
}

/// Fig 5: B–R BOP over the practical buffer range — (a) `V^v`, (b) `Z^a`;
/// N = 30, c = 538.
pub fn fig5(buffer_ms_grid: &[f64]) -> Vec<Series> {
    let set = ModelSet::build();
    set.v_models
        .iter()
        .map(|m| m as &dyn FrameProcess)
        .chain(set.z_models.iter().map(|m| m as &dyn FrameProcess))
        .map(|m| bop_series(m, buffer_ms_grid, ACF_HORIZON, Flavor::BahadurRao))
        .collect()
}

/// Fig 6: B–R BOP of `Z^a` vs its DAR(p) fits vs `L`, practical range.
/// `a` must be 0.7 or 0.975.
pub fn fig6(a: f64, buffer_ms_grid: &[f64]) -> Vec<Series> {
    let z = paper::build_z(a);
    let l = paper::build_l();
    let mut out = vec![bop_series(&z, buffer_ms_grid, ACF_HORIZON, Flavor::BahadurRao)];
    for p in 1..=3 {
        let s = paper::build_s(a, p);
        out.push(bop_series(&s, buffer_ms_grid, ACF_HORIZON, Flavor::BahadurRao));
    }
    out.push(bop_series(&l, buffer_ms_grid, ACF_HORIZON, Flavor::BahadurRao));
    if let Some(last) = out.last_mut() {
        last.label = "L".into();
    }
    out
}

/// Fig 7: same cast as Fig 6 over an unrealistically wide buffer range —
/// where the LRD model finally overtakes the Markov fits.
pub fn fig7(a: f64, buffer_ms_grid: &[f64]) -> Vec<Series> {
    // The wide range needs a much longer ACF horizon for the CTS search.
    let horizon = 262_144;
    let z = paper::build_z(a);
    let l = paper::build_l();
    let mut out = vec![bop_series(&z, buffer_ms_grid, horizon, Flavor::BahadurRao)];
    for p in 1..=3 {
        let s = paper::build_s(a, p);
        out.push(bop_series(&s, buffer_ms_grid, horizon, Flavor::BahadurRao));
    }
    out.push(bop_series(&l, buffer_ms_grid, horizon, Flavor::BahadurRao));
    if let Some(last) = out.last_mut() {
        last.label = "L".into();
    }
    out
}

/// The buffer (msec) beyond which model `L`'s predicted BOP exceeds the
/// DAR(p) fit's — the paper's "crossover beyond practical consideration"
/// (§5.4, about 40 msec). Returns `None` if no crossover in the grid.
pub fn fig7_crossover(a: f64, p: usize, buffer_ms_grid: &[f64]) -> Option<f64> {
    let horizon = 262_144;
    let l = bop_series(&paper::build_l(), buffer_ms_grid, horizon, Flavor::BahadurRao);
    let s = bop_series(&paper::build_s(a, p), buffer_ms_grid, horizon, Flavor::BahadurRao);
    l.points
        .iter()
        .zip(&s.points)
        .find(|((_, lb), (_, sb))| lb > sb)
        .map(|((ms, _), _)| *ms)
}

// ---------------------------------------------------------------------------
// Figs 8-10: simulation
// ---------------------------------------------------------------------------

fn sim_config(buffer_ms_grid: &[f64], scale: SimScale, track_bop: bool) -> SimConfig {
    let buffers: Vec<f64> = buffer_ms_grid
        .iter()
        .map(|&ms| {
            buffer_from_delay_ms(ms, paper::C_FIGS, paper::TS) * paper::N_SOURCES as f64
        })
        .collect();
    let mut cfg = SimConfig::paper_defaults(buffers, scale.frames, scale.replications);
    cfg.track_bop = track_bop;
    cfg
}

/// Simulated CLR series for one model over a buffer grid (msec).
pub fn sim_clr_series(
    m: &dyn FrameProcess,
    buffer_ms_grid: &[f64],
    scale: SimScale,
) -> Result<Series, SimError> {
    let cfg = sim_config(buffer_ms_grid, scale, false);
    let out = simulate_clr(m, &cfg)?;
    Ok(Series {
        label: m.label(),
        points: out
            .per_buffer
            .iter()
            .map(|e| (e.buffer_ms, e.pooled.clr()))
            .collect(),
    })
}

/// Fig 8: simulated finite-buffer CLR — (a) `V^v`, (b) `Z^a`.
pub fn fig8(buffer_ms_grid: &[f64], scale: SimScale) -> Result<Vec<Series>, SimError> {
    let set = ModelSet::build();
    set.v_models
        .iter()
        .map(|m| m as &dyn FrameProcess)
        .chain(set.z_models.iter().map(|m| m as &dyn FrameProcess))
        .map(|m| sim_clr_series(m, buffer_ms_grid, scale))
        .collect()
}

/// Fig 8-style CLR-vs-buffer run for the Clegg–Dodson Markov-chain LRD
/// family: the chain at `H ∈ {0.7, 0.8, 0.9}` alongside the paper's exact
/// LRD model `L` as the reference curve. If LRD *per se* drove the loss
/// curve, the Markov construction would track `L`; if (as the paper argues)
/// short-term correlations dominate at practical buffers, the families'
/// small-lag structure decides and the curves separate.
pub fn fig8_clegg(buffer_ms_grid: &[f64], scale: SimScale) -> Result<Vec<Series>, SimError> {
    let mut out = Vec::new();
    for h in [0.7, 0.8, 0.9] {
        let m = paper::build_clegg(h);
        out.push(sim_clr_series(&m, buffer_ms_grid, scale)?);
    }
    let mut l_series = sim_clr_series(&paper::build_l(), buffer_ms_grid, scale)?;
    l_series.label = "L".into();
    out.push(l_series);
    Ok(out)
}

/// Fig 8-style CLR-vs-buffer run for the multifractal wavelet family at
/// `H ∈ {0.7, 0.8, 0.9}`, with `L` as the exact-LRD reference. The MWM has
/// the same mean/variance/Hurst as the Gaussian-marginal models but a
/// non-negative, right-skewed cascade marginal — so any separation from `L`
/// here probes the *marginal's* role in the loss curve, complementing the
/// paper's correlation-structure argument.
pub fn fig8_mwm(buffer_ms_grid: &[f64], scale: SimScale) -> Result<Vec<Series>, SimError> {
    let mut out = Vec::new();
    for h in [0.7, 0.8, 0.9] {
        let m = paper::build_mwm(h);
        out.push(sim_clr_series(&m, buffer_ms_grid, scale)?);
    }
    let mut l_series = sim_clr_series(&paper::build_l(), buffer_ms_grid, scale)?;
    l_series.label = "L".into();
    out.push(l_series);
    Ok(out)
}

/// Fig 9: simulated CLR of `Z^a` vs DAR(p) fits vs `L`.
pub fn fig9(a: f64, buffer_ms_grid: &[f64], scale: SimScale) -> Result<Vec<Series>, SimError> {
    let z = paper::build_z(a);
    let l = paper::build_l();
    let mut out = vec![sim_clr_series(&z, buffer_ms_grid, scale)?];
    for p in 1..=3 {
        let s = paper::build_s(a, p);
        out.push(sim_clr_series(&s, buffer_ms_grid, scale)?);
    }
    let mut l_series = sim_clr_series(&l, buffer_ms_grid, scale)?;
    l_series.label = "L".into();
    out.push(l_series);
    Ok(out)
}

/// Fig 10: accuracy of the two large-buffer asymptotics against simulation
/// for the DAR(1) fit of `Z^0.975`. Returns, in order: B–R, large-N,
/// simulated CLR, simulated infinite-buffer BOP.
pub fn fig10(buffer_ms_grid: &[f64], scale: SimScale) -> Result<Vec<Series>, SimError> {
    let s = paper::build_s(0.975, 1);
    let mut out = vec![
        bop_series(&s, buffer_ms_grid, ACF_HORIZON, Flavor::BahadurRao),
        bop_series(&s, buffer_ms_grid, ACF_HORIZON, Flavor::LargeN),
    ];
    out[0].label = "Bahadur-Rao".into();
    out[1].label = "Large-N".into();

    let cfg = sim_config(buffer_ms_grid, scale, true);
    let sim = simulate_clr(&s, &cfg)?;
    out.push(Series {
        label: "Simulated CLR".into(),
        points: sim
            .per_buffer
            .iter()
            .map(|e| (e.buffer_ms, e.pooled.clr()))
            .collect(),
    });
    let bop = sim.bop.unwrap_or_default();
    out.push(Series {
        label: "Simulated BOP (infinite buffer)".into(),
        points: buffer_ms_grid
            .iter()
            .zip(&bop)
            .map(|(&ms, &(_, p))| (ms, p))
            .collect(),
    });
    Ok(out)
}

// ---------------------------------------------------------------------------
// Sensitivity analysis (paper §5.1: "the different choice of key parameters
// such as H yields the qualitatively same result")
// ---------------------------------------------------------------------------

/// One row of the H-sensitivity sweep.
#[derive(Debug, Clone, Serialize)]
pub struct HSensitivityRow {
    /// Fractal exponent α of the FBNDP component.
    pub alpha: f64,
    /// Implied Hurst parameter H = (α+1)/2.
    pub h: f64,
    /// CTS at a 2 ms buffer (c = 538).
    pub cts_2ms: usize,
    /// CTS at a 20 ms buffer.
    pub cts_20ms: usize,
    /// B–R BOP at 2 ms, N = 30.
    pub bop_2ms: f64,
    /// B–R BOP at 20 ms, N = 30.
    pub bop_20ms: f64,
}

/// Sweeps the Hurst parameter of a `Z`-style composite (FBNDP(α) + DAR(1)
/// with fixed `a`), re-deriving all other parameters so the marginal stays
/// `N(500, 5000)`, and reports CTS/BOP at two practical buffers.
///
/// The paper's robustness claim is that the CTS stays small and the loss
/// ordering is driven by `a`, not H — which this sweep demonstrates: across
/// H ∈ [0.75, 0.95] the 2 ms CTS moves by a couple of frames while sweeping
/// `a` (Fig 4/5) moves it by tens.
pub fn h_sensitivity(a: f64, alphas: &[f64]) -> Vec<HSensitivityRow> {
    alphas
        .iter()
        .map(|&alpha| {
            let spec = paper::PaperSpec::default();
            let x = vbr_models::Fbndp::new(vbr_models::FbndpParams::from_frame_targets(
                spec.mean * 0.5,
                spec.variance * 0.5,
                alpha,
                paper::M_COMPONENT,
                spec.ts,
            ));
            let y = vbr_models::DarProcess::new(vbr_models::DarParams::dar1(
                a,
                vbr_models::Marginal::Gaussian {
                    mean: spec.mean * 0.5,
                    sd: (spec.variance * 0.5).sqrt(),
                },
            ));
            let z = vbr_models::Superposition::new(
                Box::new(x),
                Box::new(y),
                format!("Z(alpha={alpha}, a={a})"),
            );
            let stats = stats_of(&z, ACF_HORIZON);
            let v = VarianceFunction::new(&stats);
            let at = |ms: f64| {
                let b = buffer_from_delay_ms(ms, paper::C_FIGS, paper::TS);
                let cts = critical_time_scale_with(&v, stats.mean, paper::C_FIGS, b);
                let ni = paper::N_SOURCES as f64 * cts.rate;
                let bop = (-ni - 0.5 * (4.0 * std::f64::consts::PI * ni).ln())
                    .exp()
                    .min(1.0);
                (cts.m_star, bop)
            };
            let (cts2, bop2) = at(2.0);
            let (cts20, bop20) = at(20.0);
            HSensitivityRow {
                alpha,
                h: (alpha + 1.0) / 2.0,
                cts_2ms: cts2,
                cts_20ms: cts20,
                bop_2ms: bop2,
                bop_20ms: bop20,
            }
        })
        .collect()
}

/// Log-spaced buffer grid in msec, inclusive of both ends.
pub fn log_buffer_grid(lo_ms: f64, hi_ms: f64, count: usize) -> Vec<f64> {
    assert!(lo_ms > 0.0 && hi_ms > lo_ms && count >= 2);
    (0..count)
        .map(|i| {
            (lo_ms.ln() + (hi_ms.ln() - lo_ms.ln()) * i as f64 / (count - 1) as f64).exp()
        })
        .collect()
}

/// Linear buffer grid in msec.
pub fn linear_buffer_grid(lo_ms: f64, hi_ms: f64, count: usize) -> Vec<f64> {
    assert!(hi_ms > lo_ms && count >= 2);
    (0..count)
        .map(|i| lo_ms + (hi_ms - lo_ms) * i as f64 / (count - 1) as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_all_model_rows() {
        let rows = table1();
        assert_eq!(rows.len(), 3 + 1 + 1 + 6);
        assert!(rows.iter().any(|r| r.model == "L"));
        let l = rows.iter().find(|r| r.model == "L").unwrap();
        assert!((l.alpha.unwrap() - 0.72).abs() < 0.04);
        assert!((l.lambda.unwrap() - 12_500.0).abs() < 1.0);
    }

    #[test]
    fn fig4_cts_properties() {
        // The paper's headline claims, asserted on the actual figure data:
        // (a) V^v curves nearly coincide at small buffers;
        // (b) Z^a curves differ strongly (short-term correlations dominate);
        // all curves non-decreasing.
        let grid = [0.5, 1.0, 2.0, 4.0, 8.0];
        let series = fig4(&grid);
        assert_eq!(series.len(), 7);
        for s in &series {
            for w in s.points.windows(2) {
                assert!(w[1].1 >= w[0].1, "{} must be non-decreasing", s.label);
            }
        }
        // V-family spread at 2 ms vs Z-family spread at 2 ms.
        let at = |s: &Series, ms: f64| {
            s.points
                .iter()
                .find(|(x, _)| (*x - ms).abs() < 1e-9)
                .unwrap()
                .1
        };
        let v_vals: Vec<f64> = series[..3].iter().map(|s| at(s, 2.0)).collect();
        let z_vals: Vec<f64> = series[3..].iter().map(|s| at(s, 2.0)).collect();
        let spread = |v: &[f64]| {
            v.iter().cloned().fold(f64::MIN, f64::max)
                - v.iter().cloned().fold(f64::MAX, f64::min)
        };
        assert!(
            spread(&v_vals) <= 2.0,
            "V^v CTS must nearly coincide: {v_vals:?}"
        );
        assert!(
            spread(&z_vals) >= 10.0,
            "Z^a CTS must differ strongly: {z_vals:?}"
        );
    }

    #[test]
    fn fig5_orderings() {
        let grid = linear_buffer_grid(0.1, 20.0, 15);
        let series = fig5(&grid);
        assert_eq!(series.len(), 7);
        // V^v curves cluster: max/min ratio at the last buffer < 10.
        let last = |s: &Series| s.points.last().unwrap().1;
        let v_last: Vec<f64> = series[..3].iter().map(last).collect();
        let v_ratio = v_last.iter().cloned().fold(f64::MIN, f64::max)
            / v_last.iter().cloned().fold(f64::MAX, f64::min);
        assert!(v_ratio < 30.0, "V^v curves should cluster, ratio {v_ratio}");
        // Z^a: higher a -> higher BOP at the same buffer (fan-out).
        let z_last: Vec<f64> = series[3..].iter().map(last).collect();
        for w in z_last.windows(2) {
            assert!(
                w[1] > w[0],
                "stronger short-term correlation must raise BOP: {z_last:?}"
            );
        }
        // And the fan-out dwarfs the V cluster.
        assert!(z_last[3] / z_last[0] > 1e3, "Z fan-out {z_last:?}");
    }

    #[test]
    fn fig6_dar_brackets_z_and_l_is_off() {
        let grid = linear_buffer_grid(0.1, 20.0, 10);
        let series = fig6(0.975, &grid);
        assert_eq!(series.len(), 5); // Z, DAR(1..3), L
        let at_end = |s: &Series| s.points.last().unwrap().1;
        let z = at_end(&series[0]);
        let dar1 = at_end(&series[1]);
        let dar2 = at_end(&series[2]);
        let dar3 = at_end(&series[3]);
        let l = at_end(&series[4]);
        // DAR(p) approaches Z from below as p grows.
        assert!(dar1 <= dar2 && dar2 <= dar3 && dar3 <= z * 1.001,
            "DAR(p) must increase toward Z: {dar1:e} {dar2:e} {dar3:e} vs Z {z:e}");
        let _ = l;
        // "Even the DAR(1) model outperforms L for a wide range of buffer
        // size of interest": in the <= 10 ms region, DAR(1)'s log-error
        // against Z must be smaller than L's at every grid point.
        let small: Vec<usize> = (0..grid.len()).filter(|&i| grid[i] <= 10.0).collect();
        assert!(small.len() >= 3, "need small-buffer points");
        for &i in &small[1..] {
            // skip the zero-ish first point where all curves coincide
            let zi = series[0].points[i].1;
            let d1 = series[1].points[i].1;
            let li = series[4].points[i].1;
            let err_dar = (zi.ln() - d1.ln()).abs();
            let err_l = (zi.ln() - li.ln()).abs();
            assert!(
                err_dar < err_l,
                "at {} ms DAR(1) log-err {err_dar} must beat L {err_l}",
                grid[i]
            );
        }
    }

    #[test]
    fn fig7_crossover_beyond_practical_range() {
        // L overtakes every DAR(p) fit eventually; the crossover moves out
        // with p, and for p >= 2 it sits beyond the paper's practical
        // 20-30 ms budget (measured: ~17 / ~55 / ~73 ms for p = 1/2/3).
        let grid = log_buffer_grid(1.0, 2000.0, 40);
        let mut prev = 0.0;
        for p in 1..=3 {
            let ms = fig7_crossover(0.975, p, &grid)
                .expect("L must eventually overtake DAR(p)");
            assert!(ms >= prev, "crossover must move out with p: {ms} < {prev}");
            if p >= 2 {
                assert!(ms > 30.0, "DAR({p}) crossover {ms} ms should be impractical");
            }
            prev = ms;
        }
    }

    #[test]
    fn grids() {
        let lin = linear_buffer_grid(0.0, 10.0, 11);
        assert_eq!(lin.len(), 11);
        assert!((lin[5] - 5.0).abs() < 1e-12);
        let log = log_buffer_grid(1.0, 100.0, 3);
        assert!((log[1] - 10.0).abs() < 1e-9);
    }

    #[test]
    fn h_sensitivity_cts_barely_moves() {
        // Across H in [0.75, 0.95] at fixed a = 0.9, the 2 ms CTS moves by a
        // few frames; Fig 4 shows the a-sweep moving it by tens. BOP stays
        // within ~1.5 orders across H, vs ~4+ orders across a (Fig 5b).
        let rows = h_sensitivity(0.9, &[0.5, 0.7, 0.8, 0.9]);
        assert_eq!(rows.len(), 4);
        let cts: Vec<usize> = rows.iter().map(|r| r.cts_2ms).collect();
        let spread = cts.iter().max().unwrap() - cts.iter().min().unwrap();
        assert!(spread <= 5, "H-sweep CTS spread at 2 ms: {cts:?}");
        for r in &rows {
            assert!(r.cts_20ms >= r.cts_2ms);
            assert!(r.bop_20ms < r.bop_2ms);
            assert!((r.h - (r.alpha + 1.0) / 2.0).abs() < 1e-12);
        }
        let bops: Vec<f64> = rows.iter().map(|r| r.bop_2ms).collect();
        let ratio = bops.iter().cloned().fold(f64::MIN, f64::max)
            / bops.iter().cloned().fold(f64::MAX, f64::min);
        assert!(ratio < 50.0, "H-sweep BOP ratio at 2 ms: {bops:?}");
    }

    #[test]
    fn fig2_paths_have_same_scale_but_different_texture() {
        let series = fig2(2_000, 99);
        assert_eq!(series.len(), 2);
        let mean_of = |s: &Series| {
            s.points.iter().map(|&(_, y)| y).sum::<f64>() / s.points.len() as f64
        };
        // Both aggregate 10 sources with mean 500 -> ~5000 cells/frame.
        // (LRD sample means wander; generous band.)
        for s in &series {
            let m = mean_of(s);
            assert!(
                (m - 5000.0).abs() < 400.0,
                "{}: aggregate mean {m}",
                s.label
            );
        }
    }
}

//! # vbr-core
//!
//! The paper's primary contribution, assembled: Critical-Time-Scale analysis
//! of VBR video traffic under realistic ATM buffer dimensioning
//! (Ryu & Elwalid, *The Importance of Long-Range Dependence of VBR Video
//! Traffic in ATM Traffic Engineering: Myths and Realities*, SIGCOMM 1996).
//!
//! This crate glues the substrates together into the paper's actual
//! experimental apparatus:
//!
//! * [`paper`] — Table 1 in executable form: solvers that derive every model
//!   parameter (λ, T₀, A, R, the lag-1-pinning `a(v)`, the tail-fitted α of
//!   model `L`) from the paper's stated targets, plus constructors for the
//!   four model families `V^v`, `Z^a`, `S = DAR(p)`, and `L`.
//! * [`matching`] — the Yule–Walker DAR(p) fit: given any target ACF, find
//!   `(ρ, a₁..a_p)` matching the first p correlations exactly (this is how
//!   the paper builds `S` from `Z^a`).
//! * [`experiments`] — one driver per table/figure, returning plain data
//!   series that the bench targets print and the integration tests assert
//!   against.
//! * [`report`] — one-page traffic-engineering profiles (stats, Hurst
//!   diagnostics, CTS table, dimensioning table) for any source.
//! * [`prelude`] — one-stop imports for downstream users.
//!
//! ## Quick start
//!
//! ```
//! use vbr_core::prelude::*;
//!
//! // Build the paper's Z^0.975 source (LRD with strong short-term corr.)
//! let z = paper::build_z(0.975);
//!
//! // How many frame correlations matter at a 2-ms buffer on the paper's
//! // N = 30, c = 538 multiplexer?
//! let stats = SourceStats::from_process(&z, 4_096);
//! let b = buffer_from_delay_ms(2.0, 538.0, paper::TS);
//! let cts = critical_time_scale(&stats, 538.0, b);
//! assert!(cts.m_star < 50); // small: long-range correlations are idle
//!
//! // Predicted loss at that operating point:
//! let bop = bahadur_rao_bop(&stats, 538.0, b, 30);
//! assert!(bop < 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod error;
pub mod experiments;
pub mod matching;
pub mod paper;
pub mod report;

/// Convenient re-exports of the whole analysis surface.
pub mod prelude {
    pub use crate::error::CoreError;
    pub use crate::matching::fit_dar;
    pub use crate::paper;
    pub use crate::paper::{ModelSet, PaperSpec};
    pub use crate::report::{ReportConfig, TrafficReport};
    pub use vbr_asymptotics::bop::{buffer_delay_ms, buffer_from_delay_ms, Flavor};
    pub use vbr_asymptotics::{
        bahadur_rao_bop, bop_curve, critical_time_scale, large_n_bop, max_admissible_sources,
        rate_function, required_bandwidth, required_buffer, weibull_lrd_bop, Asymptotic,
        CtsResult, SourceStats, VarianceFunction,
    };
    pub use vbr_models::{
        CleggParams, CleggProcess, DarParams, DarProcess, Fbndp, FbndpParams, FrameProcess,
        GaussianAr1, IidProcess, Marginal, ModelError, MwmParams, MwmProcess, Superposition,
    };
    pub use vbr_obs::{Event, MemoryRecorder, Recorder, RunSummary, Telemetry};
    pub use vbr_sim::{
        plan_shards, run, run_campaign, run_mix, simulate_clr, simulate_clr_mix, CampaignOptions,
        CampaignOutcome, CheckpointPolicy, PriorityQueue, Provenance, RetryPolicy, RunOptions,
        SimConfig, SimError, SimOutcome, SourceMix, Watchdog,
    };
}

//! DAR(p) matching — fitting the paper's model `S`.
//!
//! Given a target ACF `r(1..p)`, find DAR(p) parameters `(ρ, a₁..a_p)` whose
//! process matches those correlations exactly. The DAR(p) ACF obeys the
//! AR(p)-type recursion `r(k) = Σᵢ bᵢ r(|k−i|)` with `bᵢ = ρ·aᵢ`, so the fit
//! is a Yule–Walker solve: `R·b = r` with `R` the Toeplitz correlation
//! matrix, then `ρ = Σᵢ bᵢ` and `aᵢ = bᵢ/ρ`.
//!
//! Not every ACF is DAR(p)-matchable: the construction needs `aᵢ ≥ 0` and
//! `0 ≤ ρ < 1`. The error type reports exactly which constraint failed so
//! callers can drop to a smaller p (the paper only needs p ≤ 3).

use vbr_models::{DarParams, Marginal};
use vbr_stats::linalg::solve_toeplitz;

/// Why a DAR(p) fit can fail.
#[derive(Debug, Clone, PartialEq)]
pub enum FitError {
    /// The Yule–Walker system was singular (degenerate target ACF).
    SingularSystem,
    /// A fitted lag weight came out negative: the target's correlation
    /// pattern cannot be realized by value-repetition at positive lags.
    NegativeLagWeight {
        /// The offending lag (1-based).
        lag: usize,
        /// Its fitted (negative) weight before normalization.
        weight: f64,
    },
    /// The fitted ρ left `[0, 1)`: the target is too strongly (or
    /// negatively) correlated for a DAR process.
    RhoOutOfRange(
        /// The fitted ρ.
        f64,
    ),
}

impl std::fmt::Display for FitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FitError::SingularSystem => write!(f, "Yule-Walker system is singular"),
            FitError::NegativeLagWeight { lag, weight } => {
                write!(f, "fitted weight for lag {lag} is negative ({weight})")
            }
            FitError::RhoOutOfRange(rho) => write!(f, "fitted rho {rho} outside [0,1)"),
        }
    }
}

impl std::error::Error for FitError {}

/// Fits a DAR(p) to match `target_acf[1..=p]` exactly.
///
/// `target_acf` must start with `r(0) = 1` and contain at least `p + 1`
/// entries. The returned parameters carry the supplied marginal (the DAR
/// construction decouples marginal from correlation, so any marginal works).
///
/// # Panics
/// Panics if the slice is too short or `p == 0`.
pub fn fit_dar(target_acf: &[f64], p: usize, marginal: Marginal) -> Result<DarParams, FitError> {
    assert!(p >= 1, "order must be at least 1");
    assert!(
        target_acf.len() > p,
        "need r(0..={p}), got {} entries",
        target_acf.len()
    );
    assert!(
        (target_acf[0] - 1.0).abs() < 1e-9,
        "target_acf[0] must be 1"
    );

    // Yule-Walker: R b = r, R[i][j] = r(|i-j|) (i,j over 0..p-1),
    // rhs r = (r(1), ..., r(p)).
    let first_col: Vec<f64> = target_acf[..p].to_vec();
    let rhs: Vec<f64> = target_acf[1..=p].to_vec();
    let b = solve_toeplitz(&first_col, &rhs).ok_or(FitError::SingularSystem)?;

    let rho: f64 = b.iter().sum();
    if !(0.0..1.0).contains(&rho) {
        return Err(FitError::RhoOutOfRange(rho));
    }
    for (i, &bi) in b.iter().enumerate() {
        if bi < -1e-12 {
            return Err(FitError::NegativeLagWeight {
                lag: i + 1,
                weight: bi,
            });
        }
    }
    let lag_probs: Vec<f64> = b.iter().map(|&bi| (bi / rho).max(0.0)).collect();
    // Renormalize away the clamping dust.
    let total: f64 = lag_probs.iter().sum();
    let lag_probs = lag_probs.into_iter().map(|a| a / total).collect();

    Ok(DarParams {
        rho,
        lag_probs,
        marginal,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vbr_models::DarProcess;

    #[test]
    fn fit_recovers_dar1_exactly() {
        let target: Vec<f64> = (0..6).map(|k| 0.8_f64.powi(k)).collect();
        let fit = fit_dar(&target, 1, Marginal::paper_gaussian()).unwrap();
        assert!((fit.rho - 0.8).abs() < 1e-12);
        assert_eq!(fit.lag_probs, vec![1.0]);
    }

    #[test]
    fn fit_recovers_dar3_roundtrip() {
        // Build a DAR(3) ACF, fit it back, parameters must match.
        let rho = 0.89;
        let a = [0.63, 0.18, 0.19];
        let acf = DarProcess::acf_from_params(rho, &a, 10);
        let fit = fit_dar(&acf, 3, Marginal::paper_gaussian()).unwrap();
        assert!((fit.rho - rho).abs() < 1e-9, "rho {}", fit.rho);
        for (got, want) in fit.lag_probs.iter().zip(&a) {
            assert!((got - want).abs() < 1e-9, "{got} vs {want}");
        }
    }

    #[test]
    fn fitted_model_matches_first_p_correlations() {
        // Target: a mixture ACF (not itself a DAR) — geometric + power tail.
        let target: Vec<f64> = (0..20)
            .map(|k| {
                if k == 0 {
                    1.0
                } else {
                    0.5 * 0.9_f64.powi(k) + 0.3 * (k as f64).powf(-0.2)
                }
            })
            .collect();
        for p in 1..=3 {
            let fit = fit_dar(&target, p, Marginal::paper_gaussian()).unwrap();
            let acf = DarProcess::acf_from_params(fit.rho, &fit.lag_probs, p);
            for k in 1..=p {
                assert!(
                    (acf[k] - target[k]).abs() < 1e-9,
                    "p={p} lag {k}: {} vs {}",
                    acf[k],
                    target[k]
                );
            }
        }
    }

    #[test]
    fn alternating_acf_is_rejected() {
        // Negative lag-1 correlation cannot be matched by value repetition.
        let target = vec![1.0, -0.5, 0.25];
        let err = fit_dar(&target, 1, Marginal::paper_gaussian()).unwrap_err();
        assert!(matches!(err, FitError::RhoOutOfRange(_)), "{err}");
    }

    #[test]
    fn fast_second_lag_decay_fails_with_negative_weight() {
        // A valid ACF (partial correlations inside (-1,1)) whose r(2) decays
        // much faster than r(1)^2 forces a negative b_2: not DAR-matchable.
        let target = vec![1.0, 0.9, 0.65];
        let err = fit_dar(&target, 2, Marginal::paper_gaussian()).unwrap_err();
        assert!(
            matches!(err, FitError::NegativeLagWeight { .. }),
            "{err}"
        );
    }

    #[test]
    fn error_display_messages() {
        let e = FitError::NegativeLagWeight {
            lag: 2,
            weight: -0.1,
        };
        assert!(e.to_string().contains("lag 2"));
        assert!(FitError::RhoOutOfRange(1.2).to_string().contains("1.2"));
    }
}

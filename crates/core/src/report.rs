//! Traffic-engineering profile reports.
//!
//! One call turns any [`FrameProcess`] (model or recorded trace) into the
//! summary an ATM capacity planner would want on one page: first/second
//! order statistics, Hurst diagnostics from a generated path, the CTS
//! table over the practical buffer range, and the dimensioning table
//! (required buffer / effective bandwidth) at standard loss targets.
//! The `traffic_report` example renders it for the paper's models.

use crate::error::CoreError;
use std::fmt::Write as _;
use vbr_asymptotics::bop::{buffer_delay_ms, buffer_from_delay_ms};
use vbr_asymptotics::cts::critical_time_scale_with;
use vbr_asymptotics::dimensioning::{required_bandwidth, required_buffer};
use vbr_asymptotics::{bahadur_rao_bop, SourceStats, VarianceFunction};
use vbr_models::FrameProcess;
use vbr_stats::rng::Xoshiro256PlusPlus;
use vbr_stats::{aggregated_variance_hurst, local_whittle_hurst};

/// Everything the report needs to know about the operating environment.
#[derive(Debug, Clone, Copy)]
pub struct ReportConfig {
    /// Number of multiplexed sources.
    pub n_sources: usize,
    /// Per-source bandwidth (cells/frame).
    pub capacity_per_source: f64,
    /// Frame duration (sec).
    pub ts: f64,
    /// ACF horizon for the analysis.
    pub acf_horizon: usize,
    /// Path length used for the empirical Hurst diagnostics.
    pub diagnostic_frames: usize,
    /// Seed for the diagnostic path.
    pub seed: u64,
}

impl Default for ReportConfig {
    fn default() -> Self {
        Self {
            n_sources: 30,
            capacity_per_source: 538.0,
            ts: crate::paper::TS,
            acf_horizon: 32_768,
            diagnostic_frames: 65_536,
            seed: 0xBEEF,
        }
    }
}

/// The computed profile (also renderable as text via [`TrafficReport::render`]).
#[derive(Debug, Clone)]
pub struct TrafficReport {
    /// Model label.
    pub label: String,
    /// Analytic mean (cells/frame).
    pub mean: f64,
    /// Analytic variance.
    pub variance: f64,
    /// Analytic r(1), r(10), r(100).
    pub acf_points: [f64; 3],
    /// Aggregated-variance Hurst estimate from a generated path.
    pub hurst_aggvar: f64,
    /// Local-Whittle Hurst estimate from the same path.
    pub hurst_whittle: f64,
    /// (buffer ms, CTS, B-R BOP) over the practical range.
    pub cts_table: Vec<(f64, usize, f64)>,
    /// (loss target, required buffer ms, effective bandwidth cells/frame).
    pub dimensioning: Vec<(f64, Option<f64>, Option<f64>)>,
}

impl TrafficReport {
    /// Builds the profile. Generates `diagnostic_frames` frames for the
    /// empirical Hurst estimates (the analytic parts need no sampling).
    pub fn build(process: &dyn FrameProcess, config: &ReportConfig) -> Self {
        let stats = SourceStats::from_process(process, config.acf_horizon);
        let v = VarianceFunction::new(&stats);
        let c = config.capacity_per_source;
        let n = config.n_sources;

        // Diagnostics path.
        let mut path_model = process.boxed_clone();
        let mut rng = Xoshiro256PlusPlus::from_seed_u64(config.seed);
        path_model.reset(&mut rng);
        let path: Vec<f64> = (0..config.diagnostic_frames)
            .map(|_| path_model.next_frame(&mut rng))
            .collect();
        let hurst_aggvar = aggregated_variance_hurst(&path).h;
        let hurst_whittle = local_whittle_hurst(&path, 0);

        let acf = process.autocorrelations(100);
        let cts_table = [0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 30.0]
            .iter()
            .map(|&ms| {
                let b = buffer_from_delay_ms(ms, c, config.ts);
                let cts = critical_time_scale_with(&v, stats.mean, c, b);
                let bop = bahadur_rao_bop(&stats, c, b, n);
                (ms, cts.m_star, bop)
            })
            .collect();

        let dimensioning = [1e-4, 1e-6, 1e-8]
            .iter()
            .map(|&target| {
                let buf = required_buffer(&stats, c, n, target)
                    .map(|b| buffer_delay_ms(b, c, config.ts));
                let bw = required_bandwidth(
                    &stats,
                    buffer_from_delay_ms(2.0, c, config.ts),
                    n,
                    target,
                );
                (target, buf, bw)
            })
            .collect();

        Self {
            label: process.label(),
            mean: stats.mean,
            variance: stats.variance,
            acf_points: [acf[1], acf[10], acf[100]],
            hurst_aggvar,
            hurst_whittle,
            cts_table,
            dimensioning,
        }
    }

    /// Renders as a plain-text page.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "=== traffic profile: {} ===", self.label);
        let _ = writeln!(
            out,
            "marginal: mean {:.1} cells/frame, sd {:.1}",
            self.mean,
            self.variance.sqrt()
        );
        let _ = writeln!(
            out,
            "ACF: r(1) = {:.3}, r(10) = {:.3}, r(100) = {:.3}",
            self.acf_points[0], self.acf_points[1], self.acf_points[2]
        );
        let _ = writeln!(
            out,
            "Hurst (path diagnostics): aggregated-variance {:.2}, local Whittle {:.2}",
            self.hurst_aggvar, self.hurst_whittle
        );
        let _ = writeln!(out, "\n  buffer   CTS m*      B-R BOP");
        for &(ms, m, bop) in &self.cts_table {
            let _ = writeln!(out, "  {ms:>5.1}ms {m:>7}   {bop:>10.3e}");
        }
        let _ = writeln!(out, "\n  target     buffer needed   eff. bandwidth @2ms");
        for &(t, buf, bw) in &self.dimensioning {
            let buf = buf
                .map(|b| format!("{b:.2} ms"))
                .unwrap_or_else(|| "infeasible".into());
            let bw = bw
                .map(|c| format!("{c:.1} cells/frame"))
                .unwrap_or_else(|| "infeasible".into());
            let _ = writeln!(out, "  {t:>8.0e}   {buf:>13}   {bw}");
        }
        out
    }

    /// Renders the CTS and dimensioning tables as CSV (one section per
    /// table, `#`-prefixed section headers).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# traffic profile: {}", self.label);
        let _ = writeln!(out, "# cts_table");
        let _ = writeln!(out, "buffer_ms,cts_m_star,bahadur_rao_bop");
        for &(ms, m, bop) in &self.cts_table {
            let _ = writeln!(out, "{ms},{m},{bop:e}");
        }
        let _ = writeln!(out, "# dimensioning");
        let _ = writeln!(out, "loss_target,required_buffer_ms,effective_bandwidth");
        for &(t, buf, bw) in &self.dimensioning {
            let fmt = |v: Option<f64>| v.map(|x| x.to_string()).unwrap_or_default();
            let _ = writeln!(out, "{t:e},{},{}", fmt(buf), fmt(bw));
        }
        out
    }

    /// Writes the plain-text page to `path`, propagating I/O failure as a
    /// typed [`CoreError`] instead of panicking (the report may be emitted
    /// at the tail of an hours-long campaign; a full disk in one shard must
    /// not look like a coordinator crash).
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<(), CoreError> {
        let path = path.as_ref();
        std::fs::write(path, self.render())
            .map_err(|e| CoreError::io(format!("writing report to {}", path.display()), e))
    }

    /// Writes the CSV tables to `path` (same error contract as [`Self::save`]).
    pub fn save_csv(&self, path: impl AsRef<std::path::Path>) -> Result<(), CoreError> {
        let path = path.as_ref();
        std::fs::write(path, self.to_csv())
            .map_err(|e| CoreError::io(format!("writing report CSV to {}", path.display()), e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper;

    fn small_config() -> ReportConfig {
        ReportConfig {
            acf_horizon: 8_192,
            diagnostic_frames: 16_384,
            ..ReportConfig::default()
        }
    }

    #[test]
    fn report_for_dar_fit() {
        let model = paper::build_s(0.975, 1);
        let r = TrafficReport::build(&model, &small_config());
        assert_eq!(r.label, "DAR(1)");
        assert!((r.mean - 500.0).abs() < 1e-6);
        assert!((r.acf_points[0] - 0.821).abs() < 0.001);
        // SRD: both Hurst estimates near 1/2.
        assert!(r.hurst_aggvar < 0.72, "aggvar H {}", r.hurst_aggvar);
        // CTS non-decreasing, BOP non-increasing down the table.
        for w in r.cts_table.windows(2) {
            assert!(w[1].1 >= w[0].1);
            assert!(w[1].2 <= w[0].2 * 1.0001);
        }
        // Tighter targets need more of both resources.
        let bufs: Vec<f64> = r.dimensioning.iter().filter_map(|&(_, b, _)| b).collect();
        assert!(bufs.windows(2).all(|w| w[1] >= w[0]));
        let render = r.render();
        assert!(render.contains("traffic profile"));
        assert!(render.contains("eff. bandwidth"));
    }

    #[test]
    fn save_reports_typed_io_errors_with_path_context() {
        let model = paper::build_s(0.975, 1);
        let r = TrafficReport::build(&model, &small_config());
        // A directory that does not exist: typed error, not a panic.
        let bad = std::path::Path::new("/nonexistent-vbr-dir/report.txt");
        let err = r.save(bad).expect_err("save must fail");
        assert!(matches!(err, CoreError::Io { .. }));
        assert!(err.to_string().contains("report.txt"), "{err}");
        let err = r.save_csv(bad).expect_err("save_csv must fail");
        assert!(err.to_string().contains("CSV"), "{err}");

        // And the happy path round-trips.
        let dir = std::env::temp_dir().join("vbr_core_report_save_test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("r.csv");
        r.save_csv(&path).expect("save_csv");
        let body = std::fs::read_to_string(&path).expect("read");
        assert!(body.contains("# cts_table"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn report_flags_lrd_source() {
        let model = paper::build_z(0.975);
        let r = TrafficReport::build(&model, &small_config());
        assert!(
            r.hurst_aggvar > 0.7,
            "Z^0.975 should profile as LRD, H {}",
            r.hurst_aggvar
        );
        assert!(r.acf_points[2] > 0.1, "r(100) {}", r.acf_points[2]);
    }
}

//! Typed errors for the analysis/report layer.
//!
//! The coordinator of a multi-process campaign renders reports for many
//! shards; a full disk or a dead NFS mount while writing one of them must
//! surface as a value the caller can route (skip the artifact, keep the
//! campaign) — never as a panic that takes the whole coordinator down.

use vbr_sim::SimError;

/// Any failure in the vbr-core report/experiment surface.
#[derive(Debug)]
pub enum CoreError {
    /// An I/O operation failed. `context` says what was being written where.
    Io {
        /// Human-readable description of the operation (includes the path).
        context: String,
        /// The underlying OS error.
        source: std::io::Error,
    },
    /// A simulation-layer failure bubbled up through an experiment driver.
    Sim(SimError),
}

impl CoreError {
    /// Wraps an I/O error with operation context.
    pub fn io(context: impl Into<String>, source: std::io::Error) -> Self {
        CoreError::Io {
            context: context.into(),
            source,
        }
    }
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::Io { context, source } => write!(f, "{context}: {source}"),
            CoreError::Sim(e) => write!(f, "simulation error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Io { source, .. } => Some(source),
            CoreError::Sim(e) => Some(e),
        }
    }
}

impl From<SimError> for CoreError {
    fn from(e: SimError) -> Self {
        CoreError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_error_carries_context_and_source() {
        let e = CoreError::io(
            "writing report to /tmp/r.txt",
            std::io::Error::new(std::io::ErrorKind::StorageFull, "disk full"),
        );
        let msg = e.to_string();
        assert!(msg.contains("/tmp/r.txt"), "{msg}");
        assert!(msg.contains("disk full"), "{msg}");
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn sim_errors_convert() {
        let sim = SimError::io(
            "reading checkpoint",
            std::io::Error::new(std::io::ErrorKind::NotFound, "gone"),
        );
        let e: CoreError = sim.into();
        assert!(matches!(e, CoreError::Sim(_)));
        assert!(e.to_string().contains("simulation error"));
    }
}

//! # vbr-asymptotics
//!
//! The large-deviations toolkit of the paper (§4): everything needed to go
//! from a traffic model's second-order statistics to buffer overflow
//! probabilities and the **Critical Time Scale**.
//!
//! Pipeline:
//!
//! 1. [`stats::SourceStats`] — (μ, σ², r(·)) snapshot of a source, taken
//!    from any `vbr_models::FrameProcess`.
//! 2. [`variance::VarianceFunction`] — the cumulative-sum variance
//!    `V(m) = Var(Σᵢ₌₁..m Yᵢ) = σ²[m + 2Σᵢ(m−i)r(i)]`, computed
//!    incrementally in O(1) per lag.
//! 3. [`cts`] — the rate function `I(c,b) = inf_m [b + m(c−μ)]²/(2V(m))` and
//!    its minimizer `m*_b`, the Critical Time Scale: the number of frame
//!    correlations that actually determine the loss rate.
//! 4. [`bop`] — the Bahadur–Rao asymptotic
//!    `Ψ ≈ exp(−N·I − ½log(4πN·I))` and the Courcoubetis–Weber large-N
//!    asymptotic `exp(−N·I)` for the buffer overflow probability of N
//!    multiplexed sources.
//! 5. [`weibull`] — the paper's closed-form Eq. (6) for N Gaussian
//!    *exact-LRD* sources (Weibull decay `exp(−const·B^{2−2H})`), plus the
//!    CTS growth slopes `m*_b ≈ H·b/((1−H)(c−μ))` (LRD) and `b/(c−μ)`
//!    (AR(1)) derived in the appendix.
//! 6. [`bandwidth`] — effective-bandwidth and connection-admission-control
//!    helpers built on the asymptotics (the paper's motivating application).
//! 7. [`dimensioning`] — the provisioning inverses: smallest buffer (or
//!    bandwidth) meeting a loss target.
//! 8. [`spectral`] — the frequency-domain face of the CTS (paper §6.2):
//!    input power spectra from the ACF and the Li–Hwang-style cutoff
//!    correspondence.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bandwidth;
pub mod bop;
pub mod dimensioning;
pub mod spectral;
pub mod cts;
pub mod stats;
pub mod variance;
pub mod weibull;

pub use bandwidth::{gaussian_effective_bandwidth, max_admissible_sources, Asymptotic};
pub use dimensioning::{required_bandwidth, required_buffer};
pub use spectral::{cts_cutoff_frequency, power_spectrum, spectral_mass_below};
pub use bop::{bahadur_rao_bop, bop_curve, large_n_bop, BopPoint};
pub use cts::{critical_time_scale, rate_function, CtsResult};
pub use stats::SourceStats;
pub use variance::VarianceFunction;
pub use weibull::{cts_slope_ar1, cts_slope_exact_lrd, kappa, weibull_lrd_bop};

//! The rate function and the Critical Time Scale — paper Eq. (8) and §4.2.
//!
//! `I(c, b) = inf_{m ≥ 1} f(c,b,m) / (2V(m))`, `f = [b + m(c−μ)]²`.
//!
//! The minimizer `m*_b` is the **Critical Time Scale**: only the first `m*_b`
//! frame autocorrelations enter `V(m*_b)` and hence the loss estimate.
//! Correlations beyond that lag — including the entire long-range-dependent
//! tail — are invisible to the overflow probability. The paper's two "myths"
//! fall out of three properties verified here:
//!
//! * `m*_b` is **finite** whenever `c > μ` (f grows like m² while V grows
//!   strictly slower for any proper ACF);
//! * `m*_0 = 1` — at zero buffer, correlations are completely irrelevant;
//! * `m*_b` is **non-decreasing in b** and grows only linearly
//!   (`≈ K·b` with K depending on the short-term correlation structure).

use crate::stats::SourceStats;
use crate::variance::VarianceFunction;

/// Result of a CTS / rate-function evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CtsResult {
    /// The Critical Time Scale `m*_b` (frames).
    pub m_star: usize,
    /// The rate function value `I(c, b)` at the infimum.
    pub rate: f64,
    /// True if the search ran out of precomputed ACF horizon before the
    /// objective turned decisively upward. When set, treat `m_star` as a
    /// lower bound and re-run with a longer ACF prefix.
    pub saturated: bool,
}

/// Computes `I(c,b)` and `m*_b` for a single-source statistic, with `c` and
/// `b` the per-source bandwidth (cells/frame) and buffer (cells).
///
/// The scan walks m upward, tracking the running minimum of
/// `f(m)/(2V(m))`, and stops early once the objective has risen well clear
/// of the minimum (the objective is eventually increasing: `f ~ m²` while
/// `V(m) = o(m²)` for any ACF with `r(k) → 0`).
///
/// # Panics
/// Panics if `c <= mean` (the multiplexer would be unstable) or `b < 0`.
pub fn critical_time_scale(stats: &SourceStats, c: f64, b: f64) -> CtsResult {
    let v = VarianceFunction::new(stats);
    critical_time_scale_with(&v, stats.mean, c, b)
}

/// Same as [`critical_time_scale`] but reuses a precomputed
/// [`VarianceFunction`] — the fig-4-style buffer sweeps evaluate hundreds of
/// buffer sizes against one ACF.
pub fn critical_time_scale_with(
    v: &VarianceFunction,
    mean: f64,
    c: f64,
    b: f64,
) -> CtsResult {
    assert!(
        c > mean,
        "stability requires per-source bandwidth c {c} > mean {mean}"
    );
    assert!(b >= 0.0, "negative buffer {b}");

    let drift = c - mean;
    let objective = |m: usize| {
        let fm = b + m as f64 * drift;
        fm * fm / (2.0 * v.v(m))
    };

    let mut best_m = 1usize;
    let mut best = objective(1);
    let max_m = v.max_m();
    for m in 2..=max_m {
        let val = objective(m);
        if val < best {
            best = val;
            best_m = m;
        } else if val > 4.0 * best && m > 4 * best_m + 64 {
            // Decisively past the minimum.
            return CtsResult {
                m_star: best_m,
                rate: best,
                saturated: false,
            };
        }
    }
    CtsResult {
        m_star: best_m,
        rate: best,
        // If the best point sits well inside the horizon the result is
        // trustworthy even though the early-exit never fired.
        saturated: best_m * 4 + 64 >= max_m,
    }
}

/// The rate function `I(c, b)` alone.
pub fn rate_function(stats: &SourceStats, c: f64, b: f64) -> f64 {
    critical_time_scale(stats, c, b).rate
}

#[cfg(test)]
mod tests {
    use super::*;

    fn white() -> SourceStats {
        SourceStats::new(500.0, 5000.0, vec![1.0; 1].into_iter().chain(vec![0.0; 999]).collect())
    }

    fn ar1(phi: f64, lags: usize) -> SourceStats {
        SourceStats::new(500.0, 5000.0, (0..=lags).map(|k| phi.powi(k as i32)).collect())
    }

    fn lrd(h: f64, g: f64, lags: usize) -> SourceStats {
        SourceStats::new(
            500.0,
            5000.0,
            vbr_models::fbndp::exact_lrd_acf(g, 2.0 * h, lags),
        )
    }

    #[test]
    fn zero_buffer_cts_is_one() {
        // Paper §4.2: m*_0 = 1 — correlations never matter at zero buffer.
        for stats in [white(), ar1(0.9, 2000), lrd(0.9, 0.9, 2000)] {
            let r = critical_time_scale(&stats, 538.0, 0.0);
            assert_eq!(r.m_star, 1, "m*_0 for {stats:?}");
            // I(c,0) = (c-mu)^2 / (2 sigma^2).
            let expect = 38.0 * 38.0 / (2.0 * 5000.0);
            assert!((r.rate - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn white_noise_cts_follows_continuous_minimizer() {
        // For V(m) = sigma^2 m the continuous objective [b+md]^2/(2 sigma^2 m)
        // is minimized at m = b/(c-mu): the CTS is an aggregation window that
        // grows with buffer even without any correlation. The integer search
        // must land within one frame of that.
        let stats = white();
        let c = 538.0;
        for &b in &[10.0, 100.0, 400.0] {
            let r = critical_time_scale(&stats, c, b);
            let cont = (b / (c - 500.0)).max(1.0);
            assert!(
                (r.m_star as f64 - cont).abs() <= 1.0,
                "white noise at b={b}: m*={} vs continuous {cont}",
                r.m_star
            );
        }
    }

    #[test]
    fn cts_is_nondecreasing_in_buffer() {
        for stats in [ar1(0.9, 4000), lrd(0.9, 0.9, 4000)] {
            let mut prev = 0usize;
            for i in 0..30 {
                let b = i as f64 * 20.0;
                let r = critical_time_scale(&stats, 526.0, b);
                assert!(
                    r.m_star >= prev,
                    "CTS decreased at b={b}: {} < {prev}",
                    r.m_star
                );
                prev = r.m_star;
            }
        }
    }

    #[test]
    fn cts_finite_even_for_lrd() {
        // The first myth: LRD should force huge CTS. It does not.
        let stats = lrd(0.9, 0.9, 20_000);
        let r = critical_time_scale(&stats, 538.0, 100.0);
        assert!(!r.saturated, "scan must terminate");
        assert!(r.m_star < 500, "CTS {} should be small", r.m_star);
    }

    #[test]
    fn ar1_cts_slope_matches_courcoubetis_weber() {
        // m*_b ~ b/(c-mu) for Gaussian AR(1) (paper §4.2). Slope check at
        // large-ish b.
        let stats = ar1(0.9, 60_000);
        let c = 526.0;
        let b = 2000.0;
        let r = critical_time_scale(&stats, c, b);
        let predict = b / (c - 500.0);
        assert!(!r.saturated);
        let ratio = r.m_star as f64 / predict;
        assert!(
            (0.8..=1.3).contains(&ratio),
            "AR(1) CTS {} vs prediction {predict}",
            r.m_star
        );
    }

    #[test]
    fn exact_lrd_cts_slope_matches_appendix() {
        // m*_b ~ H b /((1-H)(c-mu)) for exact LRD (paper appendix).
        let h = 0.86;
        let stats = lrd(h, 0.9, 400_000);
        let c = 526.0;
        let b = 1000.0;
        let r = critical_time_scale(&stats, c, b);
        let predict = h / (1.0 - h) * b / (c - 500.0);
        assert!(!r.saturated, "saturated at m*={}", r.m_star);
        let ratio = r.m_star as f64 / predict;
        assert!(
            (0.8..=1.2).contains(&ratio),
            "LRD CTS {} vs prediction {predict:.1}",
            r.m_star
        );
    }

    #[test]
    fn stronger_short_term_correlation_gives_larger_cts() {
        // Fig 4(b): higher DAR(1) `a` (stronger short-term correlation)
        // yields larger m*_b at the same buffer.
        let c = 526.0;
        let b = 200.0;
        let mut prev = 0usize;
        for &phi in &[0.7, 0.9, 0.975] {
            let r = critical_time_scale(&ar1(phi, 8000), c, b);
            assert!(r.m_star > prev, "phi={phi}: {} <= {prev}", r.m_star);
            prev = r.m_star;
        }
    }

    #[test]
    fn rate_increases_with_buffer() {
        let stats = ar1(0.9, 4000);
        let r0 = rate_function(&stats, 538.0, 0.0);
        let r1 = rate_function(&stats, 538.0, 200.0);
        let r2 = rate_function(&stats, 538.0, 400.0);
        assert!(r0 < r1 && r1 < r2, "I(c,b) must increase with b: {r0} {r1} {r2}");
    }

    #[test]
    fn saturation_reported_when_horizon_too_short() {
        // Strong correlation + big buffer with a tiny ACF horizon.
        let stats = ar1(0.99, 50);
        let r = critical_time_scale(&stats, 505.0, 5000.0);
        assert!(r.saturated, "should saturate: {r:?}");
    }

    #[test]
    #[should_panic]
    fn rejects_unstable_bandwidth() {
        critical_time_scale(&white(), 499.0, 10.0);
    }
}

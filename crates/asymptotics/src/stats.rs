//! Second-order source statistics — the interface between traffic models and
//! the large-deviations analysis.

use vbr_models::FrameProcess;

/// Mean, variance and an autocorrelation prefix of one source.
///
/// Everything in this crate consumes a `SourceStats` rather than a live
/// model: the Bahadur–Rao machinery only sees (μ, σ², r(·)) — which is
/// exactly the paper's point that these are the statistics that matter.
#[derive(Debug, Clone)]
pub struct SourceStats {
    /// Mean frame size (cells/frame).
    pub mean: f64,
    /// Frame-size variance (cells²).
    pub variance: f64,
    /// Autocorrelations `r(0..=K)` with `r(0) = 1`.
    pub acf: Vec<f64>,
}

impl SourceStats {
    /// Builds directly from the raw statistics.
    ///
    /// # Panics
    /// Panics if the variance is not positive, the ACF is empty, or
    /// `r(0) ≠ 1`.
    pub fn new(mean: f64, variance: f64, acf: Vec<f64>) -> Self {
        assert!(
            variance > 0.0 && variance.is_finite(),
            "invalid variance {variance}"
        );
        assert!(mean.is_finite(), "invalid mean {mean}");
        assert!(!acf.is_empty(), "ACF must contain at least r(0)");
        assert!(
            (acf[0] - 1.0).abs() < 1e-9,
            "r(0) must be 1, got {}",
            acf[0]
        );
        // Tolerate (and clamp) floating-point dust just outside [-1, 1]:
        // analytic ACFs computed as cov/var can land at 1 + O(eps).
        let acf: Vec<f64> = acf
            .into_iter()
            .enumerate()
            .map(|(k, r)| {
                assert!(
                    (-1.0 - 1e-9..=1.0 + 1e-9).contains(&r),
                    "r({k}) = {r} is not a correlation"
                );
                r.clamp(-1.0, 1.0)
            })
            .collect();
        Self {
            mean,
            variance,
            acf,
        }
    }

    /// Snapshots a model's analytic statistics with `max_lag` ACF terms.
    ///
    /// `max_lag` bounds the time scales the analysis can see; the CTS search
    /// reports saturation if it runs into this horizon, in which case call
    /// again with a larger value.
    pub fn from_process(process: &dyn FrameProcess, max_lag: usize) -> Self {
        Self::new(
            process.mean(),
            process.variance(),
            process.autocorrelations(max_lag),
        )
    }

    /// Largest usable lag `K` (the ACF holds `r(0..=K)`).
    pub fn max_lag(&self) -> usize {
        self.acf.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vbr_models::{GaussianAr1, FrameProcess};

    #[test]
    fn from_process_copies_analytics() {
        let p = GaussianAr1::new(500.0, 70.0, 0.8);
        let s = SourceStats::from_process(&p, 10);
        assert_eq!(s.mean, 500.0);
        assert!((s.variance - 4900.0).abs() < 1e-9);
        assert_eq!(s.max_lag(), 10);
        assert!((s.acf[3] - 0.512).abs() < 1e-12);
        let _ = p.label();
    }

    #[test]
    #[should_panic]
    fn rejects_non_unit_r0() {
        SourceStats::new(0.0, 1.0, vec![0.9, 0.5]);
    }

    #[test]
    #[should_panic]
    fn rejects_out_of_range_correlation() {
        SourceStats::new(0.0, 1.0, vec![1.0, 1.5]);
    }
}

//! The cumulative variance function `V(m)` — paper Eq. (10).
//!
//! `V(m) = Var(Σᵢ₌₁..m Yᵢ) = σ²[m + 2Σᵢ₌₁..m (m−i)·r(i)]`.
//!
//! This is the only place second-order structure enters the Bahadur–Rao
//! asymptotic, which is why the CTS argument works: lags beyond the rate
//! function's minimizer never influence `V(m*)`.
//!
//! Computed incrementally using the telescoping identity
//! `V(m+1) − V(m) = σ²[1 + 2Σᵢ₌₁..m r(i)]`, so building the whole prefix
//! costs O(K) for K lags instead of the naive O(K²).

use crate::stats::SourceStats;

/// Precomputed `V(1..=K)` for one source.
#[derive(Debug, Clone)]
pub struct VarianceFunction {
    /// `values[m-1] = V(m)`.
    values: Vec<f64>,
    sigma2: f64,
}

impl VarianceFunction {
    /// Builds the full prefix `V(1..=K)` where K is the ACF horizon of
    /// `stats`.
    pub fn new(stats: &SourceStats) -> Self {
        let sigma2 = stats.variance;
        let k = stats.max_lag();
        let mut values = Vec::with_capacity(k + 1);
        // V(1) = sigma^2.
        values.push(sigma2);
        let mut acf_cumsum = 0.0;
        for m in 1..=k {
            acf_cumsum += stats.acf[m];
            let next = values[m - 1] + sigma2 * (1.0 + 2.0 * acf_cumsum);
            values.push(next);
        }
        Self { values, sigma2 }
    }

    /// `V(m)` for `1 <= m <= max_m`.
    ///
    /// # Panics
    /// Panics if `m` is 0 or beyond the precomputed horizon.
    #[inline]
    pub fn v(&self, m: usize) -> f64 {
        assert!(m >= 1, "V(m) defined for m >= 1");
        self.values[m - 1]
    }

    /// Largest m available.
    pub fn max_m(&self) -> usize {
        self.values.len()
    }

    /// Marginal variance σ² = V(1).
    pub fn sigma2(&self) -> f64 {
        self.sigma2
    }

    /// The *index of dispersion* `V(m)/(m·σ²)` — flat at 1 for white noise,
    /// converging to a constant for SRD, diverging like `m^{2H−1}` for LRD.
    /// Used by tests and the ablation benches to classify models.
    pub fn dispersion(&self, m: usize) -> f64 {
        self.v(m) / (m as f64 * self.sigma2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats_from_acf(acf: Vec<f64>) -> SourceStats {
        SourceStats::new(500.0, 5000.0, acf)
    }

    /// Direct O(m²) evaluation of Eq. (10) for cross-checking.
    fn v_direct(sigma2: f64, acf: &[f64], m: usize) -> f64 {
        let sum: f64 = (1..=m.min(acf.len() - 1))
            .map(|i| (m - i) as f64 * acf[i])
            .sum();
        sigma2 * (m as f64 + 2.0 * sum)
    }

    #[test]
    fn white_noise_is_linear() {
        let s = stats_from_acf(vec![1.0, 0.0, 0.0, 0.0, 0.0]);
        let v = VarianceFunction::new(&s);
        for m in 1..=5 {
            assert!((v.v(m) - 5000.0 * m as f64).abs() < 1e-9, "m={m}");
            assert!((v.dispersion(m) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn incremental_matches_direct() {
        // AR(1)-style ACF.
        let acf: Vec<f64> = (0..200).map(|k| 0.9_f64.powi(k)).collect();
        let s = stats_from_acf(acf.clone());
        let v = VarianceFunction::new(&s);
        for m in [1, 2, 3, 10, 50, 199] {
            let direct = v_direct(5000.0, &acf, m);
            assert!(
                (v.v(m) - direct).abs() < 1e-6 * direct,
                "m={m}: {} vs {direct}",
                v.v(m)
            );
        }
    }

    #[test]
    fn ar1_converges_to_known_asymptote() {
        // For AR(1): V(m)/m -> sigma^2 (1+phi)/(1-phi).
        let phi: f64 = 0.7;
        let acf: Vec<f64> = (0..5000).map(|k| phi.powi(k)).collect();
        let v = VarianceFunction::new(&stats_from_acf(acf));
        let limit = 5000.0 * (1.0 + phi) / (1.0 - phi);
        let ratio = v.v(5000) / 5000.0;
        assert!(
            (ratio - limit).abs() < 0.01 * limit,
            "V(m)/m {ratio} vs {limit}"
        );
    }

    #[test]
    fn exact_lrd_grows_like_m_2h() {
        // For exact-LRD ACF with weight g: V(m) ~ sigma^2 g m^{2H} (paper
        // Eq. 11, "accurate even for small m").
        let h = 0.9;
        let g = 0.9;
        let acf = vbr_models::fbndp::exact_lrd_acf(g, 2.0 * h, 20_000);
        let v = VarianceFunction::new(&stats_from_acf(acf));
        for &m in &[1_000usize, 10_000, 20_000] {
            let expect = 5000.0 * g * (m as f64).powf(2.0 * h);
            let got = v.v(m);
            assert!(
                (got / expect - 1.0).abs() < 0.05,
                "m={m}: {got} vs {expect}"
            );
        }
    }

    #[test]
    fn dispersion_separates_srd_from_lrd() {
        let srd_acf: Vec<f64> = (0..4000).map(|k| 0.9_f64.powi(k)).collect();
        let lrd_acf = vbr_models::fbndp::exact_lrd_acf(0.9, 1.8, 4000);
        let v_srd = VarianceFunction::new(&stats_from_acf(srd_acf));
        let v_lrd = VarianceFunction::new(&stats_from_acf(lrd_acf));
        // SRD dispersion plateaus; LRD keeps climbing.
        let srd_growth = v_srd.dispersion(4000) / v_srd.dispersion(400);
        let lrd_growth = v_lrd.dispersion(4000) / v_lrd.dispersion(400);
        assert!(srd_growth < 1.1, "SRD dispersion growth {srd_growth}");
        assert!(lrd_growth > 4.0, "LRD dispersion growth {lrd_growth}");
    }

    #[test]
    #[should_panic]
    fn rejects_m_zero() {
        let v = VarianceFunction::new(&stats_from_acf(vec![1.0, 0.5]));
        v.v(0);
    }
}

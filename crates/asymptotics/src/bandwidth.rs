//! Effective bandwidth and connection admission control (CAC).
//!
//! The paper's motivating application (via Elwalid et al. [6]): an ATM switch
//! must decide in real time how many VBR video connections fit on a link
//! given a buffer and a loss target. This module inverts the Bahadur–Rao /
//! large-N asymptotics to answer exactly that, and provides the classic
//! Gaussian effective-bandwidth formula for comparison.

use crate::bop::{bahadur_rao_bop, large_n_bop};
use crate::stats::SourceStats;

/// Which asymptotic the admission test uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Asymptotic {
    /// Bahadur–Rao (tighter; admits more connections).
    BahadurRao,
    /// Courcoubetis–Weber large-N (more conservative).
    LargeN,
}

/// The asymptotic per-frame variance rate `v∞ = lim V(m)/m
/// = σ²[1 + 2Σ_{k≥1} r(k)]`, evaluated over the available ACF horizon.
///
/// Returns `None` when the partial sums have clearly not converged within
/// the horizon (the LRD case — Σr(k) diverges, which is precisely why
/// classical effective bandwidth fails for LRD models at infinite time
/// scales). The convergence test compares the last two dyadic partial sums.
pub fn asymptotic_variance_rate(stats: &SourceStats) -> Option<f64> {
    let k = stats.max_lag();
    if k < 16 {
        return None;
    }
    let sum_to = |hi: usize| -> f64 { stats.acf[1..=hi].iter().sum() };
    let half = sum_to(k / 2);
    let full = sum_to(k);
    let scale = full.abs().max(1.0);
    if (full - half).abs() > 0.01 * scale {
        return None; // still drifting: treat the series as divergent
    }
    Some(stats.variance * (1.0 + 2.0 * full))
}

/// Gaussian effective bandwidth with space parameter θ:
/// `EB(θ) = μ + θ·v∞/2` (cells/frame). The classic admission rule reserves
/// `EB(θ)` per source with `θ = −ln(ε)/B_total` for loss target ε.
pub fn gaussian_effective_bandwidth(mean: f64, variance_rate: f64, theta: f64) -> f64 {
    assert!(theta >= 0.0, "negative space parameter {theta}");
    assert!(variance_rate >= 0.0, "negative variance rate");
    mean + theta * variance_rate / 2.0
}

/// Maximum number of homogeneous sources admissible on a link of total
/// capacity `capacity` (cells/frame) with total buffer `buffer` (cells) and
/// loss target `target_bop`, according to the chosen asymptotic.
///
/// Monotonicity: adding a source while holding the link fixed shrinks both
/// per-source bandwidth `c = C/N` and per-source buffer `b = B/N`, so the
/// BOP rises with N; the answer is found by binary search.
///
/// Returns 0 if even a single source violates the target (or is unstable).
pub fn max_admissible_sources(
    stats: &SourceStats,
    capacity: f64,
    buffer: f64,
    target_bop: f64,
    flavor: Asymptotic,
) -> usize {
    assert!(capacity > 0.0 && buffer >= 0.0);
    assert!(
        target_bop > 0.0 && target_bop < 1.0,
        "invalid loss target {target_bop}"
    );

    let admissible = |n: usize| -> bool {
        if n == 0 {
            return true;
        }
        let c = capacity / n as f64;
        if c <= stats.mean {
            return false; // unstable
        }
        let b = buffer / n as f64;
        let bop = match flavor {
            Asymptotic::BahadurRao => bahadur_rao_bop(stats, c, b, n),
            Asymptotic::LargeN => large_n_bop(stats, c, b, n),
        };
        bop <= target_bop
    };

    // Upper bound: stability cap.
    let n_max = (capacity / stats.mean).floor() as usize;
    if n_max == 0 || !admissible(1) {
        return 0;
    }
    // Binary search the largest admissible N in [1, n_max]; the predicate is
    // monotone (admissible for all N below some threshold).
    let (mut lo, mut hi) = (1usize, n_max);
    while lo < hi {
        let mid = (lo + hi).div_ceil(2);
        if admissible(mid) {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ar1(phi: f64, lags: usize) -> SourceStats {
        SourceStats::new(
            500.0,
            5000.0,
            (0..=lags).map(|k| phi.powi(k as i32)).collect(),
        )
    }

    fn lrd(h: f64, g: f64, lags: usize) -> SourceStats {
        SourceStats::new(
            500.0,
            5000.0,
            vbr_models::fbndp::exact_lrd_acf(g, 2.0 * h, lags),
        )
    }

    #[test]
    fn variance_rate_of_ar1() {
        // v_inf = sigma^2 (1+phi)/(1-phi).
        let stats = ar1(0.7, 2000);
        let v = asymptotic_variance_rate(&stats).expect("AR(1) converges");
        let expect = 5000.0 * 1.7 / 0.3;
        assert!((v - expect).abs() < 0.01 * expect, "{v} vs {expect}");
    }

    #[test]
    fn variance_rate_diverges_for_lrd() {
        let stats = lrd(0.9, 0.9, 50_000);
        assert!(
            asymptotic_variance_rate(&stats).is_none(),
            "LRD correlation sum must be flagged divergent"
        );
    }

    #[test]
    fn effective_bandwidth_between_mean_and_peakish() {
        let stats = ar1(0.7, 2000);
        let v = asymptotic_variance_rate(&stats).unwrap();
        let eb = gaussian_effective_bandwidth(stats.mean, v, 1e-3);
        assert!(eb > stats.mean && eb < stats.mean + 3.0 * stats.variance.sqrt());
    }

    #[test]
    fn admission_monotone_in_resources() {
        let stats = ar1(0.9, 4000);
        let n1 = max_admissible_sources(&stats, 16_140.0, 800.0, 1e-6, Asymptotic::BahadurRao);
        let n2 = max_admissible_sources(&stats, 16_140.0, 4000.0, 1e-6, Asymptotic::BahadurRao);
        let n3 = max_admissible_sources(&stats, 32_280.0, 800.0, 1e-6, Asymptotic::BahadurRao);
        assert!(n1 >= 1, "paper-scale link must admit sources, got {n1}");
        assert!(n2 >= n1, "more buffer admits more: {n2} vs {n1}");
        assert!(n3 > n1, "more bandwidth admits more: {n3} vs {n1}");
        // Never past the stability cap.
        assert!(n3 <= (32_280.0 / 500.0) as usize);
    }

    #[test]
    fn bahadur_rao_admits_at_least_as_many_as_large_n() {
        let stats = ar1(0.9, 4000);
        let br = max_admissible_sources(&stats, 16_140.0, 2000.0, 1e-6, Asymptotic::BahadurRao);
        let ln = max_admissible_sources(&stats, 16_140.0, 2000.0, 1e-6, Asymptotic::LargeN);
        assert!(br >= ln, "B-R {br} vs large-N {ln}");
    }

    #[test]
    fn admission_respects_loss_target() {
        let stats = ar1(0.9, 4000);
        let cap = 16_140.0;
        let buf = 2000.0;
        let n = max_admissible_sources(&stats, cap, buf, 1e-6, Asymptotic::BahadurRao);
        assert!(n >= 1);
        let at_n = bahadur_rao_bop(&stats, cap / n as f64, buf / n as f64, n);
        assert!(at_n <= 1e-6, "admitted load violates target: {at_n:e}");
        let over = n + 1;
        let c_over = cap / over as f64;
        if c_over > stats.mean {
            let at_over = bahadur_rao_bop(&stats, c_over, buf / over as f64, over);
            assert!(at_over > 1e-6, "N+1 should violate target: {at_over:e}");
        }
    }

    #[test]
    fn zero_admission_when_target_unreachable() {
        let stats = ar1(0.99, 2000);
        // Capacity below the mean: nothing fits.
        let n = max_admissible_sources(&stats, 400.0, 1000.0, 1e-6, Asymptotic::BahadurRao);
        assert_eq!(n, 0);
    }

    #[test]
    fn tighter_target_admits_fewer() {
        let stats = ar1(0.9, 4000);
        let loose = max_admissible_sources(&stats, 16_140.0, 2000.0, 1e-3, Asymptotic::BahadurRao);
        let tight = max_admissible_sources(&stats, 16_140.0, 2000.0, 1e-9, Asymptotic::BahadurRao);
        assert!(loose >= tight, "{loose} vs {tight}");
    }
}

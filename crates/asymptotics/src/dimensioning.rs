//! Buffer and bandwidth dimensioning — the inverse problems ATM engineers
//! actually solve.
//!
//! The forward machinery answers "given (c, b, N), what is the loss?";
//! provisioning needs the inverses:
//!
//! * [`required_buffer`] — smallest per-source buffer meeting a loss target
//!   at fixed bandwidth (paper framing: does LRD explode the buffer
//!   requirement? Answer: not inside the delay budget);
//! * [`required_bandwidth`] — smallest per-source bandwidth meeting a loss
//!   target at fixed buffer (the *effective bandwidth* of the source under
//!   the many-sources asymptotic — this is the quantity whose existence for
//!   LRD traffic the "myths" denied).
//!
//! Both invert the Bahadur–Rao estimate by bisection; the BOP is monotone
//! in each argument, so the inverses are well-defined.

use crate::bop::bahadur_rao_bop;
use crate::stats::SourceStats;

/// Smallest per-source buffer `b` (cells) with
/// `bahadur_rao_bop(stats, c, b, n) <= target`.
///
/// Returns `None` if even an enormous buffer (10⁷ cells/source) cannot meet
/// the target, or the system is unstable (`c <= mean`).
pub fn required_buffer(stats: &SourceStats, c: f64, n: usize, target: f64) -> Option<f64> {
    assert!(target > 0.0 && target < 1.0, "invalid target {target}");
    if c <= stats.mean {
        return None;
    }
    let meets = |b: f64| bahadur_rao_bop(stats, c, b, n) <= target;
    if meets(0.0) {
        return Some(0.0);
    }
    let mut hi = 1.0_f64;
    while !meets(hi) {
        hi *= 2.0;
        if hi > 1e7 {
            return None;
        }
    }
    let mut lo = hi / 2.0;
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if meets(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Some(hi)
}

/// Smallest per-source bandwidth `c` (cells/frame) with
/// `bahadur_rao_bop(stats, c, b, n) <= target` — the source's effective
/// bandwidth at this (b, N, ε) operating point.
///
/// Returns `None` if even `c = mean + 20σ` cannot meet the target.
pub fn required_bandwidth(stats: &SourceStats, b: f64, n: usize, target: f64) -> Option<f64> {
    assert!(target > 0.0 && target < 1.0, "invalid target {target}");
    assert!(b >= 0.0, "negative buffer");
    let sd = stats.variance.sqrt();
    let meets = |c: f64| bahadur_rao_bop(stats, c, b, n) <= target;
    let hi_cap = stats.mean + 20.0 * sd;
    if !meets(hi_cap) {
        return None;
    }
    let mut lo = stats.mean + 1e-9 * sd.max(1.0);
    let mut hi = hi_cap;
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if meets(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Some(hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ar1(phi: f64, lags: usize) -> SourceStats {
        SourceStats::new(
            500.0,
            5000.0,
            (0..=lags).map(|k| phi.powi(k as i32)).collect(),
        )
    }

    fn lrd(h: f64, g: f64, lags: usize) -> SourceStats {
        SourceStats::new(
            500.0,
            5000.0,
            vbr_models::fbndp::exact_lrd_acf(g, 2.0 * h, lags),
        )
    }

    #[test]
    fn buffer_inverse_is_consistent() {
        let stats = ar1(0.9, 8_000);
        let target = 1e-6;
        let b = required_buffer(&stats, 538.0, 30, target).expect("feasible");
        let at = bahadur_rao_bop(&stats, 538.0, b, 30);
        assert!(at <= target * 1.001, "at solution: {at:e}");
        // Just below the solution the target is violated.
        if b > 1.0 {
            let below = bahadur_rao_bop(&stats, 538.0, b - 1.0, 30);
            assert!(below > target, "b is not minimal: {below:e}");
        }
    }

    #[test]
    fn bandwidth_inverse_is_consistent() {
        let stats = ar1(0.9, 8_000);
        let target = 1e-6;
        let c = required_bandwidth(&stats, 100.0, 30, target).expect("feasible");
        assert!(c > 500.0 && c < 500.0 + 20.0 * 5000.0_f64.sqrt());
        let at = bahadur_rao_bop(&stats, c, 100.0, 30);
        assert!(at <= target * 1.001);
        let below = bahadur_rao_bop(&stats, c - 0.5, 100.0, 30);
        assert!(below > target, "c is not minimal: {below:e}");
    }

    #[test]
    fn zero_buffer_requirement_when_bandwidth_generous() {
        let stats = ar1(0.5, 100);
        // c enormous: even zero buffer meets the target.
        let b = required_buffer(&stats, 1200.0, 30, 1e-6).unwrap();
        assert_eq!(b, 0.0);
    }

    #[test]
    fn unstable_bandwidth_is_infeasible() {
        let stats = ar1(0.9, 100);
        assert!(required_buffer(&stats, 499.0, 30, 1e-6).is_none());
    }

    #[test]
    fn stronger_short_term_correlation_needs_more_resources() {
        let weak = ar1(0.7, 8_000);
        let strong = ar1(0.975, 8_000);
        let b_weak = required_buffer(&weak, 538.0, 30, 1e-6).unwrap();
        let b_strong = required_buffer(&strong, 538.0, 30, 1e-6).unwrap();
        assert!(
            b_strong > 2.0 * b_weak,
            "buffer: strong {b_strong} vs weak {b_weak}"
        );
        let c_weak = required_bandwidth(&weak, 50.0, 30, 1e-6).unwrap();
        let c_strong = required_bandwidth(&strong, 50.0, 30, 1e-6).unwrap();
        assert!(c_strong > c_weak, "bandwidth: {c_strong} vs {c_weak}");
    }

    #[test]
    fn lrd_buffer_requirement_stays_finite_and_modest() {
        // The myth says LRD makes buffer provisioning explode; at the
        // paper's operating point the exact-LRD source needs a finite,
        // modest buffer for 1e-6 — comparable to a strong SRD source.
        let lrd_stats = lrd(0.9, 0.9, 200_000);
        let b = required_buffer(&lrd_stats, 538.0, 30, 1e-6).expect("feasible");
        // Express as delay on the N=30 link: b/c * 40 ms.
        let delay_ms = b / 538.0 * 40.0;
        assert!(
            delay_ms < 30.0,
            "LRD buffer requirement {delay_ms} ms must fit the real-time budget"
        );
    }

    #[test]
    fn effective_bandwidth_decreases_with_buffer() {
        let stats = ar1(0.9, 8_000);
        let c0 = required_bandwidth(&stats, 0.0, 30, 1e-6).unwrap();
        let c100 = required_bandwidth(&stats, 100.0, 30, 1e-6).unwrap();
        let c400 = required_bandwidth(&stats, 400.0, 30, 1e-6).unwrap();
        assert!(c0 > c100 && c100 > c400, "{c0} {c100} {c400}");
        // And always between mean and peak-ish.
        assert!(c400 > 500.0);
    }
}

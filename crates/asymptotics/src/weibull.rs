//! Closed-form Weibull asymptotic for N Gaussian exact-LRD sources — the
//! paper's Eq. (6), derived in its appendix from the Bahadur–Rao asymptotic
//! with `V(m) ≈ σ²g(T_s)m^{2H}`:
//!
//! ```text
//! P(W > B) ≈ exp[ −J − ½ log(4πJ) ],
//! J(N,b,c) = N^{2H−1} (c−μ)^{2H} / (2 g σ² κ(H)²) · B^{2−2H},
//! κ(H)     = H^H (1−H)^{1−H},   B = N·b.
//! ```
//!
//! This is the formula behind the "myth": the stretched-exponential decay
//! `exp(−const·B^{2−2H})` looks catastrophically slower than the Markov
//! `exp(−const·B)` — but the *region where it bites* starts beyond the CTS,
//! i.e. beyond any realistic real-time buffer. The module also carries the
//! appendix's CTS slope constants used to quantify that region.

/// `κ(H) = H^H (1−H)^{1−H}`.
pub fn kappa(h: f64) -> f64 {
    assert!(h > 0.0 && h < 1.0, "H must be in (0,1), got {h}");
    h.powf(h) * (1.0 - h).powf(1.0 - h)
}

/// The Weibull exponent `J(N, b, c)` of Eq. (6). `b` is per-source buffer
/// (cells); the total buffer is `B = N·b`.
pub fn weibull_exponent(
    n: usize,
    b: f64,
    c: f64,
    mean: f64,
    variance: f64,
    h: f64,
    g: f64,
) -> f64 {
    assert!(c > mean, "need c {c} > mean {mean}");
    assert!(h > 0.5 && h < 1.0, "H must be in (0.5,1), got {h}");
    assert!(g > 0.0 && g <= 1.0, "invalid weight g {g}");
    assert!(variance > 0.0, "invalid variance");
    let nf = n as f64;
    let total_b = nf * b;
    nf.powf(2.0 * h - 1.0) * (c - mean).powf(2.0 * h)
        / (2.0 * g * variance * kappa(h).powi(2))
        * total_b.powf(2.0 - 2.0 * h)
}

/// The Eq. (6) buffer overflow probability.
pub fn weibull_lrd_bop(
    n: usize,
    b: f64,
    c: f64,
    mean: f64,
    variance: f64,
    h: f64,
    g: f64,
) -> f64 {
    let j = weibull_exponent(n, b, c, mean, variance, h, g);
    if j <= 1e-12 {
        return 1.0;
    }
    (-j - 0.5 * (4.0 * std::f64::consts::PI * j).ln()).exp().min(1.0)
}

/// Appendix slope: for exact-LRD Gaussian sources the CTS grows as
/// `m*_b ≈ H/((1−H)(c−μ)) · b`.
pub fn cts_slope_exact_lrd(h: f64, c: f64, mean: f64) -> f64 {
    assert!(c > mean && h > 0.0 && h < 1.0);
    h / ((1.0 - h) * (c - mean))
}

/// §4.2 slope: for a Gaussian AR(1) the CTS grows as `m*_b ≈ b/(c−μ)`
/// (Courcoubetis & Weber).
pub fn cts_slope_ar1(c: f64, mean: f64) -> f64 {
    assert!(c > mean);
    1.0 / (c - mean)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bop::bahadur_rao_bop;
    use crate::stats::SourceStats;

    #[test]
    fn kappa_values() {
        // kappa(1/2) = 1/2; kappa is symmetric around 1/2.
        assert!((kappa(0.5) - 0.5).abs() < 1e-12);
        assert!((kappa(0.3) - kappa(0.7)).abs() < 1e-12);
        assert!(kappa(0.9) > 0.5 && kappa(0.9) < 1.0);
    }

    #[test]
    fn weibull_matches_bahadur_rao_on_exact_lrd_acf() {
        // Eq. (6) is the B-R asymptotic with the continuous V(m) ~ sigma^2 g
        // m^{2H} approximation; for an exact-LRD ACF the two must agree
        // closely in the large-buffer region.
        let h = 0.86;
        let g = 0.9;
        let mean = 500.0;
        let var = 5000.0;
        let c = 538.0;
        let n = 30;
        let acf = vbr_models::fbndp::exact_lrd_acf(g, 2.0 * h, 200_000);
        let stats = SourceStats::new(mean, var, acf);
        for &b in &[500.0, 2000.0, 8000.0] {
            let br = bahadur_rao_bop(&stats, c, b, n);
            let wb = weibull_lrd_bop(n, b, c, mean, var, h, g);
            let log_ratio = (br.ln() - wb.ln()).abs();
            assert!(
                log_ratio < 0.25 * wb.ln().abs(),
                "b={b}: B-R ln {} vs Weibull ln {}",
                br.ln(),
                wb.ln()
            );
        }
    }

    #[test]
    fn weibull_decay_is_stretched_exponential() {
        // ln P should scale like B^{2-2H}: doubling the buffer multiplies
        // the exponent by 2^{2-2H}.
        let h = 0.9;
        let j1 = weibull_exponent(30, 1000.0, 538.0, 500.0, 5000.0, h, 1.0);
        let j2 = weibull_exponent(30, 2000.0, 538.0, 500.0, 5000.0, h, 1.0);
        let factor = j2 / j1;
        assert!(
            (factor - 2.0_f64.powf(2.0 - 2.0 * h)).abs() < 1e-9,
            "scaling factor {factor}"
        );
    }

    #[test]
    fn h_half_recovers_exponential_scaling() {
        // As H -> 1/2 the exponent becomes linear in B (log-linear BOP),
        // the classic effective-bandwidth behaviour.
        let h = 0.500001;
        let j1 = weibull_exponent(30, 1000.0, 538.0, 500.0, 5000.0, h, 1.0);
        let j2 = weibull_exponent(30, 2000.0, 538.0, 500.0, 5000.0, h, 1.0);
        assert!((j2 / j1 - 2.0).abs() < 1e-3);
    }

    #[test]
    fn higher_h_means_slower_decay_at_large_buffers() {
        let p_low_h = weibull_lrd_bop(30, 5000.0, 538.0, 500.0, 5000.0, 0.75, 1.0);
        let p_high_h = weibull_lrd_bop(30, 5000.0, 538.0, 500.0, 5000.0, 0.95, 1.0);
        assert!(
            p_high_h > p_low_h * 10.0,
            "H=0.95 {p_high_h:e} vs H=0.75 {p_low_h:e}"
        );
    }

    #[test]
    fn slopes_order_correctly() {
        // The LRD slope exceeds the AR(1) slope by the factor H/(1-H) > 1.
        let c = 526.0;
        let lrd = cts_slope_exact_lrd(0.86, c, 500.0);
        let ar = cts_slope_ar1(c, 500.0);
        assert!((lrd / ar - 0.86 / 0.14).abs() < 1e-9);
    }
}

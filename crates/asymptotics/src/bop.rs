//! Buffer overflow probability asymptotics — paper Eq. (7)–(9).
//!
//! For N homogeneous sources with per-source statistics (μ, σ², r(·)),
//! per-source bandwidth c and per-source buffer b:
//!
//! * **Bahadur–Rao**: `Ψ(c,b,N) ≈ exp(−N·I(c,b) − ½ log(4πN·I(c,b)))` —
//!   the refined asymptotic with the square-root prefactor;
//! * **Large-N** (Courcoubetis & Weber): `Ψ ≈ exp(−N·I(c,b))` — the plain
//!   exponent, an upper envelope about an order of magnitude looser (the
//!   paper's Fig. 10 compares both against simulation).

use crate::cts::{critical_time_scale_with, CtsResult};
use crate::stats::SourceStats;
use crate::variance::VarianceFunction;

/// One point on a BOP-vs-buffer curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BopPoint {
    /// Per-source buffer b (cells).
    pub buffer_per_source: f64,
    /// Total buffer B = N·b expressed as a maximum delay (msec) at the link
    /// rate — the unit the paper plots.
    pub buffer_ms: f64,
    /// Buffer overflow probability estimate.
    pub bop: f64,
    /// The CTS at this operating point.
    pub cts: CtsResult,
}

/// Converts a per-source buffer (cells) to total-buffer delay in msec:
/// `delay = B_total / (link rate) = (b/c)·T_s`.
pub fn buffer_delay_ms(b_per_source: f64, c_per_source: f64, ts_sec: f64) -> f64 {
    b_per_source / c_per_source * ts_sec * 1e3
}

/// Inverse of [`buffer_delay_ms`]: per-source buffer (cells) from a delay
/// target in msec.
pub fn buffer_from_delay_ms(delay_ms: f64, c_per_source: f64, ts_sec: f64) -> f64 {
    delay_ms / 1e3 * c_per_source / ts_sec
}

/// Bahadur–Rao BOP for N sources.
///
/// Returns a probability in `(0, 1]`; values are clamped at 1 for the
/// (non-asymptotic) regime where the estimate exceeds 1.
pub fn bahadur_rao_bop(stats: &SourceStats, c: f64, b: f64, n: usize) -> f64 {
    let v = VarianceFunction::new(stats);
    bahadur_rao_with(&v, stats.mean, c, b, n).bop
}

/// Large-N BOP (no prefactor).
pub fn large_n_bop(stats: &SourceStats, c: f64, b: f64, n: usize) -> f64 {
    let v = VarianceFunction::new(stats);
    let cts = critical_time_scale_with(&v, stats.mean, c, b);
    (-(n as f64) * cts.rate).exp().min(1.0)
}

fn bahadur_rao_with(
    v: &VarianceFunction,
    mean: f64,
    c: f64,
    b: f64,
    n: usize,
) -> BopWithCts {
    assert!(n >= 1, "need at least one source");
    let cts = critical_time_scale_with(v, mean, c, b);
    let ni = n as f64 * cts.rate;
    // g1 = -1/2 log(4 pi N I); guard tiny NI where the prefactor correction
    // is meaningless (the asymptotic itself has broken down).
    let bop = if ni <= 1e-12 {
        1.0
    } else {
        (-ni - 0.5 * (4.0 * std::f64::consts::PI * ni).ln()).exp().min(1.0)
    };
    BopWithCts { bop, cts }
}

struct BopWithCts {
    bop: f64,
    cts: CtsResult,
}

/// Which asymptotic a curve should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flavor {
    /// Bahadur–Rao (with the ½log prefactor).
    BahadurRao,
    /// Courcoubetis–Weber large-N (exponent only).
    LargeN,
}

/// Sweeps a BOP-vs-buffer curve over per-source buffers `buffers`
/// (cells/source), reusing one variance function for the whole sweep.
///
/// `ts_sec` is the frame duration used to express buffer in msec.
pub fn bop_curve(
    stats: &SourceStats,
    c: f64,
    n: usize,
    buffers: &[f64],
    ts_sec: f64,
    flavor: Flavor,
) -> Vec<BopPoint> {
    let v = VarianceFunction::new(stats);
    buffers
        .iter()
        .map(|&b| {
            let point = bahadur_rao_with(&v, stats.mean, c, b, n);
            let bop = match flavor {
                Flavor::BahadurRao => point.bop,
                Flavor::LargeN => (-(n as f64) * point.cts.rate).exp().min(1.0),
            };
            BopPoint {
                buffer_per_source: b,
                buffer_ms: buffer_delay_ms(b, c, ts_sec),
                bop,
                cts: point.cts,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vbr_stats::normal_sf;

    fn ar1(phi: f64, lags: usize) -> SourceStats {
        SourceStats::new(
            500.0,
            5000.0,
            (0..=lags).map(|k| phi.powi(k as i32)).collect(),
        )
    }

    #[test]
    fn zero_buffer_matches_gaussian_tail() {
        // At b = 0, I = (c-mu)^2/(2 sigma^2) and the B-R estimate is the
        // classic refined tail estimate of P(sum of N Gaussians > Nc),
        // which must sit within a small factor of the exact Q-value.
        let stats = ar1(0.9, 100);
        let n = 30;
        let c = 538.0;
        let exact = normal_sf((c - 500.0) * (n as f64 / 5000.0).sqrt());
        let br = bahadur_rao_bop(&stats, c, 0.0, n);
        assert!(
            br / exact > 0.5 && br / exact < 2.0,
            "B-R {br:e} vs exact Gaussian tail {exact:e}"
        );
    }

    #[test]
    fn bop_decreases_with_buffer_and_n() {
        let stats = ar1(0.9, 4000);
        let b1 = bahadur_rao_bop(&stats, 538.0, 50.0, 30);
        let b2 = bahadur_rao_bop(&stats, 538.0, 100.0, 30);
        let b3 = bahadur_rao_bop(&stats, 538.0, 100.0, 60);
        assert!(b2 < b1, "more buffer, less loss");
        assert!(b3 < b2, "more sources at same per-source point, less loss");
    }

    #[test]
    fn bahadur_rao_tighter_than_large_n() {
        // Fig 10: B-R sits about an order of magnitude below large-N.
        let stats = ar1(0.975, 8000);
        let c = 538.0;
        let n = 30;
        for &b in &[20.0, 60.0, 120.0] {
            let br = bahadur_rao_bop(&stats, c, b, n);
            let ln = large_n_bop(&stats, c, b, n);
            assert!(br < ln, "B-R {br:e} must be below large-N {ln:e}");
            let gap = ln / br;
            assert!(
                gap > 3.0 && gap < 100.0,
                "prefactor gap should be order-of-magnitude: {gap}"
            );
        }
    }

    #[test]
    fn stronger_correlation_slower_decay() {
        // Fig 5(b): larger `a` (here phi) means flatter BOP curve.
        let c = 538.0;
        let n = 30;
        let b = 120.0;
        let weak = bahadur_rao_bop(&ar1(0.7, 4000), c, b, n);
        let strong = bahadur_rao_bop(&ar1(0.975, 4000), c, b, n);
        assert!(
            strong > 30.0 * weak,
            "phi=0.975 BOP {strong:e} should dwarf phi=0.7 BOP {weak:e}"
        );
    }

    #[test]
    fn curve_is_monotone_and_annotated() {
        let stats = ar1(0.9, 4000);
        let buffers: Vec<f64> = (0..20).map(|i| i as f64 * 10.0).collect();
        let curve = bop_curve(&stats, 538.0, 30, &buffers, 0.04, Flavor::BahadurRao);
        assert_eq!(curve.len(), 20);
        for w in curve.windows(2) {
            assert!(w[1].bop <= w[0].bop, "BOP must fall with buffer");
            assert!(w[1].cts.m_star >= w[0].cts.m_star, "CTS non-decreasing");
            assert!(w[1].buffer_ms > w[0].buffer_ms);
        }
        // Buffer unit conversion: b = c cells -> exactly Ts msec of delay.
        let ms = buffer_delay_ms(538.0, 538.0, 0.04);
        assert!((ms - 40.0).abs() < 1e-12);
        let back = buffer_from_delay_ms(ms, 538.0, 0.04);
        assert!((back - 538.0).abs() < 1e-9);
    }

    #[test]
    fn probabilities_clamped_to_unit_interval() {
        // Absurdly generous operating point: estimate saturates at 1.
        let stats = ar1(0.99, 100);
        let p = bahadur_rao_bop(&stats, 500.5, 0.0, 1);
        assert!(p <= 1.0 && p > 0.1);
    }
}

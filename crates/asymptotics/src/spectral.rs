//! Input power spectrum and the time-scale/frequency correspondence.
//!
//! The paper's §6.2 links the Critical Time Scale to the *cutoff frequency*
//! of Li & Hwang's spectral queueing analysis: a queue driven by an input
//! process responds like a low-pass filter, so only spectral content below
//! some ω_c influences the queue — the frequency-domain face of "only the
//! first m* correlations matter".
//!
//! This module provides the two sides of that correspondence:
//!
//! * [`power_spectrum`] — the input's power spectral density from its ACF
//!   (Wiener–Khinchin, truncated cosine sum with a Bartlett taper to keep
//!   the estimate non-negative);
//! * [`cts_cutoff_frequency`] — the frequency implied by a CTS value
//!   (`ω_c = π / m*` rad/frame: fluctuations slower than the critical
//!   window are what the loss estimate integrates over);
//! * [`spectral_mass_below`] — how much of the input's correlated power
//!   lies below a frequency, so tests can verify that LRD models
//!   concentrate enormous mass *below* any practical ω_c without that mass
//!   ever entering the loss estimate.

use crate::stats::SourceStats;

/// Power spectral density of the frame-size process at angular frequency
/// `w ∈ [0, π]` (radians/frame), from the ACF prefix with a Bartlett
/// (triangular) taper:
///
/// `S(ω) = σ²[1 + 2 Σ_k (1 − k/K) r(k) cos(ωk)] / (2π)`.
///
/// The taper makes this the expectation of a valid (non-negative) spectral
/// estimator; without it a truncated LRD ACF produces negative side lobes.
pub fn power_spectrum_at(stats: &SourceStats, w: f64) -> f64 {
    assert!((0.0..=std::f64::consts::PI + 1e-12).contains(&w), "bad frequency {w}");
    let k_max = stats.max_lag();
    let mut acc = 1.0;
    for k in 1..=k_max {
        let taper = 1.0 - k as f64 / (k_max + 1) as f64;
        acc += 2.0 * taper * stats.acf[k] * (w * k as f64).cos();
    }
    (stats.variance * acc / (2.0 * std::f64::consts::PI)).max(0.0)
}

/// Samples the PSD on a uniform grid of `points` frequencies over `(0, π]`.
pub fn power_spectrum(stats: &SourceStats, points: usize) -> Vec<(f64, f64)> {
    assert!(points >= 2, "need at least two grid points");
    (1..=points)
        .map(|i| {
            let w = std::f64::consts::PI * i as f64 / points as f64;
            (w, power_spectrum_at(stats, w))
        })
        .collect()
}

/// The cutoff frequency implied by a Critical Time Scale: `ω_c = π/m*`
/// rad/frame. Content below ω_c varies slower than the critical window and
/// is averaged into `V(m*)`; content above is noise the buffer rides out.
pub fn cts_cutoff_frequency(m_star: usize) -> f64 {
    assert!(m_star >= 1, "CTS is at least 1");
    std::f64::consts::PI / m_star as f64
}

/// Fraction of *correlated* spectral mass (total minus the white floor)
/// lying below frequency `w0`, estimated by trapezoidal integration on a
/// fine grid. Returns a value in `[0, 1]` (clamped against integration
/// noise); returns 0 for a white input (no correlated mass at all).
pub fn spectral_mass_below(stats: &SourceStats, w0: f64, grid: usize) -> f64 {
    assert!(w0 > 0.0 && w0 <= std::f64::consts::PI, "bad split {w0}");
    assert!(grid >= 16, "grid too coarse");
    let white = stats.variance / (2.0 * std::f64::consts::PI);
    let integrate = |lo: f64, hi: f64| -> f64 {
        let n = grid;
        let h = (hi - lo) / n as f64;
        let mut acc = 0.0;
        for i in 0..n {
            let a = lo + i as f64 * h;
            let b = a + h;
            let fa = (power_spectrum_at(stats, a.max(1e-9)) - white).max(0.0);
            let fb = (power_spectrum_at(stats, b) - white).max(0.0);
            acc += 0.5 * (fa + fb) * h;
        }
        acc
    };
    let below = integrate(0.0, w0);
    let total = below + integrate(w0, std::f64::consts::PI);
    if total <= 0.0 {
        0.0
    } else {
        (below / total).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ar1(phi: f64, lags: usize) -> SourceStats {
        SourceStats::new(
            500.0,
            5000.0,
            (0..=lags).map(|k| phi.powi(k as i32)).collect(),
        )
    }

    fn white() -> SourceStats {
        let mut acf = vec![0.0; 512];
        acf[0] = 1.0;
        SourceStats::new(500.0, 5000.0, acf)
    }

    #[test]
    fn white_spectrum_is_flat() {
        let s = white();
        let floor = 5000.0 / (2.0 * std::f64::consts::PI);
        for &(_, p) in &power_spectrum(&s, 32) {
            assert!((p - floor).abs() < 1e-9 * floor, "{p} vs {floor}");
        }
        assert_eq!(spectral_mass_below(&s, 0.5, 64), 0.0);
    }

    #[test]
    fn ar1_spectrum_matches_closed_form() {
        // S(w) = sigma^2 (1-phi^2) / (2 pi (1 + phi^2 - 2 phi cos w)).
        let phi: f64 = 0.6;
        let s = ar1(phi, 4096); // long prefix: taper bias negligible
        for &w in &[0.3, 1.0, 2.0, 3.0] {
            let got = power_spectrum_at(&s, w);
            let expect = 5000.0 * (1.0 - phi * phi)
                / (2.0 * std::f64::consts::PI * (1.0 + phi * phi - 2.0 * phi * w.cos()));
            assert!(
                (got / expect - 1.0).abs() < 0.02,
                "w={w}: {got} vs {expect}"
            );
        }
    }

    #[test]
    fn spectrum_is_nonnegative_even_for_lrd() {
        let s = SourceStats::new(
            500.0,
            5000.0,
            vbr_models::fbndp::exact_lrd_acf(0.9, 1.8, 4096),
        );
        for &(w, p) in &power_spectrum(&s, 64) {
            assert!(p >= 0.0, "negative PSD at {w}");
        }
    }

    #[test]
    fn lrd_concentrates_mass_at_low_frequency() {
        let lrd = SourceStats::new(
            500.0,
            5000.0,
            vbr_models::fbndp::exact_lrd_acf(0.9, 1.8, 4096),
        );
        let srd = ar1(0.67, 4096); // same lag-1 correlation as the LRD model
        let split = 0.05;
        let lrd_mass = spectral_mass_below(&lrd, split, 256);
        let srd_mass = spectral_mass_below(&srd, split, 256);
        assert!(
            lrd_mass > 2.0 * srd_mass,
            "LRD low-frequency mass {lrd_mass} vs SRD {srd_mass}"
        );
    }

    #[test]
    fn cts_cutoff_corresponds_to_small_buffer_story() {
        // At a small buffer the CTS is small => cutoff is high => almost all
        // of an LRD input's correlated mass lies BELOW the cutoff and yet
        // does not affect the loss — the frequency-domain phrasing of the
        // paper's conclusion.
        use crate::cts::critical_time_scale;
        let stats = SourceStats::new(
            500.0,
            5000.0,
            vbr_models::fbndp::exact_lrd_acf(0.9, 1.8, 16_384),
        );
        let cts = critical_time_scale(&stats, 538.0, 27.0); // ~2 ms/source
        let wc = cts_cutoff_frequency(cts.m_star);
        assert!(wc > 0.1, "small buffer => high cutoff, got {wc}");
        let mass_below = spectral_mass_below(&stats, wc, 256);
        assert!(
            mass_below > 0.5,
            "most correlated mass ({mass_below}) sits below the cutoff"
        );
    }

    #[test]
    fn cutoff_monotone_in_cts() {
        assert!(cts_cutoff_frequency(1) > cts_cutoff_frequency(10));
        assert!((cts_cutoff_frequency(1) - std::f64::consts::PI).abs() < 1e-12);
    }
}

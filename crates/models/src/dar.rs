//! The DAR(p) process of Jacobs & Lewis — the paper's Markov / SRD model.
//!
//! `S_n = V_n · S_{n−A_n} + (1 − V_n) · ε_n`, where `V_n ~ Bernoulli(ρ)`,
//! `A_n` picks a lag in `{1..p}` with probabilities `a_1..a_p`, and `ε_n` is
//! i.i.d. with the desired marginal. The construction's appeal — and the
//! reason the paper leans on it — is that the marginal distribution and the
//! correlation structure are decoupled: the stationary marginal is exactly
//! the distribution of `ε`, while `(ρ, a)` alone set the ACF through the
//! AR(p)-type Yule–Walker recursion
//!
//! `r(k) = ρ · Σ_{i=1..p} a_i · r(|k − i|)`,  `k ≥ 1`, `r(0) = 1`.
//!
//! A DAR(1) therefore has `r(k) = ρᵏ` — pure geometric decay, Hurst ½.

use crate::error::ModelError;
use crate::marginal::Marginal;
use crate::traits::FrameProcess;
use rand::{Rng, RngCore};
use std::collections::VecDeque;
use vbr_stats::dist::AliasTable;

/// Parameters of a DAR(p) process.
#[derive(Debug, Clone)]
pub struct DarParams {
    /// Probability ρ of repeating a past value (for DAR(1), the lag-1
    /// autocorrelation).
    pub rho: f64,
    /// Lag-selection probabilities `a_1..a_p`; must sum to 1.
    pub lag_probs: Vec<f64>,
    /// Frame-size marginal distribution.
    pub marginal: Marginal,
}

impl DarParams {
    /// DAR(1) shorthand.
    pub fn dar1(rho: f64, marginal: Marginal) -> Self {
        Self {
            rho,
            lag_probs: vec![1.0],
            marginal,
        }
    }

    /// Order p of the process.
    pub fn order(&self) -> usize {
        self.lag_probs.len()
    }

    /// Non-panicking parameter validation.
    pub fn try_validate(&self) -> Result<(), ModelError> {
        let invalid = |message: String| ModelError::new("DAR(p)", message);
        if !(0.0..1.0).contains(&self.rho) {
            return Err(invalid(format!("rho must be in [0, 1), got {}", self.rho)));
        }
        if self.lag_probs.is_empty() {
            return Err(invalid("DAR(p) needs p >= 1".into()));
        }
        let sum: f64 = self.lag_probs.iter().sum();
        if (sum - 1.0).abs() >= 1e-9 {
            return Err(invalid(format!(
                "lag probabilities must sum to 1, got {sum}"
            )));
        }
        if let Some(&a) = self
            .lag_probs
            .iter()
            .find(|a| !(0.0..=1.0).contains(*a))
        {
            return Err(invalid(format!("invalid lag probability {a}")));
        }
        self.marginal.try_validate()
    }
}

/// A running DAR(p) sample-path generator with analytic statistics.
#[derive(Debug, Clone)]
pub struct DarProcess {
    params: DarParams,
    alias: AliasTable,
    /// Last p values, most recent at the back.
    history: VecDeque<f64>,
    initialized: bool,
}

impl DarProcess {
    /// Builds a DAR(p) process. History is lazily initialized with i.i.d.
    /// draws from the marginal on first use (the marginal *is* the stationary
    /// distribution, so the path is stationary from the first frame; joint
    /// lag correlations settle within a few multiples of p frames and
    /// [`FrameProcess::reset`] re-draws the history for each replication).
    ///
    /// # Panics
    /// Panics on invalid parameters (ρ ∉ [0,1), probabilities not summing
    /// to 1, invalid marginal); see [`try_new`](Self::try_new).
    pub fn new(params: DarParams) -> Self {
        match Self::try_new(params) {
            Ok(p) => p,
            Err(e) => panic!("{e}"),
        }
    }

    /// Validated constructor.
    pub fn try_new(params: DarParams) -> Result<Self, ModelError> {
        params.try_validate()?;
        let alias = AliasTable::new(&params.lag_probs);
        let p = params.order();
        Ok(Self {
            params,
            alias,
            history: VecDeque::with_capacity(p),
            initialized: false,
        })
    }

    /// The parameters this process was built with.
    pub fn params(&self) -> &DarParams {
        &self.params
    }

    fn ensure_init(&mut self, rng: &mut dyn RngCore) {
        if !self.initialized {
            self.history.clear();
            for _ in 0..self.params.order() {
                self.history.push_back(self.params.marginal.sample(rng));
            }
            self.initialized = true;
        }
    }

    /// Analytic ACF via the Yule–Walker-type recursion; exposed as an
    /// associated function so the matching code can evaluate candidate
    /// parameter sets without constructing a process.
    ///
    /// The recursion `r(k) = Σᵢ bᵢ r(|k−i|)` (with `bᵢ = ρ aᵢ`) is *implicit*
    /// for the first p lags — e.g. for p = 3, `r(1)` depends on `r(2)` — so
    /// lags `1..p` are solved as a linear system first, then lags beyond p
    /// follow by forward recursion.
    pub fn acf_from_params(rho: f64, lag_probs: &[f64], max_lag: usize) -> Vec<f64> {
        let p = lag_probs.len();
        let b: Vec<f64> = lag_probs.iter().map(|&a| rho * a).collect();
        let mut r = Vec::with_capacity(max_lag + 1);
        r.push(1.0);
        if max_lag == 0 {
            return r;
        }

        if p == 1 {
            for k in 1..=max_lag {
                r.push(b[0] * r[k - 1]);
            }
            return r;
        }

        // Joint solve of r(1..p): for each k in 1..p,
        //   r(k) − Σ_{i≠k} b_i r(|k−i|) = b_k · r(0).
        let mut mat = vec![0.0; p * p];
        let mut rhs = vec![0.0; p];
        for k in 1..=p {
            mat[(k - 1) * p + (k - 1)] += 1.0;
            for i in 1..=p {
                if i == k {
                    continue;
                }
                let j = k.abs_diff(i); // 1..=p-1
                mat[(k - 1) * p + (j - 1)] -= b[i - 1];
            }
            rhs[k - 1] = b[k - 1];
        }
        let head = vbr_stats::linalg::solve_dense(&mat, &rhs, p)
            .expect("DAR(p) Yule-Walker head system is nonsingular for rho < 1");
        r.extend(head.iter().take(max_lag));

        for k in (p + 1)..=max_lag {
            let val: f64 = (1..=p).map(|i| b[i - 1] * r[k - i]).sum();
            r.push(val);
        }
        r
    }
}

impl FrameProcess for DarProcess {
    fn next_frame(&mut self, rng: &mut dyn RngCore) -> f64 {
        self.ensure_init(rng);
        let value = if rng.gen::<f64>() < self.params.rho {
            // Repeat the value from A_n frames ago: alias sample i maps to
            // lag i+1, i.e. history index (p - 1 - i) from the back.
            let lag = self.alias.sample(rng) + 1;
            self.history[self.history.len() - lag]
        } else {
            self.params.marginal.sample(rng)
        };
        self.history.pop_front();
        self.history.push_back(value);
        value
    }

    fn fill_frames(&mut self, out: &mut [f64], rng: &mut dyn RngCore) {
        if out.is_empty() {
            return;
        }
        // Same draws as the scalar loop; the win is hoisting the lazy-init
        // check and the parameter loads out of the per-frame path.
        self.ensure_init(rng);
        let rho = self.params.rho;
        let p = self.history.len();
        for slot in out.iter_mut() {
            let value = if rng.gen::<f64>() < rho {
                let lag = self.alias.sample(rng) + 1;
                self.history[p - lag]
            } else {
                self.params.marginal.sample(rng)
            };
            self.history.pop_front();
            self.history.push_back(value);
            *slot = value;
        }
    }

    fn mean(&self) -> f64 {
        self.params.marginal.mean()
    }

    fn variance(&self) -> f64 {
        self.params.marginal.variance()
    }

    fn autocorrelations(&self, max_lag: usize) -> Vec<f64> {
        Self::acf_from_params(self.params.rho, &self.params.lag_probs, max_lag)
    }

    fn reset(&mut self, rng: &mut dyn RngCore) {
        self.initialized = false;
        self.ensure_init(rng);
    }

    fn boxed_clone(&self) -> Box<dyn FrameProcess> {
        Box::new(self.clone())
    }

    fn label(&self) -> String {
        format!("DAR({})", self.params.order())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::test_support::check_analytic_consistency;
    use vbr_stats::rng::Xoshiro256PlusPlus;

    #[test]
    fn dar1_acf_is_geometric() {
        let r = DarProcess::acf_from_params(0.8, &[1.0], 6);
        for (k, &v) in r.iter().enumerate() {
            assert!((v - 0.8_f64.powi(k as i32)).abs() < 1e-12, "lag {k}");
        }
    }

    #[test]
    fn dar2_acf_satisfies_recursion() {
        let rho = 0.87;
        let a = [0.7, 0.3];
        let r = DarProcess::acf_from_params(rho, &a, 20);
        // r(1) = rho (a1 r(0) + a2 r(1)) => r(1) = rho a1/(1 - rho a2)
        let expect_r1 = rho * a[0] / (1.0 - rho * a[1]);
        assert!((r[1] - expect_r1).abs() < 1e-12, "r1 {} vs {expect_r1}", r[1]);
        for k in 2..=20 {
            let expect = rho * (a[0] * r[k - 1] + a[1] * r[k - 2]);
            assert!((r[k] - expect).abs() < 1e-12, "lag {k}");
        }
    }

    #[test]
    fn acf_stays_in_unit_interval_and_decays() {
        let r = DarProcess::acf_from_params(0.99, &[0.5, 0.3, 0.2], 500);
        for (k, &v) in r.iter().enumerate().skip(1) {
            assert!(v > 0.0 && v < 1.0, "lag {k}: {v}");
        }
        assert!(r[500] < r[1], "must decay overall");
    }

    #[test]
    fn sample_path_matches_analytics_dar1() {
        let mut p = DarProcess::new(DarParams::dar1(0.7, Marginal::paper_gaussian()));
        check_analytic_consistency(&mut p, 71, 400_000, 5, 1.5, 0.05, 0.02);
    }

    #[test]
    fn sample_path_matches_analytics_dar3() {
        let mut p = DarProcess::new(DarParams {
            rho: 0.89,
            lag_probs: vec![0.63, 0.18, 0.19],
            marginal: Marginal::paper_gaussian(),
        });
        check_analytic_consistency(&mut p, 72, 400_000, 8, 2.5, 0.08, 0.03);
    }

    #[test]
    fn marginal_preserved_under_high_rho() {
        // Strong correlation must not distort the marginal: mean/var of the
        // path equal the marginal's, only mixing is slower.
        let mut p = DarProcess::new(DarParams::dar1(0.975, Marginal::paper_gaussian()));
        let mut rng = Xoshiro256PlusPlus::from_seed_u64(73);
        let mut m = vbr_stats::Moments::new();
        for _ in 0..2_000_000 {
            m.push(p.next_frame(&mut rng));
        }
        assert!((m.mean() - 500.0).abs() < 3.0, "mean {}", m.mean());
        assert!(
            (m.variance() - 5000.0).abs() < 0.1 * 5000.0,
            "var {}",
            m.variance()
        );
    }

    #[test]
    fn reset_gives_independent_realizations() {
        let mut p = DarProcess::new(DarParams::dar1(0.9, Marginal::paper_gaussian()));
        let mut rng = Xoshiro256PlusPlus::from_seed_u64(74);
        let a: Vec<f64> = (0..50).map(|_| p.next_frame(&mut rng)).collect();
        p.reset(&mut rng);
        let b: Vec<f64> = (0..50).map(|_| p.next_frame(&mut rng)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn deterministic_given_same_seed() {
        let make = || DarProcess::new(DarParams::dar1(0.9, Marginal::paper_gaussian()));
        let mut p1 = make();
        let mut p2 = make();
        let mut r1 = Xoshiro256PlusPlus::from_seed_u64(75);
        let mut r2 = Xoshiro256PlusPlus::from_seed_u64(75);
        for _ in 0..100 {
            assert_eq!(p1.next_frame(&mut r1), p2.next_frame(&mut r2));
        }
    }

    #[test]
    fn zero_rho_is_iid() {
        let mut p = DarProcess::new(DarParams::dar1(0.0, Marginal::paper_gaussian()));
        let r = p.autocorrelations(5);
        for &v in &r[1..] {
            assert_eq!(v, 0.0);
        }
        check_analytic_consistency(&mut p, 76, 100_000, 3, 1.5, 0.05, 0.02);
    }

    #[test]
    #[should_panic]
    fn rejects_rho_one() {
        DarProcess::new(DarParams::dar1(1.0, Marginal::paper_gaussian()));
    }

    #[test]
    #[should_panic]
    fn rejects_bad_lag_probs() {
        DarProcess::new(DarParams {
            rho: 0.5,
            lag_probs: vec![0.5, 0.4],
            marginal: Marginal::paper_gaussian(),
        });
    }

    #[test]
    fn label_shows_order() {
        let p = DarProcess::new(DarParams {
            rho: 0.5,
            lag_probs: vec![0.6, 0.4],
            marginal: Marginal::paper_gaussian(),
        });
        assert_eq!(p.label(), "DAR(2)");
    }
}

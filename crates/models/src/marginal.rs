//! Frame-size marginal distributions.
//!
//! The paper fixes the marginal to a Gaussian — "the lightest tail" — so that
//! differences in queueing behaviour come purely from autocorrelation
//! structure. §6.1 then argues the conclusions survive heavier-tailed
//! marginals (Heyman & Lakshman verified the negative-binomial case), so we
//! carry both, plus a deterministic degenerate marginal for tests.

use crate::error::ModelError;
use rand::RngCore;
use vbr_stats::dist::{NegativeBinomial, Normal};

/// A frame-size marginal distribution: what a single frame's size looks like
/// ignoring all temporal correlation.
#[derive(Debug, Clone)]
pub enum Marginal {
    /// Gaussian `N(mean, sd²)` — the paper's choice.
    Gaussian {
        /// Mean frame size (cells).
        mean: f64,
        /// Standard deviation of frame size (cells).
        sd: f64,
    },
    /// Negative binomial matched to a mean and variance (variance > mean);
    /// the heavier-tailed alternative of Heyman & Lakshman.
    NegativeBinomial {
        /// Mean frame size (cells).
        mean: f64,
        /// Frame-size variance (cells²); must exceed the mean.
        variance: f64,
    },
    /// Every frame has exactly this size; used in tests and as a CBR anchor.
    Deterministic {
        /// The constant frame size (cells).
        value: f64,
    },
}

impl Marginal {
    /// Gaussian marginal with the paper's canonical parameters:
    /// mean 500 cells/frame, variance 5000 (cells/frame)².
    pub fn paper_gaussian() -> Self {
        Marginal::Gaussian {
            mean: 500.0,
            sd: 5000.0_f64.sqrt(),
        }
    }

    /// Distribution mean.
    pub fn mean(&self) -> f64 {
        match *self {
            Marginal::Gaussian { mean, .. } => mean,
            Marginal::NegativeBinomial { mean, .. } => mean,
            Marginal::Deterministic { value } => value,
        }
    }

    /// Distribution variance.
    pub fn variance(&self) -> f64 {
        match *self {
            Marginal::Gaussian { sd, .. } => sd * sd,
            Marginal::NegativeBinomial { variance, .. } => variance,
            Marginal::Deterministic { .. } => 0.0,
        }
    }

    /// Draws one frame size.
    pub fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        match *self {
            Marginal::Gaussian { mean, sd } => Normal::new(mean, sd).sample(rng),
            Marginal::NegativeBinomial { mean, variance } => {
                NegativeBinomial::from_mean_variance(mean, variance).sample(rng) as f64
            }
            Marginal::Deterministic { value } => value,
        }
    }

    /// Validates parameters, panicking with a clear message if invalid.
    /// Called by model constructors so bad parameters fail at build time,
    /// not mid-simulation.
    pub fn validate(&self) {
        if let Err(e) = self.try_validate() {
            panic!("{e}");
        }
    }

    /// Non-panicking validation — rejects non-finite moments, a negative
    /// Gaussian sd, or a negative-binomial variance not exceeding its mean.
    pub fn try_validate(&self) -> Result<(), ModelError> {
        let invalid = |message: String| ModelError::new("Marginal", message);
        match *self {
            Marginal::Gaussian { mean, sd } => {
                if !mean.is_finite() {
                    return Err(invalid(format!("invalid Gaussian mean {mean}")));
                }
                if !(sd >= 0.0 && sd.is_finite()) {
                    return Err(invalid(format!("invalid Gaussian sd {sd}")));
                }
            }
            Marginal::NegativeBinomial { mean, variance } => {
                if !(variance > mean && mean > 0.0) {
                    return Err(invalid(format!(
                        "negative binomial needs variance {variance} > mean {mean} > 0"
                    )));
                }
            }
            Marginal::Deterministic { value } => {
                if !value.is_finite() {
                    return Err(invalid(format!("invalid deterministic value {value}")));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vbr_stats::rng::Xoshiro256PlusPlus;
    use vbr_stats::Moments;

    #[test]
    fn paper_gaussian_parameters() {
        let m = Marginal::paper_gaussian();
        assert_eq!(m.mean(), 500.0);
        assert!((m.variance() - 5000.0).abs() < 1e-9);
    }

    #[test]
    fn sampling_matches_declared_moments() {
        let mut rng = Xoshiro256PlusPlus::from_seed_u64(61);
        for marginal in [
            Marginal::paper_gaussian(),
            Marginal::NegativeBinomial {
                mean: 500.0,
                variance: 5000.0,
            },
        ] {
            let mut acc = Moments::new();
            for _ in 0..120_000 {
                acc.push(marginal.sample(&mut rng));
            }
            assert!(
                (acc.mean() - marginal.mean()).abs() < 1.5,
                "mean {} vs {}",
                acc.mean(),
                marginal.mean()
            );
            assert!(
                (acc.variance() - marginal.variance()).abs() < 0.05 * marginal.variance(),
                "var {} vs {}",
                acc.variance(),
                marginal.variance()
            );
        }
    }

    #[test]
    fn deterministic_marginal() {
        let mut rng = Xoshiro256PlusPlus::from_seed_u64(62);
        let m = Marginal::Deterministic { value: 500.0 };
        assert_eq!(m.variance(), 0.0);
        for _ in 0..10 {
            assert_eq!(m.sample(&mut rng), 500.0);
        }
    }

    #[test]
    #[should_panic]
    fn validate_rejects_underdispersed_negbin() {
        Marginal::NegativeBinomial {
            mean: 500.0,
            variance: 100.0,
        }
        .validate();
    }
}

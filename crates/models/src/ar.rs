//! Gaussian AR(1) — the short-range-dependent baseline of Addie et al. and
//! Courcoubetis & Weber (paper footnote 4 and §4.2: the CTS of a Gaussian
//! AR(1) grows like `b/(c−μ)`).
//!
//! `X_n = μ + φ(X_{n−1} − μ) + √(1−φ²)·σ·ε_n`, `ε ~ N(0,1)`, started in the
//! stationary distribution `N(μ, σ²)`; ACF is exactly `φᵏ`.

use crate::error::ModelError;
use crate::traits::FrameProcess;
use rand::RngCore;
use vbr_stats::dist::Normal;

/// Gaussian AR(1) frame-size process.
#[derive(Debug, Clone)]
pub struct GaussianAr1 {
    mean: f64,
    sd: f64,
    phi: f64,
    state: f64,
    initialized: bool,
}

impl GaussianAr1 {
    /// Creates a stationary Gaussian AR(1) with the given marginal moments
    /// and lag-1 correlation `phi ∈ (−1, 1)`.
    ///
    /// # Panics
    /// Panics on out-of-range parameters; see [`try_new`](Self::try_new).
    pub fn new(mean: f64, sd: f64, phi: f64) -> Self {
        match Self::try_new(mean, sd, phi) {
            Ok(p) => p,
            Err(e) => panic!("{e}"),
        }
    }

    /// Validated constructor: requires finite `mean`, `sd > 0` and
    /// `phi ∈ (−1, 1)`.
    pub fn try_new(mean: f64, sd: f64, phi: f64) -> Result<Self, ModelError> {
        let invalid = |message: String| ModelError::new("GaussianAr1", message);
        if !(sd > 0.0 && sd.is_finite()) {
            return Err(invalid(format!("invalid sd {sd}")));
        }
        if !(phi > -1.0 && phi < 1.0) {
            return Err(invalid(format!("phi must be in (-1,1), got {phi}")));
        }
        if !mean.is_finite() {
            return Err(invalid(format!("invalid mean {mean}")));
        }
        Ok(Self {
            mean,
            sd,
            phi,
            state: 0.0,
            initialized: false,
        })
    }

    /// The lag-1 correlation φ.
    pub fn phi(&self) -> f64 {
        self.phi
    }
}

impl FrameProcess for GaussianAr1 {
    fn next_frame(&mut self, rng: &mut dyn RngCore) -> f64 {
        let mut nrm = Normal::new(0.0, 1.0);
        if !self.initialized {
            self.state = self.mean + self.sd * nrm.standard(rng);
            self.initialized = true;
            return self.state;
        }
        let innovation_sd = self.sd * (1.0 - self.phi * self.phi).sqrt();
        self.state = self.mean + self.phi * (self.state - self.mean)
            + innovation_sd * nrm.standard(rng);
        self.state
    }

    fn fill_frames(&mut self, out: &mut [f64], rng: &mut dyn RngCore) {
        if out.is_empty() {
            return;
        }
        let mut filled = 0;
        if !self.initialized {
            out[0] = self.next_frame(rng);
            filled = 1;
        }
        let (mean, phi) = (self.mean, self.phi);
        let innovation_sd = self.sd * (1.0 - phi * phi).sqrt();
        let mut state = self.state;
        for slot in out[filled..].iter_mut() {
            // A fresh sampler per frame, like the scalar path: its polar
            // spare deviate is discarded, so hoisting the sampler here
            // would change the draw sequence.
            let mut nrm = Normal::new(0.0, 1.0);
            state = mean + phi * (state - mean) + innovation_sd * nrm.standard(rng);
            *slot = state;
        }
        self.state = state;
    }

    fn mean(&self) -> f64 {
        self.mean
    }

    fn variance(&self) -> f64 {
        self.sd * self.sd
    }

    fn autocorrelations(&self, max_lag: usize) -> Vec<f64> {
        (0..=max_lag).map(|k| self.phi.powi(k as i32)).collect()
    }

    fn reset(&mut self, _rng: &mut dyn RngCore) {
        self.initialized = false;
    }

    fn boxed_clone(&self) -> Box<dyn FrameProcess> {
        Box::new(self.clone())
    }

    fn label(&self) -> String {
        format!("AR(1) phi={}", self.phi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::test_support::check_analytic_consistency;

    #[test]
    fn matches_analytics() {
        let mut p = GaussianAr1::new(500.0, 5000.0_f64.sqrt(), 0.8);
        check_analytic_consistency(&mut p, 111, 400_000, 6, 2.0, 0.05, 0.02);
    }

    #[test]
    fn negative_phi_allowed() {
        let mut p = GaussianAr1::new(0.0, 1.0, -0.5);
        check_analytic_consistency(&mut p, 112, 200_000, 4, 0.02, 0.05, 0.02);
        let r = p.autocorrelations(3);
        assert!(r[1] < 0.0 && r[2] > 0.0 && r[3] < 0.0);
    }

    #[test]
    #[should_panic]
    fn rejects_unit_root() {
        GaussianAr1::new(0.0, 1.0, 1.0);
    }
}

//! # vbr-models
//!
//! VBR video traffic source models — the stochastic processes the paper
//! builds its whole argument from. Every model emits a stationary sequence of
//! *frame sizes* (cells per 40 ms video frame) and also knows its own
//! analytic first- and second-order statistics (mean, variance,
//! autocorrelation function), because the large-deviations analysis consumes
//! the analytic ACF while the simulator consumes the sample path.
//!
//! Model zoo:
//!
//! * [`dar::DarProcess`] — the DAR(p) discrete autoregressive Markov chain of
//!   Jacobs & Lewis, the paper's short-range-dependent workhorse. Its ACF
//!   obeys the Yule–Walker recursion `r(k) = ρ Σ aᵢ r(k−i)`; a DAR(1) decays
//!   geometrically as `ρᵏ`.
//! * [`onoff::FractalOnOff`] — a renewal ON/OFF process with the paper's
//!   heavy-tailed sojourn density (exponential body, Pareto tail, exponent
//!   γ = 2 − α), started in equilibrium via the residual-life distribution.
//! * [`fbndp::Fbndp`] — the Fractal-Binomial-Noise-Driven Poisson process:
//!   M i.i.d. fractal ON/OFF processes summed into a binomial rate that
//!   modulates a Poisson process. Exact long-range dependent, with
//!   H = (α+1)/2 and closed-form frame-count statistics.
//! * [`superpose::Superposition`] — sum of two independent frame processes;
//!   builds the paper's `Z^a` and `V^v` (FBNDP + DAR(1)) composites.
//! * [`ar::GaussianAr1`] — the Gaussian AR(1) baseline (Addie et al.).
//! * [`iid::IidProcess`] — white (lag-independent) frames, the H = ½ anchor.
//! * [`fgn::FgnProcess`] — exact fractional Gaussian noise by Davies–Harte
//!   circulant embedding, the canonical exact-LRD reference process.
//! * [`farima::FarimaProcess`] — F-ARIMA(0,d,0), the paper's §2 example of
//!   an *asymptotic* LRD process (closed-form ACF, circulant generation).
//! * [`markov_onoff::MarkovOnOff`] — the exponential-sojourn twin of the
//!   FBNDP (classical Markov ATM source): same construction, same first two
//!   moments, geometric ACF — the control case proving the LRD comes from
//!   the sojourn tail.
//! * [`mpeg::MpegGopModel`] — a GOP-structured MPEG source (extension; the
//!   paper's §6.2 names MPEG CTS analysis as ongoing work).
//! * [`clegg::CleggProcess`] — Clegg–Dodson Markov-chain LRD generator:
//!   superposed binary chains with discrete-Pareto (Zipf-tail) sojourns,
//!   H = (3 − γ)/2, exact renewal-parity ACF — a *Markov* construction that
//!   is nonetheless LRD, probing whether the paper's "myths" depend on how
//!   the LRD is produced.
//! * [`mwm::MwmProcess`] — the Riedi et al. multifractal wavelet model: a
//!   symmetric-beta Haar cascade, non-negative by construction, with the
//!   octave energy ratio pinned to 2^{2H−1} at every scale.
//!
//! All models implement [`traits::FrameProcess`], are seedable through the
//! deterministic RNG from `vbr-stats`, and are `Send + Clone`-able so the
//! replication harness can fan them out across threads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ar;
pub mod clegg;
pub mod dar;
pub mod error;
pub mod farima;
pub mod fbndp;
pub mod fgn;
pub mod iid;
pub mod marginal;
pub mod markov_onoff;
pub mod mpeg;
pub mod mwm;
pub mod onoff;
pub mod superpose;
pub mod traits;

pub use ar::GaussianAr1;
pub use clegg::{CleggParams, CleggProcess};
pub use dar::{DarParams, DarProcess};
pub use error::ModelError;
pub use farima::{farima_acf, FarimaProcess};
pub use fbndp::{Fbndp, FbndpParams};
pub use fgn::{CirculantGenerator, CirculantScratch, FgnGenerator, FgnProcess};
pub use iid::IidProcess;
pub use marginal::Marginal;
pub use markov_onoff::{MarkovOnOff, MarkovOnOffParams};
pub use mpeg::{GopPattern, MpegGopModel};
pub use mwm::{MwmParams, MwmProcess};
pub use onoff::{FractalOnOff, HeavyTailedSojourn};
pub use superpose::Superposition;
pub use traits::FrameProcess;

//! Superposition of two independent frame processes.
//!
//! The paper's composite models `Z^a` and `V^v` are `FBNDP + DAR(1)`: the
//! DAR(1) component contributes geometric (short-term) correlation, the
//! FBNDP component power-law (long-term) correlation. For independent
//! components X and Y the sum has
//!
//! ```text
//! μ    = μ_X + μ_Y
//! σ²   = σ²_X + σ²_Y
//! r(k) = [σ²_X·r_X(k) + σ²_Y·r_Y(k)] / (σ²_X + σ²_Y)
//!      = v/(v+1)·r_X(k) + 1/(v+1)·r_Y(k),   v ≡ σ²_X/σ²_Y
//! ```
//!
//! — the paper's Eq. (5). The existence of a finite k₀ with
//! `r_X(k) > r_Y(k)` for all `k > k₀` makes the sum an *asymptotic* LRD
//! process regardless of the mixing weight.

use crate::traits::FrameProcess;
use rand::RngCore;

/// Sum of two independent frame processes.
pub struct Superposition {
    x: Box<dyn FrameProcess>,
    y: Box<dyn FrameProcess>,
    label: String,
}

impl Superposition {
    /// Builds `x + y` with a display label (e.g. `"Z^0.975"`).
    pub fn new(x: Box<dyn FrameProcess>, y: Box<dyn FrameProcess>, label: impl Into<String>) -> Self {
        Self {
            x,
            y,
            label: label.into(),
        }
    }

    /// Variance ratio `v = σ²_X / σ²_Y` — the paper's long-term-correlation
    /// weight knob.
    pub fn variance_ratio(&self) -> f64 {
        self.x.variance() / self.y.variance()
    }

    /// The first (X) component.
    pub fn component_x(&self) -> &dyn FrameProcess {
        self.x.as_ref()
    }

    /// The second (Y) component.
    pub fn component_y(&self) -> &dyn FrameProcess {
        self.y.as_ref()
    }
}

impl Clone for Superposition {
    fn clone(&self) -> Self {
        Self {
            x: self.x.boxed_clone(),
            y: self.y.boxed_clone(),
            label: self.label.clone(),
        }
    }
}

impl FrameProcess for Superposition {
    fn next_frame(&mut self, rng: &mut dyn RngCore) -> f64 {
        self.x.next_frame(rng) + self.y.next_frame(rng)
    }

    fn fill_frames(&mut self, out: &mut [f64], rng: &mut dyn RngCore) {
        // Both components draw from the same shared RNG stream, strictly
        // interleaved x-then-y per frame. Letting each child fill a whole
        // scratch slice would reorder those draws and break bit-identity
        // with the scalar path, so the batch form keeps the per-frame
        // interleave and only removes the outer `Superposition::next_frame`
        // dispatch hop.
        for slot in out.iter_mut() {
            *slot = self.x.next_frame(rng) + self.y.next_frame(rng);
        }
    }

    fn mean(&self) -> f64 {
        self.x.mean() + self.y.mean()
    }

    fn variance(&self) -> f64 {
        self.x.variance() + self.y.variance()
    }

    fn autocorrelations(&self, max_lag: usize) -> Vec<f64> {
        let vx = self.x.variance();
        let vy = self.y.variance();
        let total = vx + vy;
        assert!(total > 0.0, "superposition of two degenerate processes");
        let rx = self.x.autocorrelations(max_lag);
        let ry = self.y.autocorrelations(max_lag);
        rx.iter()
            .zip(&ry)
            .map(|(&a, &b)| (vx * a + vy * b) / total)
            .collect()
    }

    fn reset(&mut self, rng: &mut dyn RngCore) {
        self.x.reset(rng);
        self.y.reset(rng);
    }

    fn boxed_clone(&self) -> Box<dyn FrameProcess> {
        Box::new(self.clone())
    }

    fn label(&self) -> String {
        self.label.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dar::{DarParams, DarProcess};
    use crate::fbndp::{Fbndp, FbndpParams};
    use crate::marginal::Marginal;
    use crate::traits::test_support::check_analytic_consistency;

    /// The paper's Z^0.7: FBNDP(mean 250, var 2500, alpha .8, M 15)
    /// + DAR(1)(rho .7, Gaussian mean 250 var 2500).
    fn z_model(a: f64) -> Superposition {
        let x = Fbndp::new(FbndpParams::from_frame_targets(250.0, 2500.0, 0.8, 15, 0.04));
        let y = DarProcess::new(DarParams::dar1(
            a,
            Marginal::Gaussian {
                mean: 250.0,
                sd: 50.0,
            },
        ));
        Superposition::new(Box::new(x), Box::new(y), format!("Z^{a}"))
    }

    #[test]
    fn combined_moments() {
        let z = z_model(0.7);
        assert!((z.mean() - 500.0).abs() < 1e-9);
        assert!((z.variance() - 5000.0).abs() < 1e-6);
        assert!((z.variance_ratio() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn lag1_matches_hand_computation() {
        // r(1) = 0.5 * w * 0.5∇²(1^{1.8}) + 0.5 * 0.7, w = Ts^α/(Ts^α+T0^α).
        let z = z_model(0.7);
        let r = z.autocorrelations(1);
        // From the paper's parameters: w = 0.9, inner = 0.74110 -> 0.66699.
        let expect = 0.5 * 0.666_99 + 0.5 * 0.7;
        assert!((r[1] - expect).abs() < 1e-3, "r1 {} vs {expect}", r[1]);
    }

    #[test]
    fn asymptotic_lrd_crossover() {
        // Short lags are dominated by the DAR(1) part for a = 0.975; long
        // lags by the FBNDP power law. Verify the geometric part dies and the
        // power law survives at lag 1000.
        let z = z_model(0.975);
        let r = z.autocorrelations(1000);
        let dar_part = 0.5 * 0.975_f64.powi(1000); // ~ 5e-12
        assert!(r[1000] > 1e-4, "power-law tail must survive: {}", r[1000]);
        assert!(dar_part < 1e-10);
    }

    #[test]
    fn path_matches_analytics() {
        let mut z = z_model(0.9);
        // LRD component makes the sample mean of a single path fluctuate
        // with sd ~ 14 cells at n = 3e5 (that slow convergence is the very
        // subject of the paper); tolerances are ~3 sigma.
        check_analytic_consistency(&mut z, 121, 300_000, 8, 42.0, 0.25, 0.09);
    }

    #[test]
    fn clone_preserves_label() {
        let z = z_model(0.99);
        assert_eq!(z.boxed_clone().label(), "Z^0.99");
    }
}

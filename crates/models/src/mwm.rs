//! Multifractal wavelet model (MWM) frame process.
//!
//! Riedi, Crouse, Ribeiro & Baraniuk's multifractal wavelet model builds a
//! non-negative LRD trace as a multiplicative cascade in the Haar domain:
//! start from a single coarse scaling coefficient, and at every level set
//! the wavelet (detail) coefficient to a random fraction of the local
//! scaling coefficient, `w_{j,k} = A_{j,k}·c_{j,k}` with `A_{j,k} ∈ (−1,1)`
//! drawn from a symmetric beta distribution. One inverse Haar step then
//! yields the two children `c_{j+1} = c_j·(1 ± A_{j,k})/√2 ≥ 0`, so the
//! synthesized block is non-negative by construction — unlike the Gaussian
//! models, which the paper's marginal can push below zero.
//!
//! The per-level multiplier variances `η_j = Var(A_j)` control the wavelet
//! energy decay. This implementation pins the octave-to-octave energy ratio
//! to the LRD value `2^{2H−1}` *exactly at every level* via the recursion
//! `η_{j+1} = η_j·2^{2−2H}/(1 + η_j)`, and solves for the root variance
//! `η_0` (monotone bisection) so the product `Π(1+η_j)` matches the target
//! marginal variance. Mean and variance are therefore matched exactly and
//! the wavelet logscale diagram has slope `2H − 1` by construction.
//!
//! Synthesis goes through [`vbr_stats::wavelet::haar_synthesize_level`] one
//! level at a time — the cascade needs each level's scaling coefficients to
//! scale its multipliers — and a whole block of `2^J` frames is generated
//! into an internal buffer, exactly like the Davies–Harte FGN process. The
//! model is first-order stationary (every frame has the same mean and
//! variance) but, like every block cascade, only cyclo-stationary in its
//! correlations; [`autocorrelations`](crate::FrameProcess::autocorrelations)
//! returns the exact position-averaged ACF, which is what a sample ACF over
//! a long path estimates.

use crate::error::ModelError;
use crate::traits::FrameProcess;
use rand::RngCore;
use vbr_stats::dist::Gamma;
use vbr_stats::wavelet::haar_synthesize_level;

/// Parameters of the [`MwmProcess`] multifractal wavelet source.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MwmParams {
    /// Target marginal mean (cells/frame), strictly positive — the cascade
    /// generates non-negative traffic around a positive rate.
    pub mean: f64,
    /// Target marginal standard deviation, strictly positive.
    pub sd: f64,
    /// Target Hurst parameter, strictly inside `(0.5, 1)`.
    pub h: f64,
    /// Cascade depth `J ≥ 1`: each synthesis block is `2^J` frames. An
    /// empty cascade (`J = 0`) is rejected — it would be a constant source.
    pub levels: usize,
}

/// Deepest admissible cascade (`2^26` frames per block ≈ 0.5 GiB buffer).
const MAX_LEVELS: usize = 26;

impl MwmParams {
    /// Validates the parameter set without constructing the process.
    pub fn try_validate(&self) -> Result<(), ModelError> {
        let err = |msg: String| Err(ModelError::new("MWM", msg));
        if !self.mean.is_finite() || self.mean <= 0.0 {
            return err(format!("mean must be positive, got {}", self.mean));
        }
        if !self.sd.is_finite() || self.sd <= 0.0 {
            return err(format!("sd must be positive, got {}", self.sd));
        }
        if !self.h.is_finite() || self.h <= 0.5 || self.h >= 1.0 {
            return err(format!("H must lie strictly in (0.5, 1), got {}", self.h));
        }
        if self.levels == 0 {
            return err("cascade must have at least one level".to_string());
        }
        if self.levels > MAX_LEVELS {
            return err(format!(
                "cascade depth {} exceeds the maximum of {MAX_LEVELS}",
                self.levels
            ));
        }
        Ok(())
    }

    /// Fits MWM parameters to an observed series: mean and sd from sample
    /// moments, `H` from the wavelet logscale diagram (clamped into the
    /// admissible open interval). The cascade's per-level multiplier
    /// variances are then re-derived from `(mean, sd, H)`, i.e. the fit
    /// selects the member of this H-parameterized MWM subfamily closest to
    /// the data in second-order statistics.
    ///
    /// # Panics
    /// Panics if the series is shorter than 256 points (the logscale
    /// diagram needs at least three stable octaves) or not positive-mean.
    pub fn fit(series: &[f64], levels: usize) -> Result<Self, ModelError> {
        let est = vbr_stats::wavelet_hurst(series);
        let n = series.len() as f64;
        let mean = series.iter().sum::<f64>() / n;
        let var = series.iter().map(|&x| (x - mean).powi(2)).sum::<f64>() / n;
        let params = Self {
            mean,
            sd: var.sqrt(),
            h: est.h.clamp(0.505, 0.995),
            levels,
        };
        params.try_validate()?;
        Ok(params)
    }

    /// Solves the cascade's multiplier-variance schedule: `η_{j+1} =
    /// η_j·2^{2−2H}/(1+η_j)` (which pins the octave energy ratio to
    /// `2^{2H−1}`), with `η_0` bisected so `Π(1+η_j)` hits the target
    /// variance ratio `1 + sd²/mean²`.
    fn solve_etas(&self) -> Result<Vec<f64>, ModelError> {
        let growth = (2.0_f64).powf(2.0 - 2.0 * self.h);
        let target = 1.0 + (self.sd / self.mean).powi(2);
        let schedule = |eta0: f64| -> (Vec<f64>, f64) {
            let mut etas = Vec::with_capacity(self.levels);
            let mut eta = eta0;
            let mut prod = 1.0;
            for _ in 0..self.levels {
                etas.push(eta);
                prod *= 1.0 + eta;
                eta = eta * growth / (1.0 + eta);
            }
            (etas, prod)
        };
        let max_prod = schedule(1.0 - 1e-12).1;
        if target >= max_prod {
            return Err(ModelError::new(
                "MWM",
                format!(
                    "sd/mean = {:.4} needs variance ratio {target:.4}, but a depth-{} \
                     cascade at H = {} can reach at most {max_prod:.4}; increase levels \
                     or reduce sd",
                    self.sd / self.mean,
                    self.levels,
                    self.h
                ),
            ));
        }
        let (mut lo, mut hi) = (0.0_f64, 1.0 - 1e-12);
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if schedule(mid).1 < target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Ok(schedule(0.5 * (lo + hi)).0)
    }
}

/// The multifractal wavelet model: a beta-multiplier Haar cascade generating
/// non-negative LRD traffic block by block.
#[derive(Debug, Clone)]
pub struct MwmProcess {
    params: MwmParams,
    /// Per-level multiplier variances `η_j = Var(A_j)`, coarsest first.
    etas: Vec<f64>,
    /// Per-level symmetric-beta samplers (`A = 2·Beta(p_j, p_j) − 1`,
    /// `p_j = (1/η_j − 1)/2`), built from two gamma draws each.
    gammas: Vec<Gamma>,
    /// Achieved marginal variance `mean²·(Π(1+η_j) − 1)`; equals `sd²` to
    /// bisection accuracy and is what [`FrameProcess::variance`] reports so
    /// the analytic claims are exactly self-consistent.
    variance: f64,
    buffer: Vec<f64>,
    pos: usize,
}

impl MwmProcess {
    /// Builds the process, panicking on invalid parameters.
    ///
    /// # Panics
    /// Panics if [`MwmParams::try_validate`] rejects the parameters or the
    /// target variance is unreachable at this depth.
    pub fn new(params: MwmParams) -> Self {
        match Self::try_new(params) {
            Ok(p) => p,
            Err(e) => panic!("{e}"),
        }
    }

    /// Builds the process, returning a typed error on invalid parameters.
    pub fn try_new(params: MwmParams) -> Result<Self, ModelError> {
        params.try_validate()?;
        let etas = params.solve_etas()?;
        let gammas = etas
            .iter()
            .map(|&eta| Gamma::new((1.0 / eta - 1.0) / 2.0, 1.0))
            .collect();
        let prod: f64 = etas.iter().map(|&e| 1.0 + e).product();
        Ok(Self {
            variance: params.mean * params.mean * (prod - 1.0),
            params,
            etas,
            gammas,
            buffer: Vec::new(),
            pos: 0,
        })
    }

    /// The validated parameter set.
    pub fn params(&self) -> &MwmParams {
        &self.params
    }

    /// The solved multiplier-variance schedule, coarsest level first.
    pub fn etas(&self) -> &[f64] {
        &self.etas
    }

    /// Frames per synthesis block (`2^levels`).
    pub fn block_len(&self) -> usize {
        1 << self.params.levels
    }

    /// Draws one symmetric-beta multiplier `A ∈ (−1, 1)` for level `j`.
    fn multiplier(&self, j: usize, rng: &mut dyn RngCore) -> f64 {
        let g1 = self.gammas[j].sample(rng);
        let g2 = self.gammas[j].sample(rng);
        2.0 * (g1 / (g1 + g2)) - 1.0
    }

    /// Synthesizes one block of `2^J` frames into the internal buffer.
    fn refill(&mut self, rng: &mut dyn RngCore) {
        let _s = vbr_obs::span!("mwm.synthesize");
        let j_max = self.params.levels;
        // Root scaling coefficient: c_{0,0} = 2^{J/2}·mean.
        let mut approx = vec![self.params.mean * (self.block_len() as f64).sqrt()];
        let mut detail = Vec::new();
        for j in 0..j_max {
            detail.clear();
            for &a in &approx {
                detail.push(self.multiplier(j, rng) * a);
            }
            approx = haar_synthesize_level(&approx, &detail);
        }
        self.buffer = approx;
        self.pos = 0;
    }
}

impl FrameProcess for MwmProcess {
    fn next_frame(&mut self, rng: &mut dyn RngCore) -> f64 {
        if self.pos >= self.buffer.len() {
            self.refill(rng);
        }
        let x = self.buffer[self.pos];
        self.pos += 1;
        x
    }

    fn fill_frames(&mut self, out: &mut [f64], rng: &mut dyn RngCore) {
        // Run-copy from the block buffer; draw order is identical to the
        // scalar loop because all randomness happens inside refill().
        let mut filled = 0;
        while filled < out.len() {
            if self.pos >= self.buffer.len() {
                self.refill(rng);
            }
            let take = (out.len() - filled).min(self.buffer.len() - self.pos);
            out[filled..filled + take]
                .copy_from_slice(&self.buffer[self.pos..self.pos + take]);
            self.pos += take;
            filled += take;
        }
    }

    fn mean(&self) -> f64 {
        self.params.mean
    }

    fn variance(&self) -> f64 {
        self.variance
    }

    fn autocorrelations(&self, max_lag: usize) -> Vec<f64> {
        // Exact position-averaged ACF of the block cascade. Two frames at
        // lag k either straddle a block boundary (independent blocks ⇒ zero
        // covariance) or share their deepest common cascade node at level j,
        // where E[X X'] = E[c_j²]·E[(1+A_j)(1−A_j)]/2·(1/2)^{J−j−1}
        //              = mean²·Π_{i<j}(1+η_i)·(1−η_j).
        // Averaging over all positions weights level j by the number of
        // lag-k pairs whose paths split there.
        let j_max = self.params.levels;
        let block = self.block_len();
        let mean_sq = self.params.mean * self.params.mean;
        // Second-moment products Π_{i<j}(1+η_i).
        let mut prods = Vec::with_capacity(j_max);
        let mut p = 1.0;
        for &eta in &self.etas {
            prods.push(p);
            p *= 1.0 + eta;
        }
        let mut acf = Vec::with_capacity(max_lag + 1);
        acf.push(1.0);
        for k in 1..=max_lag {
            if k >= block {
                acf.push(0.0);
                continue;
            }
            let mut cov_sum = 0.0;
            for (j, (&prod, &eta)) in prods.iter().zip(&self.etas).enumerate() {
                let span = block >> j; // samples under a level-j node
                let half = span / 2;
                if k >= span {
                    continue;
                }
                // Pairs (i, i+k) inside one level-j node whose members fall
                // in different halves, times the 2^j nodes at that level.
                let pairs_per_node = half.min(span - k).saturating_sub(half.saturating_sub(k));
                if pairs_per_node == 0 {
                    continue;
                }
                let pairs = (pairs_per_node << j) as f64;
                let cross_moment = mean_sq * prod * (1.0 - eta);
                cov_sum += pairs * (cross_moment - mean_sq);
            }
            // Straddling pairs contribute zero; normalize by all 2^J pair
            // positions per block period and the marginal variance.
            acf.push(cov_sum / (block as f64 * self.variance));
        }
        acf
    }

    fn reset(&mut self, _rng: &mut dyn RngCore) {
        self.buffer.clear();
        self.pos = 0;
    }

    fn boxed_clone(&self) -> Box<dyn FrameProcess> {
        Box::new(self.clone())
    }

    fn label(&self) -> String {
        format!("MWM(H={:.3},J={})", self.params.h, self.params.levels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::test_support::check_analytic_consistency;
    use vbr_stats::rng::Xoshiro256PlusPlus;
    use vbr_stats::Moments;

    fn params() -> MwmParams {
        MwmParams {
            mean: 500.0,
            sd: 5000.0_f64.sqrt(),
            h: 0.9,
            levels: 10,
        }
    }

    #[test]
    fn rejects_bad_parameters() {
        for bad_h in [0.5, 1.0, 0.2, 1.5, f64::NAN] {
            assert!(MwmProcess::try_new(MwmParams { h: bad_h, ..params() }).is_err());
        }
        assert!(MwmProcess::try_new(MwmParams {
            levels: 0,
            ..params()
        })
        .is_err());
        assert!(MwmProcess::try_new(MwmParams {
            mean: 0.0,
            ..params()
        })
        .is_err());
        assert!(MwmProcess::try_new(MwmParams { sd: -3.0, ..params() }).is_err());
        // Unreachable variance: a shallow cascade cannot hold sd >> mean.
        let e = MwmProcess::try_new(MwmParams {
            sd: 5000.0,
            levels: 2,
            ..params()
        });
        assert!(e.is_err());
    }

    #[test]
    #[should_panic(expected = "MWM")]
    fn new_panics_on_empty_cascade() {
        MwmProcess::new(MwmParams {
            levels: 0,
            ..params()
        });
    }

    #[test]
    fn eta_schedule_pins_the_octave_energy_ratio() {
        let m = MwmProcess::new(params());
        let growth = (2.0_f64).powf(2.0 - 2.0 * 0.9);
        let etas = m.etas();
        assert_eq!(etas.len(), 10);
        for j in 0..etas.len() - 1 {
            let want = etas[j] * growth / (1.0 + etas[j]);
            assert!(
                (etas[j + 1] - want).abs() < 1e-12,
                "eta recursion broken at level {j}"
            );
            assert!(etas[j] > 0.0 && etas[j] < 1.0);
        }
        // Variance is matched through the product of (1 + η_j).
        let prod: f64 = etas.iter().map(|&e| 1.0 + e).product();
        let var = 500.0 * 500.0 * (prod - 1.0);
        assert!((var - 5000.0).abs() < 1e-6, "solved variance {var}");
        assert!((m.variance() - 5000.0).abs() < 1e-6);
    }

    #[test]
    fn cascade_output_is_non_negative_with_exact_moments() {
        let mut m = MwmProcess::new(params());
        let mut rng = Xoshiro256PlusPlus::from_seed_u64(0x3A11);
        let mut stats = Moments::new();
        let mut frames = vec![0.0; 1 << 16];
        m.fill_frames(&mut frames, &mut rng);
        for &x in &frames {
            assert!(x >= 0.0, "cascade produced a negative frame {x}");
            stats.push(x);
        }
        assert!((stats.mean() - 500.0).abs() < 4.0, "mean {}", stats.mean());
        assert!(
            (stats.variance() - 5000.0).abs() < 900.0,
            "variance {}",
            stats.variance()
        );
    }

    #[test]
    fn analytic_acf_matches_sample_path() {
        let mut m = MwmProcess::new(MwmParams {
            h: 0.75,
            levels: 8,
            ..params()
        });
        check_analytic_consistency(&mut m, 0x3A12, 1 << 18, 16, 4.0, 0.10, 0.04);
    }

    #[test]
    fn wavelet_energies_decay_at_the_design_rate() {
        // The defining property: log2 detail energy gains 2H−1 per octave.
        let mut m = MwmProcess::new(MwmParams {
            h: 0.85,
            levels: 12,
            ..params()
        });
        let mut rng = Xoshiro256PlusPlus::from_seed_u64(0x3A13);
        let mut frames = vec![0.0; 1 << 17];
        m.fill_frames(&mut frames, &mut rng);
        let est = vbr_stats::wavelet_hurst(&frames);
        assert!(
            (est.h - 0.85).abs() < 0.05,
            "wavelet H {} vs design 0.85",
            est.h
        );
    }
}

//! Markov (exponential-sojourn) ON/OFF superposition — the classical ATM
//! source model (Anick–Mitra–Sondhi lineage), built as the exact structural
//! twin of the FBNDP: M i.i.d. ON/OFF processes modulating a Poisson
//! process, identical in every respect except the sojourn distribution —
//! **exponential** instead of heavy-tailed.
//!
//! That single change flips the aggregate from exact-LRD (H = (α+1)/2) to
//! short-range dependent (geometrically decaying frame ACF): the cleanest
//! possible demonstration that long-range dependence in the paper's models
//! comes from the sojourn *tail*, not from the ON/OFF construction or the
//! Poisson layer.
//!
//! Closed-form frame statistics (symmetric ON/OFF with switching rate ν
//! each way; indicator autocovariance `¼·e^{−θτ}`, `θ = 2ν`):
//!
//! ```text
//! E[L]    = λ·T_s,                        λ = R·M/2
//! Var[L]  = λ·T_s + (R²M/4)·(2/θ²)(θT_s − 1 + e^{−θT_s})
//! Cov(k)  = (R²M/4θ²)·e^{−θ(k−1)T_s}·(1 − e^{−θT_s})²,   k ≥ 1
//! ```
//!
//! (the covariance follows from integrating `¼e^{−θ|u−v|}` over two frame
//! windows k apart; it decays exactly geometrically with ratio `e^{−θT_s}`).

use crate::traits::FrameProcess;
use rand::{Rng, RngCore};
use vbr_stats::dist::{Exponential, Poisson};

/// Parameters of the Markov ON/OFF superposition.
#[derive(Debug, Clone, Copy)]
pub struct MarkovOnOffParams {
    /// Number of superposed ON/OFF processes.
    pub m: usize,
    /// Arrival rate of one process while ON (cells/sec).
    pub r: f64,
    /// Switching rate ν (per second) out of each state; mean sojourn 1/ν.
    pub nu: f64,
    /// Frame duration (sec).
    pub ts: f64,
}

impl MarkovOnOffParams {
    fn validate(&self) {
        assert!(self.m >= 1, "need at least one process");
        assert!(self.r > 0.0 && self.r.is_finite(), "invalid R {}", self.r);
        assert!(self.nu > 0.0 && self.nu.is_finite(), "invalid nu {}", self.nu);
        assert!(self.ts > 0.0 && self.ts.is_finite(), "invalid Ts {}", self.ts);
    }

    /// Mean aggregate rate `λ = R·M/2` (cells/sec).
    pub fn lambda(&self) -> f64 {
        self.r * self.m as f64 / 2.0
    }

    /// Indicator decay rate θ = 2ν.
    fn theta(&self) -> f64 {
        2.0 * self.nu
    }

    /// Frame-count mean.
    pub fn frame_mean(&self) -> f64 {
        self.lambda() * self.ts
    }

    /// Frame-count variance (Poisson part + integrated-rate part).
    pub fn frame_variance(&self) -> f64 {
        let th = self.theta();
        let t = self.ts;
        let rate_var = self.r * self.r * self.m as f64 / 4.0 * (2.0 / (th * th))
            * (th * t - 1.0 + (-th * t).exp());
        self.frame_mean() + rate_var
    }

    /// Frame-count autocovariance at lag `k ≥ 1`.
    pub fn frame_autocov(&self, k: usize) -> f64 {
        assert!(k >= 1);
        let th = self.theta();
        let t = self.ts;
        let shape = (1.0 - (-th * t).exp()).powi(2);
        self.r * self.r * self.m as f64 / (4.0 * th * th)
            * (-th * (k as f64 - 1.0) * t).exp()
            * shape
    }

    /// Solves (R, ν) from frame-level targets: mean, variance, and lag-1
    /// autocorrelation of the per-frame count.
    ///
    /// `R` follows from the mean (`R = 2·mean/(M·T_s)`); ν is found by
    /// bisection on the variance equation, then the achieved lag-1
    /// correlation is whatever the model family yields (the family has two
    /// degrees of freedom once M and T_s are fixed — matching mean and
    /// variance pins it, so the target lag-1 is reported back to the caller
    /// via the returned achieved value rather than matched).
    ///
    /// Feasibility: the ON/OFF envelope bounds the attainable variance at
    /// `mean + mean²/M` (the ν → 0 limit where each process is frozen ON or
    /// OFF for whole frames); targets above that are rejected. The
    /// heavy-tailed FBNDP has no such ceiling — another face of the
    /// exponential/fractal contrast.
    ///
    /// # Panics
    /// Panics if `variance <= mean` (over-dispersion is intrinsic) or the
    /// target exceeds the envelope bound / no ν in `[1e-3, 1e6]` attains it.
    pub fn from_frame_targets(mean: f64, variance: f64, m: usize, ts: f64) -> Self {
        assert!(mean > 0.0 && variance > mean, "need variance > mean > 0");
        let r = 2.0 * mean / (m as f64 * ts);
        // Variance decreases as nu grows (faster switching averages out).
        let var_at = |nu: f64| {
            MarkovOnOffParams { m, r, nu, ts }.frame_variance()
        };
        let (mut lo, mut hi) = (1e-3, 1e6);
        assert!(
            var_at(lo) >= variance && var_at(hi) <= variance,
            "variance target {variance} out of reach (range {} .. {})",
            var_at(hi),
            var_at(lo)
        );
        for _ in 0..200 {
            let mid = (lo * hi).sqrt();
            if var_at(mid) > variance {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let params = Self {
            m,
            r,
            nu: (lo * hi).sqrt(),
            ts,
        };
        params.validate();
        params
    }
}

/// One exponential ON/OFF process (kept private: the superposition is the
/// public model).
#[derive(Debug, Clone)]
struct ExpOnOff {
    on: bool,
    remaining: f64,
    initialized: bool,
}

/// The Markov ON/OFF superposition frame process.
#[derive(Debug, Clone)]
pub struct MarkovOnOff {
    params: MarkovOnOffParams,
    processes: Vec<ExpOnOff>,
}

impl MarkovOnOff {
    /// Builds the generator.
    pub fn new(params: MarkovOnOffParams) -> Self {
        params.validate();
        Self {
            params,
            processes: vec![
                ExpOnOff {
                    on: false,
                    remaining: 0.0,
                    initialized: false,
                };
                params.m
            ],
        }
    }

    /// The parameters.
    pub fn params(&self) -> &MarkovOnOffParams {
        &self.params
    }

    fn on_time(p: &mut ExpOnOff, nu: f64, dt: f64, rng: &mut dyn RngCore) -> f64 {
        let exp = Exponential::new(nu);
        if !p.initialized {
            // Exponential sojourns are memoryless: equilibrium residual is
            // just another exponential — no length-bias correction needed.
            p.on = rng.gen::<f64>() < 0.5;
            p.remaining = exp.sample(rng);
            p.initialized = true;
        }
        let mut left = dt;
        let mut acc = 0.0;
        loop {
            if p.remaining >= left {
                if p.on {
                    acc += left;
                }
                p.remaining -= left;
                return acc;
            }
            if p.on {
                acc += p.remaining;
            }
            left -= p.remaining;
            p.on = !p.on;
            p.remaining = exp.sample(rng);
        }
    }
}

impl FrameProcess for MarkovOnOff {
    fn next_frame(&mut self, rng: &mut dyn RngCore) -> f64 {
        let nu = self.params.nu;
        let ts = self.params.ts;
        let mut on_total = 0.0;
        for p in self.processes.iter_mut() {
            on_total += Self::on_time(p, nu, ts, rng);
        }
        let mean = self.params.r * on_total;
        if mean == 0.0 {
            return 0.0;
        }
        Poisson::new(mean).sample(rng) as f64
    }

    fn mean(&self) -> f64 {
        self.params.frame_mean()
    }

    fn variance(&self) -> f64 {
        self.params.frame_variance()
    }

    fn autocorrelations(&self, max_lag: usize) -> Vec<f64> {
        let var = self.params.frame_variance();
        let mut r = Vec::with_capacity(max_lag + 1);
        r.push(1.0);
        for k in 1..=max_lag {
            r.push(self.params.frame_autocov(k) / var);
        }
        r
    }

    fn reset(&mut self, _rng: &mut dyn RngCore) {
        for p in self.processes.iter_mut() {
            p.initialized = false;
        }
    }

    fn boxed_clone(&self) -> Box<dyn FrameProcess> {
        Box::new(self.clone())
    }

    fn label(&self) -> String {
        format!("MarkovOnOff(M={}, nu={:.1})", self.params.m, self.params.nu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vbr_stats::rng::Xoshiro256PlusPlus;
    use vbr_stats::{sample_acf_fft, Moments};

    fn paper_like() -> MarkovOnOffParams {
        // Same frame mean/variance as the Z components: 250 / 2500.
        MarkovOnOffParams::from_frame_targets(250.0, 2500.0, 15, 0.04)
    }

    #[test]
    fn target_solver_hits_mean_and_variance() {
        let p = paper_like();
        assert!((p.frame_mean() - 250.0).abs() < 1e-9);
        assert!((p.frame_variance() - 2500.0).abs() < 0.01);
        assert_eq!(p.m, 15);
    }

    #[test]
    fn acf_is_geometric() {
        let m = MarkovOnOff::new(paper_like());
        let r = m.autocorrelations(20);
        // Constant ratio between successive lags (beyond lag 1).
        let q1 = r[2] / r[1];
        for k in 3..=20 {
            let q = r[k] / r[k - 1];
            assert!((q - q1).abs() < 1e-9, "lag {k}: ratio {q} vs {q1}");
        }
        assert!(q1 > 0.0 && q1 < 1.0);
    }

    #[test]
    fn path_matches_analytics() {
        let mut m = MarkovOnOff::new(paper_like());
        let mut rng = Xoshiro256PlusPlus::from_seed_u64(211);
        let path: Vec<f64> = (0..120_000).map(|_| m.next_frame(&mut rng)).collect();
        let mut acc = Moments::new();
        acc.extend(&path);
        assert!((acc.mean() - 250.0).abs() < 2.0, "mean {}", acc.mean());
        assert!(
            (acc.variance() - 2500.0).abs() < 0.08 * 2500.0,
            "var {}",
            acc.variance()
        );
        let emp = sample_acf_fft(&path, 5);
        let ana = m.autocorrelations(5);
        for k in 1..=5 {
            assert!(
                (emp[k] - ana[k]).abs() < 0.03,
                "lag {k}: {} vs {}",
                emp[k],
                ana[k]
            );
        }
    }

    #[test]
    fn exponential_sojourns_make_it_srd() {
        // The decisive contrast with the FBNDP: same mean/variance targets,
        // same construction, exponential tails -> H ~ 0.5.
        let mut m = MarkovOnOff::new(paper_like());
        let mut rng = Xoshiro256PlusPlus::from_seed_u64(212);
        let path: Vec<f64> = (0..131_072).map(|_| m.next_frame(&mut rng)).collect();
        let h = vbr_stats::aggregated_variance_hurst(&path);
        assert!(
            h.h < 0.62,
            "exponential ON/OFF must be SRD, estimated H {}",
            h.h
        );
    }

    #[test]
    fn variance_sum_rule_against_fbndp_twin() {
        // Both models deliver the same first-two-moment targets.
        let markov = MarkovOnOff::new(paper_like());
        let fractal = crate::fbndp::Fbndp::new(
            crate::fbndp::FbndpParams::from_frame_targets(250.0, 2500.0, 0.8, 15, 0.04),
        );
        assert!((markov.mean() - fractal.mean()).abs() < 1e-9);
        assert!((markov.variance() - fractal.variance()).abs() < 0.01);
        // But the correlation tails differ qualitatively.
        let rm = markov.autocorrelations(500);
        let rf = fractal.autocorrelations(500);
        assert!(rm[500] < 1e-6, "Markov tail must vanish: {}", rm[500]);
        assert!(rf[500] > 0.05, "fractal tail must persist: {}", rf[500]);
    }

    #[test]
    #[should_panic]
    fn rejects_underdispersed_target() {
        MarkovOnOffParams::from_frame_targets(250.0, 200.0, 15, 0.04);
    }
}

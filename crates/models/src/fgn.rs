//! Exact fractional Gaussian noise (FGN) by Davies–Harte circulant
//! embedding.
//!
//! FGN is the canonical *exact* LRD process (paper §2): its ACF is
//! `r(k) = ½∇²(k^{2H})` with `g(T_s) = 1`. We also support the generalized
//! exact-LRD ACF `r(k) = g·½∇²(k^{2H})` with `g ∈ (0, 1]`, which is the
//! frame-count ACF family of the FBNDP/FSPP models — realized as the sum of
//! an FGN (weight g) and white noise (weight 1−g), which keeps the circulant
//! spectrum non-negative.
//!
//! Davies–Harte is *exact*: within one generated block the sample has
//! precisely the target Gaussian law and ACF. The [`FgnProcess`] wrapper
//! serves frames from a large pre-generated block and regenerates an
//! independent block when exhausted; correlation across block boundaries is
//! deliberately broken, so choose the block length ≥ the horizon over which
//! second-order behaviour matters (the paper's experiments need ≤ 10⁴ lags;
//! the default block is 2¹⁸ frames).

use crate::traits::FrameProcess;
use rand::RngCore;
use vbr_stats::dist::Normal;
use vbr_stats::fft::{fft, Complex};

/// Autocovariance of generalized exact-LRD noise at lag `k` for unit
/// variance: `γ(0) = 1`, `γ(k) = g·½∇²(k^{2H})`.
fn exact_lrd_autocov(g: f64, two_h: f64, k: usize) -> f64 {
    if k == 0 {
        return 1.0;
    }
    let kf = k as f64;
    g * 0.5 * ((kf + 1.0).powf(two_h) - 2.0 * kf.powf(two_h) + (kf - 1.0).powf(two_h))
}

/// Generic circulant-embedding block generator: exact stationary Gaussian
/// samples for **any** positive-semi-definite autocovariance prefix.
///
/// Shared by [`FgnGenerator`] and the F-ARIMA model
/// ([`crate::farima::FarimaProcess`]); construction fails loudly if the
/// supplied sequence does not embed (a genuinely negative circulant
/// eigenvalue), which for practical LRD families does not happen.
#[derive(Debug, Clone)]
pub struct CirculantGenerator {
    block_len: usize,
    /// √(λ_k / (2n)) for each circulant eigenvalue; precomputed once.
    spectrum_sqrt: Vec<f64>,
}

impl CirculantGenerator {
    /// Builds the generator from an autocovariance prefix
    /// `γ(0..=block_len)` (length `block_len + 1`), `block_len` a power of
    /// two ≥ 4.
    ///
    /// # Panics
    /// Panics on a bad length or a circulant eigenvalue below −1e−8·γ(0).
    pub fn from_autocovariance(autocov: &[f64]) -> Self {
        let n = autocov.len().saturating_sub(1);
        assert!(
            n >= 4 && n.is_power_of_two(),
            "need a power-of-two block (autocov of len n+1), got n = {n}"
        );
        let scale = autocov[0].abs().max(1e-300);

        // First row of the 2n x 2n circulant embedding.
        let mut row = vec![Complex::ZERO; 2 * n];
        for (k, &g) in autocov.iter().enumerate() {
            row[k] = Complex::new(g, 0.0);
        }
        for k in 1..n {
            row[2 * n - k] = row[k];
        }
        fft(&mut row);

        let spectrum_sqrt = row
            .iter()
            .enumerate()
            .map(|(i, z)| {
                let lam = z.re;
                assert!(
                    lam > -1e-8 * scale,
                    "circulant eigenvalue {i} is negative: {lam} (embedding failed)"
                );
                (lam.max(0.0) / (2.0 * n as f64)).sqrt()
            })
            .collect();

        Self {
            block_len: n,
            spectrum_sqrt,
        }
    }

    /// Block length n.
    pub fn block_len(&self) -> usize {
        self.block_len
    }

    /// Generates one exact block of `block_len` samples with the embedded
    /// autocovariance (mean zero).
    pub fn generate(&self, rng: &mut dyn RngCore) -> Vec<f64> {
        let n = self.block_len;
        let mut nrm = Normal::new(0.0, 1.0);
        let mut a = vec![Complex::ZERO; 2 * n];

        // Hermitian-symmetric Gaussian spectrum with variances λ_k/(2n).
        a[0] = Complex::new(self.spectrum_sqrt[0] * nrm.standard(rng) * 2.0_f64.sqrt(), 0.0);
        a[n] = Complex::new(self.spectrum_sqrt[n] * nrm.standard(rng) * 2.0_f64.sqrt(), 0.0);
        for k in 1..n {
            let re = self.spectrum_sqrt[k] * nrm.standard(rng);
            let im = self.spectrum_sqrt[k] * nrm.standard(rng);
            a[k] = Complex::new(re, im);
            a[2 * n - k] = Complex::new(re, -im);
        }
        fft(&mut a);
        // Scale: X_j = (1/√2)·Re(FFT(a))_j gives exactly the target
        // covariance (the √2 absorbs the double-counting of the conjugate
        // pair; endpoints were pre-scaled by √2 above to compensate).
        a.truncate(n);
        a.iter().map(|z| z.re * std::f64::consts::FRAC_1_SQRT_2).collect()
    }
}

/// Block generator for exact (generalized) fractional Gaussian noise.
#[derive(Debug, Clone)]
pub struct FgnGenerator {
    h: f64,
    g: f64,
    inner: CirculantGenerator,
}

impl FgnGenerator {
    /// Creates a generator for unit-variance exact-LRD noise with Hurst
    /// parameter `h ∈ (0.5, 1)`, fractal weight `g ∈ (0, 1]` (1 = pure FGN),
    /// and power-of-two `block_len`.
    ///
    /// # Panics
    /// Panics on out-of-range parameters or a non-power-of-two block length.
    pub fn new(h: f64, g: f64, block_len: usize) -> Self {
        assert!(h > 0.5 && h < 1.0, "H must be in (0.5, 1), got {h}");
        assert!(g > 0.0 && g <= 1.0, "g must be in (0, 1], got {g}");
        let two_h = 2.0 * h;
        let autocov: Vec<f64> = (0..=block_len)
            .map(|k| exact_lrd_autocov(g, two_h, k))
            .collect();
        Self {
            h,
            g,
            inner: CirculantGenerator::from_autocovariance(&autocov),
        }
    }

    /// Hurst parameter.
    pub fn hurst(&self) -> f64 {
        self.h
    }

    /// Fractal weight g.
    pub fn weight(&self) -> f64 {
        self.g
    }

    /// Block length n.
    pub fn block_len(&self) -> usize {
        self.inner.block_len()
    }

    /// Generates one exact block of `block_len` unit-variance FGN samples.
    pub fn generate(&self, rng: &mut dyn RngCore) -> Vec<f64> {
        self.inner.generate(rng)
    }
}

/// A frame process serving scaled FGN samples: `frame = mean + sd·FGN`.
#[derive(Debug, Clone)]
pub struct FgnProcess {
    generator: FgnGenerator,
    mean: f64,
    sd: f64,
    buffer: Vec<f64>,
    pos: usize,
    label: String,
}

impl FgnProcess {
    /// Creates the process with the given marginal moments, Hurst parameter,
    /// fractal weight, and block length (power of two).
    pub fn new(mean: f64, sd: f64, h: f64, g: f64, block_len: usize) -> Self {
        assert!(sd > 0.0 && sd.is_finite(), "invalid sd {sd}");
        Self {
            generator: FgnGenerator::new(h, g, block_len),
            mean,
            sd,
            buffer: Vec::new(),
            pos: 0,
            label: format!("FGN(H={h}, g={g})"),
        }
    }
}

impl FrameProcess for FgnProcess {
    fn next_frame(&mut self, rng: &mut dyn RngCore) -> f64 {
        if self.pos >= self.buffer.len() {
            self.buffer = self.generator.generate(rng);
            self.pos = 0;
        }
        let z = self.buffer[self.pos];
        self.pos += 1;
        self.mean + self.sd * z
    }

    fn mean(&self) -> f64 {
        self.mean
    }

    fn variance(&self) -> f64 {
        self.sd * self.sd
    }

    fn autocorrelations(&self, max_lag: usize) -> Vec<f64> {
        (0..=max_lag)
            .map(|k| exact_lrd_autocov(self.generator.g, 2.0 * self.generator.h, k))
            .collect()
    }

    fn reset(&mut self, _rng: &mut dyn RngCore) {
        self.buffer.clear();
        self.pos = 0;
    }

    fn boxed_clone(&self) -> Box<dyn FrameProcess> {
        Box::new(self.clone())
    }

    fn label(&self) -> String {
        self.label.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vbr_stats::rng::Xoshiro256PlusPlus;
    use vbr_stats::{sample_acf_fft, Moments};

    #[test]
    fn block_has_unit_variance_and_zero_mean() {
        let gen = FgnGenerator::new(0.9, 1.0, 4096);
        let mut rng = Xoshiro256PlusPlus::from_seed_u64(131);
        let mut m = Moments::new();
        for _ in 0..30 {
            m.extend(&gen.generate(&mut rng));
        }
        // Block means of H=0.9 FGN have sd ~ n^{H-1} = 4096^{-0.1} per
        // block; 30 blocks bring the ensemble sd to ~0.08.
        assert!(m.mean().abs() < 0.25, "mean {}", m.mean());
        assert!((m.variance() - 1.0).abs() < 0.1, "var {}", m.variance());
    }

    #[test]
    fn block_acf_matches_target() {
        let h = 0.8;
        let gen = FgnGenerator::new(h, 1.0, 16_384);
        let mut rng = Xoshiro256PlusPlus::from_seed_u64(132);
        // Average the sample ACF over several exact blocks.
        let lags = 20;
        let mut acc = vec![0.0; lags + 1];
        let blocks = 12;
        for _ in 0..blocks {
            let x = gen.generate(&mut rng);
            let r = sample_acf_fft(&x, lags);
            for (a, b) in acc.iter_mut().zip(&r) {
                *a += b / blocks as f64;
            }
        }
        for (k, &a) in acc.iter().enumerate().take(lags + 1).skip(1) {
            let target = exact_lrd_autocov(1.0, 2.0 * h, k);
            assert!((a - target).abs() < 0.03, "lag {k}: {a} vs {target}");
        }
    }

    #[test]
    fn weighted_acf_shrinks_by_g() {
        let h = 0.86;
        let g = 0.6;
        let gen = FgnGenerator::new(h, g, 16_384);
        let mut rng = Xoshiro256PlusPlus::from_seed_u64(133);
        let x = gen.generate(&mut rng);
        let r = sample_acf_fft(&x, 5);
        let target1 = exact_lrd_autocov(g, 2.0 * h, 1);
        assert!((r[1] - target1).abs() < 0.05, "lag1 {} vs {target1}", r[1]);
    }

    #[test]
    fn hurst_estimators_recover_design_h() {
        let gen = FgnGenerator::new(0.9, 1.0, 65_536);
        let mut rng = Xoshiro256PlusPlus::from_seed_u64(134);
        let x = gen.generate(&mut rng);
        let h_av = vbr_stats::aggregated_variance_hurst(&x);
        assert!(
            (h_av.h - 0.9).abs() < 0.07,
            "aggregated-variance H {} vs 0.9",
            h_av.h
        );
        let h_pg = vbr_stats::periodogram_hurst(&x);
        assert!((h_pg.h - 0.9).abs() < 0.12, "GPH H {} vs 0.9", h_pg.h);
    }

    #[test]
    fn process_serves_across_blocks() {
        let mut p = FgnProcess::new(500.0, 70.0, 0.85, 1.0, 1024);
        let mut rng = Xoshiro256PlusPlus::from_seed_u64(135);
        let mut m = Moments::new();
        for _ in 0..10_000 {
            m.push(p.next_frame(&mut rng));
        }
        // ~10 blocks of LRD data: sample-mean sd is ~8 cells here.
        assert!((m.mean() - 500.0).abs() < 30.0);
        assert!((m.sd() - 70.0).abs() < 8.0);
    }

    #[test]
    #[should_panic]
    fn rejects_srd_h() {
        FgnGenerator::new(0.5, 1.0, 1024);
    }

    #[test]
    #[should_panic]
    fn rejects_non_pow2_block() {
        FgnGenerator::new(0.8, 1.0, 1000);
    }
}

//! Exact fractional Gaussian noise (FGN) by Davies–Harte circulant
//! embedding.
//!
//! FGN is the canonical *exact* LRD process (paper §2): its ACF is
//! `r(k) = ½∇²(k^{2H})` with `g(T_s) = 1`. We also support the generalized
//! exact-LRD ACF `r(k) = g·½∇²(k^{2H})` with `g ∈ (0, 1]`, which is the
//! frame-count ACF family of the FBNDP/FSPP models — realized as the sum of
//! an FGN (weight g) and white noise (weight 1−g), which keeps the circulant
//! spectrum non-negative.
//!
//! Davies–Harte is *exact*: within one generated block the sample has
//! precisely the target Gaussian law and ACF. The [`FgnProcess`] wrapper
//! serves frames from a large pre-generated block and regenerates an
//! independent block when exhausted; correlation across block boundaries is
//! deliberately broken, so choose the block length ≥ the horizon over which
//! second-order behaviour matters (the paper's experiments need ≤ 10⁴ lags;
//! the default block is 2¹⁸ frames).
//!
//! Performance: the circulant spectrum depends only on `(H, g, block_len)`,
//! so it is computed once per parameter set and shared behind an `Arc` —
//! N sources × R replications of the same model reuse one setup FFT and one
//! spectrum allocation. Block generation itself goes through
//! [`CirculantGenerator::generate_into`], which reuses a caller-owned
//! [`CirculantScratch`] (frequency buffer + Gaussian sampler) and a planned
//! FFT, so the steady state allocates nothing per block.

use crate::traits::FrameProcess;
use rand::RngCore;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};
use vbr_stats::dist::Normal;
use vbr_stats::fft::{plan, Complex, FftPlan};

/// Autocovariance of generalized exact-LRD noise at lag `k` for unit
/// variance: `γ(0) = 1`, `γ(k) = g·½∇²(k^{2H})`.
fn exact_lrd_autocov(g: f64, two_h: f64, k: usize) -> f64 {
    if k == 0 {
        return 1.0;
    }
    let kf = k as f64;
    g * 0.5 * ((kf + 1.0).powf(two_h) - 2.0 * kf.powf(two_h) + (kf - 1.0).powf(two_h))
}

/// Process-wide cache of circulant spectra, keyed by
/// `(family, param_a_bits, param_b_bits, block_len)`. Family 0 is FGN
/// `(H, g)`, family 1 is F-ARIMA `(d, 0)`; see [`cached_circulant`].
type SpectrumKey = (u8, u64, u64, usize);

fn spectrum_cache() -> &'static Mutex<HashMap<SpectrumKey, Arc<Vec<f64>>>> {
    static CACHE: OnceLock<Mutex<HashMap<SpectrumKey, Arc<Vec<f64>>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Spectrum-cache family tag for FGN `(H, g, block_len)` keys.
pub(crate) const FAMILY_FGN: u8 = 0;
/// Spectrum-cache family tag for F-ARIMA `(d, block_len)` keys.
pub(crate) const FAMILY_FARIMA: u8 = 1;

/// Returns a [`CirculantGenerator`] for `key`, building the spectrum with
/// `build` only on a cache miss. Constructors funnel through here so that
/// `boxed_clone`-per-source-per-replication stops redoing the O(n log n)
/// embedding FFT; clones of the returned generator share the spectrum `Arc`.
pub(crate) fn cached_circulant<F>(key: SpectrumKey, build: F) -> CirculantGenerator
where
    F: FnOnce() -> CirculantGenerator,
{
    {
        let cache = spectrum_cache().lock().unwrap_or_else(|e| e.into_inner());
        if let Some(spec) = cache.get(&key) {
            return CirculantGenerator::from_spectrum(Arc::clone(spec));
        }
    }
    // Build outside the lock: embeddings of 2^18-point blocks take a
    // while and other parameter sets shouldn't wait on them.
    let generator = build();
    let mut cache = spectrum_cache().lock().unwrap_or_else(|e| e.into_inner());
    if cache.len() >= 64 {
        // Parameter sweeps are small in practice; a full clear on overflow
        // keeps the policy trivial while bounding memory.
        cache.clear();
    }
    cache.insert(key, Arc::clone(&generator.spectrum_sqrt));
    generator
}

/// Reusable workspace for [`CirculantGenerator::generate_into`]: the
/// n-point packed frequency buffer, the 2n raw normal draws, and the
/// Gaussian sampler.
///
/// Holding the sampler here (rather than constructing a fresh `Normal` per
/// block) preserves the polar method's spare deviate across calls. Each
/// block draws exactly `2n` standard normals — an even count — so the spare
/// cache is always empty at block boundaries and the draw sequence is
/// bit-identical to the historical fresh-sampler-per-block behaviour.
#[derive(Debug, Clone)]
pub struct CirculantScratch {
    freq: Vec<Complex>,
    norms: Vec<f64>,
    sampler: Normal,
}

impl CirculantScratch {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self {
            freq: Vec::new(),
            norms: Vec::new(),
            sampler: Normal::new(0.0, 1.0),
        }
    }

    /// Resets the workspace to its just-constructed state.
    pub fn reset(&mut self) {
        self.freq.clear();
        self.norms.clear();
        self.sampler = Normal::new(0.0, 1.0);
    }
}

impl Default for CirculantScratch {
    fn default() -> Self {
        Self::new()
    }
}

/// Generic circulant-embedding block generator: exact stationary Gaussian
/// samples for **any** positive-semi-definite autocovariance prefix.
///
/// Shared by [`FgnGenerator`] and the F-ARIMA model
/// ([`crate::farima::FarimaProcess`]); construction fails loudly if the
/// supplied sequence does not embed (a genuinely negative circulant
/// eigenvalue), which for practical LRD families does not happen.
///
/// The spectrum and the FFT plan live behind `Arc`s, so clones are cheap
/// and share all precomputed state.
#[derive(Debug, Clone)]
pub struct CirculantGenerator {
    block_len: usize,
    /// √(λ_k / (2n)) for each circulant eigenvalue; precomputed once and
    /// shared across clones (and across generators via the spectrum cache).
    spectrum_sqrt: Arc<Vec<f64>>,
    /// Planned 2n-point FFT. Generation only reads its twiddle table (the
    /// `e^{-iπk/n}` rotation factors of the half-size packing); the full
    /// transform itself is used by [`from_autocovariance`]
    /// (Self::from_autocovariance) for the embedding.
    plan: Arc<FftPlan>,
    /// Planned n-point FFT: the half-size transform synthesis runs through.
    plan_half: Arc<FftPlan>,
}

impl CirculantGenerator {
    /// Builds the generator from an autocovariance prefix
    /// `γ(0..=block_len)` (length `block_len + 1`), `block_len` a power of
    /// two ≥ 4.
    ///
    /// # Panics
    /// Panics on a bad length or a circulant eigenvalue below −1e−8·γ(0).
    pub fn from_autocovariance(autocov: &[f64]) -> Self {
        let n = autocov.len().saturating_sub(1);
        assert!(
            n >= 4 && n.is_power_of_two(),
            "need a power-of-two block (autocov of len n+1), got n = {n}"
        );
        let scale = autocov[0].abs().max(1e-300);

        // First row of the 2n x 2n circulant embedding.
        let mut row = vec![Complex::ZERO; 2 * n];
        for (k, &g) in autocov.iter().enumerate() {
            row[k] = Complex::new(g, 0.0);
        }
        for k in 1..n {
            row[2 * n - k] = row[k];
        }
        let plan_full = plan(2 * n);
        plan_full.forward(&mut row);

        let spectrum_sqrt: Vec<f64> = row
            .iter()
            .enumerate()
            .map(|(i, z)| {
                let lam = z.re;
                assert!(
                    lam > -1e-8 * scale,
                    "circulant eigenvalue {i} is negative: {lam} (embedding failed)"
                );
                (lam.max(0.0) / (2.0 * n as f64)).sqrt()
            })
            .collect();

        Self {
            block_len: n,
            spectrum_sqrt: Arc::new(spectrum_sqrt),
            plan: plan_full,
            plan_half: plan(n),
        }
    }

    /// Builds a generator around an already-computed spectrum (length `2n`);
    /// used by the spectrum cache to share setup work across instances.
    pub(crate) fn from_spectrum(spectrum_sqrt: Arc<Vec<f64>>) -> Self {
        let two_n = spectrum_sqrt.len();
        assert!(
            two_n >= 8 && two_n.is_power_of_two(),
            "spectrum length {two_n} must be a power of two ≥ 8"
        );
        Self {
            block_len: two_n / 2,
            plan: plan(two_n),
            plan_half: plan(two_n / 2),
            spectrum_sqrt,
        }
    }

    /// Block length n.
    pub fn block_len(&self) -> usize {
        self.block_len
    }

    /// Generates one exact block of `block_len` samples with the embedded
    /// autocovariance (mean zero).
    ///
    /// Allocating convenience wrapper over [`generate_into`]
    /// (`CirculantGenerator::generate_into`); draw-for-draw identical.
    pub fn generate(&self, rng: &mut dyn RngCore) -> Vec<f64> {
        let mut out = vec![0.0; self.block_len];
        let mut scratch = CirculantScratch::new();
        self.generate_into(rng, &mut scratch, &mut out);
        out
    }

    /// Generates one exact block of `block_len` samples into `out`, reusing
    /// `scratch` for the work buffers and the Gaussian sampler. Consumes
    /// exactly `2·block_len` standard-normal draws, in the same order as
    /// every prior implementation of this generator.
    ///
    /// Internally this runs a **half-size packed synthesis** instead of the
    /// literal 2n-point transform: the Hermitian spectrum `A[0..2n]` (which
    /// the Davies–Harte construction builds so that the time-domain block is
    /// real) determines a single n-point complex sequence
    ///
    /// ```text
    /// C[k] = (conj(A[k]) + A[n-k]) + i·e^{iπk/n}·(conj(A[k]) - A[n-k])
    /// ```
    ///
    /// whose unscaled conjugate transform `c = Σ_k C[k] e^{+2πijk/n}`
    /// interleaves the real output as `x[2j] = Re c[j]`, `x[2j+1] = Im c[j]`
    /// — the classic real-FFT packing run in reverse. Same answer to within
    /// a few ulps, half the transform size, half the frequency buffer.
    ///
    /// # Panics
    /// Panics if `out.len() != block_len`.
    pub fn generate_into(
        &self,
        rng: &mut dyn RngCore,
        scratch: &mut CirculantScratch,
        out: &mut [f64],
    ) {
        let n = self.block_len;
        assert_eq!(out.len(), n, "output slice must hold exactly one block");
        let spec = &self.spectrum_sqrt[..];
        // No re-zeroing: every element of both buffers is assigned below
        // before it is read.
        if scratch.freq.len() != n {
            scratch.freq.clear();
            scratch.freq.resize(n, Complex::ZERO);
        }
        if scratch.norms.len() != 2 * n {
            scratch.norms.clear();
            scratch.norms.resize(2 * n, 0.0);
        }
        let nrm = &mut scratch.sampler;

        // Draw pass. The order is load-bearing: g[0] seeds A[0], g[1] seeds
        // A[n], g[2k], g[2k+1] seed Re/Im of A[k] — exactly the sequence the
        // historical mirror-filling loop consumed, so sample paths are
        // reproducible across generator versions. The packing below needs
        // A[n-k] (late draws) while emitting C[k] (early draws), hence the
        // buffer rather than fused draw-and-pack.
        let g = &mut scratch.norms[..];
        nrm.fill_standard(g, rng);
        // 2n standard draws — even, so the polar sampler's spare cache is
        // empty again and the next block starts draw-aligned.
        debug_assert!(!nrm.has_spare());

        // Pack C[k] for k and n-k together: with S = conj(A[k]) + A[n-k]
        // and D = i·e^{iπk/n}·(conj(A[k]) - A[n-k]), conjugate symmetry of
        // the rotation gives C[k] = S + D and C[n-k] = conj(S - D) — one
        // twiddle load and one rotation serve both outputs.
        let g: &[f64] = g;
        let c = &mut scratch.freq[..n];
        let tw = self.plan.twiddles();
        let sqrt2 = std::f64::consts::SQRT_2;
        let a0 = spec[0] * g[0] * sqrt2;
        let an = spec[n] * g[1] * sqrt2;
        let m = n / 2;
        // Split `c` into the front half (C[0..m]), the midpoint, and the
        // back half (C[m+1..n]) so the k / n-k pair is walked with zipped
        // forward/reverse iterators instead of bounds-checked indexing —
        // this loop runs once per output sample across the whole pipeline.
        let (c_front, c_rest) = c.split_at_mut(m);
        let (c_mid, c_back) = c_rest.split_first_mut().expect("block_len >= 4");
        c_front[0] = Complex::new(a0 + an, a0 - an);
        // Midpoint: the rotation collapses to C[n/2] = 2·A[n/2].
        *c_mid = Complex::new(2.0 * spec[m] * g[2 * m], 2.0 * spec[m] * g[2 * m + 1]);
        let fronts = c_front[1..]
            .iter_mut()
            .zip(&spec[1..m])
            .zip(g[2..2 * m].chunks_exact(2))
            .zip(&tw[1..m]);
        let backs = c_back
            .iter_mut()
            .rev()
            .zip(spec[m + 1..n].iter().rev())
            .zip(g[2 * m + 2..].chunks_exact(2).rev());
        for ((((ck, &sk), ga), &t), ((cnk, &sn), gb)) in fronts.zip(backs) {
            // conj(A[k]) and A[n-k].
            let (ar, ai) = (sk * ga[0], -(sk * ga[1]));
            let (br, bi) = (sn * gb[0], sn * gb[1]);
            let (sr, si) = (ar + br, ai + bi);
            let (dr, di) = (ar - br, ai - bi);
            // tw[k] = e^{-iπk/n} = (cos, -sin); i·e^{+iπk/n} = (-sin, cos)
            // = (tw[k].im, tw[k].re).
            let er = t.im * dr - t.re * di;
            let ei = t.im * di + t.re * dr;
            *ck = Complex::new(sr + er, si + ei);
            *cnk = Complex::new(sr - er, ei - si);
        }

        // c[j] = x[2j] + i·x[2j+1]: the conjugate transform without the 1/n
        // scale (the packing above already absorbed every constant).
        self.plan_half.inverse_unscaled(c);
        // Scale: X_j = (1/√2)·x_j gives exactly the target covariance (the
        // √2 absorbs the double-counting of the conjugate pair; endpoints
        // were pre-scaled by √2 above to compensate).
        let half = std::f64::consts::FRAC_1_SQRT_2;
        for (o, z) in out.chunks_exact_mut(2).zip(c.iter()) {
            o[0] = z.re * half;
            o[1] = z.im * half;
        }
    }
}

/// Block generator for exact (generalized) fractional Gaussian noise.
#[derive(Debug, Clone)]
pub struct FgnGenerator {
    h: f64,
    g: f64,
    inner: CirculantGenerator,
}

impl FgnGenerator {
    /// Creates a generator for unit-variance exact-LRD noise with Hurst
    /// parameter `h ∈ (0.5, 1)`, fractal weight `g ∈ (0, 1]` (1 = pure FGN),
    /// and power-of-two `block_len`.
    ///
    /// The circulant spectrum is fetched from (or inserted into) the
    /// process-wide cache keyed by `(H, g, block_len)`.
    ///
    /// # Panics
    /// Panics on out-of-range parameters or a non-power-of-two block length.
    pub fn new(h: f64, g: f64, block_len: usize) -> Self {
        assert!(h > 0.5 && h < 1.0, "H must be in (0.5, 1), got {h}");
        assert!(g > 0.0 && g <= 1.0, "g must be in (0, 1], got {g}");
        let inner = cached_circulant((FAMILY_FGN, h.to_bits(), g.to_bits(), block_len), || {
            let two_h = 2.0 * h;
            let autocov: Vec<f64> = (0..=block_len)
                .map(|k| exact_lrd_autocov(g, two_h, k))
                .collect();
            CirculantGenerator::from_autocovariance(&autocov)
        });
        Self { h, g, inner }
    }

    /// Hurst parameter.
    pub fn hurst(&self) -> f64 {
        self.h
    }

    /// Fractal weight g.
    pub fn weight(&self) -> f64 {
        self.g
    }

    /// Block length n.
    pub fn block_len(&self) -> usize {
        self.inner.block_len()
    }

    /// Generates one exact block of `block_len` unit-variance FGN samples.
    pub fn generate(&self, rng: &mut dyn RngCore) -> Vec<f64> {
        self.inner.generate(rng)
    }

    /// Scratch-buffer variant of [`generate`](FgnGenerator::generate); see
    /// [`CirculantGenerator::generate_into`].
    pub fn generate_into(
        &self,
        rng: &mut dyn RngCore,
        scratch: &mut CirculantScratch,
        out: &mut [f64],
    ) {
        self.inner.generate_into(rng, scratch, out);
    }
}

/// A frame process serving scaled FGN samples: `frame = mean + sd·FGN`.
#[derive(Debug, Clone)]
pub struct FgnProcess {
    generator: FgnGenerator,
    mean: f64,
    sd: f64,
    buffer: Vec<f64>,
    pos: usize,
    scratch: CirculantScratch,
    label: String,
}

impl FgnProcess {
    /// Creates the process with the given marginal moments, Hurst parameter,
    /// fractal weight, and block length (power of two).
    pub fn new(mean: f64, sd: f64, h: f64, g: f64, block_len: usize) -> Self {
        assert!(sd > 0.0 && sd.is_finite(), "invalid sd {sd}");
        Self {
            generator: FgnGenerator::new(h, g, block_len),
            mean,
            sd,
            buffer: Vec::new(),
            pos: 0,
            scratch: CirculantScratch::new(),
            label: format!("FGN(H={h}, g={g})"),
        }
    }

    /// Regenerates the serving buffer in place (no allocation in steady
    /// state) and rewinds the cursor.
    fn refill(&mut self, rng: &mut dyn RngCore) {
        let _s = vbr_obs::span!("fgn.synthesize");
        self.buffer.resize(self.generator.block_len(), 0.0);
        self.generator
            .generate_into(rng, &mut self.scratch, &mut self.buffer);
        self.pos = 0;
    }
}

impl FrameProcess for FgnProcess {
    fn next_frame(&mut self, rng: &mut dyn RngCore) -> f64 {
        if self.pos >= self.buffer.len() {
            self.refill(rng);
        }
        let z = self.buffer[self.pos];
        self.pos += 1;
        self.mean + self.sd * z
    }

    fn fill_frames(&mut self, out: &mut [f64], rng: &mut dyn RngCore) {
        let mut filled = 0;
        while filled < out.len() {
            if self.pos >= self.buffer.len() {
                self.refill(rng);
            }
            let take = (out.len() - filled).min(self.buffer.len() - self.pos);
            let (mean, sd) = (self.mean, self.sd);
            for (o, &z) in out[filled..filled + take]
                .iter_mut()
                .zip(&self.buffer[self.pos..self.pos + take])
            {
                *o = mean + sd * z;
            }
            self.pos += take;
            filled += take;
        }
    }

    fn mean(&self) -> f64 {
        self.mean
    }

    fn variance(&self) -> f64 {
        self.sd * self.sd
    }

    fn autocorrelations(&self, max_lag: usize) -> Vec<f64> {
        (0..=max_lag)
            .map(|k| exact_lrd_autocov(self.generator.g, 2.0 * self.generator.h, k))
            .collect()
    }

    fn reset(&mut self, _rng: &mut dyn RngCore) {
        self.buffer.clear();
        self.pos = 0;
        self.scratch.reset();
    }

    fn boxed_clone(&self) -> Box<dyn FrameProcess> {
        Box::new(self.clone())
    }

    fn label(&self) -> String {
        self.label.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vbr_stats::rng::Xoshiro256PlusPlus;
    use vbr_stats::{sample_acf_fft, Moments};

    #[test]
    fn block_has_unit_variance_and_zero_mean() {
        let gen = FgnGenerator::new(0.9, 1.0, 4096);
        let mut rng = Xoshiro256PlusPlus::from_seed_u64(131);
        let mut m = Moments::new();
        for _ in 0..30 {
            m.extend(&gen.generate(&mut rng));
        }
        // Block means of H=0.9 FGN have sd ~ n^{H-1} = 4096^{-0.1} per
        // block; 30 blocks bring the ensemble sd to ~0.08.
        assert!(m.mean().abs() < 0.25, "mean {}", m.mean());
        assert!((m.variance() - 1.0).abs() < 0.1, "var {}", m.variance());
    }

    #[test]
    fn block_acf_matches_target() {
        let h = 0.8;
        let gen = FgnGenerator::new(h, 1.0, 16_384);
        let mut rng = Xoshiro256PlusPlus::from_seed_u64(132);
        // Average the sample ACF over several exact blocks.
        let lags = 20;
        let mut acc = vec![0.0; lags + 1];
        let blocks = 12;
        for _ in 0..blocks {
            let x = gen.generate(&mut rng);
            let r = sample_acf_fft(&x, lags);
            for (a, b) in acc.iter_mut().zip(&r) {
                *a += b / blocks as f64;
            }
        }
        for (k, &a) in acc.iter().enumerate().take(lags + 1).skip(1) {
            let target = exact_lrd_autocov(1.0, 2.0 * h, k);
            assert!((a - target).abs() < 0.03, "lag {k}: {a} vs {target}");
        }
    }

    #[test]
    fn weighted_acf_shrinks_by_g() {
        let h = 0.86;
        let g = 0.6;
        let gen = FgnGenerator::new(h, g, 16_384);
        let mut rng = Xoshiro256PlusPlus::from_seed_u64(133);
        let x = gen.generate(&mut rng);
        let r = sample_acf_fft(&x, 5);
        let target1 = exact_lrd_autocov(g, 2.0 * h, 1);
        assert!((r[1] - target1).abs() < 0.05, "lag1 {} vs {target1}", r[1]);
    }

    #[test]
    fn hurst_estimators_recover_design_h() {
        let gen = FgnGenerator::new(0.9, 1.0, 65_536);
        let mut rng = Xoshiro256PlusPlus::from_seed_u64(134);
        let x = gen.generate(&mut rng);
        let h_av = vbr_stats::aggregated_variance_hurst(&x);
        assert!(
            (h_av.h - 0.9).abs() < 0.07,
            "aggregated-variance H {} vs 0.9",
            h_av.h
        );
        let h_pg = vbr_stats::periodogram_hurst(&x);
        assert!((h_pg.h - 0.9).abs() < 0.12, "GPH H {} vs 0.9", h_pg.h);
    }

    #[test]
    fn process_serves_across_blocks() {
        let mut p = FgnProcess::new(500.0, 70.0, 0.85, 1.0, 1024);
        let mut rng = Xoshiro256PlusPlus::from_seed_u64(135);
        let mut m = Moments::new();
        for _ in 0..10_000 {
            m.push(p.next_frame(&mut rng));
        }
        // ~10 blocks of LRD data: sample-mean sd is ~8 cells here.
        assert!((m.mean() - 500.0).abs() < 30.0);
        assert!((m.sd() - 70.0).abs() < 8.0);
    }

    #[test]
    fn generate_into_matches_generate() {
        let gen = FgnGenerator::new(0.85, 1.0, 1024);
        let mut rng_a = Xoshiro256PlusPlus::from_seed_u64(77);
        let mut rng_b = Xoshiro256PlusPlus::from_seed_u64(77);
        let alloc = gen.generate(&mut rng_a);
        let mut scratch = CirculantScratch::new();
        let mut out = vec![0.0; 1024];
        gen.generate_into(&mut rng_b, &mut scratch, &mut out);
        for (a, b) in alloc.iter().zip(&out) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // A persistent scratch across blocks must keep the stream aligned
        // with repeated fresh-scratch generation.
        let alloc2 = gen.generate(&mut rng_a);
        gen.generate_into(&mut rng_b, &mut scratch, &mut out);
        for (a, b) in alloc2.iter().zip(&out) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// Statistical acceptance of the half-size path itself (not via the
    /// equivalence test above): mean, variance, and lag-1 autocorrelation
    /// of `generate_into` output against the exact FGN autocovariance
    /// `r(1) = (2^{2H} − 2)/2`. A scaling or packing bug that happened to
    /// slip past the transform-equivalence test would surface here.
    #[test]
    fn half_size_path_has_exact_moments_and_lag1() {
        let h = 0.8;
        let n = 2048usize;
        let gen = FgnGenerator::new(h, 1.0, n);
        let mut rng = Xoshiro256PlusPlus::from_seed_u64(0xDA1E5);
        let mut scratch = CirculantScratch::new();
        let mut out = vec![0.0; n];
        let mut m = Moments::new();
        let mut lag1 = 0.0;
        let mut pairs = 0usize;
        let blocks = 120;
        for _ in 0..blocks {
            gen.generate_into(&mut rng, &mut scratch, &mut out);
            m.extend(&out);
            lag1 += out.windows(2).map(|w| w[0] * w[1]).sum::<f64>();
            pairs += n - 1;
        }
        let want_r1 = ((2.0_f64).powf(2.0 * h) - 2.0) / 2.0;
        assert!(m.mean().abs() < 0.03, "half-size mean {}", m.mean());
        assert!(
            (m.variance() - 1.0).abs() < 0.03,
            "half-size variance {}",
            m.variance()
        );
        let r1 = lag1 / pairs as f64;
        assert!(
            (r1 - want_r1).abs() < 0.03,
            "half-size lag-1 {r1} vs exact {want_r1}"
        );
    }

    /// The half-size packed synthesis must agree with the literal 2n-point
    /// Hermitian transform it replaces — same spectrum, same draws.
    #[test]
    fn packed_synthesis_matches_full_transform() {
        let n = 512usize;
        let generator = FgnGenerator::new(0.9, 1.0, n);
        let circ = &generator.inner;
        let spec = &circ.spectrum_sqrt[..];

        let mut rng = Xoshiro256PlusPlus::from_seed_u64(0xACE);
        let mut out = vec![0.0; n];
        let mut scratch = CirculantScratch::new();
        circ.generate_into(&mut rng, &mut scratch, &mut out);

        // Replay the identical draw sequence through the historical path:
        // fill the Hermitian 2n-point spectrum and run the full transform.
        let mut rng = Xoshiro256PlusPlus::from_seed_u64(0xACE);
        let mut nrm = Normal::new(0.0, 1.0);
        let mut a = vec![Complex::ZERO; 2 * n];
        a[0] = Complex::new(spec[0] * nrm.standard(&mut rng) * 2.0_f64.sqrt(), 0.0);
        a[n] = Complex::new(spec[n] * nrm.standard(&mut rng) * 2.0_f64.sqrt(), 0.0);
        for k in 1..n {
            let re = spec[k] * nrm.standard(&mut rng);
            let im = spec[k] * nrm.standard(&mut rng);
            a[k] = Complex::new(re, im);
            a[2 * n - k] = Complex::new(re, -im);
        }
        vbr_stats::fft::fft(&mut a);
        for (j, (&x, z)) in out.iter().zip(a.iter()).enumerate() {
            let reference = z.re * std::f64::consts::FRAC_1_SQRT_2;
            assert!(
                (x - reference).abs() < 1e-10,
                "sample {j}: packed {x} vs full {reference}"
            );
            assert!(z.im.abs() < 1e-9, "full transform output must be real");
        }
    }

    #[test]
    fn spectrum_cache_shares_setup_across_instances() {
        let a = FgnGenerator::new(0.77, 1.0, 2048);
        let b = FgnGenerator::new(0.77, 1.0, 2048);
        assert!(Arc::ptr_eq(
            &a.inner.spectrum_sqrt,
            &b.inner.spectrum_sqrt
        ));
        // Different parameters must not collide.
        let c = FgnGenerator::new(0.78, 1.0, 2048);
        assert!(!Arc::ptr_eq(
            &a.inner.spectrum_sqrt,
            &c.inner.spectrum_sqrt
        ));
    }

    #[test]
    #[should_panic]
    fn rejects_srd_h() {
        FgnGenerator::new(0.5, 1.0, 1024);
    }

    #[test]
    #[should_panic]
    fn rejects_non_pow2_block() {
        FgnGenerator::new(0.8, 1.0, 1000);
    }
}

//! Fractal ON/OFF renewal process.
//!
//! The building block of the FBNDP model (paper §3.2): an alternating
//! renewal process whose ON and OFF sojourns are i.i.d. with the
//! exponential-body / power-law-tail density
//!
//! ```text
//! p(t) = (γ/A) e^{−γt/A}          for t ≤ A,
//!        γ e^{−γ} A^γ t^{−(γ+1)}  for t > A,          γ = 2 − α ∈ (1, 2).
//! ```
//!
//! The tail exponent γ ∈ (1, 2) gives finite mean but infinite variance —
//! exactly the regime that produces long-range dependence in the aggregate
//! (H = (α+1)/2 > ½).
//!
//! Because sojourns are heavy-tailed, *how the process is started matters
//! enormously*: a naive start (fresh sojourn at t = 0) under-represents the
//! long sojourns the stationary process is likely to be sitting inside, and
//! biases short-run correlation estimates. [`FractalOnOff`] therefore starts
//! in equilibrium — state ON/OFF with probability ½ each, and a residual
//! sojourn drawn from the length-biased residual-life distribution
//! `F_e(t) = (1/E[T]) ∫₀ᵗ (1 − F(s)) ds`, inverted in closed form.

use rand::{Rng, RngCore};

/// The heavy-tailed sojourn distribution (exponential body, Pareto tail).
#[derive(Debug, Clone, Copy)]
pub struct HeavyTailedSojourn {
    /// Tail exponent γ = 2 − α, in (1, 2).
    gamma: f64,
    /// Crossover point A between exponential body and power-law tail (sec).
    a: f64,
    /// Cached `1 − e^{−γ}`: probability mass of the exponential body.
    body_mass: f64,
    /// Cached mean sojourn E[T].
    mean: f64,
}

impl HeavyTailedSojourn {
    /// Creates the sojourn distribution with tail exponent `gamma ∈ (1, 2)`
    /// and crossover `a > 0` seconds.
    ///
    /// # Panics
    /// Panics if the parameters are outside those ranges.
    pub fn new(gamma: f64, a: f64) -> Self {
        assert!(
            gamma > 1.0 && gamma < 2.0,
            "gamma must be in (1,2) for finite mean + infinite variance, got {gamma}"
        );
        assert!(a > 0.0 && a.is_finite(), "invalid crossover {a}");
        let body_mass = 1.0 - (-gamma).exp();
        // E[T] = ∫ S(t) dt = (A/γ)(1 − e^{−γ}) + A e^{−γ}/(γ − 1).
        let mean = (a / gamma) * body_mass + a * (-gamma).exp() / (gamma - 1.0);
        Self {
            gamma,
            a,
            body_mass,
            mean,
        }
    }

    /// Builds from the paper's α parameterization: γ = 2 − α.
    pub fn from_alpha(alpha: f64, a: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha < 1.0,
            "alpha must be in (0,1), got {alpha}"
        );
        Self::new(2.0 - alpha, a)
    }

    /// Tail exponent γ.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// Body/tail crossover A (sec).
    pub fn crossover(&self) -> f64 {
        self.a
    }

    /// Mean sojourn E[T] (sec). The variance is infinite by design.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// CDF `F(t)`.
    pub fn cdf(&self, t: f64) -> f64 {
        if t <= 0.0 {
            0.0
        } else if t <= self.a {
            1.0 - (-self.gamma * t / self.a).exp()
        } else {
            1.0 - (-self.gamma).exp() * (self.a / t).powf(self.gamma)
        }
    }

    /// Survival `1 − F(t)`.
    pub fn survival(&self, t: f64) -> f64 {
        1.0 - self.cdf(t)
    }

    /// Draws a fresh sojourn by inverse-CDF.
    pub fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        let u: f64 = rng.gen();
        if u < self.body_mass {
            // Exponential body: u = 1 − e^{−γt/A}.
            -(self.a / self.gamma) * (1.0 - u).ln()
        } else {
            // Pareto tail: 1 − u = e^{−γ} (A/t)^γ.
            self.a * ((-self.gamma).exp() / (1.0 - u)).powf(1.0 / self.gamma)
        }
    }

    /// Draws from the equilibrium (residual-life) distribution
    /// `F_e(t) = G(t)/E[T]`, `G(t) = ∫₀ᵗ S(s) ds`, by closed-form piecewise
    /// inversion. This is the correct distribution for the *remaining*
    /// sojourn observed at a stationary random time.
    pub fn sample_equilibrium(&self, rng: &mut dyn RngCore) -> f64 {
        let u: f64 = rng.gen();
        let target = u * self.mean;
        // G(A) = (A/γ)(1 − e^{−γ}).
        let g_at_a = (self.a / self.gamma) * self.body_mass;
        if target <= g_at_a {
            // (A/γ)(1 − e^{−γ t/A}) = target
            let inner = 1.0 - self.gamma * target / self.a;
            -(self.a / self.gamma) * inner.ln()
        } else {
            // e^{−γ} A^γ (A^{1−γ} − t^{1−γ})/(γ−1) = target − G(A)
            let excess = target - g_at_a;
            let pow = self.a.powf(1.0 - self.gamma)
                - (self.gamma - 1.0) * excess * self.gamma.exp() / self.a.powf(self.gamma);
            // pow → 0⁺ as u → 1; exponent 1/(1−γ) < 0 sends t → ∞.
            pow.powf(1.0 / (1.0 - self.gamma))
        }
    }
}

/// A single fractal ON/OFF process, started in equilibrium.
#[derive(Debug, Clone)]
pub struct FractalOnOff {
    sojourn: HeavyTailedSojourn,
    on: bool,
    /// Time remaining in the current sojourn (sec).
    remaining: f64,
    initialized: bool,
}

impl FractalOnOff {
    /// Creates the process; the initial state is drawn lazily (equilibrium
    /// start) on first use so that construction needs no RNG.
    pub fn new(sojourn: HeavyTailedSojourn) -> Self {
        Self {
            sojourn,
            on: false,
            remaining: 0.0,
            initialized: false,
        }
    }

    /// The sojourn distribution.
    pub fn sojourn(&self) -> &HeavyTailedSojourn {
        &self.sojourn
    }

    /// Whether the process is currently ON (after initialization).
    pub fn is_on(&self) -> bool {
        self.on
    }

    fn ensure_init(&mut self, rng: &mut dyn RngCore) {
        if !self.initialized {
            // ON and OFF sojourns are identically distributed, so the
            // stationary probability of being ON is exactly 1/2.
            self.on = rng.gen::<f64>() < 0.5;
            self.remaining = self.sojourn.sample_equilibrium(rng);
            self.initialized = true;
        }
    }

    /// Re-draws the equilibrium initial state (new replication).
    pub fn reset(&mut self, rng: &mut dyn RngCore) {
        self.initialized = false;
        self.ensure_init(rng);
    }

    /// **Biased** initialization for ablation studies: starts a *fresh*
    /// sojourn at time zero instead of an equilibrium residual. Under
    /// heavy-tailed sojourns this under-represents the long intervals a
    /// stationary observer would land inside, deflating short-run
    /// autocorrelation and Hurst estimates — the `ablations` bench measures
    /// exactly how much.
    pub fn reset_naive(&mut self, rng: &mut dyn RngCore) {
        self.on = rng.gen::<f64>() < 0.5;
        self.remaining = self.sojourn.sample(rng);
        self.initialized = true;
    }

    /// Advances the process by `dt` seconds and returns the total ON time
    /// within that window.
    pub fn on_time(&mut self, dt: f64, rng: &mut dyn RngCore) -> f64 {
        assert!(dt >= 0.0, "negative window {dt}");
        self.ensure_init(rng);
        let mut left = dt;
        let mut acc = 0.0;
        loop {
            if self.remaining >= left {
                if self.on {
                    acc += left;
                }
                self.remaining -= left;
                return acc;
            }
            if self.on {
                acc += self.remaining;
            }
            left -= self.remaining;
            self.on = !self.on;
            self.remaining = self.sojourn.sample(rng);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vbr_stats::rng::Xoshiro256PlusPlus;

    fn rng(seed: u64) -> Xoshiro256PlusPlus {
        Xoshiro256PlusPlus::from_seed_u64(seed)
    }

    #[test]
    fn cdf_is_continuous_at_crossover() {
        let d = HeavyTailedSojourn::from_alpha(0.8, 0.002);
        let below = d.cdf(0.002 - 1e-12);
        let above = d.cdf(0.002 + 1e-12);
        assert!((below - above).abs() < 1e-9, "{below} vs {above}");
        assert!((below - (1.0 - (-1.2_f64).exp())).abs() < 1e-9);
    }

    #[test]
    fn cdf_monotone_and_proper() {
        let d = HeavyTailedSojourn::new(1.3, 0.01);
        assert_eq!(d.cdf(0.0), 0.0);
        let mut prev = 0.0;
        for i in 1..200 {
            let t = i as f64 * 0.005;
            let f = d.cdf(t);
            assert!(f >= prev, "CDF must be monotone");
            assert!(f < 1.0);
            prev = f;
        }
        assert!(d.cdf(1e9) > 0.999_999);
    }

    #[test]
    fn sampler_matches_cdf() {
        let d = HeavyTailedSojourn::from_alpha(0.8, 0.002);
        let mut r = rng(81);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut r)).collect();
        // Kolmogorov-style check at several points.
        for &t in &[0.0005, 0.002, 0.004, 0.02, 0.1] {
            let emp = samples.iter().filter(|&&x| x <= t).count() as f64 / n as f64;
            assert!(
                (emp - d.cdf(t)).abs() < 0.005,
                "at t={t}: empirical {emp} vs F {}",
                d.cdf(t)
            );
        }
    }

    #[test]
    fn sample_mean_converges_to_analytic() {
        // Heavy tail (infinite variance) makes this converge slowly; use the
        // median-of-batches trick implicitly via a generous tolerance.
        let d = HeavyTailedSojourn::from_alpha(0.8, 0.002);
        let mut r = rng(82);
        let n = 2_000_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut r)).sum::<f64>() / n as f64;
        assert!(
            (mean - d.mean()).abs() < 0.15 * d.mean(),
            "sample mean {mean} vs analytic {}",
            d.mean()
        );
    }

    #[test]
    fn equilibrium_sampler_matches_integrated_tail() {
        // F_e(t) = G(t)/E[T]; verify empirically at a few points using
        // numeric integration of the survival function.
        let d = HeavyTailedSojourn::from_alpha(0.8, 0.002);
        let mut r = rng(83);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample_equilibrium(&mut r)).collect();
        for &t in &[0.001, 0.003, 0.01, 0.05] {
            // numeric G(t)
            let steps = 20_000;
            let dt = t / steps as f64;
            let g: f64 = (0..steps)
                .map(|i| d.survival((i as f64 + 0.5) * dt) * dt)
                .sum();
            let fe = g / d.mean();
            let emp = samples.iter().filter(|&&x| x <= t).count() as f64 / n as f64;
            assert!(
                (emp - fe).abs() < 0.01,
                "at t={t}: empirical {emp} vs F_e {fe}"
            );
        }
    }

    #[test]
    fn equilibrium_residuals_are_stochastically_longer() {
        // Length-biasing: the residual-life distribution has a heavier body
        // than the fresh sojourn distribution (E[T_e] > E[T] when the
        // sojourn variance exceeds the squared mean — trivially true here
        // since the variance is infinite).
        let d = HeavyTailedSojourn::from_alpha(0.8, 0.002);
        let mut r = rng(84);
        let n = 100_000;
        let fresh: f64 = (0..n).map(|_| d.sample(&mut r)).sum::<f64>() / n as f64;
        let equil: f64 = (0..n).map(|_| d.sample_equilibrium(&mut r)).sum::<f64>() / n as f64;
        assert!(
            equil > 2.0 * fresh,
            "equilibrium residual mean {equil} should dominate fresh mean {fresh}"
        );
    }

    #[test]
    fn on_fraction_is_half() {
        let d = HeavyTailedSojourn::from_alpha(0.8, 0.002);
        let mut p = FractalOnOff::new(d);
        let mut r = rng(85);
        // Heavy-tailed sojourns make the time average converge like
        // T^{-(gamma-1)} rather than T^{-1/2}; average over independent
        // replications to get a usable tolerance.
        let frames = 100_000;
        let ts = 0.04;
        let reps = 6;
        let mut frac = 0.0;
        for _ in 0..reps {
            p.reset(&mut r);
            let on: f64 = (0..frames).map(|_| p.on_time(ts, &mut r)).sum();
            frac += on / (frames as f64 * ts) / reps as f64;
        }
        assert!((frac - 0.5).abs() < 0.04, "ON fraction {frac}");
    }

    #[test]
    fn on_time_bounded_by_window() {
        let d = HeavyTailedSojourn::from_alpha(0.7, 0.001);
        let mut p = FractalOnOff::new(d);
        let mut r = rng(86);
        for _ in 0..10_000 {
            let t = p.on_time(0.04, &mut r);
            assert!((0.0..=0.04 + 1e-12).contains(&t), "on time {t}");
        }
    }

    #[test]
    fn zero_window_costs_nothing() {
        let d = HeavyTailedSojourn::from_alpha(0.8, 0.002);
        let mut p = FractalOnOff::new(d);
        let mut r = rng(87);
        assert_eq!(p.on_time(0.0, &mut r), 0.0);
    }

    #[test]
    fn ensemble_on_probability_at_fixed_time() {
        // Across many independent replications, P(ON during [0, dt]) -> 1/2
        // immediately — the equilibrium start has no warm-up transient.
        let d = HeavyTailedSojourn::from_alpha(0.8, 0.002);
        let mut r = rng(88);
        let reps = 100_000;
        let mut on_acc = 0.0;
        for _ in 0..reps {
            let mut p = FractalOnOff::new(d);
            on_acc += p.on_time(0.001, &mut r) / 0.001;
        }
        let frac = on_acc / reps as f64;
        assert!((frac - 0.5).abs() < 0.01, "ensemble ON fraction {frac}");
    }

    #[test]
    #[should_panic]
    fn rejects_gamma_out_of_range() {
        HeavyTailedSojourn::new(2.5, 0.01);
    }

    #[test]
    #[should_panic]
    fn rejects_alpha_out_of_range() {
        HeavyTailedSojourn::from_alpha(1.2, 0.01);
    }
}

//! Typed parameter errors for the model zoo.
//!
//! Model constructors historically asserted on bad parameters. That is fine
//! at an interactive prompt but not inside a long-running experiment driver,
//! where one mistyped ρ must surface as a recoverable error, not a panic
//! that takes every other queued experiment with it. Each validated
//! constructor has a `try_*` variant returning [`ModelError`]; the
//! panicking `new` forms remain as thin wrappers for tests and quick
//! scripts.

use std::fmt;

/// A model was given parameters outside its admissible range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelError {
    /// Which model rejected its parameters (e.g. `"DAR(p)"`).
    pub model: &'static str,
    /// What is wrong with them.
    pub message: String,
}

impl ModelError {
    /// Builds an error for `model` with the given explanation.
    pub fn new(model: &'static str, message: impl Into<String>) -> Self {
        Self {
            model,
            message: message.into(),
        }
    }
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.model, self.message)
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_model() {
        let e = ModelError::new("DAR(p)", "rho out of range");
        assert_eq!(e.to_string(), "DAR(p): rho out of range");
        let _: &dyn std::error::Error = &e;
    }
}

//! Clegg–Dodson Markov-chain LRD generator.
//!
//! Clegg & Dodson showed that a *countable-state Markov chain* can generate
//! exact long-range dependence: a binary source whose sojourn times in each
//! state are drawn from a discrete heavy-tailed (Zipf-tail) distribution
//! `P(K ≥ k) = k^{-γ}` with `γ ∈ (1, 2)` has an autocorrelation function
//! decaying like `k^{1-γ}`, i.e. Hurst parameter `H = (3 − γ)/2 ∈ (0.5, 1)`.
//! The chain state is `(phase, remaining steps)`: each step decrements the
//! counter, and when it hits zero the phase flips and a fresh sojourn is
//! drawn — a perfectly ordinary Markov transition structure, yet the
//! resulting process is LRD. That makes it the ideal stress case for the
//! paper's question: does a *Markov* construction with LRD behave like DAR
//! (whose correlations are summable) or like FBNDP (whose are not) under the
//! CTS / CLR analysis?
//!
//! To produce frame sizes with the paper's marginal, `M` independent chains
//! are superposed and the ON-count is mapped affinely onto the target
//! mean/sd — the same moment-matching transform the FGN and F-ARIMA models
//! use (`x = mean + sd·z`). The count of `M` fair ON/OFF chains has mean
//! `M/2` and variance `M/4`, so `x = mean + 2·sd·(S − M/2)/√M` matches both
//! moments exactly, and for `M ≳ 15` the marginal is Gaussian to good
//! approximation (the same CLT argument the paper's FBNDP superposition
//! makes).
//!
//! The process starts in equilibrium: each chain's initial phase is
//! ON/OFF with probability ½ and its initial *residual* sojourn is drawn
//! from the discrete residual-life distribution `P(R = r) = P(K ≥ r)/E[K]
//! = r^{-γ}/ζ(γ)`, inverted numerically via the Hurwitz zeta function. The
//! analytic ACF is computed exactly from the renewal parity identity
//! `r(k) = E[(−1)^{N(k)}]`, where `N(k)` counts phase flips in `k` steps.

use crate::error::ModelError;
use crate::traits::FrameProcess;
use rand::{Rng, RngCore};
use vbr_stats::special::{hurwitz_zeta, riemann_zeta};

/// Parameters of the [`CleggProcess`] Markov-chain LRD source.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CleggParams {
    /// Target Hurst parameter, strictly inside `(0.5, 1)`; the sojourn tail
    /// exponent is `γ = 3 − 2H`.
    pub h: f64,
    /// Number of independent binary chains superposed (`≥ 1`); larger values
    /// make the marginal more Gaussian at `O(M)` cost per frame.
    pub chains: usize,
    /// Target marginal mean (cells/frame), positive: frame sizes are rates.
    pub mean: f64,
    /// Target marginal standard deviation, positive.
    pub sd: f64,
}

impl CleggParams {
    /// Validates the parameter set without constructing the process.
    pub fn try_validate(&self) -> Result<(), ModelError> {
        let err = |msg: String| Err(ModelError::new("Clegg", msg));
        if !self.h.is_finite() || self.h <= 0.5 || self.h >= 1.0 {
            return err(format!("H must lie strictly in (0.5, 1), got {}", self.h));
        }
        if self.chains == 0 {
            return err("need at least one chain".to_string());
        }
        if !self.mean.is_finite() || self.mean <= 0.0 {
            return err(format!("mean rate must be positive, got {}", self.mean));
        }
        if !self.sd.is_finite() || self.sd <= 0.0 {
            return err(format!("sd must be positive, got {}", self.sd));
        }
        Ok(())
    }
}

/// Discrete heavy-tailed sojourn law `P(K ≥ k) = k^{-γ}`, `k = 1, 2, …`.
///
/// `γ ∈ (1, 2)`: the mean `E[K] = ζ(γ)` is finite but the variance is
/// infinite — exactly the regime where alternating renewals are LRD.
#[derive(Debug, Clone, Copy, PartialEq)]
struct ZipfSojourn {
    gamma: f64,
    /// `ζ(γ) = E[K]`, cached for equilibrium draws.
    zeta: f64,
}

impl ZipfSojourn {
    fn new(gamma: f64) -> Self {
        debug_assert!(gamma > 1.0 && gamma < 2.0);
        Self {
            gamma,
            zeta: riemann_zeta(gamma),
        }
    }

    /// `P(K ≥ k)` for `k ≥ 1`.
    fn survival_from(&self, k: u64) -> f64 {
        (k as f64).powf(-self.gamma)
    }

    /// `P(K = k)` for `k ≥ 1`.
    fn pmf(&self, k: u64) -> f64 {
        self.survival_from(k) - self.survival_from(k + 1)
    }

    /// Draws a fresh sojourn by closed-form inversion: the smallest `k`
    /// with `(k+1)^{-γ} ≤ 1 − u`.
    fn sample(&self, rng: &mut dyn RngCore) -> u64 {
        let u: f64 = rng.gen::<f64>();
        let x = (1.0 - u).powf(-1.0 / self.gamma);
        // min(·) guards the (probability ~1e-16) far tail against u64
        // overflow without disturbing any achievable double value below it.
        (x.min(9.0e15).ceil() as u64).saturating_sub(1).max(1)
    }

    /// Draws an equilibrium *residual* sojourn `P(R = r) = r^{-γ}/ζ(γ)` by
    /// numeric inversion of the Hurwitz-zeta tail
    /// `P(R > r) = ζ(γ, r + 1)/ζ(γ)`.
    fn sample_residual(&self, rng: &mut dyn RngCore) -> u64 {
        let u: f64 = rng.gen::<f64>();
        let target = (1.0 - u) * self.zeta; // find smallest r: ζ(γ, r+1) ≤ target
        if hurwitz_zeta(self.gamma, 2.0) <= target {
            return 1;
        }
        // Exponential search for a bracket, then integer bisection.
        // Invariant: ζ(γ, lo + 1) > target ≥ ζ(γ, hi + 1).
        let mut lo = 1u64;
        let mut hi = 2u64;
        while hurwitz_zeta(self.gamma, (hi + 1) as f64) > target {
            lo = hi;
            hi = hi.saturating_mul(2);
            if hi >= 1 << 52 {
                break;
            }
        }
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            if hurwitz_zeta(self.gamma, (mid + 1) as f64) > target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        hi
    }
}

/// The Clegg–Dodson Markov-chain LRD frame process: `M` superposed binary
/// chains with Zipf-tail sojourns, affinely mapped to the target marginal.
#[derive(Debug, Clone)]
pub struct CleggProcess {
    params: CleggParams,
    sojourn: ZipfSojourn,
    /// Affine output map `x = mean + scale·(S − M/2)`.
    scale: f64,
    /// Current phase of each chain (`true` = ON).
    phases: Vec<bool>,
    /// Remaining steps of each chain's current sojourn (`≥ 1` once
    /// initialized).
    remaining: Vec<u64>,
    initialized: bool,
}

impl CleggProcess {
    /// Builds the process, panicking on invalid parameters.
    ///
    /// # Panics
    /// Panics if [`CleggParams::try_validate`] rejects the parameters.
    pub fn new(params: CleggParams) -> Self {
        match Self::try_new(params) {
            Ok(p) => p,
            Err(e) => panic!("{e}"),
        }
    }

    /// Builds the process, returning a typed error on invalid parameters.
    pub fn try_new(params: CleggParams) -> Result<Self, ModelError> {
        params.try_validate()?;
        let gamma = 3.0 - 2.0 * params.h;
        let m = params.chains;
        Ok(Self {
            params,
            sojourn: ZipfSojourn::new(gamma),
            scale: 2.0 * params.sd / (m as f64).sqrt(),
            phases: vec![false; m],
            remaining: vec![0; m],
            initialized: false,
        })
    }

    /// The validated parameter set.
    pub fn params(&self) -> &CleggParams {
        &self.params
    }

    /// Sojourn tail exponent `γ = 3 − 2H`.
    pub fn gamma(&self) -> f64 {
        self.sojourn.gamma
    }

    /// Equilibrium start: each chain gets an independent fair phase and a
    /// residual-life sojourn, so the superposition is stationary from the
    /// first emitted frame.
    fn ensure_init(&mut self, rng: &mut dyn RngCore) {
        if self.initialized {
            return;
        }
        let _s = vbr_obs::span!("clegg.equilibrium");
        for i in 0..self.phases.len() {
            self.phases[i] = rng.gen::<f64>() < 0.5;
            self.remaining[i] = self.sojourn.sample_residual(rng);
        }
        self.initialized = true;
    }

    /// Advances every chain by one step (after the current frame was
    /// emitted): decrement, and on expiry flip the phase and draw a fresh
    /// full sojourn.
    fn advance(&mut self, rng: &mut dyn RngCore) {
        for i in 0..self.phases.len() {
            self.remaining[i] -= 1;
            if self.remaining[i] == 0 {
                self.phases[i] = !self.phases[i];
                self.remaining[i] = self.sojourn.sample(rng);
            }
        }
    }

    fn emit(&self) -> f64 {
        let on = self.phases.iter().filter(|&&p| p).count() as f64;
        self.params.mean + self.scale * (on - self.phases.len() as f64 / 2.0)
    }
}

impl FrameProcess for CleggProcess {
    fn next_frame(&mut self, rng: &mut dyn RngCore) -> f64 {
        self.ensure_init(rng);
        let x = self.emit();
        self.advance(rng);
        x
    }

    fn fill_frames(&mut self, out: &mut [f64], rng: &mut dyn RngCore) {
        // Hoists only the init check and the virtual dispatch; the per-chain
        // draw sequence is exactly the scalar loop's.
        self.ensure_init(rng);
        for slot in out.iter_mut() {
            *slot = self.emit();
            self.advance(rng);
        }
    }

    fn mean(&self) -> f64 {
        self.params.mean
    }

    fn variance(&self) -> f64 {
        self.params.sd * self.params.sd
    }

    fn autocorrelations(&self, max_lag: usize) -> Vec<f64> {
        // Renewal parity identity: the chains flip state at renewal epochs,
        // so B_k = B_0 iff the flip count N(k) is even, and
        // r(k) = E[(−1)^{N(k)}] under the equilibrium delay distribution.
        // Superposing iid chains and applying an affine map leaves the ACF
        // unchanged.
        let g = self.sojourn.gamma;
        let zeta = self.sojourn.zeta;
        // u(k): parity functional of the *ordinary* renewal process.
        let mut u = vec![0.0; max_lag + 1];
        u[0] = 1.0;
        for k in 1..=max_lag {
            let mut acc = self.sojourn.survival_from(k as u64 + 1); // P(K > k)
            for j in 1..=k {
                acc -= self.sojourn.pmf(j as u64) * u[k - j];
            }
            u[k] = acc;
        }
        // r(k): same functional under the equilibrium (residual) delay
        // e(j) = j^{-γ}/ζ(γ), with tail P(R > k) = ζ(γ, k+1)/ζ(γ).
        let mut r = vec![0.0; max_lag + 1];
        r[0] = 1.0;
        for k in 1..=max_lag {
            let mut acc = hurwitz_zeta(g, k as f64 + 1.0) / zeta;
            for j in 1..=k {
                acc -= (j as f64).powf(-g) / zeta * u[k - j];
            }
            r[k] = acc;
        }
        r
    }

    fn reset(&mut self, rng: &mut dyn RngCore) {
        self.initialized = false;
        self.ensure_init(rng);
    }

    fn boxed_clone(&self) -> Box<dyn FrameProcess> {
        Box::new(self.clone())
    }

    fn label(&self) -> String {
        format!("Clegg(H={:.3},M={})", self.params.h, self.params.chains)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::test_support::check_analytic_consistency;
    use vbr_stats::rng::Xoshiro256PlusPlus;

    fn params(h: f64) -> CleggParams {
        CleggParams {
            h,
            chains: 8,
            mean: 500.0,
            sd: 70.710_678,
        }
    }

    #[test]
    fn rejects_bad_parameters() {
        for bad_h in [0.5, 1.0, 0.3, 1.4, f64::NAN] {
            assert!(CleggProcess::try_new(CleggParams { h: bad_h, ..params(0.8) }).is_err());
        }
        assert!(CleggProcess::try_new(CleggParams {
            chains: 0,
            ..params(0.8)
        })
        .is_err());
        assert!(CleggProcess::try_new(CleggParams {
            mean: -1.0,
            ..params(0.8)
        })
        .is_err());
        assert!(CleggProcess::try_new(CleggParams {
            sd: 0.0,
            ..params(0.8)
        })
        .is_err());
    }

    #[test]
    #[should_panic(expected = "Clegg")]
    fn new_panics_on_bad_h() {
        CleggProcess::new(CleggParams { h: 1.2, ..params(0.8) });
    }

    #[test]
    fn sojourn_sampler_matches_cdf() {
        let s = ZipfSojourn::new(1.4); // H = 0.8
        let mut rng = Xoshiro256PlusPlus::from_seed_u64(11);
        let n = 200_000;
        let draws: Vec<u64> = (0..n).map(|_| s.sample(&mut rng)).collect();
        assert!(draws.iter().all(|&k| k >= 1));
        for k in [1u64, 2, 3, 5, 10, 30, 100] {
            let emp = draws.iter().filter(|&&d| d >= k).count() as f64 / n as f64;
            let want = s.survival_from(k);
            assert!(
                (emp - want).abs() < 0.006,
                "P(K >= {k}): empirical {emp} vs {want}"
            );
        }
    }

    #[test]
    fn residual_sampler_matches_equilibrium_pmf() {
        let s = ZipfSojourn::new(1.4);
        let mut rng = Xoshiro256PlusPlus::from_seed_u64(12);
        let n = 200_000;
        let draws: Vec<u64> = (0..n).map(|_| s.sample_residual(&mut rng)).collect();
        for r in [1u64, 2, 3, 5, 10] {
            let emp = draws.iter().filter(|&&d| d == r).count() as f64 / n as f64;
            let want = (r as f64).powf(-s.gamma) / s.zeta;
            assert!(
                (emp - want).abs() < 0.005,
                "P(R = {r}): empirical {emp} vs {want}"
            );
        }
        // Mean residual should match Σ r·r^{-γ}/ζ(γ) = ζ(γ−1)/ζ(γ)… which is
        // infinite for γ < 2 — so just check the tail really is heavy: some
        // draw should exceed what any geometric sojourn would ever produce.
        assert!(draws.iter().any(|&d| d > 10_000));
    }

    #[test]
    fn analytic_acf_matches_sample_path() {
        // Moderate H keeps the LRD-induced sample-mean wander small enough
        // for a deterministic tolerance at this path length.
        let mut m = CleggProcess::new(params(0.7));
        check_analytic_consistency(&mut m, 0x000C_1E66, 200_000, 16, 6.0, 0.12, 0.05);
    }

    #[test]
    fn acf_is_positive_and_decays_like_a_power_law() {
        let m = CleggProcess::new(params(0.8));
        let acf = m.autocorrelations(2048);
        // Positive everywhere; monotone only past the short transient — the
        // sojourn mass at K = 1 gives the chain an alternating component
        // that ripples through the first few lags.
        for (k, &r) in acf.iter().enumerate().skip(1) {
            assert!(r > 0.0, "acf[{k}] = {r} not positive");
        }
        for k in 17..=2048 {
            assert!(acf[k] < acf[k - 1] + 1e-12, "acf not decreasing at {k}");
        }
        // Asymptotic slope: r(k) ~ k^{2H-2} = k^{-0.4}. Fit over one decade.
        let (mut xs, mut ys) = (Vec::new(), Vec::new());
        for k in [128usize, 181, 256, 362, 512, 724, 1024, 1448, 2048] {
            xs.push((k as f64).ln());
            ys.push(acf[k].ln());
        }
        let fit = vbr_stats::LinearFit::fit(&xs, &ys);
        assert!(
            (fit.slope - (-0.4)).abs() < 0.08,
            "ACF tail slope {} vs -0.4",
            fit.slope
        );
    }

    #[test]
    fn equilibrium_start_is_stationary_at_lag_zero() {
        // The first frame must already follow the stationary law: average
        // the *first* emission over many replications.
        let mut m = CleggProcess::new(params(0.8));
        let mut rng = Xoshiro256PlusPlus::from_seed_u64(77);
        let n = 60_000;
        let mut acc = 0.0;
        let mut acc2 = 0.0;
        for _ in 0..n {
            m.reset(&mut rng);
            let x = m.next_frame(&mut rng);
            acc += x;
            acc2 += x * x;
        }
        let mean = acc / n as f64;
        let var = acc2 / n as f64 - mean * mean;
        assert!((mean - 500.0).abs() < 1.5, "first-frame mean {mean}");
        assert!((var - 5000.0).abs() < 200.0, "first-frame var {var}");
    }
}

//! I.i.d. frame sizes — the memoryless anchor model.
//!
//! Zero correlation at every positive lag; the CTS of this model is exactly 1
//! for every buffer size, which makes it the degenerate reference point for
//! the paper's Critical Time Scale analysis.

use crate::error::ModelError;
use crate::marginal::Marginal;
use crate::traits::FrameProcess;
use rand::RngCore;

/// An i.i.d. frame-size process with an arbitrary marginal.
#[derive(Debug, Clone)]
pub struct IidProcess {
    marginal: Marginal,
}

impl IidProcess {
    /// Creates the process.
    ///
    /// # Panics
    /// Panics on an invalid marginal; see [`try_new`](Self::try_new).
    pub fn new(marginal: Marginal) -> Self {
        match Self::try_new(marginal) {
            Ok(p) => p,
            Err(e) => panic!("{e}"),
        }
    }

    /// Validated constructor: rejects an invalid marginal.
    pub fn try_new(marginal: Marginal) -> Result<Self, ModelError> {
        marginal.try_validate()?;
        Ok(Self { marginal })
    }
}

impl FrameProcess for IidProcess {
    fn next_frame(&mut self, rng: &mut dyn RngCore) -> f64 {
        self.marginal.sample(rng)
    }

    fn fill_frames(&mut self, out: &mut [f64], rng: &mut dyn RngCore) {
        for slot in out.iter_mut() {
            *slot = self.marginal.sample(rng);
        }
    }

    fn mean(&self) -> f64 {
        self.marginal.mean()
    }

    fn variance(&self) -> f64 {
        self.marginal.variance()
    }

    fn autocorrelations(&self, max_lag: usize) -> Vec<f64> {
        let mut r = vec![0.0; max_lag + 1];
        r[0] = 1.0;
        r
    }

    fn reset(&mut self, _rng: &mut dyn RngCore) {}

    fn boxed_clone(&self) -> Box<dyn FrameProcess> {
        Box::new(self.clone())
    }

    fn label(&self) -> String {
        "IID".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::test_support::check_analytic_consistency;

    #[test]
    fn matches_analytics() {
        let mut p = IidProcess::new(Marginal::paper_gaussian());
        check_analytic_consistency(&mut p, 101, 200_000, 5, 1.0, 0.03, 0.02);
    }

    #[test]
    fn acf_is_delta() {
        let p = IidProcess::new(Marginal::paper_gaussian());
        let r = p.autocorrelations(4);
        assert_eq!(r, vec![1.0, 0.0, 0.0, 0.0, 0.0]);
    }
}

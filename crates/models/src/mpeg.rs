//! MPEG GOP-structured VBR source — extension model (paper §6.2 names
//! "finding CTS of … MPEG-coded video" as ongoing work).
//!
//! MPEG traffic is cyclostationary: frames follow a periodic
//! Group-of-Pictures pattern (e.g. `IBBPBBPBBPBB`), with I frames several
//! times larger than P and B frames, modulated by slowly varying scene
//! activity. The model here is
//!
//! ```text
//! X_n = b_{(n+Θ) mod P} · A_n + ε_n
//! ```
//!
//! * `b` — deterministic per-frame-type base sizes following the GOP pattern;
//! * `A` — a scene-activity DAR(1) with mean 1 (slow geometric mixing,
//!   modelling scene changes as value-holding jumps);
//! * `ε` — i.i.d. Gaussian coding noise;
//! * `Θ` — a uniformly random phase, which makes the process stationary
//!   (WSS) so that the CTS machinery applies. With random phase the ACF has
//!   an exact closed form used by [`FrameProcess::autocorrelations`]:
//!
//! ```text
//! r(k)·σ² = Cov_b(k)·(σ_A² ρ^k + 1) + b̄₍₂₎(k)·σ_A²·ρᵏ − … (see code)
//! ```
//!
//! Derivation: with `E[A]=1`, `Var[A]=σ_A²`, `r_A(k)=ρᵏ` and phase-averaged
//! products `P_b(k) = (1/P)Σᵢ bᵢ b_{i+k}`,
//! `Cov(X_n, X_{n+k}) = P_b(k)·σ_A²·ρᵏ + (P_b(k) − μ_b²) + σ_ε²·δ_k`.

use crate::dar::{DarParams, DarProcess};
use crate::marginal::Marginal;
use crate::traits::FrameProcess;
use rand::{Rng, RngCore};
use vbr_stats::dist::Normal;

/// A periodic GOP frame-type pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct GopPattern {
    /// Base size (cells) for each position in the GOP cycle.
    base_sizes: Vec<f64>,
}

impl GopPattern {
    /// Builds a pattern from a string of `I`, `P`, `B` characters and the
    /// base sizes of each frame type.
    ///
    /// # Panics
    /// Panics on an empty pattern, characters outside {I, P, B}, or
    /// non-positive sizes.
    pub fn from_str(pattern: &str, i_size: f64, p_size: f64, b_size: f64) -> Self {
        assert!(!pattern.is_empty(), "empty GOP pattern");
        for &s in &[i_size, p_size, b_size] {
            assert!(s > 0.0 && s.is_finite(), "invalid frame size {s}");
        }
        let base_sizes = pattern
            .chars()
            .map(|c| match c {
                'I' => i_size,
                'P' => p_size,
                'B' => b_size,
                other => panic!("invalid GOP character {other:?}, expected I/P/B"),
            })
            .collect();
        Self { base_sizes }
    }

    /// The canonical 12-frame `IBBPBBPBBPBB` pattern with size ratios
    /// loosely based on published MPEG-1 trace statistics (I ≈ 5× B,
    /// P ≈ 2.5× B).
    pub fn canonical(mean_frame: f64) -> Self {
        // Weights: I=5, P=2.5 (x3), B=1 (x8) over 12 frames -> mean weight
        // (5 + 7.5 + 8)/12 = 20.5/12.
        let unit = mean_frame * 12.0 / 20.5;
        Self::from_str("IBBPBBPBBPBB", 5.0 * unit, 2.5 * unit, unit)
    }

    /// GOP period P.
    pub fn period(&self) -> usize {
        self.base_sizes.len()
    }

    /// Base size at cycle position `i`.
    pub fn base(&self, i: usize) -> f64 {
        self.base_sizes[i % self.base_sizes.len()]
    }

    /// Phase-averaged mean `μ_b = (1/P)Σ bᵢ`.
    pub fn mean(&self) -> f64 {
        self.base_sizes.iter().sum::<f64>() / self.period() as f64
    }

    /// Phase-averaged lagged product `P_b(k) = (1/P)Σᵢ bᵢ b_{(i+k) mod P}`.
    pub fn lagged_product(&self, k: usize) -> f64 {
        let p = self.period();
        (0..p).map(|i| self.base(i) * self.base(i + k)).sum::<f64>() / p as f64
    }
}

/// GOP-structured MPEG VBR source with DAR(1) scene activity.
#[derive(Debug, Clone)]
pub struct MpegGopModel {
    pattern: GopPattern,
    activity: DarProcess,
    activity_var: f64,
    activity_rho: f64,
    noise_sd: f64,
    phase: usize,
    position: usize,
    initialized: bool,
}

impl MpegGopModel {
    /// Creates the model.
    ///
    /// * `pattern` — GOP base sizes;
    /// * `activity_rho` — DAR(1) hold probability of the scene process
    ///   (values near 1 model long scenes);
    /// * `activity_sd` — standard deviation of the scene multiplier (mean 1);
    /// * `noise_sd` — per-frame Gaussian coding noise (cells).
    ///
    /// # Panics
    /// Panics on invalid parameters.
    pub fn new(pattern: GopPattern, activity_rho: f64, activity_sd: f64, noise_sd: f64) -> Self {
        assert!(
            activity_sd > 0.0 && activity_sd < 1.0,
            "activity_sd must be in (0,1) to keep multipliers positive-ish, got {activity_sd}"
        );
        assert!(noise_sd >= 0.0 && noise_sd.is_finite(), "invalid noise sd");
        let activity = DarProcess::new(DarParams::dar1(
            activity_rho,
            Marginal::Gaussian {
                mean: 1.0,
                sd: activity_sd,
            },
        ));
        Self {
            pattern,
            activity,
            activity_var: activity_sd * activity_sd,
            activity_rho,
            noise_sd,
            phase: 0,
            position: 0,
            initialized: false,
        }
    }

    fn ensure_init(&mut self, rng: &mut dyn RngCore) {
        if !self.initialized {
            self.phase = rng.gen_range(0..self.pattern.period());
            self.position = 0;
            self.initialized = true;
        }
    }

    /// The GOP pattern.
    pub fn pattern(&self) -> &GopPattern {
        &self.pattern
    }
}

impl FrameProcess for MpegGopModel {
    fn next_frame(&mut self, rng: &mut dyn RngCore) -> f64 {
        self.ensure_init(rng);
        let base = self.pattern.base(self.position + self.phase);
        self.position = (self.position + 1) % self.pattern.period();
        let a = self.activity.next_frame(rng);
        let eps = if self.noise_sd > 0.0 {
            Normal::new(0.0, self.noise_sd).sample(rng)
        } else {
            0.0
        };
        base * a + eps
    }

    fn mean(&self) -> f64 {
        // E[X] = μ_b · E[A] = μ_b.
        self.pattern.mean()
    }

    fn variance(&self) -> f64 {
        // Var[X] = E[b²](σ_A² + 1) − μ_b² + σ_ε²
        //        = P_b(0)(σ_A² + 1) − μ_b² + σ_ε².
        let pb0 = self.pattern.lagged_product(0);
        let mu = self.pattern.mean();
        pb0 * (self.activity_var + 1.0) - mu * mu + self.noise_sd * self.noise_sd
    }

    fn autocorrelations(&self, max_lag: usize) -> Vec<f64> {
        // Cov(X_n, X_{n+k}) = P_b(k)·σ_A²·ρᵏ + (P_b(k) − μ_b²) + σ_ε² δ_k.
        let var = self.variance();
        let mu2 = self.pattern.mean().powi(2);
        (0..=max_lag)
            .map(|k| {
                let pbk = self.pattern.lagged_product(k);
                let cov = pbk * self.activity_var * self.activity_rho.powi(k as i32)
                    + (pbk - mu2)
                    + if k == 0 {
                        self.noise_sd * self.noise_sd
                    } else {
                        0.0
                    };
                cov / var
            })
            .collect()
    }

    fn reset(&mut self, rng: &mut dyn RngCore) {
        self.initialized = false;
        self.activity.reset(rng);
        self.ensure_init(rng);
    }

    fn boxed_clone(&self) -> Box<dyn FrameProcess> {
        Box::new(self.clone())
    }

    fn label(&self) -> String {
        format!("MPEG(GOP={})", self.pattern.period())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vbr_stats::rng::Xoshiro256PlusPlus;
    use vbr_stats::{sample_acf_fft, Moments};

    fn model() -> MpegGopModel {
        MpegGopModel::new(GopPattern::canonical(500.0), 0.95, 0.3, 30.0)
    }

    #[test]
    fn canonical_pattern_mean() {
        let p = GopPattern::canonical(500.0);
        assert_eq!(p.period(), 12);
        assert!((p.mean() - 500.0).abs() < 1e-9);
        // I frame is the largest.
        assert!(p.base(0) > p.base(3) && p.base(3) > p.base(1));
    }

    #[test]
    fn lagged_product_is_periodic() {
        let p = GopPattern::canonical(500.0);
        for k in 0..5 {
            assert!((p.lagged_product(k) - p.lagged_product(k + 12)).abs() < 1e-9);
        }
    }

    #[test]
    fn acf_shows_gop_periodicity() {
        let m = model();
        let r = m.autocorrelations(36);
        // Lag-12 correlation (same frame type) must exceed lag-6.
        assert!(r[12] > r[6], "r12 {} vs r6 {}", r[12], r[6]);
        assert!(r[24] > r[18]);
        assert!((r[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn path_matches_analytic_moments_and_acf() {
        let mut m = model();
        let mut rng = Xoshiro256PlusPlus::from_seed_u64(141);
        m.reset(&mut rng);
        let path: Vec<f64> = (0..400_000).map(|_| m.next_frame(&mut rng)).collect();
        let mut acc = Moments::new();
        acc.extend(&path);
        assert!((acc.mean() - m.mean()).abs() < 2.0, "mean {}", acc.mean());
        assert!(
            (acc.variance() - m.variance()).abs() < 0.05 * m.variance(),
            "var {} vs {}",
            acc.variance(),
            m.variance()
        );
        let emp = sample_acf_fft(&path, 24);
        let ana = m.autocorrelations(24);
        for k in 1..=24 {
            assert!(
                (emp[k] - ana[k]).abs() < 0.03,
                "lag {k}: {} vs {}",
                emp[k],
                ana[k]
            );
        }
    }

    #[test]
    fn random_phase_makes_ensemble_stationary() {
        // The ensemble mean of frame 0 across replications must equal the
        // phase-averaged mean, not the I-frame size.
        let mut rng = Xoshiro256PlusPlus::from_seed_u64(142);
        let mut acc = 0.0;
        let reps = 60_000;
        for _ in 0..reps {
            let mut m = model();
            acc += m.next_frame(&mut rng);
        }
        let mean0 = acc / reps as f64;
        assert!(
            (mean0 - 500.0).abs() < 3.0,
            "ensemble frame-0 mean {mean0} should be 500"
        );
    }

    #[test]
    #[should_panic]
    fn rejects_bad_gop_char() {
        GopPattern::from_str("IXB", 1.0, 1.0, 1.0);
    }
}

//! The frame-process abstraction shared by every traffic model.

use rand::RngCore;

/// A stationary stochastic source of video frame sizes.
///
/// A `FrameProcess` plays two roles at once, mirroring how the paper uses its
/// models:
///
/// 1. **Generator** — [`next_frame`](FrameProcess::next_frame) draws the next
///    frame size (cells per frame) along a sample path; the multiplexer
///    simulation consumes this.
/// 2. **Analytic model** — [`mean`](FrameProcess::mean),
///    [`variance`](FrameProcess::variance) and
///    [`autocorrelations`](FrameProcess::autocorrelations) expose the exact
///    first- and second-order statistics; the large-deviations analysis
///    (variance function `V(m)`, Critical Time Scale, Bahadur–Rao BOP)
///    consumes these.
///
/// Implementations must be stationary: the analytic statistics describe every
/// point of the generated path (models start in their stationary
/// distribution, using equilibrium/residual-life initialization where the
/// underlying process requires it).
///
/// Frame sizes are `f64`, not integers: the paper's models have Gaussian
/// marginals and its queue is the frame-level fluid recursion, so fractional
/// cells are the natural unit. Discrete-marginal models simply return whole
/// numbers.
pub trait FrameProcess: Send {
    /// Draws the next frame size along the sample path.
    fn next_frame(&mut self, rng: &mut dyn RngCore) -> f64;

    /// Fills `out` with the next `out.len()` consecutive frame sizes.
    ///
    /// Semantically this is exactly `for slot in out { *slot =
    /// self.next_frame(rng) }` — implementations may override it only to
    /// hoist per-frame overhead (block-buffer copies, lazy-init checks,
    /// parameter loads), never to change the draw sequence: the output
    /// *and* the RNG stream position must stay bit-identical to the scalar
    /// loop. The batched simulation runner and the cross-model determinism
    /// suite both rely on this equivalence.
    ///
    /// Note the default itself already removes the per-frame virtual
    /// dispatch: when called through `dyn FrameProcess`, the one virtual
    /// `fill_frames` call runs a monomorphized loop whose `next_frame`
    /// calls are statically dispatched (and typically inlined).
    fn fill_frames(&mut self, out: &mut [f64], rng: &mut dyn RngCore) {
        for slot in out.iter_mut() {
            *slot = self.next_frame(rng);
        }
    }

    /// Stationary mean frame size (cells/frame).
    fn mean(&self) -> f64;

    /// Stationary frame-size variance (cells²).
    fn variance(&self) -> f64;

    /// Autocorrelation function at lags `0..=max_lag`, with `r(0) = 1`.
    ///
    /// Returned as a vector because most consumers (the `V(m)` variance
    /// function, the CTS search) need a contiguous prefix of lags, and
    /// several models compute `r(k)` by recursion in `k`.
    fn autocorrelations(&self, max_lag: usize) -> Vec<f64>;

    /// Resets internal state to a fresh stationary start.
    ///
    /// After `reset`, the process behaves as a new independent realization
    /// (given an independent RNG stream); used between replications.
    fn reset(&mut self, rng: &mut dyn RngCore);

    /// Clones into a boxed trait object (object-safe `Clone`).
    fn boxed_clone(&self) -> Box<dyn FrameProcess>;

    /// Human-readable model label used in experiment output, e.g.
    /// `"Z^0.975"` or `"DAR(2)"`.
    fn label(&self) -> String;
}

impl Clone for Box<dyn FrameProcess> {
    fn clone(&self) -> Self {
        self.boxed_clone()
    }
}

/// Convenience: autocorrelation at a single lag (`r(0) = 1`).
pub fn acf_at(process: &dyn FrameProcess, lag: usize) -> f64 {
    process.autocorrelations(lag)[lag]
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::FrameProcess;
    use vbr_stats::rng::Xoshiro256PlusPlus;
    use vbr_stats::{sample_acf_fft, Moments};

    /// Generates a path and checks sample mean/variance/ACF against the
    /// model's analytic claims. Shared by the model test suites: this is the
    /// contract every `FrameProcess` must satisfy.
    pub fn check_analytic_consistency(
        process: &mut dyn FrameProcess,
        seed: u64,
        n: usize,
        lags: usize,
        mean_tol: f64,
        var_rel_tol: f64,
        acf_tol: f64,
    ) {
        let mut rng = Xoshiro256PlusPlus::from_seed_u64(seed);
        process.reset(&mut rng);
        let mut m = Moments::new();
        let path: Vec<f64> = (0..n)
            .map(|_| {
                let x = process.next_frame(&mut rng);
                m.push(x);
                x
            })
            .collect();

        let mean = process.mean();
        let var = process.variance();
        assert!(
            (m.mean() - mean).abs() < mean_tol,
            "{}: sample mean {} vs analytic {}",
            process.label(),
            m.mean(),
            mean
        );
        assert!(
            (m.variance() - var).abs() < var_rel_tol * var,
            "{}: sample var {} vs analytic {}",
            process.label(),
            m.variance(),
            var
        );

        let analytic = process.autocorrelations(lags);
        let sample = sample_acf_fft(&path, lags);
        for k in 1..=lags {
            assert!(
                (analytic[k] - sample[k]).abs() < acf_tol,
                "{}: lag {k} acf analytic {} vs sample {}",
                process.label(),
                analytic[k],
                sample[k]
            );
        }
    }
}

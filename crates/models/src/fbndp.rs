//! FBNDP: the Fractal-Binomial-Noise-Driven Poisson process (paper §3.2,
//! Ryu & Lowen).
//!
//! M i.i.d. fractal ON/OFF processes are summed into a binomial-valued rate
//! process (0..M processes ON at any instant); that rate, scaled by the
//! per-process ON rate R, modulates a Poisson process. Counting arrivals per
//! video frame (`L_n = N[nT_s] − N[(n−1)T_s]`) gives an **exact long-range
//! dependent** frame-size sequence with closed-form statistics:
//!
//! ```text
//! H      = (α + 1)/2
//! λ      = R·M/2                                   (cells/sec)
//! E[L]   = λ·T_s
//! Var[L] = [1 + (T_s/T₀)^α] · λ·T_s
//! r(k)   = T_s^α/(T_s^α + T₀^α) · ½∇²(k^{α+1})     (k ≥ 1)
//! ```
//!
//! where T₀ (the *fractal onset time*) is a known function of (α, A, R) and
//! controls how much of the variance is fractal. For large M the frame-count
//! marginal approaches a Gaussian — the paper uses M = 15 and M = 30.
//!
//! Simulation draws each frame exactly: the M ON/OFF paths are advanced
//! through the frame window, the integrated ON time sets the conditional
//! Poisson mean, and one Poisson variate is drawn (PTRD keeps that O(1)).

use crate::onoff::{FractalOnOff, HeavyTailedSojourn};
use crate::traits::FrameProcess;
use rand::RngCore;
use vbr_stats::dist::Poisson;

/// Parameters of an FBNDP source, in the paper's (α, A, M, R) form plus the
/// frame duration T_s.
#[derive(Debug, Clone, Copy)]
pub struct FbndpParams {
    /// Fractal exponent α ∈ (0, 1); H = (α+1)/2.
    pub alpha: f64,
    /// Sojourn body/tail crossover A (sec).
    pub a: f64,
    /// Number of superposed ON/OFF processes.
    pub m: usize,
    /// Arrival rate of one process while ON (cells/sec).
    pub r: f64,
    /// Frame duration T_s (sec); the paper uses 0.04 (25 frames/sec).
    pub ts: f64,
}

impl FbndpParams {
    /// Validates ranges.
    fn validate(&self) {
        assert!(
            self.alpha > 0.0 && self.alpha < 1.0,
            "alpha must be in (0,1), got {}",
            self.alpha
        );
        assert!(self.a > 0.0 && self.a.is_finite(), "invalid A {}", self.a);
        assert!(self.m >= 1, "need at least one ON/OFF process");
        assert!(self.r > 0.0 && self.r.is_finite(), "invalid R {}", self.r);
        assert!(self.ts > 0.0 && self.ts.is_finite(), "invalid Ts {}", self.ts);
    }

    /// Hurst parameter `H = (α+1)/2`.
    pub fn hurst(&self) -> f64 {
        (self.alpha + 1.0) / 2.0
    }

    /// Mean aggregate arrival rate `λ = R·M/2` (cells/sec).
    pub fn lambda(&self) -> f64 {
        self.r * self.m as f64 / 2.0
    }

    /// The constant `C(α) = α(α+1)(2−α)^{-1}[(1−α)e^{2−α} + 1]` appearing in
    /// the fractal-onset-time formula.
    fn c_alpha(alpha: f64) -> f64 {
        alpha * (alpha + 1.0) / (2.0 - alpha) * ((1.0 - alpha) * (2.0 - alpha).exp() + 1.0)
    }

    /// Fractal onset time `T₀ = [C(α) R^{-1} A^{α−1}]^{1/α}` (sec).
    pub fn fractal_onset_time(&self) -> f64 {
        (Self::c_alpha(self.alpha) / self.r * self.a.powf(self.alpha - 1.0))
            .powf(1.0 / self.alpha)
    }

    /// Solves (A, R) from frame-level targets: given the desired mean and
    /// variance of the per-frame count, the fractal exponent α, the number
    /// of processes M and the frame duration T_s.
    ///
    /// Inversion used by the paper's Table 1 (its step 8: "the values of T₀
    /// … are determined from the given mean, variance, and α"):
    ///
    /// * `λ = mean/T_s`, `R = 2λ/M`;
    /// * `(T_s/T₀)^α = variance/mean − 1` (requires variance > mean: the
    ///   conditional-Poisson construction is always over-dispersed);
    /// * `A = [T₀^α · R / C(α)]^{1/(α−1)}`.
    ///
    /// # Panics
    /// Panics if `variance <= mean` or any parameter is out of range.
    pub fn from_frame_targets(mean: f64, variance: f64, alpha: f64, m: usize, ts: f64) -> Self {
        assert!(mean > 0.0, "mean must be positive");
        assert!(
            variance > mean,
            "FBNDP frame counts are over-dispersed: need variance {variance} > mean {mean}"
        );
        let lambda = mean / ts;
        let r = 2.0 * lambda / m as f64;
        let ratio = variance / mean - 1.0; // (Ts/T0)^alpha
        let t0 = ts / ratio.powf(1.0 / alpha);
        let a = (t0.powf(alpha) * r / Self::c_alpha(alpha)).powf(1.0 / (alpha - 1.0));
        let params = Self { alpha, a, m, r, ts };
        params.validate();
        params
    }

    /// Frame-count mean `λ·T_s`.
    pub fn frame_mean(&self) -> f64 {
        self.lambda() * self.ts
    }

    /// Frame-count variance `[1 + (T_s/T₀)^α]·λ·T_s`.
    pub fn frame_variance(&self) -> f64 {
        let t0 = self.fractal_onset_time();
        (1.0 + (self.ts / t0).powf(self.alpha)) * self.frame_mean()
    }

    /// The correlation weight `w = T_s^α / (T_s^α + T₀^α) ∈ (0, 1)`.
    pub fn correlation_weight(&self) -> f64 {
        let t0 = self.fractal_onset_time();
        let tsa = self.ts.powf(self.alpha);
        tsa / (tsa + t0.powf(self.alpha))
    }
}

/// Exact-LRD frame autocorrelation `w · ½∇²(k^{2H})` with `2H = α + 1`.
///
/// `∇²` is the second central difference; the `k = 0` value is 1.
pub fn exact_lrd_acf(weight: f64, two_h: f64, max_lag: usize) -> Vec<f64> {
    assert!((0.0..=1.0).contains(&weight), "invalid weight {weight}");
    assert!(
        two_h > 1.0 && two_h < 2.0,
        "2H must be in (1,2), got {two_h}"
    );
    let h = |k: f64| k.powf(two_h);
    let mut r = Vec::with_capacity(max_lag + 1);
    r.push(1.0);
    for k in 1..=max_lag {
        let kf = k as f64;
        r.push(weight * 0.5 * (h(kf + 1.0) - 2.0 * h(kf) + h(kf - 1.0)));
    }
    r
}

/// A running FBNDP frame-count generator.
#[derive(Debug, Clone)]
pub struct Fbndp {
    params: FbndpParams,
    processes: Vec<FractalOnOff>,
}

impl Fbndp {
    /// Builds the generator from parameters.
    ///
    /// # Panics
    /// Panics on out-of-range parameters.
    pub fn new(params: FbndpParams) -> Self {
        params.validate();
        let sojourn = HeavyTailedSojourn::from_alpha(params.alpha, params.a);
        let processes = vec![FractalOnOff::new(sojourn); params.m];
        Self { params, processes }
    }

    /// The parameters this generator was built with.
    pub fn params(&self) -> &FbndpParams {
        &self.params
    }
}

impl FrameProcess for Fbndp {
    fn next_frame(&mut self, rng: &mut dyn RngCore) -> f64 {
        let mut on_total = 0.0;
        for p in &mut self.processes {
            on_total += p.on_time(self.params.ts, rng);
        }
        let conditional_mean = self.params.r * on_total;
        if conditional_mean == 0.0 {
            return 0.0;
        }
        Poisson::new(conditional_mean).sample(rng) as f64
    }

    fn fill_frames(&mut self, out: &mut [f64], rng: &mut dyn RngCore) {
        // Same draws frame by frame (ON/OFF advances, then one Poisson
        // variate); the batch form just hoists the parameter loads.
        let (ts, r) = (self.params.ts, self.params.r);
        for slot in out.iter_mut() {
            let mut on_total = 0.0;
            for p in &mut self.processes {
                on_total += p.on_time(ts, rng);
            }
            let conditional_mean = r * on_total;
            *slot = if conditional_mean == 0.0 {
                0.0
            } else {
                Poisson::new(conditional_mean).sample(rng) as f64
            };
        }
    }

    fn mean(&self) -> f64 {
        self.params.frame_mean()
    }

    fn variance(&self) -> f64 {
        self.params.frame_variance()
    }

    fn autocorrelations(&self, max_lag: usize) -> Vec<f64> {
        exact_lrd_acf(
            self.params.correlation_weight(),
            self.params.alpha + 1.0,
            max_lag,
        )
    }

    fn reset(&mut self, rng: &mut dyn RngCore) {
        for p in &mut self.processes {
            p.reset(rng);
        }
    }

    fn boxed_clone(&self) -> Box<dyn FrameProcess> {
        Box::new(self.clone())
    }

    fn label(&self) -> String {
        format!("FBNDP(a={:.3},M={})", self.params.alpha, self.params.m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vbr_stats::rng::Xoshiro256PlusPlus;
    use vbr_stats::{sample_acf_fft, Moments};

    /// Paper Z^a FBNDP component: mean 250 cells/frame, variance 2500,
    /// alpha 0.8, M 15, Ts 40 ms.
    fn paper_z_component() -> FbndpParams {
        FbndpParams::from_frame_targets(250.0, 2500.0, 0.8, 15, 0.04)
    }

    #[test]
    fn table1_z_component_derived_parameters() {
        let p = paper_z_component();
        // Table 1: lambda = 6250 cells/s, T0 = 2.57 ms, H = 0.9.
        assert!((p.lambda() - 6250.0).abs() < 1e-6, "lambda {}", p.lambda());
        let t0_ms = p.fractal_onset_time() * 1e3;
        assert!((t0_ms - 2.57).abs() < 0.01, "T0 {t0_ms} ms vs 2.57 ms");
        assert!((p.hurst() - 0.9).abs() < 1e-12);
        // Round-trip: the declared frame stats equal the targets.
        assert!((p.frame_mean() - 250.0).abs() < 1e-9);
        assert!((p.frame_variance() - 2500.0).abs() < 1e-6);
    }

    #[test]
    fn table1_v_component_derived_parameters() {
        // V^1 component: mean 250, var 2500, alpha 0.9 -> lambda 6250,
        // T0 = 3.48 ms (Table 1).
        let p = FbndpParams::from_frame_targets(250.0, 2500.0, 0.9, 15, 0.04);
        assert!((p.lambda() - 6250.0).abs() < 1e-6);
        let t0_ms = p.fractal_onset_time() * 1e3;
        assert!((t0_ms - 3.48).abs() < 0.01, "T0 {t0_ms} ms vs 3.48 ms");
    }

    #[test]
    fn table1_l_model_derived_parameters() {
        // L: mean 500, var 5000, alpha 0.72, M = 30 -> lambda 12500,
        // T0 ≈ 1.83-1.9 ms (Table 1 prints 1.83).
        let p = FbndpParams::from_frame_targets(500.0, 5000.0, 0.72, 30, 0.04);
        assert!((p.lambda() - 12_500.0).abs() < 1e-6);
        let t0_ms = p.fractal_onset_time() * 1e3;
        assert!(
            (t0_ms - 1.89).abs() < 0.08,
            "T0 {t0_ms} ms vs Table 1's ~1.83-1.9 ms"
        );
    }

    #[test]
    fn acf_formula_values() {
        let r = exact_lrd_acf(0.9, 1.8, 3);
        // 0.9 * 0.5 * (2^1.8 - 2) = 0.9 * 0.74110 = 0.66699
        assert!((r[1] - 0.666_99).abs() < 1e-4, "r1 {}", r[1]);
        assert!(r[1] > r[2] && r[2] > r[3], "monotone decay");
    }

    #[test]
    fn acf_tail_is_power_law() {
        // r(k) ~ w H(2H-1) k^{2H-2}: the log-log slope over large lags must
        // approach 2H-2 = alpha - 1.
        let alpha = 0.8;
        let r = exact_lrd_acf(0.9, alpha + 1.0, 4096);
        let slope = ((r[4096] / r[1024]).ln()) / ((4096.0_f64 / 1024.0).ln());
        assert!(
            (slope - (alpha - 1.0)).abs() < 0.005,
            "tail slope {slope} vs {}",
            alpha - 1.0
        );
    }

    #[test]
    fn sample_path_mean_and_variance() {
        let mut f = Fbndp::new(paper_z_component());
        let mut rng = Xoshiro256PlusPlus::from_seed_u64(91);
        let mut m = Moments::new();
        for _ in 0..150_000 {
            m.push(f.next_frame(&mut rng));
        }
        assert!((m.mean() - 250.0).abs() < 3.0, "mean {}", m.mean());
        // Heavy-tailed sojourns make the variance estimate noisy; 15% band.
        assert!(
            (m.variance() - 2500.0).abs() < 0.15 * 2500.0,
            "var {}",
            m.variance()
        );
    }

    #[test]
    fn sample_acf_matches_analytic_short_lags() {
        let mut f = Fbndp::new(paper_z_component());
        let mut rng = Xoshiro256PlusPlus::from_seed_u64(92);
        let path: Vec<f64> = (0..400_000).map(|_| f.next_frame(&mut rng)).collect();
        let emp = sample_acf_fft(&path, 10);
        let ana = f.autocorrelations(10);
        for k in 1..=10 {
            assert!(
                (emp[k] - ana[k]).abs() < 0.09,
                "lag {k}: sample {} vs analytic {}",
                emp[k],
                ana[k]
            );
        }
    }

    #[test]
    fn aggregate_is_long_range_dependent() {
        // The aggregated-variance Hurst estimate of a paper-parameter FBNDP
        // path must be well above the SRD value 0.5 and near H = 0.9.
        let mut f = Fbndp::new(paper_z_component());
        let mut rng = Xoshiro256PlusPlus::from_seed_u64(93);
        let path: Vec<f64> = (0..262_144).map(|_| f.next_frame(&mut rng)).collect();
        let h = vbr_stats::aggregated_variance_hurst(&path);
        assert!(
            h.h > 0.75 && h.h < 1.0,
            "estimated H {} for designed H 0.9",
            h.h
        );
    }

    #[test]
    fn marginal_is_approximately_gaussian_for_m15() {
        // Paper: M = 15 "provides a good approximation of the Gaussian
        // marginal" — skewness and excess kurtosis near 0.
        let mut f = Fbndp::new(paper_z_component());
        let mut rng = Xoshiro256PlusPlus::from_seed_u64(94);
        let mut m = Moments::new();
        for _ in 0..300_000 {
            m.push(f.next_frame(&mut rng));
        }
        assert!(m.skewness().abs() < 0.25, "skewness {}", m.skewness());
        assert!(
            m.excess_kurtosis().abs() < 0.5,
            "excess kurtosis {}",
            m.excess_kurtosis()
        );
    }

    #[test]
    #[should_panic]
    fn rejects_underdispersed_targets() {
        FbndpParams::from_frame_targets(250.0, 200.0, 0.8, 15, 0.04);
    }

    #[test]
    fn reset_reinitializes() {
        let mut f = Fbndp::new(paper_z_component());
        let mut rng = Xoshiro256PlusPlus::from_seed_u64(95);
        let a: Vec<f64> = (0..20).map(|_| f.next_frame(&mut rng)).collect();
        f.reset(&mut rng);
        let b: Vec<f64> = (0..20).map(|_| f.next_frame(&mut rng)).collect();
        assert_ne!(a, b);
    }
}

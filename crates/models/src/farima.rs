//! Fractional ARIMA(0, d, 0) — the paper's §2 example of an *asymptotic*
//! LRD process.
//!
//! F-ARIMA(0,d,0) is white noise passed through the fractional difference
//! operator `(1−B)^{-d}` with `d = H − ½ ∈ (0, ½)`. Its ACF has the closed
//! form
//!
//! ```text
//! r(k) = Γ(1−d)·Γ(k+d) / (Γ(d)·Γ(k+1−d))
//!      = r(k−1)·(k−1+d)/(k−d),     r(0) = 1,
//! ```
//!
//! which decays like `k^{2H−2}` *asymptotically* (vs the exact-LRD models
//! whose whole ACF is the power-law second difference) — exactly the
//! asymptotic/exact distinction the paper draws in §2. Generation reuses
//! the circulant-embedding machinery (exact Gaussian blocks, any PSD ACF),
//! so paths are exact in distribution within a block.

use crate::error::ModelError;
use crate::fgn::{cached_circulant, CirculantGenerator, CirculantScratch, FAMILY_FARIMA};
use crate::traits::FrameProcess;
use rand::RngCore;

/// Analytic F-ARIMA(0,d,0) autocorrelations `r(0..=max_lag)`.
///
/// # Panics
/// Panics unless `d ∈ (0, 0.5)`.
pub fn farima_acf(d: f64, max_lag: usize) -> Vec<f64> {
    assert!(d > 0.0 && d < 0.5, "d must be in (0, 0.5), got {d}");
    let mut r = Vec::with_capacity(max_lag + 1);
    r.push(1.0);
    for k in 1..=max_lag {
        let kf = k as f64;
        let prev = r[k - 1];
        r.push(prev * (kf - 1.0 + d) / (kf - d));
    }
    r
}

/// An F-ARIMA(0, d, 0) frame-size process with Gaussian marginal.
#[derive(Debug, Clone)]
pub struct FarimaProcess {
    d: f64,
    mean: f64,
    sd: f64,
    generator: CirculantGenerator,
    acf_cache_lag: usize,
    buffer: Vec<f64>,
    pos: usize,
    scratch: CirculantScratch,
}

impl FarimaProcess {
    /// Creates the process with marginal `N(mean, sd²)`, memory parameter
    /// `d = H − ½ ∈ (0, ½)`, and power-of-two generation block length.
    ///
    /// # Panics
    /// Panics on out-of-range parameters; see [`try_new`](Self::try_new).
    pub fn new(mean: f64, sd: f64, d: f64, block_len: usize) -> Self {
        match Self::try_new(mean, sd, d, block_len) {
            Ok(p) => p,
            Err(e) => panic!("{e}"),
        }
    }

    /// Validated constructor: requires finite `mean`, `sd > 0` and
    /// `d ∈ (0, ½)`.
    pub fn try_new(mean: f64, sd: f64, d: f64, block_len: usize) -> Result<Self, ModelError> {
        let invalid = |message: String| ModelError::new("F-ARIMA(0,d,0)", message);
        if !(sd > 0.0 && sd.is_finite()) {
            return Err(invalid(format!("invalid sd {sd}")));
        }
        if !mean.is_finite() {
            return Err(invalid(format!("invalid mean {mean}")));
        }
        if !(d > 0.0 && d < 0.5) {
            return Err(invalid(format!("d must be in (0, 0.5), got {d}")));
        }
        // Spectra depend only on (d, block_len); share them process-wide
        // so per-source clones and repeated sweeps reuse one setup FFT.
        let generator = cached_circulant((FAMILY_FARIMA, d.to_bits(), 0, block_len), || {
            CirculantGenerator::from_autocovariance(&farima_acf(d, block_len))
        });
        Ok(Self {
            d,
            mean,
            sd,
            generator,
            acf_cache_lag: block_len,
            buffer: Vec::new(),
            pos: 0,
            scratch: CirculantScratch::new(),
        })
    }

    /// Convenience: from a target Hurst parameter `h = d + ½`.
    pub fn from_hurst(mean: f64, sd: f64, h: f64, block_len: usize) -> Self {
        assert!(h > 0.5 && h < 1.0, "H must be in (0.5, 1), got {h}");
        Self::new(mean, sd, h - 0.5, block_len)
    }

    /// Memory parameter d.
    pub fn d(&self) -> f64 {
        self.d
    }

    /// Hurst parameter `H = d + ½`.
    pub fn hurst(&self) -> f64 {
        self.d + 0.5
    }

    /// Regenerates the serving buffer in place (no allocation in steady
    /// state) and rewinds the cursor.
    fn refill(&mut self, rng: &mut dyn RngCore) {
        let _s = vbr_obs::span!("farima.synthesize");
        self.buffer.resize(self.generator.block_len(), 0.0);
        self.generator
            .generate_into(rng, &mut self.scratch, &mut self.buffer);
        self.pos = 0;
    }
}

impl FrameProcess for FarimaProcess {
    fn next_frame(&mut self, rng: &mut dyn RngCore) -> f64 {
        if self.pos >= self.buffer.len() {
            self.refill(rng);
        }
        let z = self.buffer[self.pos];
        self.pos += 1;
        self.mean + self.sd * z
    }

    fn fill_frames(&mut self, out: &mut [f64], rng: &mut dyn RngCore) {
        let mut filled = 0;
        while filled < out.len() {
            if self.pos >= self.buffer.len() {
                self.refill(rng);
            }
            let take = (out.len() - filled).min(self.buffer.len() - self.pos);
            let (mean, sd) = (self.mean, self.sd);
            for (o, &z) in out[filled..filled + take]
                .iter_mut()
                .zip(&self.buffer[self.pos..self.pos + take])
            {
                *o = mean + sd * z;
            }
            self.pos += take;
            filled += take;
        }
    }

    fn mean(&self) -> f64 {
        self.mean
    }

    fn variance(&self) -> f64 {
        self.sd * self.sd
    }

    fn autocorrelations(&self, max_lag: usize) -> Vec<f64> {
        let _ = self.acf_cache_lag;
        farima_acf(self.d, max_lag)
    }

    fn reset(&mut self, _rng: &mut dyn RngCore) {
        self.buffer.clear();
        self.pos = 0;
        self.scratch.reset();
    }

    fn boxed_clone(&self) -> Box<dyn FrameProcess> {
        Box::new(self.clone())
    }

    fn label(&self) -> String {
        format!("F-ARIMA(0,{:.2},0)", self.d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vbr_stats::rng::Xoshiro256PlusPlus;
    use vbr_stats::{sample_acf_fft, Moments};

    #[test]
    fn acf_closed_form_anchors() {
        // r(1) = d/(1-d).
        for &d in &[0.1, 0.25, 0.4] {
            let r = farima_acf(d, 4);
            assert!((r[1] - d / (1.0 - d)).abs() < 1e-12, "d={d}");
            // Positive and decreasing.
            for w in r.windows(2) {
                assert!(w[1] < w[0] && w[1] > 0.0);
            }
        }
    }

    #[test]
    fn acf_tail_exponent_is_2h_minus_2() {
        let d = 0.4; // H = 0.9
        let r = farima_acf(d, 8192);
        let slope = (r[8192] / r[1024]).ln() / (8.0_f64).ln();
        assert!(
            (slope - (2.0 * d - 1.0)).abs() < 0.01,
            "tail slope {slope} vs {}",
            2.0 * d - 1.0
        );
    }

    #[test]
    fn asymptotic_vs_exact_lrd_distinction() {
        // Same H = 0.9: the F-ARIMA short-lag ACF differs from the exact-LRD
        // second-difference form (this is why the paper separates the two
        // definitions), but the tails converge to the same power law.
        let fa = farima_acf(0.4, 2048);
        let ex = crate::fbndp::exact_lrd_acf(1.0, 1.8, 2048);
        assert!(
            (fa[1] - ex[1]).abs() > 0.05,
            "short lags should differ: {} vs {}",
            fa[1],
            ex[1]
        );
        let ratio_far = fa[2048] / ex[2048];
        let ratio_near = fa[64] / ex[64];
        assert!(
            (ratio_far / ratio_near - 1.0).abs() < 0.05,
            "tails must decay at the same rate (ratio drift {ratio_near} -> {ratio_far})"
        );
    }

    #[test]
    fn generated_path_matches_analytics() {
        let mut p = FarimaProcess::from_hurst(500.0, 70.0, 0.85, 16_384);
        let mut rng = Xoshiro256PlusPlus::from_seed_u64(201);
        let path: Vec<f64> = (0..65_536).map(|_| p.next_frame(&mut rng)).collect();
        let mut m = Moments::new();
        m.extend(&path);
        assert!((m.mean() - 500.0).abs() < 15.0, "mean {}", m.mean());
        assert!((m.sd() - 70.0).abs() < 6.0, "sd {}", m.sd());
        let emp = sample_acf_fft(&path, 10);
        let ana = p.autocorrelations(10);
        for k in 1..=10 {
            assert!(
                (emp[k] - ana[k]).abs() < 0.06,
                "lag {k}: {} vs {}",
                emp[k],
                ana[k]
            );
        }
    }

    #[test]
    fn estimated_hurst_matches_design() {
        let mut p = FarimaProcess::from_hurst(0.0, 1.0, 0.8, 65_536);
        let mut rng = Xoshiro256PlusPlus::from_seed_u64(202);
        let path: Vec<f64> = (0..65_536).map(|_| p.next_frame(&mut rng)).collect();
        let h = vbr_stats::local_whittle_hurst(&path, 0);
        assert!((h - 0.8).abs() < 0.09, "local Whittle H {h} vs 0.8");
    }

    #[test]
    #[should_panic]
    fn rejects_d_out_of_range() {
        farima_acf(0.5, 10);
    }
}

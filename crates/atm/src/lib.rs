//! # vbr-atm
//!
//! ATM cell-layer substrate: the wire format and traffic-contract machinery
//! an ATM multiplexer of VBR video sources actually runs on. The paper
//! reasons at the cell scale (cell loss rate, cells/frame, cell buffers);
//! this crate supplies the concrete cell layer so the examples can carry a
//! simulated video source over a faithful UNI:
//!
//! * [`cell`] — the 53-byte ATM cell codec (UNI and NNI header layouts) with
//!   HEC generation/verification (CRC-8, polynomial x⁸+x²+x+1, coset 0x55 —
//!   ITU-T I.432) including single-bit error *correction*;
//! * [`gcra`] — the Generic Cell Rate Algorithm in its virtual-scheduling
//!   form (ITU-T I.371), the standard UPC/NPC conformance test for traffic
//!   contracts (PCR/CDVT and SCR/BT policing);
//! * [`spacer`] — a cell spacer that re-times a conforming-but-bursty cell
//!   stream to a minimum inter-cell gap (peak-rate shaping);
//! * [`aal5`] — AAL5 segmentation/reassembly (ITU-T I.363.5): PDU framing
//!   with padding, length and CRC-32 trailer — how a video frame actually
//!   becomes the cell counts the traffic models emit.
//!
//! Design follows the smoltcp school: no allocation in the datapath, wire
//! formats as plain functions over byte arrays, conformance logic as small
//! explicit state machines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aal5;
pub mod cell;
pub mod gcra;
pub mod spacer;

pub use aal5::{cells_for_payload, reassemble, segment, ReassemblyError};
pub use cell::{Cell, CellHeader, HecStatus, PayloadType, CELL_SIZE, PAYLOAD_SIZE};
pub use gcra::{Gcra, GcraOutcome};
pub use spacer::Spacer;
